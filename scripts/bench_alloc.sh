#!/bin/sh
# Allocation fast path (lib/tcache): a steady-state 64 B alloc/free
# microbenchmark comparing the raw Poseidon allocator with the DRAM
# magazine cache (mag 8), then a same-seed write-heavy serve pair at a
# saturating offered load (--tcache-mag 8 vs --tcache-mag 0) and a
# crash run through the cached path.  Fails unless the cached alloc
# p50 drops at least 25% below the raw p50 AND the cached serve write
# p50 beats the mag-0 write p50 — the fast-path gates — or if any run
# loses an acked write.  Leaves a machine-readable snapshot in
# BENCH_alloc.json at the repo root.  Pass --full for longer traffic.
set -eu
cd "$(dirname "$0")/.."
dune build bench/main.exe
dune exec bench/main.exe -- --suite alloc "$@"
