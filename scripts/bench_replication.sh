#!/bin/sh
# poseidon-kv replication benchmark: sync vs async clean runs (the
# sync-mode latency tax under identical zipfian traffic), then the RTO
# experiment — promote-the-backup failover vs replay-on-restart, same
# traffic and seed.  Leaves a machine-readable snapshot in
# BENCH_replication.json at the repo root; exits non-zero if any
# sync-acked write is lost in the failover.  Pass --full for longer
# traffic windows.
set -eu
cd "$(dirname "$0")/.."
dune build bench/main.exe
dune exec bench/main.exe -- --suite replication "$@"
