#!/bin/sh
# poseidon-kv latency attribution: identical traffic run unreplicated,
# async- and sync-replicated, single-op and all-transaction, with the
# span store on.  The per-run latency budget names the dominant stage
# of each configuration's critical path, and the pins section blames
# the sync-replication and 2PC-commit latency taxes on the stage whose
# summed time grew most over the same-seed baseline.  Fails if any
# budget explains < 90% of end-to-end time.  Leaves a machine-readable
# snapshot in BENCH_attrib.json at the repo root.  Pass --full for
# longer traffic windows.
set -eu
cd "$(dirname "$0")/.."
dune build bench/main.exe
dune exec bench/main.exe -- --suite attrib "$@"
