#!/bin/sh
# poseidon-kv transaction benchmark: a single-op baseline against
# cross-shard transactional mixes at the same seed and offered rate
# (abort rate and the 2PC commit-latency tax of the coordinator-record
# protocol), then a crash run whose ledger check proves transaction
# atomicity survives recovery.  Leaves a machine-readable snapshot in
# BENCH_txn.json at the repo root; exits non-zero if any transaction
# is torn across the crash.  Pass --full for longer traffic windows.
set -eu
cd "$(dirname "$0")/.."
dune build bench/main.exe
dune exec bench/main.exe -- --suite txn "$@"
