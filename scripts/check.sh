#!/bin/sh
# Tier-1 verification: full build plus every test suite.
set -eu
cd "$(dirname "$0")/.."
dune build
dune runtest
echo "check: build + all test suites OK"
