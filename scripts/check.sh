#!/bin/sh
# Tier-1 verification: full build plus every test suite, then a
# budget-capped persistency-model-checker smoke run.
set -eu
cd "$(dirname "$0")/.."
dune build
dune runtest
# crashcheck smoke: a strided sample of crash points per operation so
# tier-1 stays fast (the exhaustive sweep runs in test_crashcheck and
# via `bin/main.exe crashcheck` with no budget).
dune exec bin/main.exe -- crashcheck --max-points 6 --subsets 1 > /dev/null
# mutation sanity: the checker must flag the deliberately-broken
# missing-flush protocol (non-zero exit = counterexample found).
if dune exec bin/main.exe -- crashcheck --scenario broken --max-points 2 \
     --subsets 0 > /dev/null 2>&1; then
  echo "check: crashcheck FAILED to detect the seeded missing-flush bug" >&2
  exit 1
fi
# service crash-point sweep: the KV write path's intent protocol,
# strided for tier-1 speed (exhaustive in test_crashcheck / manual runs).
dune exec bin/main.exe -- crashcheck --scenario kv-put --max-points 8 \
  --subsets 1 > /dev/null
# serve smoke: bounded open-loop traffic with a crash at the midpoint;
# exits non-zero if the recovered store loses any acked write.
dune exec bin/main.exe -- serve --shards 2 --clients 8 --rate 40000 \
  --duration 0.005 --crash-at 0.5 > /dev/null
# failover smoke: the same traffic on a two-machine cluster with sync
# replication; the primary is lost at the midpoint and the backup is
# promoted.  Exits non-zero if any sync-acked write is missing from
# the promoted store's ledger.
dune exec bin/main.exe -- serve --replicate --shards 2 --clients 8 \
  --rate 40000 --duration 0.005 --crash-at 0.5 > /dev/null
echo "check: build + all test suites + crashcheck + serve/failover smoke OK"
