#!/bin/sh
# Tier-1 verification: shell lint, full build, every test suite, the
# persistency-model-checker gates (including the cross-shard 2PC
# protocol and its seeded-mutation sanity check), crash/failover serve
# smokes, and a benchmark determinism gate.
#
# Every randomized gate runs under CRASH_SEED (default 42), and a red
# run prints the failing step plus the seed, so a CI failure replays
# locally with:  CRASH_SEED=<printed seed> scripts/check.sh
set -eu
cd "$(dirname "$0")/.."

CRASH_SEED="${CRASH_SEED:-42}"
step="startup"
on_exit() {
  status=$?
  if [ "$status" -ne 0 ]; then
    echo "check: FAILED at step \"$step\" (seed $CRASH_SEED)" >&2
    echo "check: replay with: CRASH_SEED=$CRASH_SEED scripts/check.sh" >&2
  fi
}
trap on_exit EXIT

# Shell lint (CI installs shellcheck; skip quietly where it's absent).
step="shellcheck scripts/*.sh"
if command -v shellcheck >/dev/null 2>&1; then
  shellcheck scripts/*.sh
else
  echo "check: shellcheck not found - skipping shell lint"
fi

step="dune build"
dune build
step="dune runtest"
dune runtest

# crashcheck smoke: a strided sample of crash points per operation so
# tier-1 stays fast (the exhaustive sweep runs in test_crashcheck and
# via `bin/main.exe crashcheck` with no budget).
step="crashcheck smoke"
dune exec bin/main.exe -- crashcheck --max-points 6 --subsets 1 \
  --seed "$CRASH_SEED" > /dev/null
# mutation sanity: the checker must flag the deliberately-broken
# missing-flush protocol (non-zero exit = counterexample found).
step="crashcheck mutation gate (broken)"
if dune exec bin/main.exe -- crashcheck --scenario broken --max-points 2 \
     --subsets 0 --seed "$CRASH_SEED" > /dev/null 2>&1; then
  echo "check: crashcheck FAILED to detect the seeded missing-flush bug" >&2
  exit 1
fi
# service crash-point sweep: the KV write path's intent protocol,
# strided for tier-1 speed (exhaustive in test_crashcheck / manual runs).
step="crashcheck kv-put sweep"
dune exec bin/main.exe -- crashcheck --scenario kv-put --max-points 8 \
  --subsets 1 --seed "$CRASH_SEED" > /dev/null
# cross-shard transaction sweep, EXHAUSTIVE: every fence-to-fence crash
# point of the 2PC coordinator-record protocol (prepare slots, decision
# record, apply, recovery) must keep each transaction all-or-nothing.
# Cheap enough (~0.5 s) to run unstrided in tier-1.
step="crashcheck kv-txn exhaustive sweep"
dune exec bin/main.exe -- crashcheck --scenario kv-txn \
  --seed "$CRASH_SEED" > /dev/null
# 2PC mutation gate: same sweep against a coordinator that skips the
# decision-record flush; the checker MUST produce a counterexample
# (non-zero exit), or it has lost the power to see the commit point.
step="crashcheck mutation gate (kv-txn-broken)"
if dune exec bin/main.exe -- crashcheck --scenario kv-txn-broken \
     --seed "$CRASH_SEED" > /dev/null 2>&1; then
  echo "check: crashcheck FAILED to detect the seeded unflushed 2PC decision record" >&2
  exit 1
fi
# batched replication sweep: group-committed puts shipped as doorbell
# frames with cumulative batched acks, strided like kv-put; recovery
# is judged by the windowed prefix oracle (ack-before-flush would
# leave the backup behind every admissible prefix).
step="crashcheck kv-batched-put sweep"
dune exec bin/main.exe -- crashcheck --scenario kv-batched-put \
  --max-points 8 --subsets 1 --seed "$CRASH_SEED" > /dev/null
# batching mutation gate: the same sweep against a shipper that acks
# clients BEFORE the doorbell flush; the oracle MUST flag it (non-zero
# exit), or it can no longer see the ack-after-persist ordering the
# group-commit guarantee rests on.
step="crashcheck mutation gate (kv-batched-broken)"
if dune exec bin/main.exe -- crashcheck --scenario kv-batched-broken \
     --max-points 6 --subsets 1 --seed "$CRASH_SEED" > /dev/null 2>&1; then
  echo "check: crashcheck FAILED to detect the seeded ack-before-flush batching bug" >&2
  exit 1
fi
# MVCC snapshot-read sweep, EXHAUSTIVE: after every completed op the
# scenario audits a minted snapshot (snapshot_get over the key
# universe + one multi-shard snapshot_scan) against the
# completed-prefix model, and recovery must match the no-MVCC sweeps
# (version chains are volatile).  Cheap enough to run unstrided.
step="crashcheck kv-snapshot exhaustive sweep"
dune exec bin/main.exe -- crashcheck --scenario kv-snapshot \
  --seed "$CRASH_SEED" > /dev/null
# MVCC mutation gate: a staged prepare that publishes its versions
# BEFORE any decision exists; the snapshot-reads oracle MUST flag the
# uncommitted observation (non-zero exit), or it has lost the power to
# see the publish-at-decision rule snapshot isolation rests on.
step="crashcheck mutation gate (mvcc-broken)"
if dune exec bin/main.exe -- crashcheck --scenario mvcc-broken \
     --max-points 6 --subsets 1 --seed "$CRASH_SEED" > /dev/null 2>&1; then
  echo "check: crashcheck FAILED to detect the seeded early-publish MVCC bug" >&2
  exit 1
fi
# magazine-cache sweep, EXHAUSTIVE: every fence-to-fence crash point
# of the cached KV write path (batched carve under ledger leases,
# publish-at-commit, stash-then-recycle frees) must leave the
# recovered heap with exactly one live value block per present key —
# leased bin residue is reclaimed, nothing leaks.  Cheap enough to run
# unstrided in tier-1.
step="crashcheck kv-tcache-put exhaustive sweep"
dune exec bin/main.exe -- crashcheck --scenario kv-tcache-put \
  --seed "$CRASH_SEED" > /dev/null
# cache mutation gate: the same sweep against a cache that recycles
# freed blocks with no reclaim lease and no persistent free; the
# value-census oracle MUST flag the orphaned blocks (non-zero exit),
# or it has lost the power to see the reclaim-before-recycle rule the
# cache's crash safety rests on.
step="crashcheck mutation gate (tcache-broken)"
if dune exec bin/main.exe -- crashcheck --scenario tcache-broken \
     --max-points 8 --subsets 1 --seed "$CRASH_SEED" > /dev/null 2>&1; then
  echo "check: crashcheck FAILED to detect the seeded leaseless-recycle cache bug" >&2
  exit 1
fi
# read-cache sweep: the cache-armed put/delete/txn plan audits every
# key through BOTH read paths (cached plain gets and a minted
# snapshot) against the completed-prefix model after each op, strided
# like kv-put; recovery starts from an empty cache by construction.
step="crashcheck kv-rcache-put sweep"
dune exec bin/main.exe -- crashcheck --scenario kv-rcache-put \
  --max-points 8 --subsets 1 --seed "$CRASH_SEED" > /dev/null
# read-cache mutation gate: the same sweep against a cache whose
# invalidations are deferred past the mutation's return
# (invalidate-after-reply); the cached-reads oracle MUST flag the
# stale window (non-zero exit), or it has lost the power to see the
# write-through rule the cache's coherence rests on.
step="crashcheck mutation gate (rcache-broken)"
if dune exec bin/main.exe -- crashcheck --scenario rcache-broken \
     --max-points 8 --subsets 1 --seed "$CRASH_SEED" > /dev/null 2>&1; then
  echo "check: crashcheck FAILED to detect the seeded late-invalidation cache bug" >&2
  exit 1
fi
# serve smoke: bounded open-loop traffic with a crash at the midpoint;
# exits non-zero if the recovered store loses any acked write.
step="serve crash smoke"
dune exec bin/main.exe -- serve --shards 2 --clients 8 --rate 40000 \
  --duration 0.005 --crash-at 0.5 --seed "$CRASH_SEED" > /dev/null
# transactional serve smoke: the same crash run with a cross-shard
# transaction mix; the ledger treats each transaction's keys as one
# all-or-nothing group, so a torn transaction fails the run.
step="serve txn crash smoke"
dune exec bin/main.exe -- serve --shards 2 --clients 8 --rate 40000 \
  --duration 0.005 --txn-pct 20 --crash-at 0.5 --seed "$CRASH_SEED" \
  > /dev/null
# failover smoke: the same traffic on a two-machine cluster with sync
# replication; the primary is lost at the midpoint and the backup is
# promoted.  Exits non-zero if any sync-acked write is missing from
# the promoted store's ledger.  The txn mix also exercises in-doubt
# participant-slot resolution during promotion.
step="serve failover smoke"
dune exec bin/main.exe -- serve --replicate --shards 2 --clients 8 \
  --rate 40000 --duration 0.005 --txn-pct 20 --crash-at 0.5 \
  --seed "$CRASH_SEED" > /dev/null
# trace-validity gate: export a Chrome trace from a replicated serve
# run and validate it — JSON shape, per-phase required fields, and
# that every cross-machine flow start ("ph":"s") has its matching
# finish ("ph":"f").  A broken pairing means Perfetto silently drops
# the causal arrow between primary and backup.
step="trace validity gate"
tracedir="$(mktemp -d)"
dune exec bin/main.exe -- serve --replicate --shards 2 --clients 8 \
  --rate 30000 --duration 0.005 --txn-pct 20 --seed "$CRASH_SEED" \
  --trace-out "$tracedir/serve-trace.json" > /dev/null
dune exec bin/main.exe -- tracecheck "$tracedir/serve-trace.json" > /dev/null
rm -rf "$tracedir"
# determinism gate: the whole stack runs on a simulated machine, so two
# identical bench runs must produce byte-identical metrics snapshots
# (only the git rev line may differ).
step="bench determinism gate"
tmpdir="$(mktemp -d)"
dune exec bench/main.exe -- --smoke --json-out "$tmpdir/a.json" > /dev/null
dune exec bench/main.exe -- --smoke --json-out "$tmpdir/b.json" > /dev/null
sed 's/"rev":[^,}]*//' "$tmpdir/a.json" > "$tmpdir/a.norm"
sed 's/"rev":[^,}]*//' "$tmpdir/b.json" > "$tmpdir/b.norm"
if ! diff -u "$tmpdir/a.norm" "$tmpdir/b.norm" > /dev/null; then
  echo "check: bench --smoke is NOT deterministic across identical runs:" >&2
  diff -u "$tmpdir/a.norm" "$tmpdir/b.norm" >&2 || true
  rm -rf "$tmpdir"
  exit 1
fi
rm -rf "$tmpdir"
# batching identity gate: --batch-window 1 must route every request
# down the pre-batching per-op path, so a replicated serve run with
# the flag spelled out is byte-identical (modulo the git rev line) to
# the same run without it.  Catches any drift where window 1 silently
# starts taking the grouped path.
step="batch window-1 identity gate"
tmpdir="$(mktemp -d)"
dune exec bin/main.exe -- serve --replicate --shards 2 --clients 8 \
  --rate 40000 --duration 0.005 --seed "$CRASH_SEED" \
  --json-out "$tmpdir/plain.json" > /dev/null
dune exec bin/main.exe -- serve --replicate --shards 2 --clients 8 \
  --rate 40000 --duration 0.005 --seed "$CRASH_SEED" \
  --batch-window 1 --json-out "$tmpdir/w1.json" > /dev/null
sed 's/"rev":[^,}]*//' "$tmpdir/plain.json" > "$tmpdir/plain.norm"
sed 's/"rev":[^,}]*//' "$tmpdir/w1.json" > "$tmpdir/w1.norm"
if ! diff -u "$tmpdir/plain.norm" "$tmpdir/w1.norm" > /dev/null; then
  echo "check: serve --batch-window 1 DIVERGES from the unbatched path:" >&2
  diff -u "$tmpdir/plain.norm" "$tmpdir/w1.norm" >&2 || true
  rm -rf "$tmpdir"
  exit 1
fi
rm -rf "$tmpdir"
# MVCC identity gate: --mvcc-window 0 must route every get/scan down
# the pre-MVCC locked read path, so a serve run with the flag spelled
# out is byte-identical (modulo the git rev line) to the same run
# without it.  Catches any drift where window 0 silently starts
# minting snapshots.
step="mvcc window-0 identity gate"
tmpdir="$(mktemp -d)"
dune exec bin/main.exe -- serve --shards 2 --clients 8 \
  --rate 40000 --duration 0.005 --read-pct 60 --scan-pct 10 \
  --seed "$CRASH_SEED" --json-out "$tmpdir/plain.json" > /dev/null
dune exec bin/main.exe -- serve --shards 2 --clients 8 \
  --rate 40000 --duration 0.005 --read-pct 60 --scan-pct 10 \
  --seed "$CRASH_SEED" --mvcc-window 0 --json-out "$tmpdir/w0.json" \
  > /dev/null
sed 's/"rev":[^,}]*//' "$tmpdir/plain.json" > "$tmpdir/plain.norm"
sed 's/"rev":[^,}]*//' "$tmpdir/w0.json" > "$tmpdir/w0.norm"
if ! diff -u "$tmpdir/plain.norm" "$tmpdir/w0.norm" > /dev/null; then
  echo "check: serve --mvcc-window 0 DIVERGES from the plain read path:" >&2
  diff -u "$tmpdir/plain.norm" "$tmpdir/w0.norm" >&2 || true
  rm -rf "$tmpdir"
  exit 1
fi
rm -rf "$tmpdir"
# MVCC serve smoke: snapshot reads under a mid-traffic crash; exits
# non-zero if the recovered store loses any acked write.
step="serve mvcc crash smoke"
dune exec bin/main.exe -- serve --shards 2 --clients 8 --rate 40000 \
  --duration 0.005 --read-pct 60 --scan-pct 10 --mvcc-window 8 \
  --crash-at 0.5 --seed "$CRASH_SEED" > /dev/null
# tcache identity gate: --tcache-mag 0 must bypass the magazine cache
# entirely, so a serve run with the flag spelled out is byte-identical
# (modulo the git rev line) to the same run without it.  Catches any
# drift where mag 0 silently starts caching allocations.
step="tcache mag-0 identity gate"
tmpdir="$(mktemp -d)"
dune exec bin/main.exe -- serve --shards 2 --clients 8 \
  --rate 40000 --duration 0.005 --seed "$CRASH_SEED" \
  --json-out "$tmpdir/plain.json" > /dev/null
dune exec bin/main.exe -- serve --shards 2 --clients 8 \
  --rate 40000 --duration 0.005 --seed "$CRASH_SEED" \
  --tcache-mag 0 --json-out "$tmpdir/m0.json" > /dev/null
sed 's/"rev":[^,}]*//' "$tmpdir/plain.json" > "$tmpdir/plain.norm"
sed 's/"rev":[^,}]*//' "$tmpdir/m0.json" > "$tmpdir/m0.norm"
if ! diff -u "$tmpdir/plain.norm" "$tmpdir/m0.norm" > /dev/null; then
  echo "check: serve --tcache-mag 0 DIVERGES from the uncached path:" >&2
  diff -u "$tmpdir/plain.norm" "$tmpdir/m0.norm" >&2 || true
  rm -rf "$tmpdir"
  exit 1
fi
rm -rf "$tmpdir"
# tcache serve smoke: cached allocation under a mid-traffic crash;
# exits non-zero if the recovered store loses any acked write.
step="serve tcache crash smoke"
dune exec bin/main.exe -- serve --shards 2 --clients 8 --rate 40000 \
  --duration 0.005 --tcache-mag 4 --crash-at 0.5 --seed "$CRASH_SEED" \
  > /dev/null
# rcache identity gate: --rcache-entries 0 must bypass the read cache
# entirely — no probe charge, no statistics — so a serve run with the
# flag spelled out is byte-identical (modulo the git rev line) to the
# same run without it.  Catches any drift where entries 0 silently
# starts probing.
step="rcache entries-0 identity gate"
tmpdir="$(mktemp -d)"
dune exec bin/main.exe -- serve --shards 2 --clients 8 \
  --rate 40000 --duration 0.005 --read-pct 60 --scan-pct 10 \
  --seed "$CRASH_SEED" --json-out "$tmpdir/plain.json" > /dev/null
dune exec bin/main.exe -- serve --shards 2 --clients 8 \
  --rate 40000 --duration 0.005 --read-pct 60 --scan-pct 10 \
  --seed "$CRASH_SEED" --rcache-entries 0 --json-out "$tmpdir/e0.json" \
  > /dev/null
sed 's/"rev":[^,}]*//' "$tmpdir/plain.json" > "$tmpdir/plain.norm"
sed 's/"rev":[^,}]*//' "$tmpdir/e0.json" > "$tmpdir/e0.norm"
if ! diff -u "$tmpdir/plain.norm" "$tmpdir/e0.norm" > /dev/null; then
  echo "check: serve --rcache-entries 0 DIVERGES from the cacheless path:" >&2
  diff -u "$tmpdir/plain.norm" "$tmpdir/e0.norm" >&2 || true
  rm -rf "$tmpdir"
  exit 1
fi
rm -rf "$tmpdir"
# rcache serve smoke: cached reads under a mid-traffic crash (the
# cache is volatile, so recovery restarts it empty); exits non-zero
# if the recovered store loses any acked write or any cached read
# diverges from the ledger.
step="serve rcache crash smoke"
dune exec bin/main.exe -- serve --shards 2 --clients 8 --rate 40000 \
  --duration 0.005 --read-pct 60 --scan-pct 10 --rcache-entries 64 \
  --crash-at 0.5 --seed "$CRASH_SEED" > /dev/null

step="done"
echo "check: lint + build + tests + crashcheck (incl. 2PC + batching + MVCC + tcache + rcache gates) + serve/txn/failover/mvcc/tcache/rcache smokes + trace validity + determinism + batch/mvcc/tcache/rcache identity OK"
