#!/bin/sh
# poseidon-kv service benchmark: offered-rate sweep (including a
# past-saturation point where admission control sheds) plus a
# crash-mid-serving run with recovery-time measurement.  Leaves a
# machine-readable snapshot in BENCH_service.json at the repo root.
# Pass --full for longer traffic windows.
set -eu
cd "$(dirname "$0")/.."
dune build bench/main.exe
dune exec bench/main.exe -- --suite service "$@"
