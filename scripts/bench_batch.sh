#!/bin/sh
# poseidon-kv group commit: batched sync replication vs async at
# identical offered load.  Sweeps --batch-window over {1,4,8,16,32} in
# sync mode against an async baseline at the same saturating rate and
# seed; window 1 is the unbatched per-op path.  Fails unless some
# window brings sync p50 within 2x of async p50 — the batching gate —
# or if any run's backup store diverges from the client ledger.
# Leaves a machine-readable snapshot in BENCH_batch.json at the repo
# root.  Pass --full for longer traffic windows.
set -eu
cd "$(dirname "$0")/.."
dune build bench/main.exe
dune exec bench/main.exe -- --suite batch "$@"
