#!/bin/sh
# poseidon-kv MVCC snapshot reads: read-mix sweep (0/50/95% reads) at a
# saturating offered load with --mvcc-window 8, a below-saturation
# overhead pair (95% reads at window 0 vs window 8), a scan-heavy run
# through the multi-shard merged scan, and a crash run.  Fails unless
# the snapshot read p50 stays within 1.25x of the plain read p50 AND
# the 95%-read mix sustains more throughput than the all-write
# baseline without shedding more — the lock-free-read gate — or if any
# run loses an acked write.  Leaves a machine-readable snapshot in
# BENCH_mvcc.json at the repo root.  Pass --full for longer traffic.
set -eu
cd "$(dirname "$0")/.."
dune build bench/main.exe
dune exec bench/main.exe -- --suite mvcc "$@"
