#!/bin/sh
# Benchmark the DRAM read-cache tier: a zipf-skew sweep (0.6 / 0.9 / 1.1)
# at a fixed read-heavy mix with 8192 cache entries per shard, then the
# gated hot pair -- the same zipf-0.99 load offered to an uncached and a
# cached service -- and a crash/recovery run with the cache armed.
# Emits BENCH_rcache.json and fails if the cached read p50 is not at or
# below 0.6x the uncached one, or if any run finishes with a ledger
# mismatch.
set -eu
cd "$(dirname "$0")/.."

dune build bench/main.exe
dune exec bench/main.exe -- --suite rcache "$@"
