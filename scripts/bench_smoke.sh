#!/bin/sh
# Minute-scale benchmark sanity run; leaves a machine-readable metrics
# snapshot in BENCH_smoke.json at the repo root.
set -eu
cd "$(dirname "$0")/.."
dune build bench/main.exe
dune exec bench/main.exe -- --smoke --json-out BENCH_smoke.json
