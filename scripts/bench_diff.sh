#!/bin/sh
# Bench regression gate: compare each freshly produced BENCH_*.json
# against the baseline committed at HEAD and fail on a >25% regression
# in any gated p50 metric (the "*_p50_ns" fields the suite writers emit
# alongside their pass/fail gates).  The simulation clock is
# deterministic, so any drift is a code change, not measurement noise.
#
# Metrics are paired by name in document order (BENCH_attrib.json emits
# several runs under the same e2e_p50_ns name; the nth fresh occurrence
# is compared against the nth baseline occurrence).  A snapshot whose
# metric-name sequence changed shape -- a new suite, a renamed gate --
# is skipped with a warning instead of failing, so intentional schema
# changes only need the refreshed baseline committed alongside them.
set -eu
cd "$(dirname "$0")/.."

# Emit "name value" lines for every gated p50 in document order.
extract() {
  grep -o '"[a-z_0-9]*_p50_ns"[ ]*:[ ]*[0-9][0-9]*' "$1" | tr -d '"' | tr ':' ' ' || true
}

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

fail=0
for f in BENCH_*.json; do
  [ -f "$f" ] || continue
  if ! git cat-file -e "HEAD:$f" 2>/dev/null; then
    echo "bench_diff: $f has no committed baseline, skipping"
    continue
  fi
  git show "HEAD:$f" >"$tmpdir/base.json"
  extract "$tmpdir/base.json" >"$tmpdir/base.m"
  extract "$f" >"$tmpdir/fresh.m"
  if ! [ -s "$tmpdir/base.m" ]; then
    echo "bench_diff: $f has no gated p50 metrics, skipping"
    continue
  fi
  if [ "$(cut -d' ' -f1 "$tmpdir/base.m")" != "$(cut -d' ' -f1 "$tmpdir/fresh.m")" ]; then
    echo "bench_diff: WARNING: $f gated-metric set changed shape;" \
      "skipping comparison (commit the refreshed baseline)"
    continue
  fi
  # base.m / fresh.m now agree line-for-line on metric names; compare values.
  if ! paste -d' ' "$tmpdir/base.m" "$tmpdir/fresh.m" |
    awk -v file="$f" '
      4 * $4 > 5 * $2 {
        printf "bench_diff: %s: %s regressed %d -> %d ns (>25%%)\n",
          file, $1, $2, $4
        bad = 1
      }
      { n++ }
      END {
        if (!bad)
          printf "bench_diff: %s: %d gated p50(s) within 25%% of baseline\n",
            file, n
        exit bad
      }'; then
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "bench_diff: FAILED -- at least one gated p50 regressed by more than 25%"
  exit 1
fi
echo "bench_diff: OK"
