module Sched = Simcore.Sched
module Prng = Repro_util.Prng
module Zipf = Repro_util.Zipf
module Hist = Obs.Hist

type config = {
  shards : int;
  clients : int;
  rate : float;
  duration : float;
  value_size : int;
  keyspace : int;
  zipf_theta : float;
  read_pct : int;
  delete_pct : int;
  scan_pct : int;
  txn_pct : int;
  txn_ops : int;
  queue_capacity : int;
  preload : int;
  crash_at : float option;
  seed : int;
  scope : string;
  batch_window : int;
  batch_bytes : int;
  mvcc_window : int;
  tcache_mag : int;
      (* magazine size of the DRAM thread cache wrapped around the
         allocator (lib/tcache); 0 disables the wrapper entirely, so
         the run is byte-identical to the pre-cache servicing path *)
  rcache_entries : int;
      (* per-shard slot count of the DRAM read cache in front of the
         persistent trees (lib/rcache); 0 disables every hook, so the
         run is byte-identical to the pre-cache read path *)
}

let default_config =
  { shards = 4;
    clients = 16;
    rate = 50_000.;
    duration = 0.02;
    value_size = 128;
    keyspace = 4096;
    zipf_theta = 0.99;
    read_pct = 50;
    delete_pct = 10;
    scan_pct = 5;
    txn_pct = 0;
    txn_ops = 3;
    queue_capacity = 64;
    preload = 2048;
    crash_at = None;
    seed = 42;
    scope = "service";
    batch_window = 1;
    batch_bytes = 0;
    mvcc_window = 0;
    tcache_mag = 0;
    rcache_entries = 0 }

type op_kind = KGet | KPut | KDel | KScan | KTxn

type payload =
  | Req of
      { rid : int;
        client : int;
        kind : op_kind;
        key : int;
        vseed : int;
        ops : Kv.txn_op list (* KTxn only; [] otherwise *) }
  | Rep of { rid : int; ok : bool; mutated : bool; fin : int }

(* client-side record of a request awaiting its reply *)
type pending = {
  p_kind : op_kind;
  p_key : int;
  p_vseed : int;
  p_ops : Kv.txn_op list;
  p_sent : int;
  p_trace : int; (* Obs.Span trace id; -1 when tracing is off *)
  p_span : int; (* the request's root span, closed at reply delivery *)
}

let txn_op_key = function Kv.Tput { key; _ } | Kv.Tdel { key } -> key

(* a commit-group member after decode: the message plus its request
   fields (copied out — [Req]'s inlined record cannot escape a match),
   its decode-start time and its still-open store span *)
type gmember = {
  g_msg : payload Net.msg;
  g_rid : int;
  g_client : int;
  g_kind : op_kind;
  g_key : int;
  g_vseed : int;
  g_t0 : int;
  g_store : int;
}

type percentiles = {
  p50 : int;
  p99 : int;
  p999 : int;
  mean : float;
  max : int;
  samples : int;
}

let percentiles_of h =
  { p50 = Hist.percentile h 50.;
    p99 = Hist.percentile h 99.;
    p999 = Hist.percentile h 99.9;
    mean = Hist.mean h;
    max = Hist.max_value h;
    samples = Hist.count h }

type ledger_report = { checked : int; ambiguous : int; mismatches : int }

type result = {
  offered : int;
  admitted : int;
  shed : int;
  completed : int;
  acked_mutations : int;
  sim_ns : int;
  throughput : float;
  goodput : float;
  latency : percentiles;
  service : percentiles;
  crashed : bool;
  rto_ns : int;
  recovery : Kv.recovery option;
  ledger : ledger_report;
  in_flight_at_crash : int;
  queue_max_depth : int;
  txns_committed : int;
  txns_aborted : int;
  txn_latency : percentiles;
  read_latency : percentiles;
  write_latency : percentiles;
  scan_latency : percentiles;
  ops_read : int;
  ops_write : int;
  ops_scan : int;
}

let run ~make ~reattach cfg =
  if cfg.shards < 1 || cfg.clients < 1 then
    invalid_arg "Server.run: shards and clients must be >= 1";
  if cfg.rate <= 0. || cfg.duration <= 0. then
    invalid_arg "Server.run: rate and duration must be positive";
  if cfg.read_pct + cfg.delete_pct + cfg.scan_pct + cfg.txn_pct > 100 then
    invalid_arg "Server.run: op mix exceeds 100%";
  if cfg.txn_ops < 1 || cfg.txn_ops > Kv.max_txn_ops then
    invalid_arg "Server.run: txn_ops out of range";
  if cfg.batch_window < 1 then invalid_arg "Server.run: batch_window < 1";
  if cfg.batch_bytes < 0 then invalid_arg "Server.run: batch_bytes < 0";
  if cfg.mvcc_window < 0 then invalid_arg "Server.run: mvcc_window < 0";
  if cfg.tcache_mag < 0 then invalid_arg "Server.run: tcache_mag < 0";
  if cfg.rcache_entries < 0 then invalid_arg "Server.run: rcache_entries < 0";
  (match cfg.crash_at with
   | Some f when f <= 0. || f >= 1. ->
     invalid_arg "Server.run: crash_at must be in (0, 1)"
   | _ -> ());
  let mach, inst = make () in
  let inst, tch =
    if cfg.tcache_mag > 0 then
      let i, t = Tcache.wrap ~mag:cfg.tcache_mag inst in
      (i, Some t)
    else (inst, None)
  in
  let ncpu = (Machine.cfg mach).Machine.Config.num_cpus in
  if cfg.shards > ncpu then invalid_arg "Server.run: more shards than CPUs";
  let svc =
    Kv.create ~mvcc_window:cfg.mvcc_window ~rcache_entries:cfg.rcache_entries
      inst ~shards:cfg.shards ~value_size:cfg.value_size
  in

  (* durable baseline: preloaded keys are in the ledger from the start *)
  let preload_n = min cfg.preload cfg.keyspace in
  for k = 1 to preload_n do
    if not (Kv.put svc ~key:k ~vseed:k) then
      failwith "Server.run: preload exhausted the heap"
  done;
  Nvmm.Memdev.drain (Machine.dev mach);

  let duration_ns = int_of_float (cfg.duration *. 1e9) in
  let t_crash =
    Option.map
      (fun f -> max 1 (int_of_float (f *. float_of_int duration_ns)))
      cfg.crash_at
  in
  let t_stop = match t_crash with Some c -> min c duration_ns | None -> duration_ns in
  let grace_ns = 5_000_000 in

  (* ports 0..shards-1: shard request queues (the admission bound);
     ports shards..shards+clients-1: client reply queues (generous) *)
  let reply_cap = max 1024 (4 * cfg.queue_capacity) in
  let client_cpu j =
    if cfg.shards >= ncpu then j mod ncpu
    else cfg.shards + (j mod (ncpu - cfg.shards))
  in
  let ports =
    Array.init (cfg.shards + cfg.clients) (fun i ->
        if i < cfg.shards then (i, cfg.queue_capacity)
        else (client_cpu (i - cfg.shards), reply_cap))
  in
  let net : payload Net.t = Net.create mach ~ports ~poll_ns:2_000 () in

  let offered = ref 0 and admitted = ref 0 and shed = ref 0 in
  let handled = ref 0 and completed = ref 0 and acked_mut = ref 0 in
  let reply_drops = ref 0 in
  let senders = ref cfg.clients in
  let txn_commits = ref 0 and txn_aborts = ref 0 in
  let lat_h = Hist.create () and svc_h = Hist.create () in
  let txn_lat_h = Hist.create () in
  (* request latency split by op class, recorded at reply delivery *)
  let read_h = Hist.create ()
  and write_h = Hist.create ()
  and scan_h = Hist.create () in
  (* offered op mix, counted at generation (shed requests included) *)
  let n_read = ref 0 and n_write = ref 0 and n_scan = ref 0 in
  (* acked mutations: (key, Some vseed | None for delete, server finish ns).
     [fin] is captured inside the mutation's critical section (for a
     transaction: the decision record's persist), so per key it orders
     exactly as the store applied the mutations even when single ops
     and cross-shard transactions interleave. *)
  let ledger : (int * int option * int) list ref = ref [] in
  let outstanding : (int, pending) Hashtbl.t array =
    Array.init cfg.clients (fun _ -> Hashtbl.create 64)
  in

  (* ---------- server threads (one per shard) ---------- *)
  let server_body i () =
    let server_end = match t_crash with Some c -> c | None -> max_int in
    let handle (m : payload Net.msg) =
      match m.payload with
      | Rep _ -> ()
      | Req r ->
        let t0 = Sched.now () in
        let trace = m.trace in
        (* the request's hop in, split at the delivery timestamp: pure
           wire, then inbox queue wait — known only at dequeue *)
        ignore
          (Obs.Span.add_span ~trace ~parent:m.span Obs.Span.Req_wire
             ~t0:m.sent_at ~t1:m.delivered_at);
        if t0 > m.delivered_at then
          ignore
            (Obs.Span.add_span ~trace ~parent:m.span Obs.Span.Queue
               ~t0:m.delivered_at ~t1:t0);
        let sdec = Obs.Span.open_span ~trace ~parent:m.span Obs.Span.Decode in
        Machine.compute mach 200 (* request decode / dispatch overhead *);
        Obs.Span.close_span sdec;
        let ok, mutated, fin =
          match r.kind with
          | KTxn ->
            (* Kv.txn takes every participant's shard lock itself *)
            let stx = Obs.Span.open_span ~trace ~parent:m.span Obs.Span.Txn in
            let pmark = Obs.Span.persist_mark () in
            let amark = Obs.Span.alloc_mark () in
            let res = Kv.txn svc r.ops ~trace ~span:stx in
            let pns = Obs.Span.persist_since pmark in
            let ans = Obs.Span.alloc_since amark in
            Obs.Span.close_span stx;
            if pns > 0 then begin
              let now = Sched.now () in
              ignore
                (Obs.Span.add_span ~trace ~parent:stx Obs.Span.Persist
                   ~t0:(now - pns) ~t1:now)
            end;
            if ans > 0 then begin
              let now = Sched.now () in
              ignore
                (Obs.Span.add_span ~trace ~parent:stx Obs.Span.Alloc
                   ~t0:(now - ans) ~t1:now)
            end;
            if res.Kv.committed then incr txn_commits else incr txn_aborts;
            (res.Kv.committed, res.Kv.committed, res.Kv.fin)
          | (KGet | KScan) when cfg.mvcc_window > 0 ->
            (* lock-free snapshot read: no Lock_wait, no shard lock —
               the read minted a timestamp and resolves against the
               version chains (KScan becomes a multi-shard merged
               scan, ordered and consistent at one snapshot) *)
            let ssn =
              Obs.Span.open_span ~trace ~parent:m.span Obs.Span.Snapshot
            in
            let rmark = Obs.Span.rcache_mark () in
            let ts = Kv.snapshot svc in
            let ok =
              match r.kind with
              | KGet -> Kv.snapshot_get svc ~ts ~key:r.key <> None
              | _ ->
                ignore
                  (Kv.snapshot_scan svc ~ts ~from_key:r.key ~n:16
                     (fun _ _ -> ()));
                true
            in
            let rns = Obs.Span.rcache_since rmark in
            let fin = Sched.now () in
            Obs.Span.close_span ssn;
            if rns > 0 then
              ignore
                (Obs.Span.add_span ~trace ~parent:ssn Obs.Span.Rcache
                   ~t0:(fin - rns) ~t1:fin);
            (ok, false, fin)
          | _ ->
            let slw =
              Obs.Span.open_span ~trace ~parent:m.span Obs.Span.Lock_wait
            in
            Machine.Lock.with_lock (Kv.shard_lock svc i) (fun () ->
                Obs.Span.close_span slw;
                let sst =
                  Obs.Span.open_span ~trace ~parent:m.span Obs.Span.Store
                in
                let pmark = Obs.Span.persist_mark () in
                let amark = Obs.Span.alloc_mark () in
                let rmark = Obs.Span.rcache_mark () in
                let ok, mutated =
                  match r.kind with
                  | KGet -> (Kv.get svc ~key:r.key <> None, false)
                  | KPut ->
                    let ok = Kv.put svc ~key:r.key ~vseed:r.vseed in
                    (ok, ok)
                  | KDel ->
                    let ok = Kv.delete svc ~key:r.key in
                    (ok, ok)
                  | KScan ->
                    ignore (Kv.scan svc ~from_key:r.key ~n:16);
                    (true, false)
                  | KTxn -> assert false
                in
                let pns = Obs.Span.persist_since pmark in
                let ans = Obs.Span.alloc_since amark in
                let rns = Obs.Span.rcache_since rmark in
                let fin = Sched.now () in
                Obs.Span.close_span sst;
                if pns > 0 then
                  ignore
                    (Obs.Span.add_span ~trace ~parent:sst Obs.Span.Persist
                       ~t0:(fin - pns) ~t1:fin);
                if ans > 0 then
                  ignore
                    (Obs.Span.add_span ~trace ~parent:sst Obs.Span.Alloc
                       ~t0:(fin - ans) ~t1:fin);
                if rns > 0 then
                  ignore
                    (Obs.Span.add_span ~trace ~parent:sst Obs.Span.Rcache
                       ~t0:(fin - rns) ~t1:fin);
                (ok, mutated, fin))
        in
        incr handled;
        Hist.record svc_h (Sched.now () - t0);
        let rep = Rep { rid = r.rid; ok; mutated; fin } in
        if
          not
            (Net.try_send ~trace ~span:m.span net ~dst:(cfg.shards + r.client)
               rep)
        then incr reply_drops
    in
    (* Group commit (batch_window > 1): consecutive already-queued
       single-key mutations drain into one commit group executed by
       [Kv.group_commit] — one covering persist chain per chunk
       instead of per op.  Collection is greedy over the inbox, no
       timers: while one group persists, more requests queue behind
       it, so the batch size self-tunes to the offered load.  A read
       or transaction ends collection and is handled, in arrival
       order, by the unbatched path. *)
    let is_group_member = function
      | Req r -> r.kind = KPut || r.kind = KDel
      | Rep _ -> false
    in
    let op_bytes = function
      | Req { kind = KPut; _ } -> 24 + cfg.value_size
      | _ -> 24
    in
    let rec gather acc n bytes =
      if
        n >= cfg.batch_window
        || (cfg.batch_bytes > 0 && bytes >= cfg.batch_bytes)
      then (List.rev acc, None)
      else
        match Net.recv net ~port:i with
        | Some m when is_group_member m.Net.payload ->
          gather (m :: acc) (n + 1) (bytes + op_bytes m.Net.payload)
        | Some m -> (List.rev acc, Some m)
        | None -> (List.rev acc, None)
    in
    let handle_group msgs =
      (* per-request ingress spans and decode; each request's store
         span opens at its own decode end and closes at the group's
         commit, so the shared group-execution interval partitions
         every member's latency budget *)
      let members =
        List.map
          (fun (m : payload Net.msg) ->
            let rid, client, kind, key, vseed =
              match m.Net.payload with
              | Req { rid; client; kind; key; vseed; _ } ->
                (rid, client, kind, key, vseed)
              | Rep _ -> assert false
            in
            let t0 = Sched.now () in
            ignore
              (Obs.Span.add_span ~trace:m.Net.trace ~parent:m.Net.span
                 Obs.Span.Req_wire ~t0:m.Net.sent_at ~t1:m.Net.delivered_at);
            if t0 > m.Net.delivered_at then
              ignore
                (Obs.Span.add_span ~trace:m.Net.trace ~parent:m.Net.span
                   Obs.Span.Queue ~t0:m.Net.delivered_at ~t1:t0);
            let sdec =
              Obs.Span.open_span ~trace:m.Net.trace ~parent:m.Net.span
                Obs.Span.Decode
            in
            Machine.compute mach 200;
            Obs.Span.close_span sdec;
            let sst =
              Obs.Span.open_span ~trace:m.Net.trace ~parent:m.Net.span
                Obs.Span.Store
            in
            { g_msg = m; g_rid = rid; g_client = client; g_kind = kind;
              g_key = key; g_vseed = vseed; g_t0 = t0; g_store = sst })
          msgs
      in
      let ops =
        List.map
          (fun g ->
            match g.g_kind with
            | KPut -> Kv.Tput { key = g.g_key; vseed = g.g_vseed }
            | KDel -> Kv.Tdel { key = g.g_key }
            | _ -> assert false)
          members
      in
      let results = Kv.group_commit svc ~shard:i ops in
      List.iter2
        (fun g (ok, fin) ->
          Obs.Span.close_span g.g_store;
          incr handled;
          Hist.record svc_h (Sched.now () - g.g_t0);
          let rep = Rep { rid = g.g_rid; ok; mutated = ok; fin } in
          if
            not
              (Net.try_send ~trace:g.g_msg.Net.trace ~span:g.g_msg.Net.span
                 net ~dst:(cfg.shards + g.g_client) rep)
          then incr reply_drops)
        members results
    in
    let handle_batched m =
      if is_group_member m.Net.payload then begin
        let group, leftover = gather [ m ] 1 (op_bytes m.Net.payload) in
        handle_group group;
        match leftover with Some m' -> handle m' | None -> ()
      end
      else handle m
    in
    let rec loop () =
      if Sched.now () >= server_end then ()
      else
        match Net.recv net ~port:i with
        | Some m ->
          handle m;
          loop ()
        | None ->
          if !senders = 0 && Net.pending net ~port:i = 0 then ()
          else begin
            let until = min server_end (Sched.now () + 100_000) in
            (match Net.recv_wait net ~port:i ~until with
             | Some m -> handle m
             | None -> ());
            loop ()
          end
    in
    (* batch_window = 1 takes the pre-batching loop verbatim — the
       regression gate in check.sh diffs its serve JSON byte-for-byte
       against a build without the batching layer *)
    let rec loop_batched () =
      if Sched.now () >= server_end then ()
      else
        match Net.recv net ~port:i with
        | Some m ->
          handle_batched m;
          loop_batched ()
        | None ->
          if !senders = 0 && Net.pending net ~port:i = 0 then ()
          else begin
            let until = min server_end (Sched.now () + 100_000) in
            (match Net.recv_wait net ~port:i ~until with
             | Some m -> handle_batched m
             | None -> ());
            loop_batched ()
          end
    in
    if cfg.batch_window > 1 then loop_batched () else loop ()
  in

  (* ---------- client threads ---------- *)
  let zipf = Zipf.create ~theta:cfg.zipf_theta cfg.keyspace in
  let client_body j () =
    let rng = Prng.create (cfg.seed + (7919 * (j + 1))) in
    (* a transaction's keys: distinct draws from the same zipfian
       popularity; ~1 in 4 ops is a strict delete, so transactions
       abort at a real rate once a hot key is already gone *)
    let gen_txn_ops rid =
      let rec pick ks n guard =
        if n = 0 || guard = 0 then List.rev ks
        else
          let k = 1 + Zipf.scrambled zipf rng in
          if List.mem k ks then pick ks n (guard - 1)
          else pick (k :: ks) (n - 1) (guard - 1)
      in
      List.mapi
        (fun idx k ->
          if Prng.int rng 100 < 25 then Kv.Tdel { key = k }
          else Kv.Tput { key = k; vseed = (rid lsl 4) lor idx })
        (pick [] cfg.txn_ops (8 * cfg.txn_ops))
    in
    let lg =
      Net.Loadgen.create
        ~rate:(cfg.rate /. float_of_int cfg.clients)
        ~seed:(cfg.seed lxor (j * 65537) lxor 0x10AD)
    in
    let out = outstanding.(j) in
    let port = cfg.shards + j in
    let seq = ref 0 in
    let drain () =
      let rec go () =
        match Net.recv net ~port with
        | Some { payload = Rep r; delivered_at; sent_at; _ } ->
          (match Hashtbl.find_opt out r.rid with
           | Some p ->
             Hashtbl.remove out r.rid;
             incr completed;
             Hist.record lat_h (delivered_at - p.p_sent);
             (match p.p_kind with
              | KGet -> Hist.record read_h (delivered_at - p.p_sent)
              | KScan -> Hist.record scan_h (delivered_at - p.p_sent)
              | KPut | KDel | KTxn ->
                Hist.record write_h (delivered_at - p.p_sent));
             (* the reply's hop back, then the root closes at delivery
                (not at this drain) so root = measured latency *)
             ignore
               (Obs.Span.add_span ~trace:p.p_trace ~parent:p.p_span
                  Obs.Span.Rep_wire ~t0:sent_at ~t1:delivered_at);
             Obs.Span.close_span_at p.p_span ~t1:delivered_at;
             if r.mutated then begin
               incr acked_mut;
               match p.p_kind with
               | KTxn ->
                 Hist.record txn_lat_h (delivered_at - p.p_sent);
                 List.iter
                   (fun o ->
                     let k, v =
                       match o with
                       | Kv.Tput { key; vseed } -> (key, Some vseed)
                       | Kv.Tdel { key } -> (key, None)
                     in
                     ledger := (k, v, r.fin) :: !ledger)
                   p.p_ops
               | _ ->
                 let v = if p.p_kind = KPut then Some p.p_vseed else None in
                 ledger := (p.p_key, v, r.fin) :: !ledger
             end
           | None -> ());
          go ()
        | Some _ -> go () (* a Req on a reply port: ignore *)
        | None -> ()
      in
      go ()
    in
    let rec send_loop t_next =
      if t_next >= t_stop then ()
      else begin
        let now = Sched.now () in
        if now < t_next then Sched.sleep (t_next - now);
        if Sched.now () >= t_stop then ()
        else begin
          drain ();
          let key = 1 + Zipf.scrambled zipf rng in
          let die = Prng.int rng 100 in
          incr offered;
          let rid = (j lsl 32) lor !seq in
          incr seq;
          let kind, ops =
            if die < cfg.read_pct then (KGet, [])
            else if die < cfg.read_pct + cfg.delete_pct then (KDel, [])
            else if die < cfg.read_pct + cfg.delete_pct + cfg.scan_pct then
              (KScan, [])
            else if
              die < cfg.read_pct + cfg.delete_pct + cfg.scan_pct + cfg.txn_pct
            then begin
              match gen_txn_ops rid with
              | [] -> (KPut, []) (* key draws starved out: degrade to a put *)
              | ops -> (KTxn, ops)
            end
            else (KPut, [])
          in
          (match kind with
           | KGet -> incr n_read
           | KScan -> incr n_scan
           | KPut | KDel | KTxn -> incr n_write);
          (* a transaction is addressed to its first key's shard; the
             handler fans out to the other participants itself *)
          let key = match ops with o :: _ -> txn_op_key o | [] -> key in
          let dst = Kv.shard_of_key svc key in
          (* root span opened before the send so its id can ride the
             envelope; a refused send leaves it open (incomplete) *)
          let trace = Obs.Span.new_trace () in
          let root =
            Obs.Span.open_span ~trace ~parent:(-1) Obs.Span.Request
          in
          if
            Net.try_send ~trace ~span:root net ~dst
              (Req { rid; client = j; kind; key; vseed = rid; ops })
          then begin
            incr admitted;
            let p_sent = Sched.now () in
            (* align the root with the send timestamp (the send's CPU
               charge lands between open_span and here) *)
            Obs.Span.set_start root ~t0:p_sent;
            Hashtbl.replace out rid
              { p_kind = kind;
                p_key = key;
                p_vseed = rid;
                p_ops = ops;
                p_sent;
                p_trace = trace;
                p_span = root }
          end
          else incr shed (* Overloaded: admission refused, request dropped *);
          send_loop (t_next + Net.Loadgen.next_gap_ns lg)
        end
      end
    in
    send_loop (Net.Loadgen.next_gap_ns lg);
    decr senders;
    (match t_crash with
     | Some _ -> drain () (* take what already arrived; rest is in flight *)
     | None ->
       let deadline = t_stop + grace_ns in
       let rec wait () =
         drain ();
         if Hashtbl.length out > 0 && Sched.now () < deadline then begin
           Sched.sleep 10_000;
           wait ()
         end
       in
       wait ())
  in

  for i = 0 to cfg.shards - 1 do
    ignore (Machine.spawn mach ~cpu:i (server_body i))
  done;
  for j = 0 to cfg.clients - 1 do
    ignore (Machine.spawn mach ~cpu:(client_cpu j) (client_body j))
  done;
  let t_run0 = Sched.horizon (Machine.engine mach) in
  Machine.run mach;
  let sim_ns = Sched.horizon (Machine.engine mach) - t_run0 in

  (* mutations never acked: their keys are ambiguous for verification *)
  let in_flight_keys = Hashtbl.create 64 in
  Array.iter
    (fun out ->
      Hashtbl.iter
        (fun _ p ->
          match p.p_kind with
          | KPut | KDel -> Hashtbl.replace in_flight_keys p.p_key ()
          | KTxn ->
            List.iter
              (fun o -> Hashtbl.replace in_flight_keys (txn_op_key o) ())
              p.p_ops
          | KGet | KScan -> ())
        out)
    outstanding;
  let in_flight_at_crash = Hashtbl.length in_flight_keys in

  let verify store =
    let expected = Hashtbl.create (preload_n + 64) in
    for k = 1 to preload_n do
      Hashtbl.replace expected k (Some k)
    done;
    let entries =
      List.sort (fun (_, _, a) (_, _, b) -> compare a b) !ledger
    in
    List.iter (fun (k, v, _) -> Hashtbl.replace expected k v) entries;
    Hashtbl.iter
      (fun k () ->
        if not (Hashtbl.mem expected k) then Hashtbl.replace expected k None)
      in_flight_keys;
    let checked = ref 0 and ambiguous = ref 0 and mismatches = ref 0 in
    Hashtbl.iter
      (fun k exp ->
        if Hashtbl.mem in_flight_keys k then incr ambiguous
        else begin
          incr checked;
          let got = Kv.get store ~key:k in
          let want =
            Option.map (fun vs -> Kv.value_checksum store ~vseed:vs) exp
          in
          if got <> want then incr mismatches
        end)
      expected;
    { checked = !checked; ambiguous = !ambiguous; mismatches = !mismatches }
  in

  let crashed, rto_ns, recovery, ledger_rep =
    match t_crash with
    | None -> (false, 0, None, verify svc)
    | Some _ ->
      Nvmm.Memdev.crash (Machine.dev mach) `Strict;
      let got = ref None in
      let secs =
        Machine.parallel mach ~threads:1 (fun _ ->
            let inst' = reattach mach in
            let inst' =
              (* the recovered heap reclaimed every lease; serve the
                 post-crash store through a fresh cache *)
              if cfg.tcache_mag > 0 then
                fst (Tcache.wrap ~mag:cfg.tcache_mag inst')
              else inst'
            in
            got :=
              Some
                (Kv.attach ~mvcc_window:cfg.mvcc_window
                   ~rcache_entries:cfg.rcache_entries inst'))
      in
      let svc', reco = Option.get !got in
      Kv.check svc';
      (true, int_of_float (secs *. 1e9), Some reco, verify svc')
  in

  let queue_max_depth = ref 0 in
  for i = 0 to cfg.shards - 1 do
    let s = Net.stats net ~port:i in
    if s.Net.max_depth > !queue_max_depth then queue_max_depth := s.Net.max_depth
  done;

  let secs = float_of_int t_stop /. 1e9 in
  let scope = cfg.scope in
  let g name v = Obs.Metrics.set_gauge ~scope name v in
  g "offered" (float_of_int !offered);
  g "admitted" (float_of_int !admitted);
  g "shed" (float_of_int !shed);
  g "handled" (float_of_int !handled);
  g "completed" (float_of_int !completed);
  g "acked_mutations" (float_of_int !acked_mut);
  g "reply_drops" (float_of_int !reply_drops);
  g "queue_max_depth" (float_of_int !queue_max_depth);
  g "rto_ns" (float_of_int rto_ns);
  g "txn_committed" (float_of_int !txn_commits);
  g "txn_aborted" (float_of_int !txn_aborts);
  g "ops_read" (float_of_int !n_read);
  g "ops_write" (float_of_int !n_write);
  g "ops_scan" (float_of_int !n_scan);
  g "mvcc_truncated_reads" (float_of_int (Kv.mvcc_truncated_reads svc));
  Array.iteri
    (fun i (chains, versions) ->
      let sscope = Printf.sprintf "%s/shard%d" scope i in
      Obs.Metrics.set_gauge ~scope:sscope "mvcc_chains" (float_of_int chains);
      Obs.Metrics.set_gauge ~scope:sscope "mvcc_chain_versions"
        (float_of_int versions))
    (Kv.mvcc_shard_chains svc);
  (match tch with
   | Some t ->
     let hits, misses, refills, flushes = Tcache.stats t in
     g "tcache_hits" (float_of_int hits);
     g "tcache_misses" (float_of_int misses);
     g "tcache_bin_refills" (float_of_int refills);
     g "tcache_bin_flushes" (float_of_int flushes)
   | None -> ());
  if cfg.rcache_entries > 0 then begin
    let hits, misses, evictions, invalidations = Kv.rcache_stats svc in
    g "rcache_hits" (float_of_int hits);
    g "rcache_misses" (float_of_int misses);
    g "rcache_evictions" (float_of_int evictions);
    g "rcache_invalidations" (float_of_int invalidations)
  end;
  Hist.merge ~into:(Obs.Metrics.log_histogram ~scope "latency_ns") lat_h;
  Hist.merge ~into:(Obs.Metrics.log_histogram ~scope "service_ns") svc_h;
  Hist.merge ~into:(Obs.Metrics.log_histogram ~scope "txn_latency_ns") txn_lat_h;
  Hist.merge ~into:(Obs.Metrics.log_histogram ~scope "read_latency_ns") read_h;
  Hist.merge ~into:(Obs.Metrics.log_histogram ~scope "write_latency_ns") write_h;
  Hist.merge ~into:(Obs.Metrics.log_histogram ~scope "scan_latency_ns") scan_h;

  { offered = !offered;
    admitted = !admitted;
    shed = !shed;
    completed = !completed;
    acked_mutations = !acked_mut;
    sim_ns;
    throughput = float_of_int !handled /. secs;
    goodput = float_of_int !completed /. secs;
    latency = percentiles_of lat_h;
    service = percentiles_of svc_h;
    crashed;
    rto_ns;
    recovery;
    ledger = ledger_rep;
    in_flight_at_crash;
    queue_max_depth = !queue_max_depth;
    txns_committed = !txn_commits;
    txns_aborted = !txn_aborts;
    txn_latency = percentiles_of txn_lat_h;
    read_latency = percentiles_of read_h;
    write_latency = percentiles_of write_h;
    scan_latency = percentiles_of scan_h;
    ops_read = !n_read;
    ops_write = !n_write;
    ops_scan = !n_scan }

(* ------------------------------------------------------------------ *)
(* Replicated serving: primary + backup on a two-machine cluster.     *)
(* ------------------------------------------------------------------ *)

type repl_config = {
  repl_mode : Replica.mode;
  wire_ns : int;
  repl_window : int;
  retransmit_ns : int;
  link_drop_pct : int;
  link_dup_pct : int;
}

let default_repl_config =
  { repl_mode = Replica.Sync;
    wire_ns = 20_000;
    repl_window = 64;
    retransmit_ns = 120_000;
    link_drop_pct = 0;
    link_dup_pct = 0 }

type repl_result = {
  base : result;
  shipped : int;
  acked_records : int;
  retransmits : int;
  max_lag : int;
  link_dropped : int;
  link_duplicated : int;
  link_flushes : int;
  backup_applied : int;
  tail_replayed : int;
  indoubt_aborted : int;
  backup_ledger : ledger_report option;
  sync : bool;
}

let run_replicated ~make ?(mcfg = Machine.Config.default) cfg rcfg =
  if cfg.shards < 1 || cfg.clients < 1 then
    invalid_arg "Server.run_replicated: shards and clients must be >= 1";
  if cfg.rate <= 0. || cfg.duration <= 0. then
    invalid_arg "Server.run_replicated: rate and duration must be positive";
  if cfg.read_pct + cfg.delete_pct + cfg.scan_pct + cfg.txn_pct > 100 then
    invalid_arg "Server.run_replicated: op mix exceeds 100%";
  if cfg.txn_ops < 1 || cfg.txn_ops > Kv.max_txn_ops then
    invalid_arg "Server.run_replicated: txn_ops out of range";
  if cfg.batch_window < 1 then
    invalid_arg "Server.run_replicated: batch_window < 1";
  if cfg.batch_bytes < 0 then
    invalid_arg "Server.run_replicated: batch_bytes < 0";
  if cfg.mvcc_window < 0 then
    invalid_arg "Server.run_replicated: mvcc_window < 0";
  if cfg.tcache_mag < 0 then
    invalid_arg "Server.run_replicated: tcache_mag < 0";
  if cfg.rcache_entries < 0 then
    invalid_arg "Server.run_replicated: rcache_entries < 0";
  (match cfg.crash_at with
   | Some f when f <= 0. || f >= 1. ->
     invalid_arg "Server.run_replicated: crash_at must be in (0, 1)"
   | _ -> ());
  if rcfg.wire_ns < 1 then
    invalid_arg "Server.run_replicated: wire_ns < 1";
  let sync = rcfg.repl_mode = Replica.Sync in

  let cluster = Cluster.create ~cfg:mcfg ~machines:2 () in
  let primary = Cluster.machine cluster 0 in
  let backup = Cluster.machine cluster 1 in
  let ncpu = mcfg.Machine.Config.num_cpus in
  if cfg.shards > ncpu then
    invalid_arg "Server.run_replicated: more shards than CPUs";
  let wrap_inst inst =
    if cfg.tcache_mag > 0 then
      let i, t = Tcache.wrap ~mag:cfg.tcache_mag inst in
      (i, Some t)
    else (inst, None)
  in
  let inst_p, tch_p = wrap_inst (make primary) in
  let inst_b, tch_b = wrap_inst (make backup) in
  let svc =
    Kv.create ~mvcc_window:cfg.mvcc_window ~rcache_entries:cfg.rcache_entries
      inst_p ~shards:cfg.shards ~value_size:cfg.value_size
  in
  (* the backup grows chains too (group-installed, like the primary)
     so a promotion can serve snapshots at once — and caches reads the
     same way, its entries invalidated by the replicated applies *)
  let svc_b =
    Kv.create ~mvcc_window:cfg.mvcc_window ~rcache_entries:cfg.rcache_entries
      inst_b ~shards:cfg.shards ~value_size:cfg.value_size
  in

  (* identical durable baseline on both machines *)
  let preload_n = min cfg.preload cfg.keyspace in
  for k = 1 to preload_n do
    if not (Kv.put svc ~key:k ~vseed:k && Kv.put svc_b ~key:k ~vseed:k) then
      failwith "Server.run_replicated: preload exhausted the heap"
  done;
  Nvmm.Memdev.drain (Machine.dev primary);
  Nvmm.Memdev.drain (Machine.dev backup);

  let link : Replica.msg Cluster.Link.t =
    Cluster.Link.create ~wire_ns:rcfg.wire_ns ~capacity:1024
      ~drop_pct:rcfg.link_drop_pct ~dup_pct:rcfg.link_dup_pct
      ~seed:(cfg.seed lxor 0x5EA) ()
  in
  let repl_cfg =
    { Replica.mode = rcfg.repl_mode;
      window = rcfg.repl_window;
      retransmit_ns = rcfg.retransmit_ns;
      poll_ns = 400 }
  in
  let shipper = Replica.Shipper.create repl_cfg ~shards:cfg.shards ~link in
  let repl_lag_h = Hist.create () in
  let applier =
    Replica.Applier.create repl_cfg ~shards:cfg.shards ~link
      ~ack_batch:(cfg.batch_window > 1)
      ~on_apply:(fun ~lat_ns -> Hist.record repl_lag_h lat_ns)
      ~apply:(fun ~shard op -> Txn.apply_replicated svc_b ~shard op)
      ~apply_group:(fun ~shard ops ->
        Txn.apply_replicated_group svc_b ~shard ops)
  in

  let duration_ns = int_of_float (cfg.duration *. 1e9) in
  let t_crash =
    Option.map
      (fun f -> max 1 (int_of_float (f *. float_of_int duration_ns)))
      cfg.crash_at
  in
  let t_stop = match t_crash with Some c -> min c duration_ns | None -> duration_ns in
  let grace_ns = 5_000_000 in

  let reply_cap = max 1024 (4 * cfg.queue_capacity) in
  let client_cpu j =
    if cfg.shards >= ncpu then j mod ncpu
    else cfg.shards + (j mod (ncpu - cfg.shards))
  in
  let ports =
    Array.init (cfg.shards + cfg.clients) (fun i ->
        if i < cfg.shards then (i, cfg.queue_capacity)
        else (client_cpu (i - cfg.shards), reply_cap))
  in
  let net : payload Net.t = Net.create primary ~ports ~poll_ns:2_000 () in

  let offered = ref 0 and admitted = ref 0 and shed = ref 0 in
  let handled = ref 0 and completed = ref 0 and acked_mut = ref 0 in
  let reply_drops = ref 0 in
  let senders = ref cfg.clients in
  let live_servers = ref cfg.shards in
  let ship_pump_done = ref false in
  let txn_commits = ref 0 and txn_aborts = ref 0 in
  let indoubt_aborted = ref 0 in
  let lat_h = Hist.create () and svc_h = Hist.create () in
  let txn_lat_h = Hist.create () in
  (* request latency split by op class, recorded at reply delivery *)
  let read_h = Hist.create ()
  and write_h = Hist.create ()
  and scan_h = Hist.create () in
  (* offered op mix, counted at generation (shed requests included) *)
  let n_read = ref 0 and n_write = ref 0 and n_scan = ref 0 in
  let ledger : (int * int option * int) list ref = ref [] in
  let outstanding : (int, pending) Hashtbl.t array =
    Array.init cfg.clients (fun _ -> Hashtbl.create 64)
  in

  (* ---------- primary: shard handler threads ---------- *)
  let server_body i () =
    let server_end = match t_crash with Some c -> c | None -> max_int in
    let sync_deadline =
      match t_crash with Some c -> c | None -> t_stop + grace_ns
    in
    let batched = cfg.batch_window > 1 in
    let handle (m : payload Net.msg) =
      match m.payload with
      | Rep _ -> ()
      | Req r ->
        let t0 = Sched.now () in
        let trace = m.trace in
        ignore
          (Obs.Span.add_span ~trace ~parent:m.span Obs.Span.Req_wire
             ~t0:m.sent_at ~t1:m.delivered_at);
        if t0 > m.delivered_at then
          ignore
            (Obs.Span.add_span ~trace ~parent:m.span Obs.Span.Queue
               ~t0:m.delivered_at ~t1:t0);
        let sdec = Obs.Span.open_span ~trace ~parent:m.span Obs.Span.Decode in
        Machine.compute primary 200;
        Obs.Span.close_span sdec;
        (* Replication: each mutation ships inside its critical section
           (right after the local persist, before the lock is released)
           so every shard's sequenced stream orders exactly as the store
           applied the mutations.  The seqs of all shipped records are
           collected so a sync-mode reply can wait on every participant
           stream. *)
        let seqs = ref [] in
        let ship ~sp shard op =
          seqs :=
            (shard, Replica.Shipper.ship shipper ~trace ~span:sp ~shard op)
            :: !seqs
        in
        let txn_wait_ok = ref true in
        let ok, mutated, fin =
          match r.kind with
          | KTxn ->
            let stx = Obs.Span.open_span ~trace ~parent:m.span Obs.Span.Txn in
            let pmark = Obs.Span.persist_mark () in
            let amark = Obs.Span.alloc_mark () in
            let res =
              Kv.txn svc r.ops ~trace ~span:stx ~on_commit:(fun res ->
                  let nparts = List.length res.Kv.participants in
                  let dseqs =
                    if batched then begin
                      (* piggybacked decide: every participant's prepare
                         AND decide records stage in the doorbell buffer
                         and leave as one frame — the decide stops paying
                         its own round trip *)
                      let ds =
                        List.map
                          (fun (s, ops) ->
                            ignore
                              (Replica.Shipper.ship_buffered shipper
                                 ~shard:s
                                 (Replica.Txn_prepare
                                    { txn = res.Kv.txn_id; ops }));
                            ( s,
                              Replica.Shipper.ship_buffered shipper ~shard:s
                                (Replica.Txn_decide
                                   { txn = res.Kv.txn_id;
                                     commit = true;
                                     nparts }) ))
                          res.Kv.participants
                      in
                      ignore (Replica.Shipper.flush shipper);
                      ds
                    end
                    else
                      List.map
                        (fun (s, ops) ->
                          ignore
                            (Replica.Shipper.ship shipper ~trace ~span:stx
                               ~shard:s
                               (Replica.Txn_prepare
                                  { txn = res.Kv.txn_id; ops }));
                          ( s,
                            Replica.Shipper.ship shipper ~trace ~span:stx
                              ~shard:s
                              (Replica.Txn_decide
                                 { txn = res.Kv.txn_id;
                                   commit = true;
                                   nparts }) ))
                        res.Kv.participants
                  in
                  (* 2PC lock discipline: hold the participant locks
                     until the backup has acked the whole group — in
                     BOTH modes, not just sync.  Streams are shipped
                     under these locks, so the wait guarantees the next
                     transaction touching one of these shards cannot
                     reach the backup while this group's slots are
                     still pending; without it a decide lagging on one
                     stream (loss, retransmit) lets a later prepare
                     collide with the occupied slot. *)
                  let sra =
                    Obs.Span.open_span ~trace ~parent:stx Obs.Span.Repl_ack
                  in
                  txn_wait_ok :=
                    List.for_all
                      (fun (shard, seq) ->
                        Replica.Shipper.wait_acked shipper ~shard ~seq
                          ~deadline:sync_deadline)
                      dseqs;
                  Obs.Span.close_span sra)
            in
            let pns = Obs.Span.persist_since pmark in
            let ans = Obs.Span.alloc_since amark in
            Obs.Span.close_span stx;
            if pns > 0 then begin
              let now = Sched.now () in
              ignore
                (Obs.Span.add_span ~trace ~parent:stx Obs.Span.Persist
                   ~t0:(now - pns) ~t1:now)
            end;
            if ans > 0 then begin
              let now = Sched.now () in
              ignore
                (Obs.Span.add_span ~trace ~parent:stx Obs.Span.Alloc
                   ~t0:(now - ans) ~t1:now)
            end;
            if res.Kv.committed then incr txn_commits else incr txn_aborts;
            (res.Kv.committed, res.Kv.committed, res.Kv.fin)
          | (KGet | KScan) when cfg.mvcc_window > 0 ->
            (* lock-free snapshot read: no Lock_wait, no shard lock —
               the read minted a timestamp and resolves against the
               version chains (KScan becomes a multi-shard merged
               scan, ordered and consistent at one snapshot) *)
            let ssn =
              Obs.Span.open_span ~trace ~parent:m.span Obs.Span.Snapshot
            in
            let rmark = Obs.Span.rcache_mark () in
            let ts = Kv.snapshot svc in
            let ok =
              match r.kind with
              | KGet -> Kv.snapshot_get svc ~ts ~key:r.key <> None
              | _ ->
                ignore
                  (Kv.snapshot_scan svc ~ts ~from_key:r.key ~n:16
                     (fun _ _ -> ()));
                true
            in
            let rns = Obs.Span.rcache_since rmark in
            let fin = Sched.now () in
            Obs.Span.close_span ssn;
            if rns > 0 then
              ignore
                (Obs.Span.add_span ~trace ~parent:ssn Obs.Span.Rcache
                   ~t0:(fin - rns) ~t1:fin);
            (ok, false, fin)
          | _ ->
            let slw =
              Obs.Span.open_span ~trace ~parent:m.span Obs.Span.Lock_wait
            in
            Machine.Lock.with_lock (Kv.shard_lock svc i) (fun () ->
                Obs.Span.close_span slw;
                let sst =
                  Obs.Span.open_span ~trace ~parent:m.span Obs.Span.Store
                in
                let pmark = Obs.Span.persist_mark () in
                let amark = Obs.Span.alloc_mark () in
                let rmark = Obs.Span.rcache_mark () in
                let ok, mutated =
                  match r.kind with
                  | KGet -> (Kv.get svc ~key:r.key <> None, false)
                  | KPut ->
                    let ok = Kv.put svc ~key:r.key ~vseed:r.vseed in
                    (ok, ok)
                  | KDel ->
                    let ok = Kv.delete svc ~key:r.key in
                    (ok, ok)
                  | KScan ->
                    ignore (Kv.scan svc ~from_key:r.key ~n:16);
                    (true, false)
                  | KTxn -> assert false
                in
                if mutated then
                  ship ~sp:sst i
                    (match r.kind with
                     | KPut -> Replica.Put { key = r.key; vseed = r.vseed }
                     | _ -> Replica.Del { key = r.key });
                let pns = Obs.Span.persist_since pmark in
                let ans = Obs.Span.alloc_since amark in
                let rns = Obs.Span.rcache_since rmark in
                let fin = Sched.now () in
                Obs.Span.close_span sst;
                if pns > 0 then
                  ignore
                    (Obs.Span.add_span ~trace ~parent:sst Obs.Span.Persist
                       ~t0:(fin - pns) ~t1:fin);
                if ans > 0 then
                  ignore
                    (Obs.Span.add_span ~trace ~parent:sst Obs.Span.Alloc
                       ~t0:(fin - ans) ~t1:fin);
                if rns > 0 then
                  ignore
                    (Obs.Span.add_span ~trace ~parent:sst Obs.Span.Rcache
                       ~t0:(fin - rns) ~t1:fin);
                (ok, mutated, fin))
        in
        (* Sync mode holds the reply until the backup's cumulative ack
           covers every shipped record — an acked mutation (single op
           or whole transaction) must survive primary loss.  On wait
           timeout (crash boundary) the reply is withheld: the client
           keeps the request outstanding and verification treats its
           keys as ambiguous rather than guaranteed, which is what
           makes a promote-time presumed-abort of a half-delivered
           transaction safe. *)
        let replicated =
          if r.kind = KTxn then (not sync) || !txn_wait_ok
          else if (not sync) || !seqs = [] then true
          else begin
            let sra =
              Obs.Span.open_span ~trace ~parent:m.span Obs.Span.Repl_ack
            in
            let acked =
              List.for_all
                (fun (shard, seq) ->
                  Replica.Shipper.wait_acked shipper ~shard ~seq
                    ~deadline:sync_deadline)
                !seqs
            in
            Obs.Span.close_span sra;
            acked
          end
        in
        incr handled;
        Hist.record svc_h (Sched.now () - t0);
        if replicated then begin
          let rep = Rep { rid = r.rid; ok; mutated; fin } in
          if
            not
              (Net.try_send ~trace ~span:m.span net
                 ~dst:(cfg.shards + r.client) rep)
          then incr reply_drops
        end
    in
    (* Group commit + doorbell batching (batch_window > 1): the group
       persists as one chunk chain, its replication records stage in
       the link's doorbell buffer and leave as one frame per chunk, and
       sync mode pays ONE ack wait for the whole group — each member's
       wait shows up as a Flush_wait span (waiting for the covering
       flush), not as queueing behind its predecessors' round trips. *)
    let is_group_member = function
      | Req r -> r.kind = KPut || r.kind = KDel
      | Rep _ -> false
    in
    let op_bytes = function
      | Req { kind = KPut; _ } -> 24 + cfg.value_size
      | _ -> 24
    in
    let rec gather acc n bytes =
      if
        n >= cfg.batch_window
        || (cfg.batch_bytes > 0 && bytes >= cfg.batch_bytes)
      then (List.rev acc, None)
      else
        match Net.recv net ~port:i with
        | Some m when is_group_member m.Net.payload ->
          gather (m :: acc) (n + 1) (bytes + op_bytes m.Net.payload)
        | Some m -> (List.rev acc, Some m)
        | None -> (List.rev acc, None)
    in
    let handle_group msgs =
      let members =
        List.map
          (fun (m : payload Net.msg) ->
            let rid, client, kind, key, vseed =
              match m.Net.payload with
              | Req { rid; client; kind; key; vseed; _ } ->
                (rid, client, kind, key, vseed)
              | Rep _ -> assert false
            in
            let t0 = Sched.now () in
            ignore
              (Obs.Span.add_span ~trace:m.Net.trace ~parent:m.Net.span
                 Obs.Span.Req_wire ~t0:m.Net.sent_at ~t1:m.Net.delivered_at);
            if t0 > m.Net.delivered_at then
              ignore
                (Obs.Span.add_span ~trace:m.Net.trace ~parent:m.Net.span
                   Obs.Span.Queue ~t0:m.Net.delivered_at ~t1:t0);
            let sdec =
              Obs.Span.open_span ~trace:m.Net.trace ~parent:m.Net.span
                Obs.Span.Decode
            in
            Machine.compute primary 200;
            Obs.Span.close_span sdec;
            let sst =
              Obs.Span.open_span ~trace:m.Net.trace ~parent:m.Net.span
                Obs.Span.Store
            in
            { g_msg = m; g_rid = rid; g_client = client; g_kind = kind;
              g_key = key; g_vseed = vseed; g_t0 = t0; g_store = sst })
          msgs
      in
      let ops =
        List.map
          (fun g ->
            match g.g_kind with
            | KPut -> Kv.Tput { key = g.g_key; vseed = g.g_vseed }
            | KDel -> Kv.Tdel { key = g.g_key }
            | _ -> assert false)
          members
      in
      (* ship inside the shard lock, per chunk, as one doorbell frame *)
      let last_seq = ref (-1) in
      let results =
        Kv.group_commit svc ~shard:i ops ~on_chunk:(fun ~fin:_ cops ->
            List.iter
              (fun op ->
                let rop =
                  match op with
                  | Kv.Tput { key; vseed } -> Replica.Put { key; vseed }
                  | Kv.Tdel { key } -> Replica.Del { key }
                in
                last_seq := Replica.Shipper.ship_buffered shipper ~shard:i rop)
              cops;
            ignore (Replica.Shipper.flush shipper))
      in
      List.iter (fun g -> Obs.Span.close_span g.g_store) members;
      (* one cumulative ack wait covers every member of the group *)
      let replicated =
        if (not sync) || !last_seq < 0 then true
        else begin
          let waits =
            List.map
              (fun g ->
                Obs.Span.open_span ~trace:g.g_msg.Net.trace
                  ~parent:g.g_msg.Net.span Obs.Span.Flush_wait)
              members
          in
          let acked =
            Replica.Shipper.wait_acked shipper ~shard:i ~seq:!last_seq
              ~deadline:sync_deadline
          in
          List.iter Obs.Span.close_span waits;
          acked
        end
      in
      List.iter2
        (fun g (ok, fin) ->
          incr handled;
          Hist.record svc_h (Sched.now () - g.g_t0);
          if replicated then begin
            let rep = Rep { rid = g.g_rid; ok; mutated = ok; fin } in
            if
              not
                (Net.try_send ~trace:g.g_msg.Net.trace ~span:g.g_msg.Net.span
                   net ~dst:(cfg.shards + g.g_client) rep)
            then incr reply_drops
          end)
        members results
    in
    let handle_batched m =
      if is_group_member m.Net.payload then begin
        let group, leftover = gather [ m ] 1 (op_bytes m.Net.payload) in
        handle_group group;
        match leftover with Some m' -> handle m' | None -> ()
      end
      else handle m
    in
    let rec loop () =
      if Sched.now () >= server_end then ()
      else
        match Net.recv net ~port:i with
        | Some m ->
          handle m;
          loop ()
        | None ->
          if !senders = 0 && Net.pending net ~port:i = 0 then ()
          else begin
            let until = min server_end (Sched.now () + 100_000) in
            (match Net.recv_wait net ~port:i ~until with
             | Some m -> handle m
             | None -> ());
            loop ()
          end
    in
    let rec loop_batched () =
      if Sched.now () >= server_end then ()
      else
        match Net.recv net ~port:i with
        | Some m ->
          handle_batched m;
          loop_batched ()
        | None ->
          if !senders = 0 && Net.pending net ~port:i = 0 then ()
          else begin
            let until = min server_end (Sched.now () + 100_000) in
            (match Net.recv_wait net ~port:i ~until with
             | Some m -> handle_batched m
             | None -> ());
            loop_batched ()
          end
    in
    if batched then loop_batched () else loop ();
    decr live_servers
  in

  (* ---------- primary: replication pump thread ---------- *)
  let ship_pump_body () =
    let deadline =
      match t_crash with Some c -> c | None -> t_stop + (4 * grace_ns)
    in
    Replica.Shipper.pump shipper ~until:(fun () -> !live_servers = 0) ~deadline;
    ship_pump_done := true
  in

  (* ---------- backup: applier thread ---------- *)
  let applier_body () =
    let until =
      match t_crash with
      | Some _ ->
        (* On a crash run the applier stops where the primary's pump
           stopped; whatever the wire still holds is the tail that the
           failover replays — and its replay cost is what we charge to
           the promote RTO. *)
        fun () -> !ship_pump_done
      | None ->
        fun () ->
          !ship_pump_done && Cluster.Link.pending link ~ep:1 = 0
    in
    Replica.Applier.pump applier ~until
  in

  (* ---------- clients (identical to the unreplicated run) ---------- *)
  let zipf = Zipf.create ~theta:cfg.zipf_theta cfg.keyspace in
  let client_body j () =
    let rng = Prng.create (cfg.seed + (7919 * (j + 1))) in
    (* a transaction's keys: distinct draws from the same zipfian
       popularity; ~1 in 4 ops is a strict delete, so transactions
       abort at a real rate once a hot key is already gone *)
    let gen_txn_ops rid =
      let rec pick ks n guard =
        if n = 0 || guard = 0 then List.rev ks
        else
          let k = 1 + Zipf.scrambled zipf rng in
          if List.mem k ks then pick ks n (guard - 1)
          else pick (k :: ks) (n - 1) (guard - 1)
      in
      List.mapi
        (fun idx k ->
          if Prng.int rng 100 < 25 then Kv.Tdel { key = k }
          else Kv.Tput { key = k; vseed = (rid lsl 4) lor idx })
        (pick [] cfg.txn_ops (8 * cfg.txn_ops))
    in
    let lg =
      Net.Loadgen.create
        ~rate:(cfg.rate /. float_of_int cfg.clients)
        ~seed:(cfg.seed lxor (j * 65537) lxor 0x10AD)
    in
    let out = outstanding.(j) in
    let port = cfg.shards + j in
    let seq = ref 0 in
    let drain () =
      let rec go () =
        match Net.recv net ~port with
        | Some { payload = Rep r; delivered_at; sent_at; _ } ->
          (match Hashtbl.find_opt out r.rid with
           | Some p ->
             Hashtbl.remove out r.rid;
             incr completed;
             Hist.record lat_h (delivered_at - p.p_sent);
             (match p.p_kind with
              | KGet -> Hist.record read_h (delivered_at - p.p_sent)
              | KScan -> Hist.record scan_h (delivered_at - p.p_sent)
              | KPut | KDel | KTxn ->
                Hist.record write_h (delivered_at - p.p_sent));
             (* the reply's hop back, then the root closes at delivery
                (not at this drain) so root = measured latency *)
             ignore
               (Obs.Span.add_span ~trace:p.p_trace ~parent:p.p_span
                  Obs.Span.Rep_wire ~t0:sent_at ~t1:delivered_at);
             Obs.Span.close_span_at p.p_span ~t1:delivered_at;
             if r.mutated then begin
               incr acked_mut;
               match p.p_kind with
               | KTxn ->
                 Hist.record txn_lat_h (delivered_at - p.p_sent);
                 List.iter
                   (fun o ->
                     let k, v =
                       match o with
                       | Kv.Tput { key; vseed } -> (key, Some vseed)
                       | Kv.Tdel { key } -> (key, None)
                     in
                     ledger := (k, v, r.fin) :: !ledger)
                   p.p_ops
               | _ ->
                 let v = if p.p_kind = KPut then Some p.p_vseed else None in
                 ledger := (p.p_key, v, r.fin) :: !ledger
             end
           | None -> ());
          go ()
        | Some _ -> go ()
        | None -> ()
      in
      go ()
    in
    let rec send_loop t_next =
      if t_next >= t_stop then ()
      else begin
        let now = Sched.now () in
        if now < t_next then Sched.sleep (t_next - now);
        if Sched.now () >= t_stop then ()
        else begin
          drain ();
          let key = 1 + Zipf.scrambled zipf rng in
          let die = Prng.int rng 100 in
          incr offered;
          let rid = (j lsl 32) lor !seq in
          incr seq;
          let kind, ops =
            if die < cfg.read_pct then (KGet, [])
            else if die < cfg.read_pct + cfg.delete_pct then (KDel, [])
            else if die < cfg.read_pct + cfg.delete_pct + cfg.scan_pct then
              (KScan, [])
            else if
              die < cfg.read_pct + cfg.delete_pct + cfg.scan_pct + cfg.txn_pct
            then begin
              match gen_txn_ops rid with
              | [] -> (KPut, []) (* key draws starved out: degrade to a put *)
              | ops -> (KTxn, ops)
            end
            else (KPut, [])
          in
          (match kind with
           | KGet -> incr n_read
           | KScan -> incr n_scan
           | KPut | KDel | KTxn -> incr n_write);
          (* a transaction is addressed to its first key's shard; the
             handler fans out to the other participants itself *)
          let key = match ops with o :: _ -> txn_op_key o | [] -> key in
          let dst = Kv.shard_of_key svc key in
          (* root span opened before the send so its id can ride the
             envelope; a refused send leaves it open (incomplete) *)
          let trace = Obs.Span.new_trace () in
          let root =
            Obs.Span.open_span ~trace ~parent:(-1) Obs.Span.Request
          in
          if
            Net.try_send ~trace ~span:root net ~dst
              (Req { rid; client = j; kind; key; vseed = rid; ops })
          then begin
            incr admitted;
            let p_sent = Sched.now () in
            (* align the root with the send timestamp (the send's CPU
               charge lands between open_span and here) *)
            Obs.Span.set_start root ~t0:p_sent;
            Hashtbl.replace out rid
              { p_kind = kind;
                p_key = key;
                p_vseed = rid;
                p_ops = ops;
                p_sent;
                p_trace = trace;
                p_span = root }
          end
          else incr shed;
          send_loop (t_next + Net.Loadgen.next_gap_ns lg)
        end
      end
    in
    send_loop (Net.Loadgen.next_gap_ns lg);
    decr senders;
    (match t_crash with
     | Some _ -> drain ()
     | None ->
       let deadline = t_stop + grace_ns in
       let rec wait () =
         drain ();
         if Hashtbl.length out > 0 && Sched.now () < deadline then begin
           Sched.sleep 10_000;
           wait ()
         end
       in
       wait ())
  in

  for i = 0 to cfg.shards - 1 do
    ignore (Machine.spawn primary ~cpu:i (server_body i))
  done;
  ignore (Machine.spawn primary ~cpu:(ncpu - 1) ship_pump_body);
  ignore (Machine.spawn backup ~cpu:0 applier_body);
  for j = 0 to cfg.clients - 1 do
    ignore (Machine.spawn primary ~cpu:(client_cpu j) (client_body j))
  done;
  let t_run0 = Sched.horizon (Cluster.engine cluster) in
  Cluster.run cluster;
  let sim_ns = Sched.horizon (Cluster.engine cluster) - t_run0 in

  let in_flight_keys = Hashtbl.create 64 in
  Array.iter
    (fun out ->
      Hashtbl.iter
        (fun _ p ->
          match p.p_kind with
          | KPut | KDel -> Hashtbl.replace in_flight_keys p.p_key ()
          | KTxn ->
            List.iter
              (fun o -> Hashtbl.replace in_flight_keys (txn_op_key o) ())
              p.p_ops
          | KGet | KScan -> ())
        out)
    outstanding;
  let in_flight_at_crash = Hashtbl.length in_flight_keys in

  let verify store =
    let expected = Hashtbl.create (preload_n + 64) in
    for k = 1 to preload_n do
      Hashtbl.replace expected k (Some k)
    done;
    let entries =
      List.sort (fun (_, _, a) (_, _, b) -> compare a b) !ledger
    in
    List.iter (fun (k, v, _) -> Hashtbl.replace expected k v) entries;
    Hashtbl.iter
      (fun k () ->
        if not (Hashtbl.mem expected k) then Hashtbl.replace expected k None)
      in_flight_keys;
    let checked = ref 0 and ambiguous = ref 0 and mismatches = ref 0 in
    Hashtbl.iter
      (fun k exp ->
        if Hashtbl.mem in_flight_keys k then incr ambiguous
        else begin
          incr checked;
          let got = Kv.get store ~key:k in
          let want =
            Option.map (fun vs -> Kv.value_checksum store ~vseed:vs) exp
          in
          if got <> want then incr mismatches
        end)
      expected;
    { checked = !checked; ambiguous = !ambiguous; mismatches = !mismatches }
  in

  let tail_replayed = ref 0 in
  let crashed, rto_ns, ledger_rep, backup_ledger =
    match t_crash with
    | None ->
      (* clean run: primary serves; the backup must have converged to
         the same acked state (the shipper pump runs until fully
         acked) — report its ledger check alongside *)
      (false, 0, verify svc, Some (verify svc_b))
    | Some _ ->
      (* the primary machine is gone — wipe its unfenced state to make
         the point, then promote the backup: seal the shipped log,
         replay the in-order tail the wire had delivered, and serve.
         The promote makespan is the failover RTO. *)
      Nvmm.Memdev.crash (Machine.dev primary) `Strict;
      let secs =
        Machine.parallel backup ~threads:1 (fun _ ->
            (* the log is sealed at promote start: records the wire has
               not yet delivered are cut off — none of them was ever
               acked (an ack implies the backup already applied) *)
            let sealed_at = Sched.now () in
            Machine.compute backup 1_000 (* failover decision + seal *);
            tail_replayed :=
              Replica.Applier.seal_and_replay applier ~sealed_at;
            (* role change: flush the promoted member's magazine bins
               back to its allocator so it starts clean (the reclaim
               cost is part of the promote makespan) *)
            Option.iter Tcache.reset tch_b;
            (* prepares whose decide died with the primary: presumed
               abort — none of those transactions was ever acked *)
            indoubt_aborted := Kv.txn_resolve_indoubt svc_b)
      in
      Kv.check svc_b;
      (true, int_of_float (secs *. 1e9), verify svc_b, None)
  in

  let queue_max_depth = ref 0 in
  for i = 0 to cfg.shards - 1 do
    let s = Net.stats net ~port:i in
    if s.Net.max_depth > !queue_max_depth then queue_max_depth := s.Net.max_depth
  done;

  let acked_records =
    let n = ref 0 in
    for s = 0 to cfg.shards - 1 do
      n := !n + Replica.Shipper.acked shipper ~shard:s + 1
    done;
    !n
  in
  let lstats = Cluster.Link.stats link ~ep:1 in
  let astats = Cluster.Link.stats link ~ep:0 in

  let secs = float_of_int t_stop /. 1e9 in
  let scope = cfg.scope in
  let g name v = Obs.Metrics.set_gauge ~scope name v in
  g "offered" (float_of_int !offered);
  g "admitted" (float_of_int !admitted);
  g "shed" (float_of_int !shed);
  g "handled" (float_of_int !handled);
  g "completed" (float_of_int !completed);
  g "acked_mutations" (float_of_int !acked_mut);
  g "reply_drops" (float_of_int !reply_drops);
  g "queue_max_depth" (float_of_int !queue_max_depth);
  g "rto_ns" (float_of_int rto_ns);
  g "repl_shipped" (float_of_int (Replica.Shipper.shipped shipper));
  g "repl_acked_records" (float_of_int acked_records);
  g "repl_retransmits" (float_of_int (Replica.Shipper.retransmits shipper));
  g "repl_max_lag" (float_of_int (Replica.Shipper.max_lag shipper));
  g "repl_backup_applied" (float_of_int (Replica.Applier.applied applier));
  g "repl_link_dropped" (float_of_int (lstats.Cluster.Link.dropped + astats.Cluster.Link.dropped));
  g "repl_link_duplicated" (float_of_int (lstats.Cluster.Link.duplicated + astats.Cluster.Link.duplicated));
  g "repl_tail_replayed" (float_of_int !tail_replayed);
  g "repl_indoubt_aborted" (float_of_int !indoubt_aborted);
  g "txn_committed" (float_of_int !txn_commits);
  g "txn_aborted" (float_of_int !txn_aborts);
  g "ops_read" (float_of_int !n_read);
  g "ops_write" (float_of_int !n_write);
  g "ops_scan" (float_of_int !n_scan);
  (let live = if crashed then svc_b else svc in
   g "mvcc_truncated_reads" (float_of_int (Kv.mvcc_truncated_reads live));
   Array.iteri
     (fun i (chains, versions) ->
       let sscope = Printf.sprintf "%s/shard%d" scope i in
       Obs.Metrics.set_gauge ~scope:sscope "mvcc_chains"
         (float_of_int chains);
       Obs.Metrics.set_gauge ~scope:sscope "mvcc_chain_versions"
         (float_of_int versions))
     (Kv.mvcc_shard_chains live));
  (match tch_p with
   | Some t ->
     let hits, misses, refills, flushes = Tcache.stats t in
     g "tcache_hits" (float_of_int hits);
     g "tcache_misses" (float_of_int misses);
     g "tcache_bin_refills" (float_of_int refills);
     g "tcache_bin_flushes" (float_of_int flushes)
   | None -> ());
  if cfg.rcache_entries > 0 then begin
    (* the store that actually served reads at the end of the run *)
    let live = if crashed then svc_b else svc in
    let hits, misses, evictions, invalidations = Kv.rcache_stats live in
    g "rcache_hits" (float_of_int hits);
    g "rcache_misses" (float_of_int misses);
    g "rcache_evictions" (float_of_int evictions);
    g "rcache_invalidations" (float_of_int invalidations)
  end;
  Hist.merge ~into:(Obs.Metrics.log_histogram ~scope "latency_ns") lat_h;
  Hist.merge ~into:(Obs.Metrics.log_histogram ~scope "service_ns") svc_h;
  Hist.merge ~into:(Obs.Metrics.log_histogram ~scope "repl_lag_ns") repl_lag_h;
  Hist.merge ~into:(Obs.Metrics.log_histogram ~scope "txn_latency_ns") txn_lat_h;
  Hist.merge ~into:(Obs.Metrics.log_histogram ~scope "read_latency_ns") read_h;
  Hist.merge ~into:(Obs.Metrics.log_histogram ~scope "write_latency_ns") write_h;
  Hist.merge ~into:(Obs.Metrics.log_histogram ~scope "scan_latency_ns") scan_h;

  let base =
    { offered = !offered;
      admitted = !admitted;
      shed = !shed;
      completed = !completed;
      acked_mutations = !acked_mut;
      sim_ns;
      throughput = float_of_int !handled /. secs;
      goodput = float_of_int !completed /. secs;
      latency = percentiles_of lat_h;
      service = percentiles_of svc_h;
      crashed;
      rto_ns;
      recovery = None;
      ledger = ledger_rep;
      in_flight_at_crash;
      queue_max_depth = !queue_max_depth;
      txns_committed = !txn_commits;
      txns_aborted = !txn_aborts;
      txn_latency = percentiles_of txn_lat_h;
      read_latency = percentiles_of read_h;
      write_latency = percentiles_of write_h;
      scan_latency = percentiles_of scan_h;
      ops_read = !n_read;
      ops_write = !n_write;
      ops_scan = !n_scan }
  in
  { base;
    shipped = Replica.Shipper.shipped shipper;
    acked_records;
    retransmits = Replica.Shipper.retransmits shipper;
    max_lag = Replica.Shipper.max_lag shipper;
    link_dropped = lstats.Cluster.Link.dropped + astats.Cluster.Link.dropped;
    link_duplicated =
      lstats.Cluster.Link.duplicated + astats.Cluster.Link.duplicated;
    link_flushes =
      lstats.Cluster.Link.flushes + astats.Cluster.Link.flushes;
    backup_applied = Replica.Applier.applied applier;
    tail_replayed = !tail_replayed;
    indoubt_aborted = !indoubt_aborted;
    backup_ledger;
    sync }
