module Sched = Simcore.Sched
module Prng = Repro_util.Prng
module Zipf = Repro_util.Zipf
module Hist = Obs.Hist

type config = {
  shards : int;
  clients : int;
  rate : float;
  duration : float;
  value_size : int;
  keyspace : int;
  zipf_theta : float;
  read_pct : int;
  delete_pct : int;
  scan_pct : int;
  queue_capacity : int;
  preload : int;
  crash_at : float option;
  seed : int;
  scope : string;
}

let default_config =
  { shards = 4;
    clients = 16;
    rate = 50_000.;
    duration = 0.02;
    value_size = 128;
    keyspace = 4096;
    zipf_theta = 0.99;
    read_pct = 50;
    delete_pct = 10;
    scan_pct = 5;
    queue_capacity = 64;
    preload = 2048;
    crash_at = None;
    seed = 42;
    scope = "service" }

type op_kind = KGet | KPut | KDel | KScan

type payload =
  | Req of { rid : int; client : int; kind : op_kind; key : int; vseed : int }
  | Rep of { rid : int; ok : bool; mutated : bool; fin : int }

(* client-side record of a request awaiting its reply *)
type pending = { p_kind : op_kind; p_key : int; p_vseed : int; p_sent : int }

type percentiles = {
  p50 : int;
  p99 : int;
  p999 : int;
  mean : float;
  max : int;
  samples : int;
}

let percentiles_of h =
  { p50 = Hist.percentile h 50.;
    p99 = Hist.percentile h 99.;
    p999 = Hist.percentile h 99.9;
    mean = Hist.mean h;
    max = Hist.max_value h;
    samples = Hist.count h }

type ledger_report = { checked : int; ambiguous : int; mismatches : int }

type result = {
  offered : int;
  admitted : int;
  shed : int;
  completed : int;
  acked_mutations : int;
  sim_ns : int;
  throughput : float;
  goodput : float;
  latency : percentiles;
  service : percentiles;
  crashed : bool;
  rto_ns : int;
  recovery : Kv.recovery option;
  ledger : ledger_report;
  in_flight_at_crash : int;
  queue_max_depth : int;
}

let run ~make ~reattach cfg =
  if cfg.shards < 1 || cfg.clients < 1 then
    invalid_arg "Server.run: shards and clients must be >= 1";
  if cfg.rate <= 0. || cfg.duration <= 0. then
    invalid_arg "Server.run: rate and duration must be positive";
  if cfg.read_pct + cfg.delete_pct + cfg.scan_pct > 100 then
    invalid_arg "Server.run: op mix exceeds 100%";
  (match cfg.crash_at with
   | Some f when f <= 0. || f >= 1. ->
     invalid_arg "Server.run: crash_at must be in (0, 1)"
   | _ -> ());
  let mach, inst = make () in
  let ncpu = (Machine.cfg mach).Machine.Config.num_cpus in
  if cfg.shards > ncpu then invalid_arg "Server.run: more shards than CPUs";
  let svc = Kv.create inst ~shards:cfg.shards ~value_size:cfg.value_size in

  (* durable baseline: preloaded keys are in the ledger from the start *)
  let preload_n = min cfg.preload cfg.keyspace in
  for k = 1 to preload_n do
    if not (Kv.put svc ~key:k ~vseed:k) then
      failwith "Server.run: preload exhausted the heap"
  done;
  Nvmm.Memdev.drain (Machine.dev mach);

  let duration_ns = int_of_float (cfg.duration *. 1e9) in
  let t_crash =
    Option.map
      (fun f -> max 1 (int_of_float (f *. float_of_int duration_ns)))
      cfg.crash_at
  in
  let t_stop = match t_crash with Some c -> min c duration_ns | None -> duration_ns in
  let grace_ns = 5_000_000 in

  (* ports 0..shards-1: shard request queues (the admission bound);
     ports shards..shards+clients-1: client reply queues (generous) *)
  let reply_cap = max 1024 (4 * cfg.queue_capacity) in
  let client_cpu j =
    if cfg.shards >= ncpu then j mod ncpu
    else cfg.shards + (j mod (ncpu - cfg.shards))
  in
  let ports =
    Array.init (cfg.shards + cfg.clients) (fun i ->
        if i < cfg.shards then (i, cfg.queue_capacity)
        else (client_cpu (i - cfg.shards), reply_cap))
  in
  let net : payload Net.t = Net.create mach ~ports ~poll_ns:2_000 () in

  let offered = ref 0 and admitted = ref 0 and shed = ref 0 in
  let handled = ref 0 and completed = ref 0 and acked_mut = ref 0 in
  let reply_drops = ref 0 in
  let senders = ref cfg.clients in
  let lat_h = Hist.create () and svc_h = Hist.create () in
  (* acked mutations: (key, Some vseed | None for delete, server finish ns).
     Server finish time totally orders mutations of a key: a key lives on
     one shard and the shard thread serializes its requests. *)
  let ledger : (int * int option * int) list ref = ref [] in
  let outstanding : (int, pending) Hashtbl.t array =
    Array.init cfg.clients (fun _ -> Hashtbl.create 64)
  in

  (* ---------- server threads (one per shard) ---------- *)
  let server_body i () =
    let server_end = match t_crash with Some c -> c | None -> max_int in
    let handle (m : payload Net.msg) =
      match m.payload with
      | Rep _ -> ()
      | Req r ->
        let t0 = Sched.now () in
        Machine.compute mach 200 (* request decode / dispatch overhead *);
        let ok, mutated =
          match r.kind with
          | KGet -> (Kv.get svc ~key:r.key <> None, false)
          | KPut ->
            let ok = Kv.put svc ~key:r.key ~vseed:r.vseed in
            (ok, ok)
          | KDel ->
            let ok = Kv.delete svc ~key:r.key in
            (ok, ok)
          | KScan ->
            ignore (Kv.scan svc ~from_key:r.key ~n:16);
            (true, false)
        in
        incr handled;
        Hist.record svc_h (Sched.now () - t0);
        let rep = Rep { rid = r.rid; ok; mutated; fin = Sched.now () } in
        if not (Net.try_send net ~dst:(cfg.shards + r.client) rep) then
          incr reply_drops
    in
    let rec loop () =
      if Sched.now () >= server_end then ()
      else
        match Net.recv net ~port:i with
        | Some m ->
          handle m;
          loop ()
        | None ->
          if !senders = 0 && Net.pending net ~port:i = 0 then ()
          else begin
            let until = min server_end (Sched.now () + 100_000) in
            (match Net.recv_wait net ~port:i ~until with
             | Some m -> handle m
             | None -> ());
            loop ()
          end
    in
    loop ()
  in

  (* ---------- client threads ---------- *)
  let zipf = Zipf.create ~theta:cfg.zipf_theta cfg.keyspace in
  let client_body j () =
    let rng = Prng.create (cfg.seed + (7919 * (j + 1))) in
    let lg =
      Net.Loadgen.create
        ~rate:(cfg.rate /. float_of_int cfg.clients)
        ~seed:(cfg.seed lxor (j * 65537) lxor 0x10AD)
    in
    let out = outstanding.(j) in
    let port = cfg.shards + j in
    let seq = ref 0 in
    let drain () =
      let rec go () =
        match Net.recv net ~port with
        | Some { payload = Rep r; delivered_at; _ } ->
          (match Hashtbl.find_opt out r.rid with
           | Some p ->
             Hashtbl.remove out r.rid;
             incr completed;
             Hist.record lat_h (delivered_at - p.p_sent);
             if r.mutated then begin
               incr acked_mut;
               let v = if p.p_kind = KPut then Some p.p_vseed else None in
               ledger := (p.p_key, v, r.fin) :: !ledger
             end
           | None -> ());
          go ()
        | Some _ -> go () (* a Req on a reply port: ignore *)
        | None -> ()
      in
      go ()
    in
    let rec send_loop t_next =
      if t_next >= t_stop then ()
      else begin
        let now = Sched.now () in
        if now < t_next then Sched.sleep (t_next - now);
        if Sched.now () >= t_stop then ()
        else begin
          drain ();
          let key = 1 + Zipf.scrambled zipf rng in
          let die = Prng.int rng 100 in
          let kind =
            if die < cfg.read_pct then KGet
            else if die < cfg.read_pct + cfg.delete_pct then KDel
            else if die < cfg.read_pct + cfg.delete_pct + cfg.scan_pct then
              KScan
            else KPut
          in
          incr offered;
          let rid = (j lsl 32) lor !seq in
          incr seq;
          let dst = Kv.shard_of_key svc key in
          if Net.try_send net ~dst (Req { rid; client = j; kind; key; vseed = rid })
          then begin
            incr admitted;
            Hashtbl.replace out rid
              { p_kind = kind; p_key = key; p_vseed = rid; p_sent = Sched.now () }
          end
          else incr shed (* Overloaded: admission refused, request dropped *);
          send_loop (t_next + Net.Loadgen.next_gap_ns lg)
        end
      end
    in
    send_loop (Net.Loadgen.next_gap_ns lg);
    decr senders;
    (match t_crash with
     | Some _ -> drain () (* take what already arrived; rest is in flight *)
     | None ->
       let deadline = t_stop + grace_ns in
       let rec wait () =
         drain ();
         if Hashtbl.length out > 0 && Sched.now () < deadline then begin
           Sched.sleep 10_000;
           wait ()
         end
       in
       wait ())
  in

  for i = 0 to cfg.shards - 1 do
    ignore (Machine.spawn mach ~cpu:i (server_body i))
  done;
  for j = 0 to cfg.clients - 1 do
    ignore (Machine.spawn mach ~cpu:(client_cpu j) (client_body j))
  done;
  let t_run0 = Sched.horizon (Machine.engine mach) in
  Machine.run mach;
  let sim_ns = Sched.horizon (Machine.engine mach) - t_run0 in

  (* mutations never acked: their keys are ambiguous for verification *)
  let in_flight_keys = Hashtbl.create 64 in
  Array.iter
    (fun out ->
      Hashtbl.iter
        (fun _ p ->
          if p.p_kind = KPut || p.p_kind = KDel then
            Hashtbl.replace in_flight_keys p.p_key ())
        out)
    outstanding;
  let in_flight_at_crash = Hashtbl.length in_flight_keys in

  let verify store =
    let expected = Hashtbl.create (preload_n + 64) in
    for k = 1 to preload_n do
      Hashtbl.replace expected k (Some k)
    done;
    let entries =
      List.sort (fun (_, _, a) (_, _, b) -> compare a b) !ledger
    in
    List.iter (fun (k, v, _) -> Hashtbl.replace expected k v) entries;
    Hashtbl.iter
      (fun k () ->
        if not (Hashtbl.mem expected k) then Hashtbl.replace expected k None)
      in_flight_keys;
    let checked = ref 0 and ambiguous = ref 0 and mismatches = ref 0 in
    Hashtbl.iter
      (fun k exp ->
        if Hashtbl.mem in_flight_keys k then incr ambiguous
        else begin
          incr checked;
          let got = Kv.get store ~key:k in
          let want =
            Option.map (fun vs -> Kv.value_checksum store ~vseed:vs) exp
          in
          if got <> want then incr mismatches
        end)
      expected;
    { checked = !checked; ambiguous = !ambiguous; mismatches = !mismatches }
  in

  let crashed, rto_ns, recovery, ledger_rep =
    match t_crash with
    | None -> (false, 0, None, verify svc)
    | Some _ ->
      Nvmm.Memdev.crash (Machine.dev mach) `Strict;
      let got = ref None in
      let secs =
        Machine.parallel mach ~threads:1 (fun _ ->
            let inst' = reattach mach in
            got := Some (Kv.attach inst'))
      in
      let svc', reco = Option.get !got in
      Kv.check svc';
      (true, int_of_float (secs *. 1e9), Some reco, verify svc')
  in

  let queue_max_depth = ref 0 in
  for i = 0 to cfg.shards - 1 do
    let s = Net.stats net ~port:i in
    if s.Net.max_depth > !queue_max_depth then queue_max_depth := s.Net.max_depth
  done;

  let secs = float_of_int t_stop /. 1e9 in
  let scope = cfg.scope in
  let g name v = Obs.Metrics.set_gauge ~scope name v in
  g "offered" (float_of_int !offered);
  g "admitted" (float_of_int !admitted);
  g "shed" (float_of_int !shed);
  g "handled" (float_of_int !handled);
  g "completed" (float_of_int !completed);
  g "acked_mutations" (float_of_int !acked_mut);
  g "reply_drops" (float_of_int !reply_drops);
  g "queue_max_depth" (float_of_int !queue_max_depth);
  g "rto_ns" (float_of_int rto_ns);
  Hist.merge ~into:(Obs.Metrics.log_histogram ~scope "latency_ns") lat_h;
  Hist.merge ~into:(Obs.Metrics.log_histogram ~scope "service_ns") svc_h;

  { offered = !offered;
    admitted = !admitted;
    shed = !shed;
    completed = !completed;
    acked_mutations = !acked_mut;
    sim_ns;
    throughput = float_of_int !handled /. secs;
    goodput = float_of_int !completed /. secs;
    latency = percentiles_of lat_h;
    service = percentiles_of svc_h;
    crashed;
    rto_ns;
    recovery;
    ledger = ledger_rep;
    in_flight_at_crash;
    queue_max_depth = !queue_max_depth }
