(** Traffic orchestration for poseidon-kv: simulated clients drive the
    sharded store through a {!Net} network, open-loop, with optional
    crash injection mid-traffic and a client-side ledger that verifies
    the store after recovery.

    Topology: shard [i]'s handler thread runs on CPU [i] and owns
    network port [i] (bounded queue — the admission-control point);
    each client thread owns a reply port and generates arrivals from a
    Poisson process with zipfian key popularity.  A send refused by a
    full shard queue is an [Overloaded] shed: it is counted and the
    request abandoned, so offered load and goodput diverge at
    saturation instead of queues growing without bound.

    Crash model: at [crash_at × duration] the server CPUs stop taking
    requests and clients stop sending (request-granularity cut); the
    device then loses its unfenced state ([`Strict]), the heap and
    store re-attach inside the simulation (the charged makespan is the
    RTO), and the recovered store is checked against the ledger of
    acked mutations.  Requests in flight at the cut are ambiguous
    (either outcome is legal) and are reported, not checked.  The
    sub-request crash space is covered exhaustively by the [kv-put] /
    [kv-delete] / [kv-txn] crashcheck scenarios. *)

type config = {
  shards : int;
  clients : int;
  rate : float; (** total offered arrivals per simulated second *)
  duration : float; (** simulated seconds of traffic *)
  value_size : int;
  keyspace : int;
  zipf_theta : float;
  read_pct : int; (** % of arrivals that are gets *)
  delete_pct : int;
  scan_pct : int;
  txn_pct : int;
      (** % of arrivals that are cross-shard transactions ({!Kv.txn});
          the remainder after read/delete/scan/txn is puts *)
  txn_ops : int; (** operations per generated transaction, 1..{!Kv.max_txn_ops} *)
  queue_capacity : int; (** per-shard request queue bound *)
  preload : int; (** keys put (and drained) before traffic starts *)
  crash_at : float option; (** fraction of [duration], e.g. 0.5 *)
  seed : int;
  scope : string; (** obs metrics scope for this run *)
  batch_window : int;
      (** group-commit window, ≥ 1.  At 1 (the default) every mutation
          takes the pre-batching per-op path, byte-identically.  Above
          1, up to this many consecutive already-queued single-key
          mutations drain into one {!Kv.group_commit} group: one
          covering persist chain per chunk, one replication doorbell
          frame per chunk, one sync-mode ack wait per group.  Greedy
          over the inbox — never waits for a batch to fill. *)
  batch_bytes : int;
      (** additional byte cap on a commit group (0 = unlimited): a
          group closes once its encoded payload would exceed this *)
  mvcc_window : int;
      (** MVCC version-chain window ({!Kv.create}'s [mvcc_window]),
          ≥ 0.  At 0 (the default) reads take the pre-MVCC path
          byte-identically: gets and scans queue for the shard lock.
          Above 0 every get/scan is a lock-free snapshot read under an
          {!Obs.Span.Snapshot} stage span, and a scan becomes a
          multi-shard merged scan consistent at one timestamp. *)
  tcache_mag : int;
      (** magazine size of the DRAM thread cache ({!Tcache.wrap})
          layered over the allocator, ≥ 0.  At 0 (the default) the
          wrapper is bypassed entirely — the run is byte-identical to
          the uncached servicing path.  Above 0 allocations pop
          volatile per-CPU bins (refilled [tcache_mag] blocks per
          carve) and frees stash and flush in bulk; allocator time is
          attributed under the {!Obs.Span.Alloc} detail stage and
          surfaced as [tcache_*] gauges.  {!run_replicated} wraps both
          members and flushes the backup's cache at promotion. *)
  rcache_entries : int;
      (** per-shard slot count of the DRAM read cache
          ({!Kv.create}'s [rcache_entries]), ≥ 0.  At 0 (the default)
          every read walks the persistent tree byte-identically to the
          pre-cache path.  Above 0 gets (and snapshot gets, when their
          timestamp allows) answer from DRAM on a hit; probe time is
          attributed under the {!Obs.Span.Rcache} detail stage and the
          run surfaces [rcache_*] gauges.  {!run_replicated} arms both
          members — the backup's cache is invalidated by the
          replicated applies and wiped at promotion. *)
}

val default_config : config

type percentiles = {
  p50 : int;
  p99 : int;
  p999 : int;
  mean : float;
  max : int;
  samples : int;
}

type ledger_report = {
  checked : int; (** keys verified against the recovered store *)
  ambiguous : int; (** keys with a mutation in flight at the crash *)
  mismatches : int; (** acked state the store failed to reproduce *)
}

type result = {
  offered : int; (** arrivals generated *)
  admitted : int; (** accepted into a shard queue *)
  shed : int; (** refused at admission ([Overloaded]) *)
  completed : int; (** replies received by clients *)
  acked_mutations : int;
  sim_ns : int; (** simulated time traffic actually ran *)
  throughput : float; (** server-handled requests per simulated second *)
  goodput : float;
  (** client-acked completions per simulated second — under overload
      this diverges from the offered rate ([offered / duration]): shed
      requests never contribute to it *)
  latency : percentiles; (** client-observed request latency, ns *)
  service : percentiles; (** server-side handler time, ns *)
  crashed : bool;
  rto_ns : int; (** simulated re-attach + replay time (0 if no crash) *)
  recovery : Kv.recovery option;
  ledger : ledger_report;
  in_flight_at_crash : int;
  queue_max_depth : int; (** high-water mark across shard queues *)
  txns_committed : int;
  txns_aborted : int;
      (** server-observed aborts (strict-delete misses, duplicate keys,
          allocation failures) — an abort leaves no durable trace *)
  txn_latency : percentiles;
      (** client-observed latency of committed transactions only, ns —
          compare against [latency] for the 2PC overhead *)
  read_latency : percentiles;
      (** client-observed latency of gets only — the series the MVCC
          read path is supposed to flatten *)
  write_latency : percentiles; (** puts, deletes and transactions *)
  scan_latency : percentiles; (** scans only *)
  ops_read : int; (** gets generated (shed included) *)
  ops_write : int; (** puts + deletes + transactions generated *)
  ops_scan : int; (** scans generated *)
}

val run :
  make:(unit -> Machine.t * Alloc_intf.instance) ->
  reattach:(Machine.t -> Alloc_intf.instance) ->
  config ->
  result
(** Builds the heap via [make], preloads, runs traffic, optionally
    crashes and re-attaches via [reattach], verifies the ledger and
    publishes metrics (counters, gauges and p50/p99/p999 log
    histograms) under [config.scope] in the default obs registry.
    Raises [Invalid_argument] on nonsensical configs. *)

(** {2 Replicated serving}

    The same traffic harness on a two-machine {!Cluster}: the primary
    serves clients exactly as {!run} does, and every applied mutation
    is also shipped (per-shard sequence numbers, go-back-N) over an
    inter-machine link to a backup machine that applies it into its
    own persistent store.  In [Sync] mode a mutation's reply is held
    until the backup's cumulative ack covers it — an acked write then
    survives the loss of the whole primary, not just a cache-line
    crash — while [Async] mode replies after the local persist and
    bounds the backup's lag by the shipping window.

    Crash model: at the cut the primary machine is lost outright
    ([`Strict] device wipe); instead of re-attaching it, the backup
    {e promotes} — seals the shipped log, replays the in-order tail
    the wire had delivered, and becomes the serving store.  The
    promote makespan is the failover RTO ([base.rto_ns]), directly
    comparable with {!run}'s replay-on-restart RTO under the same
    traffic and seed; the ledger of acked mutations is verified
    against the {e backup}. *)

type repl_config = {
  repl_mode : Replica.mode;
  wire_ns : int; (** one-way inter-machine latency *)
  repl_window : int; (** max unacked records per shard (async lag bound) *)
  retransmit_ns : int; (** go-back-N tail timeout *)
  link_drop_pct : int; (** seeded wire loss, [0, 100) *)
  link_dup_pct : int; (** seeded duplicate delivery, [0, 100] *)
}

val default_repl_config : repl_config
(** Sync, 20 µs wire, window 64, retransmit 120 µs, clean link. *)

type repl_result = {
  base : result;
  (** [rto_ns] is the {e promote} RTO on crash runs; [ledger] checks
      the serving store (the backup after failover); [recovery] is
      [None] — nothing is replayed from a micro-log, the tail comes
      off the wire *)
  shipped : int; (** mutation records put on the wire (first sends) *)
  acked_records : int; (** records covered by cumulative backup acks *)
  retransmits : int; (** go-back-N resends (loss recovery) *)
  max_lag : int; (** high-water unacked records on any shard *)
  link_dropped : int; (** fault-injected wire losses, both directions *)
  link_duplicated : int;
  link_flushes : int;
      (** doorbell frames sent, both directions — with a batch window
          this is the wire-trip count the batching amortized into *)
  backup_applied : int; (** records applied by the backup, tail included *)
  tail_replayed : int; (** records applied during promote (0 clean) *)
  indoubt_aborted : int;
      (** participant slots presumed-aborted at promote: a [Txn_prepare]
          arrived but its [Txn_decide] died with the primary.  Safe
          because a sync reply waits for {e every} participant's ack —
          an unresolved transaction was never acked to a client. *)
  backup_ledger : ledger_report option;
  (** clean runs only: the backup checked against the same ledger —
      proof of convergence without a failover *)
  sync : bool;
}

val run_replicated :
  make:(Machine.t -> Alloc_intf.instance) ->
  ?mcfg:Machine.Config.t ->
  config ->
  repl_config ->
  repl_result
(** [make] builds one heap+allocator on a given machine; it is called
    twice (primary, backup).  Metrics go under [config.scope]:
    the {!run} set plus [repl_shipped], [repl_acked_records],
    [repl_retransmits], [repl_max_lag], [repl_backup_applied],
    [repl_tail_replayed], link fault counters and the [repl_lag_ns]
    histogram (ship→applied latency seen at the backup). *)
