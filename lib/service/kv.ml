module A = Alloc_intf
module Sched = Simcore.Sched

(* superroot layout (u64 words):
   +0   magic
   +8   geometry: shards lor (value_size lsl 16)
   +64  coordinator decision record: id of the one transaction whose
        decide→apply window may be open (0 = none).  It sits on its own
        cache line so no neighbouring persist can flush it by accident —
        its persist IS the transaction commit point.
   +128 + i*64: shard record i:
        +0  tree root (packed nvmptr)
        +8  intent state (st_* below)
        +16 intent key
        +24 intent new value (packed)
        +32 intent old value (packed)
   +128 + nshards*64 + i*256: participant txn slot for shard i:
        +0  txn id (0 = free)
        +8  checksum over id/meta/entries (guards torn slot persists)
        +16 meta: nops lor (shard lsl 8)
        +24 + j*24: entry j: key, new value (packed; null = delete),
                    old value (packed; null = fresh insert) *)

let magic = 0x00504F534B560004 (* "POSKV" v4 *)
let hdr_size = 128
let decision_off = 64
let shard_stride = 64
let slot_root = 0
let slot_state = 8
let slot_key = 16
let slot_new = 24
let slot_old = 32

let st_empty = 0
let st_put_intent = 1
let st_put_committed = 2
let st_del_intent = 3

(* participant txn slots: one per shard, owned by whoever holds that
   shard's lock, so a slot is always free when a transaction claims it *)
let max_txn_ops = 8
let txn_stride = 256
let tslot_txn = 0
let tslot_cksum = 8
let tslot_meta = 16
let tslot_entries = 24
let tentry_stride = 24

type shard = { tree : Btree.t; base : int (* raw addr of the record *) }

type t = {
  inst : A.instance;
  mach : Machine.t;
  hid : int;
  raw : int; (* raw addr of the superroot *)
  value_size : int;
  nshards : int;
  shard_tbl : shard array;
  shard_locks : Machine.Lock.lock array;
  txn_lock : Machine.Lock.lock;
      (* serializes the decide→apply window: the single decision word
         may only describe one in-flight transaction at a time *)
  mutable next_txn : int;
  mutable break_decision_persist : bool; (* mutation-testing hook *)
  mvcc : Mvcc.t;
      (* volatile per-shard version chains for lock-free snapshot
         reads; window 0 (the default) disables every hook *)
  mutable mvcc_seq : int;
      (* MVCC commit sequence: every publication mints the next value
         as its timestamp.  A store-local counter, NOT the wall/sim
         clock — outside the simulator a clock-based ts would pin
         every commit at 0 and degrade snapshots to read-latest, and
         even in simulation two commits can share one tick. *)
  mutable mvcc_truncated : int;
      (* snapshot reads that outlived their key's retained history and
         were answered with a version from AFTER the snapshot (the
         bounded-window consistency loss) — observable via
         [mvcc_truncated_reads] so callers/tests can detect it *)
  mutable mvcc_publish_early : bool;
      (* mutation-testing hook: the staged prepare publishes versions
         before any decision exists, so snapshot readers can observe a
         transaction that may still abort — the seeded bug the
         [mvcc-broken] crashcheck scenario must flag *)
  rcache : Rcache.t;
      (* DRAM-resident read cache over the shards: key -> newest
         committed digest, write-through invalidated in the same pure
         OCaml step as each mutation's MVCC publication.  Volatile by
         construction (attach starts empty); entries 0 (the default)
         disables every hook. *)
  backup_decided : (int, int) Hashtbl.t;
      (* backup role only: txn -> decides seen so far.  Volatile on
         purpose — after a crash the prepared-but-unpublished slots are
         presumed-aborted by recovery, so the count need not survive. *)
}

type recovery = {
  replayed : int;
  rolled_back : int;
  txn_committed : int;
  txn_aborted : int;
}

let shards t = t.nshards
let value_size t = t.value_size

(* splitmix64-style finalizer with constants cut to OCaml's 63 bits *)
let mix k =
  let z = k + 0x2545F4914F6CDD1D in
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
  (z lxor (z lsr 31)) land max_int

let shard_of ~shards k = mix k mod shards
let shard_of_key t k = shard_of ~shards:t.nshards k
let shard t k = t.shard_tbl.(shard_of_key t k)
let shard_lock t i = t.shard_locks.(i)

let val_word vseed w = mix ((vseed lsl 8) lxor (w + 1))

let value_checksum t ~vseed =
  let words = t.value_size / 8 in
  let acc = ref 0 in
  for w = 0 to words - 1 do
    acc := !acc lxor val_word vseed w
  done;
  !acc

(* ---------- construction / recovery ---------- *)

let cell_of mach hid base =
  { Btree.load =
      (fun () -> A.unpack ~heap_id:hid (Machine.read_u64 mach (base + slot_root)));
    store =
      (fun p ->
        Machine.write_u64 mach (base + slot_root) (A.pack p);
        Machine.persist mach (base + slot_root) 8) }

let mk_locks mach shards =
  ( Array.init shards (fun i ->
        Machine.Lock.create mach ~name:(Printf.sprintf "kv-shard-%d" i) ()),
    Machine.Lock.create mach ~name:"kv-txn-coordinator" () )

let create ?(mvcc_window = 0) ?(rcache_entries = 0) inst ~shards ~value_size =
  if shards < 1 || shards > 0xFFFF then invalid_arg "Kv.create: bad shards";
  let value_size = max 8 ((value_size + 7) / 8 * 8) in
  let mach = A.instance_machine inst in
  let size = hdr_size + (shards * shard_stride) + (shards * txn_stride) in
  let p =
    match A.i_alloc inst size with
    | Some p -> p
    | None -> failwith "Kv.create: allocator out of memory for superroot"
  in
  let raw = A.i_get_rawptr inst p in
  for w = 0 to (size / 8) - 1 do
    Machine.write_u64 mach (raw + (8 * w)) 0
  done;
  Machine.write_u64 mach raw magic;
  Machine.write_u64 mach (raw + 8) (shards lor (value_size lsl 16));
  Machine.persist mach raw size;
  A.i_set_root inst p;
  let hid = p.A.heap_id in
  let shard_tbl =
    Array.init shards (fun i ->
        let base = raw + hdr_size + (i * shard_stride) in
        { tree = Btree.create_in inst (cell_of mach hid base); base })
  in
  let shard_locks, txn_lock = mk_locks mach shards in
  { inst; mach; hid; raw; value_size; nshards = shards; shard_tbl;
    shard_locks; txn_lock; next_txn = 1; break_decision_persist = false;
    mvcc = Mvcc.create ~shards ~window:mvcc_window;
    mvcc_seq = 0; mvcc_truncated = 0;
    mvcc_publish_early = false;
    rcache = Rcache.create ~shards ~entries:rcache_entries;
    backup_decided = Hashtbl.create 8 }

let set_state t sh st =
  Machine.write_u64 t.mach (sh.base + slot_state) st;
  Machine.persist t.mach (sh.base + slot_state) 8

let recover_shard t sh acc =
  let rd off = Machine.read_u64 t.mach (sh.base + off) in
  let st = rd slot_state in
  if st = st_empty then acc
  else begin
    let key = rd slot_key in
    let newv = rd slot_new and oldv = rd slot_old in
    let replayed, rolled_back = acc in
    let acc =
      if st = st_put_intent then begin
        (* the value may or may not have survived (allocator tx commit
           raced the crash); safe free absorbs both cases *)
        if newv <> A.packed_null then
          A.i_free t.inst (A.unpack ~heap_id:t.hid newv);
        (replayed, rolled_back + 1)
      end
      else if st = st_put_committed then begin
        (* redo the publication; insert is an idempotent overwrite and
           the old-value free is safe if the first attempt got there *)
        Btree.insert sh.tree ~key ~value:newv;
        if oldv <> A.packed_null then
          A.i_free t.inst (A.unpack ~heap_id:t.hid oldv);
        (replayed + 1, rolled_back)
      end
      else if st = st_del_intent then begin
        ignore (Btree.delete sh.tree key);
        if oldv <> A.packed_null then
          A.i_free t.inst (A.unpack ~heap_id:t.hid oldv);
        (replayed + 1, rolled_back)
      end
      else failwith "Kv.attach: corrupt intent slot"
    in
    set_state t sh st_empty;
    acc
  end

(* ---------- participant txn slots ---------- *)

type txn_op = Replica.txn_op =
  | Tput of { key : int; vseed : int }
  | Tdel of { key : int }

type txn_abort =
  | Txn_empty
  | Txn_too_many_ops
  | Txn_duplicate_key
  | Txn_absent_key of int
  | Txn_no_memory

type txn_result = {
  txn_id : int;
  committed : bool;
  abort : txn_abort option;
  fin : int;
  participants : (int * txn_op list) list;
}

let txn_key = function Tput { key; _ } | Tdel { key } -> key

let tslot_base t i = t.raw + hdr_size + (t.nshards * shard_stride) + (i * txn_stride)

(* Entries are (key, packed new value | null = delete, packed old
   value | null).  The checksum makes a torn slot persist (an
   adversarial subset of the slot's four cache lines) detectable:
   recovery must never redo or undo from half-written intent. *)
let tslot_checksum ~txn ~meta entries =
  List.fold_left
    (fun acc (k, nv, ov) -> mix (acc lxor mix k lxor mix nv lxor mix ov))
    (mix txn lxor mix meta)
    entries

let write_tslot t i ~txn entries =
  let base = tslot_base t i in
  let nops = List.length entries in
  let meta = nops lor (i lsl 8) in
  Machine.write_u64 t.mach (base + tslot_meta) meta;
  List.iteri
    (fun j (k, nv, ov) ->
      let e = base + tslot_entries + (j * tentry_stride) in
      Machine.write_u64 t.mach e k;
      Machine.write_u64 t.mach (e + 8) nv;
      Machine.write_u64 t.mach (e + 16) ov)
    entries;
  Machine.write_u64 t.mach (base + tslot_cksum)
    (tslot_checksum ~txn ~meta entries);
  Machine.write_u64 t.mach (base + tslot_txn) txn;
  Machine.persist t.mach base (tslot_entries + (nops * tentry_stride))

let read_tslot t i =
  let base = tslot_base t i in
  let rd off = Machine.read_u64 t.mach (base + off) in
  let txn = rd tslot_txn in
  if txn = 0 then `Free
  else
    let meta = rd tslot_meta in
    let nops = meta land 0xFF in
    if nops < 1 || nops > max_txn_ops || meta lsr 8 <> i then `Torn
    else
      let entries =
        List.init nops (fun j ->
            let e = tslot_entries + (j * tentry_stride) in
            (rd e, rd (e + 8), rd (e + 16)))
      in
      if rd tslot_cksum <> tslot_checksum ~txn ~meta entries then `Torn
      else `Slot (txn, entries)

let clear_tslot t i =
  let base = tslot_base t i in
  Machine.write_u64 t.mach (base + tslot_txn) 0;
  Machine.persist t.mach (base + tslot_txn) 8

(* Publish one prepared entry into shard [i]'s tree.  Insert is an
   idempotent overwrite and free is Poseidon's safe free, so replaying
   a half-applied slot after a crash is harmless. *)
let publish_entry t i (key, newv, oldv) =
  let sh = t.shard_tbl.(i) in
  if newv = A.packed_null then ignore (Btree.delete sh.tree key)
  else Btree.insert sh.tree ~key ~value:newv;
  if oldv <> A.packed_null then A.i_free t.inst (A.unpack ~heap_id:t.hid oldv)

let apply_tslot t i entries =
  List.iter (publish_entry t i) entries;
  clear_tslot t i

let abort_tslot t i entries =
  List.iter
    (fun (_, newv, _) ->
      if newv <> A.packed_null then
        (* the block may already be gone when the allocator micro-log
           rolled the prepare's transaction back — safe free absorbs *)
        A.i_free t.inst (A.unpack ~heap_id:t.hid newv))
    entries;
  clear_tslot t i

let read_decision t = Machine.read_u64 t.mach (t.raw + decision_off)

let write_decision t v ~persist =
  Machine.write_u64 t.mach (t.raw + decision_off) v;
  if persist then Machine.persist t.mach (t.raw + decision_off) 8

(* Recovery: the decision record names the only transaction that may
   have been committed but not fully applied.  Its slots are redone;
   every other occupied slot belongs to an undecided transaction whose
   client was never answered — presumed abort. *)
let recover_txns t =
  let decision = read_decision t in
  let committed = ref 0 and aborted = ref 0 in
  for i = 0 to t.nshards - 1 do
    match read_tslot t i with
    | `Free -> ()
    | `Torn ->
      (* the slot's persist fence never completed, so the prepare's
         allocator transaction was still open: the micro-log replay
         already freed its blocks.  Nothing to undo but the slot. *)
      clear_tslot t i;
      incr aborted
    | `Slot (txn, entries) ->
      if txn = decision then begin
        apply_tslot t i entries;
        incr committed
      end
      else begin
        abort_tslot t i entries;
        incr aborted
      end
  done;
  if decision <> 0 then write_decision t 0 ~persist:true;
  (!committed, !aborted)

let attach ?(mvcc_window = 0) ?(rcache_entries = 0) inst =
  let mach = A.instance_machine inst in
  let root = A.i_get_root inst in
  if A.is_null root then invalid_arg "Kv.attach: no store at allocator root";
  let raw = A.i_get_rawptr inst root in
  if Machine.read_u64 mach raw <> magic then
    failwith "Kv.attach: bad superroot magic";
  let geom = Machine.read_u64 mach (raw + 8) in
  let nshards = geom land 0xFFFF in
  let value_size = (geom lsr 16) land 0xFFFF_FFFF in
  let hid = root.A.heap_id in
  let shard_tbl =
    Array.init nshards (fun i ->
        let base = raw + hdr_size + (i * shard_stride) in
        { tree = Btree.attach_in inst (cell_of mach hid base); base })
  in
  let shard_locks, txn_lock = mk_locks mach nshards in
  let t =
    { inst; mach; hid; raw; value_size; nshards; shard_tbl;
      shard_locks; txn_lock; next_txn = 1; break_decision_persist = false;
      mvcc = Mvcc.create ~shards:nshards ~window:mvcc_window;
      mvcc_seq = 0; mvcc_truncated = 0;
      mvcc_publish_early = false;
      rcache = Rcache.create ~shards:nshards ~entries:rcache_entries;
      backup_decided = Hashtbl.create 8 }
  in
  let replayed, rolled_back =
    Array.fold_left (fun acc sh -> recover_shard t sh acc) (0, 0) t.shard_tbl
  in
  let txn_committed, txn_aborted = recover_txns t in
  (t, { replayed; rolled_back; txn_committed; txn_aborted })

(* ---------- operations ---------- *)

let now () = if Sched.in_simulation () then Sched.now () else 0

(* Mint an MVCC commit timestamp.  The mint and the publication it
   stamps must sit in one pure OCaml step (no simulated-machine call
   between them), so the cooperative scheduler can never interleave a
   snapshot minted above this commit's watermark advance. *)
let mvcc_mint t =
  t.mvcc_seq <- t.mvcc_seq + 1;
  t.mvcc_seq

(* digest of the value block behind a packed pointer — the unit of
   observation for gets and for published MVCC versions *)
let block_digest t packed =
  let vaddr = A.i_get_rawptr t.inst (A.unpack ~heap_id:t.hid packed) in
  let words = t.value_size / 8 in
  let acc = ref 0 in
  for w = 0 to words - 1 do
    acc := !acc lxor Machine.read_u64 t.mach (vaddr + (8 * w))
  done;
  !acc

(* Seed [key]'s floor pre-image before a mutation first touches its
   tree entry, so a concurrent lock-free snapshot reader resolves the
   key through its chain and never reads the tree mid-update.  The
   caller holds the shard lock, so the pre-image is committed state.
   [known] short-circuits the tree probe when the caller already
   looked the old value up. *)
let mvcc_seed ?known t i key =
  if Mvcc.enabled t.mvcc && not (Mvcc.has_chain t.mvcc ~shard:i ~key) then begin
    let packed =
      match known with
      | Some p -> p
      | None -> (
        match Btree.find t.shard_tbl.(i).tree key with
        | Some v -> v
        | None -> A.packed_null)
    in
    let value =
      if packed = A.packed_null then None else Some (block_digest t packed)
    in
    Mvcc.seed t.mvcc ~shard:i ~key ~value
  end

(* a mutation's published version: the digest comes from the vseed
   (no memory reads), so chain append + watermark advance stay one
   pure OCaml step *)
let op_version t = function
  | Tput { key; vseed } -> (key, Some (value_checksum t ~vseed))
  | Tdel { key } -> (key, None)

(* version list of a prepared slot's entries, digests read from the
   already-persisted new-value blocks (the staged and backup apply
   paths, where the originating vseeds are out of reach) *)
let entry_versions t entries =
  List.map
    (fun (key, newv, _) ->
      (key, if newv = A.packed_null then None else Some (block_digest t newv)))
    entries

(* Simulated cost of one read-cache probe: an index lookup plus a slot
   line, ~2 DRAM reads at the machine model's DRAM latency.  The probe
   itself is pure OCaml (its atomicity carries the consistency
   argument); the cost is charged separately, and only when the cache
   is armed so an --rcache-entries 0 store stays byte-identical to a
   cacheless one. *)
let rcache_probe_ns = 160

let rcache_charge t =
  if Rcache.enabled t.rcache then begin
    Machine.compute t.mach rcache_probe_ns;
    Obs.Span.note_rcache rcache_probe_ns
  end

let put t ~key ~vseed =
  if key < 1 then invalid_arg "Kv.put: keys must be >= 1";
  Rcache.drain_pending t.rcache;
  let si = shard_of_key t key in
  let sh = t.shard_tbl.(si) in
  match A.i_tx_alloc t.inst t.value_size ~is_end:false with
  | None -> false
  | Some p ->
    let vaddr = A.i_get_rawptr t.inst p in
    let words = t.value_size / 8 in
    for w = 0 to words - 1 do
      Machine.write_u64 t.mach (vaddr + (8 * w)) (val_word vseed w)
    done;
    Machine.persist t.mach vaddr t.value_size;
    let old =
      match Btree.find sh.tree key with
      | Some v -> v
      | None -> A.packed_null
    in
    mvcc_seed ~known:old t si key;
    (* write-ahead intent: fields first, then the state flag *)
    Machine.write_u64 t.mach (sh.base + slot_key) key;
    Machine.write_u64 t.mach (sh.base + slot_new) (A.pack p);
    Machine.write_u64 t.mach (sh.base + slot_old) old;
    Machine.persist t.mach (sh.base + slot_key) 24;
    set_state t sh st_put_intent;
    (* commit point: the intent now owns the block *)
    A.i_tx_commit t.inst;
    set_state t sh st_put_committed;
    Btree.insert sh.tree ~key ~value:(A.pack p);
    if old <> A.packed_null then A.i_free t.inst (A.unpack ~heap_id:t.hid old);
    set_state t sh st_empty;
    (* one pure OCaml step: the new version becomes visible and the
       stale cache entry disappears together *)
    Rcache.invalidate t.rcache ~shard:si ~key;
    Mvcc.publish t.mvcc ~shard:si ~ts:(mvcc_mint t)
      [ (key, Some (value_checksum t ~vseed)) ];
    true

let get t ~key =
  let si = shard_of_key t key in
  let cached = Rcache.find t.rcache ~shard:si ~key in
  rcache_charge t;
  match cached with
  | Some d -> Some d
  | None -> (
    match Btree.find t.shard_tbl.(si).tree key with
    | None -> None
    | Some v ->
      let d = block_digest t v in
      (* fill under the caller's shard lock: [d] is the key's newest
         committed value, stamped with its chain-head commit ts (0 =
         never mutated since attach, valid for every snapshot) *)
      let vts =
        match Mvcc.newest_ts t.mvcc ~shard:si ~key with
        | Some ts -> ts
        | None -> 0
      in
      Rcache.insert t.rcache ~shard:si ~key ~digest:d ~vts;
      Some d)

let delete t ~key =
  Rcache.drain_pending t.rcache;
  let si = shard_of_key t key in
  let sh = t.shard_tbl.(si) in
  match Btree.find sh.tree key with
  | None -> false
  | Some old ->
    mvcc_seed ~known:old t si key;
    Machine.write_u64 t.mach (sh.base + slot_key) key;
    Machine.write_u64 t.mach (sh.base + slot_new) A.packed_null;
    Machine.write_u64 t.mach (sh.base + slot_old) old;
    Machine.persist t.mach (sh.base + slot_key) 24;
    set_state t sh st_del_intent;
    ignore (Btree.delete sh.tree key);
    A.i_free t.inst (A.unpack ~heap_id:t.hid old);
    set_state t sh st_empty;
    Rcache.invalidate t.rcache ~shard:si ~key;
    Mvcc.publish t.mvcc ~shard:si ~ts:(mvcc_mint t) [ (key, None) ];
    true

let scan t ~from_key ~n =
  let sh = shard t from_key in
  let visited = ref 0 in
  Btree.scan sh.tree ~from_key ~n (fun _ _ -> incr visited);
  !visited

let count_keys t =
  Array.fold_left (fun acc sh -> acc + Btree.count_keys sh.tree) 0 t.shard_tbl

let check t = Array.iter (fun sh -> Btree.check sh.tree) t.shard_tbl

(* ---------- snapshot reads (MVCC) ---------- *)

let mvcc_window t = Mvcc.window t.mvcc
let snapshot t = Mvcc.snapshot t.mvcc

let mvcc_chain_length t ~key =
  Mvcc.chain_length t.mvcc ~shard:(shard_of_key t key) ~key

let mvcc_break_early_publish t = t.mvcc_publish_early <- true
let mvcc_truncated_reads t = t.mvcc_truncated

(* ---------- read-cache introspection ---------- *)

let rcache_entries t = Rcache.entries t.rcache
let rcache_stats t = Rcache.stats t.rcache
let rcache_cached t = Rcache.cached t.rcache

let rcache_mem t ~key =
  Rcache.mem t.rcache ~shard:(shard_of_key t key) ~key

let rcache_break_late_invalidate t = Rcache.break_late_invalidate t.rcache

let mvcc_shard_chains t =
  Array.init t.nshards (fun shard ->
      let keys = Mvcc.chain_keys_from t.mvcc ~shard ~from_key:min_int in
      let versions =
        List.fold_left
          (fun a key -> a + Mvcc.chain_length t.mvcc ~shard ~key)
          0 keys
      in
      (List.length keys, versions))

(* A chain resolution as the read path consumes it: a truncated
   lookup still answers with the oldest retained version (the bounded
   history the window buys), but the consistency loss is counted so
   callers and tests can see it instead of mistaking it for mere
   staleness. *)
let resolved_value t = function
  | Mvcc.Resolved r -> r
  | Mvcc.Truncated r ->
    t.mvcc_truncated <- t.mvcc_truncated + 1;
    r
  | Mvcc.No_chain -> None

let snapshot_get t ~ts ~key =
  let i = shard_of_key t key in
  (* cache probe first, pure: a present entry digests the key's newest
     committed version at commit timestamp [vts], so it is exactly the
     version this snapshot must observe whenever [vts <= ts]. *)
  let cached = Rcache.find_at t.rcache ~shard:i ~key ~ts in
  rcache_charge t;
  (* a miss may fill, but only inside a pure step that also proves the
     resolved version is still the key's newest — the lock-free read
     below may race a writer, and a fill that lost such a race would
     serve the OLD digest to every later snapshot.  Chain resolutions
     are pure (chain values are digests), so guard + insert share one
     atomic step; any later publish kills the entry in its own pure
     step. *)
  match cached with
  | Some d -> Some d
  | None -> (
  match Mvcc.lookup t.mvcc ~shard:i ~key ~ts with
  | Mvcc.No_chain ->
    (* no chain: the key has not been mutated since this store was
       built, so the tree is its version for every snapshot *)
    let r =
      match Btree.find t.shard_tbl.(i).tree key with
      | None -> None
      | Some v -> Some (block_digest t v)
    in
    (* validate: a writer that raced this lock-free read seeded the
       pre-image before touching the tree, so a chain appearing by now
       means the floor read may be torn — the chain is authoritative
       (its pre-image entry is exactly the committed value at [ts]) *)
    (match Mvcc.lookup t.mvcc ~shard:i ~key ~ts with
     | Mvcc.No_chain ->
       (* still no chain (pure revalidation): with MVCC on, a writer
          always seeds the chain before touching the tree, so the
          floor read above was clean and is the newest version *)
       (match r with
        | Some d when Mvcc.enabled t.mvcc ->
          Rcache.insert t.rcache ~shard:i ~key ~digest:d ~vts:0
        | _ -> ());
       r
     | res -> resolved_value t res)
  | res ->
    let r = resolved_value t res in
    (* fill only when the version this snapshot resolved is the chain
       head — [newest_ts <= ts] proves it in the same pure step *)
    (match (r, Mvcc.newest_ts t.mvcc ~shard:i ~key) with
     | Some d, Some vts when vts <= ts ->
       Rcache.insert t.rcache ~shard:i ~key ~digest:d ~vts
     | _ -> ());
    r)

(* One shard's merged snapshot stream: the live tree cursor
   interleaved with the shard's chain keys.  The chain-key list is
   captured at open and RE-captured (from the merge position on)
   whenever the shard's chain generation moves: a key deleted mid-scan
   leaves the tree before the cursor reaches it, so the open-time
   capture (no chain yet) and the cursor (entry gone) would both miss
   it even though its freshly seeded chain still holds the version
   visible at [ts].  Chain presence is also re-checked on every
   tree-yielded key, and a chainless tree read is validated exactly
   like [snapshot_get]. *)
type sstream = {
  ss_shard : int;
  ss_cursor : Btree.cursor;
  mutable ss_tree : (int * int) option; (* peeked live-tree entry *)
  mutable ss_chain : int list; (* remaining chain keys, ascending *)
  mutable ss_gen : int; (* chain generation [ss_chain] was captured at *)
  mutable ss_pos : int; (* lower bound of the next key to merge *)
}

let sstream_open t ~shard ~from_key =
  let c = Btree.cursor_open t.shard_tbl.(shard).tree ~from_key in
  let peek = Btree.cursor_next c in
  (* generation and key list in one pure OCaml step, AFTER the peek:
     a chain seeded during the (yielding) cursor reads is either in
     this capture or bumps the generation we record *)
  let gen = Mvcc.chain_gen t.mvcc ~shard in
  { ss_shard = shard;
    ss_cursor = c;
    ss_tree = peek;
    ss_chain = Mvcc.chain_keys_from t.mvcc ~shard ~from_key;
    ss_gen = gen;
    ss_pos = from_key }

(* next (key, digest) visible at [ts], ascending; [None] = exhausted *)
let rec sstream_next t st ~ts =
  (* writers may have seeded chains since the last step (e.g. deletes
     whose tree entries the cursor will now never see): re-capture the
     chain keys still ahead of the merge position *)
  let gen = Mvcc.chain_gen t.mvcc ~shard:st.ss_shard in
  if gen <> st.ss_gen then begin
    st.ss_gen <- gen;
    st.ss_chain <-
      Mvcc.chain_keys_from t.mvcc ~shard:st.ss_shard ~from_key:st.ss_pos
  end;
  if st.ss_tree = None && st.ss_chain = [] then None
  else begin
    let tk = match st.ss_tree with Some (k, _) -> k | None -> max_int in
    let ck = match st.ss_chain with k :: _ -> k | [] -> max_int in
    let key = min tk ck in
    st.ss_pos <- key + 1;
    let tv = if tk = key then st.ss_tree else None in
    if tk = key then st.ss_tree <- Btree.cursor_next st.ss_cursor;
    if ck = key then st.ss_chain <- List.tl st.ss_chain;
    let resolved =
      if Mvcc.has_chain t.mvcc ~shard:st.ss_shard ~key then
        resolved_value t (Mvcc.lookup t.mvcc ~shard:st.ss_shard ~key ~ts)
      else begin
        match tv with
        | None -> None (* chain vanished mid-scan: cannot happen *)
        | Some (_, v) ->
          let d = block_digest t v in
          (match Mvcc.lookup t.mvcc ~shard:st.ss_shard ~key ~ts with
           | Mvcc.No_chain -> Some d
           | res -> resolved_value t res)
      end
    in
    match resolved with
    | Some d -> Some (key, d)
    | None -> sstream_next t st ~ts (* absent at this snapshot: skip *)
  end

let snapshot_scan t ~ts ~from_key ~n f =
  if from_key < 1 then invalid_arg "Kv.snapshot_scan: keys must be >= 1";
  if n <= 0 then 0
  else begin
    let streams =
      Array.init t.nshards (fun i -> sstream_open t ~shard:i ~from_key)
    in
    let heads = Array.map (fun st -> sstream_next t st ~ts) streams in
    let visited = ref 0 in
    let exhausted = ref false in
    while (not !exhausted) && !visited < n do
      (* smallest head key across shards (the hash partition makes
         keys unique across shards, so no cross-shard dedupe) *)
      let best = ref (-1) and bestk = ref max_int in
      Array.iteri
        (fun i -> function
          | Some (k, _) when k < !bestk ->
            best := i;
            bestk := k
          | _ -> ())
        heads;
      if !best < 0 then exhausted := true
      else begin
        (match heads.(!best) with Some (k, d) -> f k d | None -> ());
        incr visited;
        heads.(!best) <- sstream_next t streams.(!best) ~ts
      end
    done;
    !visited
  end

(* ---------- cross-shard transactions (the 2PC core) ---------- *)

let txn_break_decision_persist t = t.break_decision_persist <- true

(* participants in ascending shard order, each with its ops in
   submission order — the lock-acquisition order, so concurrent
   transactions cannot deadlock *)
let group_participants t ops =
  let parts = Array.make t.nshards [] in
  List.iter
    (fun o ->
      let s = shard_of_key t (txn_key o) in
      parts.(s) <- o :: parts.(s))
    ops;
  let out = ref [] in
  for i = t.nshards - 1 downto 0 do
    if parts.(i) <> [] then out := (i, List.rev parts.(i)) :: !out
  done;
  !out

let validate_static t ops =
  if ops = [] then Error Txn_empty
  else begin
    let keys = List.map txn_key ops in
    if List.exists (fun k -> k < 1) keys then
      invalid_arg "Kv.txn: keys must be >= 1";
    if List.length (List.sort_uniq compare keys) <> List.length keys then
      Error Txn_duplicate_key
    else
      let parts = group_participants t ops in
      if List.exists (fun (_, l) -> List.length l > max_txn_ops) parts then
        Error Txn_too_many_ops
      else Ok parts
  end

(* Phase 1, caller holds every participant lock: allocate and persist
   the new values under one open allocator transaction, then persist
   one participant slot per shard.  The slots own the blocks once
   [i_tx_commit] truncates the micro-log; before that a crash rolls
   the whole prepare back at the allocator level. *)
let prepare_locked t parts =
  let missing = ref None in
  List.iter
    (fun (i, ops) ->
      List.iter
        (function
          | Tdel { key } ->
            if !missing = None && Btree.find t.shard_tbl.(i).tree key = None
            then missing := Some key
          | Tput _ -> ())
        ops)
    parts;
  match !missing with
  | Some k -> Error (Txn_absent_key k)
  | None ->
    let failed = ref false in
    let allocated = ref [] in
    let filled =
      List.map
        (fun (i, ops) ->
          let entries =
            List.map
              (fun o ->
                let find k =
                  match Btree.find t.shard_tbl.(i).tree k with
                  | Some v -> v
                  | None -> A.packed_null
                in
                match o with
                | Tdel { key } -> (key, A.packed_null, find key)
                | Tput { key; vseed } ->
                  if !failed then (key, A.packed_null, A.packed_null)
                  else begin
                    match A.i_tx_alloc t.inst t.value_size ~is_end:false with
                    | None ->
                      failed := true;
                      (key, A.packed_null, A.packed_null)
                    | Some p ->
                      allocated := p :: !allocated;
                      let vaddr = A.i_get_rawptr t.inst p in
                      for w = 0 to (t.value_size / 8) - 1 do
                        Machine.write_u64 t.mach (vaddr + (8 * w))
                          (val_word vseed w)
                      done;
                      Machine.persist t.mach vaddr t.value_size;
                      (key, A.pack p, find key)
                  end)
              ops
          in
          (i, entries))
        parts
    in
    if !failed then begin
      (* abort during prepare: release the blocks and close the
         allocator transaction (net zero — nothing durable changed) *)
      List.iter (fun p -> A.i_free t.inst p) !allocated;
      A.i_tx_commit t.inst;
      Error Txn_no_memory
    end
    else begin
      let txn = t.next_txn in
      t.next_txn <- txn + 1;
      List.iter (fun (i, entries) -> write_tslot t i ~txn entries) filled;
      A.i_tx_commit t.inst;
      Ok txn
    end

(* Phase 2 under the coordinator lock: the decision record's persist
   is THE commit point — before it a crash aborts every participant,
   after it recovery redoes them from the slots. *)
let decide_apply_locked t txn parts =
  let idxs = List.map fst parts in
  Machine.Lock.acquire t.txn_lock;
  Rcache.drain_pending t.rcache;
  (* pre-images first: once the group publishes, snapshot readers
     resolve every written key through its chain, so the floors must
     be in place before any tree entry is touched below *)
  if Mvcc.enabled t.mvcc then
    List.iter
      (fun (i, ops) -> List.iter (fun o -> mvcc_seed t i (txn_key o)) ops)
      parts;
  write_decision t txn ~persist:(not t.break_decision_persist);
  let fin = now () in
  (* the whole group becomes visible at its decision timestamp in one
     pure OCaml step (nothing yields between the mint and the
     watermark advance): a snapshot minted from here on resolves the
     written keys through their chains while the trees are still
     being updated below *)
  if Mvcc.enabled t.mvcc then
    Mvcc.publish_group t.mvcc ~ts:(mvcc_mint t)
      (List.map (fun (i, ops) -> (i, List.map (op_version t) ops)) parts);
  (* still the same pure step as the publication above: a lock-free
     snapshot reader can never pair the group's watermark with a stale
     cached digest of one of its keys *)
  List.iter
    (fun (i, ops) ->
      List.iter
        (fun o -> Rcache.invalidate t.rcache ~shard:i ~key:(txn_key o))
        ops)
    parts;
  List.iter
    (fun i ->
      match read_tslot t i with
      | `Slot (id, entries) when id = txn -> apply_tslot t i entries
      | _ -> failwith "Kv.txn: participant slot vanished before apply")
    idxs;
  write_decision t 0 ~persist:true;
  Machine.Lock.release t.txn_lock;
  fin

let abort_result a parts =
  { txn_id = 0; committed = false; abort = Some a; fin = 0;
    participants = parts }

let txn ?on_commit ?(trace = -1) ?(span = -1) t ops =
  match validate_static t ops with
  | Error a -> abort_result a []
  | Ok parts ->
    let idxs = List.map fst parts in
    List.iter (fun i -> Machine.Lock.acquire t.shard_locks.(i)) idxs;
    Fun.protect
      ~finally:(fun () ->
        List.iter
          (fun i -> Machine.Lock.release t.shard_locks.(i))
          (List.rev idxs))
      (fun () ->
        let sprep =
          Obs.Span.open_span ~trace ~parent:span Obs.Span.Txn_prepare
        in
        match prepare_locked t parts with
        | Error a ->
          Obs.Span.close_span sprep;
          abort_result a parts
        | Ok txn_id ->
          Obs.Span.close_span sprep;
          let sdec =
            Obs.Span.open_span ~trace ~parent:span Obs.Span.Txn_decide
          in
          let fin = decide_apply_locked t txn_id parts in
          Obs.Span.close_span sdec;
          let res =
            { txn_id; committed = true; abort = None; fin;
              participants = parts }
          in
          (match on_commit with Some f -> f res | None -> ());
          res)

(* ---------- group commit (batched single-shard mutations) ---------- *)

(* A commit group is a run of consecutive single-key mutations bound
   for ONE shard, executed as a chain of single-participant
   transaction chunks of up to [max_txn_ops] ops each.  Per chunk the
   persistence cost is one covering slot persist — whose fence also
   commits the chunk's value lines, clwb'd without individual fences —
   plus one micro-log truncate and one decision-record round, versus
   ~5 fences per op on the legacy intent path.  Crash recovery needs
   nothing new: a chunk is a one-participant 2PC transaction, redone
   or presumed-aborted by [recover_txns] like any other. *)

let flush_lines t a len =
  if len > 0 then begin
    let first = a asr 6 and last = (a + len - 1) asr 6 in
    for l = first to last do
      Machine.clwb t.mach (l lsl 6)
    done
  end

(* Prepare one chunk under the caller-held shard lock: allocate and
   write the new values, clwb them fence-free, and let the slot
   persist's single fence cover values + slot together. *)
let group_prepare_locked t shard ops =
  let failed = ref false in
  let allocated = ref [] in
  let find k =
    match Btree.find t.shard_tbl.(shard).tree k with
    | Some v -> v
    | None -> A.packed_null
  in
  let entries =
    List.map
      (fun o ->
        match o with
        | Tdel { key } -> (key, A.packed_null, find key)
        | Tput { key; vseed } ->
          if !failed then (key, A.packed_null, A.packed_null)
          else begin
            match A.i_tx_alloc t.inst t.value_size ~is_end:false with
            | None ->
              failed := true;
              (key, A.packed_null, A.packed_null)
            | Some p ->
              allocated := p :: !allocated;
              let vaddr = A.i_get_rawptr t.inst p in
              for w = 0 to (t.value_size / 8) - 1 do
                Machine.write_u64 t.mach (vaddr + (8 * w)) (val_word vseed w)
              done;
              flush_lines t vaddr t.value_size;
              (key, A.pack p, find key)
          end)
      ops
  in
  if !failed then begin
    List.iter (fun p -> A.i_free t.inst p) !allocated;
    A.i_tx_commit t.inst;
    Error Txn_no_memory
  end
  else begin
    let txn = t.next_txn in
    t.next_txn <- txn + 1;
    write_tslot t shard ~txn entries;
    (* the covering fence: values + slot are durable together *)
    A.i_tx_commit t.inst;
    Ok txn
  end

let group_commit ?on_chunk t ~shard ops =
  List.iter
    (fun o ->
      let k = txn_key o in
      if k < 1 then invalid_arg "Kv.group_commit: keys must be >= 1";
      if shard_of_key t k <> shard then
        invalid_arg "Kv.group_commit: op key not on this shard")
    ops;
  let n = List.length ops in
  let oks = Array.make n false in
  let fins = Array.make n 0 in
  (* group-local presence, so a delete's outcome reflects every
     earlier op of the group, applied or still buffered *)
  let present = Hashtbl.create 16 in
  let is_present k =
    match Hashtbl.find_opt present k with
    | Some b -> b
    | None -> Btree.find t.shard_tbl.(shard).tree k <> None
  in
  Machine.Lock.acquire t.shard_locks.(shard);
  Fun.protect
    ~finally:(fun () -> Machine.Lock.release t.shard_locks.(shard))
    (fun () ->
      (* chunk accumulator: ops in reverse, with their input indices;
         [keys] guards against two entries for one key in a chunk
         (publishing both would double-free its old value) *)
      let chunk = ref [] in
      let keys = Hashtbl.create 16 in
      let flush_chunk () =
        let members = List.rev !chunk in
        chunk := [];
        Hashtbl.reset keys;
        if members <> [] then begin
          let cops = List.map snd members in
          (match group_prepare_locked t shard cops with
          | Ok txn_id ->
            let fin = decide_apply_locked t txn_id [ (shard, cops) ] in
            List.iter
              (fun (idx, _) ->
                oks.(idx) <- true;
                fins.(idx) <- fin)
              members;
            (match on_chunk with Some f -> f ~fin cops | None -> ())
          | Error _ ->
            (* heap exhausted mid-prepare: degrade to the legacy
               per-op intent path for this chunk *)
            List.iter
              (fun (idx, o) ->
                (match o with
                | Tput { key; vseed } -> oks.(idx) <- put t ~key ~vseed
                | Tdel { key } -> oks.(idx) <- delete t ~key);
                fins.(idx) <- now ();
                if oks.(idx) then
                  match on_chunk with
                  | Some f -> f ~fin:fins.(idx) [ o ]
                  | None -> ())
              members)
        end
      in
      List.iteri
        (fun idx o ->
          let k = txn_key o in
          match o with
          | Tdel _ when not (is_present k) ->
            (* absent delete: a no-op, never enters a chunk *)
            oks.(idx) <- false;
            fins.(idx) <- now ()
          | _ ->
            if
              Hashtbl.mem keys k
              || List.length !chunk >= max_txn_ops
            then flush_chunk ();
            Hashtbl.replace keys k ();
            chunk := (idx, o) :: !chunk;
            Hashtbl.replace present k
              (match o with Tput _ -> true | Tdel _ -> false))
        ops;
      flush_chunk ());
  List.init n (fun i -> (oks.(i), fins.(i)))

(* Staged variants (no locking — recovery tests and single-threaded
   instrumentation drive the protocol one phase at a time). *)

let txn_prepare t ops =
  match validate_static t ops with
  | Error a -> Error a
  | Ok parts -> (
    match prepare_locked t parts with
    | Error a -> Error a
    | Ok txn ->
      if t.mvcc_publish_early && Mvcc.enabled t.mvcc then begin
        (* BROKEN (mutation testing): the group goes live before any
           decision exists — snapshot readers can observe a
           transaction that may still abort *)
        List.iter
          (fun (i, ops) -> List.iter (fun o -> mvcc_seed t i (txn_key o)) ops)
          parts;
        Mvcc.publish_group t.mvcc ~ts:(mvcc_mint t)
          (List.map (fun (i, ops) -> (i, List.map (op_version t) ops)) parts)
      end;
      Ok txn)

let txn_decide t ~txn = write_decision t txn ~persist:(not t.break_decision_persist)

let txn_apply t ~txn =
  Rcache.drain_pending t.rcache;
  (* correct staged publication point: the decision is durable, so
     install the versions (digests read from the prepared blocks)
     before the trees change — unless the broken mode already
     published them at prepare.  The slot reads and digests yield, so
     versions AND cache-kill keys are gathered first; publication and
     invalidation then share one pure OCaml step. *)
  let want_mvcc = Mvcc.enabled t.mvcc && not t.mvcc_publish_early in
  let groups = ref [] and kills = ref [] in
  if want_mvcc || Rcache.enabled t.rcache then
    for i = 0 to t.nshards - 1 do
      match read_tslot t i with
      | `Slot (id, entries) when id = txn ->
        if want_mvcc then begin
          List.iter (fun (key, _, _) -> mvcc_seed t i key) entries;
          groups := (i, entry_versions t entries) :: !groups
        end;
        kills := List.map (fun (key, _, _) -> (i, key)) entries :: !kills
      | _ -> ()
    done;
  if want_mvcc then Mvcc.publish_group t.mvcc ~ts:(mvcc_mint t) !groups;
  List.iter
    (List.iter (fun (i, key) -> Rcache.invalidate t.rcache ~shard:i ~key))
    !kills;
  for i = 0 to t.nshards - 1 do
    match read_tslot t i with
    | `Slot (id, entries) when id = txn -> apply_tslot t i entries
    | _ -> ()
  done;
  write_decision t 0 ~persist:true

let txn_resolve_indoubt t =
  Hashtbl.reset t.backup_decided;
  (* promotion: this store now serves reads itself, and the chains it
     grew as a backup may name transactions being discarded below —
     start over from the (recovered) trees as the floor.  The read
     cache restarts empty for the same reason: entries filled as a
     backup may digest values the presumed-abort pass discards. *)
  Mvcc.reset t.mvcc;
  Rcache.reset t.rcache;
  let n = ref 0 in
  for i = 0 to t.nshards - 1 do
    match read_tslot t i with
    | `Free -> ()
    | `Torn ->
      clear_tslot t i;
      incr n
    | `Slot (_, entries) ->
      abort_tslot t i entries;
      incr n
  done;
  !n

(* ---------- backup-side participant handlers ---------- *)

let txn_backup_prepare t ~txn ~shard ~ops =
  (match read_tslot t shard with
   | `Free -> ()
   | `Torn | `Slot _ -> failwith "Kv.txn_backup_prepare: participant slot busy");
  let entries =
    List.map
      (fun o ->
        let find k =
          match Btree.find t.shard_tbl.(shard).tree k with
          | Some v -> v
          | None -> A.packed_null
        in
        match o with
        | Tdel { key } -> (key, A.packed_null, find key)
        | Tput { key; vseed } -> (
          match A.i_tx_alloc t.inst t.value_size ~is_end:false with
          | None -> failwith "Kv.txn_backup_prepare: backup heap exhausted"
          | Some p ->
            let vaddr = A.i_get_rawptr t.inst p in
            for w = 0 to (t.value_size / 8) - 1 do
              Machine.write_u64 t.mach (vaddr + (8 * w)) (val_word vseed w)
            done;
            Machine.persist t.mach vaddr t.value_size;
            (key, A.pack p, find key)))
      ops
  in
  write_tslot t shard ~txn entries;
  A.i_tx_commit t.inst

(* Deferred group apply.  Publishing each slice as its decide arrives
   would tear the transaction: a crash (or a promotion) between two
   slices leaves half of it published with no way to undo.  Instead a
   committed slice stays prepared until the decides of ALL [nparts]
   participants have been seen; the last one publishes the whole group
   under this store's own decision record, so the backup has the same
   single-commit-point recovery as the primary.  The decide count is
   volatile: if it is lost to a crash, every slot of the group is still
   prepared and recovery presumed-aborts them — sound, because the
   primary's sync ack waits for every participant's decide to be
   applied here, so an incompletely counted transaction was never
   acked. *)
let txn_backup_decide t ~txn ~shard ~commit ~nparts =
  match read_tslot t shard with
  | `Slot (id, entries) when id = txn ->
    if not commit then abort_tslot t shard entries
    else begin
      let decided =
        (match Hashtbl.find_opt t.backup_decided txn with
         | Some n -> n
         | None -> 0)
        + 1
      in
      if decided < nparts then Hashtbl.replace t.backup_decided txn decided
      else begin
        Hashtbl.remove t.backup_decided txn;
        Rcache.drain_pending t.rcache;
        (* install versions the same all-before-any-watermark way as
           the primary, so a promoted backup's snapshots are as
           atomic as the primary's were; cache-kill keys gathered
           alongside so invalidation shares the publication's pure
           step below *)
        let groups = ref [] and kills = ref [] in
        if Mvcc.enabled t.mvcc || Rcache.enabled t.rcache then
          for i = 0 to t.nshards - 1 do
            match read_tslot t i with
            | `Slot (id, es) when id = txn ->
              if Mvcc.enabled t.mvcc then begin
                List.iter (fun (key, _, _) -> mvcc_seed t i key) es;
                groups := (i, entry_versions t es) :: !groups
              end;
              kills := List.map (fun (key, _, _) -> (i, key)) es :: !kills
            | _ -> ()
          done;
        write_decision t txn ~persist:(not t.break_decision_persist);
        if Mvcc.enabled t.mvcc then
          Mvcc.publish_group t.mvcc ~ts:(mvcc_mint t) !groups;
        List.iter
          (List.iter (fun (i, key) -> Rcache.invalidate t.rcache ~shard:i ~key))
          !kills;
        for i = 0 to t.nshards - 1 do
          match read_tslot t i with
          | `Slot (id, es) when id = txn -> apply_tslot t i es
          | _ -> ()
        done;
        write_decision t 0 ~persist:true
      end
    end
  | `Free | `Torn | `Slot _ -> ()

(* Backup-side group apply: a drained burst of in-order single-key
   records lands as commit-group chunks — one covering persist chain
   per chunk instead of one intent round per record, mirroring the
   primary's group commit so the backup is not the batching
   bottleneck.  If this shard's participant slot is occupied (a 2PC
   prepare whose decides are still arriving holds it until the whole
   group publishes), fall back to the legacy per-record path for the
   burst: the slot belongs to the in-flight transaction and the chunk
   chain must not overwrite it.  On a FIFO link the fallback is
   unreachable for single-key traffic — a put for a participant shard
   only ships after every decide did — but a retransmitting lossy wire
   can interleave them. *)
let group_apply t ~shard ops =
  match read_tslot t shard with
  | `Free -> ignore (group_commit t ~shard ops)
  | `Torn | `Slot _ ->
    List.iter
      (function
        | Tput { key; vseed } -> ignore (put t ~key ~vseed)
        | Tdel { key } -> ignore (delete t ~key))
      ops
