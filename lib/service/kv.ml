module A = Alloc_intf

(* superroot layout (u64 words):
   +0  magic
   +8  geometry: shards lor (value_size lsl 16)
   +16 + i*64: shard record i:
        +0  tree root (packed nvmptr)
        +8  intent state (st_* below)
        +16 intent key
        +24 intent new value (packed)
        +32 intent old value (packed) *)

let magic = 0x00504F534B560003 (* "POSKV" v3 *)
let hdr_size = 16
let shard_stride = 64
let slot_root = 0
let slot_state = 8
let slot_key = 16
let slot_new = 24
let slot_old = 32

let st_empty = 0
let st_put_intent = 1
let st_put_committed = 2
let st_del_intent = 3

type shard = { tree : Btree.t; base : int (* raw addr of the record *) }

type t = {
  inst : A.instance;
  mach : Machine.t;
  hid : int;
  value_size : int;
  nshards : int;
  shard_tbl : shard array;
}

type recovery = { replayed : int; rolled_back : int }

let shards t = t.nshards
let value_size t = t.value_size

(* splitmix64-style finalizer with constants cut to OCaml's 63 bits *)
let mix k =
  let z = k + 0x2545F4914F6CDD1D in
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
  (z lxor (z lsr 31)) land max_int

let shard_of_key t k = mix k mod t.nshards
let shard t k = t.shard_tbl.(shard_of_key t k)

let val_word vseed w = mix ((vseed lsl 8) lxor (w + 1))

let value_checksum t ~vseed =
  let words = t.value_size / 8 in
  let acc = ref 0 in
  for w = 0 to words - 1 do
    acc := !acc lxor val_word vseed w
  done;
  !acc

(* ---------- construction / recovery ---------- *)

let cell_of mach hid base =
  { Btree.load =
      (fun () -> A.unpack ~heap_id:hid (Machine.read_u64 mach (base + slot_root)));
    store =
      (fun p ->
        Machine.write_u64 mach (base + slot_root) (A.pack p);
        Machine.persist mach (base + slot_root) 8) }

let create inst ~shards ~value_size =
  if shards < 1 || shards > 0xFFFF then invalid_arg "Kv.create: bad shards";
  let value_size = max 8 ((value_size + 7) / 8 * 8) in
  let mach = A.instance_machine inst in
  let size = hdr_size + (shards * shard_stride) in
  let p =
    match A.i_alloc inst size with
    | Some p -> p
    | None -> failwith "Kv.create: allocator out of memory for superroot"
  in
  let raw = A.i_get_rawptr inst p in
  for w = 0 to (size / 8) - 1 do
    Machine.write_u64 mach (raw + (8 * w)) 0
  done;
  Machine.write_u64 mach raw magic;
  Machine.write_u64 mach (raw + 8) (shards lor (value_size lsl 16));
  Machine.persist mach raw size;
  A.i_set_root inst p;
  let hid = p.A.heap_id in
  let shard_tbl =
    Array.init shards (fun i ->
        let base = raw + hdr_size + (i * shard_stride) in
        { tree = Btree.create_in inst (cell_of mach hid base); base })
  in
  { inst; mach; hid; value_size; nshards = shards; shard_tbl }

let set_state t sh st =
  Machine.write_u64 t.mach (sh.base + slot_state) st;
  Machine.persist t.mach (sh.base + slot_state) 8

let recover_shard t sh acc =
  let rd off = Machine.read_u64 t.mach (sh.base + off) in
  let st = rd slot_state in
  if st = st_empty then acc
  else begin
    let key = rd slot_key in
    let newv = rd slot_new and oldv = rd slot_old in
    let replayed, rolled_back = acc in
    let acc =
      if st = st_put_intent then begin
        (* the value may or may not have survived (allocator tx commit
           raced the crash); safe free absorbs both cases *)
        if newv <> A.packed_null then
          A.i_free t.inst (A.unpack ~heap_id:t.hid newv);
        (replayed, rolled_back + 1)
      end
      else if st = st_put_committed then begin
        (* redo the publication; insert is an idempotent overwrite and
           the old-value free is safe if the first attempt got there *)
        Btree.insert sh.tree ~key ~value:newv;
        if oldv <> A.packed_null then
          A.i_free t.inst (A.unpack ~heap_id:t.hid oldv);
        (replayed + 1, rolled_back)
      end
      else if st = st_del_intent then begin
        ignore (Btree.delete sh.tree key);
        if oldv <> A.packed_null then
          A.i_free t.inst (A.unpack ~heap_id:t.hid oldv);
        (replayed + 1, rolled_back)
      end
      else failwith "Kv.attach: corrupt intent slot"
    in
    set_state t sh st_empty;
    acc
  end

let attach inst =
  let mach = A.instance_machine inst in
  let root = A.i_get_root inst in
  if A.is_null root then invalid_arg "Kv.attach: no store at allocator root";
  let raw = A.i_get_rawptr inst root in
  if Machine.read_u64 mach raw <> magic then
    failwith "Kv.attach: bad superroot magic";
  let geom = Machine.read_u64 mach (raw + 8) in
  let nshards = geom land 0xFFFF in
  let value_size = (geom lsr 16) land 0xFFFF_FFFF in
  let hid = root.A.heap_id in
  let shard_tbl =
    Array.init nshards (fun i ->
        let base = raw + hdr_size + (i * shard_stride) in
        { tree = Btree.attach_in inst (cell_of mach hid base); base })
  in
  let t = { inst; mach; hid; value_size; nshards; shard_tbl } in
  let replayed, rolled_back =
    Array.fold_left (fun acc sh -> recover_shard t sh acc) (0, 0) t.shard_tbl
  in
  (t, { replayed; rolled_back })

(* ---------- operations ---------- *)

let put t ~key ~vseed =
  if key < 1 then invalid_arg "Kv.put: keys must be >= 1";
  let sh = shard t key in
  match A.i_tx_alloc t.inst t.value_size ~is_end:false with
  | None -> false
  | Some p ->
    let vaddr = A.i_get_rawptr t.inst p in
    let words = t.value_size / 8 in
    for w = 0 to words - 1 do
      Machine.write_u64 t.mach (vaddr + (8 * w)) (val_word vseed w)
    done;
    Machine.persist t.mach vaddr t.value_size;
    let old =
      match Btree.find sh.tree key with
      | Some v -> v
      | None -> A.packed_null
    in
    (* write-ahead intent: fields first, then the state flag *)
    Machine.write_u64 t.mach (sh.base + slot_key) key;
    Machine.write_u64 t.mach (sh.base + slot_new) (A.pack p);
    Machine.write_u64 t.mach (sh.base + slot_old) old;
    Machine.persist t.mach (sh.base + slot_key) 24;
    set_state t sh st_put_intent;
    (* commit point: the intent now owns the block *)
    A.i_tx_commit t.inst;
    set_state t sh st_put_committed;
    Btree.insert sh.tree ~key ~value:(A.pack p);
    if old <> A.packed_null then A.i_free t.inst (A.unpack ~heap_id:t.hid old);
    set_state t sh st_empty;
    true

let get t ~key =
  let sh = shard t key in
  match Btree.find sh.tree key with
  | None -> None
  | Some v ->
    let vaddr = A.i_get_rawptr t.inst (A.unpack ~heap_id:t.hid v) in
    let words = t.value_size / 8 in
    let acc = ref 0 in
    for w = 0 to words - 1 do
      acc := !acc lxor Machine.read_u64 t.mach (vaddr + (8 * w))
    done;
    Some !acc

let delete t ~key =
  let sh = shard t key in
  match Btree.find sh.tree key with
  | None -> false
  | Some old ->
    Machine.write_u64 t.mach (sh.base + slot_key) key;
    Machine.write_u64 t.mach (sh.base + slot_new) A.packed_null;
    Machine.write_u64 t.mach (sh.base + slot_old) old;
    Machine.persist t.mach (sh.base + slot_key) 24;
    set_state t sh st_del_intent;
    ignore (Btree.delete sh.tree key);
    A.i_free t.inst (A.unpack ~heap_id:t.hid old);
    set_state t sh st_empty;
    true

let scan t ~from_key ~n =
  let sh = shard t from_key in
  let visited = ref 0 in
  Btree.scan sh.tree ~from_key ~n (fun _ _ -> incr visited);
  !visited

let count_keys t =
  Array.fold_left (fun acc sh -> acc + Btree.count_keys sh.tree) 0 t.shard_tbl

let check t = Array.iter (fun sh -> Btree.check sh.tree) t.shard_tbl
