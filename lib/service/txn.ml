(* Protocol-level face of the cross-shard transaction engine living in
   Kv (which owns the superroot layout).  See txn.mli. *)

type op = Replica.txn_op =
  | Tput of { key : int; vseed : int }
  | Tdel of { key : int }

type abort = Kv.txn_abort =
  | Txn_empty
  | Txn_too_many_ops
  | Txn_duplicate_key
  | Txn_absent_key of int
  | Txn_no_memory

type result = Kv.txn_result = {
  txn_id : int;
  committed : bool;
  abort : abort option;
  fin : int;
  participants : (int * op list) list;
}

let max_ops = Kv.max_txn_ops
let exec = Kv.txn
let prepare = Kv.txn_prepare
let decide = Kv.txn_decide
let apply = Kv.txn_apply
let resolve_indoubt = Kv.txn_resolve_indoubt

let abort_to_string = function
  | Txn_empty -> "empty"
  | Txn_too_many_ops -> "too-many-ops"
  | Txn_duplicate_key -> "duplicate-key"
  | Txn_absent_key k -> Printf.sprintf "absent-key:%d" k
  | Txn_no_memory -> "no-memory"

(* One backup-side dispatch for everything the replication stream can
   carry — single-op records and both transaction record kinds — so
   every applier (server, crashcheck, tests) resolves the Replica.op
   variant in exactly one place. *)
let apply_replicated store ~shard (op : Replica.op) =
  match op with
  | Replica.Put { key; vseed } -> ignore (Kv.put store ~key ~vseed)
  | Replica.Del { key } -> ignore (Kv.delete store ~key)
  | Replica.Txn_prepare { txn; ops } ->
    Kv.txn_backup_prepare store ~txn ~shard ~ops
  | Replica.Txn_decide { txn; commit; nparts } ->
    Kv.txn_backup_decide store ~txn ~shard ~commit ~nparts

(* Batched counterpart: a drained burst of single-op records goes
   through the backup's chunked group apply.  Transaction records
   never reach here — the applier handles them per record, as group
   barriers. *)
let apply_replicated_group store ~shard (ops : Replica.op list) =
  Kv.group_apply store ~shard
    (List.map
       (function
         | Replica.Put { key; vseed } -> Kv.Tput { key; vseed }
         | Replica.Del { key } -> Kv.Tdel { key }
         | Replica.Txn_prepare _ | Replica.Txn_decide _ ->
           invalid_arg "Txn.apply_replicated_group: transaction record")
       ops)
