(** poseidon-kv: a sharded persistent key-value store over any
    {!Alloc_intf} allocator.

    Keys (ints ≥ 1) are partitioned across [shards] persistent
    B+-trees by a hash; each shard is intended to be driven by one
    simulated CPU (the paper's per-CPU sub-heap affinity), though the
    data structure itself does not enforce it.  Values are
    fixed-size blocks whose contents are derived deterministically
    from a 63-bit [vseed], so a verifier can recompute the expected
    checksum of any acked write without storing the bytes.

    {2 Durability protocol}

    Mutations are micro-log transactions combined with a per-shard
    persistent {e intent slot} (write-ahead record in the superroot
    object).  A put: allocates the value under an open allocator
    transaction, persists the bytes, persists the intent
    (key/new/old + state PUT_INTENT), commits the allocator
    transaction, flips the slot to PUT_COMMITTED, publishes into the
    B+-tree, frees the overwritten value, and clears the slot.
    {!attach} replays the slot: PUT_INTENT rolls back (frees the
    orphan value — idempotent only because the allocator detects
    invalid/double frees, i.e. Poseidon's safe free is load-bearing
    here), PUT_COMMITTED / DEL_INTENT redo the publication.  Every
    crash point therefore resolves to "op fully applied" or "op never
    happened", with no leak and no dangling pointer. *)

type t

type recovery = {
  replayed : int; (** slots redone (op completed after restart) *)
  rolled_back : int; (** slots undone (op never happened) *)
}

val create : Alloc_intf.instance -> shards:int -> value_size:int -> t
(** Allocates the superroot (magic, geometry, one 64-byte shard record
    each holding the tree root and the intent slot), publishes it as
    the allocator root and creates the per-shard trees.  [value_size]
    is rounded up to a multiple of 8 (min 8).  Raises [Failure] when
    the heap cannot fit the superroot. *)

val attach : Alloc_intf.instance -> t * recovery
(** Reopens the store of an already-attached allocator instance and
    replays/rolls back any in-flight intent — the restart path. *)

val shards : t -> int
val value_size : t -> int

val shard_of_key : t -> int -> int
(** Hash partition: which shard owns this key (stable across restarts). *)

val put : t -> key:int -> vseed:int -> bool
(** Insert or overwrite; [false] when allocation fails (heap full). *)

val get : t -> key:int -> int option
(** Checksum of the stored value (reads every word), or [None]. *)

val delete : t -> key:int -> bool
(** [false] when the key was absent (no state change). *)

val scan : t -> from_key:int -> n:int -> int
(** Visits up to [n] entries with key ≥ [from_key] in the owning
    shard's tree; returns the number visited. *)

val value_checksum : t -> vseed:int -> int
(** The checksum {!get} returns for a value written with [vseed],
    computed without touching memory — the verifier's oracle. *)

val count_keys : t -> int

val check : t -> unit
(** Structural check of every shard tree; raises [Failure]. *)
