(** poseidon-kv: a sharded persistent key-value store over any
    {!Alloc_intf} allocator.

    Keys (ints ≥ 1) are partitioned across [shards] persistent
    B+-trees by a hash; each shard is intended to be driven by one
    simulated CPU (the paper's per-CPU sub-heap affinity), though the
    data structure itself does not enforce it.  Values are
    fixed-size blocks whose contents are derived deterministically
    from a 63-bit [vseed], so a verifier can recompute the expected
    checksum of any acked write without storing the bytes.

    {2 Durability protocol}

    Mutations are micro-log transactions combined with a per-shard
    persistent {e intent slot} (write-ahead record in the superroot
    object).  A put: allocates the value under an open allocator
    transaction, persists the bytes, persists the intent
    (key/new/old + state PUT_INTENT), commits the allocator
    transaction, flips the slot to PUT_COMMITTED, publishes into the
    B+-tree, frees the overwritten value, and clears the slot.
    {!attach} replays the slot: PUT_INTENT rolls back (frees the
    orphan value — idempotent only because the allocator detects
    invalid/double frees, i.e. Poseidon's safe free is load-bearing
    here), PUT_COMMITTED / DEL_INTENT redo the publication.  Every
    crash point therefore resolves to "op fully applied" or "op never
    happened", with no leak and no dangling pointer.

    {2 Cross-shard transactions}

    Multi-key atomicity uses a 2PC-shaped extension of the same idea:
    each participant shard owns a persistent {e participant slot}
    (per-(txn, shard) intent covering up to {!max_txn_ops} operations,
    guarded by a checksum against torn persists), and the superroot
    holds a single {e coordinator decision record} on its own cache
    line.  Prepare persists values + one slot per participant under an
    open allocator transaction; the decision record's persist is the
    commit point; apply publishes each slot into its tree and clears
    it.  {!attach} resolves in-doubt participants by reading the
    decision record: slots naming the decided transaction are redone,
    all others are presumed aborted (their client was never answered)
    and rolled back.  See {!Txn} for the protocol-level API. *)

type t

type recovery = {
  replayed : int; (** intent slots redone (op completed after restart) *)
  rolled_back : int; (** intent slots undone (op never happened) *)
  txn_committed : int;
      (** participant txn slots redone — their txn's decision record
          had persisted, so the whole transaction must surface *)
  txn_aborted : int;
      (** participant txn slots rolled back (in-doubt at the crash:
          prepared but no persisted decision — presumed abort) *)
}

val create :
  ?mvcc_window:int ->
  ?rcache_entries:int ->
  Alloc_intf.instance ->
  shards:int ->
  value_size:int ->
  t
(** Allocates the superroot (magic, geometry, one 64-byte shard record
    each holding the tree root and the intent slot), publishes it as
    the allocator root and creates the per-shard trees.  [value_size]
    is rounded up to a multiple of 8 (min 8).  [mvcc_window] (default
    0 = off) is the number of committed versions retained per mutated
    key for {!snapshot_get}/{!snapshot_scan}; it is volatile DRAM
    state, not part of the persistent format.  [rcache_entries]
    (default 0 = off) is the per-shard slot count of the DRAM read
    cache ({!Rcache}) layered in front of the trees — also pure
    volatile state; 0 keeps the store byte-identical to a cacheless
    one.  Raises [Failure] when the heap cannot fit the superroot. *)

val attach :
  ?mvcc_window:int -> ?rcache_entries:int -> Alloc_intf.instance -> t * recovery
(** Reopens the store of an already-attached allocator instance and
    replays/rolls back any in-flight intent — the restart path.  The
    version chains and the read cache restart empty (both are volatile
    by construction); the recovered trees are the floor every snapshot
    reads until keys are mutated again. *)

val shards : t -> int
val value_size : t -> int

val shard_of_key : t -> int -> int
(** Hash partition: which shard owns this key (stable across restarts). *)

val shard_of : shards:int -> int -> int
(** The same hash partition as a pure function of the shard count —
    lets planners place keys without a store in hand. *)

val shard_lock : t -> int -> Machine.Lock.lock
(** The shard's mutual-exclusion lock (simulation-only; a no-op
    outside {!Simcore.Sched} runs).  {!put}/{!delete}/{!get} do NOT
    take it themselves — single-threaded callers need no locking and
    existing call sites keep their exact timing — but any caller
    running concurrent mutators (e.g. {!Server}) must hold it around
    single-key operations so they serialize against {!txn}, which
    acquires every participant's lock internally. *)

val put : t -> key:int -> vseed:int -> bool
(** Insert or overwrite; [false] when allocation fails (heap full). *)

val get : t -> key:int -> int option
(** Checksum of the stored value, or [None].  A read-cache hit answers
    from DRAM at probe cost; a miss reads every word of the value from
    the tree and fills the cache (cacheless without [rcache_entries]). *)

val delete : t -> key:int -> bool
(** [false] when the key was absent (no state change). *)

val scan : t -> from_key:int -> n:int -> int
(** Visits up to [n] entries with key ≥ [from_key] in the owning
    shard's tree; returns the number visited. *)

val value_checksum : t -> vseed:int -> int
(** The checksum {!get} returns for a value written with [vseed],
    computed without touching memory — the verifier's oracle. *)

val count_keys : t -> int

val check : t -> unit
(** Structural check of every shard tree; raises [Failure]. *)

(** {2 Snapshot reads (MVCC)}

    A volatile per-shard version store ({!Mvcc}) layered over the
    trees: mutations publish [(commit ts, value digest)] versions for
    their keys (cross-shard transactions publish all participants
    before any becomes visible), and a read-only transaction mints the
    current safe timestamp once, then resolves every key to the newest
    version ≤ that timestamp — {e without taking any shard lock}.
    Writers seed a key's pre-image before first touching its tree
    entry, so a lock-free reader never observes the tree mid-update
    for a mutated key; chainless keys read the tree directly and
    re-validate against the chain afterwards.  Commit timestamps are a
    store-local monotone commit {e sequence} (minted at each
    publication), not the simulated clock — snapshot semantics hold
    identically outside the simulator, where a clock-based stamp would
    pin every commit at 0 and silently degrade snapshots to
    read-latest.  With [mvcc_window = 0] (the default) every hook is
    off and the calls below degrade to the plain read path. *)

val mvcc_window : t -> int

val snapshot : t -> int
(** Mint a read-only transaction's timestamp: the newest commit whose
    versions are all published.  Costs nothing (one volatile load). *)

val snapshot_get : t -> ts:int -> key:int -> int option
(** The key's value digest as of snapshot [ts], lock-free.  A snapshot
    older than the key's oldest retained version is answered with that
    oldest version — a version committed {e after} the snapshot, i.e.
    a consistency loss, not mere staleness (bounded history: the
    window caps chain memory) — and counted in
    {!mvcc_truncated_reads} so the caller can detect it. *)

val mvcc_truncated_reads : t -> int
(** Snapshot reads so far whose timestamp predated every retained
    version of their key, so the answer came from after the snapshot
    (the bounded-window degradation).  0 means every snapshot read was
    exact. *)

val snapshot_scan : t -> ts:int -> from_key:int -> n:int -> (int -> int -> unit) -> int
(** Visits up to [n] entries with key ≥ [from_key] {e across all
    shards} in ascending key order, each resolved at snapshot [ts],
    lock-free; [f key digest] per entry; returns the number visited.
    Unlike {!scan} (one shard's tree, live state) this is a global
    ordered view consistent at one timestamp — per shard it merges
    the tree cursor with the shard's version chains, then K-way
    merges the shard streams. *)

val mvcc_chain_length : t -> key:int -> int
(** Versions currently retained for the key (pre-image included);
    0 when unmutated or MVCC is off.  Test/diagnostic use. *)

val mvcc_shard_chains : t -> (int * int) array
(** Per-shard version-chain census [(chains, versions)]: how many keys
    retain a chain on each shard and the total versions they hold —
    the MVCC memory footprint the serve metrics surface as per-shard
    gauges.  All zeros when MVCC is off. *)

val mvcc_break_early_publish : t -> unit
(** Mutation-testing hook: subsequent staged {!txn_prepare} calls
    publish the transaction's versions {e before} any decision exists,
    so a snapshot can observe a transaction that may still abort — the
    seeded bug the [mvcc-broken] crashcheck scenario must flag.  Never
    call this outside checker gates. *)

(** {2 DRAM read cache}

    A bounded per-shard volatile cache of [key -> newest committed
    digest] ({!Rcache}) in front of the trees.  Every mutation path —
    {!put}, {!delete}, {!txn}, {!group_commit} chunks, the backup's
    replicated applies and deferred {!txn_backup_decide} — removes its
    keys in the same pure OCaml step as its MVCC publication, so a
    present entry always digests the newest committed value and a
    lock-free snapshot reader can never pair a new watermark with a
    stale cached digest.  Each entry carries the commit timestamp of
    the value it caches; {!snapshot_get} consumes a hit only when that
    timestamp satisfies its snapshot, and fills on a miss only inside
    a pure step that also proves the resolved version is still the
    key's newest — a lock-free fill that lost a race with a writer
    would otherwise pin the old digest for every later snapshot.
    {!txn_resolve_indoubt} (promotion) resets the cache like the
    version chains. *)

val rcache_entries : t -> int
(** The per-shard capacity the store was created with (0 = off). *)

val rcache_stats : t -> int * int * int * int
(** Cumulative [(hits, misses, evictions, invalidations)] — the serve
    gauges.  All zeros when the cache is off. *)

val rcache_cached : t -> int
(** Entries currently cached across all shards. *)

val rcache_mem : t -> key:int -> bool
(** Whether the key is currently cached (uncounted; tests). *)

val rcache_break_late_invalidate : t -> unit
(** Mutation-testing hook: mutations defer their cache invalidations
    until the {e next} mutation begins — invalidate-after-reply, so a
    read landing between the two can consume a stale digest.  The
    seeded bug the [rcache-broken] crashcheck scenario must flag.
    Never call this outside checker gates. *)

(** {2 Cross-shard transactions} *)

val max_txn_ops : int
(** Operations one participant slot can hold — the per-shard cap on a
    transaction's footprint (8). *)

type txn_op = Replica.txn_op =
  | Tput of { key : int; vseed : int }
  | Tdel of { key : int }
(** Shared with the replication wire format so a participant's slice
    ships unconverted. *)

type txn_abort =
  | Txn_empty
  | Txn_too_many_ops  (** more than {!max_txn_ops} keys on one shard *)
  | Txn_duplicate_key
  | Txn_absent_key of int  (** strict deletes: [Tdel] of a missing key *)
  | Txn_no_memory  (** allocation failed during prepare *)

type txn_result = {
  txn_id : int; (** 0 when aborted before a slot was claimed *)
  committed : bool;
  abort : txn_abort option;
  fin : int;
      (** simulated time of the decision record's persist — the commit
          point; 0 on abort or outside the simulation *)
  participants : (int * txn_op list) list;
      (** ascending shard order; ops in submission order per shard *)
}

val txn :
  ?on_commit:(txn_result -> unit) ->
  ?trace:int ->
  ?span:int ->
  t ->
  txn_op list ->
  txn_result
(** Executes the operations as one atomic transaction: after a crash
    at any fence, either every operation is visible or none is.
    Acquires every participant's {!shard_lock} in ascending order (so
    concurrent transactions cannot deadlock) plus the coordinator lock
    for the decide→apply window; [on_commit] runs {e inside} the
    critical section right after apply — the hook the replicated
    server uses to ship prepare/decide records in mutation order.
    Aborts ([committed = false]) leave no durable trace.
    [trace]/[span] (default -1 = off) attach {!Obs.Span.Txn_prepare} /
    {!Obs.Span.Txn_decide} detail spans under the caller's transaction
    span. *)

val group_commit :
  ?on_chunk:(fin:int -> txn_op list -> unit) ->
  t ->
  shard:int ->
  txn_op list ->
  (bool * int) list
(** Group commit: execute a run of single-key mutations, all bound for
    [shard] ({!shard_of_key}), as a chain of single-participant
    transaction chunks of up to {!max_txn_ops} ops each — one covering
    slot persist (whose fence also commits the chunk's fence-free
    clwb'd values), one micro-log truncate and one decision round per
    {e chunk} instead of ~5 fences per {e op}.  Acquires the shard
    lock itself.  A chunk splits early when it would hold two entries
    for one key; an absent delete is a no-op that never enters a chunk
    (its result reflects every earlier op of the group, applied or
    still buffered).  Returns one [(ok, fin)] per input op, in order:
    [ok] as {!put}/{!delete} would have reported, [fin] the simulated
    time of the covering decision persist (the op's durability point).
    [on_chunk] runs inside the shard lock right after each chunk's
    apply, with the chunk's ops in order — the replicated server's
    shipping hook, mirroring {!txn}'s [on_commit].  Crash recovery is
    unchanged: a chunk is redone or presumed-aborted by {!attach} like
    any other transaction, so a crash loses at most the chunks (and
    never a completed chunk) of the in-flight group. *)

val txn_prepare : t -> txn_op list -> (int, txn_abort) result
(** Phase 1 only (no locking — single-threaded recovery tests and
    instrumentation): persist values and participant slots, commit the
    allocator transaction, return the claimed txn id.  A crash now
    leaves the transaction in doubt; {!attach} presumed-aborts it. *)

val txn_decide : t -> txn:int -> unit
(** Persist the coordinator decision record: the commit point.  A
    crash after this redoes the transaction from its slots. *)

val txn_apply : t -> txn:int -> unit
(** Publish and clear every slot naming [txn], then clear the
    decision record. *)

val txn_resolve_indoubt : t -> int
(** Roll back every occupied participant slot — presumed abort.  The
    promoting backup calls this after {!Replica.Applier.seal_and_replay}:
    a prepare whose decide died with the primary was never acked to any
    client, so discarding it is safe.  Returns the slots resolved. *)

val txn_backup_prepare : t -> txn:int -> shard:int -> ops:txn_op list -> unit
(** Apply a shipped [Txn_prepare] record: persist the slice's values
    and its participant slot (durable before the applier acks). *)

val group_apply : t -> shard:int -> txn_op list -> unit
(** Backup-side group apply: run a drained burst of in-order shipped
    single-key records through the same chunked commit chain as
    {!group_commit} — one covering persist per chunk instead of one
    intent round per record.  If the shard's participant slot is held
    by an in-flight 2PC prepare (its decides still arriving), the
    burst degrades to the legacy per-record path so the chunk chain
    never overwrites the prepared slot.  Results are discarded: the
    backup replays the primary's already-decided outcomes. *)

val txn_backup_decide :
  t -> txn:int -> shard:int -> commit:bool -> nparts:int -> unit
(** Apply a shipped [Txn_decide] record.  [commit = false] discards
    the prepared slice at once; a commit is {e deferred} until the
    decides of all [nparts] participants have arrived, and the last
    one publishes the whole transaction under this store's own
    decision record — publishing slice-by-slice would let a crash or
    promotion between slices surface half a transaction.  A decide
    for an already-resolved slot is a no-op (duplicate-delivery
    tolerance). *)

val txn_break_decision_persist : t -> unit
(** Mutation-testing hook: every subsequent {!txn}/{!txn_decide} skips
    the persist of the coordinator decision record — the seeded 2PC
    bug the [kv-txn-broken] crashcheck scenario must flag.  Never call
    this outside checker gates. *)
