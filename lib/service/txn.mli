(** Cross-shard atomic transactions for poseidon-kv — the 2PC-style
    coordinator-record protocol (DESIGN §10).

    A transaction is a list of puts/deletes over distinct keys that
    may land on different shards.  Execution has the classic two-phase
    shape, all inside one persistent heap:

    + {b prepare} — new values are allocated and persisted under one
      open allocator transaction; each participant shard's slice is
      persisted into that shard's {e participant slot} (a
      checksummed multi-op intent record in the superroot); the
      allocator transaction commits, transferring block ownership to
      the slots.
    + {b decide} — the coordinator {e decision record} (one u64 on its
      own cache line) is persisted with the transaction's id.  {e This
      single persist is the commit point.}
    + {b apply} — each slot is published into its B+-tree (idempotent
      inserts/deletes, safe frees of overwritten values) and cleared;
      finally the decision record is cleared.

    Crash anywhere, and {!Kv.attach} resolves: slots whose id matches
    the persisted decision record are redone (the transaction had
    committed), every other occupied slot is rolled back — presumed
    abort, which is sound because the client reply is only sent after
    the decision persists.

    Under replication the committed transaction rides the per-shard
    sequenced streams as a [Txn_prepare] + [Txn_decide] record pair
    per participant ({!Replica.op}); a promoting backup first replays
    the sealed log ({!Replica.Applier.seal_and_replay}) and then calls
    {!resolve_indoubt} to discard prepares whose decide died on the
    wire — none of those were ever acked. *)

type op = Replica.txn_op =
  | Tput of { key : int; vseed : int }
  | Tdel of { key : int }

type abort = Kv.txn_abort =
  | Txn_empty
  | Txn_too_many_ops
  | Txn_duplicate_key
  | Txn_absent_key of int
  | Txn_no_memory

type result = Kv.txn_result = {
  txn_id : int;
  committed : bool;
  abort : abort option;
  fin : int;
  participants : (int * op list) list;
}

val max_ops : int
(** Per-shard operation cap ({!Kv.max_txn_ops}). *)

val exec :
  ?on_commit:(result -> unit) ->
  ?trace:int ->
  ?span:int ->
  Kv.t ->
  op list ->
  result
(** {!Kv.txn}: the whole protocol under the participant + coordinator
    locks.  [on_commit] fires inside the critical section, after
    apply — where the replicated server ships its records.
    [trace]/[span] attach prepare/decide detail spans ({!Obs.Span}). *)

val prepare : Kv.t -> op list -> (int, abort) Stdlib.result
(** {!Kv.txn_prepare} — staged phase 1 (tests/instrumentation). *)

val decide : Kv.t -> txn:int -> unit
(** {!Kv.txn_decide} — persist the commit point. *)

val apply : Kv.t -> txn:int -> unit
(** {!Kv.txn_apply} — publish and clear the prepared slots. *)

val resolve_indoubt : Kv.t -> int
(** {!Kv.txn_resolve_indoubt} — presumed-abort every occupied slot
    (promotion path); returns the count resolved. *)

val abort_to_string : abort -> string

val apply_replicated : Kv.t -> shard:int -> Replica.op -> unit
(** Backup-side dispatch for a shipped record: single-op records apply
    through {!Kv.put}/{!Kv.delete}, [Txn_prepare] persists a
    participant slot ({!Kv.txn_backup_prepare} — durable before the
    applier's ack), [Txn_decide] discards it or — once every
    participant's decide has arrived — publishes the whole transaction
    at once ({!Kv.txn_backup_decide}). *)

val apply_replicated_group : Kv.t -> shard:int -> Replica.op list -> unit
(** Batched backup-side dispatch: apply a drained burst of in-order
    single-op records as one {!Kv.group_apply} chunk chain — one
    covering persist per chunk instead of one intent round per record.
    Raises [Invalid_argument] on a transaction record: the applier
    must handle those per record (they are group barriers). *)
