module Sched = Simcore.Sched

type 'a msg = {
  payload : 'a;
  sent_at : int;
  delivered_at : int;
  src_cpu : int;
  trace : int;
  span : int;
}

type 'a port = {
  cpu : int;
  capacity : int;
  q : 'a msg Queue.t;
  mutable enqueued : int;
  mutable rejected : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable max_depth : int;
}

type 'a t = {
  mach : Machine.t;
  ports : 'a port array;
  local_ns : int;
  remote_ns : int;
  send_cpu_ns : int;
  poll_ns : int;
  drop_pct : int;
  dup_pct : int;
  fault_rng : Repro_util.Prng.t;
}

let create mach ~ports ?(local_ns = 1_500) ?remote_ns ?(send_cpu_ns = 300)
    ?(poll_ns = 500) ?(drop_pct = 0) ?(dup_pct = 0) ?(fault_seed = 0xFA17) ()
    =
  if drop_pct < 0 || drop_pct >= 100 then
    invalid_arg "Net.create: drop_pct must be in [0, 100)";
  if dup_pct < 0 || dup_pct > 100 then
    invalid_arg "Net.create: dup_pct must be in [0, 100]";
  let cfg = Machine.cfg mach in
  let remote_ns =
    match remote_ns with
    | Some n -> n
    | None ->
      int_of_float (float_of_int local_ns *. cfg.Machine.Config.remote_numa_mult)
  in
  let ports =
    Array.map
      (fun (cpu, capacity) ->
        if capacity < 1 then invalid_arg "Net.create: capacity < 1";
        { cpu;
          capacity;
          q = Queue.create ();
          enqueued = 0;
          rejected = 0;
          delivered = 0;
          dropped = 0;
          duplicated = 0;
          max_depth = 0 })
      ports
  in
  { mach; ports; local_ns; remote_ns; send_cpu_ns; poll_ns;
    drop_pct; dup_pct;
    fault_rng = Repro_util.Prng.create fault_seed }

let latency t ~src_cpu ~dst_cpu =
  let cfg = Machine.cfg t.mach in
  if Machine.Config.cpu_numa cfg src_cpu = Machine.Config.cpu_numa cfg dst_cpu then t.local_ns
  else t.remote_ns

let try_send ?(trace = -1) ?(span = -1) t ~dst payload =
  let p = t.ports.(dst) in
  if Queue.length p.q >= p.capacity then begin
    p.rejected <- p.rejected + 1;
    false
  end
  else begin
    let in_sim = Sched.in_simulation () in
    if in_sim then Sched.charge t.send_cpu_ns;
    let now = if in_sim then Sched.now () else 0 in
    let src_cpu = if in_sim then Sched.cpu () else Machine.main_thread in
    let lat = if in_sim then latency t ~src_cpu ~dst_cpu:p.cpu else 0 in
    p.enqueued <- p.enqueued + 1;
    (* Fault injection (lossy links for replication testing).  On a
       clean network (both percentages 0, the default) the PRNG is
       never consulted, keeping behaviour bit-identical. *)
    let faulty = t.drop_pct > 0 || t.dup_pct > 0 in
    if faulty && Repro_util.Prng.int t.fault_rng 100 < t.drop_pct then
      (* Wire loss is invisible to the sender: still [true]. *)
      p.dropped <- p.dropped + 1
    else begin
      let m =
        { payload; sent_at = now; delivered_at = now + lat; src_cpu;
          trace; span }
      in
      Queue.push m p.q;
      if
        faulty
        && Queue.length p.q < p.capacity
        && Repro_util.Prng.int t.fault_rng 100 < t.dup_pct
      then begin
        p.duplicated <- p.duplicated + 1;
        Queue.push m p.q
      end;
      let depth = Queue.length p.q in
      if depth > p.max_depth then p.max_depth <- depth
    end;
    true
  end

let recv t ~port =
  let p = t.ports.(port) in
  let now = if Sched.in_simulation () then Sched.now () else max_int in
  match Queue.peek_opt p.q with
  | Some m when m.delivered_at <= now ->
    ignore (Queue.pop p.q);
    p.delivered <- p.delivered + 1;
    Some m
  | _ -> None

let rec recv_wait t ~port ~until =
  match recv t ~port with
  | Some _ as r -> r
  | None ->
    let now = Sched.now () in
    if now >= until then None
    else begin
      let p = t.ports.(port) in
      let target =
        match Queue.peek_opt p.q with
        | Some m when m.delivered_at > now -> min m.delivered_at until
        | _ -> min (now + t.poll_ns) until
      in
      Sched.sleep (max 1 (target - now));
      recv_wait t ~port ~until
    end

let pending t ~port = Queue.length t.ports.(port).q
let port_cpu t port = t.ports.(port).cpu

type port_stats = {
  enqueued : int;
  rejected : int;
  delivered : int;
  dropped : int;
  duplicated : int;
  max_depth : int;
}

let stats t ~port =
  let p = t.ports.(port) in
  { enqueued = p.enqueued;
    rejected = p.rejected;
    delivered = p.delivered;
    dropped = p.dropped;
    duplicated = p.duplicated;
    max_depth = p.max_depth }

module Loadgen = struct
  type t = { rng : Repro_util.Prng.t; mean_gap_ns : float }

  let create ~rate ~seed =
    if rate <= 0. then invalid_arg "Loadgen.create: rate <= 0";
    { rng = Repro_util.Prng.create seed; mean_gap_ns = 1e9 /. rate }

  let next_gap_ns t =
    (* inverse-CDF exponential draw; u in [0,1) so log argument > 0 *)
    let u = Repro_util.Prng.float t.rng 1.0 in
    let gap = -.log (1. -. u) *. t.mean_gap_ns in
    max 1 (int_of_float gap)
end
