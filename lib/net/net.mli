(** Simulated point-to-point network over the discrete-event machine.

    A network is a set of {e ports}, each pinned to a simulated CPU and
    backed by a bounded FIFO queue.  Sending charges the sender a small
    CPU cost and stamps the message with a delivery time derived from
    the machine's NUMA topology (cross-socket sends pay the config's
    [remote_numa_mult]); the message becomes visible to the receiver
    once simulated time reaches that stamp.  Queues are bounded:
    {!try_send} refuses (returns [false]) when the destination queue is
    full — that refusal is the admission-control signal the service
    layer turns into an [Overloaded] reply.

    Each port has a single logical reader (one simulated thread);
    delivery within a port is FIFO.  Outside the simulation (setup /
    post-run draining) sends and receives still work, with zero
    latency and no CPU charging. *)

type 'a msg = {
  payload : 'a;
  sent_at : int; (** simulated ns at {!try_send} *)
  delivered_at : int; (** simulated ns the message reached the port *)
  src_cpu : int;
  trace : int; (** trace id carried for distributed tracing; -1 = none *)
  span : int; (** sender's span id (the receiver's causal parent) *)
}

type 'a t

val create :
  Machine.t ->
  ports:(int * int) array ->
  ?local_ns:int ->
  ?remote_ns:int ->
  ?send_cpu_ns:int ->
  ?poll_ns:int ->
  ?drop_pct:int ->
  ?dup_pct:int ->
  ?fault_seed:int ->
  unit ->
  'a t
(** [create mach ~ports ()] builds a network with [Array.length ports]
    ports; port [i] lives on CPU [fst ports.(i)] with queue capacity
    [snd ports.(i)].  [local_ns] is the one-way latency within a NUMA
    domain (default 1500 ns); [remote_ns] the cross-domain latency
    (default [local_ns *. remote_numa_mult] from the machine config);
    [send_cpu_ns] the sender-side CPU charge (default 300 ns);
    [poll_ns] the empty-queue polling quantum of {!recv_wait}
    (default 500 ns).

    [drop_pct]/[dup_pct] inject seeded wire faults into {!try_send}: a
    send may be silently lost (the sender still sees [true] — loss on
    the wire is not observable at the sender) or delivered twice (the
    copy enqueued right behind the original).  [drop_pct] must stay
    below 100 — an always-dropping link cannot carry a protocol.  Both
    default to 0, in which case the fault PRNG ([fault_seed]) is never
    consulted and behaviour is bit-identical to a fault-free build. *)

val try_send : ?trace:int -> ?span:int -> 'a t -> dst:int -> 'a -> bool
(** Enqueue for port [dst]; [false] if its queue is full (the message
    is dropped — admission control; the drop is counted).  With fault
    injection enabled the message may instead be silently lost or
    duplicated, counted in {!port_stats}.  [trace]/[span] (default -1
    = none) ride the envelope as the {!Obs.Span} context: the
    receiver's spans use [span] as their causal parent. *)

val recv : 'a t -> port:int -> 'a msg option
(** Dequeue the head of [port]'s queue if it has been delivered
    (i.e. its [delivered_at] is in the past).  Non-blocking. *)

val recv_wait : 'a t -> port:int -> until:int -> 'a msg option
(** Like {!recv} but sleeps (in simulated time) until a message is
    deliverable or the clock reaches [until].  Must be called from a
    simulated thread. *)

val pending : 'a t -> port:int -> int
(** Messages currently queued for [port] (delivered or in flight). *)

val port_cpu : 'a t -> int -> int

type port_stats = {
  enqueued : int; (** accepted by {!try_send} *)
  rejected : int; (** refused: queue full *)
  delivered : int; (** handed to the reader by [recv]/[recv_wait] *)
  dropped : int; (** fault-injected wire losses *)
  duplicated : int; (** fault-injected duplicate deliveries *)
  max_depth : int; (** high-water queue depth *)
}

val stats : 'a t -> port:int -> port_stats

(** Open-loop arrival process: exponential inter-arrival gaps (Poisson
    process) at a fixed mean rate, decoupled from service rate. *)
module Loadgen : sig
  type t

  val create : rate:float -> seed:int -> t
  (** [rate] in arrivals per simulated second. *)

  val next_gap_ns : t -> int
  (** Next inter-arrival gap, ≥ 1 ns. *)
end
