(** DRAM-resident read cache over the persistent KV shards.

    A bounded per-shard map from key to the digest of its latest
    committed value, with CLOCK (second-chance) eviction.  The cache
    is pure OCaml state — no simulated-machine calls — so every probe,
    fill and invalidation is one atomic step under the cooperative
    scheduler, and the whole structure is volatile by construction: a
    crash drops it, re-attach starts empty, and crash recovery needs
    no new persistence reasoning.

    Correctness contract (enforced by the {!Service.Kv} call sites):

    - {e write-through invalidation}: every mutation removes its keys
      in the same pure OCaml step as its MVCC version publish, so a
      present entry always digests the key's newest committed value;
    - each entry carries [vts], the commit timestamp of the value it
      caches ([0] for a value that predates every mutation since
      attach), so a snapshot read at [ts] may consume a hit only when
      [vts <= ts] — the newest committed version is then exactly the
      version the snapshot must observe ({!find_at}). *)

type t

val create : shards:int -> entries:int -> t
(** [entries] is the per-shard slot count; [0] disables the cache —
    every operation below becomes a no-op and no statistics move, so
    the disabled store is byte-identical to a cacheless one. *)

val enabled : t -> bool
val entries : t -> int
(** The per-shard capacity [create] was given (the knob value). *)

val find : t -> shard:int -> key:int -> int option
(** Probe for the latest committed digest of [key].  Counts a hit or
    a miss; a hit marks the slot recently used. *)

val find_at : t -> shard:int -> key:int -> ts:int -> int option
(** Snapshot probe: a hit only if the entry is present {e and} its
    [vts <= ts].  An entry newer than the snapshot is a miss (the
    caller must resolve through the version chains). *)

val insert : t -> shard:int -> key:int -> digest:int -> vts:int -> unit
(** Fill after a locked tree read.  Evicts via CLOCK when the shard
    is full (counted); replaces in place if [key] is already cached. *)

val invalidate : t -> shard:int -> key:int -> unit
(** Write-through invalidation.  Only an actual removal counts; with
    {!break_late_invalidate} armed the removal is deferred instead
    (the seeded bug). *)

val mem : t -> shard:int -> key:int -> bool
(** Uncounted presence probe (tests and gauges only). *)

val cached : t -> int
(** Entries currently cached across all shards (uncounted). *)

val reset : t -> unit
(** Drop every entry and any deferred invalidations (backup
    promotion, like the MVCC chains).  Cumulative statistics stay. *)

val stats : t -> int * int * int * int
(** [(hits, misses, evictions, invalidations)]. *)

val break_late_invalidate : t -> unit
(** Mutation-testing hook: {!invalidate} queues the removal instead
    of performing it, and the queue only drains at the {e next}
    mutation ({!drain_pending}) — invalidate-after-reply, so a read
    between a mutation's return and the next mutation can consume a
    stale hit.  The [rcache-broken] crashcheck scenario must flag
    this. *)

val drain_pending : t -> unit
(** Apply deferred invalidations (no-op unless the break is armed). *)
