(* Per-shard CLOCK cache of (key -> latest committed digest), pure
   OCaml throughout: the service layer owns WHEN to probe/fill/kill
   (and what simulated DRAM cost to charge); this module only promises
   each call is a single atomic step under the cooperative scheduler.

   Layout per shard: a slot array of capacity [entries] plus a key ->
   slot index so probes and invalidations are O(1).  The CLOCK hand
   sweeps the array clearing reference bits; the first slot found
   unreferenced (or empty) is the victim. *)

type slot = {
  mutable s_key : int;
  mutable s_digest : int;
  mutable s_vts : int; (* commit ts of the cached value; 0 = floor *)
  mutable s_ref : bool; (* second-chance bit *)
  mutable s_used : bool;
}

type shard_cache = {
  slots : slot array;
  index : (int, int) Hashtbl.t; (* key -> slot *)
  mutable hand : int;
}

type t = {
  entries : int;
  caches : shard_cache array;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;
  mutable break_late : bool;
  mutable pending : (int * int) list; (* deferred (shard, key) kills *)
}

let create ~shards ~entries =
  if shards < 1 then invalid_arg "Rcache.create: shards must be >= 1";
  if entries < 0 then invalid_arg "Rcache.create: entries must be >= 0";
  { entries;
    caches =
      Array.init shards (fun _ ->
          { slots =
              Array.init entries (fun _ ->
                  { s_key = 0; s_digest = 0; s_vts = 0; s_ref = false;
                    s_used = false });
            index = Hashtbl.create (max 16 entries);
            hand = 0 });
    hits = 0;
    misses = 0;
    evictions = 0;
    invalidations = 0;
    break_late = false;
    pending = [] }

let enabled t = t.entries > 0
let entries t = t.entries

let find t ~shard ~key =
  if not (enabled t) then None
  else
    let c = t.caches.(shard) in
    match Hashtbl.find_opt c.index key with
    | Some i ->
      let s = c.slots.(i) in
      s.s_ref <- true;
      t.hits <- t.hits + 1;
      Some s.s_digest
    | None ->
      t.misses <- t.misses + 1;
      None

let find_at t ~shard ~key ~ts =
  if not (enabled t) then None
  else
    let c = t.caches.(shard) in
    match Hashtbl.find_opt c.index key with
    | Some i when c.slots.(i).s_vts <= ts ->
      let s = c.slots.(i) in
      s.s_ref <- true;
      t.hits <- t.hits + 1;
      Some s.s_digest
    | Some _ | None ->
      (* present-but-newer counts as a miss: the entry digests a
         version the snapshot must not observe *)
      t.misses <- t.misses + 1;
      None

(* CLOCK victim selection: sweep clearing reference bits; an empty or
   unreferenced slot stops the hand.  Bounded by 2 * entries (after
   one full sweep every bit is clear). *)
let victim c n =
  let rec go steps =
    let i = c.hand in
    c.hand <- (i + 1) mod n;
    let s = c.slots.(i) in
    if (not s.s_used) || not s.s_ref then i
    else begin
      s.s_ref <- false;
      if steps >= 2 * n then i else go (steps + 1)
    end
  in
  go 0

let insert t ~shard ~key ~digest ~vts =
  if enabled t then begin
    let c = t.caches.(shard) in
    match Hashtbl.find_opt c.index key with
    | Some i ->
      let s = c.slots.(i) in
      s.s_digest <- digest;
      s.s_vts <- vts;
      s.s_ref <- true
    | None ->
      let i = victim c t.entries in
      let s = c.slots.(i) in
      if s.s_used then begin
        Hashtbl.remove c.index s.s_key;
        t.evictions <- t.evictions + 1
      end;
      s.s_key <- key;
      s.s_digest <- digest;
      s.s_vts <- vts;
      s.s_ref <- true;
      s.s_used <- true;
      Hashtbl.replace c.index key i
  end

let kill t ~shard ~key =
  let c = t.caches.(shard) in
  match Hashtbl.find_opt c.index key with
  | Some i ->
    c.slots.(i).s_used <- false;
    c.slots.(i).s_ref <- false;
    Hashtbl.remove c.index key;
    t.invalidations <- t.invalidations + 1
  | None -> ()

let invalidate t ~shard ~key =
  if enabled t then begin
    if t.break_late then
      (* BROKEN (mutation testing): defer — the entry stays readable
         past the mutation's return, until the next mutation drains *)
      t.pending <- (shard, key) :: t.pending
    else kill t ~shard ~key
  end

let drain_pending t =
  if t.pending <> [] then begin
    List.iter (fun (shard, key) -> kill t ~shard ~key) (List.rev t.pending);
    t.pending <- []
  end

let mem t ~shard ~key = enabled t && Hashtbl.mem t.caches.(shard).index key

let cached t =
  Array.fold_left (fun acc c -> acc + Hashtbl.length c.index) 0 t.caches

let reset t =
  Array.iter
    (fun c ->
      Hashtbl.reset c.index;
      Array.iter
        (fun s ->
          s.s_used <- false;
          s.s_ref <- false)
        c.slots;
      c.hand <- 0)
    t.caches;
  t.pending <- []

let stats t = (t.hits, t.misses, t.evictions, t.invalidations)
let break_late_invalidate t = t.break_late <- true
