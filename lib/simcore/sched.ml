open Effect
open Effect.Deep

exception Not_in_simulation
exception Deadlock of string

type thread_id = int

type thread = {
  id : thread_id;
  tcpu : int;
  mutable clock : int;
  mutable finished : bool;
  mutable joiners : waiter list;
}

and waiter = { wthread : thread; wk : (unit, unit) continuation }

type t = {
  runq : (unit -> unit) Pqueue.t;
  threads : (thread_id, thread) Hashtbl.t;
  mutable live : int;
  mutable horizon_ : int;
  mutable next_id : int;
  mutable switches : int; (* coroutine resumptions (context switches) *)
  mutable max_runq : int; (* high-water mark of the runnable queue *)
}

(* A single effect carries the registration closure that parks the
   suspended thread wherever it must wait (run queue, lock queue,
   joiner list).  The closure runs inside the effect handler, where the
   continuation is available. *)
type _ Effect.t +=
  | Suspend : (thread -> (unit, unit) continuation -> unit) -> unit Effect.t

let current : (t * thread) option ref = ref None

let ctx () =
  match !current with Some c -> c | None -> raise Not_in_simulation

let create () =
  { runq = Pqueue.create ();
    threads = Hashtbl.create 64;
    live = 0;
    horizon_ = 0;
    next_id = 0;
    switches = 0;
    max_runq = 0 }

let on_exit engine th =
  th.finished <- true;
  engine.live <- engine.live - 1;
  if th.clock > engine.horizon_ then engine.horizon_ <- th.clock;
  Obs.Trace.emit1 Obs.Event.Thread_finish th.id

(* Every resumption of a suspended coroutine is a context switch of the
   simulated machine; the trace records the runnable-queue depth at the
   instant of the switch. *)
let note_switch engine =
  engine.switches <- engine.switches + 1;
  let depth = Pqueue.length engine.runq in
  if depth > engine.max_runq then engine.max_runq <- depth;
  Obs.Trace.emit1 Obs.Event.Ctx_switch depth

let rec resume engine th k v =
  let saved = !current in
  current := Some (engine, th);
  note_switch engine;
  Fun.protect
    ~finally:(fun () -> current := saved)
    (fun () -> continue k v)

and enqueue_resume engine w =
  Pqueue.push engine.runq ~time:w.wthread.clock (fun () ->
      resume engine w.wthread w.wk ())

let handler engine th =
  { retc =
      (fun () ->
        on_exit engine th;
        let joiners = List.rev th.joiners in
        th.joiners <- [];
        List.iter
          (fun w ->
            if th.clock > w.wthread.clock then w.wthread.clock <- th.clock;
            enqueue_resume engine w)
          joiners);
    exnc =
      (fun e ->
        on_exit engine th;
        raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Suspend register ->
          Some (fun (k : (a, unit) continuation) -> register th k)
        | _ -> None) }

let spawn engine ?(cpu = 0) ?at body =
  let start_clock =
    match at with
    | Some c -> c
    | None -> ( match !current with Some (_, parent) -> parent.clock | None -> 0)
  in
  let id = engine.next_id in
  engine.next_id <- id + 1;
  let th =
    { id; tcpu = cpu; clock = start_clock; finished = false; joiners = [] }
  in
  Hashtbl.replace engine.threads id th;
  engine.live <- engine.live + 1;
  Pqueue.push engine.runq ~time:start_clock (fun () ->
      let saved = !current in
      current := Some (engine, th);
      note_switch engine;
      Obs.Trace.emit2 Obs.Event.Thread_spawn th.id th.tcpu;
      Fun.protect
        ~finally:(fun () -> current := saved)
        (fun () -> match_with body () (handler engine th)));
  id

let run engine =
  let rec loop () =
    match Pqueue.pop engine.runq with
    | Some (time, task) ->
      if time > engine.horizon_ then engine.horizon_ <- time;
      task ();
      loop ()
    | None ->
      if engine.live > 0 then
        raise
          (Deadlock
             (Printf.sprintf "simulation stalled with %d thread(s) blocked"
                engine.live))
  in
  loop ()

let horizon engine = engine.horizon_

let thread_clock engine tid =
  match Hashtbl.find_opt engine.threads tid with
  | Some th -> th.clock
  | None -> invalid_arg "Sched.thread_clock: unknown thread"

let live_threads engine = engine.live
let context_switches engine = engine.switches
let max_runq_depth engine = engine.max_runq

let charge ns =
  if ns < 0 then invalid_arg "Sched.charge: negative cost";
  let _, th = ctx () in
  th.clock <- th.clock + ns

let now () =
  let _, th = ctx () in
  th.clock

let self () =
  let _, th = ctx () in
  th.id

let cpu () =
  let _, th = ctx () in
  th.tcpu

let in_simulation () = !current <> None

(* Give the tracer simulated-time stamps: obs is a leaf library, so the
   clock is injected here rather than depended upon. *)
let () =
  Obs.Trace.set_clock
    ~in_sim:(fun () -> !current <> None)
    ~now:(fun () -> match !current with Some (_, th) -> th.clock | None -> 0)
    ~tid:(fun () -> match !current with Some (_, th) -> th.id | None -> -1)
    ~cpu:(fun () -> match !current with Some (_, th) -> th.tcpu | None -> -1)

let yield () =
  let engine, _ = ctx () in
  perform (Suspend (fun th k -> enqueue_resume engine { wthread = th; wk = k }))

let join tid =
  let engine, me = ctx () in
  let target =
    match Hashtbl.find_opt engine.threads tid with
    | Some th -> th
    | None -> invalid_arg "Sched.join: unknown thread"
  in
  if target.id = me.id then invalid_arg "Sched.join: cannot join self";
  if target.finished then begin
    if target.clock > me.clock then me.clock <- target.clock
  end
  else
    perform
      (Suspend (fun th k -> target.joiners <- { wthread = th; wk = k } :: target.joiners))

let sleep ns =
  charge ns;
  yield ()

module Mutex = struct
  type lock_waiter = { lthread : thread; lk : (unit, unit) continuation; since : int }

  type mutex = {
    mname : string;
    mutable holder_ : thread option;
    mutable free_at : int;
        (* Simulated instant at which the last holder released.  A
           coroutine may execute far past its release before
           earlier-clock events run, so "holder = None" alone does not
           mean the lock was free at the *simulated* time of a
           try-acquire; [free_at] closes that gap. *)
    waiters : lock_waiter Queue.t;
    mutable last_cpu : int;
    mutable acqs : int;
    mutable contended_ : int;
    mutable total_wait : int;
  }

  let create ?(name = "lock") () =
    { mname = name;
      holder_ = None;
      free_at = 0;
      waiters = Queue.create ();
      last_cpu = -1;
      acqs = 0;
      contended_ = 0;
      total_wait = 0 }

  (* Acquisition goes through the run queue so that the order in which
     threads obtain the lock equals the simulated-time order of their
     acquire calls, regardless of the order the coroutines happen to
     execute in. *)
  let acquire m =
    let engine, _ = ctx () in
    perform
      (Suspend
         (fun th k ->
           let rec try_acquire ~since () =
             match m.holder_ with
             | Some _ ->
               m.contended_ <- m.contended_ + 1;
               Queue.add { lthread = th; lk = k; since } m.waiters
             | None when th.clock < m.free_at ->
               (* Released in real execution order, but still held at
                  this simulated instant: wait until the release time
                  and retry (another thread may beat us to it there). *)
               m.contended_ <- m.contended_ + 1;
               m.total_wait <- m.total_wait + (m.free_at - th.clock);
               th.clock <- m.free_at;
               Pqueue.push engine.runq ~time:th.clock (retry ~since)
             | None ->
               m.holder_ <- Some th;
               m.acqs <- m.acqs + 1;
               resume engine th k ()
           and retry ~since () =
             (* Same as try_acquire but without re-counting contention. *)
             match m.holder_ with
             | Some _ -> Queue.add { lthread = th; lk = k; since } m.waiters
             | None when th.clock < m.free_at ->
               m.total_wait <- m.total_wait + (m.free_at - th.clock);
               th.clock <- m.free_at;
               Pqueue.push engine.runq ~time:th.clock (retry ~since)
             | None ->
               m.holder_ <- Some th;
               m.acqs <- m.acqs + 1;
               resume engine th k ()
           in
           Pqueue.push engine.runq ~time:th.clock (try_acquire ~since:th.clock)))

  let release m =
    let engine, me = ctx () in
    (match m.holder_ with
     | Some h when h.id = me.id -> ()
     | Some _ -> invalid_arg "Mutex.release: caller does not hold the lock"
     | None -> invalid_arg "Mutex.release: lock is not held");
    m.last_cpu <- me.tcpu;
    if me.clock > m.free_at then m.free_at <- me.clock;
    match Queue.take_opt m.waiters with
    | None -> m.holder_ <- None
    | Some w ->
      if me.clock > w.lthread.clock then w.lthread.clock <- me.clock;
      m.total_wait <- m.total_wait + (w.lthread.clock - w.since);
      m.holder_ <- Some w.lthread;
      m.acqs <- m.acqs + 1;
      enqueue_resume engine { wthread = w.lthread; wk = w.lk }

  let with_lock m f =
    acquire m;
    Fun.protect ~finally:(fun () -> release m) f

  let holder m = match m.holder_ with Some th -> Some th.id | None -> None
  let last_holder_cpu m = m.last_cpu
  let acquisitions m = m.acqs
  let contended m = m.contended_
  let total_wait_ns m = m.total_wait
  let name m = m.mname
end
