(** Discrete-event scheduler for simulated threads.

    The whole repository runs on one real core; scalability experiments
    execute on *simulated* threads managed by this module.  Each simulated
    thread is an OCaml 5 effect-based coroutine with its own clock
    (nanoseconds of simulated time).  Computation cost is accounted with
    {!charge}; threads interact only through the synchronisation
    primitives here (and the locks in {!Mutex}), and the scheduler always
    resumes the runnable thread with the smallest clock, which makes the
    interleaving a legal linearisation of a parallel execution.

    Invariants:
    - [charge]/[now]/[self]/[cpu] may only be called from inside a
      simulated thread (they raise [Not_in_simulation] otherwise);
    - lock acquisition order equals simulated-time order of the
      [Mutex.acquire] calls;
    - a run with the same spawn structure and charges is deterministic. *)

type t
(** A simulation engine. *)

type thread_id = int

exception Not_in_simulation
exception Deadlock of string

val create : unit -> t

val spawn : t -> ?cpu:int -> ?at:int -> (unit -> unit) -> thread_id
(** [spawn engine ?cpu ?at body] registers a simulated thread pinned to
    simulated CPU [cpu] (default 0) whose clock starts at [at]
    (default: the spawning thread's clock, or 0 from outside the
    simulation).  The body runs when {!run} drains the event queue. *)

val run : t -> unit
(** Drives the simulation until every spawned thread has finished.
    Raises {!Deadlock} if threads remain blocked with an empty run
    queue.  May be called again after spawning more threads. *)

val horizon : t -> int
(** Largest clock observed so far (the simulated makespan). *)

val thread_clock : t -> thread_id -> int
(** Final (or current) clock of a thread. *)

val live_threads : t -> int

val context_switches : t -> int
(** Coroutine resumptions performed so far (simulated context
    switches); also emitted as [Ctx_switch] trace events carrying the
    runnable-queue depth. *)

val max_runq_depth : t -> int
(** High-water mark of the runnable queue. *)

(** {2 Intra-thread operations} *)

val charge : int -> unit
(** [charge ns] advances the calling thread's clock. [ns >= 0]. *)

val now : unit -> int
(** Calling thread's clock. *)

val self : unit -> thread_id
val cpu : unit -> int

val in_simulation : unit -> bool
(** True when called from inside a simulated thread. *)

val yield : unit -> unit
(** Reschedules the calling thread at its current clock, letting any
    thread with a smaller clock run first. *)

val join : thread_id -> unit
(** Blocks until the target thread finishes; the caller's clock becomes
    [max caller target]. Joining a finished thread succeeds
    immediately. *)

val sleep : int -> unit
(** [sleep ns] is [charge ns] followed by a {!yield}. *)

(** Simulated mutexes with FIFO handoff and contention statistics. *)
module Mutex : sig
  type mutex

  val create : ?name:string -> unit -> mutex

  val acquire : mutex -> unit
  (** Blocks (in simulated time) until the lock is free.  Acquisition
      order across threads equals the simulated-time order of the
      acquire calls. *)

  val release : mutex -> unit
  (** Must be called by the holder; hands off to the first waiter. *)

  val with_lock : mutex -> (unit -> 'a) -> 'a

  val holder : mutex -> thread_id option
  val last_holder_cpu : mutex -> int
  (** CPU of the most recent holder, [-1] if never held.  The machine
      layer uses this to charge cache-line transfer costs. *)

  val acquisitions : mutex -> int
  val contended : mutex -> int
  (** Number of acquisitions that had to wait. *)

  val total_wait_ns : mutex -> int
  val name : mutex -> string
end
