(** DRAM-resident magazine caches over a persistent allocator
    (DESIGN.md §14).

    [wrap ~mag inner] layers volatile per-CPU, per-size-class bins
    over [inner]: allocation pops a bin (no NVMM traffic, no lock, no
    fence on the common path), a miss carves [mag] blocks in one inner
    transaction, frees stash into a bin and flush in bulk.  Crash
    safety rides the inner allocator's reclaim-ledger leases exposed
    through {!Alloc_intf.cache_ops}: a cache-handed-out block becomes
    durably allocated only when its lease publish (fence) completes —
    ordered before the embedding store's own commit persist — and a
    freed block is recyclable only after its reclaim lease persisted.
    Allocators without cache support (and [mag = 0]) degrade to a
    transparent pass-through. *)

type handle

include Alloc_intf.S with type heap = handle

val wrap : mag:int -> Alloc_intf.instance -> Alloc_intf.instance * handle
(** Wraps an instance with magazine size [mag] (blocks carved per
    refill; bins flush when they exceed twice that).  [mag = 0]
    returns a pass-through wrapper that forwards every call verbatim
    to [inner].  The handle controls the cache out of band. *)

val reset : handle -> unit
(** Flushes every bin and pending list back to the inner allocator
    (bulk reclaim) and clears the cache state — used when an instance
    changes role (e.g. a replica promoting to primary re-attaches the
    heap; leftover DRAM state would go stale). *)

val stats : handle -> int * int * int * int
(** Wrapper-side traffic counters [(hits, misses, refills, flushes)]
    since construction (mirrors the inner allocator's
    [tcache_*]/[bin_*] heap statistics). *)

val break_recycle : handle -> unit
(** Seeded fault for crash-consistency checking ONLY: from now on,
    frees recycle blocks into the bins with {e no} reclaim lease and
    {e no} persistent free, so a crash leaks every block whose store
    reference was dropped before its recycled copy was re-referenced.
    The crashcheck scenario [tcache-broken] asserts the checker
    catches this. *)
