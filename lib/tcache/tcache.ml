(** DRAM-resident magazine caches over a persistent allocator.

    The wrapper interposes volatile per-CPU, per-size-class bins
    between the application and an {!Alloc_intf.instance}: the common
    allocation path is a bin pop — no NVMM write, no lock, no fence —
    and frees stash into a local bin and flush to the allocator in
    bulk.  The persistent half of the protocol lives behind
    {!Alloc_intf.cache_ops} (Poseidon's per-sub-heap reclaim ledger):

    - {e Refill}: a bin miss carves [mag] blocks of the class size in
      ONE allocator transaction; each carved block carries a ledger
      {e lease}, so a crash leaves nothing dangling — recovery frees
      every leased block.
    - {e Publish}: a block handed to the application is not durably
      allocated until its lease is cleared (clwb + fence).  Singleton
      allocs publish before returning; transactional allocs accumulate
      on a per-CPU pending list published in one batch — one fence —
      at the [is_end]/[tx_commit] point, strictly before the embedding
      store persists its own commit record.
    - {e Stash}: a free durably records a reclaim lease (one fence, a
      write-ahead: the block may be recycled from the bin immediately,
      because crash recovery will free it if the recycled copy's new
      reference never persists) and joins the bin; overlong bins flush
      their overflow through one bulk-free transaction.

    Allocators without cache support ([cache_ops = None] — the
    baselines) degrade the wrapper to a transparent pass-through, as
    does a magazine size of zero. *)

open Alloc_intf

(* Cached classes: 32 B .. cache_max_size, exact powers of two. *)
let max_classes = 8

let class_of_rsize rsize =
  let rec go c s = if s <= 32 then c else go (c + 1) (s / 2) in
  go 0 rsize

type bin = { mutable blocks : cache_block list; mutable depth : int }

type cpu_state = {
  bins : bin array;
  mutable pending : (cache_block * int) list;
      (** blocks handed out by [tx_alloc] whose leases are still set —
          published in one batch at the commit point; the [int] is the
          rounded size, so a pre-commit free (2PC abort) can return
          the block to its bin lease-intact with zero NVMM traffic *)
  mutable inner_tx_used : bool;
      (** the inner allocator's transaction was entered this tx (size
          overflow or carve failure), so commit must be forwarded *)
}

type handle = {
  inner : instance;
  ops : cache_ops option; (* None = pass-through *)
  mag : int;
  cpus : cpu_state array;
  mutable broken : bool;
  counts : int array; (* hit / miss / refill / flush, wrapper-side *)
  broken_sizes : (int * int, int) Hashtbl.t;
      (** (subheap, off) -> rounded size of blocks handed out, kept
          only in broken mode so the leaseless free can route the
          block to a bin without touching the allocator *)
}

type heap = handle

let allocator_name = "tcache"

let mk_cpu () =
  { bins = Array.init max_classes (fun _ -> { blocks = []; depth = 0 });
    pending = [];
    inner_tx_used = false }

let cpu_state h =
  let n = Array.length h.cpus in
  h.cpus.((if Simcore.Sched.in_simulation () then Machine.current_cpu () else 0)
          mod n)

(* ---------- alloc-time accounting (the Alloc detail span) ---------- *)

let timed f =
  if Simcore.Sched.in_simulation () && Obs.Span.enabled () then begin
    let t0 = Simcore.Sched.now () in
    let r = f () in
    Obs.Span.note_alloc (Simcore.Sched.now () - t0);
    r
  end
  else f ()

(* ---------- bins ---------- *)

let bin_push bin b =
  bin.blocks <- b :: bin.blocks;
  bin.depth <- bin.depth + 1

let bin_pop bin =
  match bin.blocks with
  | [] -> None
  | b :: rest ->
    bin.blocks <- rest;
    bin.depth <- bin.depth - 1;
    Some b

(* Pop [n] blocks for a bulk reclaim. *)
let bin_take bin n =
  let rec go acc n =
    if n <= 0 then acc
    else match bin_pop bin with None -> acc | Some b -> go (b :: acc) (n - 1)
  in
  go [] n

let note h (ops : cache_ops) ev =
  let i =
    match ev with
    | Cache_hit -> 0
    | Cache_miss -> 1
    | Cache_refill -> 2
    | Cache_flush -> 3
  in
  h.counts.(i) <- h.counts.(i) + 1;
  ops.cache_note ev

(* Overflow policy: let a bin grow to twice the magazine, then flush
   it back down to one magazine in a single bulk-free transaction. *)
let maybe_flush h ops bin =
  if bin.depth > 2 * h.mag then begin
    let excess = bin_take bin (bin.depth - h.mag) in
    (* leaseless (broken-mode) blocks would leak the allocator's view;
       reclaim frees them all the same, lease or not *)
    ops.cache_reclaim excess;
    note h ops Cache_flush
  end

let note_handout h rsize (ptr : nvmptr) =
  if h.broken then
    Hashtbl.replace h.broken_sizes (ptr.subheap, ptr.off) rsize

(* ---------- allocation ---------- *)

let alloc h size =
  timed (fun () ->
      match h.ops with
      | None -> i_alloc h.inner size
      | Some ops ->
        let rsize = ops.cache_round size in
        if rsize > ops.cache_max_size then i_alloc h.inner size
        else begin
          let st = cpu_state h in
          let bin = st.bins.(class_of_rsize rsize) in
          match bin_pop bin with
          | Some b ->
            note h ops Cache_hit;
            (* a singleton allocation is durable when it returns *)
            ops.cache_publish [ b ];
            note_handout h rsize b.cb_ptr;
            Some b.cb_ptr
          | None ->
            note h ops Cache_miss;
            (match ops.cache_carve ~size:rsize ~count:h.mag with
             | [] -> i_alloc h.inner size
             | b :: rest ->
               note h ops Cache_refill;
               List.iter (bin_push bin) rest;
               ops.cache_publish [ b ];
               note_handout h rsize b.cb_ptr;
               Some b.cb_ptr)
        end)

(* Publish every pending lease in one batch (single fence), then
   forward the commit to the inner allocator iff its transaction was
   actually entered — an empty inner commit still costs a fence. *)
let commit_point h ops st =
  (match st.pending with
   | [] -> ()
   | pending ->
     ops.cache_publish (List.map fst pending);
     st.pending <- []);
  if st.inner_tx_used then begin
    st.inner_tx_used <- false;
    i_tx_commit h.inner
  end

let tx_alloc h size ~is_end =
  timed (fun () ->
      match h.ops with
      | None -> i_tx_alloc h.inner size ~is_end
      | Some ops ->
        let st = cpu_state h in
        let rsize = ops.cache_round size in
        if rsize > ops.cache_max_size then begin
          st.inner_tx_used <- true;
          let r = i_tx_alloc h.inner size ~is_end in
          if is_end && r <> None then begin
            (* the inner [is_end] call committed the inner tx *)
            st.inner_tx_used <- false;
            commit_point h ops st
          end;
          r
        end
        else begin
          let bin = st.bins.(class_of_rsize rsize) in
          let popped =
            match bin_pop bin with
            | Some b ->
              note h ops Cache_hit;
              Some b
            | None ->
              note h ops Cache_miss;
              (match ops.cache_carve ~size:rsize ~count:h.mag with
               | [] -> None
               | b :: rest ->
                 note h ops Cache_refill;
                 List.iter (bin_push bin) rest;
                 Some b)
          in
          match popped with
          | Some b ->
            st.pending <- (b, rsize) :: st.pending;
            note_handout h rsize b.cb_ptr;
            if is_end then commit_point h ops st;
            Some b.cb_ptr
          | None ->
            st.inner_tx_used <- true;
            let r = i_tx_alloc h.inner size ~is_end in
            if is_end && r <> None then begin
              st.inner_tx_used <- false;
              commit_point h ops st
            end;
            r
        end)

let tx_commit h =
  timed (fun () ->
      match h.ops with
      | None -> i_tx_commit h.inner
      | Some ops ->
        let st = cpu_state h in
        commit_point h ops st)

(* ---------- deallocation ---------- *)

let free h ptr =
  timed (fun () ->
      match h.ops with
      | None -> i_free h.inner ptr
      | Some ops ->
        let st = cpu_state h in
        (* pre-commit free of a pending block (2PC abort): its lease
           is still set, so it simply returns to a bin — no NVMM op *)
        let rec split acc = function
          | [] -> None
          | ((b, _) as e) :: rest when equal_nvmptr b.cb_ptr ptr ->
            Some (e, List.rev_append acc rest)
          | e :: rest -> split (e :: acc) rest
        in
        match split [] st.pending with
        | Some ((b, rsize), rest) ->
          st.pending <- rest;
          bin_push st.bins.(class_of_rsize rsize) b
        | None ->
          if h.broken then begin
            (* seeded fault (crashcheck `tcache-broken`): recycle the
               block with NO reclaim lease and NO persistent free — a
               crash between the store dropping its reference and the
               recycled copy's new reference persisting leaks it *)
            match Hashtbl.find_opt h.broken_sizes (ptr.subheap, ptr.off) with
            | Some rsize ->
              bin_push st.bins.(class_of_rsize rsize)
                { cb_ptr = ptr; cb_lease = -1 }
            | None -> i_free h.inner ptr
          end
          else
            match ops.cache_stash ptr with
            | Some (lease, size) ->
              let bin = st.bins.(class_of_rsize size) in
              bin_push bin { cb_ptr = ptr; cb_lease = lease };
              maybe_flush h ops bin
            | None ->
              (* invalid/double free, uncacheable size or full ledger *)
              i_free h.inner ptr)

(* ---------- pass-through surface ---------- *)

let create _ ~base:_ ~size:_ ~heap_id:_ =
  failwith "Tcache.create: wrap an existing instance"

let attach _ ~base:_ = failwith "Tcache.attach: wrap an existing instance"

let finish h = let (Instance ((module A), ih)) = h.inner in A.finish ih
let get_rawptr h p = i_get_rawptr h.inner p
let get_nvmptr h a = i_get_nvmptr h.inner a
let get_root h = i_get_root h.inner
let set_root h p = i_set_root h.inner p
let machine h = instance_machine h.inner

(* The wrapper exposes no cache surface of its own: stacking a second
   cache on top would double-lease every block. *)
let cache_ops _ = None

(* ---------- wrapper construction & control ---------- *)

let reset h =
  match h.ops with
  | None -> ()
  | Some ops ->
    Array.iter
      (fun st ->
        let from_bins =
          Array.to_list st.bins
          |> List.concat_map (fun bin ->
                 let bs = bin.blocks in
                 bin.blocks <- [];
                 bin.depth <- 0;
                 bs)
        in
        let blocks = List.map fst st.pending @ from_bins in
        st.pending <- [];
        st.inner_tx_used <- false;
        if blocks <> [] then begin
          ops.cache_reclaim blocks;
          note h ops Cache_flush
        end)
      h.cpus;
    Hashtbl.reset h.broken_sizes

let break_recycle h = h.broken <- true

let stats h = (h.counts.(0), h.counts.(1), h.counts.(2), h.counts.(3))

let wrap ~mag inner =
  let num_cpus =
    (Machine.cfg (instance_machine inner)).Machine.Config.num_cpus
  in
  let h =
    { inner;
      ops = (if mag > 0 then i_cache_ops inner else None);
      mag = max mag 1;
      cpus = Array.init (max num_cpus 1) (fun _ -> mk_cpu ());
      broken = false;
      counts = Array.make 4 0;
      broken_sizes = Hashtbl.create 64 }
  in
  let module W = struct
    type nonrec heap = heap

    let allocator_name = allocator_name
    let create = create
    let attach = attach
    let finish = finish
    let alloc = alloc
    let tx_alloc = tx_alloc
    let tx_commit = tx_commit
    let free = free
    let get_rawptr = get_rawptr
    let get_nvmptr = get_nvmptr
    let get_root = get_root
    let set_root = set_root
    let machine = machine
    let cache_ops = cache_ops
  end in
  (Instance ((module W : Alloc_intf.S with type heap = heap), h), h)
