module Config = Config
module Sched = Simcore.Sched
module Memdev = Nvmm.Memdev

type addr = int

let main_thread = -1

type cache = {
  tags : int array; (* line number; -1 = empty *)
  vers : int array; (* packed version the copy was read at *)
  mask : int;
}

(* per-category simulated-time accounting (whole machine) *)
type profile = {
  mutable p_read_hit : int;
  mutable p_read_miss : int;
  mutable p_write : int;
  mutable p_flush : int;
  mutable p_fence : int;
  mutable p_bandwidth_wait : int;
  mutable p_compute : int;
  mutable p_wrpkru : int;
}

type t = {
  config : Config.t;
  engine_ : Sched.t;
  dev_ : Memdev.t;
  mpk_ : Mpk.t;
  caches : cache array;
  line_state : (int, int) Hashtbl.t;
    (* line number -> (version lsl 8) lor (last writer cpu + 1) *)
  node_backlog : int array array;
    (* per-(node, DIMM) queued service ns (bandwidth queue) *)
  node_last_time : int array array;
    (* per-(node, DIMM) last observation instant, for backlog decay *)
  node_last_media : int array array;
    (* per-(node, DIMM) last 256 B XPLine served (write combining) *)
  mutable op_count : int; (* ops since the last forced yield *)
  mutable no_yield : bool; (* inside a critical (preemption-free) section *)
  mutable locks_ : Sched.Mutex.mutex list; (* every lock created on this machine *)
  mutable sim_fences : int; (* fences charged in simulation (sfence + persist) *)
  prof : profile;
  (* precomputed remote costs *)
  dram_read_remote : int;
  nvmm_read_remote : int;
  transfer_remote : int;
}

let create ?(cfg = Config.default) ?engine () =
  Config.validate cfg;
  (* traced events carry the NUMA node of their CPU *)
  Obs.Trace.set_node_of_cpu (fun cpu ->
      if cpu >= 0 && cpu < cfg.num_cpus then Config.cpu_numa cfg cpu else -1);
  let mk_cache _ =
    { tags = Array.make cfg.cache_lines_per_cpu (-1);
      vers = Array.make cfg.cache_lines_per_cpu 0;
      mask = cfg.cache_lines_per_cpu - 1 }
  in
  let scale ns = int_of_float (float_of_int ns *. cfg.remote_numa_mult) in
  { config = cfg;
    engine_ = (match engine with Some e -> e | None -> Sched.create ());
    dev_ = Memdev.create ();
    mpk_ = Mpk.create ();
    caches = Array.init cfg.num_cpus mk_cache;
    line_state = Hashtbl.create 65536;
    node_backlog =
      Array.init cfg.numa_domains (fun _ -> Array.make cfg.nvmm_dimms_per_node 0);
    node_last_time =
      Array.init cfg.numa_domains (fun _ -> Array.make cfg.nvmm_dimms_per_node 0);
    node_last_media =
      Array.init cfg.numa_domains (fun _ ->
          Array.make cfg.nvmm_dimms_per_node (-1));
    op_count = 0;
    no_yield = false;
    locks_ = [];
    sim_fences = 0;
    prof =
      { p_read_hit = 0; p_read_miss = 0; p_write = 0; p_flush = 0;
        p_fence = 0; p_bandwidth_wait = 0; p_compute = 0; p_wrpkru = 0 };
    dram_read_remote = scale cfg.dram_read_ns;
    nvmm_read_remote = scale cfg.nvmm_read_ns;
    transfer_remote = scale cfg.lock_transfer_ns }

let cfg t = t.config
let engine t = t.engine_
let dev t = t.dev_
let mpk t = t.mpk_

let current_thread () = if Sched.in_simulation () then Sched.self () else main_thread
let current_cpu () = if Sched.in_simulation () then Sched.cpu () else 0

let add_region t ~base ~size ~kind ~numa =
  if numa < 0 || numa >= t.config.numa_domains then
    invalid_arg "Machine.add_region: bad NUMA domain";
  Memdev.add_region t.dev_ ~base ~size ~kind ~numa

(* ---------- cost accounting ---------- *)

let line_of a = a lsr 6 (* 64-byte lines *)

(* The NVMM DIMMs of a NUMA node are shared servers: each line
   transferred occupies one (selected by 4 KiB interleaving) for a
   fixed service time, and consecutive accesses to the same 256 B
   XPLine write-combine.  Past ~32 threads the queueing delay
   dominates — the bandwidth wall of the paper's Fig. 9.

   The queue is a decaying backlog, not an absolute "server free at T"
   stamp: simulated threads execute out of clock order between sync
   points, and an absolute stamp would make earlier-clock threads wait
   for later-clock ones even on an idle device.  With a backlog, light
   load drains between requests (no wait, in any execution order),
   while sustained demand beyond the service rate grows the backlog
   without bound, capping throughput at capacity.  Only called from
   inside the simulation. *)
let serve_node t node addr service =
  let dimm = (addr lsr 12) mod t.config.nvmm_dimms_per_node in
  let media_line = addr lsr 8 in
  if t.node_last_media.(node).(dimm) <> media_line then begin
    t.node_last_media.(node).(dimm) <- media_line;
    let now = Sched.now () in
    let last = t.node_last_time.(node).(dimm) in
    let backlog =
      let b = t.node_backlog.(node).(dimm) in
      if now > last then begin
        t.node_last_time.(node).(dimm) <- now;
        max 0 (b - (now - last))
      end
      else b
    in
    t.node_backlog.(node).(dimm) <- backlog + service;
    t.prof.p_bandwidth_wait <- t.prof.p_bandwidth_wait + backlog + service;
    Sched.charge (backlog + service)
  end

(* Bounds simulated-clock drift between threads so shared-resource
   queues (locks with free_at, the bandwidth server) stay nearly
   causal. *)
let maybe_yield t =
  t.op_count <- t.op_count + 1;
  if t.op_count >= t.config.yield_ops && not t.no_yield then begin
    t.op_count <- 0;
    Sched.yield ()
  end

(* Runs [f] without forced yields, so no other simulated thread can
   observe its intermediate stores.  Models update sequences that are
   reader-safe on real hardware by construction (e.g. FAST's shifting
   writes).  [f] must not block: no lock acquisition inside. *)
let critical t f =
  let saved = t.no_yield in
  t.no_yield <- true;
  Fun.protect ~finally:(fun () -> t.no_yield <- saved) f

let charge_read t cpu a =
  let line = line_of a in
  let cur = match Hashtbl.find_opt t.line_state line with Some v -> v | None -> 0 in
  let cache = t.caches.(cpu) in
  let idx = line land cache.mask in
  if cache.tags.(idx) = line && cache.vers.(idx) = cur then begin
    t.prof.p_read_hit <- t.prof.p_read_hit + t.config.cache_hit_ns;
    Sched.charge t.config.cache_hit_ns
  end
  else begin
    let kind, numa = Memdev.region_info t.dev_ a in
    let local = Config.cpu_numa t.config cpu = numa in
    let cost =
      match kind, local with
      | Memdev.Dram, true -> t.config.dram_read_ns
      | Memdev.Dram, false -> t.dram_read_remote
      | Memdev.Nvmm, true -> t.config.nvmm_read_ns
      | Memdev.Nvmm, false -> t.nvmm_read_remote
    in
    t.prof.p_read_miss <- t.prof.p_read_miss + cost;
    Sched.charge cost;
    if kind = Memdev.Nvmm then
      serve_node t numa a t.config.nvmm_read_service_ns;
    cache.tags.(idx) <- line;
    cache.vers.(idx) <- cur
  end

let charge_write t cpu a =
  let line = line_of a in
  let cur = match Hashtbl.find_opt t.line_state line with Some v -> v | None -> 0 in
  let writer = (cur land 0xff) - 1 in
  let next = (((cur lsr 8) + 1) lsl 8) lor (cpu + 1) in
  Hashtbl.replace t.line_state line next;
  let kind, numa = Memdev.region_info t.dev_ a in
  let base =
    match kind with
    | Memdev.Dram -> t.config.dram_write_ns
    | Memdev.Nvmm -> t.config.nvmm_write_ns
  in
  let bounce =
    if writer >= 0 && writer <> cpu then
      if Config.cpu_numa t.config writer = Config.cpu_numa t.config cpu then
        t.config.lock_transfer_ns
      else t.transfer_remote
    else 0
  in
  ignore numa;
  t.prof.p_write <- t.prof.p_write + base + bounce;
  Sched.charge (base + bounce);
  let cache = t.caches.(cpu) in
  let idx = line land cache.mask in
  cache.tags.(idx) <- line;
  cache.vers.(idx) <- next

(* Charges for every line covered by [a, a+len). *)
let charge_range t cpu a len charge_one =
  if len > 0 then begin
    let first = line_of a and last = line_of (a + len - 1) in
    for line = first to last do
      charge_one t cpu (line lsl 6)
    done
  end

(* ---------- checked, charged access ---------- *)

let pre_read t a =
  Mpk.check t.mpk_ ~thread:(current_thread ()) a Mpk.Read;
  if Sched.in_simulation () then begin
    charge_read t (Sched.cpu ()) a;
    maybe_yield t
  end

let pre_write t a =
  Mpk.check t.mpk_ ~thread:(current_thread ()) a Mpk.Write;
  if Sched.in_simulation () then begin
    charge_write t (Sched.cpu ()) a;
    maybe_yield t
  end

let read_u8 t a = pre_read t a; Memdev.read_u8 t.dev_ a
let read_u16 t a = pre_read t a; Memdev.read_u16 t.dev_ a
let read_u32 t a = pre_read t a; Memdev.read_u32 t.dev_ a
let read_u64 t a = pre_read t a; Memdev.read_u64 t.dev_ a

let write_u8 t a v = pre_write t a; Memdev.write_u8 t.dev_ a v
let write_u16 t a v = pre_write t a; Memdev.write_u16 t.dev_ a v
let write_u32 t a v = pre_write t a; Memdev.write_u32 t.dev_ a v
let write_u64 t a v = pre_write t a; Memdev.write_u64 t.dev_ a v

let check_span t a len access =
  if len > 0 then begin
    let thread = current_thread () in
    (* Page-granular protection: checking both ends and each page
       boundary in between covers the whole span. *)
    let first = a / Mpk.page_size and last = (a + len - 1) / Mpk.page_size in
    for page = first to last do
      Mpk.check t.mpk_ ~thread (max a (page * Mpk.page_size)) access
    done
  end

let read_bytes t a len =
  check_span t a len Mpk.Read;
  if Sched.in_simulation () then charge_range t (Sched.cpu ()) a len charge_read;
  Memdev.read_bytes t.dev_ a len

let write_bytes t a b =
  let len = Bytes.length b in
  check_span t a len Mpk.Write;
  if Sched.in_simulation () then charge_range t (Sched.cpu ()) a len charge_write;
  Memdev.write_bytes t.dev_ a b

let fill t a len c =
  check_span t a len Mpk.Write;
  if Sched.in_simulation () then charge_range t (Sched.cpu ()) a len charge_write;
  Memdev.fill t.dev_ a len c

let sfence t =
  if Sched.in_simulation () then begin
    t.prof.p_fence <- t.prof.p_fence + t.config.sfence_ns;
    t.sim_fences <- t.sim_fences + 1;
    Sched.charge t.config.sfence_ns;
    Obs.Trace.emit Obs.Event.Sfence;
    Obs.Span.note_persist t.config.sfence_ns
  end;
  Memdev.sfence t.dev_

let clwb t a =
  if Sched.in_simulation () then begin
    t.prof.p_flush <- t.prof.p_flush + t.config.clwb_ns;
    Sched.charge t.config.clwb_ns;
    Obs.Trace.emit1 Obs.Event.Clwb a;
    Obs.Span.note_persist t.config.clwb_ns;
    match Memdev.region_info t.dev_ a with
    | Memdev.Nvmm, numa -> serve_node t numa a t.config.nvmm_write_service_ns
    | Memdev.Dram, _ -> ()
  end;
  Memdev.clwb t.dev_ a

let syscall_ns = 2000

let punch t a len =
  if Sched.in_simulation () then Sched.charge syscall_ns;
  Memdev.punch t.dev_ a len

let has_region t a = Memdev.has_region t.dev_ a

let profile t = t.prof
let sim_fences t = t.sim_fences

let reset_profile t =
  let p = t.prof in
  p.p_read_hit <- 0;
  p.p_read_miss <- 0;
  p.p_write <- 0;
  p.p_flush <- 0;
  p.p_fence <- 0;
  p.p_bandwidth_wait <- 0;
  p.p_compute <- 0;
  p.p_wrpkru <- 0

let persist t a len =
  if len > 0 then begin
    if Sched.in_simulation () then begin
      let lines = line_of (a + len - 1) - line_of a + 1 in
      t.prof.p_flush <- t.prof.p_flush + (lines * t.config.clwb_ns);
      t.prof.p_fence <- t.prof.p_fence + t.config.sfence_ns;
      t.sim_fences <- t.sim_fences + 1;
      Sched.charge ((lines * t.config.clwb_ns) + t.config.sfence_ns);
      Obs.Trace.emit2 Obs.Event.Persist a len;
      Obs.Span.note_persist ((lines * t.config.clwb_ns) + t.config.sfence_ns);
      (match Memdev.region_info t.dev_ a with
       | Memdev.Nvmm, numa ->
         for l = 0 to lines - 1 do
           serve_node t numa (a + (l * 64)) t.config.nvmm_write_service_ns
         done
       | Memdev.Dram, _ -> ())
    end;
    Memdev.persist t.dev_ a len
  end

let compute t ns =
  if Sched.in_simulation () then begin
    t.prof.p_compute <- t.prof.p_compute + ns;
    Sched.charge ns
  end

let wrpkru ?cap t key perm =
  if Sched.in_simulation () then begin
    t.prof.p_wrpkru <- t.prof.p_wrpkru + t.config.wrpkru_ns;
    Sched.charge t.config.wrpkru_ns;
    Obs.Trace.emit2 Obs.Event.Wrpkru key
      (match perm with Mpk.No_access -> 0 | Mpk.Read_only -> 1 | Mpk.Read_write -> 2)
  end;
  Mpk.set_perm ?cap t.mpk_ ~thread:(current_thread ()) key perm

(* ---------- locks ---------- *)

module Lock = struct
  type lock = { m : Sched.Mutex.mutex; owner : t }

  type stats = { acquisitions : int; contended : int; wait_ns : int }

  let create t ?name () =
    let l = { m = Sched.Mutex.create ?name (); owner = t } in
    t.locks_ <- l.m :: t.locks_;
    l

  let acquire l =
    if Sched.in_simulation () then begin
      Sched.charge l.owner.config.lock_acquire_ns;
      let t0 = if Obs.Trace.enabled () then Sched.now () else 0 in
      Sched.Mutex.acquire l.m;
      if Obs.Trace.enabled () then begin
        let waited = Sched.now () - t0 in
        if waited > 0 then
          Obs.Trace.emit_span ~name:(Sched.Mutex.name l.m)
            Obs.Event.Lock_contend ~dur:waited waited;
        Obs.Trace.emit_named Obs.Event.Lock_acquire (Sched.Mutex.name l.m)
          (Sched.Mutex.acquisitions l.m)
      end;
      (* the previous releaser's CPU is recorded at release time, so
         reading it after our acquisition gives the CPU the lock's
         cache line bounces from *)
      let prev = Sched.Mutex.last_holder_cpu l.m in
      let cpu = Sched.cpu () in
      if prev >= 0 && prev <> cpu then
        if Config.cpu_numa l.owner.config prev = Config.cpu_numa l.owner.config cpu
        then Sched.charge l.owner.config.lock_transfer_ns
        else Sched.charge l.owner.transfer_remote
    end

  let release l =
    if Sched.in_simulation () then begin
      if Obs.Trace.enabled () then
        Obs.Trace.emit_named Obs.Event.Lock_release (Sched.Mutex.name l.m) 0;
      Sched.Mutex.release l.m
    end

  let with_lock l f =
    acquire l;
    Fun.protect ~finally:(fun () -> release l) f

  let name l = Sched.Mutex.name l.m

  let stats l =
    { acquisitions = Sched.Mutex.acquisitions l.m;
      contended = Sched.Mutex.contended l.m;
      wait_ns = Sched.Mutex.total_wait_ns l.m }
end

(* Every lock ever created on this machine, most recent first, with its
   name and contention statistics — the inspect subcommand and the
   metrics registry read this. *)
let lock_stats t =
  List.rev_map
    (fun m ->
      ( Sched.Mutex.name m,
        { Lock.acquisitions = Sched.Mutex.acquisitions m;
          contended = Sched.Mutex.contended m;
          wait_ns = Sched.Mutex.total_wait_ns m } ))
    t.locks_

(* ---------- metrics publishing ---------- *)

(** Pushes this machine's accumulated accounting — cost profile,
    device counters, scheduler activity, MPK faults and per-lock
    contention — into the metrics registry (the [machine] and
    [lock/<name>] scopes).  Gauges overwrite on re-publish, so calling
    this repeatedly snapshots the latest totals. *)
let publish_metrics ?registry t =
  let g scope name v = Obs.Metrics.set_gauge ?m:registry ~scope name (float_of_int v) in
  let p = t.prof in
  g "machine" "profile/read_hit_ns" p.p_read_hit;
  g "machine" "profile/read_miss_ns" p.p_read_miss;
  g "machine" "profile/write_ns" p.p_write;
  g "machine" "profile/flush_ns" p.p_flush;
  g "machine" "profile/fence_ns" p.p_fence;
  g "machine" "profile/bandwidth_wait_ns" p.p_bandwidth_wait;
  g "machine" "profile/compute_ns" p.p_compute;
  g "machine" "profile/wrpkru_ns" p.p_wrpkru;
  g "machine" "sim_fences" t.sim_fences;
  let c = Memdev.counters t.dev_ in
  g "machine" "device/loads" c.Memdev.loads;
  g "machine" "device/stores" c.Memdev.stores;
  g "machine" "device/lines_flushed" c.Memdev.lines_flushed;
  g "machine" "device/fences" c.Memdev.fences;
  g "machine" "sched/context_switches" (Sched.context_switches t.engine_);
  g "machine" "sched/max_runq_depth" (Sched.max_runq_depth t.engine_);
  g "machine" "sched/horizon_ns" (Sched.horizon t.engine_);
  g "machine" "mpk/faults" (Mpk.faults_observed t.mpk_);
  List.iter
    (fun (name, s) ->
      let scope = "lock/" ^ name in
      g scope "acquisitions" s.Lock.acquisitions;
      g scope "contended" s.Lock.contended;
      g scope "wait_ns" s.Lock.wait_ns)
    (lock_stats t)

(* ---------- threads ---------- *)

let spawn t ~cpu body =
  if cpu < 0 || cpu >= t.config.num_cpus then
    invalid_arg "Machine.spawn: CPU out of range";
  Sched.spawn t.engine_ ~cpu body

let run t = Sched.run t.engine_

let parallel t ~threads body =
  if threads <= 0 then invalid_arg "Machine.parallel";
  let start = Sched.horizon t.engine_ in
  for i = 0 to threads - 1 do
    let cpu = i mod t.config.num_cpus in
    ignore
      (Sched.spawn t.engine_ ~cpu ~at:start (fun () -> body i))
  done;
  Sched.run t.engine_;
  float_of_int (Sched.horizon t.engine_ - start) /. 1e9
