(** The simulated evaluation machine.

    Binds the discrete-event scheduler, the simulated NVMM/DRAM device,
    the simulated MPK unit, a per-CPU cache model and the cost model
    into the object allocators and workloads run against.  Every data
    access an allocator performs goes through this module, which

    + checks MPK permissions for the calling simulated thread,
    + charges simulated time (cache hit, DRAM/NVMM miss, NUMA
      distance, line bouncing between CPUs),
    + performs the access on the device.

    All access functions may also be called from outside the simulation
    (setup and unit tests); they then skip cost accounting and act as
    the reserved "main" thread for MPK purposes. *)

module Config = Config
(** Cost model (re-exported: [Machine] is this library's entry
    point). *)

type t

type addr = int

val create : ?cfg:Config.t -> ?engine:Simcore.Sched.t -> unit -> t
(** [engine] lets several machines share one discrete-event engine —
    the multi-machine (cluster) setup, where threads of every machine
    interleave on one simulated timeline.  Default: a private engine,
    the single-machine case.  Each machine keeps its own device, MPK
    unit, caches and cost accounting either way. *)

val cfg : t -> Config.t
val engine : t -> Simcore.Sched.t
val dev : t -> Nvmm.Memdev.t
val mpk : t -> Mpk.t

val main_thread : int
(** MPK identity used by code running outside the simulation. *)

val current_thread : unit -> int
(** Simulated thread id, or {!main_thread} outside the simulation. *)

val current_cpu : unit -> int

(** {2 Address space} *)

val add_region :
  t -> base:addr -> size:int -> kind:Nvmm.Memdev.kind -> numa:int -> unit

(** {2 Charged, protection-checked memory access} *)

val read_u8 : t -> addr -> int
val read_u16 : t -> addr -> int
val read_u32 : t -> addr -> int
val read_u64 : t -> addr -> int

val write_u8 : t -> addr -> int -> unit
val write_u16 : t -> addr -> int -> unit
val write_u32 : t -> addr -> int -> unit
val write_u64 : t -> addr -> int -> unit

val read_bytes : t -> addr -> int -> Bytes.t
val write_bytes : t -> addr -> Bytes.t -> unit
val fill : t -> addr -> int -> char -> unit

val persist : t -> addr -> int -> unit
(** clwb every covered line + sfence; the persistent barrier. *)

val clwb : t -> addr -> unit
(** Stage one line for write-back (no fence). *)

val sfence : t -> unit

val punch : t -> addr -> int -> unit
(** Hole-punch a metadata range back to the "filesystem"
    (paper §5.6); charged as one syscall. *)

val has_region : t -> addr -> bool

(** {2 Cost profile}

    Machine-wide accounting of where simulated time went, by charge
    category — cache hits, misses, stores, write-backs, fences,
    bandwidth-queue waits, pure compute and MPK toggles.  Sums over
    all simulated threads (so under parallelism the total exceeds the
    makespan). *)

type profile = {
  mutable p_read_hit : int;
  mutable p_read_miss : int;
  mutable p_write : int;
  mutable p_flush : int;
  mutable p_fence : int;
  mutable p_bandwidth_wait : int;
  mutable p_compute : int;
  mutable p_wrpkru : int;
}

val profile : t -> profile
val reset_profile : t -> unit

val sim_fences : t -> int
(** Fences charged inside the simulation ({!sfence} calls plus one per
    {!persist}); an accounting path independent of the profile's
    [p_fence] nanosecond total, used to cross-check instrumentation. *)

val publish_metrics : ?registry:Obs.Metrics.t -> t -> unit
(** Pushes the machine's accumulated accounting — cost profile, device
    counters, scheduler activity, MPK faults, per-lock contention —
    into the metrics registry (default: {!Obs.Metrics.default}) under
    the [machine] and [lock/<name>] scopes.  Gauges overwrite, so
    re-publishing snapshots the latest totals. *)

val compute : t -> int -> unit
(** [compute t ns] charges pure computation time. *)

val critical : t -> (unit -> 'a) -> 'a
(** Runs the function without forced yields so that other simulated
    threads cannot observe its intermediate stores — for update
    sequences that are reader-safe on real hardware by construction.
    The function must not acquire locks. *)

(** {2 MPK} *)

val wrpkru : ?cap:Mpk.capability -> t -> Mpk.pkey -> Mpk.perm -> unit
(** Sets the calling thread's permission for a key, charging the
    toggle cost.  [cap] is required to loosen a guarded key once the
    MPK unit is sealed (paper §8 lockdown; see {!Mpk.guard}). *)

(** {2 Locks} *)

module Lock : sig
  type lock

  type stats = { acquisitions : int; contended : int; wait_ns : int }

  val create : t -> ?name:string -> unit -> lock
  (** Locks register themselves with the owning machine; see
      {!Machine.lock_stats}. *)

  val acquire : lock -> unit
  val release : lock -> unit
  val with_lock : lock -> (unit -> 'a) -> 'a

  val name : lock -> string

  val stats : lock -> stats
end

val lock_stats : t -> (string * Lock.stats) list
(** Name and contention statistics of every lock created on this
    machine, in creation order. *)

(** {2 Thread management} *)

val spawn : t -> cpu:int -> (unit -> unit) -> Simcore.Sched.thread_id
val run : t -> unit

val parallel : t -> threads:int -> (int -> unit) -> float
(** [parallel t ~threads body] spawns [threads] simulated threads
    (thread [i] pinned to CPU [i mod num_cpus], running [body i]),
    drives the simulation to completion and returns the elapsed
    simulated time in {e seconds} (makespan of this batch). *)
