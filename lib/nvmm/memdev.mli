(** Simulated byte-addressable memory device with persistence semantics.

    This is the substrate that stands in for Intel Optane DCPMM (plus
    ordinary DRAM) in the reproduction.  It implements exactly the
    contract a persistent allocator relies on:

    - stores land in a {e volatile} image (CPU caches);
    - a store becomes {e persistent} only after [clwb] on its cache line
      followed by [sfence] (the "persistent barrier" of the paper, §6);
    - a {!crash} discards the volatile image and exposes the persistent
      one; in [`Adversarial] mode an arbitrary subset of unflushed dirty
      lines is persisted first, modelling cache evictions that real
      hardware may perform behind the program's back.

    The device is sparsely backed (64 KiB chunks allocated on first
    write), so multi-gigabyte simulated heaps whose user data is never
    written cost almost nothing in real memory.

    The device performs no cost accounting and no protection checks;
    those belong to the [machine] and [mpk] layers. *)

type t

type addr = int
(** Simulated physical address (byte offset in the device). *)

type kind = Dram | Nvmm

type crash_mode =
  [ `Strict  (** nothing unfenced survives — worst case *)
  | `Adversarial of Repro_util.Prng.t
    (** each unflushed dirty line independently persists with p = 1/2 *) ]

exception Invalid_address of addr

val cache_line : int
(** 64 bytes. *)

val create : unit -> t

(** {2 Regions} *)

val add_region : t -> base:addr -> size:int -> kind:kind -> numa:int -> unit
(** Declares an address range.  Ranges must not overlap.  Accessing an
    address outside every region raises {!Invalid_address}. *)

val region_info : t -> addr -> kind * int
(** [(kind, numa)] of the region containing the address. *)

(** {2 Data access} *)

val read_u8 : t -> addr -> int
val read_u16 : t -> addr -> int
val read_u32 : t -> addr -> int
val read_u64 : t -> addr -> int

val write_u8 : t -> addr -> int -> unit
val write_u16 : t -> addr -> int -> unit
val write_u32 : t -> addr -> int -> unit
val write_u64 : t -> addr -> int -> unit

val read_bytes : t -> addr -> int -> Bytes.t
val write_bytes : t -> addr -> Bytes.t -> unit
val fill : t -> addr -> int -> char -> unit

(** {2 Persistence} *)

val clwb : t -> addr -> unit
(** Stages the cache line containing [addr] for write-back.  The staged
    data is the line's content {e at this point}; it reaches the
    persistent image at the next {!sfence}. *)

val sfence : t -> unit
(** Commits every staged line to the persistent image. *)

val persist : t -> addr -> int -> unit
(** [persist t addr len]: [clwb] every line covering
    [addr .. addr+len-1], then [sfence] — the paper's persistent
    barrier. *)

val drain : t -> unit
(** Flushes {e all} dirty lines (clean shutdown). *)

val punch : t -> addr -> int -> unit
(** Hole-punches (zeroes, in both images, and releases backing where
    whole chunks are covered) the given range — the [fallocate]
    trick of paper §5.6. *)

val has_region : t -> addr -> bool
(** Whether the address falls inside a declared region. *)

val crash : t -> crash_mode -> unit
(** Simulates power failure: volatile image := persistent image (after
    optional adversarial evictions).  Region table survives (it models
    the DAX file layout, not memory contents).  Emits a [Crash] trace
    event and [nvmm/*] metrics recording how many at-risk lines were
    persisted by adversarial eviction vs lost. *)

val dirty_lines : t -> int
(** Number of lines whose volatile content differs from persistent. *)

(** {2 Counters} *)

type counters = {
  mutable loads : int;
  mutable stores : int;
  mutable lines_flushed : int;
  mutable fences : int;
}

val counters : t -> counters
val reset_counters : t -> unit

(** {2 Persistence-point instrumentation}

    Every {!sfence} is a persistence point: the instant where staged
    lines become durable and the only boundary a crash can be usefully
    aligned to (stores between two fences are indistinguishable to a
    post-crash observer).  The hooks below let checkers enumerate and
    cut execution at exactly these points. *)

type fence_info = {
  fence_no : int;  (** cumulative fence count (see {!counters}) *)
  lines_committed : int;  (** staged lines this fence wrote back *)
  dirty_residue : int;
      (** lines still volatile-only after the fence — the at-risk set
          an adversarial crash draws its persisted subset from *)
}

val set_persistence_hook : t -> (fence_info -> unit) option -> unit
(** Called after every completed {!sfence}.  Raising from the hook
    aborts the caller mid-operation — the persistency model checker
    ({!Crashcheck}) uses this to stop execution at an exact
    persistence point and then {!crash}.  Shares one slot with
    {!set_fence_hook}: setting either replaces the other. *)

val set_fence_hook : t -> (int -> unit) option -> unit
(** Convenience wrapper over {!set_persistence_hook} passing only
    [fence_no]. *)
