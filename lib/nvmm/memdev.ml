module Bitset = Repro_util.Bitset
module Prng = Repro_util.Prng

type addr = int
type kind = Dram | Nvmm

type crash_mode = [ `Strict | `Adversarial of Prng.t ]

exception Invalid_address of addr

let cache_line = 64
let chunk_bits = 16
let chunk_size = 1 lsl chunk_bits (* 64 KiB *)
let lines_per_chunk = chunk_size / cache_line

type chunk = {
  vol : Bytes.t;  (* what loads observe (CPU caches + media) *)
  pers : Bytes.t; (* what survives a crash *)
  dirty : Bitset.t; (* per-line: vol may differ from pers *)
}

type region = { base : addr; size : int; rkind : kind; numa : int }

type counters = {
  mutable loads : int;
  mutable stores : int;
  mutable lines_flushed : int;
  mutable fences : int;
}

type fence_info = {
  fence_no : int;
  lines_committed : int;
  dirty_residue : int;
}

type t = {
  chunks : (int, chunk) Hashtbl.t;
  staged : (addr, Bytes.t) Hashtbl.t; (* line base addr -> snapshot *)
  mutable regions : region array;      (* sorted by base *)
  mutable last_region : region option; (* lookup memo *)
  ctrs : counters;
  mutable fence_hook : (fence_info -> unit) option;
}

let create () =
  { chunks = Hashtbl.create 1024;
    staged = Hashtbl.create 64;
    regions = [||];
    last_region = None;
    ctrs = { loads = 0; stores = 0; lines_flushed = 0; fences = 0 };
    fence_hook = None }

let set_persistence_hook t hook = t.fence_hook <- hook

let set_fence_hook t hook =
  t.fence_hook <- Option.map (fun f info -> f info.fence_no) hook

(* ---------- regions ---------- *)

let add_region t ~base ~size ~kind ~numa =
  if base < 0 || size <= 0 then invalid_arg "Memdev.add_region";
  let overlaps r = base < r.base + r.size && r.base < base + size in
  if Array.exists overlaps t.regions then
    invalid_arg "Memdev.add_region: overlapping region";
  let regions =
    Array.append t.regions [| { base; size; rkind = kind; numa } |]
  in
  Array.sort (fun a b -> compare a.base b.base) regions;
  t.regions <- regions

let find_region t a =
  match t.last_region with
  | Some r when a >= r.base && a < r.base + r.size -> r
  | _ ->
    let rec search lo hi =
      if lo > hi then raise (Invalid_address a)
      else
        let mid = (lo + hi) / 2 in
        let r = t.regions.(mid) in
        if a < r.base then search lo (mid - 1)
        else if a >= r.base + r.size then search (mid + 1) hi
        else begin
          t.last_region <- Some r;
          r
        end
    in
    search 0 (Array.length t.regions - 1)

let region_info t a =
  let r = find_region t a in
  (r.rkind, r.numa)

(* ---------- chunk management ---------- *)

let get_chunk t idx =
  match Hashtbl.find_opt t.chunks idx with
  | Some c -> c
  | None ->
    let c =
      { vol = Bytes.make chunk_size '\000';
        pers = Bytes.make chunk_size '\000';
        dirty = Bitset.create lines_per_chunk }
    in
    Hashtbl.replace t.chunks idx c;
    c

(* Reads of never-written chunks return zeros without allocating. *)
let peek_chunk t idx = Hashtbl.find_opt t.chunks idx

let check t a len =
  let r = find_region t a in
  if a + len > r.base + r.size then raise (Invalid_address (a + len - 1))

let mark_dirty c off len =
  let first = off / cache_line and last = (off + len - 1) / cache_line in
  for line = first to last do
    Bitset.set c.dirty line
  done

(* ---------- scalar access ---------- *)

let in_chunk a len = a land (chunk_size - 1) <= chunk_size - len

let read_u8 t a =
  check t a 1;
  t.ctrs.loads <- t.ctrs.loads + 1;
  match peek_chunk t (a lsr chunk_bits) with
  | None -> 0
  | Some c -> Bytes.get_uint8 c.vol (a land (chunk_size - 1))

let write_u8 t a v =
  check t a 1;
  t.ctrs.stores <- t.ctrs.stores + 1;
  let c = get_chunk t (a lsr chunk_bits) in
  let off = a land (chunk_size - 1) in
  Bytes.set_uint8 c.vol off (v land 0xff);
  mark_dirty c off 1

let read_scalar t a len =
  if in_chunk a len then begin
    check t a len;
    t.ctrs.loads <- t.ctrs.loads + 1;
    match peek_chunk t (a lsr chunk_bits) with
    | None -> 0L
    | Some c ->
      let off = a land (chunk_size - 1) in
      (match len with
       | 2 -> Int64.of_int (Bytes.get_uint16_le c.vol off)
       | 4 -> Int64.of_int32 (Bytes.get_int32_le c.vol off)
       | 8 -> Bytes.get_int64_le c.vol off
       | _ -> assert false)
  end
  else begin
    (* straddles a chunk boundary: assemble byte by byte *)
    let v = ref 0L in
    for i = len - 1 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (read_u8 t (a + i)))
    done;
    t.ctrs.loads <- t.ctrs.loads - len + 1;
    !v
  end

let write_scalar t a len v =
  if in_chunk a len then begin
    check t a len;
    t.ctrs.stores <- t.ctrs.stores + 1;
    let c = get_chunk t (a lsr chunk_bits) in
    let off = a land (chunk_size - 1) in
    (match len with
     | 2 -> Bytes.set_uint16_le c.vol off (Int64.to_int v land 0xffff)
     | 4 -> Bytes.set_int32_le c.vol off (Int64.to_int32 v)
     | 8 -> Bytes.set_int64_le c.vol off v
     | _ -> assert false);
    mark_dirty c off len
  end
  else begin
    for i = 0 to len - 1 do
      write_u8 t (a + i)
        (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff)
    done;
    t.ctrs.stores <- t.ctrs.stores - len + 1
  end

let read_u16 t a = Int64.to_int (read_scalar t a 2)
let read_u32 t a = Int64.to_int (Int64.logand (read_scalar t a 4) 0xFFFFFFFFL)
let read_u64 t a = Int64.to_int (read_scalar t a 8)

let write_u16 t a v = write_scalar t a 2 (Int64.of_int v)
let write_u32 t a v = write_scalar t a 4 (Int64.of_int v)
let write_u64 t a v = write_scalar t a 8 (Int64.of_int v)

(* ---------- bulk access ---------- *)

let read_bytes t a len =
  if len < 0 then invalid_arg "Memdev.read_bytes";
  check t a len;
  t.ctrs.loads <- t.ctrs.loads + ((len + 7) / 8);
  let out = Bytes.make len '\000' in
  let pos = ref 0 in
  while !pos < len do
    let addr = a + !pos in
    let off = addr land (chunk_size - 1) in
    let n = min (len - !pos) (chunk_size - off) in
    (match peek_chunk t (addr lsr chunk_bits) with
     | None -> () (* zeros *)
     | Some c -> Bytes.blit c.vol off out !pos n);
    pos := !pos + n
  done;
  out

let write_bytes t a b =
  let len = Bytes.length b in
  check t a len;
  t.ctrs.stores <- t.ctrs.stores + ((len + 7) / 8);
  let pos = ref 0 in
  while !pos < len do
    let addr = a + !pos in
    let off = addr land (chunk_size - 1) in
    let n = min (len - !pos) (chunk_size - off) in
    let c = get_chunk t (addr lsr chunk_bits) in
    Bytes.blit b !pos c.vol off n;
    mark_dirty c off n;
    pos := !pos + n
  done

let fill t a len ch =
  if len < 0 then invalid_arg "Memdev.fill";
  check t a len;
  t.ctrs.stores <- t.ctrs.stores + ((len + 7) / 8);
  let pos = ref 0 in
  while !pos < len do
    let addr = a + !pos in
    let off = addr land (chunk_size - 1) in
    let n = min (len - !pos) (chunk_size - off) in
    let c = get_chunk t (addr lsr chunk_bits) in
    Bytes.fill c.vol off n ch;
    mark_dirty c off n;
    pos := !pos + n
  done

(* ---------- persistence ---------- *)

let line_base a = a land lnot (cache_line - 1)

let clwb t a =
  check t a 1;
  let base = line_base a in
  match peek_chunk t (base lsr chunk_bits) with
  | None -> ()
  | Some c ->
    let line = (base land (chunk_size - 1)) / cache_line in
    if Bitset.mem c.dirty line then begin
      let snapshot = Bytes.sub c.vol (base land (chunk_size - 1)) cache_line in
      Hashtbl.replace t.staged base snapshot
    end

let commit_line t base data =
  let c = get_chunk t (base lsr chunk_bits) in
  let off = base land (chunk_size - 1) in
  Bytes.blit data 0 c.pers off cache_line;
  t.ctrs.lines_flushed <- t.ctrs.lines_flushed + 1;
  (* Line stays dirty iff further stores hit it after the snapshot. *)
  let line = off / cache_line in
  if Bytes.sub c.vol off cache_line = data then Bitset.clear c.dirty line
  else Bitset.set c.dirty line

let count_dirty t =
  Hashtbl.fold (fun _ c acc -> acc + Bitset.count c.dirty) t.chunks 0

let sfence t =
  t.ctrs.fences <- t.ctrs.fences + 1;
  let staged = Hashtbl.fold (fun base data acc -> (base, data) :: acc) t.staged [] in
  Hashtbl.reset t.staged;
  List.iter (fun (base, data) -> commit_line t base data) staged;
  match t.fence_hook with
  | Some hook ->
    hook
      { fence_no = t.ctrs.fences;
        lines_committed = List.length staged;
        dirty_residue = count_dirty t }
  | None -> ()

let persist t a len =
  if len > 0 then begin
    let first = line_base a and last = line_base (a + len - 1) in
    let line = ref first in
    while !line <= last do
      clwb t !line;
      line := !line + cache_line
    done;
    sfence t
  end

let drain t =
  sfence t;
  Hashtbl.iter
    (fun idx c ->
      Bitset.iter_set c.dirty (fun line ->
          let off = line * cache_line in
          Bytes.blit c.vol off c.pers off cache_line;
          t.ctrs.lines_flushed <- t.ctrs.lines_flushed + 1);
      ignore idx;
      Bitset.clear_all c.dirty)
    t.chunks;
  t.ctrs.fences <- t.ctrs.fences + 1

let punch t a len =
  if len < 0 then invalid_arg "Memdev.punch";
  check t a len;
  let pos = ref 0 in
  while !pos < len do
    let addr = a + !pos in
    let idx = addr lsr chunk_bits in
    let off = addr land (chunk_size - 1) in
    let n = min (len - !pos) (chunk_size - off) in
    if off = 0 && n = chunk_size then
      (* whole chunk: release the backing *)
      Hashtbl.remove t.chunks idx
    else begin
      match peek_chunk t idx with
      | None -> ()
      | Some c ->
        Bytes.fill c.vol off n '\000';
        Bytes.fill c.pers off n '\000';
        let first = off / cache_line and last = (off + n - 1) / cache_line in
        for line = first to last do
          Bitset.clear c.dirty line
        done
    end;
    (* drop any staged lines in the punched range *)
    let line = ref (line_base addr) in
    while !line < addr + n do
      Hashtbl.remove t.staged !line;
      line := !line + cache_line
    done;
    pos := !pos + n
  done

let has_region t a =
  match find_region t a with _ -> true | exception Invalid_address _ -> false

let crash t mode =
  let at_risk =
    Hashtbl.fold (fun _ c acc -> acc + Bitset.count c.dirty) t.chunks 0
    + Hashtbl.length t.staged
  in
  let persisted = ref 0 in
  (match mode with
   | `Strict -> ()
   | `Adversarial rng ->
     (* Cache evictions may persist any unflushed dirty line. *)
     Hashtbl.iter
       (fun _idx c ->
         Bitset.iter_set c.dirty (fun line ->
             if Prng.bool rng then begin
               let off = line * cache_line in
               Bytes.blit c.vol off c.pers off cache_line;
               incr persisted
             end))
       t.chunks;
     (* Staged-but-unfenced lines likewise may or may not land. *)
     Hashtbl.iter
       (fun base data ->
         if Prng.bool rng then begin
           let c = get_chunk t (base lsr chunk_bits) in
           Bytes.blit data 0 c.pers (base land (chunk_size - 1)) cache_line;
           incr persisted
         end)
       t.staged);
  Hashtbl.reset t.staged;
  Hashtbl.iter
    (fun _idx c ->
      Bytes.blit c.pers 0 c.vol 0 chunk_size;
      Bitset.clear_all c.dirty)
    t.chunks;
  Obs.Trace.emit2 Obs.Event.Crash !persisted (at_risk - !persisted);
  Obs.Metrics.incr (Obs.Metrics.counter ~scope:"nvmm" "crashes");
  Obs.Metrics.add
    (Obs.Metrics.counter ~scope:"nvmm" "crash_lines_persisted")
    !persisted;
  Obs.Metrics.add
    (Obs.Metrics.counter ~scope:"nvmm" "crash_lines_lost")
    (at_risk - !persisted)

let dirty_lines t = count_dirty t

let counters t = t.ctrs

let reset_counters t =
  t.ctrs.loads <- 0;
  t.ctrs.stores <- 0;
  t.ctrs.lines_flushed <- 0;
  t.ctrs.fences <- 0
