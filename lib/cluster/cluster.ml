type t = { engine : Simcore.Sched.t; machines : Machine.t array }

let create ?(cfg = Machine.Config.default) ~machines () =
  if machines < 1 then invalid_arg "Cluster.create: machines < 1";
  let engine = Simcore.Sched.create () in
  let ms =
    Array.init machines (fun _ -> Machine.create ~cfg ~engine ())
  in
  { engine; machines = ms }

let size t = Array.length t.machines
let machine t i = t.machines.(i)
let engine t = t.engine
let run t = Simcore.Sched.run t.engine

module Link = struct
  type 'a msg = {
    payload : 'a;
    sent_at : int;
    delivered_at : int;
    trace : int;
    span : int;
  }

  type stats = {
    sent : int;
    rejected : int;
    dropped : int;
    duplicated : int;
    received : int;
    max_depth : int;
    flushes : int;
  }

  type 'a endpoint = {
    q : 'a msg Queue.t;
    buf : ('a * int * int) Queue.t; (* doorbell: (payload, trace, span) *)
    mutable sent : int;
    mutable rejected : int;
    mutable dropped : int;
    mutable duplicated : int;
    mutable received : int;
    mutable max_depth : int;
    mutable flushes : int;
  }

  type 'a t = {
    wire_ns : int;
    capacity : int;
    send_cpu_ns : int;
    drop_pct : int;
    dup_pct : int;
    prng : Repro_util.Prng.t;
    eps : 'a endpoint array; (* eps.(i) = traffic toward endpoint i *)
  }

  let mk_endpoint () =
    {
      q = Queue.create ();
      buf = Queue.create ();
      sent = 0;
      rejected = 0;
      dropped = 0;
      duplicated = 0;
      received = 0;
      max_depth = 0;
      flushes = 0;
    }

  let create ?(wire_ns = 20_000) ?(capacity = 256) ?(send_cpu_ns = 300)
      ?(drop_pct = 0) ?(dup_pct = 0) ?(seed = 0xC1A5) () =
    if wire_ns < 0 then invalid_arg "Link.create: wire_ns < 0";
    if capacity < 1 then invalid_arg "Link.create: capacity < 1";
    if drop_pct < 0 || drop_pct >= 100 then
      invalid_arg "Link.create: drop_pct must be in [0, 100)";
    if dup_pct < 0 || dup_pct > 100 then
      invalid_arg "Link.create: dup_pct must be in [0, 100]";
    {
      wire_ns;
      capacity;
      send_cpu_ns;
      drop_pct;
      dup_pct;
      prng = Repro_util.Prng.create seed;
      eps = [| mk_endpoint (); mk_endpoint () |];
    }

  let check_ep ep = if ep < 0 || ep > 1 then invalid_arg "Link: endpoint not 0|1"

  let in_sim () = Simcore.Sched.in_simulation ()

  let send ?(trace = -1) ?(span = -1) t ~dst payload =
    check_ep dst;
    let e = t.eps.(dst) in
    if Queue.length e.q >= t.capacity then (
      e.rejected <- e.rejected + 1;
      false)
    else begin
      let now = if in_sim () then Simcore.Sched.now () else 0 in
      if in_sim () && t.send_cpu_ns > 0 then
        Simcore.Sched.charge t.send_cpu_ns;
      e.sent <- e.sent + 1;
      (* Faults: skip the PRNG entirely on a clean link so the default
         configuration is bit-identical to a fault-free build. *)
      let dropped =
        (t.drop_pct > 0 || t.dup_pct > 0)
        && Repro_util.Prng.int t.prng 100 < t.drop_pct
      in
      if dropped then e.dropped <- e.dropped + 1
      else begin
        let delivered_at = if in_sim () then now + t.wire_ns else 0 in
        let m = { payload; sent_at = now; delivered_at; trace; span } in
        Queue.add m e.q;
        if
          t.dup_pct > 0
          && Queue.length e.q < t.capacity
          && Repro_util.Prng.int t.prng 100 < t.dup_pct
        then begin
          e.duplicated <- e.duplicated + 1;
          Queue.add m e.q
        end;
        if Queue.length e.q > e.max_depth then
          e.max_depth <- Queue.length e.q
      end;
      true
    end

  (* Doorbell batching: [buffer] stages a record toward [dst] with no
     latency or CPU charge; [flush] rings the doorbell — the whole
     staged frame pays ONE sender CPU charge, ONE fault roll and ONE
     wire traversal (every record stamped with the same delivery
     instant), instead of one of each per record.  The receive side is
     unchanged: records still arrive individually, in order. *)

  let buffer ?(trace = -1) ?(span = -1) t ~dst payload =
    check_ep dst;
    Queue.add (payload, trace, span) t.eps.(dst).buf

  let buffered t ~dst =
    check_ep dst;
    Queue.length t.eps.(dst).buf

  let flush t ~dst =
    check_ep dst;
    let e = t.eps.(dst) in
    let n = Queue.length e.buf in
    if n = 0 then 0
    else begin
      let now = if in_sim () then Simcore.Sched.now () else 0 in
      if in_sim () && t.send_cpu_ns > 0 then
        Simcore.Sched.charge t.send_cpu_ns;
      e.flushes <- e.flushes + 1;
      e.sent <- e.sent + n;
      (* One fault roll per frame: a dropped frame loses every record
         in it (go-back-N retransmission recovers), a duplicated frame
         is re-delivered whole, right behind the first copy.  Clean
         links skip the PRNG so defaults stay bit-identical. *)
      let faulty = t.drop_pct > 0 || t.dup_pct > 0 in
      let dropped = faulty && Repro_util.Prng.int t.prng 100 < t.drop_pct in
      let accepted = ref 0 in
      if dropped then e.dropped <- e.dropped + n
      else begin
        let delivered_at = if in_sim () then now + t.wire_ns else 0 in
        let dup =
          t.dup_pct > 0 && Repro_util.Prng.int t.prng 100 < t.dup_pct
        in
        let enqueue_frame count_accept =
          Queue.iter
            (fun (payload, trace, span) ->
              if Queue.length e.q >= t.capacity then
                e.rejected <- e.rejected + 1
              else begin
                Queue.add { payload; sent_at = now; delivered_at; trace; span }
                  e.q;
                if count_accept then incr accepted
              end)
            e.buf
        in
        enqueue_frame true;
        if dup then begin
          e.duplicated <- e.duplicated + n;
          enqueue_frame false
        end;
        if Queue.length e.q > e.max_depth then
          e.max_depth <- Queue.length e.q
      end;
      Queue.clear e.buf;
      if dropped then n else !accepted
    end

  let deliverable t ~ep =
    check_ep ep;
    let e = t.eps.(ep) in
    match Queue.peek_opt e.q with
    | None -> None
    | Some m ->
        if (not (in_sim ())) || m.delivered_at <= Simcore.Sched.now () then
          Some (e, m)
        else None

  let recv t ~ep =
    match deliverable t ~ep with
    | None -> None
    | Some (e, _) ->
        let m = Queue.pop e.q in
        e.received <- e.received + 1;
        Some m

  let pending t ~ep =
    check_ep ep;
    Queue.length t.eps.(ep).q

  let delivered_pending t ~ep = deliverable t ~ep <> None

  let stats t ~ep =
    check_ep ep;
    let e = t.eps.(ep) in
    {
      sent = e.sent;
      rejected = e.rejected;
      dropped = e.dropped;
      duplicated = e.duplicated;
      received = e.received;
      max_depth = e.max_depth;
      flushes = e.flushes;
    }
end
