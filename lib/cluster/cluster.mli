(** A multi-machine simulated cluster on one discrete-event engine.

    Each member is a full {!Machine.t} — its own NVMM/DRAM device, MPK
    unit, per-CPU caches and NUMA topology — but all of them share one
    {!Simcore.Sched} engine, so their simulated threads interleave on a
    single timeline and cross-machine protocols (replication, failover)
    are legal linearisations exactly like intra-machine parallelism.

    Machines are connected by {!Link}s: point-to-point inter-machine
    channels whose one-way latency sits well above any intra-machine
    NUMA distance, with optional seeded drop/duplicate fault injection
    for testing loss-handling protocols.  Crashing one machine's
    device ({!Nvmm.Memdev.crash}) leaves the others untouched — the
    failure model replication exists for. *)

type t

val create : ?cfg:Machine.Config.t -> machines:int -> unit -> t
(** [create ~machines ()] builds [machines] identical machines (same
    cost model, default {!Machine.Config.default}) on one shared
    engine.  [machines >= 1]. *)

val size : t -> int
val machine : t -> int -> Machine.t
val engine : t -> Simcore.Sched.t

val run : t -> unit
(** Drives the shared engine until every spawned thread (on any
    machine) has finished — {!Simcore.Sched.run}. *)

(** Inter-machine message channel: two endpoints (0 and 1), each a
    bounded FIFO of messages travelling toward it.  A send stamps the
    message with [now + wire_ns] and charges the sender a small CPU
    cost; {!recv} only surfaces messages whose delivery time has
    passed.  Outside the simulation sends and receives work with zero
    latency (setup / post-run draining), as in {!Net}.

    Fault injection (seeded, deterministic): a send may be silently
    dropped ([drop_pct]) — the sender still sees [true], as on a real
    lossy wire — or duplicated ([dup_pct], second copy enqueued right
    behind the first).  Both default to 0, i.e. a reliable link. *)
module Link : sig
  type 'a msg = {
    payload : 'a;
    sent_at : int;
    delivered_at : int;
    trace : int; (** trace id for distributed tracing; -1 = none *)
    span : int; (** sender's span id (the receiver's causal parent) *)
  }

  type 'a t

  val create :
    ?wire_ns:int ->
    ?capacity:int ->
    ?send_cpu_ns:int ->
    ?drop_pct:int ->
    ?dup_pct:int ->
    ?seed:int ->
    unit ->
    'a t
  (** [wire_ns] one-way latency (default 20_000 ns — an order of
      magnitude above cross-NUMA); [capacity] per-endpoint queue bound
      (default 256); [send_cpu_ns] sender CPU charge (default 300);
      [drop_pct]/[dup_pct] in [0, 100] ([drop_pct] < 100 — a link that
      drops everything cannot carry a protocol); [seed] for the fault
      PRNG. *)

  val send : ?trace:int -> ?span:int -> 'a t -> dst:int -> 'a -> bool
  (** Enqueue toward endpoint [dst]; [false] when its queue is full
      (counted as a rejection).  [true] on a fault-injected drop — the
      sender cannot observe wire loss.  [trace]/[span] (default -1 =
      none) carry the {!Obs.Span} context across the machine boundary;
      a fault-injected duplicate carries the same context. *)

  val buffer : ?trace:int -> ?span:int -> 'a t -> dst:int -> 'a -> unit
  (** Doorbell batching, stage 1: park a record toward [dst] with no
      latency or CPU charge.  Nothing is visible to the receiver until
      {!flush} rings the doorbell.  Buffered records survive unsent if
      the sender crashes — batching callers must not ack anything
      covered only by a buffer. *)

  val flush : 'a t -> dst:int -> int
  (** Doorbell batching, stage 2: send everything staged toward [dst]
      as one framed batch — one sender CPU charge, one seeded fault
      roll (a drop loses the whole frame, a duplicate re-delivers it
      whole) and one wire traversal; every record is stamped with the
      same delivery instant but still delivered individually, in
      order, to the unchanged receive side.  Returns the number of
      records the frame carried into the destination queue (records
      past [capacity] are counted as rejections; a fault-dropped frame
      still returns its full size — the sender cannot observe wire
      loss).  [0] when nothing was staged: an empty flush charges
      nothing. *)

  val buffered : 'a t -> dst:int -> int
  (** Records staged toward [dst] awaiting a {!flush}. *)

  val recv : 'a t -> ep:int -> 'a msg option
  (** Head of [ep]'s queue if delivered; non-blocking. *)

  val pending : 'a t -> ep:int -> int
  (** Messages queued toward [ep], delivered or still in flight. *)

  val delivered_pending : 'a t -> ep:int -> bool
  (** Whether a {!recv} at the current simulated instant would succeed. *)

  type stats = {
    sent : int;  (** accepted sends (including ones then dropped) *)
    rejected : int;  (** refused: destination queue full *)
    dropped : int;  (** fault-injected wire losses *)
    duplicated : int;  (** fault-injected duplicate deliveries *)
    received : int;  (** messages handed to the reader *)
    max_depth : int;
    flushes : int;  (** doorbell batches sent via {!flush} *)
  }

  val stats : 'a t -> ep:int -> stats
  (** Statistics for traffic {e toward} endpoint [ep]. *)
end
