(** Common interface implemented by all three persistent allocators
    (Poseidon, the PMDK-like baseline, the Makalu-like baseline), so
    that every workload and benchmark runs unchanged against each.

    The shape mirrors the paper's Fig. 5 API: persistent pointers,
    singleton and transactional allocation, pointer conversion and the
    heap root. *)

(** Persistent pointer: 8-byte heap id, 2-byte sub-heap id, 6-byte
    offset within the sub-heap (paper §4.6). *)
type nvmptr = { heap_id : int; subheap : int; off : int }

let null = { heap_id = 0; subheap = 0xFFFF; off = (1 lsl 48) - 1 }
let is_null p = p.subheap = 0xFFFF && p.off = (1 lsl 48) - 1

let pp_nvmptr ppf p =
  if is_null p then Format.fprintf ppf "<null>"
  else Format.fprintf ppf "<%d:%d:%#x>" p.heap_id p.subheap p.off

let equal_nvmptr a b =
  a.heap_id = b.heap_id && a.subheap = b.subheap && a.off = b.off

(** Packed on-NVMM representation: subheap in bits 48.., offset in
    bits 0..47 (the heap id is implicit — pointers in a heap refer to
    that heap).  The null pointer packs to -1, which no valid pointer
    can produce (sub-heap ids are small, so the sign bit stays clear
    in OCaml's 63-bit ints). *)
let packed_null = -1

let pack p =
  if is_null p then packed_null
  else (p.subheap lsl 48) lor (p.off land ((1 lsl 48) - 1))

let unpack ~heap_id w =
  if w = packed_null then null
  else { heap_id; subheap = (w lsr 48) land 0xFFFF; off = w land ((1 lsl 48) - 1) }

(** {2 Magazine-cache support surface}

    A DRAM-resident thread cache (lib/tcache) layers volatile per-CPU,
    per-size-class bins over an allocator.  The allocator exposes the
    persistent half of the protocol through these hooks; allocators
    without deferred-reclaim support (the baselines) expose [None] and
    the cache wrapper degrades to a transparent pass-through, keeping
    cross-allocator comparisons honest. *)

(** A block held by (or leaving) a volatile bin: the pointer plus its
    reclaim-ledger lease slot.  While the lease is set, recovery
    deallocates the block — it is allocated in the persistent metadata
    but referenced only from DRAM.  [cb_lease < 0] means "no lease"
    (only produced by the seeded broken-cache mutation). *)
type cache_block = { cb_ptr : nvmptr; cb_lease : int }

type cache_event = Cache_hit | Cache_miss | Cache_refill | Cache_flush

type cache_ops = {
  cache_max_size : int;  (** largest cacheable block size, bytes *)
  cache_round : int -> int;  (** request size -> rounded block size *)
  cache_carve : size:int -> count:int -> cache_block list;
      (** batched refill: up to [count] blocks of exactly [size]
          (pre-rounded) bytes carved from the calling CPU's sub-heap
          under ONE allocator transaction, each covered by a reclaim
          lease.  May return fewer, or [[]] (caller falls back). *)
  cache_publish : cache_block list -> unit;
      (** durably clears the leases of blocks handed out to the
          application (one trailing fence for the whole batch) — the
          point they stop being recovery-reclaimable.  Must run before
          the embedding store persists its own commit record. *)
  cache_stash : nvmptr -> (int * int) option;
      (** deferred free: validates the pointer and durably records its
          reclaim intent (one fence), returning [(lease, size)].
          [None] = not stashable (invalid/double free, uncacheable
          size, ledger full) — the caller must use a plain [free]. *)
  cache_reclaim : cache_block list -> unit;
      (** bulk free of stashed blocks (one allocator transaction per
          sub-heap batch), then lease release — a magazine flush. *)
  cache_note : cache_event -> unit;  (** hit/miss/refill/flush stats *)
}

module type S = sig
  type heap

  val allocator_name : string

  val create :
    Machine.t -> base:int -> size:int -> heap_id:int -> heap
  (** Formats a fresh heap in the address window [base, base+size).
      The window must be unused.  [size] bounds metadata + user data. *)

  val attach : Machine.t -> base:int -> heap
  (** Re-opens (and recovers) a heap previously created at [base] —
      the restart-after-crash path. *)

  val finish : heap -> unit
  (** Clean shutdown; releases runtime resources (e.g. the MPK key). *)

  val alloc : heap -> int -> nvmptr option
  (** Singleton allocation; [None] when no space can be found. *)

  val tx_alloc : heap -> int -> is_end:bool -> nvmptr option
  (** Transactional allocation (paper §5.3): allocations accumulate in
      a per-heap transaction; the [is_end:true] call commits it.  After
      a crash before commit, recovery rolls every one of them back. *)

  val tx_commit : heap -> unit
  (** Commits the calling CPU's in-flight allocation transaction
      without a further allocation — the point a client of
      {!tx_alloc}[ ~is_end:false] reaches once its own durable state
      references the new blocks.  A no-op when no transaction is
      pending (and always for allocators without a redo/undo log). *)

  val free : heap -> nvmptr -> unit
  (** Deallocation. Implementations differ on invalid/double frees:
      Poseidon rejects them; the baselines corrupt, as in the paper. *)

  val get_rawptr : heap -> nvmptr -> int
  (** Absolute simulated address of the pointed-to object. *)

  val get_nvmptr : heap -> int -> nvmptr
  (** Inverse of {!get_rawptr}; raises [Invalid_argument] if the
      address lies outside every sub-heap's data region. *)

  val get_root : heap -> nvmptr
  val set_root : heap -> nvmptr -> unit

  val machine : heap -> Machine.t

  val cache_ops : heap -> cache_ops option
  (** Magazine-cache support hooks; [None] when the allocator cannot
      defer reclamation crash-safely (the cache then passes through). *)
end

(** An allocator packaged with one of its heaps — what workloads take. *)
type instance = Instance : (module S with type heap = 'h) * 'h -> instance

let instance_name (Instance ((module A), _)) = A.allocator_name
let instance_machine (Instance ((module A), h)) = A.machine h
let i_alloc (Instance ((module A), h)) size = A.alloc h size
let i_tx_alloc (Instance ((module A), h)) size ~is_end = A.tx_alloc h size ~is_end
let i_tx_commit (Instance ((module A), h)) = A.tx_commit h
let i_free (Instance ((module A), h)) p = A.free h p
let i_get_rawptr (Instance ((module A), h)) p = A.get_rawptr h p
let i_get_nvmptr (Instance ((module A), h)) a = A.get_nvmptr h a
let i_get_root (Instance ((module A), h)) = A.get_root h
let i_set_root (Instance ((module A), h)) p = A.set_root h p
let i_cache_ops (Instance ((module A), h)) = A.cache_ops h
