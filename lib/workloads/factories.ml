(** Allocator factories: one way to build a fresh machine plus a heap
    of each allocator under test, so every workload can sweep all
    three (paper §7: Poseidon vs PMDK vs Makalu). *)

type factory = {
  name : string;
  make : ?cfg:Machine.Config.t -> unit -> Machine.t * Alloc_intf.instance;
}

let heap_base = 1 lsl 30
let default_window = 1 lsl 38 (* virtual: backing is sparse *)

let poseidon ?(sub_data_size = 128 * 1024 * 1024) ?(window = default_window)
    ?(protected = true) () =
  { name = "Poseidon";
    make =
      (fun ?cfg () ->
        let mach = Machine.create ?cfg () in
        let heap =
          Poseidon.Heap.create mach ~base:heap_base ~size:window ~heap_id:1
            ~sub_data_size ~protected ()
        in
        (mach, Poseidon.instance heap)) }

(** Same heap on an {e existing} machine — the multi-machine (cluster)
    case, where the caller owns machine creation so that all members
    share one engine. *)
let poseidon_on ?(sub_data_size = 128 * 1024 * 1024) ?(window = default_window)
    ?(protected = true) mach =
  let heap =
    Poseidon.Heap.create mach ~base:heap_base ~size:window ~heap_id:1
      ~sub_data_size ~protected ()
  in
  Poseidon.instance heap

let pmdk ?(window = default_window) ?(canary = false) () =
  { name = "PMDK";
    make =
      (fun ?cfg () ->
        let mach = Machine.create ?cfg () in
        let heap =
          Pmdk_sim.Heap.create mach ~base:heap_base ~size:window ~heap_id:1
            ~canary ()
        in
        (mach, Pmdk_sim.instance heap)) }

let makalu ?(window = default_window) () =
  { name = "Makalu";
    make =
      (fun ?cfg () ->
        let mach = Machine.create ?cfg () in
        let heap =
          Makalu_sim.Heap.create mach ~base:heap_base ~size:window ~heap_id:1
        in
        (mach, Makalu_sim.instance heap)) }

(** The three allocators of the paper's evaluation, Poseidon first. *)
let all ?sub_data_size () =
  [ poseidon ?sub_data_size (); pmdk (); makalu () ]

(** One allocation + free on every measurement thread, outside the
    timed region: first-touch pool setup (Poseidon's sub-heap
    creation, PMDK's chunk carving, Makalu's carve chunks) is paid
    here rather than polluting the measurement — benchmarks on real
    hardware warm their pools the same way. *)
let warmup mach inst ~threads =
  ignore
    (Machine.parallel mach ~threads (fun _ ->
         match Alloc_intf.i_alloc inst 64 with
         | Some p -> Alloc_intf.i_free inst p
         | None -> ()))
