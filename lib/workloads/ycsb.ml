(** YCSB benchmark over the persistent B+-tree (paper §7.5, Fig. 9).

    Load: insert [records] key-value pairs.  Workload A: 50 % reads /
    50 % updates with the standard zipfian(0.99) key popularity.  Tree
    values are pointers to 100-byte value objects allocated from the
    allocator under test; an update allocates a fresh object, points
    the tree at it and frees the old one — the allocation-heavy
    pattern the paper picked these workloads for. *)

module Prng = Repro_util.Prng
module Zipf = Repro_util.Zipf

let value_size = 100

let write_value mach inst p rng =
  let raw = Alloc_intf.i_get_rawptr inst p in
  for i = 0 to (value_size / 8) - 1 do
    Machine.write_u64 mach (raw + (i * 8)) (Prng.int rng max_int)
  done;
  Machine.persist mach raw value_size

let insert_record mach inst tree rng key =
  match Alloc_intf.i_alloc inst value_size with
  | None -> failwith "Ycsb: allocator out of memory"
  | Some p ->
    write_value mach inst p rng;
    Btree.insert tree ~key ~value:(Alloc_intf.pack p)

(** Load phase: returns (tree, Mops/s). *)
let load ~mach ~inst ~threads ~records =
  Factories.warmup mach inst ~threads;
  let tree = Btree.create inst in
  let secs =
    Machine.parallel mach ~threads (fun i ->
        let rng = Prng.create (0x10AD + i) in
        (* keys partitioned across threads, scattered by stride; the
           strict bound keeps the remainder when threads does not
           divide records (thread i loads keys i, i+threads, ...) *)
        let j = ref 0 in
        while (!j * threads) + i < records do
          let key = 1 + (!j * threads) + i in
          insert_record mach inst tree rng key;
          incr j
        done)
  in
  let loaded = Btree.count_keys tree in
  if loaded <> records then
    failwith
      (Printf.sprintf "Ycsb.load: loaded %d keys, expected %d" loaded records);
  (tree, float_of_int records /. secs /. 1e6)

(** A mixed read/update phase on a loaded tree; [read_pct] is the
    read percentage: 50 = Workload A, 95 = Workload B, 100 = Workload
    C.  Returns Mops/s. *)
let workload_mixed ~read_pct ~mach ~inst ~tree ~threads ~records ~operations =
  let per_thread = operations / threads in
  (* Striped per-key locks make read-swap-free updates of the same hot
     key atomic: without them, two racing updates both free the old
     value object (a double free the application, not the allocator,
     is responsible for).  Zipfian popularity makes such races common. *)
  let stripes = 512 in
  let key_locks =
    Array.init stripes (fun i ->
        Machine.Lock.create mach ~name:(Printf.sprintf "ycsb-key-%d" i) ())
  in
  let secs =
    Machine.parallel mach ~threads (fun i ->
        let rng = Prng.create (0xA0A0 + i) in
        let zipf = Zipf.create records in
        for _ = 1 to per_thread do
          let key = 1 + Zipf.scrambled zipf rng in
          if Prng.int rng 100 < read_pct then begin
            (* read: traverse + fetch the value object *)
            Machine.Lock.with_lock key_locks.(key mod stripes) (fun () ->
                match Btree.find tree key with
                | Some packed ->
                  let p = Alloc_intf.unpack ~heap_id:1 packed in
                  let raw = Alloc_intf.i_get_rawptr inst p in
                  let sum = ref 0 in
                  for w = 0 to (value_size / 8) - 1 do
                    sum := !sum lxor Machine.read_u64 mach (raw + (w * 8))
                  done;
                  ignore !sum
                | None -> ())
          end
          else begin
            (* update: allocate new value, swap, free old *)
            match Alloc_intf.i_alloc inst value_size with
            | None -> failwith "Ycsb: allocator out of memory"
            | Some p ->
              write_value mach inst p rng;
              Machine.Lock.with_lock key_locks.(key mod stripes) (fun () ->
                  let old = Btree.find tree key in
                  Btree.insert tree ~key ~value:(Alloc_intf.pack p);
                  match old with
                  | Some packed ->
                    Alloc_intf.i_free inst (Alloc_intf.unpack ~heap_id:1 packed)
                  | None -> ())
          end
        done)
  in
  float_of_int (threads * per_thread) /. secs /. 1e6

let workload_a = workload_mixed ~read_pct:50
let workload_b = workload_mixed ~read_pct:95
let workload_c = workload_mixed ~read_pct:100

type result = { load_mops : float; a_mops : float }

let run ~(factory : Factories.factory) ?cfg ~threads ~records ~operations () =
  let mach, inst = factory.Factories.make ?cfg () in
  let tree, load_mops = load ~mach ~inst ~threads ~records in
  let a_mops = workload_a ~mach ~inst ~tree ~threads ~records ~operations in
  { load_mops; a_mops }

type abc_result = { l : float; a : float; b : float; c : float }

(** Load + Workloads A, B and C in sequence on the same tree (the
    extension beyond the paper's Load/A pair). *)
let run_abc ~(factory : Factories.factory) ?cfg ~threads ~records ~operations
    () =
  let mach, inst = factory.Factories.make ?cfg () in
  let tree, l = load ~mach ~inst ~threads ~records in
  let a = workload_a ~mach ~inst ~tree ~threads ~records ~operations in
  let b = workload_b ~mach ~inst ~tree ~threads ~records ~operations in
  let c = workload_c ~mach ~inst ~tree ~threads ~records ~operations in
  { l; a; b; c }
