let read_file path =
  try
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let n = in_channel_length ic in
        Some (really_input_string ic n))
  with Sys_error _ | End_of_file -> None

let is_hex s =
  String.length s > 0
  && String.for_all
       (function '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false)
       s

let first_line s =
  match String.index_opt s '\n' with
  | Some i -> String.sub s 0 i
  | None -> s

let rec find_git_dir dir depth =
  if depth > 8 then None
  else
    let cand = Filename.concat dir ".git" in
    if Sys.file_exists cand && Sys.is_directory cand then Some cand
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else find_git_dir parent (depth + 1)

let resolve_ref git_dir ref_name =
  let loose = Filename.concat git_dir ref_name in
  match read_file loose with
  | Some s when is_hex (String.trim (first_line s)) ->
    Some (String.trim (first_line s))
  | _ -> (
    (* packed-refs: lines of "<hash> <refname>" (comments start with #) *)
    match read_file (Filename.concat git_dir "packed-refs") with
    | None -> None
    | Some body ->
      String.split_on_char '\n' body
      |> List.find_map (fun line ->
             match String.index_opt line ' ' with
             | Some i
               when String.sub line (i + 1) (String.length line - i - 1)
                    = ref_name
                    && is_hex (String.sub line 0 i) ->
               Some (String.sub line 0 i)
             | _ -> None))

let get () =
  match find_git_dir (Sys.getcwd ()) 0 with
  | None -> None
  | Some git_dir -> (
    match read_file (Filename.concat git_dir "HEAD") with
    | None -> None
    | Some head -> (
      let head = String.trim (first_line head) in
      match String.index_opt head ':' with
      | Some i when String.sub head 0 i = "ref" ->
        let ref_name =
          String.trim (String.sub head (i + 1) (String.length head - i - 1))
        in
        resolve_ref git_dir ref_name
      | _ -> if is_hex head then Some head else None))

let short () =
  match get () with
  | Some h when String.length h >= 12 -> Some (String.sub h 0 12)
  | other -> other
