(** Best-effort git revision lookup without spawning a subprocess.

    Walks up from the current directory looking for a [.git] directory,
    then resolves [HEAD] (following one level of [ref:] indirection
    through loose refs or [packed-refs]).  Returns [None] when not in a
    git checkout or when anything about the layout is unexpected —
    callers treat the revision as optional metadata. *)

val get : unit -> string option
(** Full 40-char revision of HEAD, if resolvable. *)

val short : unit -> string option
(** First 12 chars of {!get}. *)
