(** Volatile per-shard version chains: the MVCC substrate of
    poseidon-kv's snapshot reads.

    Each shard keeps a DRAM hashtable mapping keys to newest-first
    version chains of [(ts, value digest option)]; the persistent
    B+-tree is the {e floor} version for keys never mutated since the
    store was built.  Writers {!seed} a key's pre-image before first
    touching its tree entry and {!publish} the new version at the
    commit timestamp; readers {!snapshot} the current safe timestamp
    and {!lookup} the newest version [<= ts] without any locking.

    Consistency rests on the publication discipline, not on locks:
    chain appends and the {!snapshot} watermark advance happen in one
    OCaml step with no simulated-machine call in between, so under the
    cooperative scheduler a minted snapshot always names a fully
    published prefix of commits, and {!publish_group} installs every
    participant of a cross-shard transaction before moving any shard's
    watermark — a snapshot sees all of a transaction or none of it.

    Everything is volatile by construction: crash recovery rebuilds
    the chains empty over the recovered trees. *)

type t

val create : shards:int -> window:int -> t
(** [window] is K, the committed versions retained per mutated key
    (one older entry is kept besides as the in-chain floor).
    [window = 0] disables the store: every operation is a no-op and
    {!lookup} always falls through, so the caller's plain read path
    runs unchanged. *)

val window : t -> int
val enabled : t -> bool
(** [window > 0]. *)

val shards : t -> int

val snapshot : t -> int
(** Mint a read-only transaction's timestamp: the newest commit whose
    versions are all published.  Monotone; 0 before any publication. *)

val watermark : t -> shard:int -> int
(** Newest fully-published commit timestamp on one shard. *)

val seed : t -> shard:int -> key:int -> value:int option -> unit
(** Install the key's floor pre-image ([None] = absent) unless it
    already has a chain.  Writers call this with the pre-mutation
    digest {e before} touching the key's tree entry, so a concurrent
    snapshot reader never reads the tree mid-mutation for this key. *)

val has_chain : t -> shard:int -> key:int -> bool
val chain_length : t -> shard:int -> key:int -> int
(** Versions retained (pre-image included); bounded by [window + 1]. *)

val newest_ts : t -> shard:int -> key:int -> int option
(** Commit timestamp at the head of the key's chain ([Some 0] when
    only the seeded floor pre-image exists); [None] without a chain.
    Read-cache fills stamp their entry's version timestamp with this:
    a chainless key's cached value predates every mutation since
    attach, so it is valid for every snapshot. *)

val chain_gen : t -> shard:int -> int
(** Chain-set generation: bumped every time the shard gains a chain it
    did not have (a {!seed}, a {!publish} of an unseeded key, or a
    {!reset}).  A merged scan captures it with its chain-key list and
    re-captures the keys still ahead of its position whenever the
    generation moves — a concurrently deleted key leaves the tree
    before the cursor reaches it, and only its freshly seeded chain
    still carries the snapshot-visible version. *)

val publish : t -> shard:int -> ts:int -> (int * int option) list -> unit
(** Append one commit's versions ([key, digest option]; [None] =
    delete) on one shard and advance its watermark to [ts]. *)

val publish_group : t -> ts:int -> (int * (int * int option) list) list -> unit
(** Cross-shard atomic publication: install every participant's
    versions, then advance all their watermarks — a snapshot can never
    observe half of the group. *)

type resolution =
  | No_chain
      (** The key has no chain — the persistent tree is its version
          for every timestamp. *)
  | Resolved of int option
      (** The chain resolves the key at [ts] ([None] = absent at that
          snapshot). *)
  | Truncated of int option
      (** Every retained version postdates [ts]: trimming dropped the
          version the snapshot should observe, and the carried value
          (the oldest survivor) is a {e forward} read — a version
          committed after the snapshot.  The O(K) memory bound traded
          away this snapshot's consistency; callers must not present
          it as merely stale. *)

val lookup : t -> shard:int -> key:int -> ts:int -> resolution
(** Resolve the key to the newest version [<= ts], lock-free. *)

val chain_keys_from : t -> shard:int -> from_key:int -> int list
(** Sorted chain keys [>= from_key] on one shard — the chain-side
    stream a merged snapshot scan interleaves with the tree cursor. *)

val reset : t -> unit
(** Drop every chain and watermark (the attach/promotion path). *)
