(* Volatile per-shard version chains over commit timestamps.

   The store is pure DRAM state (plain OCaml hashtables) layered over
   the persistent trees: every mutation publishes (ts, value digest)
   for its keys, a read-only transaction mints the current safe
   timestamp and resolves each key to the newest version <= ts.  A key
   with no chain has never been mutated since this store was built, so
   the persistent tree IS its version for every mintable timestamp —
   the floor.

   Two invariants carry the whole consistency argument:

   - [safe_ts] only advances AFTER every version of the commit it
     names is in its chain ([publish]/[publish_group] append first,
     advance last, in one OCaml step with no simulated-machine call in
     between — the cooperative scheduler cannot interleave a reader);
   - a writer seeds a key's floor pre-image BEFORE it first touches
     the tree entry ([seed]), so a concurrent lock-free reader never
     resolves a mutated key through the in-flux tree.

   Everything here is volatile by construction: a crash drops the
   chains, [attach] rebuilds them empty, and the persistent tree —
   which recovery already proves prefix-consistent — becomes the floor
   again.  That is why the crashcheck oracles need no new persistence
   reasoning for the read path. *)

type entry = { ts : int; value : int option (* None = absent/deleted *) }

type resolution =
  | No_chain
  | Resolved of int option
  | Truncated of int option

type t = {
  window : int; (* K committed versions kept per chain; 0 = disabled *)
  nshards : int;
  chains : (int, entry list) Hashtbl.t array; (* newest-first per key *)
  chain_gen : int array; (* bumped whenever a shard gains a chain *)
  watermark : int array; (* newest fully-published ts per shard *)
  mutable safe_ts : int; (* newest fully-published ts store-wide *)
}

let create ~shards ~window =
  if shards < 1 then invalid_arg "Mvcc.create: shards must be >= 1";
  if window < 0 then invalid_arg "Mvcc.create: window must be >= 0";
  { window;
    nshards = shards;
    chains = Array.init shards (fun _ -> Hashtbl.create 64);
    chain_gen = Array.make shards 0;
    watermark = Array.make shards 0;
    safe_ts = 0 }

let window t = t.window
let enabled t = t.window > 0
let shards t = t.nshards
let snapshot t = t.safe_ts
let watermark t ~shard = t.watermark.(shard)

let reset t =
  Array.iter Hashtbl.reset t.chains;
  (* bump, don't zero: an open scan that captured a generation must
     notice the key set changed, and zeroing could alias its capture *)
  for i = 0 to t.nshards - 1 do
    t.chain_gen.(i) <- t.chain_gen.(i) + 1
  done;
  Array.fill t.watermark 0 t.nshards 0;
  t.safe_ts <- 0

let has_chain t ~shard ~key = Hashtbl.mem t.chains.(shard) key
let chain_gen t ~shard = t.chain_gen.(shard)

let chain_length t ~shard ~key =
  match Hashtbl.find_opt t.chains.(shard) key with
  | Some c -> List.length c
  | None -> 0

let newest_ts t ~shard ~key =
  match Hashtbl.find_opt t.chains.(shard) key with
  | Some ({ ts; _ } :: _) -> Some ts
  | Some [] | None -> None

let seed t ~shard ~key ~value =
  if enabled t && not (Hashtbl.mem t.chains.(shard) key) then begin
    (* the floor pre-image: valid for every snapshot older than the
       first published version (all real timestamps are >= 0) *)
    Hashtbl.replace t.chains.(shard) key [ { ts = 0; value } ];
    t.chain_gen.(shard) <- t.chain_gen.(shard) + 1
  end

(* keep the newest [window] committed versions plus one older entry as
   the in-chain floor *)
let trim t c =
  let cap = t.window + 1 in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | e :: rest -> e :: take (n - 1) rest
  in
  take cap c

let publish_one t ~shard ~ts (key, value) =
  let tbl = t.chains.(shard) in
  let chain, fresh =
    match Hashtbl.find_opt tbl key with
    | Some c -> (c, false)
    | None -> ([], true)
  in
  Hashtbl.replace tbl key (trim t ({ ts; value } :: chain));
  if fresh then t.chain_gen.(shard) <- t.chain_gen.(shard) + 1

let advance t ~shard ~ts =
  if ts > t.watermark.(shard) then t.watermark.(shard) <- ts;
  if ts > t.safe_ts then t.safe_ts <- ts

let publish t ~shard ~ts versions =
  if enabled t then begin
    List.iter (publish_one t ~shard ~ts) versions;
    advance t ~shard ~ts
  end

let publish_group t ~ts parts =
  if enabled t then begin
    (* every participant's versions enter their chains before ANY
       shard's watermark moves: a snapshot either predates the whole
       transaction or sees all of it *)
    List.iter
      (fun (shard, versions) -> List.iter (publish_one t ~shard ~ts) versions)
      parts;
    List.iter (fun (shard, _) -> advance t ~shard ~ts) parts
  end

let lookup t ~shard ~key ~ts =
  if not (enabled t) then No_chain
  else
    match Hashtbl.find_opt t.chains.(shard) key with
    | None -> No_chain
    | Some chain ->
      let rec resolve = function
        | [] -> No_chain (* unreachable: chains are never stored empty *)
        | [ oldest ] ->
          if oldest.ts <= ts then Resolved oldest.value
          else
            (* every retained version postdates the snapshot: trimming
               dropped the version [ts] should observe.  Surface the
               consistency loss — the oldest survivor is a FORWARD
               read, not a stale one — and let the caller decide what
               degradation means (see DESIGN §13). *)
            Truncated oldest.value
        | e :: rest -> if e.ts <= ts then Resolved e.value else resolve rest
      in
      resolve chain

(* sorted keys >= [from_key] that have a chain on [shard] — the
   chain-side input of a merged snapshot scan *)
let chain_keys_from t ~shard ~from_key =
  Hashtbl.fold
    (fun k _ acc -> if k >= from_key then k :: acc else acc)
    t.chains.(shard) []
  |> List.sort compare
