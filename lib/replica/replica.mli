(** Primary/backup log shipping over a {!Cluster.Link}.

    The primary frames each shard's mutations — the same
    PUT_INTENT/PUT_COMMITTED/DEL_INTENT operations the local store
    already makes durable — with a dense per-shard sequence number and
    ships them to a backup machine, which applies them {e in order}
    into its own persistent store through a caller-supplied callback
    (on poseidon-kv: the identical [Alloc_intf] transaction + B+-tree
    path) and returns cumulative acknowledgements.

    Loss handling is go-back-N: the shipper keeps every unacknowledged
    record buffered and retransmits the whole tail when the oldest one
    times out; the applier accepts only the exact next sequence number
    per shard, re-acks duplicates and discards out-of-order arrivals.
    The unacked window is bounded, which in [Async] mode {e is} the
    replication-lag bound; in [Sync] mode the caller additionally
    waits per record ({!Shipper.wait_acked}) before acking its client.

    Cross-shard transactions ride the same per-shard streams: a
    [Txn_prepare] record carries one participant shard's slice of the
    transaction and a [Txn_decide] record carries the coordinator's
    verdict for that shard.  Because both are sequenced like any other
    record, the backup applies them in the exact per-shard order the
    primary produced them, and a promotion that seals the log can tell
    a decided transaction (prepare {e and} decide delivered) from an
    in-doubt one (prepare delivered, decide lost with the primary) —
    see {!Service.Txn}.

    This module knows nothing about the store: records carry abstract
    [(key, vseed)] payloads and application is a closure, so the
    service layer composes it with {!Service.Kv} without a dependency
    cycle. *)

type txn_op =
  | Tput of { key : int; vseed : int }
  | Tdel of { key : int }
      (** One operation of a cross-shard transaction, as carried by a
          [Txn_prepare] record (only the participant shard's own
          slice). *)

type op =
  | Put of { key : int; vseed : int }
  | Del of { key : int }
  | Txn_prepare of { txn : int; ops : txn_op list }
      (** This shard's slice of transaction [txn]: persisted as a
          participant slot on the backup before the ack. *)
  | Txn_decide of { txn : int; commit : bool; nparts : int }
      (** The coordinator's verdict for [txn] on this shard's stream;
          [commit = false] discards the prepared slice.  [nparts] is
          the transaction's total participant count: the backup defers
          publication until it has seen the decide of {e every}
          participant, then publishes the whole transaction at once
          under its own decision record — publishing slice-by-slice
          would let a crash or promotion between two slices surface
          half a transaction ({!Service.Kv.txn_backup_decide}). *)

type mode = Sync | Async

type msg
(** Wire messages (records toward endpoint 1, acks toward endpoint 0);
    abstract — create the link as [msg Cluster.Link.t] and hand it to
    both sides. *)

val primary_ep : int
(** Link endpoint the primary reads (acks travel toward it): 0. *)

val backup_ep : int
(** Link endpoint the backup reads (records travel toward it): 1. *)

type config = {
  mode : mode;
  window : int;  (** max unacked records per shard (async lag bound) *)
  retransmit_ns : int;  (** tail-retransmit timeout *)
  poll_ns : int;  (** CPU charged per empty poll iteration *)
}

val default_config : config
(** [Sync], window 64, retransmit 120_000 ns (≳ 2 RTTs on the default
    20 µs wire), poll 400 ns. *)

module Shipper : sig
  type t

  val create : ?mach:int -> config -> shards:int -> link:msg Cluster.Link.t -> t
  (** [mach] (default 0) is the primary's machine id, used as the
      process id of ack-wire spans when tracing is on. *)

  val ship : ?trace:int -> ?span:int -> t -> shard:int -> op -> int
  (** Called by the shard's handler thread after the local persist.
      Assigns the next sequence number, buffers the record and puts it
      on the wire; blocks (polling) while the shard's unacked window
      is full.  Returns the assigned sequence number.  [trace]/[span]
      attach the request's {!Obs.Span} context to the record (and to
      any retransmission of it), so the backup's wire/apply spans and
      the ack's return hop join the request's span tree. *)

  val ship_buffered : ?trace:int -> ?span:int -> t -> shard:int -> op -> int
  (** Like {!ship}, but stages the record in the link's doorbell buffer
      ({!Cluster.Link.buffer}) instead of putting it on the wire: no
      per-record wire charge, nothing visible to the backup until
      {!flush}.  Sequencing, window admission and go-back-N
      bookkeeping are identical — a frame lost in flight is recovered
      record-by-record by the retransmit timer.  Callers must not ack
      a client for a record that has not been covered by a {!flush}. *)

  val flush : t -> int
  (** Ring the doorbell: ship every record staged by {!ship_buffered}
      (all shards) as one framed batch — one wire latency charge for
      the whole group.  Returns the number of records in the frame
      ([0] = nothing staged, nothing charged). *)

  val wait_acked : t -> shard:int -> seq:int -> deadline:int -> bool
  (** Sync mode: poll until the backup's cumulative ack covers [seq];
      [false] if simulated time passes [deadline] first. *)

  val pump : t -> until:(unit -> bool) -> deadline:int -> unit
  (** Replication-thread body: drain acks, retransmit timed-out tails.
      Returns once [until ()] holds and every shipped record is acked,
      or at [deadline] (abandoning any still-unacked tail). *)

  val acked : t -> shard:int -> int
  (** Highest cumulatively acked sequence number for [shard]; -1
      initially. *)

  val lag : t -> shard:int -> int
  (** Records currently shipped but unacked. *)

  val shipped : t -> int

  val retransmits : t -> int

  val max_lag : t -> int
  (** Largest unacked count observed on any shard — the empirical
      replication lag, ≤ [window] by construction. *)
end

module Applier : sig
  type t

  val create :
    ?on_apply:(lat_ns:int -> unit) ->
    ?mach:int ->
    ?ack_batch:bool ->
    ?apply_group:(shard:int -> op list -> unit) ->
    config ->
    shards:int ->
    link:msg Cluster.Link.t ->
    apply:(shard:int -> op -> unit) ->
    t
  (** [apply] must make the record durable before returning — the ack
      sent on its return is what [Sync] mode's guarantee rests on.
      [on_apply] observes each in-order application with its wire +
      apply latency (ship to applied, simulated ns) — the replication
      lag as seen at the backup; only called inside the simulation.
      [mach] (default 1) is the backup's machine id, the process id of
      the wire/apply spans emitted when a record carries a trace
      context.  [ack_batch] (default [false]) switches {!pump} to
      cumulative batched acks: instead of one ack per record, it sends
      one cumulative ack per touched shard per drained burst, all in a
      single doorbell frame — acks are still only produced after every
      covered apply returned, so the durability receipt is unchanged,
      merely coalesced.  [apply_group] (only consulted under
      [ack_batch]) batches the {e applies} too: in-sequence [Put]/[Del]
      records park during a drain burst and go down as one call per
      shard before the burst's ack — must make the whole burst durable
      before returning.  Transaction records and out-of-sequence
      arrivals still go through [apply] per record, after the shard's
      parked run is flushed (they are ordering barriers).

      Both callbacks must also invalidate any {e volatile} read-side
      state the backup keeps over its store (MVCC version chains, the
      {!Rcache} read cache) for every key they mutate, {e before}
      returning: a promotion can happen right after any ack, and the
      promoted store serves reads from exactly that state.  Driving
      the callbacks through {!Kv.put}/{!Kv.delete}/{!Kv.group_apply}
      (as {!Server.run_replicated} does) satisfies this for free —
      those paths publish versions and kill cache entries in the same
      pure step as the mutation. *)

  val pump : t -> until:(unit -> bool) -> unit
  (** Applier-thread body: receive records, apply in-sequence ones,
      ack cumulatively.  Returns when [until ()] holds (primary
      finished or declared dead) — without draining: failover decides
      separately what to do with the tail, see {!seal_and_replay}. *)

  val seal_and_replay : t -> sealed_at:int -> int
  (** Failover: consume every record the wire had {e delivered} by
      [sealed_at] (the seal point — typically promote start), apply
      the in-sequence tail, and return how many tail records were
      replayed.  Later arrivals are beyond the sealed log and are
      discarded: none of them was ever acknowledged, since an ack
      implies the backup already applied the record, so no durability
      promise attaches to them.  No acks are sent — there is no one
      left to hear them. *)

  val applied : t -> int
  (** Total records applied (tail replay included). *)

  val expected : t -> shard:int -> int
  (** Next sequence number the applier will accept for [shard]. *)
end
