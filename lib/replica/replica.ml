module Sched = Simcore.Sched
module Link = Cluster.Link

type txn_op =
  | Tput of { key : int; vseed : int }
  | Tdel of { key : int }

type op =
  | Put of { key : int; vseed : int }
  | Del of { key : int }
  | Txn_prepare of { txn : int; ops : txn_op list }
  | Txn_decide of { txn : int; commit : bool; nparts : int }

type mode = Sync | Async

type msg =
  | Rec of { shard : int; seq : int; op : op }
  | Ack of { shard : int; seq : int }

(* Wire convention: records flow toward link endpoint 1 (the backup),
   cumulative acks flow back toward endpoint 0 (the primary). *)
let backup_ep = 1
let primary_ep = 0

type config = {
  mode : mode;
  window : int;
  retransmit_ns : int;
  poll_ns : int;
}

let default_config =
  { mode = Sync; window = 64; retransmit_ns = 120_000; poll_ns = 400 }

let now_or_zero () = if Sched.in_simulation () then Sched.now () else 0

let poll_wait cfg =
  (* Outside the simulation time does not advance on its own, so a
     poll loop would spin forever; callers there drive both sides by
     hand and loops bail out instead of sleeping. *)
  if Sched.in_simulation () then Sched.sleep cfg.poll_ns

module Shipper = struct
  type t = {
    cfg : config;
    link : msg Link.t;
    mach : int; (* primary's machine id, for ack-wire spans *)
    next_seq : int array;
    acked_ : int array; (* highest cumulative ack, -1 initially *)
    (* (seq, op, trace, span), oldest first; the span context is kept
       so retransmissions carry the same causal parent *)
    unacked : (int * op * int * int) Queue.t array;
    last_tx : int array; (* last (re)transmission time of the tail *)
    mutable shipped_ : int;
    mutable retransmits_ : int;
    mutable max_lag_ : int;
  }

  let create ?(mach = 0) cfg ~shards ~link =
    if shards < 1 then invalid_arg "Shipper.create: shards < 1";
    if cfg.window < 1 then invalid_arg "Shipper.create: window < 1";
    {
      cfg;
      link;
      mach;
      next_seq = Array.make shards 0;
      acked_ = Array.make shards (-1);
      unacked = Array.init shards (fun _ -> Queue.create ());
      last_tx = Array.make shards 0;
      shipped_ = 0;
      retransmits_ = 0;
      max_lag_ = 0;
    }

  let acked t ~shard = t.acked_.(shard)
  let lag t ~shard = Queue.length t.unacked.(shard)
  let shipped t = t.shipped_
  let retransmits t = t.retransmits_
  let max_lag t = t.max_lag_

  (* Drop acked records off the head of the unacked buffer. *)
  let absorb_ack t shard seq =
    if seq > t.acked_.(shard) then begin
      t.acked_.(shard) <- seq;
      let q = t.unacked.(shard) in
      let continue = ref true in
      while !continue do
        match Queue.peek_opt q with
        | Some (s, _, _, _) when s <= seq -> ignore (Queue.pop q)
        | _ -> continue := false
      done
    end

  let drain_acks t =
    let continue = ref true in
    while !continue do
      match Link.recv t.link ~ep:primary_ep with
      | Some { payload = Ack { shard; seq }; sent_at; trace; span; _ } ->
          (* the ack's hop back to the primary, attributed to the
             request whose record it (cumulatively) acknowledges *)
          if trace >= 0 && Sched.in_simulation () then
            ignore
              (Obs.Span.add_span ~trace ~parent:span ~mach:t.mach
                 Obs.Span.Ack_wire ~t0:sent_at ~t1:(Sched.now ()));
          absorb_ack t shard seq
      | Some _ -> () (* a record echoed back: impossible by convention *)
      | None -> continue := false
    done

  let all_acked t =
    Array.for_all (fun q -> Queue.is_empty q) t.unacked

  let ship ?(trace = -1) ?(span = -1) t ~shard op =
    (* Window admission: bounds unacked records, i.e. the async-mode
       replication lag.  The handler polls; acks are drained here too
       so progress does not depend on the pump thread's schedule. *)
    while Queue.length t.unacked.(shard) >= t.cfg.window do
      drain_acks t;
      if Queue.length t.unacked.(shard) >= t.cfg.window then
        poll_wait t.cfg
    done;
    let seq = t.next_seq.(shard) in
    t.next_seq.(shard) <- seq + 1;
    Queue.add (seq, op, trace, span) t.unacked.(shard);
    let l = Queue.length t.unacked.(shard) in
    if l > t.max_lag_ then t.max_lag_ <- l;
    t.shipped_ <- t.shipped_ + 1;
    t.last_tx.(shard) <- now_or_zero ();
    ignore (Link.send ~trace ~span t.link ~dst:backup_ep (Rec { shard; seq; op }));
    seq

  (* Doorbell variant: buffer the record toward the backup without
     paying a wire charge; a later [flush] ships every buffered record
     of every shard as one framed batch.  Sequence-number assignment,
     window admission and go-back-N bookkeeping are identical to
     [ship] — a frame lost on the wire is recovered record-by-record
     by [retransmit_due], exactly like individual losses. *)
  let ship_buffered ?(trace = -1) ?(span = -1) t ~shard op =
    while Queue.length t.unacked.(shard) >= t.cfg.window do
      drain_acks t;
      if Queue.length t.unacked.(shard) >= t.cfg.window then
        poll_wait t.cfg
    done;
    let seq = t.next_seq.(shard) in
    t.next_seq.(shard) <- seq + 1;
    Queue.add (seq, op, trace, span) t.unacked.(shard);
    let l = Queue.length t.unacked.(shard) in
    if l > t.max_lag_ then t.max_lag_ <- l;
    t.shipped_ <- t.shipped_ + 1;
    t.last_tx.(shard) <- now_or_zero ();
    Link.buffer ~trace ~span t.link ~dst:backup_ep (Rec { shard; seq; op });
    seq

  let flush t = Link.flush t.link ~dst:backup_ep

  let wait_acked t ~shard ~seq ~deadline =
    let rec loop () =
      drain_acks t;
      if t.acked_.(shard) >= seq then true
      else if Sched.in_simulation () && Sched.now () >= deadline then false
      else if not (Sched.in_simulation ()) then
        (* outside the simulation nothing can arrive while we spin *)
        t.acked_.(shard) >= seq
      else begin
        poll_wait t.cfg;
        loop ()
      end
    in
    loop ()

  (* Go-back-N: when the oldest unacked record of a shard has waited a
     full timeout, put the whole tail back on the wire. *)
  let retransmit_due t =
    let now = now_or_zero () in
    Array.iteri
      (fun shard q ->
        if
          (not (Queue.is_empty q))
          && now - t.last_tx.(shard) >= t.cfg.retransmit_ns
        then begin
          t.last_tx.(shard) <- now;
          Queue.iter
            (fun (seq, op, trace, span) ->
              t.retransmits_ <- t.retransmits_ + 1;
              ignore
                (Link.send ~trace ~span t.link ~dst:backup_ep
                   (Rec { shard; seq; op })))
            q
        end)
      t.unacked

  let pump t ~until ~deadline =
    let rec loop () =
      drain_acks t;
      retransmit_due t;
      let done_ = until () && all_acked t in
      if done_ then ()
      else if Sched.in_simulation () && Sched.now () >= deadline then ()
      else if not (Sched.in_simulation ()) then ()
      else begin
        poll_wait t.cfg;
        loop ()
      end
    in
    loop ()
end

module Applier = struct
  type t = {
    cfg : config;
    link : msg Link.t;
    mach : int; (* backup's machine id, for wire/apply spans *)
    apply : shard:int -> op -> unit;
    on_apply : lat_ns:int -> unit;
    expected_ : int array; (* next sequence number accepted per shard *)
    mutable applied_ : int;
    ack_batch : bool;
    touched : bool array; (* shards applied since the last batched ack *)
    apply_group : (shard:int -> op list -> unit) option;
    (* in-order single-op records parked during a drain burst, applied
       as one group per shard before the burst's cumulative ack:
       (op, sent_at, arrived_at, trace, span) *)
    stash : (op * int * int * int * int) Queue.t array;
  }

  let create ?(on_apply = fun ~lat_ns:_ -> ()) ?(mach = 1) ?(ack_batch = false)
      ?apply_group cfg ~shards ~link ~apply =
    if shards < 1 then invalid_arg "Applier.create: shards < 1";
    {
      cfg;
      link;
      mach;
      apply;
      on_apply;
      expected_ = Array.make shards 0;
      applied_ = 0;
      ack_batch;
      touched = Array.make shards false;
      apply_group;
      stash = Array.init shards (fun _ -> Queue.create ());
    }

  let applied t = t.applied_
  let expected t ~shard = t.expected_.(shard)

  let ack ?(trace = -1) ?(span = -1) t shard =
    ignore
      (Link.send ~trace ~span t.link ~dst:primary_ep
         (Ack { shard; seq = t.expected_.(shard) - 1 }))

  let handle ?(ack_back = true) ?(sent_at = 0) ?(trace = -1) ?(span = -1) t
      = function
    | Ack _ -> () (* impossible by convention *)
    | Rec { shard; seq; op } ->
        if seq = t.expected_.(shard) then begin
          (* span the record's wire hop (known only now that it
             arrived) and the in-order apply; the ack carries the
             apply span so the primary can close the causal loop *)
          let in_sim = Sched.in_simulation () in
          let wire =
            if trace >= 0 && in_sim then
              Obs.Span.add_span ~trace ~parent:span ~mach:t.mach
                Obs.Span.Repl_wire ~t0:sent_at ~t1:(Sched.now ())
            else -1
          in
          let apl =
            Obs.Span.open_span ~trace ~parent:wire ~mach:t.mach
              Obs.Span.Backup_apply
          in
          t.apply ~shard op;
          Obs.Span.close_span apl;
          t.expected_.(shard) <- seq + 1;
          t.applied_ <- t.applied_ + 1;
          if in_sim then t.on_apply ~lat_ns:(Sched.now () - sent_at);
          if ack_back then ack ~trace ~span:apl t shard
        end
        else if seq < t.expected_.(shard) then begin
          (* duplicate or retransmission of applied data: re-ack so the
             shipper's window can advance *)
          if ack_back then ack t shard
        end
        else
          (* gap — an earlier record was lost; go-back-N means we drop
             this and re-ack the last good one to hurry the resend *)
          if ack_back then ack t shard

  (* Group apply: a burst's parked records for one shard go down as a
     single [apply_group] call (the backup-side commit-group chain —
     one covering persist per chunk instead of one intent round per
     record).  Sequence numbers were advanced at park time, so the
     ordering check stays per record; the durability receipt moves
     with the apply — [flush_stash] always runs before [flush_acks],
     so a cumulative ack never covers a parked, unapplied record. *)
  let flush_stash t shard =
    let q = t.stash.(shard) in
    if not (Queue.is_empty q) then begin
      let recs = List.of_seq (Queue.to_seq q) in
      Queue.clear q;
      let f =
        match t.apply_group with Some f -> f | None -> assert false
      in
      let t0 = now_or_zero () in
      f ~shard (List.map (fun (op, _, _, _, _) -> op) recs);
      let t1 = now_or_zero () in
      let in_sim = Sched.in_simulation () in
      List.iter
        (fun (_, sent_at, arrived_at, trace, span) ->
          if trace >= 0 && in_sim then begin
            let wire =
              Obs.Span.add_span ~trace ~parent:span ~mach:t.mach
                Obs.Span.Repl_wire ~t0:sent_at ~t1:arrived_at
            in
            ignore
              (Obs.Span.add_span ~trace ~parent:wire ~mach:t.mach
                 Obs.Span.Backup_apply ~t0 ~t1)
          end;
          t.applied_ <- t.applied_ + 1;
          if in_sim then t.on_apply ~lat_ns:(t1 - sent_at))
        recs
    end

  let flush_stashes t =
    Array.iteri (fun shard _ -> flush_stash t shard) t.stash

  (* Cumulative batched acks: one ack per touched shard per drained
     burst, all of them flushed as one doorbell frame — the ack path's
     mirror of the shipper's record batching.  The ack is still only
     produced after every covered record's apply returned (i.e. after
     its durability point), so the Sync guarantee is unchanged; it is
     merely coalesced. *)
  let flush_acks t =
    let any = ref false in
    Array.iteri
      (fun shard touched ->
        if touched then begin
          t.touched.(shard) <- false;
          any := true;
          Link.buffer t.link ~dst:primary_ep
            (Ack { shard; seq = t.expected_.(shard) - 1 })
        end)
      t.touched;
    if !any then ignore (Link.flush t.link ~dst:primary_ep)

  let pump t ~until =
    let rec loop () =
      (match Link.recv t.link ~ep:backup_ep with
      | Some { payload; sent_at; trace; span; _ } ->
          if t.ack_batch then begin
            (match (payload, t.apply_group) with
            | ( Rec { shard; seq; op = (Put _ | Del _) as op },
                Some _ )
              when seq = t.expected_.(shard) ->
                (* park for the burst's group apply; the seq advances
                   now so ordering checks see it, the durability point
                   (and the ack) comes at [flush_stash] *)
                t.expected_.(shard) <- seq + 1;
                Queue.add
                  (op, sent_at, now_or_zero (), trace, span)
                  t.stash.(shard)
            | Rec { shard; _ }, _ ->
                (* transaction records are group barriers (they own
                   the participant slot); out-of-sequence records need
                   [handle]'s duplicate/gap re-ack bookkeeping *)
                flush_stash t shard;
                handle ~ack_back:false ~sent_at ~trace ~span t payload
            | Ack _, _ -> ());
            (match payload with
            | Rec { shard; _ } -> t.touched.(shard) <- true
            | Ack _ -> ())
          end
          else handle ~sent_at ~trace ~span t payload;
          loop ()
      | None ->
          if t.ack_batch then begin
            flush_stashes t;
            flush_acks t
          end;
          if until () then ()
          else if not (Sched.in_simulation ()) then ()
          else begin
            poll_wait t.cfg;
            loop ()
          end)
    in
    loop ()

  let seal_and_replay t ~sealed_at =
    let before = t.applied_ in
    (* records parked mid-burst were delivered before the seal: apply
       them before walking the remaining wire tail (never acked, so no
       promise attaches either way — but they are ours to keep) *)
    if t.ack_batch then flush_stashes t;
    let continue = ref true in
    while !continue do
      match Link.recv t.link ~ep:backup_ep with
      | Some { payload; delivered_at; _ } ->
          (* Only what the wire had delivered when the primary died is
             ours; later timestamps are in-flight data that died with
             it.  (recv already gates on delivery time inside the
             simulation; the explicit check also covers post-run
             draining outside it.) *)
          if delivered_at <= sealed_at then handle ~ack_back:false t payload
      | None -> continue := false
    done;
    t.applied_ - before
end
