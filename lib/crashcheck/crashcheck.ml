(* Deterministic persistency model checker: enumerate every
   persistence point of a heap operation, crash there (worst-case and
   seeded adversarial dirty subsets), recover, and validate oracles.
   See crashcheck.mli for the model. *)

module Prng = Repro_util.Prng
module Memdev = Nvmm.Memdev
module H = Poseidon.Heap

type mode = Dirty_lost_all | Dirty_subset of int

let mode_to_string = function
  | Dirty_lost_all -> "dirty-lost-all"
  | Dirty_subset seed -> Printf.sprintf "dirty-subset:%d" seed

type ledger = { mutable durable : int; mutable slack : int }

type env = {
  mach : Machine.t;
  base : int;
  mutable heap : Poseidon.Heap.t;
  ledger : ledger;
  mutable aux_devs : Nvmm.Memdev.t list;
}

type oracle = { oname : string; check : env -> (unit, string) result }

type scenario = {
  sname : string;
  setup : unit -> env;
  op : env -> unit;
  extra_oracles : oracle list;
}

(* ---------- oracles ---------- *)

let o_invariants =
  { oname = "invariants";
    check =
      (fun env ->
        match H.check_invariants env.heap with
        | () -> Ok ()
        | exception Poseidon.Subheap.Invariant_violation msg -> Error msg) }

let o_fsck =
  { oname = "fsck";
    check =
      (fun env ->
        let r = Poseidon.Fsck.run env.heap in
        if Poseidon.Fsck.is_clean r then Ok ()
        else
          let first =
            List.concat_map
              (fun (s : Poseidon.Fsck.subheap_report) -> s.violations)
              r.Poseidon.Fsck.subheaps
          in
          Error
            (Printf.sprintf "%d violation(s): %s"
               r.Poseidon.Fsck.total_violations
               (match first with v :: _ -> v | [] -> "(unlocated)"))) }

let o_quiescent =
  { oname = "quiescent";
    check =
      (fun env ->
        if H.logs_quiescent env.heap then Ok ()
        else
          Error
            (Printf.sprintf
               "logs not quiescent after recovery (%d micro-log entries \
                pending)"
               (H.tx_pending env.heap))) }

let o_accounting =
  { oname = "accounting";
    check =
      (fun env ->
        let live = (H.stats env.heap).H.live_bytes
        and free = (H.stats env.heap).H.free_bytes
        and cap = H.data_capacity env.heap in
        if live + free = cap then Ok ()
        else
          Error
            (Printf.sprintf
               "leak or double-own: live %d + free %d <> capacity %d \
                (delta %d)"
               live free cap (cap - live - free))) }

let o_durability =
  { oname = "durability";
    check =
      (fun env ->
        let live = (H.stats env.heap).H.live_bytes in
        let { durable; slack } = env.ledger in
        if live >= durable - slack && live <= durable + slack then Ok ()
        else
          Error
            (Printf.sprintf
               "live %d B outside [%d - %d, %d + %d]: committed work lost \
                or uncommitted work leaked"
               live durable slack durable slack)) }

let standard_oracles =
  [ o_invariants; o_fsck; o_quiescent; o_accounting; o_durability ]

(* ---------- checking core ---------- *)

type counterexample = {
  cx_scenario : string;
  cx_point : int;
  cx_mode : mode;
  cx_oracle : string;
  cx_detail : string;
}

type report = {
  rp_scenario : string;
  fences_total : int;
  points_explored : int;
  subsets_tried : int;
  recoveries_verified : int;
  counterexamples : counterexample list;
}

exception Stop

(* Run [op] on a fresh environment, cutting execution at persistence
   point [stop_at] (0 = run to completion).  Fences are counted from
   the start of [op]: setup's own persistence traffic is excluded.
   With [aux_devs] (multi-machine scenarios) the count is cumulative
   across every device in execution order, so the sweep interleaves
   the machines' persistence points exactly as the run did. *)
let run_op scn ~stop_at =
  let env = scn.setup () in
  let devs = Machine.dev env.mach :: env.aux_devs in
  List.iter Memdev.reset_counters devs;
  if stop_at > 0 then begin
    let count = ref 0 in
    List.iter
      (fun d ->
        Memdev.set_persistence_hook d
          (Some
             (fun (_ : Memdev.fence_info) ->
               incr count;
               if !count >= stop_at then raise Stop)))
      devs
  end;
  let fences =
    Fun.protect
      ~finally:(fun () ->
        List.iter (fun d -> Memdev.set_persistence_hook d None) devs)
      (fun () ->
        (try scn.op env with Stop -> ());
        List.fold_left
          (fun acc d -> acc + (Memdev.counters d).Memdev.fences)
          0 devs)
  in
  (env, fences)

let measure scn = snd (run_op scn ~stop_at:0)

let subset_seed ~seed ~point s =
  (seed * 0x9E3779B1) lxor (point * 0x85EBCA6B) lxor (s * 0xC2B2AE35)
  land 0x3FFFFFFF

let check_point scn ~point ~mode =
  Obs.Trace.emit_named Obs.Event.Custom "crashcheck_point" point;
  let env, _ = run_op scn ~stop_at:point in
  let dev = Machine.dev env.mach in
  (match mode with
   | Dirty_lost_all -> Memdev.crash dev `Strict
   | Dirty_subset seed -> Memdev.crash dev (`Adversarial (Prng.create seed)));
  (* multi-machine scenarios: every member loses power at the same
     instant (correlated cluster-wide crash — the worst case) *)
  List.iteri
    (fun i d ->
      match mode with
      | Dirty_lost_all -> Memdev.crash d `Strict
      | Dirty_subset seed ->
        Memdev.crash d (`Adversarial (Prng.create (seed + (31 * (i + 1))))))
    env.aux_devs;
  let cex oracle detail =
    Some
      { cx_scenario = scn.sname;
        cx_point = point;
        cx_mode = mode;
        cx_oracle = oracle;
        cx_detail = detail }
  in
  match H.attach env.mach ~base:env.base () with
  | exception e -> cex "recovery" (Printexc.to_string e)
  | recovered -> (
    env.heap <- recovered;
    let rec first_failure = function
      | [] -> None
      | o :: rest -> (
        match o.check env with
        | Ok () -> first_failure rest
        | Error detail -> cex o.oname detail
        | exception e ->
          cex o.oname ("oracle raised: " ^ Printexc.to_string e))
    in
    first_failure (standard_oracles @ scn.extra_oracles))

(* Evenly-strided sample of [1..n] with [k] elements, endpoints
   included — the budget-capped point selection. *)
let stride_sample n k =
  if k <= 0 || n <= k then List.init n (fun i -> i + 1)
  else if k = 1 then [ 1 ]
  else
    List.init k (fun i -> 1 + (i * (n - 1) / (k - 1)))
    |> List.sort_uniq compare

let run ?(max_points = 0) ?(subsets_per_point = 2) ?(seed = 1) scn =
  let c name = Obs.Metrics.counter ~scope:"crashcheck" name in
  let c_points = c "points_explored"
  and c_subsets = c "subsets_tried"
  and c_verified = c "recoveries_verified"
  and c_cex = c "counterexamples" in
  let fences_total = measure scn in
  (* +1: the point past the last fence crashes after [op] completed *)
  let points = stride_sample (fences_total + 1) max_points in
  let subsets = ref 0 and verified = ref 0 and cexs = ref [] in
  List.iter
    (fun point ->
      Obs.Metrics.incr c_points;
      let modes =
        Dirty_lost_all
        :: List.init subsets_per_point (fun s ->
               Dirty_subset (subset_seed ~seed ~point s))
      in
      List.iter
        (fun mode ->
          (match mode with
           | Dirty_subset _ ->
             incr subsets;
             Obs.Metrics.incr c_subsets
           | Dirty_lost_all -> ());
          match check_point scn ~point ~mode with
          | None ->
            incr verified;
            Obs.Metrics.incr c_verified
          | Some cx ->
            Obs.Metrics.incr c_cex;
            cexs := cx :: !cexs)
        modes)
    points;
  { rp_scenario = scn.sname;
    fences_total;
    points_explored = List.length points;
    subsets_tried = !subsets;
    recoveries_verified = !verified;
    counterexamples = List.rev !cexs }

let pp_counterexample ppf cx =
  Format.fprintf ppf
    "COUNTEREXAMPLE %s: crash at point %d (%s) violates %s@,  %s" cx.cx_scenario
    cx.cx_point (mode_to_string cx.cx_mode) cx.cx_oracle cx.cx_detail

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>%-10s %3d fences, %3d points explored, %3d subsets tried, %4d \
     recoveries verified, %d counterexample(s)"
    r.rp_scenario r.fences_total r.points_explored r.subsets_tried
    r.recoveries_verified
    (List.length r.counterexamples);
  List.iter (fun cx -> Format.fprintf ppf "@,%a" pp_counterexample cx)
    r.counterexamples;
  Format.fprintf ppf "@]"

(* ---------- built-in scenarios ---------- *)

let heap_base = 1 lsl 30

(* One CPU and a 64 KiB data region keep the fence space small enough
   to enumerate exhaustively while still exercising split, merge,
   defragmentation and hash-growth paths. *)
let mk_env ?(base_buckets = 32) () =
  let cfg =
    { Machine.Config.default with
      Machine.Config.num_cpus = 1;
      numa_domains = 1 }
  in
  let mach = Machine.create ~cfg () in
  let heap =
    H.create mach ~base:heap_base ~size:(1 lsl 30) ~heap_id:1
      ~sub_data_size:(1 lsl 16) ~base_buckets ()
  in
  { mach;
    base = heap_base;
    heap;
    ledger = { durable = 0; slack = 0 };
    aux_devs = [] }

let finish_setup env =
  (* everything the setup did is the durable baseline *)
  Memdev.drain (Machine.dev env.mach);
  env

let round_up = Poseidon.Layout.round_up

(* Ledger-updating wrappers: the ledger moves only when the call
   returns, so a crash mid-call leaves its effect inside [slack]. *)
let alloc_l env size =
  match H.alloc env.heap size with
  | Some p ->
    env.ledger.durable <- env.ledger.durable + round_up size;
    Some p
  | None -> None

let free_l env p ~size =
  H.free env.heap p;
  env.ledger.durable <- env.ledger.durable - round_up size

let scn_alloc () =
  { sname = "alloc";
    extra_oracles = [];
    setup =
      (fun () ->
        let env = mk_env () in
        env.ledger.slack <- 1024;
        ignore (alloc_l env 64);
        ignore (alloc_l env 192);
        finish_setup env);
    op =
      (fun env ->
        List.iter
          (fun s -> ignore (alloc_l env s))
          [ 32; 64; 96; 128; 256; 512; 32; 1024; 48; 64 ]) }

let scn_free () =
  let sizes = [ 32; 64; 128; 256; 512; 32; 64; 128; 256; 1024 ] in
  let ptrs = ref [] in
  { sname = "free";
    extra_oracles = [];
    setup =
      (fun () ->
        let env = mk_env () in
        env.ledger.slack <- 1024;
        ptrs :=
          List.filter_map
            (fun s -> Option.map (fun p -> (p, s)) (alloc_l env s))
            sizes;
        finish_setup env);
    op =
      (fun env -> List.iter (fun (p, s) -> free_l env p ~size:s) !ptrs) }

(* A transaction's bytes become durable at the micro-log truncation
   inside the [is_end] call; the ledger moves when that call returns,
   so [slack] must cover one whole transaction. *)
let tx_l env sizes =
  let n = List.length sizes in
  let bytes = List.fold_left (fun a s -> a + round_up s) 0 sizes in
  let ok = ref true in
  List.iteri
    (fun i s ->
      if H.tx_alloc env.heap s ~is_end:(i = n - 1) = None then ok := false)
    sizes;
  if !ok then env.ledger.durable <- env.ledger.durable + bytes

let scn_tx_commit () =
  { sname = "tx-commit";
    extra_oracles = [];
    setup =
      (fun () ->
        let env = mk_env () in
        env.ledger.slack <- 512;
        ignore (alloc_l env 64);
        finish_setup env);
    op =
      (fun env ->
        tx_l env [ 64; 128; 64 ];
        tx_l env [ 256; 32 ]) }

let scn_tx_abort () =
  { sname = "tx-abort";
    extra_oracles = [];
    setup =
      (fun () ->
        let env = mk_env () in
        env.ledger.slack <- 512;
        ignore (alloc_l env 128);
        finish_setup env);
    op =
      (fun env ->
        ignore (H.tx_alloc env.heap 64 ~is_end:false);
        ignore (H.tx_alloc env.heap 128 ~is_end:false);
        ignore (H.tx_alloc env.heap 256 ~is_end:false);
        H.tx_abort env.heap;
        ignore (alloc_l env 64)) }

let scn_extend () =
  { sname = "extend";
    extra_oracles = [];
    setup =
      (fun () ->
        (* tiny level 0 so a few dozen records overflow the probe
           windows and force hash growth *)
        let env = mk_env ~base_buckets:8 () in
        env.ledger.slack <- 64;
        finish_setup env);
    op =
      (fun env ->
        for _ = 1 to 40 do
          ignore (alloc_l env 32)
        done) }

let scn_broken_missing_flush () =
  let raw = ref 0 in
  let magic = 0xDEC0DE in
  { sname = "broken";
    setup =
      (fun () ->
        let env = mk_env () in
        env.ledger.slack <- 128;
        (match alloc_l env 128 with
         | Some p -> raw := H.get_rawptr env.heap p
         | None -> failwith "broken scenario: setup allocation failed");
        finish_setup env);
    op =
      (fun env ->
        (* two-line commit protocol with the data flush forgotten: the
           flag's persist can land while the data line is still
           volatile-only *)
        Machine.write_u64 env.mach !raw magic;
        (* BUG under test: missing  Machine.persist env.mach !raw 8  *)
        Machine.write_u64 env.mach (!raw + 64) 1;
        Machine.persist env.mach (!raw + 64) 8);
    extra_oracles =
      [ { oname = "app-commit";
          check =
            (fun env ->
              let flag = Machine.read_u64 env.mach (!raw + 64) in
              let data = Machine.read_u64 env.mach !raw in
              if flag = 1 && data <> magic then
                Error
                  (Printf.sprintf
                     "commit flag persisted but data lost (data=%#x): \
                      missing clwb on the data line"
                     data)
              else Ok ()) } ] }

(* ---------- service scenarios: poseidon-kv intent protocol ---------- *)

type kv_op =
  | Kput of int * int
  | Kdel of int
  | Ktxn of Service.Kv.txn_op list

let txn_op_key = function
  | Service.Kv.Tput { key; _ } | Service.Kv.Tdel { key } -> key

(* Model of {!Service.Kv.txn}'s commit rule: non-empty, distinct keys,
   every strict delete's key present.  An aborting transaction is a
   no-op on the model state, matching "abort leaves no durable trace". *)
let txn_would_commit tbl ops =
  let keys = List.map txn_op_key ops in
  ops <> []
  && List.length (List.sort_uniq compare keys) = List.length keys
  && List.for_all
       (function
         | Service.Kv.Tdel { key } -> Hashtbl.mem tbl key
         | Service.Kv.Tput _ -> true)
       ops

let apply_kv tbl = function
  | Kput (k, vs) -> Hashtbl.replace tbl k vs
  | Kdel k -> Hashtbl.remove tbl k
  | Ktxn ops ->
    if txn_would_commit tbl ops then
      List.iter
        (function
          | Service.Kv.Tput { key; vseed } -> Hashtbl.replace tbl key vseed
          | Service.Kv.Tdel { key } -> Hashtbl.remove tbl key)
        ops

(* Recovery oracle shared by the local and the replicated KV sweeps:
   re-attach the *service* on [env]'s surviving heap — running the
   intent replay/rollback — then check three things: the allocator is
   still sane after replay mutated it, the store matches the acked
   prefix of [plan] applied over [preload] exactly, and the one
   in-flight operation is atomic (its key reads as either the pre- or
   the post-state, never a torn value).

   [window] (default 1) generalizes the prefix rule to group commit:
   with up to [window] ops in flight beyond the acked prefix, the
   recovered store must equal the plan-prefix state for SOME length
   m ∈ [acked, acked + window] — a crash mid-batch may lose any
   suffix of the unacked window, but never an acked op and never
   anything beyond the window.  (Chunks apply in plan order, so every
   legal crash state IS such a prefix.) *)
let kv_prefix_oracle ?(window = 1) ~oname ~preload ~plan ~acked () =
  { oname;
    check =
      (fun env ->
        let inst = Poseidon.instance env.heap in
        match Service.Kv.attach inst with
        | exception e ->
          Error ("service recovery raised: " ^ Printexc.to_string e)
        | s2, _recovery -> (
          (* replay mutated the heap; it must still be self-consistent *)
          match H.check_invariants env.heap with
          | exception Poseidon.Subheap.Invariant_violation m ->
            Error ("post-replay invariants: " ^ m)
          | () ->
            if not (H.logs_quiescent env.heap) then
              Error "post-replay logs not quiescent"
            else begin
              let live = (H.stats env.heap).H.live_bytes
              and free = (H.stats env.heap).H.free_bytes
              and cap = H.data_capacity env.heap in
              if live + free <> cap then
                Error
                  (Printf.sprintf
                     "post-replay leak: live %d + free %d <> capacity %d"
                     live free cap)
              else if window > 1 then begin
                Service.Kv.check s2;
                let universe = Hashtbl.create 32 in
                List.iter (fun (k, _) -> Hashtbl.replace universe k ()) preload;
                List.iter
                  (function
                    | Kput (k, _) | Kdel k -> Hashtbl.replace universe k ()
                    | Ktxn ops ->
                      List.iter
                        (fun o -> Hashtbl.replace universe (txn_op_key o) ())
                        ops)
                  plan;
                let cks vs = Service.Kv.value_checksum s2 ~vseed:vs in
                let matches m =
                  let tbl = Hashtbl.create 32 in
                  List.iter (fun (k, vs) -> Hashtbl.replace tbl k vs) preload;
                  List.iteri (fun i o -> if i < m then apply_kv tbl o) plan;
                  Hashtbl.fold
                    (fun k () ok ->
                      ok
                      && Service.Kv.get s2 ~key:k
                         = Option.map cks (Hashtbl.find_opt tbl k))
                    universe true
                in
                let lo = !acked
                and hi = min (List.length plan) (!acked + window) in
                let rec any m = m <= hi && (matches m || any (m + 1)) in
                if any lo then Ok ()
                else
                  Error
                    (Printf.sprintf
                       "recovered store matches no plan prefix in [%d, %d]: \
                        an acked op was lost or more than the batch window \
                        leaked"
                       lo hi)
              end
              else begin
                Service.Kv.check s2;
                let pre = Hashtbl.create 32 in
                List.iter (fun (k, vs) -> Hashtbl.replace pre k vs) preload;
                List.iteri
                  (fun i o -> if i < !acked then apply_kv pre o)
                  plan;
                let in_flight =
                  if !acked < List.length plan then
                    Some (List.nth plan !acked)
                  else None
                in
                let post = Hashtbl.copy pre in
                Option.iter (apply_kv post) in_flight;
                let in_flight_keys =
                  match in_flight with
                  | Some (Kput (k, _)) | Some (Kdel k) -> [ k ]
                  | Some (Ktxn ops) -> List.map txn_op_key ops
                  | None -> []
                in
                let keys = Hashtbl.create 32 in
                Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) pre;
                Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) post;
                List.iter (fun k -> Hashtbl.replace keys k ()) in_flight_keys;
                let cks vs = Service.Kv.value_checksum s2 ~vseed:vs in
                let err = ref None in
                (* settled keys read exactly the acked-prefix state *)
                Hashtbl.iter
                  (fun k () ->
                    if !err = None && not (List.mem k in_flight_keys)
                    then begin
                      let got = Service.Kv.get s2 ~key:k in
                      let want = Option.map cks (Hashtbl.find_opt pre k) in
                      if got <> want then
                        err :=
                          Some
                            (Printf.sprintf
                               "key %d: recovered store disagrees with the \
                                acked-prefix ledger (%d op(s) acked)"
                               k !acked)
                    end)
                  keys;
                (* the in-flight op is atomic as a unit: EVERY key it
                   touches reads as pre-state, or EVERY key as
                   post-state — for a cross-shard transaction this is
                   exactly whole-transaction atomicity, ruling out a
                   half-applied commit *)
                if !err = None && in_flight_keys <> [] then begin
                  let gots =
                    List.map
                      (fun k -> (k, Service.Kv.get s2 ~key:k))
                      in_flight_keys
                  in
                  let matches tbl =
                    List.for_all
                      (fun (k, got) ->
                        got = Option.map cks (Hashtbl.find_opt tbl k))
                      gots
                  in
                  if not (matches pre || matches post) then
                    err :=
                      Some
                        (Printf.sprintf
                           "in-flight op torn across its %d key(s) (%d \
                            op(s) acked): neither all-pre nor all-post"
                           (List.length in_flight_keys)
                           !acked)
                end;
                match !err with Some m -> Error m | None -> Ok ()
              end
            end)) }

(* Drive the KV store's write path through the sweep.  The ledger
   snapshots [live_bytes] after each completed operation, so [slack]
   only has to cover the single in-flight op: one value block, one
   possible tree-node split and one not-yet-freed old value. *)
let scn_kv ?(slack = 4096) ?(wrap = fun (i : Alloc_intf.instance) -> i)
    ?(extra = []) ?(tweak = fun (_ : Service.Kv.t) -> ()) ~sname ~preload
    ~plan () =
  let svc = ref None in
  let acked = ref 0 in
  let value_size = 64 in
  let setup () =
    let env = mk_env () in
    env.ledger.slack <- slack;
    let inst = wrap (Poseidon.instance env.heap) in
    let s = Service.Kv.create inst ~shards:2 ~value_size in
    List.iter
      (fun (k, vs) ->
        if not (Service.Kv.put s ~key:k ~vseed:vs) then
          failwith "kv scenario: preload put failed")
      preload;
    tweak s;
    svc := Some s;
    acked := 0;
    env.ledger.durable <- (H.stats env.heap).H.live_bytes;
    finish_setup env
  in
  let op env =
    let s = Option.get !svc in
    List.iter
      (fun o ->
        (match o with
         | Kput (k, vs) -> ignore (Service.Kv.put s ~key:k ~vseed:vs)
         | Kdel k -> ignore (Service.Kv.delete s ~key:k)
         | Ktxn ops -> ignore (Service.Kv.txn s ops));
        incr acked;
        env.ledger.durable <- (H.stats env.heap).H.live_bytes)
      plan
  in
  let o_kv = kv_prefix_oracle ~oname:"kv-store" ~preload ~plan ~acked () in
  { sname; setup; op; extra_oracles = o_kv :: extra }

let scn_kv_put () =
  scn_kv ~sname:"kv-put"
    ~preload:[ (1, 101); (2, 102); (3, 103); (4, 104); (5, 105); (6, 106) ]
    ~plan:
      [ Kput (3, 201); Kput (9, 202); Kput (4, 203); Kput (10, 204);
        Kput (3, 205); Kput (11, 206) ]
    ()

let scn_kv_delete () =
  scn_kv ~sname:"kv-delete"
    ~preload:
      [ (1, 111); (2, 112); (3, 113); (4, 114); (5, 115); (6, 116);
        (7, 117); (8, 118) ]
    ~plan:[ Kdel 2; Kdel 5; Kput (5, 222); Kdel 7; Kdel 99; Kdel 3; Kdel 5 ]
    ()

(* Cross-shard transactions through the 2PC coordinator-record
   protocol.  Key shard map for [shards:2]: keys 2, 3, 7, 8, 9, 10 and
   99 hash to shard 0; keys 1, 4, 5, 6 and 11 to shard 1 — asserted
   below so a hash change cannot silently de-fang the plan.  The plan
   crosses shards in every transaction and covers: a 2-put commit, a
   mixed delete+put commit with a two-op slot on one shard, a strict
   delete abort ([Tdel 99] — key absent, so the whole transaction must
   vanish), interleaved with single ops so the single-op intent slots
   and the participant slots coexist at crash points. *)
let kv_txn_plan () =
  let s0 k = assert (Service.Kv.shard_of ~shards:2 k = 0)
  and s1 k = assert (Service.Kv.shard_of ~shards:2 k = 1) in
  List.iter s0 [ 2; 3; 7; 9; 99 ];
  List.iter s1 [ 1; 4; 5; 6; 11 ];
  [ Ktxn
      [ Service.Kv.Tput { key = 3; vseed = 301 };
        Service.Kv.Tput { key = 4; vseed = 302 } ];
    Kput (9, 303);
    Ktxn
      [ Service.Kv.Tdel { key = 2 };
        Service.Kv.Tput { key = 11; vseed = 304 };
        Service.Kv.Tput { key = 7; vseed = 305 } ];
    Ktxn
      [ Service.Kv.Tput { key = 5; vseed = 306 };
        Service.Kv.Tdel { key = 99 } ];
    Kdel 6 ]

let kv_txn_preload =
  [ (1, 121); (2, 122); (3, 123); (4, 124); (5, 125); (6, 126) ]

let scn_kv_txn () =
  scn_kv ~sname:"kv-txn" ~slack:8192 ~preload:kv_txn_preload
    ~plan:(kv_txn_plan ()) ()

(* The seeded 2PC bug: the coordinator forgets to flush the decision
   record, so a crash between the participant applies can surface half
   a transaction.  The checker MUST find a counterexample here — the
   mutation gate in scripts/check.sh fails CI if it does not. *)
let scn_kv_txn_broken () =
  scn_kv ~sname:"kv-txn-broken" ~slack:8192
    ~tweak:Service.Kv.txn_break_decision_persist ~preload:kv_txn_preload
    ~plan:(kv_txn_plan ()) ()

(* MVCC read-path sweep: the kv-put/delete/txn op mix again, but on a
   store with a version window, and after every completed operation the
   driver mints a snapshot and audits it against the completed-prefix
   model — every key in the universe via [snapshot_get] and the whole
   keyspace via one multi-shard [snapshot_scan].  A stale, torn or
   phantom read is recorded as a violation and surfaces through the
   [snapshot-reads] oracle at every crash point past the offending op,
   naming that op.  Recovery is still checked by the standard prefix
   oracle: version chains are volatile DRAM, so a crash must leave the
   re-attached store indistinguishable from the no-MVCC sweeps. *)
let scn_kv_snapshot () =
  let preload =
    [ (1, 151); (2, 152); (3, 153); (4, 154); (5, 155); (6, 156) ]
  in
  let plan =
    [ Kput (3, 501); Kput (9, 502); Kdel 2;
      Ktxn
        [ Service.Kv.Tput { key = 5; vseed = 503 };
          Service.Kv.Tput { key = 7; vseed = 504 } ];
      Kput (3, 505); Kdel 5; Kput (10, 506) ]
  in
  let universe =
    List.sort_uniq compare
      (List.map fst preload
      @ List.concat_map
          (function
            | Kput (k, _) | Kdel k -> [ k ]
            | Ktxn ops -> List.map txn_op_key ops)
          plan)
  in
  let svc = ref None in
  let acked = ref 0 in
  let violations = ref [] in
  let setup () =
    let env = mk_env () in
    env.ledger.slack <- 8192;
    let inst = Poseidon.instance env.heap in
    let s = Service.Kv.create ~mvcc_window:4 inst ~shards:2 ~value_size:64 in
    List.iter
      (fun (k, vs) ->
        if not (Service.Kv.put s ~key:k ~vseed:vs) then
          failwith "kv-snapshot scenario: preload put failed")
      preload;
    svc := Some s;
    acked := 0;
    violations := [];
    env.ledger.durable <- (H.stats env.heap).H.live_bytes;
    finish_setup env
  in
  let op env =
    let s = Option.get !svc in
    let model = Hashtbl.create 32 in
    List.iter (fun (k, vs) -> Hashtbl.replace model k vs) preload;
    let cks vs = Service.Kv.value_checksum s ~vseed:vs in
    let audit i =
      let ts = Service.Kv.snapshot s in
      List.iter
        (fun k ->
          let got = Service.Kv.snapshot_get s ~ts ~key:k
          and want = Option.map cks (Hashtbl.find_opt model k) in
          if got <> want then
            violations :=
              Printf.sprintf
                "after op %d: snapshot_get key %d disagrees with the \
                 completed-prefix model"
                i k
              :: !violations)
        universe;
      let want_scan =
        Hashtbl.fold (fun k vs acc -> (k, cks vs) :: acc) model []
        |> List.sort compare
      and got_scan = ref [] in
      let n =
        Service.Kv.snapshot_scan s ~ts ~from_key:1 ~n:64 (fun k d ->
            got_scan := (k, d) :: !got_scan)
      in
      if List.rev !got_scan <> want_scan || n <> List.length want_scan then
        violations :=
          Printf.sprintf
            "after op %d: snapshot_scan visited %d entr(ies), model has %d, \
             or contents/order differ"
            i n (List.length want_scan)
          :: !violations
    in
    List.iteri
      (fun i o ->
        (match o with
         | Kput (k, vs) -> ignore (Service.Kv.put s ~key:k ~vseed:vs)
         | Kdel k -> ignore (Service.Kv.delete s ~key:k)
         | Ktxn ops -> ignore (Service.Kv.txn s ops));
        apply_kv model o;
        incr acked;
        env.ledger.durable <- (H.stats env.heap).H.live_bytes;
        audit i)
      plan
  in
  let o_snap =
    { oname = "snapshot-reads";
      check =
        (fun _env ->
          match List.rev !violations with
          | [] -> Ok ()
          | v :: _ ->
            Error
              (Printf.sprintf "%d stale/torn snapshot read(s), first: %s"
                 (List.length !violations)
                 v)) }
  in
  let o_kv = kv_prefix_oracle ~oname:"kv-store" ~preload ~plan ~acked () in
  { sname = "kv-snapshot"; setup; op; extra_oracles = [ o_snap; o_kv ] }

(* The seeded MVCC bug: {!Service.Kv.mvcc_break_early_publish} makes a
   staged [txn_prepare] publish the transaction's versions before any
   decision record exists.  The driver stages prepare → observes a
   snapshot → decides → applies; the observation between prepare and
   decide reads values no committed history contains, so the
   [snapshot-reads] oracle must produce counterexamples — the mutation
   gate in scripts/check.sh fails CI when the checker stays green. *)
let scn_mvcc_broken () =
  let preload = [ (3, 161); (4, 162); (5, 163) ] in
  let plan =
    [ Ktxn
        [ Service.Kv.Tput { key = 3; vseed = 601 };
          Service.Kv.Tput { key = 4; vseed = 602 } ];
      Ktxn
        [ Service.Kv.Tput { key = 5; vseed = 603 };
          Service.Kv.Tput { key = 7; vseed = 604 } ] ]
  in
  let svc = ref None in
  let acked = ref 0 in
  let violations = ref [] in
  let setup () =
    let env = mk_env () in
    env.ledger.slack <- 8192;
    let inst = Poseidon.instance env.heap in
    let s = Service.Kv.create ~mvcc_window:4 inst ~shards:2 ~value_size:64 in
    List.iter
      (fun (k, vs) ->
        if not (Service.Kv.put s ~key:k ~vseed:vs) then
          failwith "mvcc-broken scenario: preload put failed")
      preload;
    Service.Kv.mvcc_break_early_publish s;
    svc := Some s;
    acked := 0;
    violations := [];
    env.ledger.durable <- (H.stats env.heap).H.live_bytes;
    finish_setup env
  in
  let op env =
    let s = Option.get !svc in
    let model = Hashtbl.create 32 in
    List.iter (fun (k, vs) -> Hashtbl.replace model k vs) preload;
    let cks vs = Service.Kv.value_checksum s ~vseed:vs in
    List.iteri
      (fun i o ->
        let ops = match o with Ktxn ops -> ops | _ -> assert false in
        (match Service.Kv.txn_prepare s ops with
         | Error _ -> failwith "mvcc-broken scenario: prepare aborted"
         | Ok txn ->
           (* the transaction is prepared but undecided: no snapshot may
              see its writes yet — with the bug armed, it does *)
           let ts = Service.Kv.snapshot s in
           List.iter
             (fun top ->
               let k = txn_op_key top in
               let got = Service.Kv.snapshot_get s ~ts ~key:k
               and want = Option.map cks (Hashtbl.find_opt model k) in
               if got <> want then
                 violations :=
                   Printf.sprintf
                     "txn %d: snapshot observed undecided write to key %d"
                     i k
                   :: !violations)
             ops;
           Service.Kv.txn_decide s ~txn;
           Service.Kv.txn_apply s ~txn);
        apply_kv model o;
        incr acked;
        env.ledger.durable <- (H.stats env.heap).H.live_bytes)
      plan
  in
  let o_snap =
    { oname = "snapshot-reads";
      check =
        (fun _env ->
          match List.rev !violations with
          | [] -> Ok ()
          | v :: _ ->
            Error
              (Printf.sprintf "%d uncommitted-read violation(s), first: %s"
                 (List.length !violations)
                 v)) }
  in
  { sname = "mvcc-broken"; setup; op; extra_oracles = [ o_snap ] }

(* DRAM read-cache sweep: the kv-snapshot op mix on a store with both a
   version window and a read cache ([rcache_entries:4] per shard —
   smaller than the plan's per-shard keyspace, so the audits force CLOCK
   evictions).  After every completed operation the driver audits the
   completed-prefix model twice: every key in the universe through the
   cached plain-[get] path (the first audit after a mutation reads
   through and re-fills; the cache must never answer with a digest the
   store no longer holds) and again through a fresh snapshot, which may
   answer from the cache only when the cached version's timestamp admits
   it.  A stale cached digest is recorded as a violation and surfaces
   through the [cached-reads] oracle at every crash point past the
   offending op.  Recovery is still checked by the standard prefix
   oracle: the cache is volatile DRAM, so a crash must leave the
   re-attached store indistinguishable from the uncached sweeps. *)
let scn_kv_rcache ?(break = false) ~sname () =
  let preload =
    [ (1, 171); (2, 172); (3, 173); (4, 174); (5, 175); (6, 176) ]
  in
  let plan =
    [ Kput (3, 701); Kput (9, 702); Kdel 2;
      Ktxn
        [ Service.Kv.Tput { key = 5; vseed = 703 };
          Service.Kv.Tput { key = 7; vseed = 704 } ];
      Kput (3, 705); Kdel 5; Kput (10, 706); Kput (9, 707) ]
  in
  let universe =
    List.sort_uniq compare
      (List.map fst preload
      @ List.concat_map
          (function
            | Kput (k, _) | Kdel k -> [ k ]
            | Ktxn ops -> List.map txn_op_key ops)
          plan)
  in
  let svc = ref None in
  let acked = ref 0 in
  let violations = ref [] in
  let setup () =
    let env = mk_env () in
    env.ledger.slack <- 8192;
    let inst = Poseidon.instance env.heap in
    let s =
      Service.Kv.create ~mvcc_window:4 ~rcache_entries:4 inst ~shards:2
        ~value_size:64
    in
    List.iter
      (fun (k, vs) ->
        if not (Service.Kv.put s ~key:k ~vseed:vs) then
          failwith "kv-rcache scenario: preload put failed")
      preload;
    if break then Service.Kv.rcache_break_late_invalidate s;
    svc := Some s;
    acked := 0;
    violations := [];
    env.ledger.durable <- (H.stats env.heap).H.live_bytes;
    finish_setup env
  in
  let op env =
    let s = Option.get !svc in
    let model = Hashtbl.create 32 in
    List.iter (fun (k, vs) -> Hashtbl.replace model k vs) preload;
    let cks vs = Service.Kv.value_checksum s ~vseed:vs in
    let audit i =
      List.iter
        (fun k ->
          let got = Service.Kv.get s ~key:k
          and want = Option.map cks (Hashtbl.find_opt model k) in
          if got <> want then
            violations :=
              Printf.sprintf
                "after op %d: cached get of key %d disagrees with the \
                 completed-prefix model"
                i k
              :: !violations)
        universe;
      let ts = Service.Kv.snapshot s in
      List.iter
        (fun k ->
          let got = Service.Kv.snapshot_get s ~ts ~key:k
          and want = Option.map cks (Hashtbl.find_opt model k) in
          if got <> want then
            violations :=
              Printf.sprintf
                "after op %d: snapshot_get of key %d disagrees with the \
                 completed-prefix model (cache admitted a wrong version)"
                i k
              :: !violations)
        universe
    in
    List.iteri
      (fun i o ->
        (match o with
         | Kput (k, vs) -> ignore (Service.Kv.put s ~key:k ~vseed:vs)
         | Kdel k -> ignore (Service.Kv.delete s ~key:k)
         | Ktxn ops -> ignore (Service.Kv.txn s ops));
        apply_kv model o;
        incr acked;
        env.ledger.durable <- (H.stats env.heap).H.live_bytes;
        audit i)
      plan
  in
  let o_rcache =
    { oname = "cached-reads";
      check =
        (fun _env ->
          match List.rev !violations with
          | [] -> Ok ()
          | v :: _ ->
            Error
              (Printf.sprintf "%d stale cached read(s), first: %s"
                 (List.length !violations)
                 v)) }
  in
  let o_kv = kv_prefix_oracle ~oname:"kv-store" ~preload ~plan ~acked () in
  { sname; setup; op; extra_oracles = [ o_rcache; o_kv ] }

let scn_kv_rcache_put () = scn_kv_rcache ~sname:"kv-rcache-put" ()

(* The seeded cache bug: {!Service.Kv.rcache_break_late_invalidate}
   defers every invalidation until the NEXT mutation starts, so between
   a mutation's return and the following one the cache still serves the
   overwritten (or deleted) digest.  The audits between ops read exactly
   that window, so the [cached-reads] oracle must produce
   counterexamples — the mutation gate in scripts/check.sh fails CI when
   the checker stays green. *)
let scn_rcache_broken () = scn_kv_rcache ~break:true ~sname:"rcache-broken" ()

(* Sweep the full sync-replication pipeline: primary local persist →
   ship over the link → backup apply/persist → cumulative ack.  Two
   machines (two devices — the primary's rides in [aux_devs], so its
   fences interleave into the same point space), one {!Cluster.Link},
   the real {!Replica} shipper/applier.  The whole cluster loses power
   at each point; recovery attaches the BACKUP ([env.mach]) — primary
   loss is the failure replication exists for — and the oracle asserts
   the backup store equals the acked prefix: any write acked in sync
   mode survives the primary's death, and the in-flight record is
   atomic (pre- or post-state, never torn). *)
let scn_kv_replicated_put () =
  let preload = [ (1, 131); (2, 132); (3, 133); (4, 134) ] in
  let plan =
    [ Kput (3, 301);
      Kput (9, 302);
      Kdel 2;
      (* a committed cross-shard transaction rides the same streams as
         a Txn_prepare + Txn_decide pair per participant shard *)
      Ktxn
        [ Service.Kv.Tput { key = 5; vseed = 304 };
          Service.Kv.Tput { key = 7; vseed = 305 } ];
      Kput (10, 303) ]
  in
  let state = ref None in
  let acked = ref 0 in
  let setup () =
    (* backup first: it is the env the sweep recovers and checks *)
    let env = mk_env () in
    env.ledger.slack <- 4096;
    let svc_b =
      Service.Kv.create (Poseidon.instance env.heap) ~shards:2 ~value_size:64
    in
    let penv = mk_env () in
    let svc_p =
      Service.Kv.create (Poseidon.instance penv.heap) ~shards:2 ~value_size:64
    in
    List.iter
      (fun (k, vs) ->
        if
          not
            (Service.Kv.put svc_p ~key:k ~vseed:vs
            && Service.Kv.put svc_b ~key:k ~vseed:vs)
        then failwith "kv-replicated scenario: preload put failed")
      preload;
    let link = Cluster.Link.create () in
    let rcfg = { Replica.default_config with Replica.window = 8 } in
    let shipper = Replica.Shipper.create rcfg ~shards:2 ~link in
    let applier =
      Replica.Applier.create rcfg ~shards:2 ~link
        ~apply:(fun ~shard op -> Service.Txn.apply_replicated svc_b ~shard op)
    in
    state := Some (svc_p, shipper, applier, link);
    acked := 0;
    env.aux_devs <- [ Machine.dev penv.mach ];
    Memdev.drain (Machine.dev penv.mach);
    env.ledger.durable <- (H.stats env.heap).H.live_bytes;
    finish_setup env
  in
  let op env =
    let svc_p, shipper, applier, link = Option.get !state in
    (* 3. backup applies + persists; 4. wait for every record's ack *)
    let pump_until_acked seqs =
      Replica.Applier.pump applier ~until:(fun () ->
          Cluster.Link.pending link ~ep:Replica.backup_ep = 0);
      List.iter
        (fun (shard, seq) ->
          if
            not (Replica.Shipper.wait_acked shipper ~shard ~seq ~deadline:0)
          then failwith "kv-replicated scenario: sync ack lost on clean run")
        seqs
    in
    List.iter
      (fun o ->
        (* 1. primary local persist; 2. ship *)
        (match o with
         | Kput (k, vs) ->
           ignore (Service.Kv.put svc_p ~key:k ~vseed:vs);
           let shard = Service.Kv.shard_of_key svc_p k in
           let seq =
             Replica.Shipper.ship shipper ~shard
               (Replica.Put { key = k; vseed = vs })
           in
           pump_until_acked [ (shard, seq) ]
         | Kdel k ->
           ignore (Service.Kv.delete svc_p ~key:k);
           let shard = Service.Kv.shard_of_key svc_p k in
           let seq =
             Replica.Shipper.ship shipper ~shard (Replica.Del { key = k })
           in
           pump_until_acked [ (shard, seq) ]
         | Ktxn ops ->
           let seqs = ref [] in
           ignore
             (Service.Kv.txn svc_p ops ~on_commit:(fun res ->
                  let nparts = List.length res.Service.Kv.participants in
                  List.iter
                    (fun (s, sops) ->
                      ignore
                        (Replica.Shipper.ship shipper ~shard:s
                           (Replica.Txn_prepare
                              { txn = res.Service.Kv.txn_id; ops = sops }));
                      let q =
                        Replica.Shipper.ship shipper ~shard:s
                          (Replica.Txn_decide
                             { txn = res.Service.Kv.txn_id; commit = true;
                               nparts })
                      in
                      seqs := (s, q) :: !seqs)
                    res.Service.Kv.participants));
           pump_until_acked !seqs);
        incr acked;
        env.ledger.durable <- (H.stats env.heap).H.live_bytes)
      plan
  in
  let o_kv = kv_prefix_oracle ~oname:"kv-replica" ~preload ~plan ~acked () in
  { sname = "kv-replicated-put"; setup; op; extra_oracles = [ o_kv ] }

(* Sweep the batched pipeline end to end: queue → group commit (one
   covering persist chain per chunk) → doorbell-batched ship (one
   frame per chunk) → batched cumulative ack.  Same two-machine,
   correlated-crash setup as [scn_kv_replicated_put]; [acked] advances
   a whole group at a time, only after the group's covering flush is
   acked, so the windowed prefix oracle asserts the loss bound: a
   crash mid-group loses at most the unacked window, never an acked
   op.  [premature_ack] is the seeded bug for the mutation gate: the
   driver claims the group durable BEFORE executing/flushing it —
   acks ahead of the covering flush — which the checker must flag. *)
let scn_kv_batched ?(window = 4) ?(premature_ack = false) ~sname () =
  (* all keys on shard 0 of 2 (asserted below): a commit group is a
     single-shard run by construction, mirroring the server's
     per-shard inbox *)
  let preload = [ (2, 141); (3, 142); (7, 143); (8, 144) ] in
  let plan =
    [ Kput (3, 401); Kput (9, 402); Kdel 2; Kput (10, 403); Kput (3, 404);
      Kdel 99; Kput (2, 405); Kdel 8; Kput (7, 406); Kput (99, 407) ]
  in
  List.iter
    (fun o ->
      let k = match o with Kput (k, _) | Kdel k -> k | Ktxn _ -> assert false in
      assert (Service.Kv.shard_of ~shards:2 k = 0))
    plan;
  let state = ref None in
  let acked = ref 0 in
  let setup () =
    let env = mk_env () in
    env.ledger.slack <- 4096 + (1024 * window);
    let svc_b =
      Service.Kv.create (Poseidon.instance env.heap) ~shards:2 ~value_size:64
    in
    let penv = mk_env () in
    let svc_p =
      Service.Kv.create (Poseidon.instance penv.heap) ~shards:2 ~value_size:64
    in
    List.iter
      (fun (k, vs) ->
        if
          not
            (Service.Kv.put svc_p ~key:k ~vseed:vs
            && Service.Kv.put svc_b ~key:k ~vseed:vs)
        then failwith "kv-batched scenario: preload put failed")
      preload;
    let link = Cluster.Link.create () in
    let rcfg = { Replica.default_config with Replica.window = 32 } in
    let shipper = Replica.Shipper.create rcfg ~shards:2 ~link in
    let applier =
      Replica.Applier.create rcfg ~shards:2 ~link ~ack_batch:true
        ~apply:(fun ~shard op -> Service.Txn.apply_replicated svc_b ~shard op)
        ~apply_group:(fun ~shard ops ->
          Service.Txn.apply_replicated_group svc_b ~shard ops)
    in
    state := Some (svc_p, shipper, applier, link);
    acked := 0;
    env.aux_devs <- [ Machine.dev penv.mach ];
    Memdev.drain (Machine.dev penv.mach);
    env.ledger.durable <- (H.stats env.heap).H.live_bytes;
    finish_setup env
  in
  let op env =
    let svc_p, shipper, applier, link = Option.get !state in
    let rec groups = function
      | [] -> []
      | ops ->
        let rec take n = function
          | o :: rest when n > 0 ->
            let g, rest' = take (n - 1) rest in
            (o :: g, rest')
          | rest -> ([], rest)
        in
        let g, rest = take window ops in
        g :: groups rest
    in
    List.iter
      (fun gops ->
        if premature_ack then acked := !acked + List.length gops;
        let last = ref (-1) in
        let kv_ops =
          List.map
            (function
              | Kput (k, vs) -> Service.Kv.Tput { key = k; vseed = vs }
              | Kdel k -> Service.Kv.Tdel { key = k }
              | Ktxn _ -> assert false)
            gops
        in
        ignore
          (Service.Kv.group_commit svc_p ~shard:0 kv_ops
             ~on_chunk:(fun ~fin:_ cops ->
               List.iter
                 (fun op ->
                   let rop =
                     match op with
                     | Service.Kv.Tput { key; vseed } ->
                       Replica.Put { key; vseed }
                     | Service.Kv.Tdel { key } -> Replica.Del { key }
                   in
                   last := Replica.Shipper.ship_buffered shipper ~shard:0 rop)
                 cops;
               ignore (Replica.Shipper.flush shipper)));
        if !last >= 0 then begin
          Replica.Applier.pump applier ~until:(fun () ->
              Cluster.Link.pending link ~ep:Replica.backup_ep = 0);
          if
            not
              (Replica.Shipper.wait_acked shipper ~shard:0 ~seq:!last
                 ~deadline:0)
          then failwith "kv-batched scenario: ack lost on clean run"
        end;
        if not premature_ack then acked := !acked + List.length gops;
        env.ledger.durable <- (H.stats env.heap).H.live_bytes)
      (groups plan)
  in
  let o_kv =
    kv_prefix_oracle ~window ~oname:"kv-batched" ~preload ~plan ~acked ()
  in
  { sname; setup; op; extra_oracles = [ o_kv ] }

let scn_kv_batched_put ?window ?premature_ack () =
  scn_kv_batched ?window ?premature_ack ~sname:"kv-batched-put" ()

let scn_kv_batched_broken () =
  scn_kv_batched ~premature_ack:true ~sname:"kv-batched-broken" ()

(* ---------- magazine-cache sweep (lib/tcache) ---------- *)

(* Allocator-level census for the cached-allocation sweeps: after heap
   recovery (which frees every ledger-leased block) AND service replay
   (which resolves the in-flight intent), every live block of the
   value class must be referenced by exactly one present key — the
   recovered store itself is the reference model, so the oracle holds
   at every crash point regardless of where the sweep cut.  A cache
   that recycles a freed block before its reclaim lease persisted
   orphans a value block here (block count > present keys): the
   failure mode the [tcache-broken] scenario plants. *)
let kv_value_census_oracle ~value_size ~universe () =
  { oname = "value-census";
    check =
      (fun env ->
        let inst = Poseidon.instance env.heap in
        match Service.Kv.attach inst with
        | exception e ->
          Error ("service recovery raised: " ^ Printexc.to_string e)
        | s2, _recovery ->
          let present =
            List.fold_left
              (fun a k -> if Service.Kv.get s2 ~key:k <> None then a + 1 else a)
              0 universe
          in
          let rsize = round_up value_size in
          let blocks = ref 0 in
          H.iter_subheaps env.heap (fun sh ->
              Poseidon.Subheap.iter_blocks sh
                (fun ~off:_ ~size ~rec_addr:_ ~status ->
                  if status = Poseidon.Layout.st_alloc && size = rsize then
                    incr blocks));
          if !blocks = present then Ok ()
          else
            Error
              (Printf.sprintf
                 "%d live %d-byte value block(s) for %d present key(s): a \
                  freed block was recycled before its reclaim persisted \
                  (leak), or a refilled block leaked its lease"
                 !blocks rsize present)) }

(* The kv-put/delete/overwrite mix again, allocated through a magazine
   cache (mag 4): refills carve 4-block batches under ledger leases,
   puts pop volatile bins and publish at the commit fence, frees stash
   a reclaim lease and recycle.  Slack widened: the durability ledger
   snapshots [live_bytes] with bins resident (leased blocks are live
   until crash recovery frees them), so up to 2 x mag blocks of each
   cached class (64 B values, 512 B tree nodes) plus one in-flight
   carve sit between the snapshot and the recovered heap. *)
let tcache_preload =
  [ (1, 161); (2, 162); (3, 163); (4, 164); (5, 165); (6, 166) ]

let tcache_plan =
  [ Kput (3, 601); Kput (9, 602); Kdel 2; Kput (10, 603); Kput (3, 604);
    Kdel 5; Kput (11, 605); Kput (9, 606) ]

let scn_kv_tcache ?(break = false) ~sname () =
  let universe = Hashtbl.create 32 in
  List.iter (fun (k, _) -> Hashtbl.replace universe k ()) tcache_preload;
  List.iter
    (function
      | Kput (k, _) | Kdel k -> Hashtbl.replace universe k ()
      | Ktxn ops ->
        List.iter (fun o -> Hashtbl.replace universe (txn_op_key o) ()) ops)
    tcache_plan;
  let universe = Hashtbl.fold (fun k () a -> k :: a) universe [] in
  scn_kv ~sname ~slack:12288
    ~wrap:(fun inst ->
      let wrapped, h = Tcache.wrap ~mag:4 inst in
      if break then Tcache.break_recycle h;
      wrapped)
    ~extra:[ kv_value_census_oracle ~value_size:64 ~universe () ]
    ~preload:tcache_preload ~plan:tcache_plan ()

let scn_kv_tcache_put () = scn_kv_tcache ~sname:"kv-tcache-put" ()

(* The seeded cache bug: frees recycle into the bins with no reclaim
   lease and no persistent free.  The checker MUST flag this — the
   mutation gate in scripts/check.sh fails CI if it does not. *)
let scn_kv_tcache_broken () =
  scn_kv_tcache ~break:true ~sname:"tcache-broken" ()

let all_scenarios () =
  [ scn_alloc (); scn_free (); scn_tx_commit (); scn_tx_abort ();
    scn_extend (); scn_kv_put (); scn_kv_delete (); scn_kv_txn ();
    scn_kv_snapshot (); scn_kv_rcache_put (); scn_kv_replicated_put ();
    scn_kv_batched_put (); scn_kv_tcache_put () ]

let scenario_by_name = function
  | "alloc" -> Some (scn_alloc ())
  | "free" -> Some (scn_free ())
  | "tx-commit" -> Some (scn_tx_commit ())
  | "tx-abort" -> Some (scn_tx_abort ())
  | "extend" -> Some (scn_extend ())
  | "kv-put" -> Some (scn_kv_put ())
  | "kv-delete" -> Some (scn_kv_delete ())
  | "kv-txn" -> Some (scn_kv_txn ())
  | "kv-txn-broken" -> Some (scn_kv_txn_broken ())
  | "kv-snapshot" -> Some (scn_kv_snapshot ())
  | "mvcc-broken" -> Some (scn_mvcc_broken ())
  | "kv-rcache-put" -> Some (scn_kv_rcache_put ())
  | "rcache-broken" -> Some (scn_rcache_broken ())
  | "kv-replicated-put" -> Some (scn_kv_replicated_put ())
  | "kv-batched-put" -> Some (scn_kv_batched_put ())
  | "kv-batched-broken" -> Some (scn_kv_batched_broken ())
  | "kv-tcache-put" -> Some (scn_kv_tcache_put ())
  | "tcache-broken" -> Some (scn_kv_tcache_broken ())
  | "broken" -> Some (scn_broken_missing_flush ())
  | _ -> None
