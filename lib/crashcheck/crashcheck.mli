(** Deterministic persistency model checker (paper §5.8 validation).

    Random crash sampling ([bin stress], [test_crash.ml]) covers a
    vanishing fraction of the crash-instant space; ordering bugs (a
    forgotten [clwb], a fence on the wrong side of a commit point)
    hide in the instants it never draws.  This checker instead
    {e enumerates} the space exactly:

    - every mutation between two [sfence]s is volatile, so distinct
      crash instants collapse onto persistence points — the fence
      boundaries.  Driving the operation under
      {!Nvmm.Memdev.set_persistence_hook} and cutting execution at
      fence [k] covers every crash instant in [(fence k, fence k+1)];
    - at each point the checker crashes the device in
      {!mode}[ Dirty_lost_all] (no unfenced line survives — the
      deterministic worst case) and in [Dirty_subset] modes (a seeded
      adversarial subset of the unflushed dirty lines persists first,
      modelling cache evictions), then re-attaches, runs recovery and
      validates every oracle against the scenario's ledger.

    Every verdict is replayable: a counterexample names the scenario,
    the crash-point index and the dirty-subset seed, which
    {!check_point} (or [bin/main.exe crashcheck --point N]) replays
    deterministically — with [--trace-out] for an event-trace dump of
    the failing execution. *)

type mode =
  | Dirty_lost_all
      (** every unfenced line is lost — {!Nvmm.Memdev.crash} [`Strict] *)
  | Dirty_subset of int
      (** a seeded adversarial subset of unflushed dirty lines
          persists — [`Adversarial] with a PRNG built from the seed *)

val mode_to_string : mode -> string

(** {2 Scenarios}

    A scenario owns a fresh machine + heap per exploration run:
    [setup] builds and pre-populates it (ending fully drained, so the
    baseline is durable), [op] is the operation sequence whose crash
    space is explored.  [op] updates the {!ledger} as each API call
    {e returns}, giving the oracles a durable lower bound; anything
    the single in-flight call may add or remove is bounded by
    [slack]. *)

type ledger = {
  mutable durable : int;
      (** bytes the completed prefix of [op] has durably live *)
  mutable slack : int;
      (** max bytes the one in-flight call can add or remove *)
}

type env = {
  mach : Machine.t;
  base : int;
  mutable heap : Poseidon.Heap.t;
      (** replaced by the recovered heap after crash + attach *)
  ledger : ledger;
  mutable aux_devs : Nvmm.Memdev.t list;
      (** devices of {e other} machines a multi-machine scenario
          involves (e.g. the replication primary).  Their fences count
          into the same persistence-point space, and {!check_point}
          crashes them at the same instant as [mach]'s device — a
          correlated cluster-wide power loss.  Empty for the
          single-machine scenarios. *)
}

type oracle = {
  oname : string;
  check : env -> (unit, string) result;
      (** runs on the recovered heap; [Error] describes the violation *)
}

type scenario = {
  sname : string;
  setup : unit -> env;
  op : env -> unit;
  extra_oracles : oracle list;
      (** scenario-specific oracles, run after {!standard_oracles} *)
}

(** {2 Oracles} *)

val o_invariants : oracle
(** {!Poseidon.Heap.check_invariants} holds on the recovered heap. *)

val o_fsck : oracle
(** {!Poseidon.Fsck.run} reports a clean heap. *)

val o_quiescent : oracle
(** Recovery left every undo and micro log empty
    ({!Poseidon.Heap.logs_quiescent}). *)

val o_accounting : oracle
(** No leaked or double-owned blocks: every sub-heap's live + free
    bytes exactly tile its data region. *)

val o_durability : oracle
(** Durability/atomicity: recovered live bytes lie within
    [ledger.durable ± ledger.slack] — committed operations (including
    committed transactions) are fully visible, uncommitted
    transactions fully rolled back, with at most one in-flight call of
    ambiguous fate. *)

val standard_oracles : oracle list
(** The five oracles above, in order. *)

(** {2 Checking} *)

type counterexample = {
  cx_scenario : string;
  cx_point : int;  (** crash after fence [cx_point] of [op] *)
  cx_mode : mode;
  cx_oracle : string;
  cx_detail : string;
}

type report = {
  rp_scenario : string;
  fences_total : int;  (** fences in one uninterrupted run of [op] *)
  points_explored : int;
  subsets_tried : int;
  recoveries_verified : int;  (** crash+recover runs with every oracle green *)
  counterexamples : counterexample list;
}

val measure : scenario -> int
(** Dry run: the number of fences [op] executes uninterrupted. *)

val subset_seed : seed:int -> point:int -> int -> int
(** The PRNG seed the checker derives for adversarial subset [s] at
    [point] under base [seed] — exposed so counterexamples replay. *)

val check_point : scenario -> point:int -> mode:mode -> counterexample option
(** Replays a single crash: run [op] to persistence point [point]
    (or to completion if [point] exceeds the fence count), crash in
    [mode], recover, run the oracles.  [None] = all green. *)

val run :
  ?max_points:int ->
  ?subsets_per_point:int ->
  ?seed:int ->
  scenario ->
  report
(** Full exploration.  Enumerates points [1 .. measure + 1] (the last
    is a crash after [op] completed); each point is checked in
    [Dirty_lost_all] plus [subsets_per_point] seeded [Dirty_subset]
    modes (default 2).  [max_points > 0] budget-caps the sweep to an
    evenly-strided sample (default [0]: exhaustive).  Deterministic in
    [seed].  Obs counters under scope ["crashcheck"]:
    [points_explored], [subsets_tried], [recoveries_verified],
    [counterexamples]. *)

val pp_counterexample : Format.formatter -> counterexample -> unit
val pp_report : Format.formatter -> report -> unit

(** {2 Built-in scenarios}

    Operation paths over a deliberately small heap (one CPU, 64 KiB of
    sub-heap data) so exhaustive enumeration stays cheap, plus a
    deliberately broken protocol for mutation sanity checks.  The KV
    scenarios drive the {!Service.Kv} intent protocol; the replicated
    one adds a second machine and the {!Replica} shipping pipeline. *)

val scn_alloc : unit -> scenario
(** Mixed-size singleton allocations (split paths included). *)

val scn_free : unit -> scenario
(** Frees of a pre-populated heap (merge/defrag paths included). *)

val scn_tx_commit : unit -> scenario
(** Two multi-allocation transactions committed via [is_end]. *)

val scn_tx_abort : unit -> scenario
(** A multi-allocation transaction explicitly aborted. *)

val scn_extend : unit -> scenario
(** Tiny allocations against a tiny hash level 0, forcing sub-heap
    hash-table extension (§5.2 growth path). *)

val scn_kv_put : unit -> scenario
(** KV puts (inserts + overwrites) through the intent protocol; the
    recovered store must equal the acked prefix of the plan, with the
    one in-flight put atomic. *)

val scn_kv_delete : unit -> scenario
(** KV deletes (present, absent and re-inserted keys) under the same
    acked-prefix oracle. *)

val scn_kv_txn : unit -> scenario
(** Cross-shard transactions through the 2PC coordinator-record
    protocol ({!Service.Txn}), interleaved with single ops: 2-put and
    delete+put commits spanning both shards, a strict-delete abort.
    The acked-prefix oracle is transaction-aware — the in-flight
    operation must read all-pre or all-post across {e every} key it
    touches, so a commit half-applied across shards at any fence is a
    counterexample. *)

val scn_kv_txn_broken : unit -> scenario
(** The same plan with {!Service.Kv.txn_break_decision_persist} armed:
    the coordinator forgets to flush the decision record.  The checker
    {e must} report counterexamples (a crash between the participant
    applies surfaces half a transaction) — the mutation gate in
    [scripts/check.sh] fails CI when it does not.  Excluded from
    {!all_scenarios}, like [broken]. *)

val scn_kv_snapshot : unit -> scenario
(** The kv op mix on a store with an MVCC version window: after every
    completed operation the driver audits a freshly minted snapshot —
    [snapshot_get] over the key universe plus one multi-shard
    [snapshot_scan] — against the completed-prefix model, and any
    stale, torn or phantom read is a [snapshot-reads] counterexample.
    Recovery keeps the standard acked-prefix oracle: version chains
    are volatile, so the re-attached store must be indistinguishable
    from the no-MVCC sweeps. *)

val scn_mvcc_broken : unit -> scenario
(** Mutation sanity check for the MVCC layer:
    {!Service.Kv.mvcc_break_early_publish} makes a staged prepare
    publish versions before any decision exists, so a snapshot taken
    between prepare and decide observes an undecided write.  The
    checker MUST flag it; excluded from {!all_scenarios}. *)

val scn_kv_rcache_put : unit -> scenario
(** The kv-snapshot op mix on a store with both an MVCC window and a
    DRAM read cache ([rcache_entries:4] per shard — smaller than the
    per-shard keyspace, so the audits force CLOCK evictions).  After
    every completed op the driver audits the completed-prefix model
    through the cached plain-[get] path {e and} through a fresh
    snapshot; a stale cached digest is a [cached-reads]
    counterexample.  Recovery keeps the standard acked-prefix oracle:
    the cache is volatile, so the re-attached store must be
    indistinguishable from the uncached sweeps. *)

val scn_rcache_broken : unit -> scenario
(** Mutation sanity check for the read cache
    ({!Service.Kv.rcache_break_late_invalidate}): invalidations are
    deferred until the {e next} mutation starts, so between a
    mutation's reply and the following op the cache still serves the
    overwritten digest.  The [cached-reads] oracle MUST flag it;
    excluded from {!all_scenarios}. *)

val scn_kv_replicated_put : unit -> scenario
(** Sync replication over a two-machine cluster: each op persists on
    the primary, ships over a {!Cluster.Link}, is applied/persisted on
    the backup and cumulatively acked — and the sweep crashes the
    whole cluster at every fence of that pipeline (both devices' fence
    streams share one point space via [aux_devs]).  Recovery attaches
    the {e backup}; the oracle asserts every sync-acked write is
    readable there after primary loss. *)

val scn_kv_batched_put : ?window:int -> ?premature_ack:bool -> unit -> scenario
(** The batched pipeline end to end: queued mutations drain in groups
    of [window] (default 4) through {!Service.Kv.group_commit} (one
    covering persist chain per chunk), ship as one doorbell frame per
    chunk ({!Replica.Shipper.ship_buffered} + [flush]) and are acked
    cumulatively by a batched applier.  Same correlated cluster-wide
    crash as [kv-replicated-put]; the oracle is the {e windowed}
    prefix rule — the recovered backup must equal the plan prefix at
    some length in [acked, acked + window], i.e. a crash mid-batch
    loses at most the unacked window and never an acked op.
    [premature_ack] (default false) arms the seeded bug below. *)

val scn_kv_batched_broken : unit -> scenario
(** Mutation sanity check for the batching layer: the driver claims a
    group durable {e before} its covering flush is acked — exactly the
    "ack before fence" bug group commit must not introduce.  The
    checker MUST flag it; excluded from {!all_scenarios}. *)

val scn_kv_tcache_put : unit -> scenario
(** The kv-put/delete/overwrite mix allocated through a {!Tcache}
    magazine cache (mag 4): bin-miss refills carve 4-block batches
    under reclaim-ledger leases, puts pop volatile bins and publish
    the lease at the commit fence, frees write a reclaim lease then
    recycle.  On top of the standard and prefix oracles, a
    [value-census] oracle re-attaches the service and demands the
    recovered heap hold exactly one live value-class block per present
    key — leased bin residue must have been freed by recovery, and no
    recycled block may leak. *)

val scn_kv_tcache_broken : unit -> scenario
(** Mutation sanity check for the cache layer
    ({!Tcache.break_recycle}): frees recycle into the bins with no
    reclaim lease and no persistent free, so a crash orphans every
    block whose store reference was dropped.  The census oracle MUST
    flag it; excluded from {!all_scenarios}. *)

val scn_broken_missing_flush : unit -> scenario
(** Mutation sanity check: a two-line "write data, persist commit
    flag" protocol that {e forgets the clwb on the data line}.  Its
    extra oracle demands data be intact whenever the flag persisted;
    the checker must report a counterexample at the flag's fence. *)

val all_scenarios : unit -> scenario list
(** Every correct scenario (not the broken one). *)

val scenario_by_name : string -> scenario option
(** ["alloc" | "free" | "tx-commit" | "tx-abort" | "extend" |
    "kv-put" | "kv-delete" | "kv-txn" | "kv-txn-broken" |
    "kv-snapshot" | "mvcc-broken" | "kv-rcache-put" | "rcache-broken" |
    "kv-replicated-put" | "kv-batched-put" | "kv-batched-broken" |
    "kv-tcache-put" | "tcache-broken" | "broken"]. *)
