(** Makalu-like baseline allocator — public entry point.

    From-scratch re-implementation of the Makalu design the paper
    compares against (thread-local free lists + global reclaim list,
    global chunk list above 400 B, GC-based recovery instead of
    logging).  See [Heap] and DESIGN.md. *)

module Layout = Layout
module Heap = Heap

type heap = Heap.t

let allocator_name = "Makalu"

let to_ptr (h : heap) raw : Alloc_intf.nvmptr =
  { Alloc_intf.heap_id = Heap.heap_id h; subheap = 0; off = raw - h.Heap.base }

let of_ptr (h : heap) (p : Alloc_intf.nvmptr) =
  if Alloc_intf.is_null p then invalid_arg "Makalu_sim: null pointer";
  if p.Alloc_intf.heap_id <> Heap.heap_id h || p.Alloc_intf.subheap <> 0 then
    invalid_arg "Makalu_sim: foreign pointer";
  h.Heap.base + p.Alloc_intf.off

let create mach ~base ~size ~heap_id = Heap.create mach ~base ~size ~heap_id
let attach mach ~base = Heap.attach mach ~base
let finish = Heap.finish

let alloc h size = Option.map (to_ptr h) (Heap.alloc h size)
let tx_alloc h size ~is_end = Option.map (to_ptr h) (Heap.tx_alloc h size ~is_end)
let tx_commit = Heap.tx_commit
let free h p = Heap.free h (of_ptr h p)

let get_rawptr = of_ptr
let get_nvmptr = to_ptr

let get_root h =
  Alloc_intf.unpack ~heap_id:(Heap.heap_id h) (Heap.get_root_packed h)

let set_root h p = Heap.set_root_packed h (Alloc_intf.pack p)

let machine = Heap.machine
let cache_ops _ = None

let instance heap =
  Alloc_intf.Instance
    ( (module struct
        type nonrec heap = heap

        let allocator_name = allocator_name
        let create = create
        let attach = attach
        let finish = finish
        let alloc = alloc
        let tx_alloc = tx_alloc
        let tx_commit = tx_commit
        let free = free
        let get_rawptr = get_rawptr
        let get_nvmptr = get_nvmptr
        let get_root = get_root
        let set_root = set_root
        let machine = machine
        let cache_ops = cache_ops
      end : Alloc_intf.S
        with type heap = heap),
      heap )
