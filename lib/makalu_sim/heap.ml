(** The Makalu-like baseline allocator (paper §7.2, §9).

    Reproduces the design properties the paper analyses:

    - allocations ≤ 400 B: per-thread (here per-CPU) free lists,
      refilled from — and overflowing into — a {e global reclaim list}
      under a global lock;
    - allocations > 400 B: a {e global chunk list} with a global lock
      and linear first-fit scan, the paper's ">1000× performance loss"
      culprit;
    - no logging: recovery is a conservative {e mark-and-sweep GC}
      from the root pointer, which discovers and frees unreachable
      objects (fixing leaks) but is defenceless against corrupted
      pointers and corrupted in-place headers;
    - "delayed" memory mapping: carve chunks are created by the
      allocating thread, so they land on the thread's NUMA node —
      the reason Makalu beats PMDK on N-Queens in §7.4. *)

module L = Layout

type cpu_state = {
  mutable chunk : int; (* current bump chunk base, 0 = none *)
  mutable bump : int; (* next free byte in the chunk *)
  mutable chunk_end : int;
  locals : int list array; (* per-bucket free lists (object data addrs) *)
  local_len : int array;
  mutable ops_since_sync : int;
}

type t = {
  mach : Machine.t;
  base : int;
  heap_id : int;
  window_size : int;
  cpus : cpu_state array;
  reclaim : int list array; (* global per-bucket reclaim lists *)
  reclaim_lock : Machine.Lock.lock;
  (* global chunk list of free large objects: (data addr, rounded size) *)
  mutable large_free : (int * int) list;
  large_lock : Machine.Lock.lock;
  carve_lock : Machine.Lock.lock;
  mutable stat_gc_runs : int;
  mutable stat_gc_live : int;
  mutable stat_gc_swept : int;
  mutable stat_reclaim_moves : int;
  mutable stat_large_scans : int;
}

let machine t = t.mach
let heap_id t = t.heap_id

let local_overflow = 4
let reclaim_batch = 2

(* The free lists are intrusive persistent lists: each free object's
   first data word links to the next, and head pointers live in the
   heap header.  The OCaml lists below mirror them (and drive the
   logic); the NVMM stores are issued so the timing is faithful.  The
   restart GC rebuilds everything, so no recovery logic reads them. *)
let push_persistent t ~head_slot ~obj ~next =
  Machine.write_u64 t.mach obj next;
  Machine.persist t.mach obj 8;
  Machine.write_u64 t.mach head_slot obj;
  Machine.persist t.mach head_slot 8

let pop_persistent t ~head_slot ~obj =
  let next = Machine.read_u64 t.mach obj in
  Machine.write_u64 t.mach head_slot next;
  Machine.persist t.mach head_slot 8

let local_head_slot t cpu b = t.base + L.local_head_off cpu b
let reclaim_head_slot t b = t.base + L.hd_off_reclaim_heads + (b * L.word)

(* Makalu's BDWGC heritage: per-thread allocation state is
   periodically synchronised with the collector's global bookkeeping
   at safe points, under the global lock.  The period and cost are
   calibrated so that the small-object path degrades past ~16 threads
   as the paper reports (6x microbenchmark loss, YCSB degradation,
   7.2/7.5) — the mechanism the paper attributes to Makalu's
   "non-scalable metadata design". *)
let sync_period = 16
let sync_cost_ns = 2000

let safe_point t st =
  st.ops_since_sync <- st.ops_since_sync + 1;
  if st.ops_since_sync >= sync_period then begin
    st.ops_since_sync <- 0;
    Machine.Lock.with_lock t.reclaim_lock (fun () ->
        Machine.compute t.mach sync_cost_ns)
  end

let dram_step t = Machine.compute t.mach (Machine.cfg t.mach).Machine.Config.dram_read_ns

(* ---------- object headers ---------- *)

let write_header t addr ~size =
  Machine.write_u64 t.mach addr size;
  Machine.write_u64 t.mach (addr + 8) L.obj_magic;
  Machine.persist t.mach addr L.obj_header_size

let obj_size t p = Machine.read_u64 t.mach (p - L.obj_header_size)
let obj_magic_ok t p = Machine.read_u64 t.mach (p - 8) = L.obj_magic

(* ---------- chunk carving ---------- *)

(* caller holds carve_lock.  The chunk's region is registered on the
   calling CPU's NUMA node: Makalu's delayed mapping places memory
   near the allocating thread (§7.4). *)
let carve t bytes =
  let va = Machine.read_u64 t.mach (t.base + L.hd_off_next_va) in
  if va + bytes > t.base + t.window_size then None
  else begin
    let n = Machine.read_u64 t.mach (t.base + L.hd_off_dir_count) in
    if n >= L.dir_cap then None
    else begin
      let cfg = Machine.cfg t.mach in
      let numa =
        Machine.Config.cpu_numa cfg
          (Machine.current_cpu () mod cfg.Machine.Config.num_cpus)
      in
      if not (Machine.has_region t.mach va) then
        Machine.add_region t.mach ~base:va ~size:bytes ~kind:Nvmm.Memdev.Nvmm
          ~numa;
      (* publish the chunk in the directory before moving the bump
         pointer: the GC must be able to find every chunk *)
      let e = t.base + L.hd_off_dir + (n * L.dir_entry_size) in
      Machine.write_u64 t.mach e va;
      Machine.write_u64 t.mach (e + 8) bytes;
      Machine.persist t.mach e L.dir_entry_size;
      Machine.write_u64 t.mach (t.base + L.hd_off_dir_count) (n + 1);
      Machine.persist t.mach (t.base + L.hd_off_dir_count) L.word;
      Machine.write_u64 t.mach (t.base + L.hd_off_next_va) (va + bytes);
      Machine.persist t.mach (t.base + L.hd_off_next_va) L.word;
      Some va
    end
  end

(* ---------- small path ---------- *)

let alloc_small t size =
  let rsize = L.round16 size in
  let b = L.bucket_of rsize in
  let cpu = Machine.current_cpu () mod Array.length t.cpus in
  let st = t.cpus.(cpu) in
  safe_point t st;
  dram_step t;
  match st.locals.(b) with
  | p :: rest ->
    pop_persistent t ~head_slot:(local_head_slot t cpu b) ~obj:p;
    st.locals.(b) <- rest;
    st.local_len.(b) <- st.local_len.(b) - 1;
    write_header t (p - L.obj_header_size) ~size:rsize;
    Some p
  | [] ->
    (* refill from the global reclaim list (global lock, §7.2): walk
       [reclaim_batch] links to find the split point, then splice the
       prefix out by rewriting the persistent head *)
    let refilled =
      Machine.Lock.with_lock t.reclaim_lock (fun () ->
          let rec take acc n l =
            if n = 0 then (acc, l)
            else
              match l with
              | [] -> (acc, [])
              | x :: rest ->
                (* relink the object into the local list: follow and
                   rewrite its persistent link *)
                ignore (Machine.read_u64 t.mach x);
                Machine.write_u64 t.mach x (match acc with y :: _ -> y | [] -> 0);
                Machine.persist t.mach x 8;
                take (x :: acc) (n - 1) rest
          in
          let batch, rest = take [] reclaim_batch t.reclaim.(b) in
          t.reclaim.(b) <- rest;
          if batch <> [] then begin
            t.stat_reclaim_moves <- t.stat_reclaim_moves + 1;
            let new_head = match rest with x :: _ -> x | [] -> 0 in
            Machine.write_u64 t.mach (reclaim_head_slot t b) new_head;
            Machine.persist t.mach (reclaim_head_slot t b) 8
          end;
          batch)
    in
    (match refilled with
     | p :: rest ->
       let slot = local_head_slot t cpu b in
       Machine.write_u64 t.mach slot (match rest with x :: _ -> x | [] -> 0);
       Machine.persist t.mach slot 8;
       st.locals.(b) <- rest;
       st.local_len.(b) <- List.length rest;
       write_header t (p - L.obj_header_size) ~size:rsize;
       Some p
     | [] ->
       (* bump-allocate from the CPU's carve chunk *)
       let need = L.obj_header_size + rsize in
       if st.chunk = 0 || st.bump + need > st.chunk_end then begin
         match
           Machine.Lock.with_lock t.carve_lock (fun () ->
               carve t L.carve_chunk_size)
         with
         | None -> None
         | Some chunk ->
           st.chunk <- chunk;
           st.bump <- chunk;
           st.chunk_end <- chunk + L.carve_chunk_size;
           let addr = st.bump in
           st.bump <- st.bump + need;
           write_header t addr ~size:rsize;
           Some (addr + L.obj_header_size)
       end
       else begin
         let addr = st.bump in
         st.bump <- st.bump + need;
         write_header t addr ~size:rsize;
         Some (addr + L.obj_header_size)
       end)

let free_small t p rsize =
  let b = L.bucket_of rsize in
  let cpu = Machine.current_cpu () mod Array.length t.cpus in
  let st = t.cpus.(cpu) in
  safe_point t st;
  dram_step t;
  (* persist the header's free mark (size preserved for the GC walk),
     then push onto the persistent local list *)
  Machine.write_u64 t.mach (p - 8) L.obj_magic;
  Machine.persist t.mach (p - 8) 8;
  push_persistent t ~head_slot:(local_head_slot t cpu b) ~obj:p
    ~next:(match st.locals.(b) with x :: _ -> x | [] -> 0);
  st.locals.(b) <- p :: st.locals.(b);
  st.local_len.(b) <- st.local_len.(b) + 1;
  if st.local_len.(b) > local_overflow then
    (* spill to the global reclaim list — the global locking the paper
       blames even for < 400 B workloads *)
    Machine.Lock.with_lock t.reclaim_lock (fun () ->
        let rec take acc n l =
          if n = 0 then (acc, l)
          else
            match l with
            | [] -> (acc, [])
            | x :: rest ->
              (* relink into the reclaim list *)
              ignore (Machine.read_u64 t.mach x);
              Machine.write_u64 t.mach x (match acc with y :: _ -> y | [] -> 0);
              Machine.persist t.mach x 8;
              take (x :: acc) (n - 1) rest
        in
        let batch, rest = take [] reclaim_batch st.locals.(b) in
        st.locals.(b) <- rest;
        st.local_len.(b) <- st.local_len.(b) - List.length batch;
        (* splice the batch onto the persistent reclaim list: relink
           its tail, then swing the head *)
        (match batch with
         | [] -> ()
         | tail_obj :: _ ->
           Machine.write_u64 t.mach tail_obj
             (match t.reclaim.(b) with x :: _ -> x | [] -> 0);
           Machine.persist t.mach tail_obj 8;
           let new_head = match List.rev batch with x :: _ -> x | [] -> 0 in
           Machine.write_u64 t.mach (reclaim_head_slot t b) new_head;
           Machine.persist t.mach (reclaim_head_slot t b) 8;
           let slot = local_head_slot t cpu b in
           Machine.write_u64 t.mach slot (match rest with x :: _ -> x | [] -> 0);
           Machine.persist t.mach slot 8);
        t.reclaim.(b) <- batch @ t.reclaim.(b);
        t.stat_reclaim_moves <- t.stat_reclaim_moves + 1)

(* ---------- large path: global chunk list ---------- *)

let alloc_large t size =
  let rsize = L.round16 size in
  Machine.Lock.with_lock t.large_lock (fun () ->
      (* linear first-fit scan, each visited node charged: the paper's
         global-chunk-list bottleneck *)
      let rec scan acc = function
        | [] -> None
        | (addr, fsize) :: rest when fsize >= rsize ->
          t.large_free <- List.rev_append acc rest;
          Some (addr, fsize)
        | entry :: rest ->
          dram_step t;
          t.stat_large_scans <- t.stat_large_scans + 1;
          scan (entry :: acc) rest
      in
      match scan [] t.large_free with
      | Some (addr, fsize) ->
        let excess = fsize - rsize in
        if excess >= L.obj_header_size + L.granule then begin
          (* split: publish the tail as a new free object; its header
             goes first so a crash leaves a walkable chunk *)
          let tail = addr + rsize in
          let tail_size = excess - L.obj_header_size in
          write_header t tail ~size:tail_size;
          t.large_free <- (tail + L.obj_header_size, tail_size) :: t.large_free;
          write_header t (addr - L.obj_header_size) ~size:rsize
        end
        else write_header t (addr - L.obj_header_size) ~size:fsize;
        Some addr
      | None ->
        (* carve a dedicated chunk *)
        let bytes = L.chunk_bytes_for rsize in
        (match
           Machine.Lock.with_lock t.carve_lock (fun () -> carve t bytes)
         with
         | None -> None
         | Some chunk ->
           let excess = bytes - L.obj_header_size - rsize in
           if excess >= L.obj_header_size + L.granule then begin
             let tail = chunk + L.obj_header_size + rsize in
             let tail_size = excess - L.obj_header_size in
             write_header t tail ~size:tail_size;
             t.large_free <- (tail + L.obj_header_size, tail_size) :: t.large_free
           end;
           let size_used = if excess >= L.obj_header_size + L.granule then rsize
             else bytes - L.obj_header_size in
           write_header t chunk ~size:size_used;
           Some (chunk + L.obj_header_size)))

let free_large t p rsize =
  (* persist the header's free mark, then publish to the global list *)
  Machine.write_u64 t.mach (p - 8) L.obj_magic;
  Machine.persist t.mach (p - 8) 8;
  Machine.Lock.with_lock t.large_lock (fun () ->
      t.large_free <- (p, rsize) :: t.large_free)

(* ---------- public allocation ---------- *)

let alloc t size =
  if size <= 0 then None
  else if size <= L.small_threshold then alloc_small t size
  else alloc_large t size

(* Makalu needs no transactional allocation log: an allocation the
   application never linked into reachable data is unreachable, and
   the restart GC reclaims it.  [is_end] is therefore irrelevant. *)
let tx_alloc t size ~is_end:_ = alloc t size
let tx_commit _t = ()

let free t p =
  (* trusts the in-place header — corruptible, as in the paper *)
  let rsize = L.round16 (obj_size t p) in
  if rsize <= L.small_threshold then free_small t p rsize
  else free_large t p rsize

(* ---------- lifecycle ---------- *)

let mk_t mach ~base ~size ~heap_id =
  let mk_cpu _ =
    { chunk = 0;
      bump = 0;
      chunk_end = 0;
      locals = Array.make L.num_buckets [];
      local_len = Array.make L.num_buckets 0;
      ops_since_sync = 0 }
  in
  { mach;
    base;
    heap_id;
    window_size = size;
    cpus = Array.init (Machine.cfg mach).Machine.Config.num_cpus mk_cpu;
    reclaim = Array.make L.num_buckets [];
    reclaim_lock = Machine.Lock.create mach ~name:"makalu-reclaim" ();
    large_free = [];
    large_lock = Machine.Lock.create mach ~name:"makalu-large" ();
    carve_lock = Machine.Lock.create mach ~name:"makalu-carve" ();
    stat_gc_runs = 0;
    stat_gc_live = 0;
    stat_gc_swept = 0;
    stat_reclaim_moves = 0;
    stat_large_scans = 0 }

let create mach ~base ~size ~heap_id =
  if size < L.header_size + L.carve_chunk_size then
    invalid_arg "Makalu_sim.create: window too small";
  (* Only the header region is mapped up front (on node 0); carve
     chunks are mapped lazily on the allocating CPU's NUMA node. *)
  if not (Machine.has_region mach base) then
    Machine.add_region mach ~base ~size:L.header_size ~kind:Nvmm.Memdev.Nvmm
      ~numa:0;
  let t = mk_t mach ~base ~size ~heap_id in
  Machine.write_u64 mach (base + L.hd_off_heap_id) heap_id;
  Machine.write_u64 mach (base + L.hd_off_window_size) size;
  Machine.write_u64 mach (base + L.hd_off_root) Alloc_intf.packed_null;
  Machine.write_u64 mach (base + L.hd_off_next_va) (base + L.header_size);
  Machine.write_u64 mach (base + L.hd_off_dir_count) 0;
  Machine.persist mach base L.header_size;
  Machine.write_u64 mach (base + L.hd_off_magic) L.magic;
  Machine.persist mach (base + L.hd_off_magic) L.word;
  t

(* ---------- restart GC (mark and sweep) ---------- *)

(* Walks one chunk, calling [f data_addr rounded_size] for every
   object whose header is intact.  Stops at the first damaged header:
   everything beyond it in the chunk becomes invisible — the walk
   vulnerability the paper describes. *)
let walk_chunk t ~chunk ~bytes f =
  let rec go addr =
    if addr + L.obj_header_size <= chunk + bytes then begin
      let size = Machine.read_u64 t.mach addr in
      let magic = Machine.read_u64 t.mach (addr + 8) in
      if magic = L.obj_magic && size > 0
         && addr + L.obj_header_size + L.round16 size <= chunk + bytes
      then begin
        f (addr + L.obj_header_size) (L.round16 size);
        go (addr + L.obj_header_size + L.round16 size)
      end
    end
  in
  go chunk

let iter_chunks t f =
  let n = Machine.read_u64 t.mach (t.base + L.hd_off_dir_count) in
  for i = 0 to n - 1 do
    let e = t.base + L.hd_off_dir + (i * L.dir_entry_size) in
    let chunk = Machine.read_u64 t.mach e in
    let bytes = Machine.read_u64 t.mach (e + 8) in
    f ~chunk ~bytes
  done

(* Conservative mark-and-sweep from the root pointer.  A payload word
   that equals some object's data address keeps that object alive.
   Unreachable objects go to the free lists.  Corrupting a pointer in
   a reachable object severs everything only reachable through it. *)
let gc t =
  t.stat_gc_runs <- t.stat_gc_runs + 1;
  let objects = Hashtbl.create 1024 in (* data addr -> size *)
  iter_chunks t (fun ~chunk ~bytes ->
      walk_chunk t ~chunk ~bytes (fun addr size ->
          Hashtbl.replace objects addr size));
  let marked = Hashtbl.create 1024 in
  let rec mark addr =
    if (not (Hashtbl.mem marked addr)) && Hashtbl.mem objects addr then begin
      Hashtbl.replace marked addr ();
      let size = Hashtbl.find objects addr in
      for i = 0 to (size / 8) - 1 do
        let w = Machine.read_u64 t.mach (addr + (i * 8)) in
        if Hashtbl.mem objects w then mark w
      done
    end
  in
  let root = Machine.read_u64 t.mach (t.base + L.hd_off_root) in
  if root <> Alloc_intf.packed_null then begin
    let p = Alloc_intf.unpack ~heap_id:t.heap_id root in
    mark (t.base + p.Alloc_intf.off)
  end;
  (* sweep: unreachable objects into the free structures *)
  Hashtbl.iter
    (fun addr size ->
      if not (Hashtbl.mem marked addr) then begin
        t.stat_gc_swept <- t.stat_gc_swept + 1;
        if size <= L.small_threshold then
          t.reclaim.(L.bucket_of size) <- addr :: t.reclaim.(L.bucket_of size)
        else t.large_free <- (addr, size) :: t.large_free
      end
      else t.stat_gc_live <- t.stat_gc_live + 1)
    objects

let attach mach ~base =
  if Machine.read_u64 mach (base + L.hd_off_magic) <> L.magic then
    failwith "Makalu_sim.attach: bad magic";
  let size = Machine.read_u64 mach (base + L.hd_off_window_size) in
  let heap_id = Machine.read_u64 mach (base + L.hd_off_heap_id) in
  let t = mk_t mach ~base ~size ~heap_id in
  gc t;
  t

let finish _t = ()

(* ---------- root ---------- *)

let get_root_packed t = Machine.read_u64 t.mach (t.base + L.hd_off_root)

let set_root_packed t packed =
  Machine.write_u64 t.mach (t.base + L.hd_off_root) packed;
  Machine.persist t.mach (t.base + L.hd_off_root) L.word

type stats = {
  gc_runs : int;
  gc_live : int;
  gc_swept : int;
  reclaim_moves : int;
  large_scans : int;
  large_free_len : int;
}

let stats t =
  { gc_runs = t.stat_gc_runs;
    gc_live = t.stat_gc_live;
    gc_swept = t.stat_gc_swept;
    reclaim_moves = t.stat_reclaim_moves;
    large_scans = t.stat_large_scans;
    large_free_len = List.length t.large_free }
