(** The PMDK-like baseline allocator (paper §3, Fig. 2).

    Faithfully reproduces the design properties the paper analyses:

    - {e in-place metadata}: a 16-byte header with the allocation size
      sits immediately before every object in user-writable memory,
      and [free] trusts it — heap overwrites therefore corrupt the
      allocator (§3.2, Fig. 3);
    - 12 arenas with per-arena locks; small objects (≤ ~2 KB) come
      from 256 KiB chunks with allocation bitmaps; DRAM free-lists are
      {e rebuilt by rescanning NVMM bitmaps} when empty, serialised by
      a global rebuild lock (§3.3);
    - large objects are indexed by a {e global, lock-protected DRAM
      AVL tree} of free chunks (§3.3);
    - small frees are batched through a {e global action log} (§7.2);
    - the pool's memory is mapped by the main thread, so every region
      lives on NUMA node 0 (§7.4, N-Queens discussion);
    - crash consistency of allocator metadata via per-lane undo logs,
      and transactional allocation via per-lane tx logs.

    Optionally, [~canary:true] enables the §8 mitigation: frees whose
    in-place header magic is damaged are skipped. *)

module L = Layout

type freelist_entry = { fchunk : int; funit : int; flen : int }

type arena = {
  aid : int;
  alock : Machine.Lock.lock;
  mutable achunks : int list; (* small chunk bases, newest first *)
  freelists : freelist_entry list array; (* index = run length in units *)
}

type t = {
  mach : Machine.t;
  base : int;
  heap_id : int;
  window_size : int;
  lanes : int;
  canary : bool;
  arenas : arena array;
  avl : Avl.t;
  avl_lock : Machine.Lock.lock; (* global: AVL + chunk carving *)
  rebuild_lock : Machine.Lock.lock; (* global: free-list rebuilds *)
  action_lock : Machine.Lock.lock; (* global: batched frees *)
  index : Chunk_index.t;
  mutable stat_rebuilds : int;
  mutable stat_chunks_scanned : int;
  mutable stat_action_applies : int;
  mutable stat_skipped_corrupt_free : int;
  mutable stat_walk_damaged : bool;
}

let machine t = t.mach
let heap_id t = t.heap_id

(* ---------- small helpers ---------- *)

let header_size t = L.header_size ~lanes:t.lanes

let chunks_base t = t.base + header_size t

let lane_of () = Machine.current_cpu ()

let begin_lane_op t =
  let lane = lane_of () in
  Persist.Pundo.begin_op t.mach
    ~count_addr:(t.base + L.lane_undo_count lane)
    ~entries_addr:(t.base + L.lane_undo_entries lane)
    ~cap:L.lane_undo_cap

let tx_area t lane =
  { Persist.Plog.count_addr = t.base + L.lane_tx_count lane;
    entries_addr = t.base + L.lane_tx_entries lane;
    cap = L.lane_tx_cap }

let action_area t =
  { Persist.Plog.count_addr = t.base + L.hd_off_action_count;
    entries_addr = t.base + L.hd_off_action_entries;
    cap = L.action_cap }

(* charge a DRAM-resident structure traversal step *)
let dram_step t = Machine.compute t.mach (Machine.cfg t.mach).Machine.Config.dram_read_ns

(* ---------- object headers (in place, user-corruptible) ---------- *)

let write_obj_header ctx ~run_start ~size =
  Persist.Pundo.write ctx run_start size;
  Persist.Pundo.write ctx (run_start + 8) L.obj_magic

let obj_size t p = Machine.read_u64 t.mach (p + L.obj_off_size)
let obj_magic_ok t p = Machine.read_u64 t.mach (p + L.obj_off_magic) = L.obj_magic

(* ---------- bitmap of a small chunk ---------- *)

(* debug hook for tests: called as (op, chunk, unit, n) on bitmap runs *)
let debug_bitmap_hook :
    (string -> int -> int -> int -> unit) option ref = ref None
let dbg op chunk u n =
  match !debug_bitmap_hook with Some f -> f op chunk u n | None -> ()

(* 32 units per 64-bit word: OCaml ints are 63-bit, so a 64-bit
   packing could never represent bit 63 (1 lsl 63 = 0) *)
let units_per_word = 32

let bitmap_word_addr chunk i =
  chunk + L.ck_off_bitmap + (i / units_per_word * 8)

let set_run ctx t chunk u n =
  dbg "set" chunk u n;
  let i = ref u in
  while !i < u + n do
    let word_addr = bitmap_word_addr chunk !i in
    let upto =
      min (u + n) ((!i / units_per_word * units_per_word) + units_per_word)
    in
    let v = ref (Machine.read_u64 t.mach word_addr) in
    for b = !i to upto - 1 do
      v := !v lor (1 lsl (b land (units_per_word - 1)))
    done;
    Persist.Pundo.write ctx word_addr !v;
    i := upto
  done

(* Clears run bits with plain (volatile) stores; persistence is
   deferred to the action log batch (§7.2: PMDK "batches free
   operations together ... to amortize the overhead involved in
   flushing data").  [persist] additionally write-backs each word. *)
let clear_run_volatile ?(persist = false) t chunk u n =
  dbg "clear" chunk u n;
  let n = min n (max 0 (L.small_units - u)) in
  (* clamp: do not scribble past the chunk *)
  let i = ref u in
  while !i < u + n do
    let word_addr = bitmap_word_addr chunk !i in
    let upto =
      min (u + n) ((!i / units_per_word * units_per_word) + units_per_word)
    in
    let v = ref (Machine.read_u64 t.mach word_addr) in
    for b = !i to upto - 1 do
      v := !v land lnot (1 lsl (b land (units_per_word - 1)))
    done;
    Machine.write_u64 t.mach word_addr !v;
    if persist then Machine.clwb t.mach word_addr;
    i := upto
  done

let unit_is_set t chunk u =
  Machine.read_u64 t.mach (bitmap_word_addr chunk u)
  land (1 lsl (u land (units_per_word - 1)))
  <> 0

(* ---------- free lists (DRAM) ---------- *)

let pop_entry t arena nunits =
  let rec scan len =
    if len > L.small_max_units then None
    else begin
      dram_step t;
      match arena.freelists.(len) with
      | [] -> scan (len + 1)
      | e :: rest ->
        arena.freelists.(len) <- rest;
        dbg "pop" e.fchunk e.funit e.flen;
        if e.flen > nunits then begin
          let rem = e.flen - nunits in
          dbg "split-rem" e.fchunk (e.funit + nunits) rem;
          arena.freelists.(min rem L.small_max_units) <-
            { fchunk = e.fchunk; funit = e.funit + nunits; flen = rem }
            :: arena.freelists.(min rem L.small_max_units)
        end;
        Some (e.fchunk, e.funit)
    end
  in
  scan nunits

(* Rebuilds the arena's free lists by rescanning the allocation
   bitmaps of all its chunks in NVMM — the serial, global-locked
   operation the paper blames for PMDK's poor scalability (§3.3). *)
let rebuild t arena =
  Machine.Lock.with_lock t.rebuild_lock (fun () ->
   Machine.Lock.with_lock arena.alock (fun () ->
      t.stat_rebuilds <- t.stat_rebuilds + 1;
      Array.fill arena.freelists 0 (Array.length arena.freelists) [];
      List.iter
        (fun chunk ->
          t.stat_chunks_scanned <- t.stat_chunks_scanned + 1;
          (* find maximal clear runs *)
          let run_start = ref (-1) in
          let flush_run last =
            if !run_start >= 0 then begin
              let u = ref !run_start in
              let total = last - !run_start in
              let left = ref total in
              while !left > 0 do
                let len = min !left L.small_max_units in
                dbg "rebuild-entry" chunk !u len;
                arena.freelists.(len) <-
                  { fchunk = chunk; funit = !u; flen = len }
                  :: arena.freelists.(len);
                u := !u + len;
                left := !left - len
              done;
              run_start := -1
            end
          in
          for u = 0 to L.small_units - 1 do
            if unit_is_set t chunk u then flush_run u
            else if !run_start < 0 then run_start := u
          done;
          flush_run L.small_units)
        arena.achunks))

(* ---------- chunk carving (global) ---------- *)

(* caller holds avl_lock.  A provisional free-chunk header is
   persisted before the bump pointer moves, so the chunk walk at
   attach time never meets an unformatted chunk (a crash right after
   the bump recovers the chunk as free). *)
let carve t need =
  let va = Machine.read_u64 t.mach (t.base + L.hd_off_next_va) in
  if va + need > t.base + t.window_size then None
  else begin
    Machine.write_u64 t.mach (va + L.ck_off_magic) L.chunk_magic;
    Machine.write_u64 t.mach (va + L.ck_off_kind) L.kind_free;
    Machine.write_u64 t.mach (va + L.ck_off_size) need;
    Machine.persist t.mach (va + L.ck_off_magic) 24;
    Machine.write_u64 t.mach (t.base + L.hd_off_next_va) (va + need);
    Machine.persist t.mach (t.base + L.hd_off_next_va) L.word;
    Some va
  end

(* caller holds avl_lock; returns a raw chunk of exactly [need] bytes
   (splitting a larger free chunk when possible) *)
let take_chunk t ctx need =
  match Avl.remove_best_fit t.avl ~size:need with
  | Some (csize, chunk) ->
    if csize - need >= L.small_chunk_size then begin
      let rem = chunk + need in
      Persist.Pundo.write ctx (rem + L.ck_off_magic) L.chunk_magic;
      Persist.Pundo.write ctx (rem + L.ck_off_kind) L.kind_free;
      Persist.Pundo.write ctx (rem + L.ck_off_size) (csize - need);
      Avl.insert t.avl ~size:(csize - need) ~addr:rem;
      Chunk_index.resize t.index ~base:chunk ~size:need;
      Chunk_index.add t.index ~base:rem ~size:(csize - need);
      Persist.Pundo.write ctx (chunk + L.ck_off_size) need;
      Some (chunk, need)
    end
    else Some (chunk, csize)
  | None ->
    (match carve t need with
     | Some chunk ->
       Chunk_index.add t.index ~base:chunk ~size:need;
       Some (chunk, need)
     | None -> None)

(* ---------- small allocation ---------- *)

let new_small_chunk t ctx arena =
  Machine.Lock.with_lock t.avl_lock (fun () ->
      match take_chunk t ctx L.small_chunk_size with
      | None -> None
      | Some (chunk, size) ->
        assert (size = L.small_chunk_size);
        Persist.Pundo.write ctx (chunk + L.ck_off_magic) L.chunk_magic;
        Persist.Pundo.write ctx (chunk + L.ck_off_kind) L.kind_small;
        Persist.Pundo.write ctx (chunk + L.ck_off_size) size;
        Persist.Pundo.write ctx (chunk + L.ck_off_arena) arena.aid;
        (* virgin bitmap is all-clear; chunks reused from the AVL must
           be cleared explicitly *)
        for w = 0 to ((L.small_units + units_per_word - 1) / units_per_word) - 1 do
          Persist.Pundo.write ctx (chunk + L.ck_off_bitmap + (w * 8)) 0
        done;
        arena.achunks <- chunk :: arena.achunks;
        (* one big run covering the whole chunk *)
        let u = ref 0 in
        while !u < L.small_units do
          let len = min (L.small_units - !u) L.small_max_units in
          arena.freelists.(len) <-
            { fchunk = chunk; funit = !u; flen = len } :: arena.freelists.(len);
          u := !u + len
        done;
        Some chunk)

(* forward declaration: defined with the deallocation code below *)
let apply_actions_ref = ref (fun (_ : t) -> ())

let take_from_freelist t arena nunits ~size ~on_commit =
  Machine.Lock.with_lock arena.alock (fun () ->
      match pop_entry t arena nunits with
      | None -> None
      | Some (chunk, u) ->
        let ctx = begin_lane_op t in
        set_run ctx t chunk u nunits;
        let run_start = chunk + L.chunk_header_size + (u * L.unit_size) in
        write_obj_header ctx ~run_start ~size;
        let p = run_start + L.obj_header_size in
        Persist.Pundo.commit ctx ?before_truncate:(on_commit p);
        Some p)

let alloc_small t size ~on_commit =
  let nunits = L.units_for size in
  let arena = t.arenas.(Machine.current_cpu () mod L.num_arenas) in
  match take_from_freelist t arena nunits ~size ~on_commit with
  | Some p -> Some p
  | None ->
    (* flush pending batched frees so the rebuild can see them, then
       rescan this arena's bitmaps (the §3.3 serial rebuild) *)
    Machine.Lock.with_lock t.action_lock (fun () -> !apply_actions_ref t);
    rebuild t arena;
    (match take_from_freelist t arena nunits ~size ~on_commit with
     | Some p -> Some p
     | None ->
       (* grow: a fresh 256 KiB chunk for this arena *)
       let ctx = begin_lane_op t in
       let grown =
         Machine.Lock.with_lock arena.alock (fun () ->
             new_small_chunk t ctx arena)
       in
       Persist.Pundo.commit ctx;
       (match grown with
        | Some _ -> take_from_freelist t arena nunits ~size ~on_commit
        | None -> None))

(* ---------- large allocation ---------- *)

let alloc_large t size ~on_commit =
  let need = L.large_chunk_bytes size in
  (* the global lock covers only the tree/carve step; header writes
     happen outside it (a crash in between re-discovers the chunk as
     free at the next attach, so nothing is lost) *)
  let taken =
    Machine.Lock.with_lock t.avl_lock (fun () ->
        let ctx = begin_lane_op t in
        let r = take_chunk t ctx need in
        Persist.Pundo.commit ctx;
        r)
  in
  match taken with
  | None -> None
  | Some (chunk, csize) ->
    let ctx = begin_lane_op t in
    Persist.Pundo.write ctx (chunk + L.ck_off_magic) L.chunk_magic;
    Persist.Pundo.write ctx (chunk + L.ck_off_kind) L.kind_large;
    Persist.Pundo.write ctx (chunk + L.ck_off_size) csize;
    let run_start = chunk + L.chunk_header_size in
    write_obj_header ctx ~run_start ~size;
    let p = run_start + L.obj_header_size in
    Persist.Pundo.commit ctx ?before_truncate:(on_commit p);
    Some p

(* ---------- allocation entry points ---------- *)

let alloc_raw t size ~on_commit =
  if size <= 0 then None
  else if size <= L.small_max_size then alloc_small t size ~on_commit
  else alloc_large t size ~on_commit

let no_commit _p = None

let alloc t size = alloc_raw t size ~on_commit:no_commit

let tx_alloc t size ~is_end =
  let lane = lane_of () in
  let on_commit p = Some (fun () -> Persist.Plog.append t.mach (tx_area t lane) p) in
  let r = alloc_raw t size ~on_commit in
  if is_end && r <> None then Persist.Plog.truncate t.mach (tx_area t lane);
  r

(* Commit without a trailing allocation: truncating the lane's redo
   log is the commit point, exactly as the [is_end:true] path above. *)
let tx_commit t = Persist.Plog.truncate t.mach (tx_area t (lane_of ()))

(* ---------- deallocation ---------- *)

(* One batched free: clear the run's bits, trusting the in-place
   header for the length — the Fig. 3 corruption vector. *)
let clear_for t run_start ~persist =
  match Chunk_index.find t.index run_start with
  | Some e when Machine.read_u64 t.mach (e.Chunk_index.base + L.ck_off_kind)
                = L.kind_small ->
    let chunk = e.Chunk_index.base in
    let arena =
      t.arenas.(Machine.read_u64 t.mach (chunk + L.ck_off_arena)
                mod L.num_arenas)
    in
    Machine.Lock.with_lock arena.alock (fun () ->
        let size = Machine.read_u64 t.mach run_start in
        let nunits = L.units_for size in
        let u = (run_start - chunk - L.chunk_header_size) / L.unit_size in
        if u >= 0 && u < L.small_units then
          clear_run_volatile ~persist t chunk u nunits)
  | _ -> () (* damaged pointer: silently dropped, as PMDK would *)

(* Write-backs every pending free and truncates the action log.
   Caller holds the action lock.  Re-clearing already clear bits is
   idempotent, so crash replay is safe. *)
let apply_actions t =
  t.stat_action_applies <- t.stat_action_applies + 1;
  let entries = Persist.Plog.entries t.mach (action_area t) in
  List.iter (fun run_start -> clear_for t run_start ~persist:true) entries;
  Machine.sfence t.mach;
  Persist.Plog.truncate t.mach (action_area t)

let () = apply_actions_ref := apply_actions

let free_small t p =
  (* the batched-free path (§7.2): the free is visible at once
     (volatile bitmap clear) but its persistence is deferred to the
     global action log, whose lock every free must take *)
  Machine.Lock.with_lock t.action_lock (fun () ->
      let run_start = p - L.obj_header_size in
      Persist.Plog.append t.mach (action_area t) run_start;
      if Persist.Plog.is_full t.mach (action_area t) then apply_actions t
      else clear_for t run_start ~persist:false)

let free_large t p =
  let chunk = p - L.obj_header_size - L.chunk_header_size in
  (* trusts the (possibly corrupted) in-place size: freeing less than
     was allocated leaks the tail forever; freeing more creates a free
     chunk overlapping live neighbours *)
  let size = obj_size t p in
  let csize = L.large_chunk_bytes size in
  let ctx = begin_lane_op t in
  Persist.Pundo.write ctx (chunk + L.ck_off_kind) L.kind_free;
  Persist.Pundo.write ctx (chunk + L.ck_off_size) csize;
  Persist.Pundo.commit ctx;
  Machine.Lock.with_lock t.avl_lock (fun () ->
      Avl.insert t.avl ~size:csize ~addr:chunk)

let free t p =
  if t.canary && not (obj_magic_ok t p) then
    (* §8 mitigation: stop the corruption from propagating *)
    t.stat_skipped_corrupt_free <- t.stat_skipped_corrupt_free + 1
  else begin
    let size = obj_size t p in
    if size <= L.small_max_size then free_small t p else free_large t p
  end

(* ---------- heap lifecycle ---------- *)

let mk_arenas mach =
  Array.init L.num_arenas (fun aid ->
      { aid;
        alock = Machine.Lock.create mach ~name:(Printf.sprintf "arena-%d" aid) ();
        achunks = [];
        freelists = Array.make (L.small_max_units + 1) [] })

let mk_t mach ~base ~size ~heap_id ~canary =
  let avl_visit () =
    Machine.compute mach (Machine.cfg mach).Machine.Config.dram_read_ns
  in
  { mach;
    base;
    heap_id;
    window_size = size;
    lanes = (Machine.cfg mach).Machine.Config.num_cpus;
    canary;
    arenas = mk_arenas mach;
    avl = Avl.create ~on_visit:avl_visit ();
    avl_lock = Machine.Lock.create mach ~name:"pmdk-avl" ();
    rebuild_lock = Machine.Lock.create mach ~name:"pmdk-rebuild" ();
    action_lock = Machine.Lock.create mach ~name:"pmdk-action" ();
    index = Chunk_index.create ();
    stat_rebuilds = 0;
    stat_chunks_scanned = 0;
    stat_action_applies = 0;
    stat_skipped_corrupt_free = 0;
    stat_walk_damaged = false }

let create mach ~base ~size ~heap_id ?(canary = false) () =
  if size < L.header_size ~lanes:(Machine.cfg mach).Machine.Config.num_cpus
            + L.small_chunk_size
  then invalid_arg "Pmdk_sim.create: window too small";
  (* The pool is created (and mapped) by the main thread: everything
     lands on NUMA node 0 — the behaviour §7.4 points out. *)
  if not (Machine.has_region mach base) then
    Machine.add_region mach ~base ~size ~kind:Nvmm.Memdev.Nvmm ~numa:0;
  let t = mk_t mach ~base ~size ~heap_id ~canary in
  Machine.write_u64 mach (base + L.hd_off_heap_id) heap_id;
  Machine.write_u64 mach (base + L.hd_off_window_size) size;
  Machine.write_u64 mach (base + L.hd_off_root) Alloc_intf.packed_null;
  Machine.write_u64 mach (base + L.hd_off_next_va) (chunks_base t);
  Machine.persist mach base (header_size t);
  Machine.write_u64 mach (base + L.hd_off_magic) L.magic;
  Machine.persist mach (base + L.hd_off_magic) L.word;
  t

(* Rebuild volatile state and recover logs after a restart. *)
let attach mach ~base ?(canary = false) () =
  if Machine.read_u64 mach (base + L.hd_off_magic) <> L.magic then
    failwith "Pmdk_sim.attach: bad magic";
  let size = Machine.read_u64 mach (base + L.hd_off_window_size) in
  let heap_id = Machine.read_u64 mach (base + L.hd_off_heap_id) in
  let t = mk_t mach ~base ~size ~heap_id ~canary in
  (* undo logs first: metadata back to operation boundaries *)
  for lane = 0 to t.lanes - 1 do
    ignore
      (Persist.Pundo.recover mach
         ~count_addr:(base + L.lane_undo_count lane)
         ~entries_addr:(base + L.lane_undo_entries lane))
  done;
  (* walk the chunk chain to rebuild DRAM state *)
  let next_va = Machine.read_u64 mach (base + L.hd_off_next_va) in
  let va = ref (chunks_base t) in
  (try
     while !va < next_va do
       if Machine.read_u64 mach (!va + L.ck_off_magic) <> L.chunk_magic then begin
         (* the chain is damaged (e.g. by a corrupted-size free):
            everything beyond this point is unreachable *)
         t.stat_walk_damaged <- true;
         raise Exit
       end;
       let kind = Machine.read_u64 mach (!va + L.ck_off_kind) in
       let csize = Machine.read_u64 mach (!va + L.ck_off_size) in
       if csize <= 0 then begin
         t.stat_walk_damaged <- true;
         raise Exit
       end;
       Chunk_index.add t.index ~base:!va ~size:csize;
       if kind = L.kind_small then begin
         let aid = Machine.read_u64 mach (!va + L.ck_off_arena) mod L.num_arenas in
         t.arenas.(aid).achunks <- !va :: t.arenas.(aid).achunks
       end
       else if kind = L.kind_free then
         Avl.insert t.avl ~size:csize ~addr:!va;
       va := !va + csize
     done
   with Exit -> ());
  (* pending batched frees *)
  Machine.Lock.with_lock t.action_lock (fun () -> apply_actions t);
  (* roll back uncommitted transactional allocations *)
  for lane = 0 to t.lanes - 1 do
    List.iter (fun p -> free t p) (Persist.Plog.entries mach (tx_area t lane));
    Persist.Plog.truncate mach (tx_area t lane)
  done;
  t

let finish _t = ()

(* ---------- root & pointers ---------- *)

let get_root_packed t = Machine.read_u64 t.mach (t.base + L.hd_off_root)

let set_root_packed t packed =
  Machine.write_u64 t.mach (t.base + L.hd_off_root) packed;
  Machine.persist t.mach (t.base + L.hd_off_root) L.word

type stats = {
  rebuilds : int;
  chunks_scanned : int;
  action_applies : int;
  skipped_corrupt_free : int;
  walk_damaged : bool;
  avl_nodes : int;
}

let stats t =
  { rebuilds = t.stat_rebuilds;
    chunks_scanned = t.stat_chunks_scanned;
    action_applies = t.stat_action_applies;
    skipped_corrupt_free = t.stat_skipped_corrupt_free;
    walk_damaged = t.stat_walk_damaged;
    avl_nodes = Avl.count t.avl }
