(** FAST-FAIR-style persistent B+-tree over a persistent allocator
    (the YCSB substrate of paper §7.5, after Hwang et al., FAST '18).

    Nodes are 512-byte persistent objects allocated from the
    allocator under test, so every insert exercises the allocation
    path.  Keys are sorted within a node; inserts shift entries with a
    per-store write-back (FAST's failure-atomic shift), and node
    splits write the new sibling completely before publishing it
    (FAIR-style failure atomicity).

    Concurrency: searches traverse without locks (reads of a node are
    atomic at simulated-thread granularity); writers lock the leaf,
    and structure modifications (splits) additionally take a global
    SMO lock — splits are ~1/[fanout] of inserts, so the common path
    stays leaf-local.

    Node layout (little-endian u64 words):
    {v
    0   meta: (count lsl 1) lor is_leaf
    8   sibling (packed nvmptr; leaf level only)
    16  entries: fanout x {key, value}   — value = child ptr in inner
    v}
    fanout 31 -> node size = 16 + 31*16 = 512 bytes. *)

(** Where the tree's root pointer durably lives.  The classic layout
    stores it in the allocator's root slot (one tree per heap); a
    service embedding several trees in one heap points each tree at a
    persistent cell of its own (e.g. a slot in a superroot object).
    [store] must persist the pointer before returning. *)
type root_cell = {
  load : unit -> Alloc_intf.nvmptr;
  store : Alloc_intf.nvmptr -> unit;
}

type t = {
  inst : Alloc_intf.instance;
  mach : Machine.t;
  cell : root_cell;
  hid : int; (* heap id all of this tree's pointers carry *)
  smo_lock : Machine.Lock.lock;
  leaf_locks : (int, Machine.Lock.lock) Hashtbl.t; (* node addr -> lock *)
  leaf_locks_guard : Machine.Lock.lock;
  mutable root : Alloc_intf.nvmptr;
}

let fanout = 31
let node_size = 16 + (fanout * 16)

let meta_off = 0
let sibling_off = 8
let entry_off i = 16 + (i * 16)

(* ---------- node primitives ---------- *)

let read_meta mach addr = Machine.read_u64 mach (addr + meta_off)
let count_of meta = meta lsr 1
let is_leaf_of meta = meta land 1 = 1

let write_meta t addr ~count ~leaf =
  Machine.write_u64 t.mach (addr + meta_off)
    ((count lsl 1) lor (if leaf then 1 else 0));
  Machine.persist t.mach (addr + meta_off) 8

let key_at mach addr i = Machine.read_u64 mach (addr + entry_off i)
let value_at mach addr i = Machine.read_u64 mach (addr + entry_off i + 8)

let set_entry t addr i ~key ~value =
  Machine.write_u64 t.mach (addr + entry_off i) key;
  Machine.write_u64 t.mach (addr + entry_off i + 8) value;
  Machine.persist t.mach (addr + entry_off i) 16

(* position of the first key >= k *)
let lower_bound mach addr count k =
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if key_at mach addr mid < k then go (mid + 1) hi else go lo mid
  in
  go 0 count

(* ---------- allocation ---------- *)

let raw_of t p = Alloc_intf.i_get_rawptr t.inst p

let alloc_node t ~leaf =
  match Alloc_intf.i_alloc t.inst node_size with
  | None -> failwith "Btree: allocator out of memory"
  | Some p ->
    let addr = raw_of t p in
    Machine.write_u64 t.mach (addr + sibling_off) Alloc_intf.packed_null;
    write_meta t addr ~count:0 ~leaf;
    p

(* ---------- construction ---------- *)

let create_in inst cell =
  let mach = Alloc_intf.instance_machine inst in
  let t =
    { inst;
      mach;
      cell;
      hid = 0; (* placeholder until the root node exists *)
      smo_lock = Machine.Lock.create mach ~name:"btree-smo" ();
      leaf_locks = Hashtbl.create 1024;
      leaf_locks_guard = Machine.Lock.create mach ~name:"btree-locktab" ();
      root = Alloc_intf.null }
  in
  let root = alloc_node t ~leaf:true in
  let t = { t with hid = root.Alloc_intf.heap_id } in
  t.root <- root;
  t.cell.store root;
  t

let attach_in inst cell =
  let mach = Alloc_intf.instance_machine inst in
  let root = cell.load () in
  if Alloc_intf.is_null root then invalid_arg "Btree.attach: no tree at root";
  { inst;
    mach;
    cell;
    hid = root.Alloc_intf.heap_id;
    smo_lock = Machine.Lock.create mach ~name:"btree-smo" ();
    leaf_locks = Hashtbl.create 1024;
    leaf_locks_guard = Machine.Lock.create mach ~name:"btree-locktab" ();
    root }

(* one-tree-per-heap layout: the allocator root slot is the cell *)
let allocator_cell inst =
  { load = (fun () -> Alloc_intf.i_get_root inst);
    store = (fun p -> Alloc_intf.i_set_root inst p) }

let create inst = create_in inst (allocator_cell inst)

(** Reopens the tree stored at the allocator's root pointer (restart
    path; the allocator must already be attached/recovered). *)
let attach inst = attach_in inst (allocator_cell inst)

let node_lock t addr =
  match Hashtbl.find_opt t.leaf_locks addr with
  | Some l -> l
  | None ->
    Machine.Lock.with_lock t.leaf_locks_guard (fun () ->
        match Hashtbl.find_opt t.leaf_locks addr with
        | Some l -> l
        | None ->
          let l = Machine.Lock.create t.mach ~name:"btree-node" () in
          Hashtbl.replace t.leaf_locks addr l;
          l)

(* ---------- search ---------- *)

let ptr_of_packed t packed = Alloc_intf.unpack ~heap_id:t.hid packed

(* If [k]'s range moved to a right sibling (a split whose separator
   has not reached the parent — e.g. after a crash, or a split that
   raced a lock-free reader), follow the sibling chain (FAST-FAIR).
   Each sibling inspection runs preemption-free so the count/first-key
   pair it decides on is one consistent node state. *)
let rec chase_sibling t addr k =
  let next =
    Machine.critical t.mach (fun () ->
        let sib = Machine.read_u64 t.mach (addr + sibling_off) in
        if sib = Alloc_intf.packed_null then None
        else begin
          let right = raw_of t (ptr_of_packed t sib) in
          let rmeta = read_meta t.mach right in
          if count_of rmeta > 0 && k >= key_at t.mach right 0 then Some right
          else None
        end)
  in
  match next with
  | Some right -> chase_sibling t right k
  | None -> addr

(* descend to the leaf that should hold [k]; returns its address.
   Each routing step reads its node preemption-free: a concurrent
   inner-node insert shifting entries mid-search could otherwise route
   to a child RIGHT of [k]'s range, which the (rightward-only) sibling
   chase can never recover from. *)
let rec descend t addr k =
  let addr = chase_sibling t addr k in
  if is_leaf_of (read_meta t.mach addr) then addr
  else begin
    let child =
      Machine.critical t.mach (fun () ->
          let count = count_of (read_meta t.mach addr) in
          (* inner node: entry i covers keys in [key_i, key_{i+1});
             key_0 is the smallest key of the subtree *)
          let pos = lower_bound t.mach addr count k in
          let child_idx =
            if pos < count && key_at t.mach addr pos = k then pos
            else max 0 (pos - 1)
          in
          ptr_of_packed t (value_at t.mach addr child_idx)
      )
    in
    descend t (raw_of t child) k
  end

(* Probe one leaf for [k] preemption-free, re-chasing the sibling
   chain on a miss: a split that raced the lock-free descent relocates
   an untouched neighbor key to the right sibling AND shrinks the left
   count, so concluding absence from the stale leaf alone would deny a
   present key (the FAST-FAIR reader retry). *)
let find t k =
  let leaf = descend t (raw_of t t.root) k in
  Machine.critical t.mach (fun () ->
      let rec probe leaf =
        let count = count_of (read_meta t.mach leaf) in
        let pos = lower_bound t.mach leaf count k in
        if pos < count && key_at t.mach leaf pos = k then
          Some (value_at t.mach leaf pos)
        else begin
          let sib = Machine.read_u64 t.mach (leaf + sibling_off) in
          if sib = Alloc_intf.packed_null then None
          else begin
            let right = raw_of t (ptr_of_packed t sib) in
            let rmeta = read_meta t.mach right in
            if count_of rmeta > 0 && k >= key_at t.mach right 0 then
              probe right
            else None
          end
        end
      in
      probe leaf)

(* ---------- insertion ---------- *)

(* shift entries right by one starting at pos, FAST-style (highest
   first, persisting each moved entry) *)
let shift_right t addr ~count ~pos =
  for i = count - 1 downto pos do
    let k = key_at t.mach addr i and v = value_at t.mach addr i in
    Machine.write_u64 t.mach (addr + entry_off (i + 1)) k;
    Machine.write_u64 t.mach (addr + entry_off (i + 1) + 8) v;
    Machine.persist t.mach (addr + entry_off (i + 1)) 16
  done

(* insert into a node known to have space; caller holds its lock (or
   the SMO lock for inner nodes).  Runs preemption-free so concurrent
   readers never observe a half-shifted node — the reader-safety FAST
   provides by construction on real hardware. *)
let insert_into t addr ~leaf ~key ~value =
  Machine.critical t.mach (fun () ->
      let meta = read_meta t.mach addr in
      let count = count_of meta in
      assert (count < fanout);
      let pos = lower_bound t.mach addr count key in
      if leaf && pos < count && key_at t.mach addr pos = key then
        (* update in place: a single 8-byte atomic store + write-back *)
        begin
          Machine.write_u64 t.mach (addr + entry_off pos + 8) value;
          Machine.persist t.mach (addr + entry_off pos + 8) 8
        end
      else if pos = count then begin
        (* append: entry first (invisible), then the count — a crash
           in between just makes the insert not-have-happened *)
        set_entry t addr pos ~key ~value;
        write_meta t addr ~count:(count + 1) ~leaf
      end
      else begin
        (* crash-atomic insert (FAST-style): (1) duplicate the last
           entry into the new slot; (2) grow the count — the array is
           sorted-with-duplicate and every committed key visible;
           (3) shift the rest, each step preserving
           sorted-with-duplicates; (4) overwrite the duplicate at
           [pos] with the new entry.  A crash at any persistence
           boundary loses no committed key. *)
        set_entry t addr count
          ~key:(key_at t.mach addr (count - 1))
          ~value:(value_at t.mach addr (count - 1));
        write_meta t addr ~count:(count + 1) ~leaf;
        shift_right t addr ~count:(count - 1) ~pos;
        set_entry t addr pos ~key ~value
      end)

(* split [addr] into itself plus [right_ptr] (pre-allocated by the
   caller: no allocation inside the critical section); returns the
   separator key.  Caller holds the SMO lock and the node's lock. *)
let split_node t addr ~leaf ~right_ptr =
  Machine.critical t.mach (fun () ->
      let count = count_of (read_meta t.mach addr) in
      let half = count / 2 in
      let right = raw_of t right_ptr in
      (* write the complete right node before publishing it anywhere *)
      for i = half to count - 1 do
        set_entry t right (i - half)
          ~key:(key_at t.mach addr i)
          ~value:(value_at t.mach addr i)
      done;
      (* sibling links exist at every level (FAST-FAIR): a reader that
         arrives at a node whose keys moved right follows the sibling,
         so a crash between sibling publication and the parent update
         loses nothing *)
      let old_sib = Machine.read_u64 t.mach (addr + sibling_off) in
      Machine.write_u64 t.mach (right + sibling_off) old_sib;
      Machine.persist t.mach (right + sibling_off) 8;
      write_meta t right ~count:(count - half) ~leaf;
      (* publish: link the sibling, then shrink the left count — each
         an atomic 8-byte persisted store (FAIR) *)
      Machine.write_u64 t.mach (addr + sibling_off) (Alloc_intf.pack right_ptr);
      Machine.persist t.mach (addr + sibling_off) 8;
      write_meta t addr ~count:half ~leaf;
      key_at t.mach right 0)

(* root-to-leaf path for [k], root first *)
let path_to t k =
  let rec go addr acc =
    let addr = chase_sibling t addr k in
    let meta = read_meta t.mach addr in
    let acc = addr :: acc in
    if is_leaf_of meta then List.rev acc
    else begin
      let count = count_of meta in
      let pos = lower_bound t.mach addr count k in
      let child_idx =
        if pos < count && key_at t.mach addr pos = k then pos
        else max 0 (pos - 1)
      in
      go (raw_of t (ptr_of_packed t (value_at t.mach addr child_idx))) acc
    end
  in
  go (raw_of t t.root) []

(* Splits the topmost full node on the path to [key], under the SMO
   lock.  Inner nodes are modified only under the SMO lock, so a
   top-down sweep always inserts the separator into a parent it has
   already guaranteed non-full.  One call performs one split; the
   caller loops until the leaf has room. *)
let split_one t key =
  Machine.Lock.with_lock t.smo_lock (fun () ->
      let path = path_to t key in
      let rec find_full parent = function
        | [] -> None
        | addr :: rest ->
          if count_of (read_meta t.mach addr) = fanout then Some (parent, addr)
          else find_full (Some addr) rest
      in
      match find_full None path with
      | None -> () (* raced: someone already made room *)
      | Some (parent, addr) ->
        let leaf = is_leaf_of (read_meta t.mach addr) in
        let right_ptr = alloc_node t ~leaf in
        let lock = node_lock t addr in
        let sep =
          Machine.Lock.with_lock lock (fun () ->
              split_node t addr ~leaf ~right_ptr)
        in
        (match parent with
         | Some parent ->
           (* non-full by construction (topmost full node was [addr]) *)
           insert_into t parent ~leaf:false ~key:sep
             ~value:(Alloc_intf.pack right_ptr)
         | None ->
           (* the root split: grow the tree by one level.  Entry 0
              carries the sentinel key 0: nodes on the leftmost spine
              must sort below every real key (>= 1), so that a
              separator produced by splitting the leftmost child can
              never land at position 0 and orphan it. *)
           let new_root_ptr = alloc_node t ~leaf:false in
           let new_root = raw_of t new_root_ptr in
           Machine.critical t.mach (fun () ->
               set_entry t new_root 0 ~key:0
                 ~value:(Alloc_intf.pack t.root);
               set_entry t new_root 1 ~key:sep
                 ~value:(Alloc_intf.pack right_ptr);
               write_meta t new_root ~count:2 ~leaf:false);
           t.root <- new_root_ptr;
           t.cell.store new_root_ptr))

let rec insert t ~key ~value =
  if key < 1 then invalid_arg "Btree.insert: keys must be >= 1";
  let leaf = descend t (raw_of t t.root) key in
  let lock = node_lock t leaf in
  Machine.Lock.acquire lock;
  let meta = read_meta t.mach leaf in
  let count = count_of meta in
  (* revalidate: the leaf may have split between descend and lock *)
  let sibling = Machine.read_u64 t.mach (leaf + sibling_off) in
  let stale =
    sibling <> Alloc_intf.packed_null
    && count > 0
    && key >= key_at t.mach (raw_of t (ptr_of_packed t sibling)) 0
  in
  if stale then begin
    Machine.Lock.release lock;
    insert t ~key ~value
  end
  else if count = fanout then begin
    Machine.Lock.release lock;
    split_one t key;
    insert t ~key ~value
  end
  else
    Fun.protect
      ~finally:(fun () -> Machine.Lock.release lock)
      (fun () -> insert_into t leaf ~leaf:true ~key ~value)

(* ---------- deletion (leaf-local; no rebalancing, as FAST-FAIR) ---------- *)

let delete t k =
  let leaf = descend t (raw_of t t.root) k in
  let lock = node_lock t leaf in
  Machine.Lock.with_lock lock (fun () ->
      let meta = read_meta t.mach leaf in
      let count = count_of meta in
      let pos = lower_bound t.mach leaf count k in
      if pos < count && key_at t.mach leaf pos = k then begin
        Machine.critical t.mach (fun () ->
            for i = pos to count - 2 do
              let ky = key_at t.mach leaf (i + 1)
              and v = value_at t.mach leaf (i + 1) in
              Machine.write_u64 t.mach (leaf + entry_off i) ky;
              Machine.write_u64 t.mach (leaf + entry_off i + 8) v;
              Machine.persist t.mach (leaf + entry_off i) 16
            done;
            write_meta t leaf ~count:(count - 1) ~leaf:true);
        true
      end
      else false)

(* ---------- range scan ---------- *)

let scan t ~from_key ~n f =
  let leaf = ref (descend t (raw_of t t.root) from_key) in
  let remaining = ref n in
  let continue = ref true in
  while !continue && !remaining > 0 do
    let meta = read_meta t.mach !leaf in
    let count = count_of meta in
    let pos = lower_bound t.mach !leaf count from_key in
    let start = if !remaining = n then pos else 0 in
    let i = ref start in
    while !i < count && !remaining > 0 do
      f (key_at t.mach !leaf !i) (value_at t.mach !leaf !i);
      decr remaining;
      incr i
    done;
    let sib = Machine.read_u64 t.mach (!leaf + sibling_off) in
    if sib = Alloc_intf.packed_null then continue := false
    else leaf := raw_of t (ptr_of_packed t sib)
  done

let fold_range t ~from_key ~to_key ~init f =
  let acc = ref init in
  let leaf = ref (descend t (raw_of t t.root) from_key) in
  let first = ref true in
  let continue = ref true in
  while !continue do
    let meta = read_meta t.mach !leaf in
    let count = count_of meta in
    let start =
      if !first then lower_bound t.mach !leaf count from_key else 0
    in
    first := false;
    let i = ref start in
    while !continue && !i < count do
      let k = key_at t.mach !leaf !i in
      if k > to_key then continue := false
      else begin
        acc := f !acc k (value_at t.mach !leaf !i);
        incr i
      end
    done;
    if !continue then begin
      let sib = Machine.read_u64 t.mach (!leaf + sibling_off) in
      if sib = Alloc_intf.packed_null then continue := false
      else leaf := raw_of t (ptr_of_packed t sib)
    end
  done;
  !acc

(* ---------- pull-based cursor (merged multi-tree scans) ---------- *)

(* The cursor remembers WHERE it is logically ([cnext], the lower
   bound for the next key to yield) rather than a physical slot index:
   concurrent inserts/deletes shift entries within a leaf and splits
   halve it, so a cached (leaf, idx, count) triple goes stale the
   moment a writer touches the leaf — walking it would re-yield
   relocated keys or skip shifted ones.  Every step re-reads the leaf
   preemption-free and re-positions with [lower_bound cnext]; since
   committed keys only ever move RIGHT (splits), chasing the sibling
   chain from the cached leaf always reaches them. *)
type cursor = {
  ct : t;
  mutable cleaf : int; (* raw leaf addr the search resumes at; -1 = done *)
  mutable cnext : int; (* smallest key the cursor may still yield *)
}

let cursor_open t ~from_key =
  { ct = t; cleaf = descend t (raw_of t t.root) from_key; cnext = from_key }

let rec cursor_next c =
  if c.cleaf < 0 then None
  else begin
    let t = c.ct in
    let step =
      Machine.critical t.mach (fun () ->
          let leaf = chase_sibling t c.cleaf c.cnext in
          let count = count_of (read_meta t.mach leaf) in
          let pos = lower_bound t.mach leaf count c.cnext in
          if pos < count then begin
            c.cleaf <- leaf;
            let k = key_at t.mach leaf pos in
            c.cnext <- k + 1;
            Some (Some (k, value_at t.mach leaf pos))
          end
          else begin
            (* leaf exhausted (possibly emptied by deletes): move on *)
            let sib = Machine.read_u64 t.mach (leaf + sibling_off) in
            if sib = Alloc_intf.packed_null then begin
              c.cleaf <- -1;
              Some None
            end
            else begin
              c.cleaf <- raw_of t (ptr_of_packed t sib);
              None (* retry in the sibling *)
            end
          end)
    in
    match step with
    | Some r -> r
    | None -> cursor_next c
  end

(* ---------- introspection ---------- *)

let rec depth t addr =
  let meta = read_meta t.mach addr in
  if is_leaf_of meta then 1
  else 1 + depth t (raw_of t (ptr_of_packed t (value_at t.mach addr 0)))

let tree_depth t = depth t (raw_of t t.root)

let count_keys t =
  let total = ref 0 in
  (* leftmost leaf *)
  let rec leftmost addr =
    let meta = read_meta t.mach addr in
    if is_leaf_of meta then addr
    else leftmost (raw_of t (ptr_of_packed t (value_at t.mach addr 0)))
  in
  let leaf = ref (leftmost (raw_of t t.root)) in
  let continue = ref true in
  while !continue do
    let meta = read_meta t.mach !leaf in
    total := !total + count_of meta;
    let sib = Machine.read_u64 t.mach (!leaf + sibling_off) in
    if sib = Alloc_intf.packed_null then continue := false
    else leaf := raw_of t (ptr_of_packed t sib)
  done;
  !total

(** Structural check for tests: sortedness within nodes, leaf chain
    in ascending order. *)
let check t =
  let rec walk addr lo =
    let meta = read_meta t.mach addr in
    let count = count_of meta in
    let prev = ref lo in
    for i = 0 to count - 1 do
      let k = key_at t.mach addr i in
      (match !prev with
       | Some p when p > k -> failwith "Btree.check: unsorted keys"
       | _ -> ());
      prev := Some (key_at t.mach addr i);
      if not (is_leaf_of meta) then
        walk (raw_of t (ptr_of_packed t (value_at t.mach addr i))) None
    done
  in
  walk (raw_of t t.root) None
