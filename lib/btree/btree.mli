(** FAST-FAIR-style persistent B+-tree over a persistent allocator
    (the YCSB substrate of paper §7.5, after Hwang et al., FAST '18).

    Nodes are 512-byte persistent objects allocated from the allocator
    under test, so every insert exercises the allocation path.  Keys
    and values are 63-bit non-negative integers; keys must be ≥ 1
    (key 0 is the internal leftmost-spine sentinel).  Values are
    commonly packed persistent pointers ({!Alloc_intf.pack}).

    Concurrency model (simulated threads): searches traverse without
    locks; writers lock the target leaf; structure modifications
    additionally take a global SMO lock.  Node updates use FAST-style
    shifting writes and FAIR-style publication ordering, so a crash at
    any persistence point leaves a tree that {!attach} can reopen.
    Lock-free readers ({!find}, cursors) read each node
    preemption-free (one consistent node state per step, the atomicity
    FAST's shifting writes give real-hardware readers by construction)
    and re-chase the leaf sibling chain before concluding absence or
    advancing, so a split racing the traversal can neither hide a
    relocated key nor make a cursor repeat or skip entries. *)

type t

type root_cell = {
  load : unit -> Alloc_intf.nvmptr;
  store : Alloc_intf.nvmptr -> unit;
}
(** Where the tree's root pointer durably lives.  {!create}/{!attach}
    use the allocator's root slot (one tree per heap); embedders with
    several trees in one heap (e.g. a sharded KV service) supply a
    persistent cell per tree via {!create_in}/{!attach_in}.  [store]
    must persist the pointer before returning. *)

val create : Alloc_intf.instance -> t
(** Allocates an empty tree and publishes its root as the allocator's
    root object. *)

val attach : Alloc_intf.instance -> t
(** Reopens the tree stored at the allocator's root pointer (restart
    path; the allocator must already be attached/recovered).  Raises
    [Invalid_argument] if the root is null. *)

val create_in : Alloc_intf.instance -> root_cell -> t
(** {!create}, but publishing the root through the given cell. *)

val attach_in : Alloc_intf.instance -> root_cell -> t
(** {!attach}, but loading the root from the given cell. *)

val insert : t -> key:int -> value:int -> unit
(** Inserts or updates (updates are in-place 8-byte atomic stores).
    Raises [Invalid_argument] on [key < 1]. *)

val find : t -> int -> int option

val delete : t -> int -> bool
(** Removes the key from its leaf (no rebalancing, as in FAST-FAIR);
    returns whether it was present. *)

val scan : t -> from_key:int -> n:int -> (int -> int -> unit) -> unit
(** In-order traversal of up to [n] entries with key ≥ [from_key],
    following the leaf sibling chain. *)

val fold_range : t -> from_key:int -> to_key:int -> init:'a -> ('a -> int -> int -> 'a) -> 'a
(** In-order fold over every entry with [from_key <= key <= to_key],
    following the leaf sibling chain; stops at the first key past
    [to_key]. *)

type cursor
(** A pull-based in-order iterator: where {!scan}/{!fold_range} drive
    one tree to completion, a cursor yields one entry per call so
    several trees (e.g. the shards of a KV store) can be merged
    key-by-key.  Reads the live tree — entries inserted behind the
    cursor's position are not revisited.  The cursor tracks its
    logical position (the lower bound of the next key), not a slot
    index, and revalidates the leaf on every step, so concurrent
    splits, inserts and deletes can neither make it yield a key twice
    nor skip a key that stays present: keys are yielded in strictly
    ascending order, and every key live for the cursor's whole
    lifetime is yielded exactly once. *)

val cursor_open : t -> from_key:int -> cursor
(** Position a cursor at the first key [>= from_key]. *)

val cursor_next : cursor -> (int * int) option
(** The entry under the cursor (advancing past it), or [None] once the
    leaf chain is exhausted. *)

val tree_depth : t -> int
val count_keys : t -> int

val check : t -> unit
(** Structural validation (sortedness, leaf-chain order); raises
    [Failure] on violation.  Test/diagnostic use. *)
