(** Metrics registry: named counters, gauges and streaming histograms
    grouped by scope, snapshottable to JSON.

    Scopes are free-form strings chosen by the instrumented layer —
    ["machine"], ["heap1"], ["lock/subheap-3"], ["bench/Fig 6 - 256 B"]
    — so per-heap, per-sub-heap, per-lock and machine-wide metrics all
    live in one registry and export together.

    Counter handles are plain [int ref]s: incrementing one is as cheap
    as the hand-rolled stat fields it replaces, so live counters stay
    enabled unconditionally.  Histograms are {!Repro_util.Stats}
    instances and export count/mean/percentile summaries.

    A process-global {!default} registry serves the common case;
    every function takes [?m] to target a private registry (tests). *)

type value =
  | Counter of int ref
  | Gauge of float ref
  | Histo of Repro_util.Stats.t
  | Loghist of Hist.t

type t = {
  tbl : (string * string, value) Hashtbl.t;
  mutable order : (string * string) list; (* reverse insertion order *)
}

let create () = { tbl = Hashtbl.create 64; order = [] }

let default = create ()

let reset ?(m = default) () =
  Hashtbl.reset m.tbl;
  m.order <- []

let find_or_add m key mk =
  match Hashtbl.find_opt m.tbl key with
  | Some v -> v
  | None ->
    let v = mk () in
    Hashtbl.add m.tbl key v;
    m.order <- key :: m.order;
    v

let counter ?(m = default) ~scope name =
  match find_or_add m (scope, name) (fun () -> Counter (ref 0)) with
  | Counter r -> r
  | _ -> invalid_arg (Printf.sprintf "Metrics.counter: %s/%s is not a counter" scope name)

let incr r = Stdlib.incr r
let add r n = r := !r + n
let value r = !r

let set_gauge ?(m = default) ~scope name x =
  match find_or_add m (scope, name) (fun () -> Gauge (ref 0.)) with
  | Gauge r -> r := x
  | _ -> invalid_arg (Printf.sprintf "Metrics.set_gauge: %s/%s is not a gauge" scope name)

let histogram ?(m = default) ~scope name =
  match find_or_add m (scope, name) (fun () -> Histo (Repro_util.Stats.create ())) with
  | Histo s -> s
  | _ -> invalid_arg (Printf.sprintf "Metrics.histogram: %s/%s is not a histogram" scope name)

let observe = Repro_util.Stats.add

(** Fixed-bucket log-scale histogram ({!Hist}) for high-volume
    simulated-ns latency samples; exports p50/p99/p999 in snapshots. *)
let log_histogram ?(m = default) ~scope name =
  match find_or_add m (scope, name) (fun () -> Loghist (Hist.create ())) with
  | Loghist h -> h
  | _ ->
    invalid_arg
      (Printf.sprintf "Metrics.log_histogram: %s/%s is not a log histogram"
         scope name)

(* ---------- lookup (tests, cross-checks) ---------- *)

let get_counter ?(m = default) ~scope name =
  match Hashtbl.find_opt m.tbl (scope, name) with
  | Some (Counter r) -> Some !r
  | _ -> None

let get_gauge ?(m = default) ~scope name =
  match Hashtbl.find_opt m.tbl (scope, name) with
  | Some (Gauge r) -> Some !r
  | _ -> None

let get_log_histogram ?(m = default) ~scope name =
  match Hashtbl.find_opt m.tbl (scope, name) with
  | Some (Loghist h) -> Some h
  | _ -> None

(* ---------- snapshot ---------- *)

let value_to_json = function
  | Counter r -> Json.Num (float_of_int !r)
  | Gauge r -> Json.Num !r
  | Histo s ->
    let module St = Repro_util.Stats in
    if St.count s = 0 then Json.Obj [ ("count", Json.Num 0.) ]
    else
      Json.Obj
        [ ("count", Json.Num (float_of_int (St.count s)));
          ("mean", Json.Num (St.mean s));
          ("min", Json.Num (St.min_value s));
          ("p50", Json.Num (St.percentile s 50.));
          ("p99", Json.Num (St.percentile s 99.));
          ("max", Json.Num (St.max_value s)) ]
  | Loghist h ->
    if Hist.count h = 0 then Json.Obj [ ("count", Json.Num 0.) ]
    else
      Json.Obj
        [ ("count", Json.Num (float_of_int (Hist.count h)));
          ("mean", Json.Num (Hist.mean h));
          ("min", Json.Num (float_of_int (Hist.min_value h)));
          ("p50", Json.Num (float_of_int (Hist.percentile h 50.)));
          ("p99", Json.Num (float_of_int (Hist.percentile h 99.)));
          ("p999", Json.Num (float_of_int (Hist.percentile h 99.9)));
          ("max", Json.Num (float_of_int (Hist.max_value h))) ]

(** Snapshot as a JSON value: one object per scope, in first-insertion
    order, each mapping metric names to numbers (counters, gauges) or
    summary objects (histograms). *)
let snapshot ?(m = default) () =
  let keys = List.rev m.order in
  let scopes = Hashtbl.create 16 in
  let scope_order = ref [] in
  List.iter
    (fun (scope, name) ->
      let entry =
        match Hashtbl.find_opt scopes scope with
        | Some l -> l
        | None ->
          let l = ref [] in
          Hashtbl.add scopes scope l;
          scope_order := scope :: !scope_order;
          l
      in
      entry := (name, value_to_json (Hashtbl.find m.tbl (scope, name))) :: !entry)
    keys;
  Json.Obj
    (List.rev_map
       (fun scope ->
         (scope, Json.Obj (List.rev !(Hashtbl.find scopes scope))))
       !scope_order)

let to_json ?m () = Json.to_string (snapshot ?m ())

let write_json ?m path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json ?m ()))
