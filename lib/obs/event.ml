(** Typed trace-event kinds.

    One constructor per mechanism the paper's evaluation attributes
    cost to: allocator operations (§5.2–§5.5), transactions (§5.3),
    locks (§5.7), persistence barriers (§6), MPK toggles (§4.3),
    crash/recovery (§5.8), sub-heap and hash-table maintenance (§4.1,
    §4.4, §5.6) and scheduler activity.  Kinds are stored as small
    ints in the trace ring buffer; [name] and [category] drive the
    Chrome trace-event export. *)

type kind =
  | Alloc
  | Free
  | Tx_alloc
  | Tx_commit
  | Tx_abort
  | Lock_acquire
  | Lock_contend
  | Lock_release
  | Clwb
  | Sfence
  | Persist
  | Wrpkru
  | Crash
  | Recovery_begin
  | Recovery_end
  | Undo_replay
  | Subheap_create
  | Hash_extend
  | Defrag
  | Merge
  | Ctx_switch
  | Thread_spawn
  | Thread_finish
  | Custom

let to_int = function
  | Alloc -> 0
  | Free -> 1
  | Tx_alloc -> 2
  | Tx_commit -> 3
  | Tx_abort -> 4
  | Lock_acquire -> 5
  | Lock_contend -> 6
  | Lock_release -> 7
  | Clwb -> 8
  | Sfence -> 9
  | Persist -> 10
  | Wrpkru -> 11
  | Crash -> 12
  | Recovery_begin -> 13
  | Recovery_end -> 14
  | Undo_replay -> 15
  | Subheap_create -> 16
  | Hash_extend -> 17
  | Defrag -> 18
  | Merge -> 19
  | Ctx_switch -> 20
  | Thread_spawn -> 21
  | Thread_finish -> 22
  | Custom -> 23

let of_int = function
  | 0 -> Alloc
  | 1 -> Free
  | 2 -> Tx_alloc
  | 3 -> Tx_commit
  | 4 -> Tx_abort
  | 5 -> Lock_acquire
  | 6 -> Lock_contend
  | 7 -> Lock_release
  | 8 -> Clwb
  | 9 -> Sfence
  | 10 -> Persist
  | 11 -> Wrpkru
  | 12 -> Crash
  | 13 -> Recovery_begin
  | 14 -> Recovery_end
  | 15 -> Undo_replay
  | 16 -> Subheap_create
  | 17 -> Hash_extend
  | 18 -> Defrag
  | 19 -> Merge
  | 20 -> Ctx_switch
  | 21 -> Thread_spawn
  | 22 -> Thread_finish
  | 23 -> Custom
  | n -> invalid_arg (Printf.sprintf "Event.of_int: %d" n)

let name = function
  | Alloc -> "alloc"
  | Free -> "free"
  | Tx_alloc -> "tx_alloc"
  | Tx_commit -> "tx_commit"
  | Tx_abort -> "tx_abort"
  | Lock_acquire -> "lock_acquire"
  | Lock_contend -> "lock_contend"
  | Lock_release -> "lock_release"
  | Clwb -> "clwb"
  | Sfence -> "sfence"
  | Persist -> "persist"
  | Wrpkru -> "wrpkru"
  | Crash -> "crash"
  | Recovery_begin -> "recovery_begin"
  | Recovery_end -> "recovery_end"
  | Undo_replay -> "undo_replay"
  | Subheap_create -> "subheap_create"
  | Hash_extend -> "hash_extend"
  | Defrag -> "defrag"
  | Merge -> "merge"
  | Ctx_switch -> "ctx_switch"
  | Thread_spawn -> "thread_spawn"
  | Thread_finish -> "thread_finish"
  | Custom -> "custom"

(** Chrome trace-event category ("cat" field): lets Perfetto filter
    whole mechanism families at once. *)
let category = function
  | Alloc | Free -> "alloc"
  | Tx_alloc | Tx_commit | Tx_abort -> "tx"
  | Lock_acquire | Lock_contend | Lock_release -> "lock"
  | Clwb | Sfence | Persist -> "persist"
  | Wrpkru -> "mpk"
  | Crash | Recovery_begin | Recovery_end | Undo_replay -> "crash"
  | Subheap_create | Hash_extend | Defrag | Merge -> "heap"
  | Ctx_switch | Thread_spawn | Thread_finish -> "sched"
  | Custom -> "misc"
