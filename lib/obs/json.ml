(** Minimal JSON support for the observability layer.

    The container image carries no JSON library, so the trace exporter
    and metrics registry emit JSON through the helpers here, and the
    test suite re-parses it with {!parse}.  Covers exactly the JSON
    subset those emitters produce (objects, arrays, strings with
    escapes, finite numbers, booleans, null). *)

type v =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of v list
  | Obj of (string * v) list

(* ---------- writing ---------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%.6g" f)

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> number_to buf f
  | Str s -> escape_to buf s
  | Arr items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        write buf item)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ---------- parsing ---------- *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let fail c msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected %c" ch)

let parse_literal c lit value =
  let n = String.length lit in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = lit then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected %s" lit)

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
       | Some '"' -> Buffer.add_char buf '"'; advance c
       | Some '\\' -> Buffer.add_char buf '\\'; advance c
       | Some '/' -> Buffer.add_char buf '/'; advance c
       | Some 'n' -> Buffer.add_char buf '\n'; advance c
       | Some 'r' -> Buffer.add_char buf '\r'; advance c
       | Some 't' -> Buffer.add_char buf '\t'; advance c
       | Some 'b' -> Buffer.add_char buf '\b'; advance c
       | Some 'f' -> Buffer.add_char buf '\012'; advance c
       | Some 'u' ->
         advance c;
         if c.pos + 4 > String.length c.src then fail c "bad \\u escape";
         let code = int_of_string ("0x" ^ String.sub c.src c.pos 4) in
         c.pos <- c.pos + 4;
         (* our own emitter only writes \u00XX control characters *)
         if code < 0x80 then Buffer.add_char buf (Char.chr code)
         else Buffer.add_char buf '?'
       | _ -> fail c "bad escape");
      go ()
    | Some ch ->
      Buffer.add_char buf ch;
      advance c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some ch -> is_num_char ch | None -> false) do
    advance c
  done;
  if c.pos = start then fail c "expected number";
  match float_of_string_opt (String.sub c.src start (c.pos - start)) with
  | Some f -> Num f
  | None -> fail c "malformed number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin advance c; Obj [] end
    else begin
      let rec fields acc =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let item = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' -> advance c; fields ((k, item) :: acc)
        | Some '}' -> advance c; Obj (List.rev ((k, item) :: acc))
        | _ -> fail c "expected , or } in object"
      in
      fields []
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin advance c; Arr [] end
    else begin
      let rec items acc =
        let item = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' -> advance c; items (item :: acc)
        | Some ']' -> advance c; Arr (List.rev (item :: acc))
        | _ -> fail c "expected , or ] in array"
      in
      items []
    end
  | Some '"' -> Str (parse_string c)
  | Some 't' -> parse_literal c "true" (Bool true)
  | Some 'f' -> parse_literal c "false" (Bool false)
  | Some 'n' -> parse_literal c "null" Null
  | Some _ -> parse_number c

let parse s =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail c "trailing garbage";
  v

(* ---------- accessors (used by tests) ---------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function Arr items -> Some items | _ -> None
let to_float = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
