(** Fixed-bucket log-linear histogram for simulated-time latencies.

    {!Repro_util.Stats} keeps every sample, which is fine for a few
    thousand benchmark cells but not for per-request latency recording
    at service scale (hundreds of thousands of samples per run) or for
    tail percentiles (p999 needs the tail resolved, not a sorted copy
    of everything).  This histogram is HDR-style: values are bucketed
    into 2^5 = 32 linear sub-buckets per power of two, giving a
    constant ≤ 3.2 % relative error at every magnitude, O(1) record
    cost and a fixed ~2 KB footprint regardless of sample count.

    Values are nanoseconds of simulated time (any non-negative int
    works; negatives clamp to 0).  Percentile queries return the
    midpoint of the bucket containing the requested rank. *)

let sub_bits = 5
let sub = 1 lsl sub_bits (* 32 sub-buckets per octave *)

(* value range: [0, 2^61); msb(v) <= 60 -> shift <= 55 -> max index
   (56 lsl 5) + 31 = 1823 *)
let buckets = (57 lsl sub_bits) - 1 + 1

type t = {
  counts : int array;
  mutable n : int;
  mutable sum : int;
  mutable vmin : int;
  mutable vmax : int;
}

let create () =
  { counts = Array.make buckets 0; n = 0; sum = 0; vmin = max_int; vmax = 0 }

let clear t =
  Array.fill t.counts 0 buckets 0;
  t.n <- 0;
  t.sum <- 0;
  t.vmin <- max_int;
  t.vmax <- 0

let msb v =
  (* position of the highest set bit; v >= 1 *)
  let r = ref 0 and v = ref v in
  if !v lsr 32 <> 0 then (r := !r + 32; v := !v lsr 32);
  if !v lsr 16 <> 0 then (r := !r + 16; v := !v lsr 16);
  if !v lsr 8 <> 0 then (r := !r + 8; v := !v lsr 8);
  if !v lsr 4 <> 0 then (r := !r + 4; v := !v lsr 4);
  if !v lsr 2 <> 0 then (r := !r + 2; v := !v lsr 2);
  if !v lsr 1 <> 0 then r := !r + 1;
  !r

let bucket_of v =
  if v < sub then v
  else
    let shift = msb v - sub_bits in
    ((shift + 1) lsl sub_bits) lor ((v lsr shift) land (sub - 1))

(* midpoint of the bucket's value range *)
let bucket_value i =
  if i < sub then i
  else
    let shift = (i lsr sub_bits) - 1 in
    let low = (sub + (i land (sub - 1))) lsl shift in
    if shift = 0 then low else low + (1 lsl (shift - 1))

let record t v =
  let v = if v < 0 then 0 else min v ((1 lsl 60) - 1) in
  t.counts.(bucket_of v) <- t.counts.(bucket_of v) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum + v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v

let count t = t.n
let total t = t.sum
let mean t = if t.n = 0 then 0. else float_of_int t.sum /. float_of_int t.n
let min_value t = if t.n = 0 then 0 else t.vmin
let max_value t = t.vmax

(** [percentile t p] with [p] in [0, 100]: the approximate value at
    that percentile (bucket midpoint, clamped to the observed
    min/max so p0/p100 are exact). *)
let percentile t p =
  if t.n = 0 then 0
  else begin
    let target =
      let r = int_of_float (ceil (p /. 100. *. float_of_int t.n)) in
      if r < 1 then 1 else if r > t.n then t.n else r
    in
    let cum = ref 0 and i = ref 0 and res = ref t.vmax in
    (try
       while !i < buckets do
         cum := !cum + t.counts.(!i);
         if !cum >= target then begin
           res := bucket_value !i;
           raise Exit
         end;
         incr i
       done
     with Exit -> ());
    let v = !res in
    if v < t.vmin then t.vmin else if v > t.vmax then t.vmax else v
  end

let merge ~into src =
  Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) src.counts;
  into.n <- into.n + src.n;
  into.sum <- into.sum + src.sum;
  if src.n > 0 then begin
    if src.vmin < into.vmin then into.vmin <- src.vmin;
    if src.vmax > into.vmax then into.vmax <- src.vmax
  end
