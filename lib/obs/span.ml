(** Request-scoped causal spans for distributed tracing.

    A process-global store of spans, each belonging to a {e trace} (one
    client request) and pointing at a parent span, so a completed
    request yields a causal tree: client queue wait, request wire hop,
    decode, shard-lock wait, store/txn work, replication wire, backup
    apply, ack wire, reply wire.  Because the whole cluster runs on one
    simulated clock, span ids are globally valid and a context crosses
    machines as two plain ints (trace id + parent span id) carried on
    the transport envelope — no allocation on the hot path.

    The store is a set of parallel int arrays of fixed capacity; unlike
    the event ring in {!Trace} it never overwrites (span ids must stay
    valid for the lifetime of the run), so when it fills up new spans
    are dropped and counted.  Every operation on span id [-1] (or trace
    id [-1]) is a no-op, which makes "context absent" and "store full"
    the same cheap code path for instrumented call sites.

    Stages come in two depths: {e budget} stages are direct children of
    the request root and partition its wall-clock time (the latency
    budget {!Attrib} reports); {e detail} stages sit below a budget
    stage and refine it (e.g. the clwb/fence persist portion of store
    work, or the wire/apply/ack decomposition of a sync replication
    wait). *)

(* ---------- stage taxonomy ---------- *)

type stage =
  | Request  (** root: client enqueue to reply delivery *)
  | Req_wire  (** client -> server wire hop *)
  | Queue  (** delivered, waiting in the server inbox for a handler *)
  | Decode  (** request decode CPU on the handler *)
  | Lock_wait  (** waiting for the shard lock *)
  | Store  (** single-op store work under the shard lock *)
  | Txn  (** cross-shard 2PC transaction, lock to decision *)
  | Repl_ack  (** sync mode: waiting for the backup's cumulative ack *)
  | Rep_wire  (** server -> client reply hop *)
  | Persist  (** detail of Store/Txn: clwb + fence charges *)
  | Txn_prepare  (** detail of Txn: participant prepare phase *)
  | Txn_decide  (** detail of Txn: decision persist + apply *)
  | Repl_wire  (** detail of Repl_ack: record's primary -> backup hop *)
  | Backup_apply  (** detail of Repl_ack: in-order apply on the backup *)
  | Ack_wire  (** detail of Repl_ack: cumulative ack's hop back *)
  | Flush_wait
      (** group commit: waiting for the covering batch flush + ack —
          the shared replication wait of a batched mutation group *)
  | Snapshot
      (** MVCC read path: lock-free snapshot get/scan work (version
          chain resolution + tree floor reads), no shard lock taken *)
  | Alloc
      (** detail of Store/Txn: time inside allocator calls (bin pops,
          refill carves, stash bookkeeping, inner alloc fallbacks) *)
  | Rcache
      (** detail of Store/Snapshot: DRAM read-cache probe charges on
          the read path (hits answer entirely inside this stage) *)

let stage_name = function
  | Request -> "request"
  | Req_wire -> "req_wire"
  | Queue -> "queue"
  | Decode -> "decode"
  | Lock_wait -> "lock_wait"
  | Store -> "store"
  | Txn -> "txn"
  | Repl_ack -> "repl_ack"
  | Rep_wire -> "rep_wire"
  | Persist -> "persist"
  | Txn_prepare -> "txn_prepare"
  | Txn_decide -> "txn_decide"
  | Repl_wire -> "repl_wire"
  | Backup_apply -> "backup_apply"
  | Ack_wire -> "ack_wire"
  | Flush_wait -> "flush_wait"
  | Snapshot -> "snapshot"
  | Alloc -> "alloc"
  | Rcache -> "rcache"

let stage_to_int = function
  | Request -> 0
  | Req_wire -> 1
  | Queue -> 2
  | Decode -> 3
  | Lock_wait -> 4
  | Store -> 5
  | Txn -> 6
  | Repl_ack -> 7
  | Rep_wire -> 8
  | Persist -> 9
  | Txn_prepare -> 10
  | Txn_decide -> 11
  | Repl_wire -> 12
  | Backup_apply -> 13
  | Ack_wire -> 14
  | Flush_wait -> 15
  | Snapshot -> 16
  | Alloc -> 17
  | Rcache -> 18

let stage_of_int = function
  | 0 -> Request
  | 1 -> Req_wire
  | 2 -> Queue
  | 3 -> Decode
  | 4 -> Lock_wait
  | 5 -> Store
  | 6 -> Txn
  | 7 -> Repl_ack
  | 8 -> Rep_wire
  | 9 -> Persist
  | 10 -> Txn_prepare
  | 11 -> Txn_decide
  | 12 -> Repl_wire
  | 13 -> Backup_apply
  | 14 -> Ack_wire
  | 15 -> Flush_wait
  | 16 -> Snapshot
  | 17 -> Alloc
  | 18 -> Rcache
  | n -> invalid_arg (Printf.sprintf "Span.stage_of_int: %d" n)

let stage_count = 19

(** Budget stages: direct children of the request root whose durations
    are meant to partition its wall-clock time. *)
let is_budget = function
  | Req_wire | Queue | Decode | Lock_wait | Store | Txn | Repl_ack | Rep_wire
  | Flush_wait | Snapshot -> true
  | Request | Persist | Txn_prepare | Txn_decide | Repl_wire
  | Backup_apply | Ack_wire | Alloc | Rcache -> false

(* ---------- clock plumbing ---------- *)

(* Same shape as Trace's clock; Trace.set_clock forwards here so the
   scheduler's single registration wires both.  This module must not
   reference Trace (Trace depends on it for the chrome export). *)

let clk_in_sim : (unit -> bool) ref = ref (fun () -> false)
let clk_now : (unit -> int) ref = ref (fun () -> 0)
let clk_tid : (unit -> int) ref = ref (fun () -> -1)

let set_clock ~in_sim ~now ~tid =
  clk_in_sim := in_sim;
  clk_now := now;
  clk_tid := tid

let now_or last = if !clk_in_sim () then !clk_now () else last
let tid_or_main () = if !clk_in_sim () then !clk_tid () else -1

(* ---------- the store ---------- *)

type store = {
  cap : int;
  trace : int array;
  parent : int array;
  stage : int array;
  t0 : int array;
  t1 : int array; (* -1 = still open *)
  mach : int array;
  tid : int array;
  mutable next : int; (* next free slot *)
  mutable dropped : int; (* spans refused because the store was full *)
  mutable last_ts : int;
}

let mk_store cap =
  { cap;
    trace = Array.make cap (-1);
    parent = Array.make cap (-1);
    stage = Array.make cap 0;
    t0 = Array.make cap 0;
    t1 = Array.make cap (-1);
    mach = Array.make cap 0;
    tid = Array.make cap (-1);
    next = 0;
    dropped = 0;
    last_ts = 0 }

let on = ref false
let store : store option ref = ref None
let trace_counter = ref 0

let default_capacity = 1 lsl 18

let start ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Span.start: capacity must be positive";
  store := Some (mk_store capacity);
  trace_counter := 0;
  on := true

let stop () = on := false

let persist_by_tid : (int, int ref) Hashtbl.t = Hashtbl.create 64
let alloc_by_tid : (int, int ref) Hashtbl.t = Hashtbl.create 64
let rcache_by_tid : (int, int ref) Hashtbl.t = Hashtbl.create 64

let clear () =
  on := false;
  store := None;
  trace_counter := 0;
  Hashtbl.reset persist_by_tid;
  Hashtbl.reset alloc_by_tid;
  Hashtbl.reset rcache_by_tid

let enabled () = !on

let count () = match !store with Some s -> s.next | None -> 0
let dropped () = match !store with Some s -> s.dropped | None -> 0

(** Fresh trace id for a new request; [-1] when tracing is off, which
    turns every downstream span operation into a no-op. *)
let new_trace () =
  if !on then begin
    let t = !trace_counter in
    trace_counter := t + 1;
    t
  end
  else -1

let alloc s =
  if s.next >= s.cap then begin
    s.dropped <- s.dropped + 1;
    -1
  end
  else begin
    let i = s.next in
    s.next <- i + 1;
    i
  end

let stamp s ts = if ts > s.last_ts then s.last_ts <- ts

let open_span ~trace ~parent ?(mach = 0) stage =
  if (not !on) || trace < 0 then -1
  else
    match !store with
    | None -> -1
    | Some s ->
      let i = alloc s in
      if i >= 0 then begin
        let ts = now_or s.last_ts in
        stamp s ts;
        s.trace.(i) <- trace;
        s.parent.(i) <- parent;
        s.stage.(i) <- stage_to_int stage;
        s.t0.(i) <- ts;
        s.t1.(i) <- -1;
        s.mach.(i) <- mach;
        s.tid.(i) <- tid_or_main ()
      end;
      i

let close_span id =
  if !on && id >= 0 then
    match !store with
    | None -> ()
    | Some s ->
      let ts = now_or s.last_ts in
      stamp s ts;
      s.t1.(id) <- max ts s.t0.(id)

(** Close at an explicit timestamp — e.g. a root span ends when the
    reply was {e delivered}, not when the client thread got around to
    draining it. *)
let close_span_at id ~t1 =
  if !on && id >= 0 then
    match !store with
    | None -> ()
    | Some s ->
      stamp s t1;
      s.t1.(id) <- max t1 s.t0.(id)

(** Re-anchor an open span's start — e.g. align the root with the
    send timestamp recorded after the send's CPU charge. *)
let set_start id ~t0 =
  if !on && id >= 0 then
    match !store with Some s -> s.t0.(id) <- t0 | None -> ()

(** Record an already-completed interval (e.g. a wire hop known only at
    delivery: [t0 = sent_at], [t1 = now]). *)
let add_span ~trace ~parent ?(mach = 0) stage ~t0 ~t1 =
  if (not !on) || trace < 0 then -1
  else
    match !store with
    | None -> -1
    | Some s ->
      let i = alloc s in
      if i >= 0 then begin
        stamp s (max t0 t1);
        s.trace.(i) <- trace;
        s.parent.(i) <- parent;
        s.stage.(i) <- stage_to_int stage;
        s.t0.(i) <- t0;
        s.t1.(i) <- max t1 t0;
        s.mach.(i) <- mach;
        s.tid.(i) <- tid_or_main ()
      end;
      i

(* ---------- per-thread persist accounting ---------- *)

(* The machine layer reports every clwb/fence charge here (guarded by
   [enabled]), keyed by simulated thread, so a handler can bracket one
   store operation and learn exactly how many of its nanoseconds were
   persist-ordering cost — the Persist detail span. *)

let note_persist ns =
  if !on && ns > 0 then begin
    let tid = tid_or_main () in
    match Hashtbl.find_opt persist_by_tid tid with
    | Some r -> r := !r + ns
    | None -> Hashtbl.add persist_by_tid tid (ref ns)
  end

let persist_mark () =
  match Hashtbl.find_opt persist_by_tid (tid_or_main ()) with
  | Some r -> !r
  | None -> 0

let persist_since mark = persist_mark () - mark

(* Same shape for allocator time: the tcache wrapper reports the
   simulated nanoseconds each allocator entry point spent, keyed by
   thread, so a handler brackets one operation and emits an Alloc
   detail span under its Store/Txn budget stage. *)

let note_alloc ns =
  if !on && ns > 0 then begin
    let tid = tid_or_main () in
    match Hashtbl.find_opt alloc_by_tid tid with
    | Some r -> r := !r + ns
    | None -> Hashtbl.add alloc_by_tid tid (ref ns)
  end

let alloc_mark () =
  match Hashtbl.find_opt alloc_by_tid (tid_or_main ()) with
  | Some r -> !r
  | None -> 0

let alloc_since mark = alloc_mark () - mark

(* And for read-cache probes: the Kv read path reports each probe's
   simulated cost, so a handler brackets one get/snapshot-get and
   emits an Rcache detail span under its Store/Snapshot budget stage. *)

let note_rcache ns =
  if !on && ns > 0 then begin
    let tid = tid_or_main () in
    match Hashtbl.find_opt rcache_by_tid tid with
    | Some r -> r := !r + ns
    | None -> Hashtbl.add rcache_by_tid tid (ref ns)
  end

let rcache_mark () =
  match Hashtbl.find_opt rcache_by_tid (tid_or_main ()) with
  | Some r -> !r
  | None -> 0

let rcache_since mark = rcache_mark () - mark

(* ---------- reading back ---------- *)

(** Iterate closed spans in id order (open spans — requests still in
    flight when the run ended — are skipped). *)
let iter f =
  match !store with
  | None -> ()
  | Some s ->
    for i = 0 to s.next - 1 do
      if s.t1.(i) >= 0 then
        f ~id:i ~trace:s.trace.(i) ~parent:s.parent.(i)
          ~stage:(stage_of_int s.stage.(i))
          ~t0:s.t0.(i) ~t1:s.t1.(i) ~mach:s.mach.(i) ~tid:s.tid.(i)
    done

let parent_of id =
  match !store with
  | Some s when id >= 0 && id < s.next -> s.parent.(id)
  | _ -> -1

let mach_of id =
  match !store with
  | Some s when id >= 0 && id < s.next -> s.mach.(id)
  | _ -> 0

(* ---------- Chrome trace-event export fragment ---------- *)

let us ns = Printf.sprintf "%.3f" (float_of_int ns /. 1000.)

(** Append span slices and cross-machine flow events to a Chrome
    trace-event stream.  Spans are [ph:"X"] slices whose [pid] is the
    simulated machine; when a span's parent lives on a different
    machine, a flow arrow links them: [ph:"s"] anchored in the parent's
    slice, [ph:"f" bp:"e"] anchored in the child's, both keyed by the
    child's span id.  Call [sep] before each event. *)
let chrome_events buf ~sep =
  match !store with
  | None -> ()
  | Some s ->
    (* name the extra machine processes (pid 0 is named by Trace) *)
    let machs = Hashtbl.create 4 in
    for i = 0 to s.next - 1 do
      if s.t1.(i) >= 0 then Hashtbl.replace machs s.mach.(i) ()
    done;
    Hashtbl.iter
      (fun m () ->
        if m > 0 then begin
          sep ();
          Buffer.add_string buf
            (Printf.sprintf
               "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\
                \"tid\":0,\"args\":{\"name\":\"poseidon-machine-%d\"}}"
               m m)
        end)
      machs;
    iter (fun ~id ~trace ~parent ~stage ~t0 ~t1 ~mach ~tid ->
        sep ();
        Buffer.add_string buf
          (Printf.sprintf
             "{\"name\":\"%s\",\"cat\":\"span\",\"ph\":\"X\",\
              \"ts\":%s,\"dur\":%s,\"pid\":%d,\"tid\":%d,\
              \"args\":{\"trace\":%d,\"span\":%d,\"parent\":%d}}"
             (stage_name stage) (us t0) (us (t1 - t0)) mach tid trace id
             parent);
        if parent >= 0 && mach_of parent <> mach then begin
          (* flow start rides the parent's slice: clamp the anchor
             timestamp into the parent's interval so Perfetto binds it *)
          let pm = mach_of parent in
          let pt0 = s.t0.(parent) in
          let pt1 = if s.t1.(parent) >= 0 then s.t1.(parent) else t0 in
          let anchor = min (max t0 pt0) pt1 in
          sep ();
          Buffer.add_string buf
            (Printf.sprintf
               "{\"name\":\"%s\",\"cat\":\"span\",\"ph\":\"s\",\
                \"id\":%d,\"ts\":%s,\"pid\":%d,\"tid\":%d}"
               (stage_name stage) id (us anchor) pm s.tid.(parent));
          sep ();
          Buffer.add_string buf
            (Printf.sprintf
               "{\"name\":\"%s\",\"cat\":\"span\",\"ph\":\"f\",\
                \"bp\":\"e\",\"id\":%d,\"ts\":%s,\"pid\":%d,\"tid\":%d}"
               (stage_name stage) id (us t0) mach tid)
        end)
