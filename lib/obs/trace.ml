(** Structured event tracer.

    A process-global ring buffer of typed events, each stamped with
    simulated-time nanoseconds, simulated thread id, CPU and NUMA node.
    Emission is allocation-free: events live in parallel int arrays,
    names are interned, and every [emit*] entry point starts with a
    single flag test, so a disabled tracer costs one load + branch per
    call site.

    Timestamps come from a clock the scheduler library registers at
    link time ({!set_clock}); events emitted outside the simulation
    (setup, crash injection) reuse the largest timestamp seen so far
    with thread id/CPU [-1], which keeps the stream monotone per
    thread.

    The export format is Chrome trace-event JSON (the ["traceEvents"]
    array form), directly loadable in Perfetto ({{:https://ui.perfetto.dev}}).
    Durations are spans (ph ["X"]); everything else is a thread-scoped
    instant (ph ["i"]).  [ts]/[dur] are microseconds with nanosecond
    decimals, as the format requires. *)

(* ---------- clock plumbing ---------- *)

type clock = {
  in_sim : unit -> bool;
  now : unit -> int;
  tid : unit -> int;
  cpu : unit -> int;
}

let clock : clock option ref = ref None

let set_clock ~in_sim ~now ~tid ~cpu =
  clock := Some { in_sim; now; tid; cpu };
  (* one registration wires both the event ring and the span store *)
  Span.set_clock ~in_sim ~now ~tid

let node_of_cpu : (int -> int) ref = ref (fun _ -> -1)
let set_node_of_cpu f = node_of_cpu := f

(* ---------- name interning ---------- *)

let name_ids : (string, int) Hashtbl.t = Hashtbl.create 64
let names = ref (Array.make 64 "")
let name_count = ref 0

let intern s =
  match Hashtbl.find_opt name_ids s with
  | Some i -> i
  | None ->
    let i = !name_count in
    if i >= Array.length !names then begin
      let bigger = Array.make (2 * Array.length !names) "" in
      Array.blit !names 0 bigger 0 i;
      names := bigger
    end;
    !names.(i) <- s;
    Hashtbl.add name_ids s i;
    name_count := i + 1;
    i

(* ---------- the ring ---------- *)

type ring = {
  cap : int;
  ts : int array;
  dur : int array; (* -1 = instant *)
  tid : int array;
  cpu : int array;
  node : int array;
  kind : int array;
  a1 : int array;
  a2 : int array;
  name_ix : int array; (* -1 = none *)
  mutable total : int; (* events emitted, including overwritten ones *)
  mutable last_ts : int;
}

let mk_ring cap =
  { cap;
    ts = Array.make cap 0;
    dur = Array.make cap (-1);
    tid = Array.make cap (-1);
    cpu = Array.make cap (-1);
    node = Array.make cap (-1);
    kind = Array.make cap 0;
    a1 = Array.make cap 0;
    a2 = Array.make cap 0;
    name_ix = Array.make cap (-1);
    total = 0;
    last_ts = 0 }

let on = ref false
let ring : ring option ref = ref None

let default_capacity = 1 lsl 20

let start ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Trace.start: capacity must be positive";
  ring := Some (mk_ring capacity);
  on := true

let stop () = on := false

let clear () =
  on := false;
  ring := None

let enabled () = !on

let count () = match !ring with Some r -> min r.total r.cap | None -> 0
let total_emitted () = match !ring with Some r -> r.total | None -> 0
let dropped () = match !ring with Some r -> max 0 (r.total - r.cap) | None -> 0

(* ---------- emission ---------- *)

let record r ~dur ~name_ix k a1 a2 =
  let ts, tid, cpu =
    match !clock with
    | Some c when c.in_sim () -> (c.now (), c.tid (), c.cpu ())
    | _ -> (r.last_ts, -1, -1)
  in
  if ts > r.last_ts then r.last_ts <- ts;
  let i = r.total mod r.cap in
  r.ts.(i) <- ts;
  r.dur.(i) <- dur;
  r.tid.(i) <- tid;
  r.cpu.(i) <- cpu;
  r.node.(i) <- (if cpu >= 0 then !node_of_cpu cpu else -1);
  r.kind.(i) <- Event.to_int k;
  r.a1.(i) <- a1;
  r.a2.(i) <- a2;
  r.name_ix.(i) <- name_ix;
  r.total <- r.total + 1

let emit2 k a1 a2 =
  if !on then
    match !ring with
    | Some r -> record r ~dur:(-1) ~name_ix:(-1) k a1 a2
    | None -> ()

let emit k = emit2 k 0 0
let emit1 k a1 = emit2 k a1 0

let emit_named k name a1 =
  if !on then
    match !ring with
    | Some r -> record r ~dur:(-1) ~name_ix:(intern name) k a1 0
    | None -> ()

(** A span that just ended: covers [now - dur, now]. *)
let emit_span ?name k ~dur a1 =
  if !on then
    match !ring with
    | Some r ->
      let name_ix = match name with Some s -> intern s | None -> -1 in
      record r ~dur:(max dur 0) ~name_ix k a1 0
    | None -> ()

(* ---------- reading back ---------- *)

let iter f =
  match !ring with
  | None -> ()
  | Some r ->
    let retained = min r.total r.cap in
    let first = r.total - retained in
    for n = first to r.total - 1 do
      let i = n mod r.cap in
      f ~ts:r.ts.(i) ~dur:r.dur.(i) ~tid:r.tid.(i) ~cpu:r.cpu.(i)
        ~node:r.node.(i)
        ~kind:(Event.of_int r.kind.(i))
        ~a1:r.a1.(i) ~a2:r.a2.(i)
        ~name:(if r.name_ix.(i) >= 0 then Some !names.(r.name_ix.(i)) else None)
    done

(* ---------- Chrome trace-event export ---------- *)

(* ts is nanoseconds; the format wants microseconds.  %.3f keeps full
   nanosecond resolution. *)
let us ns = Printf.sprintf "%.3f" (float_of_int ns /. 1000.)

let to_chrome_json () =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_char buf ',' in
  (* metadata: name the process and every simulated thread *)
  let tids = Hashtbl.create 64 in
  iter (fun ~ts:_ ~dur:_ ~tid ~cpu:_ ~node:_ ~kind:_ ~a1:_ ~a2:_ ~name:_ ->
      Hashtbl.replace tids tid ());
  sep ();
  Buffer.add_string buf
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
     \"args\":{\"name\":\"poseidon-sim\"}}";
  Hashtbl.iter
    (fun tid () ->
      sep ();
      let tname = if tid < 0 then "main" else Printf.sprintf "sim-thread-%d" tid in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\
            \"args\":{\"name\":%s}}"
           tid (Json.to_string (Json.Str tname))))
    tids;
  iter (fun ~ts ~dur ~tid ~cpu ~node ~kind ~a1 ~a2 ~name ->
      sep ();
      let ev_name =
        match name with
        | Some s -> Event.name kind ^ ":" ^ s
        | None -> Event.name kind
      in
      Buffer.add_string buf "{\"name\":";
      Json.escape_to buf ev_name;
      Buffer.add_string buf ",\"cat\":\"";
      Buffer.add_string buf (Event.category kind);
      Buffer.add_string buf "\",";
      if dur >= 0 then
        Buffer.add_string buf
          (Printf.sprintf "\"ph\":\"X\",\"ts\":%s,\"dur\":%s,"
             (us (ts - dur)) (us dur))
      else
        Buffer.add_string buf
          (Printf.sprintf "\"ph\":\"i\",\"s\":\"t\",\"ts\":%s," (us ts));
      Buffer.add_string buf
        (Printf.sprintf
           "\"pid\":0,\"tid\":%d,\"args\":{\"cpu\":%d,\"node\":%d,\
            \"a1\":%d,\"a2\":%d}}"
           tid cpu node a1 a2));
  (* request-scoped spans + cross-machine flow arrows, if collected *)
  Span.chrome_events buf ~sep;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ns\"}";
  Buffer.contents buf

let write_chrome path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_json ()))
