(** Latency attribution: per-stage histograms and a critical-path
    budget over the span trees in {!Span}.

    [analyze] walks every complete trace (a closed [Request] root),
    sums each budget stage's spans per request, and accumulates three
    views:

    - an end-to-end histogram of root durations;
    - a per-stage HDR histogram of per-request stage time, from which
      the p50/p99 "latency budget" rows are read;
    - a critical-path tally: for each request, the budget stage with
      the largest share of its wall-clock time gets one vote, so the
      [dominant] stage is the one that most often sits on the critical
      path (what a group-commit or read-path PR must attack first).

    [coverage] is the fraction of end-to-end time the budget stages
    explain (sum of stage time / sum of root time).  Anything the
    instrumentation misses — scheduler gaps, polling quanta — shows up
    as [1 - coverage], so a low number means the stage taxonomy has a
    hole, not that the requests were fast.  Detail stages (persist,
    txn prepare/decide, replication wire/apply/ack) are reported
    separately and do not count toward coverage: they refine a budget
    stage rather than partition the root. *)

type stage_row = {
  stage : Span.stage;
  requests : int; (* requests in which the stage appears *)
  total_ns : int;
  share : float; (* of summed end-to-end time *)
  p50_ns : int;
  p99_ns : int;
  dominant_pct : float; (* % of requests where this stage is the max *)
}

type report = {
  requests : int; (* complete traces analyzed *)
  incomplete : int; (* traces without a closed root (in flight at end) *)
  coverage : float;
  e2e_p50_ns : int;
  e2e_p99_ns : int;
  budget : stage_row list; (* budget stages, largest share first *)
  detail : stage_row list; (* detail stages, largest total first *)
  span_count : int;
  span_dropped : int;
}

(* per-trace accumulator: root duration + per-stage sums *)
type acc = { mutable root_dur : int; stage_ns : int array }

let analyze () =
  let traces : (int, acc) Hashtbl.t = Hashtbl.create 1024 in
  let get tr =
    match Hashtbl.find_opt traces tr with
    | Some a -> a
    | None ->
      let a = { root_dur = -1; stage_ns = Array.make Span.stage_count 0 } in
      Hashtbl.add traces tr a;
      a
  in
  (* detail stages are histogrammed per span occurrence *)
  let detail_h = Array.init Span.stage_count (fun _ -> Hist.create ()) in
  let detail_req : (int * int, unit) Hashtbl.t = Hashtbl.create 1024 in
  Span.iter (fun ~id:_ ~trace ~parent:_ ~stage ~t0 ~t1 ~mach:_ ~tid:_ ->
      let a = get trace in
      let dur = t1 - t0 in
      match stage with
      | Span.Request -> a.root_dur <- dur
      | st when Span.is_budget st ->
        let i = Span.stage_to_int st in
        a.stage_ns.(i) <- a.stage_ns.(i) + dur
      | st ->
        let i = Span.stage_to_int st in
        a.stage_ns.(i) <- a.stage_ns.(i) + dur;
        Hist.record detail_h.(i) dur;
        Hashtbl.replace detail_req (trace, i) ());
  let e2e = Hist.create () in
  let budget_h = Array.init Span.stage_count (fun _ -> Hist.create ()) in
  let appears = Array.make Span.stage_count 0 in
  let totals = Array.make Span.stage_count 0 in
  let dominant = Array.make Span.stage_count 0 in
  let complete = ref 0 and incomplete = ref 0 in
  let root_total = ref 0 and covered_total = ref 0 in
  Hashtbl.iter
    (fun _ a ->
      if a.root_dur < 0 then incr incomplete
      else begin
        incr complete;
        Hist.record e2e a.root_dur;
        root_total := !root_total + a.root_dur;
        (* A replicated transaction's group-ack wait happens inside the
           2PC critical section, so its Repl_ack span nests inside the
           Txn span.  Budget stages must partition the root, so the
           enclosing stage is peeled: Txn reports the 2PC work net of
           the replication wait it encloses. *)
        let itxn = Span.stage_to_int Span.Txn
        and irpl = Span.stage_to_int Span.Repl_ack in
        if a.stage_ns.(itxn) > 0 && a.stage_ns.(irpl) > 0 then
          a.stage_ns.(itxn) <-
            max 0 (a.stage_ns.(itxn) - a.stage_ns.(irpl));
        let best = ref (-1) and best_ns = ref (-1) in
        for i = 0 to Span.stage_count - 1 do
          let ns = a.stage_ns.(i) in
          if ns > 0 then begin
            if Span.is_budget (Span.stage_of_int i) then begin
              covered_total := !covered_total + ns;
              Hist.record budget_h.(i) ns;
              appears.(i) <- appears.(i) + 1;
              totals.(i) <- totals.(i) + ns;
              if ns > !best_ns then begin
                best_ns := ns;
                best := i
              end
            end
            else totals.(i) <- totals.(i) + ns
          end
        done;
        if !best >= 0 then dominant.(!best) <- dominant.(!best) + 1
      end)
    traces;
  let n = !complete in
  let pct a b = if b = 0 then 0. else 100. *. float_of_int a /. float_of_int b in
  let row ~budget i =
    let st = Span.stage_of_int i in
    let h = if budget then budget_h.(i) else detail_h.(i) in
    let requests =
      if budget then appears.(i)
      else
        Hashtbl.fold
          (fun (_, j) () k -> if j = i then k + 1 else k)
          detail_req 0
    in
    { stage = st;
      requests;
      total_ns = totals.(i);
      share =
        (if !root_total = 0 then 0.
         else float_of_int totals.(i) /. float_of_int !root_total);
      p50_ns = Hist.percentile h 50.;
      p99_ns = Hist.percentile h 99.;
      dominant_pct = (if budget then pct dominant.(i) n else 0.) }
  in
  let budget = ref [] and detail = ref [] in
  for i = Span.stage_count - 1 downto 0 do
    let st = Span.stage_of_int i in
    if st <> Span.Request && totals.(i) > 0 then
      if Span.is_budget st then budget := row ~budget:true i :: !budget
      else detail := row ~budget:false i :: !detail
  done;
  let by_total = List.sort (fun a b -> compare b.total_ns a.total_ns) in
  { requests = n;
    incomplete = !incomplete;
    coverage =
      (if !root_total = 0 then 0.
       else float_of_int !covered_total /. float_of_int !root_total);
    e2e_p50_ns = Hist.percentile e2e 50.;
    e2e_p99_ns = Hist.percentile e2e 99.;
    budget = by_total !budget;
    detail = by_total !detail;
    span_count = Span.count ();
    span_dropped = Span.dropped () }

(** Budget stage that most often dominates a request's critical path. *)
let dominant_stage r =
  match
    List.sort (fun a b -> compare b.dominant_pct a.dominant_pct) r.budget
  with
  | top :: _ when top.dominant_pct > 0. -> Some top
  | _ -> None

let row_json r =
  Json.Obj
    [ ("stage", Json.Str (Span.stage_name r.stage));
      ("requests", Json.Num (float_of_int r.requests));
      ("total_ns", Json.Num (float_of_int r.total_ns));
      ("share", Json.Num r.share);
      ("p50_ns", Json.Num (float_of_int r.p50_ns));
      ("p99_ns", Json.Num (float_of_int r.p99_ns));
      ("dominant_pct", Json.Num r.dominant_pct) ]

let report_json r =
  Json.Obj
    [ ("requests", Json.Num (float_of_int r.requests));
      ("incomplete", Json.Num (float_of_int r.incomplete));
      ("coverage", Json.Num r.coverage);
      ("e2e_p50_ns", Json.Num (float_of_int r.e2e_p50_ns));
      ("e2e_p99_ns", Json.Num (float_of_int r.e2e_p99_ns));
      ( "dominant_stage",
        match dominant_stage r with
        | Some row -> Json.Str (Span.stage_name row.stage)
        | None -> Json.Null );
      ("budget", Json.Arr (List.map row_json r.budget));
      ("detail", Json.Arr (List.map row_json r.detail));
      ("span_count", Json.Num (float_of_int r.span_count));
      ("span_dropped", Json.Num (float_of_int r.span_dropped)) ]

(** Human-readable latency-budget table (for serve's stdout). *)
let pp_report ppf r =
  Format.fprintf ppf
    "latency budget: %d requests, %.1f%% of end-to-end time attributed \
     (e2e p50 %d ns, p99 %d ns)@\n"
    r.requests (100. *. r.coverage) r.e2e_p50_ns r.e2e_p99_ns;
  Format.fprintf ppf "  %-12s %9s %9s %7s %9s@\n" "stage" "p50_ns" "p99_ns"
    "share" "dominant";
  List.iter
    (fun row ->
      Format.fprintf ppf "  %-12s %9d %9d %6.1f%% %8.1f%%@\n"
        (Span.stage_name row.stage)
        row.p50_ns row.p99_ns (100. *. row.share) row.dominant_pct)
    r.budget;
  if r.detail <> [] then begin
    Format.fprintf ppf "  detail:@\n";
    List.iter
      (fun row ->
        Format.fprintf ppf "  %-12s %9d %9d %6.1f%%@\n"
          (Span.stage_name row.stage)
          row.p50_ns row.p99_ns (100. *. row.share))
      r.detail
  end
