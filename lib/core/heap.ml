(** The Poseidon heap: public operations, per-CPU sub-heap management,
    MPK protection windows, locking and recovery (paper §4, §5).

    Thread model: simulated threads are pinned to CPUs; each CPU maps
    to one sub-heap directory slot.  Allocations always go to the
    calling CPU's sub-heap (NUMA-local); frees go to the owning
    sub-heap of the pointer, wherever the caller runs (§5.7).

    MPK discipline (§4.3): the metadata region of every sub-heap and
    the superblock carry the heap's protection key, read-only by
    default for every thread.  Each allocator operation grants the
    executing thread write permission on entry and revokes it on exit;
    a store into metadata from anywhere else faults. *)

type t = {
  mach : Machine.t;
  base : int;
  heap_id : int;
  num_slots : int;
  window_size : int;
  sub_data_size : int;
  base_buckets : int;
  mutable pkey : int;
  mutable cap : Mpk.capability option;
      (* capability for the sealed-wrpkru mode (paper 8 lockdown) *)
  subheaps : Subheap.t option array;
  sb_lock : Machine.Lock.lock;
  protect : bool;
  single : bool; (* ablation A2: one sub-heap shared by every CPU *)
  (* live metrics (registry scope "heap<id>") *)
  c_allocs : int ref;
  c_alloc_fails : int ref;
  c_frees : int ref;
  c_tx_allocs : int ref;
  c_tx_commits : int ref;
  c_tx_aborts : int ref;
  (* magazine-cache traffic (bumped through {!cache_ops}) *)
  mutable tc_hits : int;
  mutable tc_misses : int;
  mutable tc_refills : int;
  mutable tc_flushes : int;
}

let mk_counters heap_id =
  let scope = Printf.sprintf "heap%d" heap_id in
  ( Obs.Metrics.counter ~scope "allocs",
    Obs.Metrics.counter ~scope "alloc_fails",
    Obs.Metrics.counter ~scope "frees",
    Obs.Metrics.counter ~scope "tx_allocs",
    Obs.Metrics.counter ~scope "tx_commits",
    Obs.Metrics.counter ~scope "tx_aborts" )

let machine h = h.mach
let heap_id h = h.heap_id
let pkey h = h.pkey

let default_sub_data_size = 64 * 1024 * 1024
let default_base_buckets = 1024

(* ---------- MPK windows ---------- *)

let with_metadata_access h f =
  if h.protect then begin
    Machine.wrpkru ?cap:h.cap h.mach h.pkey Mpk.Read_write;
    Fun.protect
      ~finally:(fun () -> Machine.wrpkru ?cap:h.cap h.mach h.pkey Mpk.Read_only)
      f
  end
  else f ()

(* ---------- creation / attach ---------- *)

let sb_region_size num_slots = Layout.sb_size num_slots

let ensure_region h ~base ~size ~numa =
  if not (Machine.has_region h.mach base) then
    Machine.add_region h.mach ~base ~size ~kind:Nvmm.Memdev.Nvmm ~numa

let create mach ~base ~size ~heap_id ?(sub_data_size = default_sub_data_size)
    ?(base_buckets = default_base_buckets) ?(protected = true)
    ?(single_subheap = false) () =
  if base mod Layout.page <> 0 then invalid_arg "Heap.create: unaligned base";
  if sub_data_size mod Layout.min_block <> 0 then
    invalid_arg "Heap.create: sub_data_size must be granule-aligned";
  let num_slots = (Machine.cfg mach).Machine.Config.num_cpus in
  let sb_size = sb_region_size num_slots in
  if size < sb_size then invalid_arg "Heap.create: window too small";
  if not (Machine.has_region mach base) then
    Machine.add_region mach ~base ~size:sb_size ~kind:Nvmm.Memdev.Nvmm ~numa:0;
  Superblock.format mach ~base ~window_size:size ~heap_id ~num_slots;
  Machine.write_u64 mach (base + Layout.sb_off_sub_data_size) sub_data_size;
  Machine.write_u64 mach (base + Layout.sb_off_base_buckets) base_buckets;
  Machine.persist mach (base + Layout.sb_off_sub_data_size) (2 * Layout.word);
  let pkey =
    if protected then begin
      let k = Mpk.alloc_key (Machine.mpk mach) in
      Superblock.set_last_pkey mach ~base k;
      Mpk.assign_range (Machine.mpk mach) k ~base ~size:sb_size;
      Mpk.set_default_perm (Machine.mpk mach) k Mpk.Read_only;
      k
    end
    else 0
  in
  let c_allocs, c_alloc_fails, c_frees, c_tx_allocs, c_tx_commits, c_tx_aborts =
    mk_counters heap_id
  in
  { mach;
    base;
    heap_id;
    num_slots;
    window_size = size;
    sub_data_size;
    base_buckets;
    pkey;
    cap = None;
    subheaps = Array.make num_slots None;
    sb_lock = Machine.Lock.create mach ~name:"superblock" ();
    protect = protected;
    single = single_subheap;
    c_allocs;
    c_alloc_fails;
    c_frees;
    c_tx_allocs;
    c_tx_commits;
    c_tx_aborts;
    tc_hits = 0;
    tc_misses = 0;
    tc_refills = 0;
    tc_flushes = 0 }

let meta_region_size h =
  Layout.meta_size ~base_buckets:h.base_buckets ~levels:Layout.max_levels

(* Loading the NVM heap (§5.1): allocate a fresh MPK key, re-protect
   every metadata region, then make each sub-heap consistent by
   processing its undo and micro logs. *)
let attach mach ~base ?(protected = true) () =
  Superblock.check mach ~base;
  let heap_id = Superblock.heap_id mach ~base in
  let num_slots = Superblock.num_slots mach ~base in
  let window_size = Superblock.window_size mach ~base in
  let sub_data_size = Machine.read_u64 mach (base + Layout.sb_off_sub_data_size) in
  let base_buckets = Machine.read_u64 mach (base + Layout.sb_off_base_buckets) in
  (* the key of the previous incarnation died with the process *)
  let old_key = Superblock.last_pkey mach ~base in
  if old_key >= 1 && old_key < 16 then Mpk.free_key (Machine.mpk mach) old_key;
  let pkey =
    if protected then begin
      let k = Mpk.alloc_key (Machine.mpk mach) in
      Superblock.set_last_pkey mach ~base k;
      Mpk.assign_range (Machine.mpk mach) k ~base
        ~size:(sb_region_size num_slots);
      Mpk.set_default_perm (Machine.mpk mach) k Mpk.Read_only;
      k
    end
    else 0
  in
  let c_allocs, c_alloc_fails, c_frees, c_tx_allocs, c_tx_commits, c_tx_aborts =
    mk_counters heap_id
  in
  let h =
    { mach;
      base;
      heap_id;
      num_slots;
      window_size;
      sub_data_size;
      base_buckets;
      pkey;
      cap = None;
      subheaps = Array.make num_slots None;
      sb_lock = Machine.Lock.create mach ~name:"superblock" ();
      protect = protected;
      single = false;
      c_allocs;
      c_alloc_fails;
      c_frees;
      c_tx_allocs;
      c_tx_commits;
      c_tx_aborts;
    tc_hits = 0;
    tc_misses = 0;
    tc_refills = 0;
    tc_flushes = 0 }
  in
  let meta_size = meta_region_size h in
  for slot = 0 to num_slots - 1 do
    if Superblock.slot_active mach ~base slot then begin
      let meta_base = Superblock.slot_meta_base mach ~base slot in
      let data_size = Superblock.slot_data_size mach ~base slot in
      let sh = Subheap.attach mach ~heap_id ~index:slot ~meta_base in
      ensure_region h ~base:meta_base ~size:(meta_size + data_size)
        ~numa:(Machine.Config.cpu_numa (Machine.cfg mach) sh.Subheap.cpu);
      if protected then
        Mpk.assign_range (Machine.mpk mach) pkey ~base:meta_base ~size:meta_size;
      h.subheaps.(slot) <- Some sh
    end
  done;
  (* recovery (§5.8) *)
  Obs.Trace.emit1 Obs.Event.Recovery_begin heap_id;
  with_metadata_access h (fun () ->
      Array.iter
        (function Some sh -> Subheap.recover sh | None -> ())
        h.subheaps);
  Obs.Trace.emit1 Obs.Event.Recovery_end heap_id;
  h

(** Enables the paper's 8 wrpkru-lockdown countermeasure: guards the
    heap's protection key and seals the MPK unit, so only this heap
    (holding the capability) can grant itself metadata access — a
    hijacked wrpkru elsewhere raises [Mpk.Wrpkru_denied]. *)
let lockdown h =
  if h.protect then begin
    h.cap <- Some (Mpk.guard (Machine.mpk h.mach) h.pkey);
    Mpk.seal (Machine.mpk h.mach)
  end

let finish h =
  if h.protect && h.pkey >= 1 then begin
    Mpk.free_key (Machine.mpk h.mach) h.pkey;
    Superblock.set_last_pkey h.mach ~base:h.base 0
  end

(* ---------- sub-heap lookup / creation (§4.1) ---------- *)

(* Creates the calling CPU's sub-heap, carving address space from the
   superblock's bump pointer.  Runs under the superblock lock, with
   metadata access already granted. *)
let create_subheap h slot =
  let mach = h.mach in
  let meta_size = meta_region_size h in
  let total = meta_size + h.sub_data_size in
  let va = Superblock.next_va mach ~base:h.base in
  if va + total > h.base + h.window_size then None
  else begin
    let meta_base = va in
    let data_base = va + meta_size in
    let numa = Machine.Config.cpu_numa (Machine.cfg mach) (slot mod (Machine.cfg mach).Machine.Config.num_cpus) in
    ensure_region h ~base:meta_base ~size:total ~numa;
    if h.protect then
      Mpk.assign_range (Machine.mpk mach) h.pkey ~base:meta_base ~size:meta_size;
    let sh =
      Subheap.format mach ~heap_id:h.heap_id ~index:slot ~cpu:slot
        ~meta_base ~data_base ~data_size:h.sub_data_size
        ~base_buckets:h.base_buckets
    in
    Superblock.set_next_va mach ~base:h.base (va + total);
    Superblock.publish_slot mach ~base:h.base slot ~meta_base ~data_base
      ~data_size:h.sub_data_size;
    h.subheaps.(slot) <- Some sh;
    Obs.Trace.emit2 Obs.Event.Subheap_create slot numa;
    Some sh
  end

(* Sub-heap of the calling CPU, created on first use (§4.1).  Assumes
   metadata access is granted. *)
let subheap_for h =
  let slot = if h.single then 0 else Machine.current_cpu () mod h.num_slots in
  match h.subheaps.(slot) with
  | Some sh -> Some sh
  | None ->
    Machine.Lock.with_lock h.sb_lock (fun () ->
        match h.subheaps.(slot) with
        | Some sh -> Some sh
        | None -> create_subheap h slot)

(* ---------- public API (Fig. 5) ---------- *)

let mk_ptr (h : t) sh off : Alloc_intf.nvmptr =
  { Alloc_intf.heap_id = h.heap_id; subheap = sh.Subheap.index; off }

let alloc h size =
  let r =
    with_metadata_access h (fun () ->
        match subheap_for h with
        | None -> None
        | Some sh ->
          Machine.Lock.with_lock sh.Subheap.lock (fun () ->
              Option.map (mk_ptr h sh) (Subheap.allocate sh size)))
  in
  (match r with
   | Some p ->
     Obs.Metrics.incr h.c_allocs;
     Obs.Trace.emit2 Obs.Event.Alloc size p.Alloc_intf.subheap
   | None -> Obs.Metrics.incr h.c_alloc_fails);
  r

let tx_alloc h size ~is_end =
  let r =
    with_metadata_access h (fun () ->
        match subheap_for h with
        | None -> None
        | Some sh ->
          Machine.Lock.with_lock sh.Subheap.lock (fun () ->
              let r = Subheap.allocate_tx sh size in
              (* the last allocation's success commits the transaction
                 by truncating the micro log (§5.3) *)
              if is_end && r <> None then begin
                Subheap.commit_tx sh;
                sh.Subheap.stat_tx_commits <- sh.Subheap.stat_tx_commits + 1;
                Obs.Metrics.incr h.c_tx_commits;
                Obs.Trace.emit1 Obs.Event.Tx_commit sh.Subheap.index
              end;
              Option.map (mk_ptr h sh) r))
  in
  (match r with
   | Some p ->
     Obs.Metrics.incr h.c_tx_allocs;
     Obs.Trace.emit2 Obs.Event.Tx_alloc size p.Alloc_intf.subheap
   | None -> Obs.Metrics.incr h.c_alloc_fails);
  r

(** Commits the in-flight transaction of the calling CPU's sub-heap
    explicitly (equivalent to a successful [is_end:true] allocation):
    truncates the micro log. *)
let tx_commit h =
  with_metadata_access h (fun () ->
      match subheap_for h with
      | None -> ()
      | Some sh ->
        Machine.Lock.with_lock sh.Subheap.lock (fun () ->
            Subheap.commit_tx sh;
            sh.Subheap.stat_tx_commits <- sh.Subheap.stat_tx_commits + 1;
            Obs.Metrics.incr h.c_tx_commits;
            Obs.Trace.emit1 Obs.Event.Tx_commit sh.Subheap.index))

(** Aborts the in-flight transaction of the calling CPU's sub-heap:
    frees every address in the micro log, then truncates it. *)
let tx_abort h =
  with_metadata_access h (fun () ->
      match subheap_for h with
      | None -> ()
      | Some sh ->
        Machine.Lock.with_lock sh.Subheap.lock (fun () ->
            let entries =
              Microlog.entries h.mach ~meta_base:sh.Subheap.meta_base
            in
            List.iter
              (fun packed ->
                let p = Alloc_intf.unpack ~heap_id:h.heap_id packed in
                ignore (Subheap.deallocate sh p.Alloc_intf.off))
              entries;
            Subheap.commit_tx sh;
            sh.Subheap.stat_tx_aborts <- sh.Subheap.stat_tx_aborts + 1;
            Obs.Metrics.incr h.c_tx_aborts;
            Obs.Trace.emit2 Obs.Event.Tx_abort sh.Subheap.index
              (List.length entries)))

let free h (ptr : Alloc_intf.nvmptr) =
  let reject sh =
    match sh with
    | Some s -> s.Subheap.stat_invalid_free <- s.Subheap.stat_invalid_free + 1
    | None -> ()
  in
  if Alloc_intf.is_null ptr || ptr.heap_id <> h.heap_id
     || ptr.subheap < 0 || ptr.subheap >= h.num_slots
  then reject None
  else
    match h.subheaps.(ptr.subheap) with
    | None -> reject None
    | Some sh ->
      with_metadata_access h (fun () ->
          Machine.Lock.with_lock sh.Subheap.lock (fun () ->
              match Subheap.deallocate sh ptr.off with
              | Subheap.Freed ->
                Obs.Metrics.incr h.c_frees;
                Obs.Trace.emit2 Obs.Event.Free ptr.off ptr.subheap
              | Subheap.Invalid_free | Subheap.Double_free -> ()))

(* ---------- magazine-cache support (lib/tcache) ---------- *)

(* Largest block size the volatile bins hold: classes 0..7.  Values,
   tree nodes and superroots all fit; big streaming allocations keep
   the legacy path. *)
let tc_max_size = 4096

let subheap_of h (ptr : Alloc_intf.nvmptr) =
  if Alloc_intf.is_null ptr || ptr.heap_id <> h.heap_id
     || ptr.subheap < 0 || ptr.subheap >= h.num_slots
  then None
  else h.subheaps.(ptr.subheap)

(* Clear the leases of a block batch: stage every clear, commit them
   under ONE fence, and only then recycle the slots — a slot reused
   before the fence could leave the old lease as the line's surviving
   snapshot under an adversarial crash. *)
let tc_publish h blocks =
  let cleared = ref false in
  with_metadata_access h (fun () ->
      List.iter
        (fun { Alloc_intf.cb_ptr; cb_lease } ->
          if cb_lease >= 0 then
            match subheap_of h cb_ptr with
            | None -> ()
            | Some sh ->
              Machine.Lock.with_lock sh.Subheap.lock (fun () ->
                  Subheap.tc_lease_clear_async sh cb_lease);
              cleared := true)
        blocks;
      if !cleared then Machine.sfence h.mach;
      List.iter
        (fun { Alloc_intf.cb_ptr; cb_lease } ->
          if cb_lease >= 0 then
            match subheap_of h cb_ptr with
            | None -> ()
            | Some sh ->
              Machine.Lock.with_lock sh.Subheap.lock (fun () ->
                  Subheap.tc_slot_release sh cb_lease))
        blocks)

let tc_carve h ~size ~count =
  with_metadata_access h (fun () ->
      match subheap_for h with
      | None -> []
      | Some sh ->
        Machine.Lock.with_lock sh.Subheap.lock (fun () ->
            List.map
              (fun (off, slot) ->
                { Alloc_intf.cb_ptr = mk_ptr h sh off; cb_lease = slot })
              (Subheap.carve sh ~rsize:size ~count)))

let tc_stash h (ptr : Alloc_intf.nvmptr) =
  match subheap_of h ptr with
  | None -> None
  | Some sh ->
    with_metadata_access h (fun () ->
        Machine.Lock.with_lock sh.Subheap.lock (fun () ->
            match Hashtable.lookup sh.Subheap.ht ptr.off with
            | None -> None
            | Some rec_addr ->
              if Record.get_status h.mach rec_addr <> Layout.st_alloc then
                None
              else
                let size = Record.get_size h.mach rec_addr in
                (* only exact class-sized blocks are bin-recyclable *)
                if size > tc_max_size || size <> Layout.round_up size then
                  None
                else
                  match Subheap.tc_slot_acquire sh with
                  | None -> None
                  | Some slot ->
                    Subheap.tc_lease_set sh slot ptr.off;
                    Obs.Metrics.incr h.c_frees;
                    Obs.Trace.emit2 Obs.Event.Free ptr.off ptr.subheap;
                    Some (slot, size)))

let tc_reclaim h blocks =
  (* group by owning sub-heap so each batch frees under one undo op *)
  let by_sh = Hashtbl.create 4 in
  List.iter
    (fun ({ Alloc_intf.cb_ptr; _ } as b) ->
      match subheap_of h cb_ptr with
      | None -> ()
      | Some sh ->
        Hashtbl.replace by_sh sh.Subheap.index
          (b
          :: (match Hashtbl.find_opt by_sh sh.Subheap.index with
              | Some l -> l
              | None -> [])))
    blocks;
  with_metadata_access h (fun () ->
      let cleared = ref false in
      Hashtbl.iter
        (fun idx batch ->
          match h.subheaps.(idx) with
          | None -> ()
          | Some sh ->
            Machine.Lock.with_lock sh.Subheap.lock (fun () ->
                ignore
                  (Subheap.deallocate_many sh
                     (List.map
                        (fun b -> b.Alloc_intf.cb_ptr.Alloc_intf.off)
                        batch));
                List.iter
                  (fun b ->
                    if b.Alloc_intf.cb_lease >= 0 then begin
                      Subheap.tc_lease_clear_async sh b.Alloc_intf.cb_lease;
                      cleared := true
                    end)
                  batch))
        by_sh;
      if !cleared then Machine.sfence h.mach;
      Hashtbl.iter
        (fun idx batch ->
          match h.subheaps.(idx) with
          | None -> ()
          | Some sh ->
            Machine.Lock.with_lock sh.Subheap.lock (fun () ->
                List.iter
                  (fun b ->
                    if b.Alloc_intf.cb_lease >= 0 then
                      Subheap.tc_slot_release sh b.Alloc_intf.cb_lease)
                  batch))
        by_sh)

let cache_ops h =
  Some
    { Alloc_intf.cache_max_size = tc_max_size;
      cache_round = Layout.round_up;
      cache_carve = (fun ~size ~count -> tc_carve h ~size ~count);
      cache_publish = (fun blocks -> tc_publish h blocks);
      cache_stash = (fun ptr -> tc_stash h ptr);
      cache_reclaim = (fun blocks -> tc_reclaim h blocks);
      cache_note =
        (fun ev ->
          match ev with
          | Alloc_intf.Cache_hit -> h.tc_hits <- h.tc_hits + 1
          | Alloc_intf.Cache_miss -> h.tc_misses <- h.tc_misses + 1
          | Alloc_intf.Cache_refill -> h.tc_refills <- h.tc_refills + 1
          | Alloc_intf.Cache_flush -> h.tc_flushes <- h.tc_flushes + 1) }

let get_rawptr h (ptr : Alloc_intf.nvmptr) =
  if Alloc_intf.is_null ptr then invalid_arg "Heap.get_rawptr: null pointer";
  if ptr.heap_id <> h.heap_id || ptr.subheap < 0 || ptr.subheap >= h.num_slots
  then invalid_arg "Heap.get_rawptr: foreign pointer";
  match h.subheaps.(ptr.subheap) with
  | Some sh when ptr.off < sh.Subheap.data_size ->
    sh.Subheap.data_base + ptr.off
  | _ -> invalid_arg "Heap.get_rawptr: no such sub-heap"

let get_nvmptr h raw =
  let rec scan slot =
    if slot >= h.num_slots then
      invalid_arg "Heap.get_nvmptr: address outside every sub-heap"
    else
      match h.subheaps.(slot) with
      | Some sh
        when raw >= sh.Subheap.data_base
             && raw < sh.Subheap.data_base + sh.Subheap.data_size ->
        Alloc_intf.
          { heap_id = h.heap_id;
            subheap = slot;
            off = raw - sh.Subheap.data_base }
      | _ -> scan (slot + 1)
  in
  scan 0

let get_root h =
  Alloc_intf.unpack ~heap_id:h.heap_id (Superblock.root h.mach ~base:h.base)

let set_root h ptr =
  with_metadata_access h (fun () ->
      Machine.Lock.with_lock h.sb_lock (fun () ->
          Superblock.set_root h.mach ~base:h.base (Alloc_intf.pack ptr)))

(* ---------- maintenance & introspection ---------- *)

(** Hole-punches empty top hash levels of every sub-heap (§5.6). *)
let shrink_metadata h =
  with_metadata_access h (fun () ->
      Array.iter
        (function
          | Some sh ->
            Machine.Lock.with_lock sh.Subheap.lock (fun () ->
                Subheap.try_shrink sh)
          | None -> ())
        h.subheaps)

let iter_subheaps h f =
  Array.iter (function Some sh -> f sh | None -> ()) h.subheaps

let check_invariants h =
  iter_subheaps h Subheap.check_invariants

(* ---------- oracle accessors (crash checking) ---------- *)

let base h = h.base

let data_capacity h =
  let n = ref 0 in
  iter_subheaps h (fun sh -> n := !n + sh.Subheap.data_size);
  !n

let tx_pending h =
  let n = ref 0 in
  iter_subheaps h (fun sh ->
      n := !n + Microlog.count h.mach ~meta_base:sh.Subheap.meta_base);
  !n

let logs_quiescent h =
  let ok = ref true in
  iter_subheaps h (fun sh ->
      if
        (not (Undolog.is_empty h.mach ~meta_base:sh.Subheap.meta_base))
        || not (Microlog.is_empty h.mach ~meta_base:sh.Subheap.meta_base)
      then ok := false);
  !ok

type stats = {
  subheaps_active : int;
  invalid_frees : int;
  double_frees : int;
  merges : int;
  defrag_passes : int;
  hash_extends : int;
  tx_commits : int;
  tx_aborts : int;
  recovery_replays : int;
  live_bytes : int;
  free_bytes : int;
  tcache_hits : int;
  tcache_misses : int;
  bin_refills : int;
  bin_flushes : int;
}

let stats h =
  let s =
    ref
      { subheaps_active = 0;
        invalid_frees = 0;
        double_frees = 0;
        merges = 0;
        defrag_passes = 0;
        hash_extends = 0;
        tx_commits = 0;
        tx_aborts = 0;
        recovery_replays = 0;
        live_bytes = 0;
        free_bytes = 0;
        tcache_hits = h.tc_hits;
        tcache_misses = h.tc_misses;
        bin_refills = h.tc_refills;
        bin_flushes = h.tc_flushes }
  in
  iter_subheaps h (fun sh ->
      s :=
        { subheaps_active = !s.subheaps_active + 1;
          invalid_frees = !s.invalid_frees + sh.Subheap.stat_invalid_free;
          double_frees = !s.double_frees + sh.Subheap.stat_double_free;
          merges = !s.merges + sh.Subheap.stat_merges;
          defrag_passes = !s.defrag_passes + sh.Subheap.stat_defrag_passes;
          hash_extends = !s.hash_extends + sh.Subheap.stat_hash_extends;
          tx_commits = !s.tx_commits + sh.Subheap.stat_tx_commits;
          tx_aborts = !s.tx_aborts + sh.Subheap.stat_tx_aborts;
          recovery_replays =
            !s.recovery_replays + sh.Subheap.stat_recovery_replays;
          live_bytes = !s.live_bytes + Subheap.live_bytes sh;
          free_bytes = !s.free_bytes + Subheap.free_bytes sh;
          tcache_hits = !s.tcache_hits;
          tcache_misses = !s.tcache_misses;
          bin_refills = !s.bin_refills;
          bin_flushes = !s.bin_flushes });
  !s

(** Pushes heap-level metrics — aggregate statistics plus per-sub-heap
    occupancy — into the registry under [heap<id>] and
    [heap<id>/subheap<slot>] scopes. *)
let publish_metrics ?registry h =
  let g scope name v =
    Obs.Metrics.set_gauge ?m:registry ~scope name (float_of_int v)
  in
  let scope = Printf.sprintf "heap%d" h.heap_id in
  let s = stats h in
  g scope "subheaps_active" s.subheaps_active;
  g scope "invalid_frees" s.invalid_frees;
  g scope "double_frees" s.double_frees;
  g scope "merges" s.merges;
  g scope "defrag_passes" s.defrag_passes;
  g scope "hash_extends" s.hash_extends;
  g scope "stat_tx_commits" s.tx_commits;
  g scope "stat_tx_aborts" s.tx_aborts;
  g scope "recovery_replays" s.recovery_replays;
  g scope "live_bytes" s.live_bytes;
  g scope "free_bytes" s.free_bytes;
  g scope "tcache_hits" s.tcache_hits;
  g scope "tcache_misses" s.tcache_misses;
  g scope "bin_refills" s.bin_refills;
  g scope "bin_flushes" s.bin_flushes;
  iter_subheaps h (fun sh ->
      let sscope = Printf.sprintf "%s/subheap%d" scope sh.Subheap.index in
      g sscope "live_bytes" (Subheap.live_bytes sh);
      g sscope "free_bytes" (Subheap.free_bytes sh);
      g sscope "merges" sh.Subheap.stat_merges;
      g sscope "hash_extends" sh.Subheap.stat_hash_extends;
      g sscope "recovery_replays" sh.Subheap.stat_recovery_replays)
