(** Per-sub-heap micro log: the history of addresses allocated by the
    transaction in flight (paper §4.5, §5.3) — Poseidon's
    instantiation of {!Persist.Plog}.

    [append] persists an allocated pointer before the sub-allocation's
    undo log is truncated; [commit] (truncating the log) is the
    transaction's commit point.  If the log is non-empty on restart,
    the transaction did not commit and recovery frees every logged
    address (§5.8). *)

exception Overflow = Persist.Plog.Overflow

let area meta_base =
  { Persist.Plog.count_addr = meta_base + Layout.sh_off_micro_count;
    entries_addr = meta_base + Layout.sh_off_micro_entries;
    cap = Layout.micro_cap }

let append mach ~meta_base packed = Persist.Plog.append mach (area meta_base) packed
let commit mach ~meta_base = Persist.Plog.truncate mach (area meta_base)
let entries mach ~meta_base = Persist.Plog.entries mach (area meta_base)
let count mach ~meta_base = Persist.Plog.count mach (area meta_base)
let is_empty mach ~meta_base = Persist.Plog.is_empty mach (area meta_base)
