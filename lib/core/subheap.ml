(** Per-CPU sub-heap: allocation, deallocation, splitting, merging and
    defragmentation (paper §4.1, §5.2–§5.5).

    All functions here assume the caller (the heap layer) holds the
    sub-heap lock and has granted itself write permission on the
    metadata region via MPK.  Every metadata mutation runs inside an
    undo-logged operation, so a crash at any point rolls back to a
    consistent state. *)

type t = {
  mach : Machine.t;
  heap_id : int;
  index : int; (* sub-heap id = directory slot = CPU *)
  cpu : int;
  meta_base : int;
  data_base : int;
  data_size : int;
  ht : Hashtable.t;
  lock : Machine.Lock.lock;
  mutable stat_invalid_free : int;
  mutable stat_double_free : int;
  mutable stat_merges : int;
  mutable stat_defrag_passes : int;
  mutable stat_hash_extends : int;
  mutable stat_tx_commits : int;
  mutable stat_tx_aborts : int;
  mutable stat_recovery_replays : int;
  (* volatile free-slot stack of the thread-cache reclaim ledger,
     rebuilt lazily from the persistent area (all-zero after recovery) *)
  mutable tc_free_slots : int list;
  mutable tc_slots_ready : bool;
}

let nil = Layout.nil_off

(* ---------- header accessors ---------- *)

let hdr_read mach meta_base off = Machine.read_u64 mach (meta_base + off)
let hdr_write mach meta_base off v = Machine.write_u64 mach (meta_base + off) v

(* ---------- construction ---------- *)

let make mach ~heap_id ~index ~cpu ~meta_base ~data_base ~data_size ~base_buckets =
  { mach;
    heap_id;
    index;
    cpu;
    meta_base;
    data_base;
    data_size;
    ht = Hashtable.make mach ~meta_base ~base_buckets;
    lock = Machine.Lock.create mach ~name:(Printf.sprintf "subheap-%d" index) ();
    stat_invalid_free = 0;
    stat_double_free = 0;
    stat_merges = 0;
    stat_defrag_passes = 0;
    stat_hash_extends = 0;
    stat_tx_commits = 0;
    stat_tx_aborts = 0;
    stat_recovery_replays = 0;
    tc_free_slots = [];
    tc_slots_ready = false }

let attach mach ~heap_id ~index ~meta_base =
  if hdr_read mach meta_base Layout.sh_off_magic <> Layout.sh_magic then
    failwith "Subheap.attach: bad magic";
  make mach ~heap_id ~index
    ~cpu:(hdr_read mach meta_base Layout.sh_off_cpu)
    ~meta_base
    ~data_base:(hdr_read mach meta_base Layout.sh_off_data_base)
    ~data_size:(hdr_read mach meta_base Layout.sh_off_data_size)
    ~base_buckets:(hdr_read mach meta_base Layout.sh_off_base_buckets)

(* ---------- operations ---------- *)

let op sh f =
  let ctx = Undolog.begin_op sh.mach ~meta_base:sh.meta_base in
  let result = f ctx in
  Undolog.commit ctx;
  result

(* ---------- merging ---------- *)

(* Merges the free block [right_rec] into its address-adjacent free
   left neighbour [left_rec]; the right block's record is tombstoned,
   releasing its hash slot. *)
let merge ctx sh ~left_rec ~right_rec =
  let mach = sh.mach in
  let lsz = Record.get_size mach left_rec in
  let rsz = Record.get_size mach right_rec in
  assert (Record.get_status mach left_rec = Layout.st_free);
  assert (Record.get_status mach right_rec = Layout.st_free);
  assert (Record.get_next mach left_rec = Record.get_offset mach right_rec);
  Buddy.unlink ctx sh.meta_base (Layout.class_of_size lsz) left_rec;
  Buddy.unlink ctx sh.meta_base (Layout.class_of_size rsz) right_rec;
  Record.set_size ctx left_rec (lsz + rsz);
  let rnext = Record.get_next mach right_rec in
  Record.set_next ctx left_rec rnext;
  if rnext <> nil then begin
    match Hashtable.lookup sh.ht rnext with
    | Some nr -> Record.set_prev ctx nr (Record.get_offset mach left_rec)
    | None -> assert false
  end;
  Record.set_status ctx right_rec Layout.st_tombstone;
  Hashtable.live_decr ctx sh.ht (Hashtable.level_of_rec sh.ht right_rec);
  Buddy.push_head ctx sh.meta_base (Layout.class_of_size (lsz + rsz)) left_rec;
  sh.stat_merges <- sh.stat_merges + 1;
  Obs.Trace.emit2 Obs.Event.Merge sh.index (lsz + rsz)

(* Hash-window defragmentation (paper §5.4 case 2): free a slot in the
   probe windows of [off] by merging a free block found there into its
   free left neighbour.  Returns whether a slot was released. *)
let defrag_windows ctx sh off =
  let mach = sh.mach in
  let found = ref None in
  (try
     Hashtable.iter_windows sh.ht off (fun rec_addr ->
         if !found = None && Record.get_status mach rec_addr = Layout.st_free
         then begin
           let prev_off = Record.get_prev mach rec_addr in
           if prev_off <> nil then
             match Hashtable.lookup sh.ht prev_off with
             | Some left when Record.get_status mach left = Layout.st_free ->
               found := Some (left, rec_addr);
               raise Exit
             | _ -> ()
         end)
   with Exit -> ());
  match !found with
  | Some (left_rec, right_rec) ->
    merge ctx sh ~left_rec ~right_rec;
    true
  | None -> false

(* ---------- record insertion ---------- *)

(* Inserts a fresh record, defragmenting the probe windows and then
   extending the hash table when every slot is taken (§5.2). *)
let rec insert_record ?(attempt = 0) ctx sh ~off ~size ~status ~prev ~next =
  match Hashtable.find_insert_slot sh.ht off with
  | Some (level, slot) ->
    Record.init ctx slot ~off ~size ~status ~prev ~next;
    Hashtable.live_incr ctx sh.ht level;
    Some slot
  | None ->
    if attempt = 0 && defrag_windows ctx sh off then
      insert_record ~attempt:1 ctx sh ~off ~size ~status ~prev ~next
    else if attempt <= 1 && Hashtable.extend ctx sh.ht then begin
      sh.stat_hash_extends <- sh.stat_hash_extends + 1;
      Obs.Trace.emit1 Obs.Event.Hash_extend sh.index;
      insert_record ~attempt:2 ctx sh ~off ~size ~status ~prev ~next
    end
    else None

(* ---------- allocation ---------- *)

(* One allocation attempt inside an operation. [rsize] is already
   rounded to the granule. *)
let alloc_once ctx sh rsize =
  let mach = sh.mach in
  let cls = Layout.class_of_size rsize in
  let found =
    match
      Buddy.first_fit mach sh.meta_base cls ~min_size:rsize ~max_steps:16
    with
    | Some r -> Some r
    | None ->
      let rec scan c =
        if c >= Layout.num_classes then None
        else
          let h = Buddy.head mach sh.meta_base c in
          if h <> 0 then Some h else scan (c + 1)
      in
      scan (cls + 1)
  in
  match found with
  | None -> None
  | Some rec_addr ->
    let bsz = Record.get_size mach rec_addr in
    let off = Record.get_offset mach rec_addr in
    Buddy.unlink ctx sh.meta_base (Layout.class_of_size bsz) rec_addr;
    (* Mark allocated before any further hash work so that window
       defragmentation triggered by the split cannot merge this
       block away. *)
    Record.set_status ctx rec_addr Layout.st_alloc;
    if bsz - rsize >= Layout.min_block then begin
      (* split: carve the request from the front, keep the remainder
         free (§5.2) *)
      let rem_off = off + rsize and rem_size = bsz - rsize in
      let next_off = Record.get_next mach rec_addr in
      match
        insert_record ctx sh ~off:rem_off ~size:rem_size
          ~status:Layout.st_free ~prev:off ~next:next_off
      with
      | Some rem_rec ->
        if next_off <> nil then begin
          match Hashtable.lookup sh.ht next_off with
          | Some nr -> Record.set_prev ctx nr rem_off
          | None -> assert false
        end;
        Record.set_next ctx rec_addr rem_off;
        Record.set_size ctx rec_addr rsize;
        Buddy.push_head ctx sh.meta_base
          (Layout.class_of_size rem_size) rem_rec
      | None ->
        (* no hash slot for the remainder: hand out the whole block *)
        ()
    end;
    Some off

(* ---------- defragmentation, case 1 (§5.4) ---------- *)

(* Merges runs of address-adjacent free blocks in the size classes at
   or below the request's class, trying to manufacture a block of
   [target] bytes.  Each merge runs as its own undo operation, keeping
   every operation's log bounded.  Returns whether anything merged. *)
let defrag_pass sh ~target =
  let mach = sh.mach in
  sh.stat_defrag_passes <- sh.stat_defrag_passes + 1;
  Obs.Trace.emit2 Obs.Event.Defrag sh.index target;
  let budget = ref 256 in
  let merged_any = ref false in
  let max_cls = min (Layout.class_of_size target) (Layout.num_classes - 1) in
  let rec walk_class cls =
    (* returns true when a merge happened (links changed: restart) *)
    let rec walk rec_addr =
      if rec_addr = 0 || !budget = 0 then false
      else begin
        let next_off = Record.get_next mach rec_addr in
        let right =
          if next_off = nil then None
          else
            match Hashtable.lookup sh.ht next_off with
            | Some nr when Record.get_status mach nr = Layout.st_free -> Some nr
            | _ -> None
        in
        match right with
        | Some right_rec ->
          op sh (fun ctx -> merge ctx sh ~left_rec:rec_addr ~right_rec);
          decr budget;
          merged_any := true;
          true
        | None -> walk (Record.get_next_free mach rec_addr)
      end
    in
    if walk (Buddy.head mach sh.meta_base cls) then walk_class cls
  in
  for cls = 0 to max_cls do
    if !budget > 0 then walk_class cls
  done;
  !merged_any

(* ---------- hole punching (§5.6) ---------- *)

let try_shrink sh =
  let shrunk =
    op sh (fun ctx -> Hashtable.shrink ctx sh.ht)
  in
  match shrunk with
  | Some (from_level, to_level) ->
    Hashtable.punch_levels sh.ht ~from_level ~to_level
  | None -> ()

(* ---------- public operations (lock and MPK held by caller) ---------- *)

(* Retries [attempt] as long as defragmentation keeps making progress:
   one pass is merge-budget-bounded (to bound each undo operation), so
   rebuilding a fully fragmented pool can take several passes. *)
let with_defrag_retries sh ~rsize attempt =
  let rec go () =
    match attempt () with
    | Some _ as r -> r
    | None -> if defrag_pass sh ~target:rsize then go () else None
  in
  go ()

let allocate sh size =
  if size <= 0 then None
  else
    let rsize = Layout.round_up size in
    if rsize > sh.data_size then None
    else
      with_defrag_retries sh ~rsize (fun () ->
          op sh (fun ctx -> alloc_once ctx sh rsize))

(** Transactional allocation: like {!allocate} but the allocated
    pointer is persisted in the micro log before the undo log of the
    operation is truncated (§5.3). *)
let allocate_tx sh size =
  if size <= 0 then None
  else
    let rsize = Layout.round_up size in
    if rsize > sh.data_size then None
    else begin
      let attempt () =
        let ctx = Undolog.begin_op sh.mach ~meta_base:sh.meta_base in
        match alloc_once ctx sh rsize with
        | None ->
          Undolog.commit ctx;
          None
        | Some off ->
          let ptr =
            Alloc_intf.{ heap_id = sh.heap_id; subheap = sh.index; off }
          in
          Undolog.commit ctx ~before_truncate:(fun () ->
              Microlog.append sh.mach ~meta_base:sh.meta_base
                (Alloc_intf.pack ptr));
          Some off
      in
      with_defrag_retries sh ~rsize attempt
    end

let commit_tx sh = Microlog.commit sh.mach ~meta_base:sh.meta_base

type free_result = Freed | Invalid_free | Double_free

(* Free body shared by the single and the batched path; [ctx] is an
   open operation of the caller. *)
let dealloc_in ctx sh off =
  match Hashtable.lookup sh.ht off with
  | None ->
    sh.stat_invalid_free <- sh.stat_invalid_free + 1;
    Invalid_free
  | Some rec_addr ->
    if Record.get_status sh.mach rec_addr <> Layout.st_alloc then begin
      sh.stat_double_free <- sh.stat_double_free + 1;
      Double_free
    end
    else begin
      Record.set_status ctx rec_addr Layout.st_free;
      let size = Record.get_size sh.mach rec_addr in
      Buddy.push_tail ctx sh.meta_base (Layout.class_of_size size) rec_addr;
      Freed
    end

let deallocate sh off =
  (* validate before opening an operation: rejected frees must not
     pay a log truncation *)
  match Hashtable.lookup sh.ht off with
  | None ->
    sh.stat_invalid_free <- sh.stat_invalid_free + 1;
    Invalid_free
  | Some rec_addr ->
    if Record.get_status sh.mach rec_addr <> Layout.st_alloc then begin
      sh.stat_double_free <- sh.stat_double_free + 1;
      Double_free
    end
    else op sh (fun ctx -> dealloc_in ctx sh off)

(** Frees a whole batch under ONE undo operation: first-touch logging
    amortizes the class-list head/tail barriers across the batch, so a
    magazine flush costs far fewer fences than [n] singleton frees.
    Returns how many offsets actually freed (invalid and double frees
    are absorbed into the stats, as in {!deallocate}). *)
let deallocate_many sh offs =
  match offs with
  | [] -> 0
  | _ ->
    op sh (fun ctx ->
        List.fold_left
          (fun n off -> if dealloc_in ctx sh off = Freed then n + 1 else n)
          0 offs)

(* ---------- thread-cache reclaim ledger (DRAM cache support) ---------- *)

let tc_ledger_addr sh slot =
  sh.meta_base + Layout.sh_off_tc_ledger + (slot * Layout.word)

let tc_init_slots sh =
  if not sh.tc_slots_ready then begin
    let free = ref [] in
    for slot = Layout.tc_ledger_cap - 1 downto 0 do
      if Machine.read_u64 sh.mach (tc_ledger_addr sh slot) = 0 then
        free := slot :: !free
    done;
    sh.tc_free_slots <- !free;
    sh.tc_slots_ready <- true
  end

let tc_slot_acquire sh =
  tc_init_slots sh;
  match sh.tc_free_slots with
  | [] -> None
  | slot :: rest ->
    sh.tc_free_slots <- rest;
    Some slot

let tc_slot_release sh slot =
  tc_init_slots sh;
  sh.tc_free_slots <- slot :: sh.tc_free_slots

(** Durably records "offset [off] must be deallocated on recovery" in
    ledger slot [slot] — the write-ahead a magazine free publishes
    BEFORE the block becomes recyclable.  One fence. *)
let tc_lease_set sh slot off =
  Machine.write_u64 sh.mach (tc_ledger_addr sh slot) (off + 1);
  Machine.persist sh.mach (tc_ledger_addr sh slot) Layout.word

(** Stages (clwb, no fence) the release of a lease; the caller batches
    several clears under one trailing [sfence]. *)
let tc_lease_clear_async sh slot =
  Machine.write_u64 sh.mach (tc_ledger_addr sh slot) 0;
  Machine.clwb sh.mach (tc_ledger_addr sh slot)

(** Carves up to [count] blocks of exactly [rsize] bytes (already
    rounded) in ONE undo operation, each with a ledger lease recorded
    under the same operation — commit makes the whole batch atomic:
    either every block is allocated and covered by a lease, or the
    rollback returns them all.  Stops early when the pool or the
    ledger runs dry (the caller falls back to the slow path). *)
let carve sh ~rsize ~count =
  if count <= 0 || rsize > sh.data_size then []
  else
    op sh (fun ctx ->
        let acc = ref [] and rejects = ref [] in
        (try
           for _ = 1 to count do
             match tc_slot_acquire sh with
             | None -> raise Exit
             | Some slot -> (
               match alloc_once ctx sh rsize with
               | None ->
                 tc_slot_release sh slot;
                 raise Exit
               | Some off ->
                 let size =
                   match Hashtable.lookup sh.ht off with
                   | Some r -> Record.get_size sh.mach r
                   | None -> assert false
                 in
                 if size <> rsize then begin
                   (* remainder insert failed and the whole block was
                      handed out: unusable for an exact-size bin; park
                      it and free it after the loop (freeing now would
                      put it straight back at this class's head) *)
                   tc_slot_release sh slot;
                   rejects := off :: !rejects
                 end
                 else begin
                   Undolog.write ctx (tc_ledger_addr sh slot) (off + 1);
                   acc := (off, slot) :: !acc
                 end)
           done
         with Exit -> ());
        List.iter (fun off -> ignore (dealloc_in ctx sh off)) !rejects;
        List.rev !acc)

(* ---------- formatting a fresh sub-heap ---------- *)

(** Writes a virgin sub-heap: header fields, one level of hash table,
    and a single free block covering the whole data region.  The
    caller makes creation crash-atomic by persisting the directory
    entry's "active" state only after this returns (§5.1). *)
let format mach ~heap_id ~index ~cpu ~meta_base ~data_base ~data_size ~base_buckets =
  if data_size mod Layout.min_block <> 0 then
    invalid_arg "Subheap.format: data size must be granule-aligned";
  hdr_write mach meta_base Layout.sh_off_magic Layout.sh_magic;
  hdr_write mach meta_base Layout.sh_off_cpu cpu;
  hdr_write mach meta_base Layout.sh_off_data_base data_base;
  hdr_write mach meta_base Layout.sh_off_data_size data_size;
  hdr_write mach meta_base Layout.sh_off_undo_count 0;
  hdr_write mach meta_base Layout.sh_off_micro_count 0;
  hdr_write mach meta_base Layout.sh_off_hash_levels 1;
  hdr_write mach meta_base Layout.sh_off_base_buckets base_buckets;
  for slot = 0 to Layout.tc_ledger_cap - 1 do
    hdr_write mach meta_base (Layout.sh_off_tc_ledger + (slot * Layout.word)) 0
  done;
  Machine.persist mach meta_base Layout.sh_header_size;
  let sh =
    make mach ~heap_id ~index ~cpu ~meta_base ~data_base ~data_size ~base_buckets
  in
  op sh (fun ctx ->
      match
        insert_record ctx sh ~off:0 ~size:data_size ~status:Layout.st_free
          ~prev:nil ~next:nil
      with
      | Some rec_addr ->
        Buddy.push_head ctx sh.meta_base
          (Layout.class_of_size data_size) rec_addr
      | None -> assert false);
  sh

(* ---------- recovery (§5.8) ---------- *)

(* Replays the undo log, then rolls back the uncommitted transaction
   recorded in the micro log.  Idempotent. *)
let recover sh =
  let undo_replayed = Undolog.recover sh.mach ~meta_base:sh.meta_base in
  let entries = Microlog.entries sh.mach ~meta_base:sh.meta_base in
  sh.stat_recovery_replays <-
    sh.stat_recovery_replays
    + (if undo_replayed then 1 else 0)
    + List.length entries;
  Obs.Trace.emit2 Obs.Event.Undo_replay
    (if undo_replayed then 1 else 0)
    (List.length entries);
  List.iter
    (fun packed ->
      let ptr = Alloc_intf.unpack ~heap_id:sh.heap_id packed in
      (* a rolled-back sub-allocation is already free: the double-free
         check makes replaying this idempotent *)
      ignore (deallocate sh ptr.Alloc_intf.off))
    entries;
  Microlog.commit sh.mach ~meta_base:sh.meta_base;
  (* thread-cache reclaim ledger: every leased block died with the
     DRAM magazines — carved-ahead blocks nothing referenced yet, and
     freed blocks whose batched reclaim had not landed.  Deallocate
     them (double frees absorbed: the store's own intent replay may
     free the same offset) and release the slots. *)
  let tc_replayed = ref 0 in
  for slot = 0 to Layout.tc_ledger_cap - 1 do
    let a = tc_ledger_addr sh slot in
    let v = Machine.read_u64 sh.mach a in
    if v <> 0 then begin
      ignore (deallocate sh (v - 1));
      Machine.write_u64 sh.mach a 0;
      Machine.clwb sh.mach a;
      incr tc_replayed
    end
  done;
  if !tc_replayed > 0 then begin
    Machine.sfence sh.mach;
    sh.stat_recovery_replays <- sh.stat_recovery_replays + !tc_replayed
  end;
  sh.tc_free_slots <- [];
  sh.tc_slots_ready <- false

(* ---------- introspection & invariants (tests, reporting) ---------- *)

let iter_blocks sh f =
  let mach = sh.mach in
  let rec go off =
    if off < sh.data_size then begin
      match Hashtable.lookup sh.ht off with
      | None ->
        failwith
          (Printf.sprintf "subheap %d: no record for block at %#x" sh.index off)
      | Some rec_addr ->
        let size = Record.get_size mach rec_addr in
        f ~off ~size ~rec_addr ~status:(Record.get_status mach rec_addr);
        if size <= 0 then failwith "subheap: zero-size block";
        go (off + size)
    end
  in
  go 0

let live_bytes sh =
  let total = ref 0 in
  iter_blocks sh (fun ~off:_ ~size ~rec_addr:_ ~status ->
      if status = Layout.st_alloc then total := !total + size);
  !total

let free_bytes sh =
  let total = ref 0 in
  iter_blocks sh (fun ~off:_ ~size ~rec_addr:_ ~status ->
      if status = Layout.st_free then total := !total + size);
  !total

exception Invariant_violation of string

let fail_inv fmt = Printf.ksprintf (fun s -> raise (Invariant_violation s)) fmt

(** Full structural check; used heavily by the test suite.

    Verifies: undo log empty; the data region is exactly tiled by
    blocks with consistent prev/next adjacency links; every free block
    is in exactly the right class list; class lists are well-formed
    doubly-linked lists of free blocks; level live counters match the
    real record population. *)
let check_invariants sh =
  let mach = sh.mach in
  if not (Undolog.is_empty mach ~meta_base:sh.meta_base) then
    fail_inv "subheap %d: undo log not empty at rest" sh.index;
  let free_set = Hashtbl.create 64 in
  let level_count = Array.make Layout.max_levels 0 in
  let expected_prev = ref nil in
  let covered = ref 0 in
  iter_blocks sh (fun ~off ~size ~rec_addr ~status ->
      if status <> Layout.st_free && status <> Layout.st_alloc then
        fail_inv "subheap %d: block %#x has status %d" sh.index off status;
      if size mod Layout.min_block <> 0 then
        fail_inv "subheap %d: block %#x has unaligned size %d" sh.index off size;
      let prev = Record.get_prev mach rec_addr in
      if prev <> !expected_prev then
        fail_inv "subheap %d: block %#x prev=%#x expected %#x" sh.index off prev
          !expected_prev;
      let next = Record.get_next mach rec_addr in
      let expected_next = if off + size = sh.data_size then nil else off + size in
      if next <> expected_next then
        fail_inv "subheap %d: block %#x next=%#x expected %#x" sh.index off next
          expected_next;
      if status = Layout.st_free then Hashtbl.replace free_set off rec_addr;
      let level = Hashtable.level_of_rec sh.ht rec_addr in
      level_count.(level) <- level_count.(level) + 1;
      expected_prev := off;
      covered := !covered + size);
  if !covered <> sh.data_size then
    fail_inv "subheap %d: blocks cover %d of %d bytes" sh.index !covered
      sh.data_size;
  (* class lists *)
  let listed = Hashtbl.create 64 in
  for cls = 0 to Layout.num_classes - 1 do
    let rec walk rec_addr prev_rec =
      if rec_addr <> 0 then begin
        let off = Record.get_offset mach rec_addr in
        if Record.get_status mach rec_addr <> Layout.st_free then
          fail_inv "subheap %d: class %d lists non-free block %#x" sh.index cls
            off;
        let size = Record.get_size mach rec_addr in
        if Layout.class_of_size size <> cls then
          fail_inv "subheap %d: block %#x (size %d) in wrong class %d" sh.index
            off size cls;
        if Record.get_prev_free mach rec_addr <> prev_rec then
          fail_inv "subheap %d: class %d broken prev_free at %#x" sh.index cls
            off;
        if not (Hashtbl.mem free_set off) then
          fail_inv "subheap %d: class %d lists unknown free block %#x" sh.index
            cls off;
        if Hashtbl.mem listed off then
          fail_inv "subheap %d: block %#x in two class lists" sh.index off;
        Hashtbl.replace listed off ();
        let next = Record.get_next_free mach rec_addr in
        if next = 0 && Buddy.tail mach sh.meta_base cls <> rec_addr then
          fail_inv "subheap %d: class %d tail mismatch" sh.index cls;
        walk next rec_addr
      end
      else if prev_rec = 0 && Buddy.tail mach sh.meta_base cls <> 0 then
        fail_inv "subheap %d: class %d empty head but non-zero tail" sh.index cls
    in
    walk (Buddy.head mach sh.meta_base cls) 0
  done;
  if Hashtbl.length listed <> Hashtbl.length free_set then
    fail_inv "subheap %d: %d free blocks but %d listed" sh.index
      (Hashtbl.length free_set) (Hashtbl.length listed);
  (* level live counters *)
  let nlevels = Hashtable.levels sh.ht in
  for level = 0 to nlevels - 1 do
    let stored = Hashtable.level_live sh.ht level in
    if stored <> level_count.(level) then
      fail_inv "subheap %d: level %d live=%d but %d records found" sh.index
        level stored level_count.(level)
  done;
  for level = nlevels to Layout.max_levels - 1 do
    if level_count.(level) <> 0 then
      fail_inv "subheap %d: records beyond level count" sh.index
  done
