(** The Poseidon heap: the paper's public API (Fig. 5) plus
    reproduction-specific controls.

    A heap lives in one contiguous window of the simulated NVMM
    address space and consists of a superblock plus per-CPU sub-heaps
    created on first allocation from each CPU (§4.1).  All metadata is
    fully segregated from user data and protected with simulated Intel
    MPK (§4.2–4.3): it is read-only for every thread except inside an
    allocator operation of the thread executing it.

    Crash consistency: every operation is undo-logged; transactional
    allocations are additionally recorded in a per-sub-heap micro log
    whose truncation is the commit point (§4.5).  {!attach} performs
    the recovery protocol of §5.8 (idempotent; safe to crash during).

    Thread model: simulated threads are pinned to CPUs; allocation
    uses the calling CPU's sub-heap, deallocation goes to the owning
    sub-heap wherever the caller runs (§5.7). *)

type t

val default_sub_data_size : int
val default_base_buckets : int

val create :
  Machine.t ->
  base:int ->
  size:int ->
  heap_id:int ->
  ?sub_data_size:int ->
  ?base_buckets:int ->
  ?protected:bool ->
  ?single_subheap:bool ->
  unit ->
  t
(** Formats a fresh heap in the window [base, base+size).
    [sub_data_size] is each sub-heap's user-data capacity (sparsely
    backed; default 64 MiB); [base_buckets] sizes hash level 0.
    [protected:false] disables MPK (ablation A3); [single_subheap]
    shares one sub-heap between all CPUs (ablation A2). *)

val attach : Machine.t -> base:int -> ?protected:bool -> unit -> t
(** Loads an existing heap (§5.1): re-allocates an MPK key, re-tags
    the metadata regions, replays every sub-heap's undo log and rolls
    back uncommitted transactions from the micro logs (§5.8). *)

val finish : t -> unit
(** Clean shutdown; releases the MPK key. *)

(** {2 Allocation (Fig. 5)} *)

val alloc : t -> int -> Alloc_intf.nvmptr option
(** Singleton allocation; [None] when no space can be found (sizes
    round up to the next power-of-two class, min 32 B). *)

val tx_alloc : t -> int -> is_end:bool -> Alloc_intf.nvmptr option
(** Transactional allocation (§5.3): the pointer is persisted in the
    micro log before the operation's undo log truncates; a successful
    [is_end:true] call commits the transaction.  After a crash before
    commit, recovery frees every allocation of the transaction. *)

val tx_commit : t -> unit
(** Explicit commit of the in-flight transaction (truncates the micro
    log), equivalent to a successful [is_end:true] allocation. *)

val tx_abort : t -> unit
(** Frees every address in the calling CPU's micro log and truncates
    it — explicit abort of the in-flight transaction. *)

val free : t -> Alloc_intf.nvmptr -> unit
(** Deallocation.  Invalid frees (unknown address, foreign heap,
    interior pointer) and double frees are detected via the memblock
    hash table and ignored, with counters (§4.4). *)

(** {2 Pointers and root (Fig. 5)} *)

val get_rawptr : t -> Alloc_intf.nvmptr -> int
(** Absolute simulated address; raises [Invalid_argument] on null or
    foreign pointers. *)

val get_nvmptr : t -> int -> Alloc_intf.nvmptr
(** Inverse of {!get_rawptr}. *)

val get_root : t -> Alloc_intf.nvmptr
val set_root : t -> Alloc_intf.nvmptr -> unit

(** {2 Maintenance, security, introspection} *)

val lockdown : t -> unit
(** Enables the §8 wrpkru-lockdown countermeasure: guards the heap's
    protection key and seals the machine's MPK unit, so only this
    heap (holding the capability) can grant metadata access; a
    hijacked [wrpkru] raises [Mpk.Wrpkru_denied]. *)

val shrink_metadata : t -> unit
(** Hole-punches empty top hash-table levels of every sub-heap back
    to the filesystem (§5.6). *)

val machine : t -> Machine.t
val heap_id : t -> int
val pkey : t -> int
val base : t -> int

val iter_subheaps : t -> (Subheap.t -> unit) -> unit

(** {2 Oracle accessors}

    Read-only views used by crash-consistency oracles
    (the {!Crashcheck} model checker). *)

val data_capacity : t -> int
(** Sum of the data-region sizes of every active sub-heap. *)

val tx_pending : t -> int
(** Total micro-log entries across sub-heaps — the number of
    allocations belonging to transactions that have not committed.
    Zero after a completed recovery. *)

val logs_quiescent : t -> bool
(** Every sub-heap's undo log and micro log is empty — no operation
    in flight and no uncommitted transaction.  Recovery must always
    leave the heap in this state. *)

val check_invariants : t -> unit
(** Full structural validation of every sub-heap; raises
    [Subheap.Invariant_violation]. *)

val cache_ops : t -> Alloc_intf.cache_ops option
(** Magazine-cache support hooks (always [Some] for Poseidon): batched
    carving, reclaim-ledger leases, deferred bulk frees.  See
    DESIGN.md §14 and lib/tcache. *)

type stats = {
  subheaps_active : int;
  invalid_frees : int;
  double_frees : int;
  merges : int;
  defrag_passes : int;
  hash_extends : int;
  tx_commits : int; (** committed transactions (explicit or [is_end]) *)
  tx_aborts : int; (** explicit {!tx_abort} calls *)
  recovery_replays : int;
      (** undo-log replays + micro-log rollback entries processed by
          {!attach} recovery *)
  live_bytes : int;
  free_bytes : int;
  tcache_hits : int; (** magazine-cache bin pops (no allocator call) *)
  tcache_misses : int; (** bin empty — refill or inner fallback *)
  bin_refills : int; (** batched {!carve} refills *)
  bin_flushes : int; (** bulk reclaims of full free bins *)
}

val stats : t -> stats

val publish_metrics : ?registry:Obs.Metrics.t -> t -> unit
(** Pushes aggregate heap statistics and per-sub-heap occupancy into
    the metrics registry (default {!Obs.Metrics.default}) under the
    [heap<id>] and [heap<id>/subheap<slot>] scopes. *)
