(** Per-CPU sub-heap: allocation, deallocation, splitting, merging and
    defragmentation (paper §4.1, §5.2–§5.5).

    All operations here assume the caller (the heap layer) holds the
    sub-heap lock and has granted itself write permission on the
    metadata region via MPK.  Every metadata mutation runs inside an
    undo-logged operation, so a crash at any point rolls back to a
    consistent state. *)

type t = {
  mach : Machine.t;
  heap_id : int;
  index : int; (** sub-heap id = directory slot = CPU *)
  cpu : int;
  meta_base : int;
  data_base : int;
  data_size : int;
  ht : Hashtable.t;
  lock : Machine.Lock.lock;
  mutable stat_invalid_free : int;
  mutable stat_double_free : int;
  mutable stat_merges : int;
  mutable stat_defrag_passes : int;
  mutable stat_hash_extends : int;
  mutable stat_tx_commits : int; (** maintained by the heap layer *)
  mutable stat_tx_aborts : int; (** maintained by the heap layer *)
  mutable stat_recovery_replays : int;
      (** undo-log replays, micro-log entries rolled back and
          thread-cache leases reclaimed by {!recover} over the
          sub-heap's lifetime in this process *)
  mutable tc_free_slots : int list;
      (** volatile free-slot stack of the thread-cache reclaim ledger
          (maintained by the heap layer under the sub-heap lock) *)
  mutable tc_slots_ready : bool;
}

val format :
  Machine.t ->
  heap_id:int ->
  index:int ->
  cpu:int ->
  meta_base:int ->
  data_base:int ->
  data_size:int ->
  base_buckets:int ->
  t
(** Writes a virgin sub-heap: header, one hash level, and a single
    free block covering the whole data region.  The caller makes
    creation crash-atomic by publishing the directory entry only after
    this returns (§5.1). *)

val attach : Machine.t -> heap_id:int -> index:int -> meta_base:int -> t
(** Rebuilds the volatile handle of an existing sub-heap (restart);
    raises [Failure] on a bad magic. *)

(** {2 Operations (lock and MPK held by the caller)} *)

val allocate : t -> int -> int option
(** [allocate sh size] returns the block offset, or [None] when no
    block can be found even after defragmentation.  Sizes round up to
    the size-class boundary (§5.2). *)

val allocate_tx : t -> int -> int option
(** Like {!allocate}, additionally persisting the pointer in the micro
    log before the undo log truncates (§5.3). *)

val commit_tx : t -> unit
(** Truncates the micro log — the transaction commit point. *)

type free_result = Freed | Invalid_free | Double_free

val deallocate : t -> int -> free_result
(** Validates the offset against the memblock hash table: unknown
    offsets and non-allocated statuses are rejected (§4.4, §5.5). *)

val deallocate_many : t -> int list -> int
(** Frees a whole batch under one undo operation (a magazine flush):
    first-touch logging amortizes the persistence barriers across the
    batch.  Returns how many offsets actually freed; invalid and
    double frees are absorbed into the stats as in {!deallocate}. *)

(** {2 Thread-cache reclaim ledger}

    Persistent per-sub-heap slot array backing the volatile magazine
    caches (lib/tcache): a non-zero slot holds [off + 1] of a block
    that is allocated in the metadata but owned only by DRAM — carved
    ahead of use, or freed into a bin — and {!recover} deallocates it.
    Slot bookkeeping runs under the sub-heap lock like every other
    operation here. *)

val tc_slot_acquire : t -> int option
(** Claims a free ledger slot ([None] when the ledger is full — the
    caller degrades to the uncached path). *)

val tc_slot_release : t -> int -> unit
(** Returns a slot whose lease has been durably cleared. *)

val tc_lease_set : t -> int -> int -> unit
(** [tc_lease_set sh slot off] durably records the reclaim intent for
    [off] (write + one fence) — the write-ahead that makes a freed
    block safe to recycle from a volatile bin. *)

val tc_lease_clear_async : t -> int -> unit
(** Stages (clwb, no fence) the release of a lease; the caller batches
    clears under one trailing [sfence] before its own commit point. *)

val carve : t -> rsize:int -> count:int -> (int * int) list
(** Carves up to [count] blocks of exactly [rsize] bytes (pre-rounded)
    in one undo operation, each covered by a ledger lease written
    under the same operation — the batch is crash-atomic.  Returns
    [(off, slot)] pairs; may return fewer than [count] (pool or ledger
    exhausted). *)

val recover : t -> unit
(** §5.8: replays the undo log, then frees every address in the micro
    log (the uncommitted transaction) and truncates it.  Idempotent. *)

val try_shrink : t -> unit
(** Hole-punches empty top hash levels (§5.6). *)

(** {2 Introspection (read-only)} *)

val iter_blocks :
  t -> (off:int -> size:int -> rec_addr:int -> status:int -> unit) -> unit
(** Walks the data region in address order through the adjacency
    links; raises [Failure] if the chain is broken. *)

val live_bytes : t -> int
val free_bytes : t -> int

exception Invariant_violation of string

val check_invariants : t -> unit
(** Full structural check: undo log empty at rest; the data region
    exactly tiled by blocks with consistent adjacency links; class
    lists well-formed, correctly classed, and in bijection with the
    free blocks; hash level live counters exact. *)
