(** Poseidon: safe, fast and scalable persistent memory allocator —
    public entry point.

    This module re-exports the allocator's components and provides the
    {!Alloc_intf.S} implementation used by the workloads and
    benchmarks.  See [Heap] for the full API (Fig. 5 of the paper) and
    DESIGN.md for the architecture. *)

module Layout = Layout
module Undolog = Undolog
module Microlog = Microlog
module Record = Record
module Hashtable = Hashtable
module Buddy = Buddy
module Subheap = Subheap
module Superblock = Superblock
module Heap = Heap
module Fsck = Fsck
module Exthash = Exthash

type heap = Heap.t

let allocator_name = "Poseidon"

let create mach ~base ~size ~heap_id =
  Heap.create mach ~base ~size ~heap_id ()

let attach mach ~base = Heap.attach mach ~base ()
let finish = Heap.finish
let alloc = Heap.alloc
let tx_alloc = Heap.tx_alloc
let tx_commit = Heap.tx_commit
let free = Heap.free
let get_rawptr = Heap.get_rawptr
let get_nvmptr = Heap.get_nvmptr
let get_root = Heap.get_root
let set_root = Heap.set_root
let machine = Heap.machine
let cache_ops = Heap.cache_ops

(** Poseidon packaged as a first-class allocator instance. *)
let instance heap =
  Alloc_intf.Instance
    ( (module struct
        type nonrec heap = heap

        let allocator_name = allocator_name
        let create = create
        let attach = attach
        let finish = finish
        let alloc = alloc
        let tx_alloc = tx_alloc
        let tx_commit = tx_commit
        let free = free
        let get_rawptr = get_rawptr
        let get_nvmptr = get_nvmptr
        let get_root = get_root
        let set_root = set_root
        let machine = machine
        let cache_ops = cache_ops
      end : Alloc_intf.S
        with type heap = heap),
      heap )
