(** Per-sub-heap micro log: the history of addresses allocated by the
    transaction in flight (paper §4.5, §5.3) — Poseidon's
    instantiation of {!Persist.Plog}.

    [append] persists an allocated pointer before the sub-allocation's
    undo log is truncated; [commit] (truncating the log) is the
    transaction's commit point.  If the log is non-empty on restart,
    the transaction did not commit and recovery frees every logged
    address (§5.8). *)

exception Overflow

val append : Machine.t -> meta_base:int -> int -> unit
(** Appends a packed nvmptr. *)

val commit : Machine.t -> meta_base:int -> unit
val entries : Machine.t -> meta_base:int -> int list
val count : Machine.t -> meta_base:int -> int
val is_empty : Machine.t -> meta_base:int -> bool
