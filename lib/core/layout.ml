(** On-NVMM layout of a Poseidon heap (paper Fig. 4).

    A heap occupies one contiguous address window:

    {v
    base ................ superblock           (1 page)
    base + 4096 ......... carving area: per-CPU sub-heaps, each
                          [metadata region][user-data region]
    v}

    The sub-heap metadata region (MPK-protected) holds, in order: the
    sub-heap header, the undo log, the micro log, the buddy-list heads
    and tails, the hash-table header, and the multi-level hash-table
    bucket areas.  The user-data region (key 0, always writable by the
    application) follows it.  All metadata words are 8-byte
    little-endian integers; all structures are 8-byte aligned. *)

let word = 8
let page = 4096
let cache_line = 64

let min_block = 32
(** Allocation granularity and minimum block size. *)

let num_classes = 40
(** Size class [i] holds free blocks with [min_block * 2^i <= size <
    min_block * 2^(i+1)]. *)

let nil_off = (1 lsl 48) - 1
(** Sentinel "no block" offset (valid offsets are < 2^48). *)

(* ---------- superblock ---------- *)

let sb_magic = 0x504F534549444FL |> Int64.to_int (* "POSEIDO" *)

let sb_off_magic = 0
let sb_off_version = 8
let sb_off_heap_id = 16
let sb_off_window_size = 24
let sb_off_num_slots = 32
let sb_off_root = 40
let sb_off_next_va = 48
let sb_off_last_pkey = 56
let sb_off_sub_data_size = 64
let sb_off_base_buckets = 72
let sb_off_dir = 80

(* sub-heap directory entry *)
let dir_entry_size = 32
let dir_off_state = 0 (* 0 = absent, 1 = active *)
let dir_off_meta_base = 8
let dir_off_data_base = 16
let dir_off_data_size = 24

let sb_size num_slots = ((sb_off_dir + (num_slots * dir_entry_size) + page - 1) / page) * page

(* ---------- sub-heap header ---------- *)

let sh_magic = 0x5355424845415021L |> Int64.to_int (* "SUBHEAP!" *)

let undo_cap = 1024 (* entries of {addr, old value} *)
let micro_cap = 1024 (* entries of packed nvmptr *)

let sh_off_magic = 0
let sh_off_cpu = 8
let sh_off_data_base = 16
let sh_off_data_size = 24
let sh_off_undo_count = 32
let sh_off_undo_entries = 40
let undo_entry_size = 24
let sh_off_micro_count = sh_off_undo_entries + (undo_cap * undo_entry_size)
let sh_off_micro_entries = sh_off_micro_count + word
let sh_off_buddy_heads = sh_off_micro_entries + (micro_cap * word)
let sh_off_buddy_tails = sh_off_buddy_heads + (num_classes * word)
let sh_off_hash_levels = sh_off_buddy_tails + (num_classes * word)
let sh_off_level_live = sh_off_hash_levels + word

let max_levels = 12

let sh_off_base_buckets = sh_off_level_live + (max_levels * word)

(* Thread-cache reclaim ledger (one word per slot): offset+1 of a
   block that is allocated in the metadata but owned by a volatile
   magazine cache — either carved ahead of use or freed into a bin —
   so recovery must deallocate it.  0 = slot free.  The area lives in
   the header page's existing padding, so heaps formatted before the
   cache existed attach unchanged (their ledger reads all-zero). *)
let tc_ledger_cap = 256
let sh_off_tc_ledger = sh_off_base_buckets + word

let sh_header_size =
  let last = sh_off_tc_ledger + (tc_ledger_cap * word) in
  ((last + page - 1) / page) * page

(* ---------- hash table ---------- *)

let probe_window = 8
(** Linear-probing window before defragmentation / level extension. *)

let record_size = 64
(** One memblock-information record per bucket (paper Fig. 4), one
    cache line each. *)

let rec_off_offset = 0    (* block offset in the data region *)
let rec_off_size = 8      (* block size in bytes *)
let rec_off_status = 16   (* see statuses below *)
let rec_off_prev = 24     (* offset of the address-adjacent left block *)
let rec_off_next = 32     (* offset of the address-adjacent right block *)
let rec_off_next_free = 40 (* record address of next block in the class list *)
let rec_off_prev_free = 48 (* record address of previous block in the class list *)

let st_empty = 0
let st_free = 1
let st_alloc = 2
let st_tombstone = 3

let level_buckets ~base_buckets level = base_buckets lsl level

(** Byte offset (from the metadata base) of hash level [l]'s bucket
    array: levels are laid out back to back, level [l] having
    [base_buckets * 2^l] buckets. *)
let level_area_off ~base_buckets level =
  sh_header_size + (record_size * base_buckets * ((1 lsl level) - 1))

let meta_size ~base_buckets ~levels =
  let sz = sh_header_size + (record_size * base_buckets * ((1 lsl levels) - 1)) in
  ((sz + page - 1) / page) * page

(* ---------- size classes ---------- *)

(** Allocation sizes are rounded to the size-class boundary (the next
    power of two at or above [min_block]) — buddy-style sizing, so a
    freed block exactly matches future requests of its class and the
    hot path never needs to split. *)
let round_up n =
  let n = max n min_block in
  let rec go p = if p >= n then p else go (2 * p) in
  go min_block

(** Class of a block of [size] bytes: floor log2(size / min_block). *)
let class_of_size size =
  if size < min_block then invalid_arg "Layout.class_of_size";
  let rec go c s = if s >= 2 * min_block && c < num_classes - 1 then go (c + 1) (s / 2) else c in
  go 0 size
