(* poseidon-kv service layer: shard routing, the intent-slot
   durability protocol, the open-loop server under clean / overloaded /
   crashing traffic, and a bounded crashcheck sweep of the KV write
   path. *)

module S = Service.Server
module Kv = Service.Kv
module H = Poseidon.Heap

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let heap_base = 1 lsl 30

let mk_store ~shards () =
  let cfg =
    { Machine.Config.default with
      Machine.Config.num_cpus = 1;
      numa_domains = 1 }
  in
  let mach = Machine.create ~cfg () in
  let heap =
    H.create mach ~base:heap_base ~size:(1 lsl 30) ~heap_id:1
      ~sub_data_size:(1 lsl 20) ()
  in
  let inst = Poseidon.instance heap in
  (mach, inst, Kv.create inst ~shards ~value_size:64)

(* ---------- shard routing ---------- *)

let test_routing_partition () =
  let _, _, kv = mk_store ~shards:4 () in
  let per_shard = Array.make 4 0 in
  for key = 1 to 400 do
    let s = Kv.shard_of_key kv key in
    check "shard in range" true (s >= 0 && s < 4);
    check_int "routing is deterministic" s (Kv.shard_of_key kv key);
    per_shard.(s) <- per_shard.(s) + 1;
    check "key stored" true (Kv.put kv ~key ~vseed:key)
  done;
  (* every key landed in exactly one shard: totals are a partition *)
  check_int "no key lost or duplicated" 400 (Kv.count_keys kv);
  Array.iter (fun n -> check "hash spreads keys" true (n > 0)) per_shard

(* ---------- direct store semantics ---------- *)

let test_kv_roundtrip () =
  let _, inst, kv = mk_store ~shards:2 () in
  check "put fresh" true (Kv.put kv ~key:7 ~vseed:100);
  check "get matches oracle" true
    (Kv.get kv ~key:7 = Some (Kv.value_checksum kv ~vseed:100));
  check "overwrite" true (Kv.put kv ~key:7 ~vseed:200);
  check "get sees new value" true
    (Kv.get kv ~key:7 = Some (Kv.value_checksum kv ~vseed:200));
  check "absent key" true (Kv.get kv ~key:8 = None);
  check "delete present" true (Kv.delete kv ~key:7);
  check "delete absent" false (Kv.delete kv ~key:7);
  check "deleted is gone" true (Kv.get kv ~key:7 = None);
  for k = 1 to 50 do
    ignore (Kv.put kv ~key:k ~vseed:(1000 + k))
  done;
  check "scan visits entries" true (Kv.scan kv ~from_key:1 ~n:10 > 0);
  Kv.check kv;
  (* clean re-attach finds everything with nothing to replay *)
  let kv2, rec_ = Kv.attach inst in
  check_int "no replay on clean attach" 0
    (rec_.Kv.replayed + rec_.Kv.rolled_back);
  check_int "re-attach sees all keys" 50 (Kv.count_keys kv2);
  check "re-attach reads values" true
    (Kv.get kv2 ~key:13 = Some (Kv.value_checksum kv2 ~vseed:1013))

(* ---------- server runs ---------- *)

let factory = Workloads.Factories.poseidon ()

let serve cfg =
  S.run
    ~make:(fun () -> factory.Workloads.Factories.make ())
    ~reattach:(fun mach ->
      Poseidon.instance
        (H.attach mach ~base:Workloads.Factories.heap_base ()))
    cfg

let base_cfg =
  { S.default_config with
    S.shards = 2;
    clients = 8;
    rate = 40_000.;
    duration = 0.005;
    keyspace = 512;
    preload = 256;
    scope = "test/service" }

let test_clean_run () =
  let r = serve { base_cfg with S.scope = "test/service/clean" } in
  check "requests completed" true (r.S.completed > 0);
  check "not crashed" false r.S.crashed;
  check_int "no recovery without a crash" 0 r.S.rto_ns;
  check "ledger checked keys" true (r.S.ledger.S.checked > 0);
  check_int "nothing ambiguous without a crash" 0 r.S.ledger.S.ambiguous;
  check_int "ledger matches store" 0 r.S.ledger.S.mismatches;
  check "latency histogram populated" true (r.S.latency.S.samples > 0);
  check "p50 <= p99 <= p999" true
    (r.S.latency.S.p50 <= r.S.latency.S.p99
    && r.S.latency.S.p99 <= r.S.latency.S.p999)

let test_crash_run () =
  let r =
    serve
      { base_cfg with S.crash_at = Some 0.5; scope = "test/service/crash" }
  in
  check "crashed" true r.S.crashed;
  check "recovery ran" true (r.S.recovery <> None);
  check "RTO is nonzero simulated time" true (r.S.rto_ns > 0);
  check "ledger checked keys" true (r.S.ledger.S.checked > 0);
  check_int "every acked write survived" 0 r.S.ledger.S.mismatches

(* At 2x saturation the bounded queues must shed ([Overloaded]) rather
   than deadlock or grow without bound; goodput stays a fraction of
   the offered rate. *)
let test_backpressure_sheds () =
  let r =
    serve
      { base_cfg with
        S.rate = 2_000_000.;
        clients = 16;
        queue_capacity = 8;
        scope = "test/service/overload" }
  in
  check "requests shed" true (r.S.shed > 0);
  check "some requests still served" true (r.S.completed > 0);
  check "queue depth bounded" true (r.S.queue_max_depth <= 8);
  check "goodput below offered rate" true
    (r.S.goodput < 2_000_000. /. 2.);
  check_int "shedding loses no acked write" 0 r.S.ledger.S.mismatches

(* ---------- crashcheck sweep of the KV write path ---------- *)

let test_crashcheck_kv () =
  List.iter
    (fun name ->
      let scn = Option.get (Crashcheck.scenario_by_name name) in
      let r = Crashcheck.run ~max_points:6 ~subsets_per_point:1 scn in
      check (name ^ " sweeps points") true (r.Crashcheck.points_explored >= 6);
      check_int
        (name ^ " has no counterexamples")
        0
        (List.length r.Crashcheck.counterexamples))
    [ "kv-put"; "kv-delete" ]

let () =
  Alcotest.run "service"
    [ ( "kv",
        [ Alcotest.test_case "shard routing is a partition" `Quick
            test_routing_partition;
          Alcotest.test_case "put/get/delete/scan round-trip" `Quick
            test_kv_roundtrip ] );
      ( "server",
        [ Alcotest.test_case "clean run: ledger matches store" `Quick
            test_clean_run;
          Alcotest.test_case "crash run: recovery + nonzero RTO" `Quick
            test_crash_run;
          Alcotest.test_case "overload sheds instead of deadlocking" `Quick
            test_backpressure_sheds ] );
      ( "crashcheck",
        [ Alcotest.test_case "kv scenarios: bounded sweep clean" `Quick
            test_crashcheck_kv ] ) ]
