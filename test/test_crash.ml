(* Systematic crash-injection tests: crash Poseidon at *every*
   persistent-barrier boundary of an operation sequence (strict mode)
   and at random ones (adversarial mode), then recover and verify
   consistency.

   Mechanism: every mutation between two sfences is volatile, so a
   strict crash "after fence k" covers every crash instant in
   (fence k, fence k+1).  A fence hook aborts execution exactly there,
   mid-operation included; adversarial mode additionally persists
   random subsets of the unflushed lines, modelling cache eviction.

   Randomized loops seed from CRASH_SEED (see crash_seed.ml); a
   failure prints the seed that reproduces it.  The *systematic*
   (exhaustive, oracle-checked) exploration lives in lib/crashcheck
   and test_crashcheck.ml. *)

module Prng = Repro_util.Prng
module Memdev = Nvmm.Memdev
module H = Poseidon.Heap

let check = Alcotest.(check bool)

let base = 1 lsl 30

exception Crash_now

let mkmach () =
  let cfg = { Machine.Config.default with num_cpus = 2 } in
  Machine.create ~cfg ()

let mkheap mach =
  H.create mach ~base ~size:(1 lsl 34) ~heap_id:1 ~sub_data_size:(1 lsl 18)
    ~base_buckets:32 ()

(* the canonical trace: allocations of mixed sizes, frees, a tx *)
let trace h =
  let ps = ref [] in
  for i = 1 to 12 do
    match H.alloc h (32 * i) with
    | Some p -> ps := p :: !ps
    | None -> ()
  done;
  (match !ps with
   | a :: b :: rest ->
     H.free h a;
     H.free h b;
     ps := rest
   | _ -> ());
  ignore (H.tx_alloc h 64 ~is_end:false);
  ignore (H.tx_alloc h 128 ~is_end:true)

(* run the trace, aborting after [crash_after] fences (counted from
   the start of the trace); returns the machine *)
let run_trace ~crash_after =
  let mach = mkmach () in
  let h = mkheap mach in
  let dev = Machine.dev mach in
  Memdev.reset_counters dev;
  Memdev.set_fence_hook dev
    (Some (fun n -> if n >= crash_after then raise Crash_now));
  (try trace h with Crash_now -> ());
  Memdev.set_fence_hook dev None;
  mach

let count_fences () =
  let mach = mkmach () in
  let h = mkheap mach in
  Memdev.reset_counters (Machine.dev mach);
  trace h;
  (Memdev.counters (Machine.dev mach)).Memdev.fences

let recover_and_check mach =
  let h2 = H.attach mach ~base () in
  H.check_invariants h2;
  h2

let test_crash_at_every_fence () =
  let total = count_fences () in
  check "trace produces many fences" true (total > 50);
  for k = 1 to total do
    let mach = run_trace ~crash_after:k in
    Memdev.crash (Machine.dev mach) `Strict;
    ignore (recover_and_check mach)
  done

let test_crash_adversarial_random () =
  Crash_seed.with_seed ~default:2024 @@ fun seed ->
  let total = count_fences () in
  let rng = Prng.create seed in
  for _ = 1 to 60 do
    let k = 1 + Prng.int rng total in
    let mach = run_trace ~crash_after:k in
    Memdev.crash (Machine.dev mach) (`Adversarial rng);
    ignore (recover_and_check mach)
  done

let test_double_crash_during_recovery () =
  (* crash mid-trace, recover partially (recovery itself interrupted
     by a fence-hook crash), then recover fully: idempotent replay
     (5.8) *)
  Crash_seed.with_seed ~default:7 @@ fun seed ->
  let total = count_fences () in
  let rng = Prng.create seed in
  for _ = 1 to 25 do
    let k = 1 + Prng.int rng total in
    let mach = run_trace ~crash_after:k in
    let dev = Machine.dev mach in
    Memdev.crash dev `Strict;
    (* interrupt the recovery after a few fences *)
    let fences_now = (Memdev.counters dev).Memdev.fences in
    Memdev.set_fence_hook dev
      (Some
         (fun n -> if n >= fences_now + 1 + Prng.int rng 5 then raise Crash_now));
    (try ignore (H.attach mach ~base ()) with Crash_now -> ());
    Memdev.set_fence_hook dev None;
    Memdev.crash dev (`Adversarial rng);
    ignore (recover_and_check mach)
  done

let test_committed_allocations_survive_any_crash () =
  (* allocations whose API call returned before the crash point must
     survive: compare the live bytes after recovery with the sizes
     whose H.alloc completed *)
  Crash_seed.with_seed ~default:99 @@ fun seed ->
  let total = count_fences () in
  let rng = Prng.create seed in
  for _ = 1 to 40 do
    let k = 1 + Prng.int rng total in
    let mach = mkmach () in
    let h = mkheap mach in
    let dev = Machine.dev mach in
    Memdev.reset_counters dev;
    Memdev.set_fence_hook dev
      (Some (fun n -> if n >= k then raise Crash_now));
    let completed = ref 0 in
    (try
       for i = 1 to 14 do
         match H.alloc h (32 * i) with
         | Some _ -> completed := !completed + Poseidon.Layout.round_up (32 * i)
         | None -> ()
       done
     with Crash_now -> ());
    Memdev.set_fence_hook dev None;
    let in_flight = ref 0 in
    (* at most one allocation was in flight when the crash hit; its
       rounded size is bounded by the largest request *)
    in_flight := 512;
    Memdev.crash dev `Strict;
    let h2 = recover_and_check mach in
    let live = (H.stats h2).H.live_bytes in
    check "all completed allocations survive" true
      (live >= !completed && live <= !completed + !in_flight)
  done

let test_tx_atomicity_at_any_crash_point () =
  (* random sequences of multi-allocation transactions, crashed at a
     random fence: after recovery the live bytes equal exactly the sum
     of the transactions whose commit completed — every transaction is
     all-or-nothing (4.5) *)
  Crash_seed.with_seed ~default:777 @@ fun seed ->
  let rng = Prng.create seed in
  for _round = 1 to 40 do
    let mach = mkmach () in
    let h = mkheap mach in
    let dev = Machine.dev mach in
    Memdev.reset_counters dev;
    let committed = ref 0 in
    let k = 5 + Prng.int rng 120 in
    Memdev.set_fence_hook dev
      (Some (fun n -> if n >= k then raise Crash_now));
    (try
       for _tx = 1 to 6 do
         let n = 1 + Prng.int rng 4 in
         let sizes = List.init n (fun _ -> 32 lsl Prng.int rng 4) in
         let sum =
           List.fold_left (fun a s -> a + Poseidon.Layout.round_up s) 0 sizes
         in
         List.iteri
           (fun i s ->
             match H.tx_alloc h s ~is_end:(i = n - 1) with
             | Some _ -> if i = n - 1 then committed := !committed + sum
             | None -> failwith "oom")
           sizes
       done
     with Crash_now -> ());
    Memdev.set_fence_hook dev None;
    Memdev.crash dev (if Prng.bool rng then `Strict else `Adversarial rng);
    let h2 = recover_and_check mach in
    let live = (H.stats h2).H.live_bytes in
    (* the crash may hit between the last sub-allocation's micro-log
       append and our [committed] bump: the transaction is then
       legitimately committed on-media though the loop never counted
       it.  Accept exactly that one extra transaction. *)
    check "all-or-nothing" true
      (live >= !committed && live - !committed <= 4 * 512)
  done

let test_pmdk_crash_recovery_consistent () =
  (* the PMDK baseline also recovers its lanes and action log *)
  Crash_seed.with_seed ~default:4242 @@ fun seed ->
  let rng = Prng.create seed in
  for _ = 1 to 20 do
    let mach = Machine.create () in
    let h = Pmdk_sim.Heap.create mach ~base ~size:(1 lsl 24) ~heap_id:1 () in
    let live = ref [] in
    for _ = 1 to 40 do
      if Prng.bool rng || !live = [] then begin
        match Pmdk_sim.Heap.alloc h (16 + Prng.int rng 2000) with
        | Some p -> live := p :: !live
        | None -> ()
      end
      else begin
        match !live with
        | p :: rest ->
          Pmdk_sim.Heap.free h p;
          live := rest
        | [] -> ()
      end
    done;
    Memdev.crash (Machine.dev mach) `Strict;
    let h2 = Pmdk_sim.Heap.attach mach ~base () in
    let st = Pmdk_sim.Heap.stats h2 in
    check "chunk walk intact" false st.Pmdk_sim.Heap.walk_damaged;
    (* live objects still readable: their in-place headers intact *)
    List.iter
      (fun p ->
        check "header magic" true
          (Machine.read_u64 mach (p - 8) = Pmdk_sim.Layout.obj_magic))
      !live
  done

let test_pmdk_crash_mid_op () =
  Crash_seed.with_seed ~default:31337 @@ fun seed ->
  let rng = Prng.create seed in
  for _ = 1 to 25 do
    let mach = Machine.create () in
    let h = Pmdk_sim.Heap.create mach ~base ~size:(1 lsl 24) ~heap_id:1 () in
    let dev = Machine.dev mach in
    Memdev.reset_counters dev;
    let k = 1 + Prng.int rng 60 in
    Memdev.set_fence_hook dev
      (Some (fun n -> if n >= k then raise Crash_now));
    (try
       for i = 1 to 10 do
         (match Pmdk_sim.Heap.alloc h (64 * i) with
          | Some p -> if i mod 3 = 0 then Pmdk_sim.Heap.free h p
          | None -> ())
       done
     with Crash_now -> ());
    Memdev.set_fence_hook dev None;
    Memdev.crash dev `Strict;
    let h2 = Pmdk_sim.Heap.attach mach ~base () in
    check "walk survives mid-op crash" false
      (Pmdk_sim.Heap.stats h2).Pmdk_sim.Heap.walk_damaged
  done

let test_makalu_gc_recovers_unreachable () =
  (* without logging, anything not reachable from the root is freed *)
  let mach = Machine.create () in
  let h = Makalu_sim.Heap.create mach ~base ~size:(1 lsl 24) ~heap_id:1 in
  let inst = Makalu_sim.instance h in
  let keep = Option.get (Alloc_intf.i_alloc inst 64) in
  for _ = 1 to 20 do
    ignore (Alloc_intf.i_alloc inst 64)
  done;
  Alloc_intf.i_set_root inst keep;
  Memdev.crash (Machine.dev mach) `Strict;
  let h2 = Makalu_sim.Heap.attach mach ~base in
  let st = Makalu_sim.Heap.stats h2 in
  Alcotest.(check int) "only the root object lives" 1 st.Makalu_sim.Heap.gc_live;
  Alcotest.(check int) "the rest reclaimed" 20 st.Makalu_sim.Heap.gc_swept

let test_makalu_reachability_chain () =
  let mach = Machine.create () in
  let h = Makalu_sim.Heap.create mach ~base ~size:(1 lsl 24) ~heap_id:1 in
  let inst = Makalu_sim.instance h in
  (* root -> a -> b -> c, plus an orphan *)
  let a = Option.get (Alloc_intf.i_alloc inst 64) in
  let b = Option.get (Alloc_intf.i_alloc inst 64) in
  let c = Option.get (Alloc_intf.i_alloc inst 64) in
  ignore (Alloc_intf.i_alloc inst 64);
  let w p q =
    Machine.write_u64 mach (Alloc_intf.i_get_rawptr inst p)
      (Alloc_intf.i_get_rawptr inst q);
    Machine.persist mach (Alloc_intf.i_get_rawptr inst p) 8
  in
  w a b;
  w b c;
  Alloc_intf.i_set_root inst a;
  Memdev.crash (Machine.dev mach) `Strict;
  let h2 = Makalu_sim.Heap.attach mach ~base in
  Alcotest.(check int) "chain of 3 lives" 3
    (Makalu_sim.Heap.stats h2).Makalu_sim.Heap.gc_live

let () =
  Alcotest.run "crash"
    [ ( "poseidon",
        [ Alcotest.test_case "every fence point (strict)" `Slow
            test_crash_at_every_fence;
          Alcotest.test_case "random points (adversarial)" `Quick
            test_crash_adversarial_random;
          Alcotest.test_case "crash during recovery" `Quick
            test_double_crash_during_recovery;
          Alcotest.test_case "committed survive" `Quick
            test_committed_allocations_survive_any_crash;
          Alcotest.test_case "tx atomicity" `Quick
            test_tx_atomicity_at_any_crash_point ] );
      ( "baselines",
        [ Alcotest.test_case "pmdk recovery" `Quick
            test_pmdk_crash_recovery_consistent;
          Alcotest.test_case "pmdk mid-op crash" `Quick test_pmdk_crash_mid_op;
          Alcotest.test_case "makalu gc sweep" `Quick
            test_makalu_gc_recovers_unreachable;
          Alcotest.test_case "makalu reachability" `Quick
            test_makalu_reachability_chain ] ) ]
