(* Distributed tracing + latency attribution: span-store bounds, the
   causal integrity of span trees shipped across the replication wire
   (including under seeded drop/dup faults), the budget's coverage of
   measured end-to-end latency, and bit-for-bit determinism of the
   whole attribution report across same-seed runs. *)

module S = Service.Server
module Span = Obs.Span
module Attrib = Obs.Attrib
module J = Obs.Json

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------- span store unit behaviour ---------- *)

let test_span_store_bounds () =
  Span.clear ();
  (* off: every operation is a no-op through the -1 path *)
  check_int "new_trace off" (-1) (Span.new_trace ());
  check_int "open_span off" (-1)
    (Span.open_span ~trace:0 ~parent:(-1) Span.Request);
  Span.start ~capacity:4 ();
  let tr = Span.new_trace () in
  check "trace id allocated" true (tr >= 0);
  let ids =
    List.init 10 (fun _ ->
        let id = Span.open_span ~trace:tr ~parent:(-1) Span.Store in
        Span.close_span id;
        id)
  in
  let live = List.filter (fun id -> id >= 0) ids in
  check_int "store holds exactly its capacity" 4 (List.length live);
  check_int "count stops at capacity" 4 (Span.count ());
  check_int "overflow is counted, not overwritten" 6 (Span.dropped ());
  (* dropped spans returned -1: closing them must be harmless *)
  List.iter Span.close_span ids;
  Span.clear ();
  check_int "clear resets the store" 0 (Span.count ())

(* ---------- harness ---------- *)

let repl_cfg scope =
  { S.default_config with
    S.shards = 2;
    clients = 8;
    rate = 15_000.;
    duration = 0.005;
    keyspace = 512;
    preload = 256;
    read_pct = 20;
    txn_pct = 25;
    txn_ops = 2;
    scope }

let run_replicated ?(rcfg = S.default_repl_config) cfg =
  S.run_replicated
    ~make:(fun mach -> Workloads.Factories.poseidon_on mach)
    cfg rcfg

(* ---------- causal span trees survive the wire ---------- *)

(* Every closed span must point at a parent in the same trace, and the
   chrome export's cross-machine flow events must pair up: one finish
   per start, same id.  Run on a lossy, duplicating link — retransmits
   and duplicate deliveries must not orphan or double-close a span. *)
let test_span_tree_integrity_under_faults () =
  Span.clear ();
  Span.start ();
  Obs.Trace.start ();
  let r =
    run_replicated
      ~rcfg:
        { S.default_repl_config with
          S.link_drop_pct = 20;
          link_dup_pct = 10;
          retransmit_ns = 60_000 }
      (repl_cfg "test/attrib/faults")
  in
  Obs.Trace.stop ();
  check "faults actually injected" true
    (r.S.link_dropped > 0 || r.S.link_duplicated > 0);
  check "requests completed" true (r.S.base.S.completed > 0);
  (* structural: parents exist, stay in-trace, and nest in time *)
  let info = Hashtbl.create 4096 in
  Span.iter (fun ~id ~trace ~parent:_ ~stage:_ ~t0 ~t1 ~mach:_ ~tid:_ ->
      Hashtbl.replace info id (trace, t0, t1));
  let total = Span.count () in
  let orphans = ref 0 and cross_trace = ref 0 and spans = ref 0 in
  let cross_machine = ref 0 in
  Span.iter (fun ~id:_ ~trace ~parent ~stage:_ ~t0:_ ~t1:_ ~mach ~tid:_ ->
      incr spans;
      if parent >= 0 then begin
        if parent >= total then incr orphans
        else
          (* a parent absent from [info] is merely still open (an
             in-flight request's root at shutdown) — that's fine *)
          (match Hashtbl.find_opt info parent with
           | Some (ptrace, _, _) -> if ptrace <> trace then incr cross_trace
           | None -> ());
        if Span.mach_of parent <> mach then incr cross_machine
      end);
  check "spans recorded" true (!spans > 0);
  check_int "no orphaned parents" 0 !orphans;
  check_int "no cross-trace edges" 0 !cross_trace;
  check "replication produced cross-machine edges" true (!cross_machine > 0);
  (* export: every flow start has exactly its matching finish *)
  let doc = J.parse (Obs.Trace.to_chrome_json ()) in
  let events =
    match Option.bind (J.member "traceEvents" doc) J.to_list with
    | Some evs -> evs
    | None -> Alcotest.fail "export has no traceEvents"
  in
  let starts = Hashtbl.create 256 and finishes = Hashtbl.create 256 in
  List.iter
    (fun ev ->
      let str k = Option.bind (J.member k ev) J.to_str in
      let id () =
        match Option.bind (J.member "id" ev) J.to_float with
        | Some f -> int_of_float f
        | None -> Alcotest.fail "flow event without id"
      in
      match str "ph" with
      | Some "s" -> Hashtbl.replace starts (id ()) ()
      | Some "f" ->
        check "finish binds enclosing slice" true (str "bp" = Some "e");
        Hashtbl.replace finishes (id ()) ()
      | _ -> ())
    events;
  check "flow events exported" true (Hashtbl.length starts > 0);
  Hashtbl.iter
    (fun id () ->
      check "every flow start matched" true (Hashtbl.mem finishes id))
    starts;
  Hashtbl.iter
    (fun id () ->
      check "every flow finish matched" true (Hashtbl.mem starts id))
    finishes;
  Obs.Trace.clear ();
  Span.clear ()

(* ---------- the budget explains the measured latency ---------- *)

let test_budget_covers_e2e () =
  Span.clear ();
  Span.start ();
  let r = run_replicated (repl_cfg "test/attrib/coverage") in
  let rep = Attrib.analyze () in
  Span.clear ();
  check "requests analyzed" true (rep.Attrib.requests > 0);
  check_int "every completed request has a span tree"
    r.S.base.S.completed rep.Attrib.requests;
  (* the root span is closed at reply delivery, so its duration IS the
     measured client latency: the percentiles must agree exactly *)
  check_int "e2e p50 equals measured p50" r.S.base.S.latency.S.p50
    rep.Attrib.e2e_p50_ns;
  check_int "e2e p99 equals measured p99" r.S.base.S.latency.S.p99
    rep.Attrib.e2e_p99_ns;
  (* budget stages partition the root: they explain >= 90% of the
     end-to-end time and never exceed it *)
  check "coverage >= 0.9" true (rep.Attrib.coverage >= 0.9);
  check "coverage <= 1.0" true (rep.Attrib.coverage <= 1.0);
  check "no spans dropped at this scale" true (rep.Attrib.span_dropped = 0);
  (* sync replication must surface as a repl_ack budget row *)
  check "repl_ack stage present" true
    (List.exists
       (fun (row : Attrib.stage_row) -> row.Attrib.stage = Span.Repl_ack)
       rep.Attrib.budget);
  (* detail stages refine, never join, the budget *)
  List.iter
    (fun (row : Attrib.stage_row) ->
      check "detail stages are not budget stages" false
        (Span.is_budget row.Attrib.stage))
    rep.Attrib.detail

(* ---------- determinism ---------- *)

let test_attribution_deterministic () =
  let go () =
    Span.clear ();
    Span.start ();
    ignore (run_replicated (repl_cfg "test/attrib/det"));
    let rep = Attrib.analyze () in
    let spans = Span.count () in
    Span.clear ();
    (rep, spans)
  in
  let r1, n1 = go () in
  let r2, n2 = go () in
  check_int "same seed, same span count" n1 n2;
  check "same seed, same attribution report" true (r1 = r2);
  (* and the JSON rendering is byte-identical (what the bench pins) *)
  check "same seed, same report JSON" true
    (J.to_string (Attrib.report_json r1) = J.to_string (Attrib.report_json r2))

let () =
  Alcotest.run "attrib"
    [ ( "span-store",
        [ Alcotest.test_case "fixed capacity, counted drops" `Quick
            test_span_store_bounds ] );
      ( "causality",
        [ Alcotest.test_case "span trees + flow links survive a lossy wire"
            `Quick test_span_tree_integrity_under_faults ] );
      ( "budget",
        [ Alcotest.test_case "stages explain >= 90% of measured latency"
            `Quick test_budget_covers_e2e ] );
      ( "determinism",
        [ Alcotest.test_case "same seed, same attribution" `Quick
            test_attribution_deterministic ] ) ]
