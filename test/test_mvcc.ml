(* MVCC snapshot reads: version-chain semantics (GC bound, lookup
   resolution, degrade-to-oldest, cross-shard group atomicity),
   snapshot-get / plain-get equivalence on a quiescent store,
   all-or-none visibility of staged transactions, backup-promotion
   equivalence, concurrent snapshot stability under the cooperative
   scheduler, and bounded crashcheck sweeps: the kv-snapshot scenario
   must be green and the mvcc-broken mutation must be flagged. *)

module Kv = Service.Kv
module H = Poseidon.Heap

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let heap_base = 1 lsl 30

let mk_store ?(mvcc_window = 4) ~shards () =
  let mach = Machine.create () in
  let heap =
    H.create mach ~base:heap_base ~size:(1 lsl 30) ~heap_id:1
      ~sub_data_size:(1 lsl 20) ()
  in
  let inst = Poseidon.instance heap in
  (mach, inst, Kv.create ~mvcc_window inst ~shards ~value_size:64)

(* ---------- Mvcc substrate ---------- *)

let test_chain_bound_and_lookup () =
  let m = Mvcc.create ~shards:2 ~window:2 in
  check "enabled" true (Mvcc.enabled m);
  Mvcc.seed m ~shard:0 ~key:1 ~value:(Some 100);
  check_int "seed alone" 1 (Mvcc.chain_length m ~shard:0 ~key:1);
  Mvcc.publish m ~shard:0 ~ts:10 [ (1, Some 101) ];
  Mvcc.publish m ~shard:0 ~ts:20 [ (1, Some 102) ];
  Mvcc.publish m ~shard:0 ~ts:30 [ (1, Some 103) ];
  check_int "GC bound: window + 1" 3 (Mvcc.chain_length m ~shard:0 ~key:1);
  check "at the newest commit" true
    (Mvcc.lookup m ~shard:0 ~key:1 ~ts:30 = Mvcc.Resolved (Some 103));
  check "between commits" true
    (Mvcc.lookup m ~shard:0 ~key:1 ~ts:25 = Mvcc.Resolved (Some 102));
  check "oldest retained" true
    (Mvcc.lookup m ~shard:0 ~key:1 ~ts:10 = Mvcc.Resolved (Some 101));
  check "below retained history: the forward read is flagged" true
    (Mvcc.lookup m ~shard:0 ~key:1 ~ts:5 = Mvcc.Truncated (Some 101));
  check "chainless key falls through to the tree" true
    (Mvcc.lookup m ~shard:0 ~key:9 ~ts:30 = Mvcc.No_chain);
  check_int "snapshot follows publication" 30 (Mvcc.snapshot m);
  Mvcc.publish m ~shard:0 ~ts:40 [ (1, None) ];
  check "a delete is a version" true
    (Mvcc.lookup m ~shard:0 ~key:1 ~ts:40 = Mvcc.Resolved None);
  Mvcc.seed m ~shard:0 ~key:1 ~value:(Some 999);
  check "seed is a no-op on an existing chain" true
    (Mvcc.lookup m ~shard:0 ~key:1 ~ts:40 = Mvcc.Resolved None);
  (* the seed floor (ts 0) is a legitimate resolution for every real
     snapshot, never a truncation *)
  Mvcc.seed m ~shard:0 ~key:2 ~value:(Some 7);
  check "seed floor resolves at ts 0" true
    (Mvcc.lookup m ~shard:0 ~key:2 ~ts:0 = Mvcc.Resolved (Some 7))

let test_group_publication_atomic () =
  let m = Mvcc.create ~shards:2 ~window:4 in
  Mvcc.publish m ~shard:0 ~ts:10 [ (2, Some 20) ];
  Mvcc.publish m ~shard:1 ~ts:11 [ (5, Some 50) ];
  check_int "snapshot before the group" 11 (Mvcc.snapshot m);
  Mvcc.publish_group m ~ts:12
    [ (0, [ (2, Some 21) ]); (1, [ (5, Some 51); (7, Some 70) ]) ];
  check_int "watermark shard 0" 12 (Mvcc.watermark m ~shard:0);
  check_int "watermark shard 1" 12 (Mvcc.watermark m ~shard:1);
  check_int "snapshot after the group" 12 (Mvcc.snapshot m);
  check "an old snapshot keeps the pre-group value" true
    (Mvcc.lookup m ~shard:1 ~key:5 ~ts:11 = Mvcc.Resolved (Some 50));
  check "a new snapshot sees the whole group" true
    (Mvcc.lookup m ~shard:0 ~key:2 ~ts:12 = Mvcc.Resolved (Some 21)
    && Mvcc.lookup m ~shard:1 ~key:5 ~ts:12 = Mvcc.Resolved (Some 51)
    && Mvcc.lookup m ~shard:1 ~key:7 ~ts:12 = Mvcc.Resolved (Some 70));
  check "chain_keys_from is a sorted suffix" true
    (Mvcc.chain_keys_from m ~shard:1 ~from_key:6 = [ 7 ]);
  (* each key's first publication moves the shard's chain generation:
     the handle a merged scan re-captures chain keys on *)
  let g = Mvcc.chain_gen m ~shard:1 in
  Mvcc.publish m ~shard:1 ~ts:13 [ (5, Some 52) ];
  check_int "re-publishing a chained key keeps the generation" g
    (Mvcc.chain_gen m ~shard:1);
  Mvcc.publish m ~shard:1 ~ts:14 [ (9, Some 90) ];
  check "a fresh key's publication bumps the generation" true
    (Mvcc.chain_gen m ~shard:1 > g);
  Mvcc.reset m;
  check "reset drops the chains" true (not (Mvcc.has_chain m ~shard:1 ~key:5));
  check_int "reset drops the watermarks" 0 (Mvcc.snapshot m);
  check "reset moves the generation (open scans must re-capture)" true
    (Mvcc.chain_gen m ~shard:1 > g)

let test_window_zero_disabled () =
  let m = Mvcc.create ~shards:1 ~window:0 in
  check "disabled" true (not (Mvcc.enabled m));
  Mvcc.seed m ~shard:0 ~key:1 ~value:(Some 1);
  Mvcc.publish m ~shard:0 ~ts:5 [ (1, Some 2) ];
  check "publish is a no-op" true
    (Mvcc.lookup m ~shard:0 ~key:1 ~ts:5 = Mvcc.No_chain);
  check_int "no chain" 0 (Mvcc.chain_length m ~shard:0 ~key:1)

(* ---------- Kv snapshot reads on a quiescent store ---------- *)

let test_snapshot_get_equivalence () =
  let _, _, s = mk_store ~shards:2 () in
  let keys = List.init 40 (fun i -> i + 1) in
  List.iter (fun k -> check "put" true (Kv.put s ~key:k ~vseed:(k * 11))) keys;
  check "delete" true (Kv.delete s ~key:7);
  check "delete" true (Kv.delete s ~key:8);
  check "overwrite" true (Kv.put s ~key:9 ~vseed:999);
  let ts = Kv.snapshot s in
  List.iter
    (fun k ->
      check "snapshot_get = get on a quiescent store" true
        (Kv.snapshot_get s ~ts ~key:k = Kv.get s ~key:k))
    (keys @ [ 4096 ]);
  let got = ref [] in
  let n =
    Kv.snapshot_scan s ~ts ~from_key:1 ~n:100 (fun k d ->
        got := (k, d) :: !got)
  in
  let want =
    List.filter_map
      (fun k -> Option.map (fun d -> (k, d)) (Kv.get s ~key:k))
      keys
  in
  check_int "merged scan visits every live key" (List.length want) n;
  check "merged scan is in global key order with live digests" true
    (List.rev !got = want);
  (* bounded scan: the n cap and the from_key floor both hold *)
  let m = ref 0 and first = ref 0 in
  let n' =
    Kv.snapshot_scan s ~ts ~from_key:10 ~n:5 (fun k _ ->
        if !m = 0 then first := k;
        incr m)
  in
  check_int "n caps the scan" 5 n';
  check_int "from_key floors the scan" 10 !first

(* Regression: MVCC timestamps are a store-local commit sequence, so
   snapshot semantics hold OUTSIDE the simulator too.  With the old
   clock-based stamps every non-sim commit published at ts 0, the
   watermark never advanced, and a held snapshot silently read the
   newest version. *)
let test_snapshot_stability_outside_sim () =
  let _, _, s = mk_store ~shards:2 () in
  ignore (Kv.put s ~key:3 ~vseed:100);
  ignore (Kv.put s ~key:4 ~vseed:200);
  let ts = Kv.snapshot s in
  check "snapshot advances with non-sim commits" true (ts > 0);
  ignore (Kv.put s ~key:3 ~vseed:101);
  ignore (Kv.delete s ~key:4);
  check "a held snapshot is immune to a later overwrite" true
    (Kv.snapshot_get s ~ts ~key:3 = Some (Kv.value_checksum s ~vseed:100));
  check "a held snapshot is immune to a later delete" true
    (Kv.snapshot_get s ~ts ~key:4 = Some (Kv.value_checksum s ~vseed:200));
  check "a fresh snapshot sees the new value" true
    (Kv.snapshot_get s ~ts:(Kv.snapshot s) ~key:3
    = Some (Kv.value_checksum s ~vseed:101));
  check_int "no truncation was involved" 0 (Kv.mvcc_truncated_reads s)

(* Regression: a snapshot that outlives its key's retained history is
   answered from AFTER the snapshot — that consistency loss must be
   observable, not silent. *)
let test_truncated_read_detection () =
  let _, _, s = mk_store ~mvcc_window:2 ~shards:1 () in
  ignore (Kv.put s ~key:1 ~vseed:10);
  let ts = Kv.snapshot s in
  for v = 11 to 18 do
    ignore (Kv.put s ~key:1 ~vseed:v)
  done;
  check_int "exact reads are not counted" 0 (Kv.mvcc_truncated_reads s);
  ignore (Kv.snapshot_get s ~ts ~key:1);
  check "the outlived snapshot's read is counted" true
    (Kv.mvcc_truncated_reads s > 0)

let test_kv_chain_gc_bound () =
  let _, _, s = mk_store ~mvcc_window:3 ~shards:2 () in
  for i = 1 to 20 do
    ignore (Kv.put s ~key:5 ~vseed:(100 + i))
  done;
  check "chain stays within window + 1" true
    (Kv.mvcc_chain_length s ~key:5 <= 4);
  check "chain is being kept at all" true (Kv.mvcc_chain_length s ~key:5 > 0)

(* ---------- staged transactions: all-or-none visibility ---------- *)

let test_staged_txn_all_or_none () =
  let _, _, s = mk_store ~shards:2 () in
  List.iter
    (fun (k, vs) -> ignore (Kv.put s ~key:k ~vseed:vs))
    [ (3, 31); (4, 41) ];
  let pre3 = Kv.get s ~key:3
  and pre4 = Kv.get s ~key:4 in
  let ops =
    [ Kv.Tput { key = 3; vseed = 32 }; Kv.Tput { key = 4; vseed = 42 } ]
  in
  match Kv.txn_prepare s ops with
  | Error _ -> Alcotest.fail "prepare aborted"
  | Ok txn ->
    (* prepared but undecided: no snapshot may see its writes *)
    let ts = Kv.snapshot s in
    check "undecided write invisible (key 3)" true
      (Kv.snapshot_get s ~ts ~key:3 = pre3);
    check "undecided write invisible (key 4)" true
      (Kv.snapshot_get s ~ts ~key:4 = pre4);
    Kv.txn_decide s ~txn;
    Kv.txn_apply s ~txn;
    let ts' = Kv.snapshot s in
    let g3 = Kv.snapshot_get s ~ts:ts' ~key:3
    and g4 = Kv.snapshot_get s ~ts:ts' ~key:4 in
    check "post-apply snapshot matches the live store" true
      (g3 = Kv.get s ~key:3 && g4 = Kv.get s ~key:4);
    check "both writes became visible" true (g3 <> pre3 && g4 <> pre4)

(* ---------- backup promotion serves snapshots ---------- *)

let test_backup_promotion_snapshots () =
  (* key shard map for shards:2 (asserted): 3 on shard 0; 4, 5 on 1 *)
  assert (Kv.shard_of ~shards:2 3 = 0);
  assert (Kv.shard_of ~shards:2 4 = 1 && Kv.shard_of ~shards:2 5 = 1);
  let _, _, b = mk_store ~shards:2 () in
  List.iter
    (fun (k, vs) -> ignore (Kv.put b ~key:k ~vseed:vs))
    [ (3, 61); (4, 62); (5, 63) ];
  (* a fully decided shipped transaction across both shards *)
  Kv.txn_backup_prepare b ~txn:77 ~shard:0
    ~ops:[ Kv.Tput { key = 3; vseed = 64 } ];
  Kv.txn_backup_prepare b ~txn:77 ~shard:1
    ~ops:[ Kv.Tput { key = 4; vseed = 65 } ];
  Kv.txn_backup_decide b ~txn:77 ~shard:0 ~commit:true ~nparts:2;
  Kv.txn_backup_decide b ~txn:77 ~shard:1 ~commit:true ~nparts:2;
  (* an in-doubt prepare whose decide died with the primary *)
  Kv.txn_backup_prepare b ~txn:78 ~shard:1
    ~ops:[ Kv.Tput { key = 5; vseed = 66 } ];
  let resolved = Kv.txn_resolve_indoubt b in
  check_int "one slot presumed-aborted at promotion" 1 resolved;
  let ts = Kv.snapshot b in
  List.iter
    (fun k ->
      check "promoted snapshots equal live reads" true
        (Kv.snapshot_get b ~ts ~key:k = Kv.get b ~key:k))
    [ 3; 4; 5 ];
  check "the decided transaction applied" true
    (Kv.get b ~key:3 = Some (Kv.value_checksum b ~vseed:64));
  check "the in-doubt prepare rolled back" true
    (Kv.get b ~key:5 = Some (Kv.value_checksum b ~vseed:63))

(* ---------- concurrent snapshot stability ---------- *)

(* Writers update keys 3 (shard 0) and 4 (shard 1) together through
   {!Kv.txn} with the SAME vseed, so at every committed state the two
   digests are equal.  Lock-free snapshot readers assert (a) the pair
   is never observed torn and (b) re-reading at a held timestamp is
   repeatable even while later commits land.  The window (64) exceeds
   the writer's commit count, so no reader outlives retained history. *)
let test_concurrent_snapshot_stability () =
  let mach, _, s = mk_store ~mvcc_window:64 ~shards:2 () in
  ignore (Kv.put s ~key:3 ~vseed:1000);
  ignore (Kv.put s ~key:4 ~vseed:1000);
  let torn = ref 0
  and unrepeatable = ref 0
  and nonmonotone = ref 0 in
  let _ =
    Machine.parallel mach ~threads:3 (fun i ->
        if i = 0 then
          for v = 1 to 30 do
            ignore
              (Kv.txn s
                 [ Kv.Tput { key = 3; vseed = 1000 + v };
                   Kv.Tput { key = 4; vseed = 1000 + v } ])
          done
        else begin
          let last_ts = ref 0 in
          for _ = 1 to 40 do
            let ts = Kv.snapshot s in
            if ts < !last_ts then incr nonmonotone;
            last_ts := ts;
            let d3 = Kv.snapshot_get s ~ts ~key:3
            and d4 = Kv.snapshot_get s ~ts ~key:4 in
            if d3 <> d4 then incr torn;
            let d3' = Kv.snapshot_get s ~ts ~key:3
            and d4' = Kv.snapshot_get s ~ts ~key:4 in
            if d3' <> d3 || d4' <> d4 then incr unrepeatable
          done
        end)
  in
  check_int "no torn cross-shard observation" 0 !torn;
  check_int "reads at a held snapshot are repeatable" 0 !unrepeatable;
  check_int "snapshot timestamps are monotone" 0 !nonmonotone;
  let ts = Kv.snapshot s in
  check "final snapshot equals the live store" true
    (Kv.snapshot_get s ~ts ~key:3 = Kv.get s ~key:3
    && Kv.snapshot_get s ~ts ~key:4 = Kv.get s ~key:4)

(* Regression: a key deleted WHILE a snapshot scan is running leaves
   the tree before the cursor reaches it, and its chain did not exist
   when the scan captured the chain keys — without generation-driven
   re-capture the scan silently drops a key that is visible at its
   snapshot.  The per-key [snapshot_get] oracle is exact at a held
   timestamp (the window exceeds every commit), so any divergence is a
   dropped, phantom or misresolved scan entry. *)
let test_scan_vs_concurrent_deletes () =
  let mach, inst, s0 = mk_store ~mvcc_window:64 ~shards:2 () in
  let keys = List.init 40 (fun i -> i + 1) in
  List.iter (fun k -> ignore (Kv.put s0 ~key:k ~vseed:(k * 7))) keys;
  (* reopen: the version chains are volatile, so after recovery every
     key lives only in its tree — exactly the state where a mid-scan
     delete is covered by neither the open-time chain capture nor the
     cursor, and only generation-driven re-capture can save it *)
  let s, _ = Kv.attach ~mvcc_window:64 inst in
  let mismatches = ref 0 in
  let _ =
    Machine.parallel mach ~threads:2 (fun i ->
        if i = 0 then
          (* back-to-front: a delete costs far more machine ops than a
             scan step, so a front-to-back deleter would trail the
             cursor and never delete ahead of it — deleting from the
             high end guarantees keys vanish from the tree before the
             merge reaches them *)
          List.iter (fun k -> ignore (Kv.delete s ~key:k)) (List.rev keys)
        else
          for _ = 1 to 5 do
            let ts = Kv.snapshot s in
            let got = ref [] in
            let _ =
              Kv.snapshot_scan s ~ts ~from_key:1 ~n:100 (fun k d ->
                  got := (k, d) :: !got)
            in
            let want =
              List.filter_map
                (fun k ->
                  Option.map (fun d -> (k, d)) (Kv.snapshot_get s ~ts ~key:k))
                keys
            in
            if List.rev !got <> want then incr mismatches
          done)
  in
  check_int "every racing scan equals the per-key snapshot oracle" 0
    !mismatches;
  check_int "no snapshot outlived retained history" 0
    (Kv.mvcc_truncated_reads s)

(* ---------- crashcheck: correctness sweep + mutation gate ---------- *)

let test_kv_snapshot_sweep_green () =
  let scn = Crashcheck.scn_kv_snapshot () in
  let r = Crashcheck.run ~max_points:6 ~subsets_per_point:1 scn in
  check "bounded kv-snapshot sweep is green" true
    (r.Crashcheck.counterexamples = []);
  check "recoveries were actually verified" true
    (r.Crashcheck.recoveries_verified > 0)

(* the inverted gate in scripts/check.sh relies on this scenario being
   flaggable: early publication MUST yield a counterexample *)
let test_mvcc_broken_flagged () =
  let scn = Crashcheck.scn_mvcc_broken () in
  let r = Crashcheck.run ~max_points:6 ~subsets_per_point:1 scn in
  check "checker flags publication before decision" true
    (r.Crashcheck.counterexamples <> [])

let () =
  Alcotest.run "mvcc"
    [ ( "chains",
        [ Alcotest.test_case "GC bound + lookup resolution" `Quick
            test_chain_bound_and_lookup;
          Alcotest.test_case "cross-shard group atomicity" `Quick
            test_group_publication_atomic;
          Alcotest.test_case "window 0 disables everything" `Quick
            test_window_zero_disabled ] );
      ( "kv",
        [ Alcotest.test_case "snapshot reads = plain reads, quiescent"
            `Quick test_snapshot_get_equivalence;
          Alcotest.test_case "snapshot stability outside the simulator"
            `Quick test_snapshot_stability_outside_sim;
          Alcotest.test_case "truncated snapshot reads are counted" `Quick
            test_truncated_read_detection;
          Alcotest.test_case "chain GC bound through the store" `Quick
            test_kv_chain_gc_bound;
          Alcotest.test_case "staged txn all-or-none" `Quick
            test_staged_txn_all_or_none;
          Alcotest.test_case "backup promotion serves snapshots" `Quick
            test_backup_promotion_snapshots ] );
      ( "concurrency",
        [ Alcotest.test_case "snapshot stability under writers" `Quick
            test_concurrent_snapshot_stability;
          Alcotest.test_case "scans survive concurrent deletes" `Quick
            test_scan_vs_concurrent_deletes ] );
      ( "crashcheck",
        [ Alcotest.test_case "kv-snapshot sweep green" `Quick
            test_kv_snapshot_sweep_green;
          Alcotest.test_case "mvcc-broken flagged" `Quick
            test_mvcc_broken_flagged ] ) ]
