(* Group commit + pipelined persistence: the link's doorbell batching,
   Kv.group_commit's chunked covering-flush semantics, batched shipping
   with cumulative acks, the piggybacked 2PC decide, window-1 identity
   with the pre-batching path, and the windowed loss-bound property —
   a crash mid-batch loses at most the unacked window, never an acked
   op. *)

module Kv = Service.Kv
module S = Service.Server
module R = Replica
module Link = Cluster.Link
module H = Poseidon.Heap

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let heap_base = 1 lsl 30

let mk_store ~shards () =
  let cfg =
    { Machine.Config.default with
      Machine.Config.num_cpus = 1;
      numa_domains = 1 }
  in
  let mach = Machine.create ~cfg () in
  let heap =
    H.create mach ~base:heap_base ~size:(1 lsl 30) ~heap_id:1
      ~sub_data_size:(1 lsl 20) ()
  in
  let inst = Poseidon.instance heap in
  (mach, inst, Kv.create inst ~shards ~value_size:64)

(* the first [n] keys the 2-shard hash partition puts on shard 0 — the
   tests never hardcode the map *)
let shard0_keys n =
  let rec go acc k =
    if List.length acc = n then List.rev acc
    else if Kv.shard_of ~shards:2 k = 0 then go (k :: acc) (k + 1)
    else go acc (k + 1)
  in
  go [] 1

(* ---------- Link: doorbell buffering + framed flush ---------- *)

let test_link_doorbell () =
  let l : int Link.t = Link.create () in
  Link.buffer l ~dst:1 10;
  Link.buffer l ~dst:1 11;
  Link.buffer l ~dst:1 12;
  check_int "staged, not sent" 3 (Link.buffered l ~dst:1);
  check_int "nothing on the wire before the doorbell" 0
    (Link.pending l ~ep:1);
  check "recv sees nothing" true (Link.recv l ~ep:1 = None);
  check_int "flush carries the whole frame" 3 (Link.flush l ~dst:1);
  check_int "buffer drained" 0 (Link.buffered l ~dst:1);
  check_int "frame delivered" 3 (Link.pending l ~ep:1);
  (match Link.recv l ~ep:1 with
   | Some m -> check_int "in-order within the frame" 10 m.Link.payload
   | None -> Alcotest.fail "expected delivery");
  check_int "empty flush is free" 0 (Link.flush l ~dst:1);
  let s = Link.stats l ~ep:1 in
  check_int "one doorbell rung" 1 s.Link.flushes;
  check_int "all records counted sent" 3 s.Link.sent;
  (* faults are frame-granular: a drop loses the whole frame, a dup
     re-delivers it whole — so the fault counters move in multiples of
     the frame size *)
  let lossy : int Link.t =
    Link.create ~capacity:4096 ~drop_pct:30 ~dup_pct:20 ~seed:11 ()
  in
  for f = 1 to 50 do
    for r = 1 to 3 do
      Link.buffer lossy ~dst:1 ((100 * f) + r)
    done;
    ignore (Link.flush lossy ~dst:1)
  done;
  let s = Link.stats lossy ~ep:1 in
  check "frames were dropped" true (s.Link.dropped > 0);
  check "frames were duplicated" true (s.Link.duplicated > 0);
  check_int "drops are whole frames" 0 (s.Link.dropped mod 3);
  check_int "dups are whole frames" 0 (s.Link.duplicated mod 3);
  check_int "queue accounts for every fault"
    (s.Link.sent - s.Link.dropped + s.Link.duplicated)
    (Link.pending lossy ~ep:1)

(* ---------- Kv.group_commit vs the sequential per-op path ---------- *)

let test_group_commit_equivalence () =
  let _, _, a = mk_store ~shards:2 () in
  let _, _, b = mk_store ~shards:2 () in
  let ks = Array.of_list (shard0_keys 12) in
  List.iter
    (fun kv ->
      for i = 0 to 5 do
        assert (Kv.put kv ~key:ks.(i) ~vseed:(100 + i))
      done)
    [ a; b ];
  (* 12 ops > max_txn_ops forces chunking; ks.(0) twice forces an
     early chunk split; ks.(11) is absent so its delete is a no-op;
     delete-then-put of ks.(2) crosses a chunk boundary by key reuse *)
  let plan =
    [ Kv.Tput { key = ks.(0); vseed = 201 };
      Kv.Tput { key = ks.(6); vseed = 202 };
      Kv.Tdel { key = ks.(1) };
      Kv.Tput { key = ks.(0); vseed = 203 };
      Kv.Tdel { key = ks.(11) };
      Kv.Tput { key = ks.(7); vseed = 204 };
      Kv.Tdel { key = ks.(2) };
      Kv.Tput { key = ks.(2); vseed = 205 };
      Kv.Tput { key = ks.(8); vseed = 206 };
      Kv.Tput { key = ks.(9); vseed = 207 };
      Kv.Tdel { key = ks.(3) };
      Kv.Tput { key = ks.(10); vseed = 208 } ]
  in
  let chunks = ref [] in
  let results =
    Kv.group_commit a ~shard:0 plan ~on_chunk:(fun ~fin:_ cops ->
        chunks := cops :: !chunks)
  in
  let expected =
    List.map
      (function
        | Kv.Tput { key; vseed } -> Kv.put b ~key ~vseed
        | Kv.Tdel { key } -> Kv.delete b ~key)
      plan
  in
  check "per-op outcomes match the sequential path" true
    (List.map fst results = expected);
  Array.iter
    (fun k ->
      check "final state matches the sequential path" true
        (Kv.get a ~key:k = Kv.get b ~key:k))
    ks;
  check_int "same key count" (Kv.count_keys b) (Kv.count_keys a);
  Kv.check a;
  (* chunk shape: every chunk within the cap, no duplicate key inside
     one chunk, and only the absent delete stayed out *)
  let shipped = List.concat (List.rev !chunks) in
  check_int "absent delete never enters a chunk"
    (List.length plan - 1)
    (List.length shipped);
  List.iter
    (fun c ->
      check "chunk within max_txn_ops" true
        (List.length c <= Kv.max_txn_ops);
      let keys = List.map (function
          | Kv.Tput { key; _ } | Kv.Tdel { key } -> key)
          c
      in
      check "no duplicate key inside a chunk" true
        (List.length (List.sort_uniq compare keys) = List.length keys))
    (List.rev !chunks);
  check "wrong-shard key refused" true
    (try
       ignore (Kv.group_commit a ~shard:1 [ Kv.Tput { key = ks.(0); vseed = 1 } ]);
       false
     with Invalid_argument _ -> true)

(* group commit survives re-attach like any other transaction: after a
   clean group the store recovers with nothing pending *)
let test_group_commit_recovery () =
  let _, inst, kv = mk_store ~shards:2 () in
  let ks = Array.of_list (shard0_keys 4) in
  let plan =
    [ Kv.Tput { key = ks.(0); vseed = 1 };
      Kv.Tput { key = ks.(1); vseed = 2 };
      Kv.Tput { key = ks.(2); vseed = 3 };
      Kv.Tdel { key = ks.(3) } ]
  in
  ignore (Kv.group_commit kv ~shard:0 plan);
  let kv2, rc = Kv.attach inst in
  check_int "nothing to replay" 0 (rc.Kv.replayed + rc.Kv.rolled_back);
  check_int "no txn slots in flight" 0 (rc.Kv.txn_committed + rc.Kv.txn_aborted);
  Array.iteri
    (fun i k -> check "state survives re-attach" true
        (Kv.get kv2 ~key:k = (if i < 3 then Some (Kv.value_checksum kv2 ~vseed:(i + 1)) else None)))
    ks

(* ---------- batched shipping + cumulative batched acks ---------- *)

let test_batched_ship_cumulative_ack () =
  let cfg = { R.default_config with R.window = 16 } in
  let run ~ack_batch =
    let link : R.msg Link.t = Link.create () in
    let sh = R.Shipper.create cfg ~shards:2 ~link in
    let applied = ref 0 in
    let ap =
      R.Applier.create cfg ~shards:2 ~link ~ack_batch ~apply:(fun ~shard:_ _ ->
          incr applied)
    in
    for k = 1 to 6 do
      ignore
        (R.Shipper.ship_buffered sh ~shard:(k mod 2)
           (R.Put { key = k; vseed = k }))
    done;
    (* no ack can precede the covering flush: nothing is even on the
       wire, so the applier sees nothing and no ack exists *)
    check_int "nothing on the wire before the flush" 0
      (Link.pending link ~ep:R.backup_ep);
    R.Applier.pump ap ~until:(fun () ->
        Link.pending link ~ep:R.backup_ep = 0);
    check_int "nothing applied before the flush" 0 !applied;
    check_int "no ack before the covering flush (shard 0)" (-1)
      (R.Shipper.acked sh ~shard:0);
    check_int "no ack before the covering flush (shard 1)" (-1)
      (R.Shipper.acked sh ~shard:1);
    check_int "doorbell carries every staged record" 6 (R.Shipper.flush sh);
    R.Applier.pump ap ~until:(fun () ->
        Link.pending link ~ep:R.backup_ep = 0);
    check_int "all applied after the flush" 6 !applied;
    check "cumulative ack covers the frame" true
      (R.Shipper.wait_acked sh ~shard:0 ~seq:2 ~deadline:0
      && R.Shipper.wait_acked sh ~shard:1 ~seq:2 ~deadline:0);
    check_int "no unacked residue" 0
      (R.Shipper.lag sh ~shard:0 + R.Shipper.lag sh ~shard:1);
    (Link.stats link ~ep:R.primary_ep).Link.sent
  in
  let acks_batched = run ~ack_batch:true in
  let acks_per_record = run ~ack_batch:false in
  check_int "per-record mode acks every record" 6 acks_per_record;
  check "batched acks: one per touched shard per burst" true
    (acks_batched <= 2);
  check "strictly fewer ack messages" true (acks_batched < acks_per_record)

(* ---------- piggybacked 2PC decide ---------- *)

(* The same transaction plan shipped per-record (prepare, decide each
   on their own wire trip) and doorbell-batched (prepare + decide of
   every participant in ONE frame) must leave bit-identical backup
   stores — the piggybacked decide changes wire economics, never
   outcomes. *)
let test_piggybacked_decide_equivalence () =
  (* two committing transactions + a strict-delete abort *)
  let txn_plan =
    [ [ Kv.Tput { key = 1; vseed = 11 }; Kv.Tput { key = 2; vseed = 12 } ];
      [ Kv.Tdel { key = 1 }; Kv.Tput { key = 3; vseed = 13 } ];
      [ Kv.Tput { key = 4; vseed = 14 }; Kv.Tdel { key = 9999 } ] ]
  in
  let run ~piggyback =
    let _, _, p = mk_store ~shards:2 () in
    let _, _, b = mk_store ~shards:2 () in
    let link : R.msg Link.t = Link.create () in
    let cfg = { R.default_config with R.window = 16 } in
    let sh = R.Shipper.create cfg ~shards:2 ~link in
    let ap =
      R.Applier.create cfg ~shards:2 ~link ~ack_batch:piggyback
        ~apply:(fun ~shard op -> Service.Txn.apply_replicated b ~shard op)
    in
    let committed = ref [] in
    List.iter
      (fun ops ->
        let res =
          Kv.txn p ops ~on_commit:(fun res ->
              let nparts = List.length res.Kv.participants in
              List.iter
                (fun (s, sops) ->
                  let prep = R.Txn_prepare { txn = res.Kv.txn_id; ops = sops }
                  and dec =
                    R.Txn_decide { txn = res.Kv.txn_id; commit = true; nparts }
                  in
                  if piggyback then begin
                    ignore (R.Shipper.ship_buffered sh ~shard:s prep);
                    ignore (R.Shipper.ship_buffered sh ~shard:s dec)
                  end
                  else begin
                    ignore (R.Shipper.ship sh ~shard:s prep);
                    ignore (R.Shipper.ship sh ~shard:s dec)
                  end)
                res.Kv.participants;
              if piggyback then ignore (R.Shipper.flush sh))
        in
        committed := res.Kv.committed :: !committed;
        R.Applier.pump ap ~until:(fun () ->
            Link.pending link ~ep:R.backup_ep = 0))
      txn_plan;
    (b, List.rev !committed, R.Applier.applied ap,
     (Link.stats link ~ep:R.backup_ep).Link.flushes)
  in
  let b1, c1, applied1, _ = run ~piggyback:false in
  let b2, c2, applied2, flushes2 = run ~piggyback:true in
  check "same commit/abort outcomes" true (c1 = c2);
  check_int "same records applied on the backup" applied1 applied2;
  check "committed txns: both paths shipped" true (applied1 > 0);
  check "one doorbell frame per committed transaction" true (flushes2 >= 2);
  for k = 1 to 5 do
    check "backup stores bit-identical" true (Kv.get b1 ~key:k = Kv.get b2 ~key:k)
  done;
  check_int "same backup key count" (Kv.count_keys b1) (Kv.count_keys b2)

(* ---------- window 1 ≡ the pre-batching path ---------- *)

let serve cfg =
  let factory = Workloads.Factories.poseidon () in
  S.run
    ~make:(fun () -> factory.Workloads.Factories.make ())
    ~reattach:(fun mach ->
      Poseidon.instance
        (Poseidon.Heap.attach mach ~base:Workloads.Factories.heap_base ()))
    cfg

let base_cfg =
  { S.default_config with
    S.shards = 2;
    clients = 8;
    rate = 30_000.;
    duration = 0.005;
    keyspace = 512;
    preload = 256;
    read_pct = 20;
    scope = "test/groupcommit" }

let test_window1_identity () =
  (* batch_window = 1 routes every request through the pre-batching
     loop verbatim: an explicit window-1 run is indistinguishable from
     a default run, field for field *)
  let r1 = serve { base_cfg with S.scope = "test/groupcommit/w1a" } in
  let r2 =
    serve { base_cfg with S.batch_window = 1; scope = "test/groupcommit/w1b" }
  in
  check "window 1 is the pre-batching path, bit-identically" true (r1 = r2);
  (* and a genuinely batched run still serves correctly *)
  let r4 =
    serve { base_cfg with S.batch_window = 4; scope = "test/groupcommit/w4" }
  in
  check "batched run completes traffic" true (r4.S.completed > 0);
  check "batched run acked mutations" true (r4.S.acked_mutations > 0);
  check_int "batched run verifies clean" 0 r4.S.ledger.S.mismatches;
  check "rejects window 0" true
    (try
       ignore (serve { base_cfg with S.batch_window = 0 });
       false
     with Invalid_argument _ -> true)

(* ---------- loss bound under faults, swept across windows ---------- *)

let repl_serve cfg rcfg =
  S.run_replicated
    ~make:(fun mach -> Workloads.Factories.poseidon_on mach)
    cfg rcfg

(* For every batch window: (1) a bounded slice of the exhaustive
   crashcheck fence sweep under the WINDOWED prefix oracle — the
   recovered backup equals a plan prefix within [acked, acked+window];
   (2) a replicated serve run that crashes mid-traffic on a lossy
   (drop + dup) wire — no acked write may be lost, at any window.
   CRASH_SEED reseeds both (Crash_seed). *)
let test_loss_bound_windows () =
  Crash_seed.with_seed ~default:42 @@ fun seed ->
  List.iter
    (fun window ->
      let scn = Crashcheck.scn_kv_batched_put ~window () in
      let r = Crashcheck.run ~max_points:4 ~subsets_per_point:1 ~seed scn in
      check "sweep explored points" true (r.Crashcheck.points_explored >= 4);
      check_int
        (Printf.sprintf "window %d: crash loses at most the unacked batch"
           window)
        0
        (List.length r.Crashcheck.counterexamples);
      let r =
        repl_serve
          { base_cfg with
            S.batch_window = window;
            crash_at = Some 0.5;
            seed;
            scope = Printf.sprintf "test/groupcommit/loss-w%d" window }
          { S.default_repl_config with
            S.link_drop_pct = 10;
            link_dup_pct = 5;
            retransmit_ns = 60_000 }
      in
      check "crashed mid-run" true r.S.base.S.crashed;
      check "ledger checked keys" true (r.S.base.S.ledger.S.checked > 0);
      check_int
        (Printf.sprintf "window %d: no acked op lost under drop/dup" window)
        0 r.S.base.S.ledger.S.mismatches)
    [ 1; 4; 16 ]

(* the seeded ack-before-flush bug must be caught: the mutation gate
   in scripts/check.sh relies on this scenario being flaggable *)
let test_batched_broken_flagged () =
  let scn = Crashcheck.scn_kv_batched_broken () in
  let r = Crashcheck.run ~max_points:6 ~subsets_per_point:1 scn in
  check "checker flags acks ahead of the covering flush" true
    (r.Crashcheck.counterexamples <> [])

let () =
  Alcotest.run "groupcommit"
    [ ( "link",
        [ Alcotest.test_case "doorbell buffer + framed flush" `Quick
            test_link_doorbell ] );
      ( "kv",
        [ Alcotest.test_case "group vs sequential equivalence" `Quick
            test_group_commit_equivalence;
          Alcotest.test_case "group survives re-attach" `Quick
            test_group_commit_recovery ] );
      ( "replica",
        [ Alcotest.test_case "batched ship + cumulative ack" `Quick
            test_batched_ship_cumulative_ack;
          Alcotest.test_case "piggybacked decide equivalence" `Quick
            test_piggybacked_decide_equivalence ] );
      ( "server",
        [ Alcotest.test_case "window 1 = pre-batching path" `Quick
            test_window1_identity ] );
      ( "loss-bound",
        [ Alcotest.test_case "windows {1,4,16} under drop/dup" `Quick
            test_loss_bound_windows;
          Alcotest.test_case "ack-before-flush bug flagged" `Quick
            test_batched_broken_flagged ] ) ]
