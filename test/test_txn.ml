(* Cross-shard atomic transactions: the 2PC coordinator-record
   protocol (DESIGN §10) — commit/abort atomicity across shards,
   in-doubt resolution on re-attach, promotion-time resolution and
   deferred group apply on a backup, plus a bounded crashcheck sweep
   of the protocol and the seeded-mutation sanity gate. *)

module Kv = Service.Kv
module Txn = Service.Txn
module H = Poseidon.Heap
module Memdev = Nvmm.Memdev

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let heap_base = 1 lsl 30

let mk_store ~shards () =
  let cfg =
    { Machine.Config.default with
      Machine.Config.num_cpus = 1;
      numa_domains = 1 }
  in
  let mach = Machine.create ~cfg () in
  let heap =
    H.create mach ~base:heap_base ~size:(1 lsl 30) ~heap_id:1
      ~sub_data_size:(1 lsl 20) ()
  in
  let inst = Poseidon.instance heap in
  (mach, inst, Kv.create inst ~shards ~value_size:64)

let cksum kv vseed = Some (Kv.value_checksum kv ~vseed)

(* Two keys guaranteed to live on different shards (hash partition is
   stable, but the tests never hardcode the map). *)
let cross_shard_keys kv =
  let k1 = 1 in
  let s1 = Kv.shard_of_key kv k1 in
  let k2 = ref 2 in
  while Kv.shard_of_key kv !k2 = s1 do
    incr k2
  done;
  (k1, !k2)

(* ---------- commit / abort semantics ---------- *)

let test_commit_across_shards () =
  let _, _, kv = mk_store ~shards:4 () in
  let ka, kb = cross_shard_keys kv in
  check "preload" true (Kv.put kv ~key:kb ~vseed:7);
  let r = Txn.exec kv [ Tput { key = ka; vseed = 100 }; Tdel { key = kb } ] in
  check "committed" true r.Txn.committed;
  check "no abort reason" true (r.Txn.abort = None);
  check "txn id claimed" true (r.Txn.txn_id > 0);
  check_int "two participant shards" 2 (List.length r.Txn.participants);
  check "put visible" true (Kv.get kv ~key:ka = cksum kv 100);
  check "delete visible" true (Kv.get kv ~key:kb = None);
  Kv.check kv

let test_abort_leaves_no_trace () =
  let _, inst, kv = mk_store ~shards:2 () in
  check "preload" true (Kv.put kv ~key:3 ~vseed:30);
  (* strict delete of an absent key aborts the whole transaction *)
  let r = Txn.exec kv [ Tput { key = 3; vseed = 31 }; Tdel { key = 9999 } ] in
  check "aborted" false r.Txn.committed;
  check "absent-key reason" true (r.Txn.abort = Some (Txn_absent_key 9999));
  check "put rolled back with it" true (Kv.get kv ~key:3 = cksum kv 30);
  (* static validation aborts *)
  check "empty aborts" true ((Txn.exec kv []).Txn.abort = Some Txn_empty);
  check "duplicate key aborts" true
    ((Txn.exec kv [ Tput { key = 5; vseed = 1 }; Tdel { key = 5 } ]).Txn.abort
    = Some Txn_duplicate_key);
  (* 17 distinct keys over 2 shards put > max_txn_ops (8) on one *)
  let big =
    List.init 17 (fun i -> Txn.Tput { key = 100 + i; vseed = i })
  in
  check "per-shard op cap aborts" true
    ((Txn.exec kv big).Txn.abort = Some Txn_too_many_ops);
  (* aborts left nothing durable: clean re-attach, nothing to resolve *)
  let kv2, rc = Kv.attach inst in
  check_int "no txn slots to resolve" 0 (rc.Kv.txn_committed + rc.Kv.txn_aborted);
  check "state intact" true (Kv.get kv2 ~key:3 = cksum kv2 30)

(* ---------- crash recovery: the decision record is the commit point *)

let test_indoubt_prepare_aborts_on_attach () =
  let mach, inst, kv = mk_store ~shards:4 () in
  let ka, kb = cross_shard_keys kv in
  check "preload" true (Kv.put kv ~key:kb ~vseed:7);
  (* phase 1 persisted, decision record never written: in doubt *)
  (match Kv.txn_prepare kv [ Tput { key = ka; vseed = 50 }; Tdel { key = kb } ]
   with
  | Ok txn -> check "prepare claimed an id" true (txn > 0)
  | Error _ -> Alcotest.fail "prepare refused");
  Memdev.crash (Machine.dev mach) `Strict;
  ignore (H.attach mach ~base:heap_base ());
  let kv2, rc = Kv.attach inst in
  check_int "both participants presumed aborted" 2 rc.Kv.txn_aborted;
  check_int "none redone" 0 rc.Kv.txn_committed;
  check "put never surfaced" true (Kv.get kv2 ~key:ka = None);
  check "delete never surfaced" true (Kv.get kv2 ~key:kb = cksum kv2 7);
  Kv.check kv2

let test_decided_txn_redone_on_attach () =
  let mach, inst, kv = mk_store ~shards:4 () in
  let ka, kb = cross_shard_keys kv in
  check "preload" true (Kv.put kv ~key:kb ~vseed:7);
  let txn =
    match
      Kv.txn_prepare kv [ Tput { key = ka; vseed = 50 }; Tdel { key = kb } ]
    with
    | Ok txn -> txn
    | Error _ -> Alcotest.fail "prepare refused"
  in
  (* decision record persisted = committed, even though apply never ran *)
  Kv.txn_decide kv ~txn;
  Memdev.crash (Machine.dev mach) `Strict;
  ignore (H.attach mach ~base:heap_base ());
  let kv2, rc = Kv.attach inst in
  check_int "both participants redone" 2 rc.Kv.txn_committed;
  check_int "none aborted" 0 rc.Kv.txn_aborted;
  check "put surfaced" true (Kv.get kv2 ~key:ka = cksum kv2 50);
  check "delete surfaced" true (Kv.get kv2 ~key:kb = None);
  Kv.check kv2

(* ---------- backup-side protocol ---------- *)

let test_promotion_resolves_indoubt () =
  let _, _, kv = mk_store ~shards:4 () in
  let ka, kb = cross_shard_keys kv in
  check "preload" true (Kv.put kv ~key:kb ~vseed:7);
  (* a prepare whose decide died with the primary *)
  Kv.txn_backup_prepare kv ~txn:9 ~shard:(Kv.shard_of_key kv ka)
    ~ops:[ Tput { key = ka; vseed = 60 } ];
  Kv.txn_backup_prepare kv ~txn:9 ~shard:(Kv.shard_of_key kv kb)
    ~ops:[ Tdel { key = kb } ];
  check_int "promotion presumed-aborts both slots" 2
    (Txn.resolve_indoubt kv);
  check_int "idempotent once resolved" 0 (Txn.resolve_indoubt kv);
  check "put never surfaced" true (Kv.get kv ~key:ka = None);
  check "delete never surfaced" true (Kv.get kv ~key:kb = cksum kv 7);
  Kv.check kv

let test_backup_defers_group_apply () =
  let _, _, kv = mk_store ~shards:4 () in
  let ka, kb = cross_shard_keys kv in
  let sa = Kv.shard_of_key kv ka and sb = Kv.shard_of_key kv kb in
  check "preload" true (Kv.put kv ~key:kb ~vseed:7);
  Kv.txn_backup_prepare kv ~txn:4 ~shard:sa ~ops:[ Tput { key = ka; vseed = 61 } ];
  Kv.txn_backup_prepare kv ~txn:4 ~shard:sb ~ops:[ Tdel { key = kb } ];
  (* first of two decides: publication must be deferred — applying this
     slice alone would let a crash surface half the transaction *)
  Kv.txn_backup_decide kv ~txn:4 ~shard:sa ~commit:true ~nparts:2;
  check "nothing published after 1/2 decides" true (Kv.get kv ~key:ka = None);
  check "other slice untouched too" true (Kv.get kv ~key:kb = cksum kv 7);
  (* last decide publishes the whole group atomically *)
  Kv.txn_backup_decide kv ~txn:4 ~shard:sb ~commit:true ~nparts:2;
  check "put published" true (Kv.get kv ~key:ka = cksum kv 61);
  check "delete published" true (Kv.get kv ~key:kb = None);
  check_int "no slots left in doubt" 0 (Txn.resolve_indoubt kv);
  (* duplicate decide after resolution is a no-op *)
  Kv.txn_backup_decide kv ~txn:4 ~shard:sb ~commit:true ~nparts:2;
  check "duplicate decide tolerated" true (Kv.get kv ~key:ka = cksum kv 61);
  Kv.check kv

let test_backup_abort_discards_slice () =
  let _, _, kv = mk_store ~shards:4 () in
  let ka, _ = cross_shard_keys kv in
  Kv.txn_backup_prepare kv ~txn:6 ~shard:(Kv.shard_of_key kv ka)
    ~ops:[ Tput { key = ka; vseed = 62 } ];
  Kv.txn_backup_decide kv ~txn:6 ~shard:(Kv.shard_of_key kv ka) ~commit:false
    ~nparts:2;
  check "aborted slice never surfaces" true (Kv.get kv ~key:ka = None);
  check_int "slot already discarded" 0 (Txn.resolve_indoubt kv)

(* ---------- crashcheck: protocol sweep + mutation sanity ---------- *)

let test_crashcheck_txn_sweep () =
  let scn = Option.get (Crashcheck.scenario_by_name "kv-txn") in
  let r = Crashcheck.run ~max_points:8 ~subsets_per_point:1 scn in
  check "sweeps points" true (r.Crashcheck.points_explored >= 8);
  check_int "transactions stay atomic at every crash point" 0
    (List.length r.Crashcheck.counterexamples)

let test_crashcheck_flags_unflushed_decision () =
  (* the same sweep against a coordinator that skips the decision
     record's flush MUST find a counterexample, or the checker cannot
     see the commit point *)
  let scn = Option.get (Crashcheck.scenario_by_name "kv-txn-broken") in
  let r = Crashcheck.run scn in
  check "seeded 2PC bug detected" true
    (List.length r.Crashcheck.counterexamples > 0)

let () =
  Alcotest.run "txn"
    [ ( "atomicity",
        [ Alcotest.test_case "commit spans shards atomically" `Quick
            test_commit_across_shards;
          Alcotest.test_case "aborts leave no durable trace" `Quick
            test_abort_leaves_no_trace ] );
      ( "recovery",
        [ Alcotest.test_case "in-doubt prepare presumed-aborts" `Quick
            test_indoubt_prepare_aborts_on_attach;
          Alcotest.test_case "persisted decision redoes the txn" `Quick
            test_decided_txn_redone_on_attach ] );
      ( "backup",
        [ Alcotest.test_case "promotion resolves in-doubt slots" `Quick
            test_promotion_resolves_indoubt;
          Alcotest.test_case "group apply deferred to last decide" `Quick
            test_backup_defers_group_apply;
          Alcotest.test_case "abort decide discards the slice" `Quick
            test_backup_abort_discards_slice ] );
      ( "crashcheck",
        [ Alcotest.test_case "kv-txn: bounded sweep clean" `Quick
            test_crashcheck_txn_sweep;
          Alcotest.test_case "kv-txn-broken: mutation flagged" `Quick
            test_crashcheck_flags_unflushed_decision ] ) ]
