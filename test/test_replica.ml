(* Replication subsystem: the two-machine cluster and its faulty link,
   the seq-numbered shipper/applier protocol, and the replicated
   server — async lag bounds, sync ack ordering, failover with zero
   acked-write loss, and loss recovery on a lossy wire. *)

module S = Service.Server
module Link = Cluster.Link
module R = Replica

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------- Net: loadgen determinism + fault injection ---------- *)

let test_loadgen_determinism () =
  let gaps seed =
    let lg = Net.Loadgen.create ~rate:50_000. ~seed in
    List.init 256 (fun _ -> Net.Loadgen.next_gap_ns lg)
  in
  check "same seed, same gap sequence" true (gaps 7 = gaps 7);
  check "different seed, different sequence" true (gaps 7 <> gaps 8);
  check "rate must be positive" true
    (try
       ignore (Net.Loadgen.create ~rate:0. ~seed:1);
       false
     with Invalid_argument _ -> true)

let test_net_fault_injection () =
  let mach = Machine.create () in
  (* clean net: the fault counters stay zero and nothing is lost *)
  let clean : int Net.t = Net.create mach ~ports:[| (0, 1024) |] () in
  for i = 1 to 100 do
    check "clean send accepted" true (Net.try_send clean ~dst:0 i)
  done;
  let s = Net.stats clean ~port:0 in
  check_int "clean: all enqueued" 100 s.Net.enqueued;
  check_int "clean: none dropped" 0 s.Net.dropped;
  check_int "clean: none duplicated" 0 s.Net.duplicated;
  check_int "clean: all pending" 100 (Net.pending clean ~port:0);
  (* lossy net: drops and duplicates both occur, are counted, and the
     queue holds exactly enqueued - dropped + duplicated messages *)
  let lossy : int Net.t =
    Net.create mach ~ports:[| (0, 4096) |] ~drop_pct:30 ~dup_pct:20
      ~fault_seed:99 ()
  in
  for i = 1 to 1000 do
    check "lossy send still reports true" true (Net.try_send lossy ~dst:0 i)
  done;
  let s = Net.stats lossy ~port:0 in
  check "some messages dropped" true (s.Net.dropped > 0);
  check "some messages duplicated" true (s.Net.duplicated > 0);
  check_int "queue accounts for every fault"
    (s.Net.enqueued - s.Net.dropped + s.Net.duplicated)
    (Net.pending lossy ~port:0);
  (* seeded: the same seed reproduces the exact fault pattern *)
  let replay : int Net.t =
    Net.create mach ~ports:[| (0, 4096) |] ~drop_pct:30 ~dup_pct:20
      ~fault_seed:99 ()
  in
  for i = 1 to 1000 do
    ignore (Net.try_send replay ~dst:0 i)
  done;
  let s' = Net.stats replay ~port:0 in
  check_int "same seed, same drops" s.Net.dropped s'.Net.dropped;
  check_int "same seed, same dups" s.Net.duplicated s'.Net.duplicated;
  check "drop_pct = 100 refused" true
    (try
       ignore (Net.create mach ~ports:[| (0, 8) |] ~drop_pct:100 ()
               : int Net.t);
       false
     with Invalid_argument _ -> true)

(* ---------- cluster: two machines, one engine ---------- *)

let test_cluster_shared_engine () =
  let c = Cluster.create ~machines:2 () in
  check_int "two members" 2 (Cluster.size c);
  let m0 = Cluster.machine c 0 and m1 = Cluster.machine c 1 in
  check "machines share the engine" true
    (Machine.engine m0 == Machine.engine m1);
  let order = ref [] in
  ignore
    (Machine.spawn m0 ~cpu:0 (fun () ->
         Simcore.Sched.sleep 100;
         order := `A :: !order;
         Simcore.Sched.sleep 400;
         order := `C :: !order));
  ignore
    (Machine.spawn m1 ~cpu:0 (fun () ->
         Simcore.Sched.sleep 300;
         order := `B :: !order));
  Cluster.run c;
  (* threads of the two machines interleave on one timeline *)
  check "cross-machine interleaving by simulated time" true
    (List.rev !order = [ `A; `B; `C ]);
  check "shared horizon covers both machines" true
    (Simcore.Sched.horizon (Cluster.engine c) >= 500);
  check "but devices are distinct" true (Machine.dev m0 != Machine.dev m1)

let test_link_basics () =
  let l : int Link.t = Link.create ~capacity:4 ~wire_ns:20_000 () in
  (* outside the simulation: zero latency, immediate delivery *)
  check "send" true (Link.send l ~dst:1 10);
  check "send" true (Link.send l ~dst:1 11);
  check_int "pending toward 1" 2 (Link.pending l ~ep:1);
  check_int "nothing toward 0" 0 (Link.pending l ~ep:0);
  (match Link.recv l ~ep:1 with
   | Some m -> check_int "FIFO head" 10 m.Link.payload
   | None -> Alcotest.fail "expected delivery");
  (* acks flow the other way on the same link *)
  check "reverse direction" true (Link.send l ~dst:0 99);
  check "reverse delivery" true (Link.recv l ~ep:0 <> None);
  (* bounded: the 5th message toward a capacity-4 endpoint is refused *)
  for i = 1 to 3 do
    ignore (Link.send l ~dst:1 i)
  done;
  check "full endpoint refuses" false (Link.send l ~dst:1 5);
  let s = Link.stats l ~ep:1 in
  check_int "rejection counted" 1 s.Link.rejected;
  check "in-simulation delivery respects wire latency" true
    (let c = Cluster.create ~machines:2 () in
     let l : int Link.t = Link.create ~wire_ns:20_000 () in
     let saw_early = ref false and saw_late = ref false in
     ignore
       (Machine.spawn (Cluster.machine c 0) ~cpu:0 (fun () ->
            ignore (Link.send l ~dst:1 42)));
     ignore
       (Machine.spawn (Cluster.machine c 1) ~cpu:0 (fun () ->
            Simcore.Sched.sleep 1_000;
            saw_early := Link.recv l ~ep:1 <> None;
            Simcore.Sched.sleep 40_000;
            saw_late := Link.recv l ~ep:1 <> None));
     Cluster.run c;
     (not !saw_early) && !saw_late)

(* ---------- shipper/applier protocol, driven by hand ---------- *)

let test_protocol_dedup_and_ack () =
  let cfg = { R.default_config with R.window = 8 } in
  let link : R.msg Link.t = Link.create ~dup_pct:50 ~seed:3 () in
  let sh = R.Shipper.create cfg ~shards:2 ~link in
  let applied = ref [] in
  let ap =
    R.Applier.create cfg ~shards:2 ~link ~apply:(fun ~shard op ->
        applied := (shard, op) :: !applied)
  in
  for k = 1 to 6 do
    let shard = k mod 2 in
    ignore (R.Shipper.ship sh ~shard (R.Put { key = k; vseed = k }))
  done;
  (* the link duplicates aggressively; the applier must apply each
     record exactly once and keep per-shard sequence order *)
  R.Applier.pump ap ~until:(fun () -> Link.pending link ~ep:1 = 0);
  check_int "each record applied exactly once" 6 (R.Applier.applied ap);
  check_int "shard 0 expects next seq" 3 (R.Applier.expected ap ~shard:0);
  check_int "shard 1 expects next seq" 3 (R.Applier.expected ap ~shard:1);
  (* cumulative acks release the shipper's window *)
  check "acks arrived" true (R.Shipper.wait_acked sh ~shard:0 ~seq:2 ~deadline:0);
  check_int "shard 0 fully acked" 2 (R.Shipper.acked sh ~shard:0);
  check_int "shard 1 fully acked" 2 (R.Shipper.acked sh ~shard:1);
  check_int "no unacked residue" 0
    (R.Shipper.lag sh ~shard:0 + R.Shipper.lag sh ~shard:1)

(* ---------- replicated server runs ---------- *)

let repl_serve cfg rcfg =
  S.run_replicated
    ~make:(fun mach -> Workloads.Factories.poseidon_on mach)
    cfg rcfg

let base_cfg =
  { S.default_config with
    S.shards = 2;
    clients = 8;
    rate = 30_000.;
    duration = 0.005;
    keyspace = 512;
    preload = 256;
    scope = "test/replica" }

let test_async_lag_bound () =
  let r =
    repl_serve
      { base_cfg with S.scope = "test/replica/async" }
      { S.default_repl_config with
        S.repl_mode = R.Async;
        repl_window = 4 }
  in
  check "mutations were shipped" true (r.S.shipped > 0);
  check "lag observed" true (r.S.max_lag > 0);
  check "async lag bounded by the window" true (r.S.max_lag <= 4);
  check "clean run converged: everything acked" true
    (r.S.acked_records >= r.S.shipped);
  (match r.S.backup_ledger with
   | Some l -> check_int "backup reproduces every acked write" 0 l.S.mismatches
   | None -> Alcotest.fail "clean run must report the backup ledger");
  check_int "no retransmits on a clean link" 0 r.S.retransmits

let test_sync_ack_ordering () =
  let mut_cfg =
    { base_cfg with
      S.rate = 15_000.;
      read_pct = 0;
      scan_pct = 0;
      delete_pct = 10 }
  in
  let sync_r =
    repl_serve
      { mut_cfg with S.scope = "test/replica/sync" }
      S.default_repl_config
  in
  check "sync mode" true sync_r.S.sync;
  check "completions" true (sync_r.S.base.S.completed > 0);
  (* no reply ever precedes its backup ack: on a clean run every
     shipped record is acked and the backup matches the ledger *)
  check "all shipped records acked" true
    (sync_r.S.acked_records >= sync_r.S.shipped);
  (match sync_r.S.backup_ledger with
   | Some l ->
     check "backup checked" true (l.S.checked > 0);
     check_int "sync: backup holds every acked write" 0 l.S.mismatches
   | None -> Alcotest.fail "clean run must report the backup ledger");
  (* the sync latency tax is visible against an identical async run *)
  let async_r =
    repl_serve
      { mut_cfg with S.scope = "test/replica/sync-vs-async" }
      { S.default_repl_config with S.repl_mode = R.Async }
  in
  check "sync pays the round trip on the median mutation" true
    (sync_r.S.base.S.latency.S.p50 > async_r.S.base.S.latency.S.p50);
  check "async keeps lag within the default window" true
    (async_r.S.max_lag <= S.default_repl_config.S.repl_window)

let test_failover_ledger () =
  let r =
    repl_serve
      { base_cfg with
        S.crash_at = Some 0.5;
        scope = "test/replica/failover" }
      S.default_repl_config
  in
  check "crashed" true r.S.base.S.crashed;
  check "promote RTO is nonzero simulated time" true (r.S.base.S.rto_ns > 0);
  check "ledger checked keys" true (r.S.base.S.ledger.S.checked > 0);
  check_int "sync failover: no acked write lost" 0
    (r.S.base.S.ledger.S.mismatches);
  check "backup applied records" true (r.S.backup_applied > 0)

let test_lossy_link_retry () =
  let r =
    repl_serve
      { base_cfg with S.rate = 15_000.; scope = "test/replica/lossy" }
      { S.default_repl_config with
        S.link_drop_pct = 20;
        link_dup_pct = 10;
        retransmit_ns = 60_000 }
  in
  check "wire lost messages" true (r.S.link_dropped > 0);
  check "go-back-N retransmitted" true (r.S.retransmits > 0);
  check "still converged: everything acked" true
    (r.S.acked_records >= r.S.shipped);
  (match r.S.backup_ledger with
   | Some l -> check_int "loss recovery: no acked write lost" 0 l.S.mismatches
   | None -> Alcotest.fail "clean run must report the backup ledger")

(* Bounded slice of the exhaustive fence sweep (bin/main.exe crashcheck
   runs it in full): crash the whole two-machine cluster at strided
   points of the ship → backup-persist → ack pipeline and demand every
   sync-acked write be readable on the recovered backup. *)
let test_crashcheck_replicated_sweep () =
  let scn = Option.get (Crashcheck.scenario_by_name "kv-replicated-put") in
  let r = Crashcheck.run ~max_points:6 ~subsets_per_point:1 scn in
  check "sweep covers both machines' fences" true
    (r.Crashcheck.fences_total > 0);
  check "sweeps the strided points" true (r.Crashcheck.points_explored >= 6);
  check_int "no acked write lost at any crash point" 0
    (List.length r.Crashcheck.counterexamples)

let () =
  Alcotest.run "replica"
    [ ( "net",
        [ Alcotest.test_case "loadgen: same seed, same gaps" `Quick
            test_loadgen_determinism;
          Alcotest.test_case "fault injection: seeded drop/dup" `Quick
            test_net_fault_injection ] );
      ( "cluster",
        [ Alcotest.test_case "two machines, one timeline" `Quick
            test_cluster_shared_engine;
          Alcotest.test_case "link: FIFO, bounded, wire latency" `Quick
            test_link_basics ] );
      ( "protocol",
        [ Alcotest.test_case "dedup + cumulative ack" `Quick
            test_protocol_dedup_and_ack ] );
      ( "server",
        [ Alcotest.test_case "async: lag bounded by window" `Quick
            test_async_lag_bound;
          Alcotest.test_case "sync: ack ordering + latency tax" `Quick
            test_sync_ack_ordering;
          Alcotest.test_case "failover: acked writes survive" `Quick
            test_failover_ledger;
          Alcotest.test_case "lossy link: retransmit to convergence" `Quick
            test_lossy_link_retry ] );
      ( "crashcheck",
        [ Alcotest.test_case "cluster crash sweep: acked survives" `Quick
            test_crashcheck_replicated_sweep ] ) ]
