(* Seed plumbing for the randomized suites: every fixed-seed random
   loop takes its seed from the CRASH_SEED environment variable (the
   per-test default applies when unset), and a failing run prints the
   seed that reproduces it before re-raising.  Reproduce with e.g.

     CRASH_SEED=12345 dune exec test/test_crash.exe *)

let get ~default =
  match Sys.getenv_opt "CRASH_SEED" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n -> n
    | None ->
      Printf.eprintf "[crash_seed] ignoring unparsable CRASH_SEED=%S\n%!" s;
      default)
  | None -> default

let with_seed ~default f =
  let seed = get ~default in
  try f seed
  with e ->
    Printf.eprintf
      "\n[crash_seed] failing seed: rerun with CRASH_SEED=%d (test default \
       %d)\n\
       %!"
      seed default;
    raise e
