(* Observability layer: tracer ordering guarantees, Chrome-trace
   export well-formedness, metrics cross-checks against the machine's
   own accounting, and the zero-cost-when-disabled contract. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let micro ~threads ~total_ops () =
  Workloads.Microbench.run
    ~factory:(Workloads.Factories.poseidon ())
    ~size:256 ~threads ~total_ops ()

(* ---------- JSON writer/parser ---------- *)

let test_json_roundtrip () =
  let module J = Obs.Json in
  let v =
    J.Obj
      [ ("s", J.Str "a\"b\\c\nd\té");
        ("n", J.Num 1.5);
        ("neg", J.Num (-3.));
        ("t", J.Bool true);
        ("f", J.Bool false);
        ("z", J.Null);
        ("a", J.Arr [ J.Num 1.; J.Str "x"; J.Obj [] ]) ]
  in
  let v' = J.parse (J.to_string v) in
  check "round-trip" true (v = v');
  check "parse ws" true
    (J.parse "  { \"k\" : [ 1 , 2.25e1 , -4 ] }  "
     = J.Obj [ ("k", J.Arr [ J.Num 1.; J.Num 22.5; J.Num (-4.) ]) ]);
  check "rejects garbage" true
    (match J.parse "{\"k\":}" with
     | exception J.Parse_error _ -> true
     | _ -> false)

(* ---------- tracer ---------- *)

let test_trace_monotone () =
  Obs.Trace.clear ();
  Obs.Trace.start ();
  ignore (micro ~threads:4 ~total_ops:2_000 ());
  Obs.Trace.stop ();
  check "events recorded" true (Obs.Trace.count () > 0);
  check_int "nothing dropped" 0 (Obs.Trace.dropped ());
  let last : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let kinds_seen : (Obs.Event.kind, int) Hashtbl.t = Hashtbl.create 16 in
  Obs.Trace.iter
    (fun ~ts ~dur:_ ~tid ~cpu:_ ~node ~kind ~a1:_ ~a2:_ ~name:_ ->
      (match Hashtbl.find_opt last tid with
       | Some prev -> check "per-thread ts monotone" true (ts >= prev)
       | None -> ());
      Hashtbl.replace last tid ts;
      if tid >= 0 then check "node resolved for sim threads" true (node >= 0);
      Hashtbl.replace kinds_seen kind
        (1 + Option.value ~default:0 (Hashtbl.find_opt kinds_seen kind)));
  let seen k = Hashtbl.mem kinds_seen k in
  check "alloc events" true (seen Obs.Event.Alloc);
  check "free events" true (seen Obs.Event.Free);
  check "clwb events" true (seen Obs.Event.Clwb);
  check "sfence events" true (seen Obs.Event.Sfence);
  check "persist events" true (seen Obs.Event.Persist);
  check "wrpkru events" true (seen Obs.Event.Wrpkru);
  check "lock acquire events" true (seen Obs.Event.Lock_acquire);
  check "subheap creation events" true (seen Obs.Event.Subheap_create);
  Obs.Trace.clear ()

let test_trace_chrome_export () =
  let module J = Obs.Json in
  let mem k v =
    match J.member k v with
    | Some x -> x
    | None -> Alcotest.failf "missing field %S" k
  in
  let str v =
    match J.to_str v with Some s -> s | None -> Alcotest.fail "not a string"
  in
  let flo v =
    match J.to_float v with Some f -> f | None -> Alcotest.fail "not a number"
  in
  Obs.Trace.clear ();
  Obs.Trace.start ();
  ignore (micro ~threads:4 ~total_ops:2_000 ());
  Obs.Trace.stop ();
  let doc = J.parse (Obs.Trace.to_chrome_json ()) in
  let evs =
    match J.to_list (mem "traceEvents" doc) with
    | Some l -> l
    | None -> Alcotest.fail "traceEvents is not an array"
  in
  (* every retained event + process metadata + one name per thread *)
  check "all events exported" true (List.length evs > Obs.Trace.count ());
  let names = Hashtbl.create 64 in
  List.iter
    (fun e ->
      Hashtbl.replace names (str (mem "name" e)) ();
      match str (mem "ph" e) with
      | "M" -> ()
      | "i" -> check "instant ts >= 0" true (flo (mem "ts" e) >= 0.)
      | "X" ->
        check "span dur >= 0" true (flo (mem "dur" e) >= 0.);
        check "span ts >= 0" true (flo (mem "ts" e) >= 0.)
      | ph -> Alcotest.failf "unexpected phase %S" ph)
    evs;
  check "alloc exported" true (Hashtbl.mem names "alloc");
  check "persist exported" true (Hashtbl.mem names "persist");
  check "thread metadata" true (Hashtbl.mem names "thread_name");
  Obs.Trace.clear ()

(* ---------- metrics ---------- *)

let test_metrics_cross_check () =
  Obs.Metrics.reset ();
  Obs.Trace.clear ();
  (* Deterministic single-thread micro run: ops_per_thread = 2000, so
     10 rounds of 100 batched pairs -> 1000 allocs + 1000 frees, plus
     the one warm-up object per thread. *)
  ignore (micro ~threads:1 ~total_ops:2_000 ());
  let counter name =
    Option.value ~default:(-1)
      (Obs.Metrics.get_counter ~scope:"heap1" name)
  in
  check_int "allocs" 1_001 (counter "allocs");
  check_int "frees" 1_001 (counter "frees");
  check_int "alloc_fails" 0 (counter "alloc_fails");
  check_int "tx_allocs" 0 (counter "tx_allocs")

let test_metrics_vs_profile () =
  Obs.Metrics.reset ();
  let mach = Machine.create () in
  let base = 1 lsl 30 in
  Machine.add_region mach ~base ~size:(1 lsl 20) ~kind:Nvmm.Memdev.Nvmm
    ~numa:0;
  ignore
    (Machine.parallel mach ~threads:4 (fun i ->
         let a = base + (i * 4096) in
         for j = 0 to 99 do
           Machine.write_u64 mach (a + (8 * (j mod 64))) j;
           Machine.persist mach (a + (8 * (j mod 64))) 8
         done;
         Machine.sfence mach));
  let p = Machine.profile mach in
  let sfence_ns = (Machine.cfg mach).Machine.Config.sfence_ns in
  (* the independent fence count must explain the profiled fence time *)
  check_int "p_fence = sim_fences * sfence_ns"
    (Machine.sim_fences mach * sfence_ns)
    p.Machine.p_fence;
  check_int "404 fences" 404 (Machine.sim_fences mach);
  Machine.publish_metrics mach;
  let gauge name =
    Option.value ~default:(-1.) (Obs.Metrics.get_gauge ~scope:"machine" name)
  in
  check "published fence_ns" true
    (gauge "profile/fence_ns" = float_of_int p.Machine.p_fence);
  check "published sim_fences" true
    (gauge "sim_fences" = float_of_int (Machine.sim_fences mach));
  let c = Nvmm.Memdev.counters (Machine.dev mach) in
  check "published device fences" true
    (gauge "device/fences" = float_of_int c.Nvmm.Memdev.fences);
  check "device agrees with machine" true
    (c.Nvmm.Memdev.fences = Machine.sim_fences mach)

let test_lock_stats () =
  Obs.Metrics.reset ();
  let mach = Machine.create () in
  let l = Machine.Lock.create mach ~name:"test-lock" () in
  let shared = ref 0 in
  ignore
    (Machine.parallel mach ~threads:4 (fun _ ->
         for _ = 1 to 25 do
           Machine.Lock.with_lock l (fun () ->
               Machine.compute mach 50;
               incr shared)
         done));
  check_int "critical sections ran" 100 !shared;
  let s = Machine.Lock.stats l in
  check_int "acquisitions" 100 s.Machine.Lock.acquisitions;
  check "contention observed" true (s.Machine.Lock.contended > 0);
  check "wait time recorded" true (s.Machine.Lock.wait_ns > 0);
  check "named" true (Machine.Lock.name l = "test-lock");
  check "listed on machine" true
    (List.mem_assoc "test-lock" (Machine.lock_stats mach));
  Machine.publish_metrics mach;
  check "per-lock gauge" true
    (Obs.Metrics.get_gauge ~scope:"lock/test-lock" "acquisitions"
     = Some 100.)

(* ---------- log-linear histogram ---------- *)

(* 32 sub-buckets per octave bound the relative error of any recorded
   value's bucket midpoint by ~3.2 %. *)
let test_hist_bucket_accuracy () =
  let module Hi = Obs.Hist in
  let v = ref 3 in
  while !v < 1 lsl 40 do
    let h = Hi.create () in
    (* two samples so the clamp-to-min/max can't mask bucketing *)
    Hi.record h !v;
    Hi.record h (!v * 3);
    let got = Hi.percentile h 50. in
    let err =
      abs_float (float_of_int (got - !v)) /. float_of_int !v
    in
    if err > 0.033 then
      Alcotest.failf "value %d bucketed to %d (%.1f%% error)" !v got
        (100. *. err);
    v := (!v * 7 / 3) + 1
  done

let test_hist_percentiles () =
  let module Hi = Obs.Hist in
  let h = Hi.create () in
  for i = 1 to 10_000 do
    Hi.record h i
  done;
  check_int "count" 10_000 (Hi.count h);
  check_int "total is exact" (10_000 * 10_001 / 2) (Hi.total h);
  check_int "min exact" 1 (Hi.min_value h);
  check_int "max exact" 10_000 (Hi.max_value h);
  let near p expect =
    let got = Hi.percentile h p in
    let err =
      abs_float (float_of_int got -. float_of_int expect)
      /. float_of_int expect
    in
    if err > 0.04 then
      Alcotest.failf "p%.1f = %d, expected ~%d (%.1f%% off)" p got expect
        (100. *. err)
  in
  near 50. 5_000;
  near 99. 9_900;
  near 99.9 9_990;
  check_int "p0 clamps to min" 1 (Hi.percentile h 0.);
  check_int "p100 clamps to max" 10_000 (Hi.percentile h 100.);
  check "mean" true (abs_float (Hi.mean h -. 5_000.5) < 0.01);
  (* negative samples clamp to zero instead of crashing *)
  let h2 = Hi.create () in
  Hi.record h2 (-42);
  check_int "negative clamps to 0" 0 (Hi.percentile h2 50.);
  check_int "empty histogram percentile" 0 (Hi.percentile (Hi.create ()) 99.)

let test_hist_merge () =
  let module Hi = Obs.Hist in
  let a = Hi.create () and b = Hi.create () and all = Hi.create () in
  for i = 1 to 4_000 do
    Hi.record (if i <= 2_000 then a else b) i;
    Hi.record all i
  done;
  Hi.merge ~into:a b;
  check_int "merged count" (Hi.count all) (Hi.count a);
  check_int "merged total" (Hi.total all) (Hi.total a);
  check_int "merged min" (Hi.min_value all) (Hi.min_value a);
  check_int "merged max" (Hi.max_value all) (Hi.max_value a);
  List.iter
    (fun p ->
      check_int
        (Printf.sprintf "merged p%.1f matches single-pass" p)
        (Hi.percentile all p) (Hi.percentile a p))
    [ 50.; 99.; 99.9 ];
  Hi.clear a;
  check_int "clear resets" 0 (Hi.count a)

(* the registry integration: same instance on re-lookup, and p999
   lands in the JSON snapshot *)
let test_log_histogram_registry () =
  let module J = Obs.Json in
  let h = Obs.Metrics.log_histogram ~scope:"test/hist" "lat_ns" in
  Obs.Hist.clear h;
  for i = 1 to 1_000 do
    Obs.Hist.record h (i * 100)
  done;
  check "re-lookup returns the same histogram" true
    (Obs.Metrics.log_histogram ~scope:"test/hist" "lat_ns" == h);
  check "get_log_histogram finds it" true
    (Obs.Metrics.get_log_histogram ~scope:"test/hist" "lat_ns" = Some h);
  let field name =
    match Obs.Metrics.snapshot () with
    | J.Obj scopes -> (
      match List.assoc "test/hist" scopes with
      | J.Obj metrics -> (
        match List.assoc "lat_ns" metrics with
        | J.Obj fields -> List.assoc_opt name fields
        | _ -> None)
      | _ -> None)
    | _ -> None
  in
  (match field "count" with
   | Some (J.Num n) -> check "snapshot count" true (n = 1_000.)
   | _ -> Alcotest.fail "count missing from snapshot");
  match field "p999" with
  | Some (J.Num p) ->
    check "p999 in tail" true (p >= 95_000. && p <= 100_000.)
  | _ -> Alcotest.fail "p999 missing from snapshot"

(* ---------- disabled tracer is inert ---------- *)

let test_disabled_identical () =
  Obs.Trace.clear ();
  let off1 = micro ~threads:4 ~total_ops:2_000 () in
  Obs.Trace.start ();
  let on_ = micro ~threads:4 ~total_ops:2_000 () in
  Obs.Trace.stop ();
  Obs.Trace.clear ();
  let off2 = micro ~threads:4 ~total_ops:2_000 () in
  check "tracing does not change results" true (off1 = on_);
  check "runs are deterministic" true (off1 = off2);
  check_int "no events retained when disabled" 0 (Obs.Trace.count ())

let () =
  Alcotest.run "obs"
    [ ( "json",
        [ Alcotest.test_case "round-trip" `Quick test_json_roundtrip ] );
      ( "trace",
        [ Alcotest.test_case "per-thread monotone timestamps" `Quick
            test_trace_monotone;
          Alcotest.test_case "chrome export parses" `Quick
            test_trace_chrome_export ] );
      ( "metrics",
        [ Alcotest.test_case "heap counters vs known workload" `Quick
            test_metrics_cross_check;
          Alcotest.test_case "fence accounting vs profile" `Quick
            test_metrics_vs_profile;
          Alcotest.test_case "lock stats and per-lock gauges" `Quick
            test_lock_stats ] );
      ( "hist",
        [ Alcotest.test_case "bucket midpoint error <= 3.3%" `Quick
            test_hist_bucket_accuracy;
          Alcotest.test_case "percentiles on a uniform ramp" `Quick
            test_hist_percentiles;
          Alcotest.test_case "merge equals single-pass" `Quick
            test_hist_merge;
          Alcotest.test_case "registry + p999 in snapshot" `Quick
            test_log_histogram_registry ] );
      ( "overhead",
        [ Alcotest.test_case "disabled tracer is inert" `Quick
            test_disabled_identical ] ) ]
