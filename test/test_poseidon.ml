(* Tests for the Poseidon allocator: layout, hash table, buddy lists,
   allocation/deallocation algorithms, defragmentation, MPK
   protection, transactional allocation, hole punching, pointers,
   plus property-based random-trace invariant checks.

   Fixed-seed random loops seed from CRASH_SEED (see crash_seed.ml);
   a failure prints the seed that reproduces it.  QCheck properties
   already print their failing input. *)

module Prng = Repro_util.Prng
module Memdev = Nvmm.Memdev
module H = Poseidon.Heap
module L = Poseidon.Layout

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let base = 1 lsl 30

let mkheap ?(sub_data_size = 1 lsl 20) ?(base_buckets = 64) ?(protected = true)
    ?(num_cpus = 4) () =
  let cfg = { Machine.Config.default with num_cpus } in
  let mach = Machine.create ~cfg () in
  let h =
    H.create mach ~base ~size:(1 lsl 34) ~heap_id:1 ~sub_data_size
      ~base_buckets ~protected ()
  in
  (mach, h)

let alloc_exn h size =
  match H.alloc h size with
  | Some p -> p
  | None -> Alcotest.fail "unexpected out-of-memory"

(* ---------- layout ---------- *)

let test_layout_no_overlaps () =
  check "undo before micro" true (L.sh_off_undo_entries + (L.undo_cap * L.undo_entry_size) <= L.sh_off_micro_count);
  check "micro before heads" true
    (L.sh_off_micro_entries + (L.micro_cap * L.word) <= L.sh_off_buddy_heads);
  check "heads before tails" true
    (L.sh_off_buddy_heads + (L.num_classes * L.word) <= L.sh_off_buddy_tails);
  check "header fits" true
    (L.sh_off_base_buckets + L.word <= L.sh_header_size);
  check "header page aligned" true (L.sh_header_size mod L.page = 0)

let test_class_of_size () =
  check_int "32" 0 (L.class_of_size 32);
  check_int "63" 0 (L.class_of_size 63);
  check_int "64" 1 (L.class_of_size 64);
  check_int "65" 1 (L.class_of_size 65);
  check_int "1MB" 15 (L.class_of_size (1 lsl 20))

let test_round_up_pow2 () =
  check_int "1 -> 32" 32 (L.round_up 1);
  check_int "32" 32 (L.round_up 32);
  check_int "33 -> 64" 64 (L.round_up 33);
  check_int "100 -> 128" 128 (L.round_up 100);
  check_int "4096" 4096 (L.round_up 4096)

(* ---------- basic allocation ---------- *)

let test_alloc_free_roundtrip () =
  let mach, h = mkheap () in
  let p = alloc_exn h 256 in
  let raw = H.get_rawptr h p in
  Machine.write_u64 mach raw 0xFEED;
  check_int "user data" 0xFEED (Machine.read_u64 mach raw);
  H.free h p;
  H.check_invariants h

let test_alloc_zero_and_negative () =
  let _, h = mkheap () in
  check "zero -> None" true (H.alloc h 0 = None);
  check "negative -> None" true (H.alloc h (-5) = None)

let test_alloc_too_big () =
  let _, h = mkheap ~sub_data_size:(1 lsl 20) () in
  check "oversized -> None" true (H.alloc h (1 lsl 21) = None)

let test_alloc_distinct_regions () =
  let _, h = mkheap () in
  let ps = List.init 50 (fun _ -> alloc_exn h 64) in
  let raws = List.map (H.get_rawptr h) ps in
  let sorted = List.sort_uniq compare raws in
  check_int "all distinct" 50 (List.length sorted);
  (* pairwise non-overlap at 64 B *)
  let rec pairs = function
    | a :: (b :: _ as rest) ->
      check "no overlap" true (b - a >= 64);
      pairs rest
    | _ -> ()
  in
  pairs (List.sort compare raws);
  H.check_invariants h

let test_free_enables_reuse () =
  let _, h = mkheap ~sub_data_size:(1 lsl 16) () in
  (* fill completely, free all, fill again *)
  let rec fill acc =
    match H.alloc h 1024 with Some p -> fill (p :: acc) | None -> acc
  in
  let first = fill [] in
  check "filled some" true (List.length first > 0);
  List.iter (H.free h) first;
  H.check_invariants h;
  let second = fill [] in
  check_int "reuse restores capacity" (List.length first) (List.length second);
  List.iter (H.free h) second;
  H.check_invariants h

let test_exact_pool_accounting () =
  let _, h = mkheap () in
  let p1 = alloc_exn h 100 (* rounds to 128 *) in
  let p2 = alloc_exn h 32 in
  let st = H.stats h in
  check_int "live bytes" (128 + 32) st.H.live_bytes;
  H.free h p1;
  H.free h p2;
  let st = H.stats h in
  check_int "live after frees" 0 st.H.live_bytes

let test_data_region_isolation () =
  (* metadata region must not be writable; user region must be *)
  let mach, h = mkheap () in
  let p = alloc_exn h 64 in
  let raw = H.get_rawptr h p in
  Machine.write_u64 mach raw 1;
  (* stray store below the first block lands in metadata -> fault *)
  let meta_target = ref 0 in
  H.iter_subheaps h (fun sh -> meta_target := sh.Poseidon.Subheap.meta_base + L.sh_off_buddy_heads);
  check "metadata protected" true
    (try Machine.write_u64 mach !meta_target 0xBAD; false
     with Mpk.Fault _ -> true);
  H.check_invariants h

let test_unprotected_mode () =
  let mach, h = mkheap ~protected:false () in
  ignore (alloc_exn h 64);
  let meta_target = ref 0 in
  H.iter_subheaps h (fun sh -> meta_target := sh.Poseidon.Subheap.meta_base + L.sh_off_buddy_heads);
  (* ablation mode: no fault *)
  Machine.write_u64 mach !meta_target (Machine.read_u64 mach !meta_target)

(* ---------- double / invalid frees (4.4) ---------- *)

let test_double_free_rejected () =
  let _, h = mkheap () in
  let p = alloc_exn h 64 in
  H.free h p;
  H.free h p;
  let st = H.stats h in
  check_int "double free counted" 1 st.H.double_frees;
  H.check_invariants h

let test_invalid_free_rejected () =
  let _, h = mkheap () in
  let p = alloc_exn h 256 in
  H.free h { p with Alloc_intf.off = p.Alloc_intf.off + 32 };
  let st = H.stats h in
  check_int "invalid free counted" 1 st.H.invalid_frees;
  (* original object untouched *)
  H.free h p;
  check_int "live 0" 0 (H.stats h).H.live_bytes;
  H.check_invariants h

let test_foreign_pointer_free () =
  let _, h = mkheap () in
  H.free h Alloc_intf.null;
  H.free h { Alloc_intf.heap_id = 99; subheap = 0; off = 0 };
  H.free h { Alloc_intf.heap_id = 1; subheap = 9999; off = 0 };
  H.check_invariants h

(* ---------- pointers ---------- *)

let test_pointer_roundtrip () =
  let _, h = mkheap () in
  let p = alloc_exn h 64 in
  let raw = H.get_rawptr h p in
  check "roundtrip" true (Alloc_intf.equal_nvmptr p (H.get_nvmptr h raw))

let test_rawptr_validation () =
  let _, h = mkheap () in
  check "null rejected" true
    (try ignore (H.get_rawptr h Alloc_intf.null); false
     with Invalid_argument _ -> true);
  check "outside data rejected" true
    (try ignore (H.get_nvmptr h base); false with Invalid_argument _ -> true)

let test_pack_unpack () =
  let p = { Alloc_intf.heap_id = 7; subheap = 3; off = 0xABCDE } in
  let p' = Alloc_intf.unpack ~heap_id:7 (Alloc_intf.pack p) in
  check "pack/unpack" true (Alloc_intf.equal_nvmptr p p');
  check "null packs" true
    (Alloc_intf.is_null (Alloc_intf.unpack ~heap_id:0 Alloc_intf.packed_null))

(* ---------- root pointer ---------- *)

let test_root_pointer () =
  let mach, h = mkheap () in
  check "initial null" true (Alloc_intf.is_null (H.get_root h));
  let p = alloc_exn h 64 in
  H.set_root h p;
  check "read back" true (Alloc_intf.equal_nvmptr p (H.get_root h));
  (* survives crash + attach *)
  Memdev.crash (Machine.dev mach) `Strict;
  let h2 = H.attach mach ~base () in
  check "root durable" true (Alloc_intf.equal_nvmptr p (H.get_root h2))

(* ---------- splitting & defragmentation ---------- *)

let test_split_then_merge_roundtrip () =
  let _, h = mkheap ~sub_data_size:(1 lsl 16) () in
  (* many small allocations split the initial block; freeing them and
     allocating the whole heap forces defragmentation *)
  let small = List.init 512 (fun _ -> alloc_exn h 32) in
  H.check_invariants h;
  List.iter (H.free h) small;
  H.check_invariants h;
  (* a whole-pool allocation: only possible if defragmentation merged
     all 512 fragments back into a single block *)
  (match H.alloc h (1 lsl 16) with
   | Some _ -> ()
   | None -> Alcotest.fail "defrag failed to rebuild the full block");
  H.check_invariants h

let test_full_merge_restores_single_block () =
  let _, h = mkheap ~sub_data_size:(1 lsl 16) () in
  let ps = List.init 128 (fun _ -> alloc_exn h 512) in
  List.iter (H.free h) ps;
  (* whole-pool allocation must succeed after defrag *)
  (match H.alloc h (1 lsl 16) with
   | Some _ -> ()
   | None -> Alcotest.fail "full-size allocation after frees");
  H.check_invariants h

let test_interleaved_sizes () =
  Crash_seed.with_seed ~default:5 @@ fun seed ->
  let _, h = mkheap () in
  let rng = Prng.create seed in
  let live = ref [] in
  for _ = 1 to 500 do
    if Prng.bool rng || !live = [] then begin
      let size = 32 lsl Prng.int rng 7 in
      match H.alloc h size with
      | Some p -> live := p :: !live
      | None -> ()
    end
    else begin
      match !live with
      | p :: rest ->
        H.free h p;
        live := rest
      | [] -> ()
    end
  done;
  H.check_invariants h

(* ---------- per-CPU sub-heaps ---------- *)

let test_per_cpu_subheaps () =
  let mach, h = mkheap ~num_cpus:4 () in
  let seen = Array.make 4 Alloc_intf.null in
  let _ =
    Machine.parallel mach ~threads:4 (fun i ->
        seen.(i) <- Option.get (H.alloc h 64))
  in
  let subs = Array.map (fun p -> p.Alloc_intf.subheap) seen in
  Array.sort compare subs;
  Alcotest.(check (array int)) "each CPU its own sub-heap" [| 0; 1; 2; 3 |] subs;
  check_int "4 active" 4 (H.stats h).H.subheaps_active;
  H.check_invariants h

let test_cross_thread_free () =
  let mach, h = mkheap ~num_cpus:2 () in
  let p = ref Alloc_intf.null in
  let _ =
    Machine.parallel mach ~threads:1 (fun _ -> p := Option.get (H.alloc h 64))
  in
  (* free from CPU 1 (different sub-heap owner) *)
  let _ =
    Machine.parallel mach ~threads:2 (fun i -> if i = 1 then H.free h !p)
  in
  check_int "freed" 0 (H.stats h).H.live_bytes;
  H.check_invariants h

let test_single_subheap_mode () =
  let mach, h =
    let cfg = { Machine.Config.default with num_cpus = 4 } in
    let mach = Machine.create ~cfg () in
    ( mach,
      H.create mach ~base ~size:(1 lsl 34) ~heap_id:1
        ~sub_data_size:(1 lsl 20) ~base_buckets:64 ~single_subheap:true () )
  in
  let _ =
    Machine.parallel mach ~threads:4 (fun _ -> ignore (H.alloc h 64))
  in
  check_int "one sub-heap" 1 (H.stats h).H.subheaps_active

(* ---------- transactional allocation (5.3) ---------- *)

let test_tx_commit () =
  let mach, h = mkheap () in
  let p1 = Option.get (H.tx_alloc h 64 ~is_end:false) in
  let p2 = Option.get (H.tx_alloc h 64 ~is_end:true) in
  Memdev.crash (Machine.dev mach) `Strict;
  let h2 = H.attach mach ~base () in
  check_int "committed allocations survive" 128 (H.stats h2).H.live_bytes;
  H.free h2 p1;
  H.free h2 p2;
  H.check_invariants h2

let test_tx_rollback_on_crash () =
  let mach, h = mkheap () in
  let keeper = alloc_exn h 64 in
  ignore (H.tx_alloc h 64 ~is_end:false);
  ignore (H.tx_alloc h 64 ~is_end:false);
  (* crash before commit *)
  Memdev.crash (Machine.dev mach) `Strict;
  let h2 = H.attach mach ~base () in
  check_int "uncommitted rolled back, keeper stays" 64
    (H.stats h2).H.live_bytes;
  H.free h2 keeper;
  H.check_invariants h2

let test_tx_abort () =
  let _, h = mkheap () in
  ignore (H.tx_alloc h 64 ~is_end:false);
  ignore (H.tx_alloc h 64 ~is_end:false);
  H.tx_abort h;
  check_int "aborted" 0 (H.stats h).H.live_bytes;
  H.check_invariants h

(* ---------- hash-table growth & hole punching ---------- *)

let test_hash_extension () =
  (* tiny base_buckets forces multi-level growth *)
  let _, h = mkheap ~base_buckets:8 ~sub_data_size:(1 lsl 18) () in
  let ps = List.init 2048 (fun _ -> alloc_exn h 32) in
  check "extended" true ((H.stats h).H.hash_extends > 0);
  H.check_invariants h;
  List.iter (H.free h) ps;
  H.check_invariants h

let test_shrink_metadata () =
  let _, h = mkheap ~base_buckets:8 ~sub_data_size:(1 lsl 18) () in
  let ps = List.init 2048 (fun _ -> alloc_exn h 32) in
  List.iter (H.free h) ps;
  (* merge everything back, then punch empty levels *)
  (match H.alloc h (1 lsl 18) with Some _ -> () | None -> Alcotest.fail "defrag");
  H.shrink_metadata h;
  H.check_invariants h

(* ---------- recovery / restart ---------- *)

let test_attach_clean () =
  let mach, h = mkheap () in
  let p = alloc_exn h 256 in
  Memdev.drain (Machine.dev mach);
  H.finish h;
  let h2 = H.attach mach ~base () in
  check_int "state preserved" 256 (H.stats h2).H.live_bytes;
  H.free h2 p;
  H.check_invariants h2

let test_attach_bad_magic () =
  let mach = Machine.create () in
  Machine.add_region mach ~base ~size:8192 ~kind:Nvmm.Memdev.Nvmm ~numa:0;
  check "bad magic rejected" true
    (try ignore (H.attach mach ~base ()); false with Failure _ -> true)

let test_many_restarts_pkey_recycling () =
  let mach, h = mkheap () in
  ignore (alloc_exn h 64);
  let href = ref h in
  (* more restarts than there are MPK keys: keys must recycle *)
  for _ = 1 to 40 do
    Memdev.crash (Machine.dev mach) `Strict;
    href := H.attach mach ~base ()
  done;
  H.check_invariants !href;
  check_int "object survived all restarts" 64 (H.stats !href).H.live_bytes

(* ---------- wrpkru lockdown (8 extension) ---------- *)

let test_lockdown () =
  let mach, h = mkheap () in
  let p = alloc_exn h 64 in
  H.lockdown h;
  (* an attacker's wrpkru gadget is refused... *)
  check "hijack denied" true
    (try Machine.wrpkru mach (H.pkey h) Mpk.Read_write; false
     with Mpk.Wrpkru_denied _ -> true);
  (* ...while the heap keeps operating normally, including recovery *)
  H.free h p;
  ignore (alloc_exn h 128);
  Memdev.crash (Machine.dev mach) `Strict;
  let h2 = H.attach mach ~base () in
  H.check_invariants h2;
  check_int "state preserved" 128 (H.stats h2).H.live_bytes

(* ---------- property: random traces ---------- *)

let random_trace ~ops ~seed ~crash =
  let mach, h = mkheap ~sub_data_size:(1 lsl 18) ~base_buckets:32 () in
  let rng = Prng.create seed in
  let live = ref [] in
  let model = Hashtbl.create 64 in (* raw -> size *)
  for _ = 1 to ops do
    if Prng.bool rng || !live = [] then begin
      let size = 32 lsl Prng.int rng 6 in
      match H.alloc h size with
      | Some p ->
        live := p :: !live;
        Hashtbl.replace model (H.get_rawptr h p) (L.round_up size)
      | None -> ()
    end
    else begin
      let n = Prng.int rng (List.length !live) in
      let p = List.nth !live n in
      live := List.filteri (fun i _ -> i <> n) !live;
      Hashtbl.remove model (H.get_rawptr h p);
      H.free h p
    end
  done;
  if crash then begin
    Memdev.crash (Machine.dev mach) `Strict;
    let h2 = H.attach mach ~base () in
    H.check_invariants h2;
    (* every live object still allocated with its size *)
    let expected = Hashtbl.fold (fun _ s acc -> acc + s) model 0 in
    (H.stats h2).H.live_bytes = expected
  end
  else begin
    H.check_invariants h;
    let expected = Hashtbl.fold (fun _ s acc -> acc + s) model 0 in
    (H.stats h).H.live_bytes = expected
  end

let prop_random_trace =
  QCheck.Test.make ~name:"random alloc/free traces keep invariants" ~count:20
    QCheck.small_nat
    (fun seed -> random_trace ~ops:400 ~seed ~crash:false)

let prop_random_trace_crash =
  QCheck.Test.make ~name:"random traces survive crash+recovery" ~count:15
    QCheck.small_nat
    (fun seed -> random_trace ~ops:250 ~seed ~crash:true)

let prop_no_overlap =
  QCheck.Test.make ~name:"live allocations never overlap" ~count:15
    QCheck.small_nat
    (fun seed ->
      let _, h = mkheap ~sub_data_size:(1 lsl 17) ~base_buckets:32 () in
      let rng = Prng.create (seed + 1000) in
      let live = ref [] in
      for _ = 1 to 300 do
        if Prng.bool rng || !live = [] then begin
          let size = 32 lsl Prng.int rng 5 in
          match H.alloc h size with
          | Some p -> live := (H.get_rawptr h p, L.round_up size, p) :: !live
          | None -> ()
        end
        else begin
          match !live with
          | (_, _, p) :: rest ->
            H.free h p;
            live := rest
          | [] -> ()
        end
      done;
      let sorted =
        List.sort (fun (a, _, _) (b, _, _) -> compare a b) !live
      in
      let rec disjoint = function
        | (a, sa, _) :: ((b, _, _) :: _ as rest) ->
          a + sa <= b && disjoint rest
        | _ -> true
      in
      disjoint sorted)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_random_trace; prop_random_trace_crash; prop_no_overlap ]

let () =
  Alcotest.run "poseidon"
    [ ( "layout",
        [ Alcotest.test_case "no overlaps" `Quick test_layout_no_overlaps;
          Alcotest.test_case "class_of_size" `Quick test_class_of_size;
          Alcotest.test_case "round_up" `Quick test_round_up_pow2 ] );
      ( "alloc",
        [ Alcotest.test_case "roundtrip" `Quick test_alloc_free_roundtrip;
          Alcotest.test_case "zero/negative" `Quick test_alloc_zero_and_negative;
          Alcotest.test_case "too big" `Quick test_alloc_too_big;
          Alcotest.test_case "distinct regions" `Quick test_alloc_distinct_regions;
          Alcotest.test_case "reuse after free" `Quick test_free_enables_reuse;
          Alcotest.test_case "accounting" `Quick test_exact_pool_accounting;
          Alcotest.test_case "interleaved sizes" `Quick test_interleaved_sizes ] );
      ( "safety",
        [ Alcotest.test_case "metadata isolation" `Quick test_data_region_isolation;
          Alcotest.test_case "unprotected mode" `Quick test_unprotected_mode;
          Alcotest.test_case "double free" `Quick test_double_free_rejected;
          Alcotest.test_case "invalid free" `Quick test_invalid_free_rejected;
          Alcotest.test_case "foreign pointers" `Quick test_foreign_pointer_free;
          Alcotest.test_case "wrpkru lockdown" `Quick test_lockdown ] );
      ( "pointers",
        [ Alcotest.test_case "roundtrip" `Quick test_pointer_roundtrip;
          Alcotest.test_case "validation" `Quick test_rawptr_validation;
          Alcotest.test_case "pack/unpack" `Quick test_pack_unpack;
          Alcotest.test_case "root" `Quick test_root_pointer ] );
      ( "defrag",
        [ Alcotest.test_case "split/merge roundtrip" `Quick
            test_split_then_merge_roundtrip;
          Alcotest.test_case "full merge" `Quick test_full_merge_restores_single_block ] );
      ( "subheaps",
        [ Alcotest.test_case "per-CPU" `Quick test_per_cpu_subheaps;
          Alcotest.test_case "cross-thread free" `Quick test_cross_thread_free;
          Alcotest.test_case "single mode" `Quick test_single_subheap_mode ] );
      ( "tx",
        [ Alcotest.test_case "commit" `Quick test_tx_commit;
          Alcotest.test_case "rollback on crash" `Quick test_tx_rollback_on_crash;
          Alcotest.test_case "abort" `Quick test_tx_abort ] );
      ( "hash",
        [ Alcotest.test_case "extension" `Quick test_hash_extension;
          Alcotest.test_case "shrink/punch" `Quick test_shrink_metadata ] );
      ( "restart",
        [ Alcotest.test_case "clean attach" `Quick test_attach_clean;
          Alcotest.test_case "bad magic" `Quick test_attach_bad_magic;
          Alcotest.test_case "pkey recycling" `Quick test_many_restarts_pkey_recycling ] );
      ("properties", qsuite) ]
