(* Tests for the persistency model checker (lib/crashcheck): exhaustive
   crash-point sweeps of the five covered operation paths must verify
   recovery everywhere, budgets must bound the sweep, counterexamples
   must replay from their recorded coordinates, and — the mutation
   sanity check — a deliberately-broken missing-flush protocol must be
   caught. *)

module C = Crashcheck
module H = Poseidon.Heap

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let sweep_clean mk min_points () =
  let scn = mk () in
  let r = C.run ~subsets_per_point:1 scn in
  List.iter
    (fun cx -> Alcotest.failf "%s" (Format.asprintf "%a" C.pp_counterexample cx))
    r.C.counterexamples;
  check "sweep covers the whole operation" true
    (r.C.points_explored >= min_points);
  (* every point ran dirty-lost-all + 1 subset, all verified *)
  check_int "all recoveries verified" (2 * r.C.points_explored)
    r.C.recoveries_verified

(* exhaustive sweeps, one per covered operation path; minimum point
   counts keep the scenarios honest about actually exercising fences *)
let test_sweep_alloc = sweep_clean C.scn_alloc 30
let test_sweep_free = sweep_clean C.scn_free 20
let test_sweep_tx_commit = sweep_clean C.scn_tx_commit 20
let test_sweep_tx_abort = sweep_clean C.scn_tx_abort 20
let test_sweep_extend = sweep_clean C.scn_extend 50

let test_hundred_points_across_operations () =
  (* the standing acceptance bar: >= 100 distinct crash points across
     the five operations, each recovery verified *)
  let reports = List.map (C.run ~subsets_per_point:0) (C.all_scenarios ()) in
  let points = List.fold_left (fun a r -> a + r.C.points_explored) 0 reports in
  check "over 100 distinct crash points" true (points >= 100);
  List.iter
    (fun r ->
      check_int
        (Printf.sprintf "%s: every point's recovery verified" r.C.rp_scenario)
        r.C.points_explored r.C.recoveries_verified)
    reports

let test_extend_scenario_extends_hash () =
  (* the extend sweep is only meaningful if the op really grows the
     sub-heap hash table *)
  let scn = C.scn_extend () in
  let env = scn.C.setup () in
  scn.C.op env;
  check "hash extension exercised" true ((H.stats env.C.heap).H.hash_extends > 0)

let test_measure_deterministic () =
  let scn = C.scn_alloc () in
  check_int "same fence count on every dry run" (C.measure scn) (C.measure scn)

let test_budget_caps_points () =
  let r = C.run ~max_points:5 ~subsets_per_point:0 (C.scn_alloc ()) in
  check_int "budget respected" 5 r.C.points_explored;
  check "budget still samples the full span" true (r.C.fences_total > 5);
  let r1 = C.run ~max_points:1 ~subsets_per_point:0 (C.scn_alloc ()) in
  check_int "degenerate budget" 1 r1.C.points_explored

let test_subsets_budget () =
  let r = C.run ~max_points:3 ~subsets_per_point:4 (C.scn_free ()) in
  check_int "subsets per point honoured" (3 * 4) r.C.subsets_tried;
  check_int "strict + subsets all verified" (3 * 5) r.C.recoveries_verified

(* ---------- mutation sanity check ---------- *)

let test_broken_protocol_detected () =
  let r = C.run ~subsets_per_point:1 (C.scn_broken_missing_flush ()) in
  check "missing flush caught" true (r.C.counterexamples <> []);
  let cx = List.hd r.C.counterexamples in
  Alcotest.(check string) "the app oracle flags it" "app-commit" cx.C.cx_oracle;
  (* dirty-lost-all at the flag's fence is the deterministic witness *)
  check "found at a real persistence point" true
    (cx.C.cx_point >= 1 && cx.C.cx_point <= r.C.fences_total + 1)

let test_counterexample_replays () =
  (* a counterexample's recorded coordinates (scenario, point, mode)
     must reproduce it on a fresh scenario instance — seed-replayable *)
  let r = C.run ~subsets_per_point:1 (C.scn_broken_missing_flush ()) in
  List.iter
    (fun cx ->
      let scn = Option.get (C.scenario_by_name cx.C.cx_scenario) in
      match C.check_point scn ~point:cx.C.cx_point ~mode:cx.C.cx_mode with
      | Some cx' ->
        Alcotest.(check string) "same oracle on replay" cx.C.cx_oracle
          cx'.C.cx_oracle
      | None -> Alcotest.fail "counterexample did not replay")
    r.C.counterexamples;
  (* adversarial subsets are seeded: at least the strict mode must be
     among the counterexamples, and derived seeds must be stable *)
  check "strict counterexample present" true
    (List.exists (fun cx -> cx.C.cx_mode = C.Dirty_lost_all) r.C.counterexamples);
  check_int "subset seed derivation is stable"
    (C.subset_seed ~seed:1 ~point:7 0)
    (C.subset_seed ~seed:1 ~point:7 0)

let test_healthy_point_is_green () =
  match C.check_point (C.scn_alloc ()) ~point:3 ~mode:C.Dirty_lost_all with
  | None -> ()
  | Some cx -> Alcotest.failf "unexpected: %s" cx.C.cx_detail

let test_obs_counters_advance () =
  let get name =
    Option.value ~default:0
      (Obs.Metrics.get_counter ~scope:"crashcheck" name)
  in
  let p0 = get "points_explored" and v0 = get "recoveries_verified" in
  let r = C.run ~max_points:4 ~subsets_per_point:1 (C.scn_tx_commit ()) in
  check_int "points counted" (p0 + r.C.points_explored) (get "points_explored");
  check_int "verifications counted"
    (v0 + r.C.recoveries_verified)
    (get "recoveries_verified")

let () =
  Alcotest.run "crashcheck"
    [ ( "sweeps",
        [ Alcotest.test_case "alloc path exhaustive" `Quick test_sweep_alloc;
          Alcotest.test_case "free path exhaustive" `Quick test_sweep_free;
          Alcotest.test_case "tx-commit path exhaustive" `Quick
            test_sweep_tx_commit;
          Alcotest.test_case "tx-abort path exhaustive" `Quick
            test_sweep_tx_abort;
          Alcotest.test_case "extend path exhaustive" `Slow test_sweep_extend;
          Alcotest.test_case "100+ points across operations" `Slow
            test_hundred_points_across_operations;
          Alcotest.test_case "extend really extends" `Quick
            test_extend_scenario_extends_hash ] );
      ( "budgets",
        [ Alcotest.test_case "measure deterministic" `Quick
            test_measure_deterministic;
          Alcotest.test_case "max-points budget" `Quick test_budget_caps_points;
          Alcotest.test_case "subsets budget" `Quick test_subsets_budget ] );
      ( "mutation",
        [ Alcotest.test_case "missing flush detected" `Quick
            test_broken_protocol_detected;
          Alcotest.test_case "counterexamples replay" `Quick
            test_counterexample_replays;
          Alcotest.test_case "healthy point green" `Quick
            test_healthy_point_is_green ] );
      ( "obs",
        [ Alcotest.test_case "counters advance" `Quick
            test_obs_counters_advance ] ) ]
