(* Tests for the persistent B+-tree: inserts/finds/deletes against a
   reference model, splits at every level, scans, concurrency, and
   allocator-genericity (the tree must behave identically on all
   three allocators). *)

module Prng = Repro_util.Prng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let base = 1 lsl 30

let poseidon_inst () =
  let mach = Machine.create () in
  let h =
    Poseidon.Heap.create mach ~base ~size:(1 lsl 36) ~heap_id:1
      ~sub_data_size:(1 lsl 24) ()
  in
  (mach, Poseidon.instance h)

let all_insts () =
  [ (fun () -> poseidon_inst ());
    (fun () ->
      let mach = Machine.create () in
      (mach, Pmdk_sim.instance (Pmdk_sim.Heap.create mach ~base ~size:(1 lsl 26) ~heap_id:1 ())));
    (fun () ->
      let mach = Machine.create () in
      (mach, Makalu_sim.instance (Makalu_sim.Heap.create mach ~base ~size:(1 lsl 26) ~heap_id:1))) ]

let test_empty_tree () =
  let _, inst = poseidon_inst () in
  let t = Btree.create inst in
  check "missing" true (Btree.find t 42 = None);
  check_int "empty count" 0 (Btree.count_keys t);
  check_int "depth 1" 1 (Btree.tree_depth t)

let test_single_insert () =
  let _, inst = poseidon_inst () in
  let t = Btree.create inst in
  Btree.insert t ~key:5 ~value:50;
  check "found" true (Btree.find t 5 = Some 50);
  check "other missing" true (Btree.find t 6 = None)

let test_update_in_place () =
  let _, inst = poseidon_inst () in
  let t = Btree.create inst in
  Btree.insert t ~key:5 ~value:50;
  Btree.insert t ~key:5 ~value:99;
  check "updated" true (Btree.find t 5 = Some 99);
  check_int "no duplicate" 1 (Btree.count_keys t)

let test_key_zero_rejected () =
  let _, inst = poseidon_inst () in
  let t = Btree.create inst in
  check "zero key rejected" true
    (try Btree.insert t ~key:0 ~value:1; false with Invalid_argument _ -> true)

let test_sequential_inserts_split () =
  let _, inst = poseidon_inst () in
  let t = Btree.create inst in
  for k = 1 to 1000 do
    Btree.insert t ~key:k ~value:(k * 10)
  done;
  Btree.check t;
  check "depth grew" true (Btree.tree_depth t >= 3);
  check_int "count" 1000 (Btree.count_keys t);
  let ok = ref true in
  for k = 1 to 1000 do
    if Btree.find t k <> Some (k * 10) then ok := false
  done;
  check "all found" true !ok

let test_reverse_inserts () =
  let _, inst = poseidon_inst () in
  let t = Btree.create inst in
  for k = 1000 downto 1 do
    Btree.insert t ~key:k ~value:k
  done;
  Btree.check t;
  check_int "count" 1000 (Btree.count_keys t);
  check "first" true (Btree.find t 1 = Some 1);
  check "last" true (Btree.find t 1000 = Some 1000)

let test_random_vs_model () =
  List.iter
    (fun mk ->
      let _, inst = mk () in
      let t = Btree.create inst in
      let model = Hashtbl.create 64 in
      let rng = Prng.create 31 in
      for _ = 1 to 3000 do
        let k = 1 + Prng.int rng 999 in
        match Prng.int rng 3 with
        | 0 | 1 ->
          let v = Prng.int rng 100000 in
          Btree.insert t ~key:k ~value:v;
          Hashtbl.replace model k v
        | _ ->
          let deleted = Btree.delete t k in
          check "delete agrees with model" (Hashtbl.mem model k) deleted;
          Hashtbl.remove model k
      done;
      Btree.check t;
      check_int "count matches model" (Hashtbl.length model) (Btree.count_keys t);
      Hashtbl.iter
        (fun k v -> check "value matches" true (Btree.find t k = Some v))
        model)
    (all_insts ())

let test_scan () =
  let _, inst = poseidon_inst () in
  let t = Btree.create inst in
  for k = 1 to 200 do
    Btree.insert t ~key:(k * 2) ~value:k
  done;
  let seen = ref [] in
  Btree.scan t ~from_key:100 ~n:10 (fun k _ -> seen := k :: !seen);
  Alcotest.(check (list int)) "scan range"
    [ 100; 102; 104; 106; 108; 110; 112; 114; 116; 118 ]
    (List.rev !seen)

let test_scan_crosses_leaves () =
  let _, inst = poseidon_inst () in
  let t = Btree.create inst in
  for k = 1 to 500 do
    Btree.insert t ~key:k ~value:k
  done;
  let n = ref 0 in
  let last = ref 0 in
  let sorted = ref true in
  Btree.scan t ~from_key:1 ~n:500 (fun k _ ->
      incr n;
      if k <= !last then sorted := false;
      last := k);
  check_int "full scan" 500 !n;
  check "ascending across leaves" true !sorted

let test_fold_range () =
  let _, inst = poseidon_inst () in
  let t = Btree.create inst in
  for k = 1 to 200 do
    Btree.insert t ~key:k ~value:(k * 3)
  done;
  let sum =
    Btree.fold_range t ~from_key:50 ~to_key:60 ~init:0 (fun acc k v ->
        check_int "fold sees the stored value" (k * 3) v;
        acc + k)
  in
  check_int "inclusive bounds" (11 * 55) sum;
  check_int "range past the last key folds init" (-1)
    (Btree.fold_range t ~from_key:300 ~to_key:400 ~init:(-1)
       (fun _ _ _ -> 0));
  check_int "inverted bounds fold nothing" 7
    (Btree.fold_range t ~from_key:60 ~to_key:50 ~init:7
       (fun acc _ _ -> acc + 1))

let test_cursor () =
  let _, inst = poseidon_inst () in
  let t = Btree.create inst in
  let keys = [ 3; 7; 12; 100; 101; 250 ] in
  List.iter (fun k -> Btree.insert t ~key:k ~value:(k + 1)) keys;
  let c = Btree.cursor_open t ~from_key:5 in
  let rec drain acc =
    match Btree.cursor_next c with
    | Some (k, v) ->
      check_int "cursor value" (k + 1) v;
      drain (k :: acc)
    | None -> List.rev acc
  in
  Alcotest.(check (list int)) "ordered suffix from 5"
    [ 7; 12; 100; 101; 250 ] (drain []);
  check "an exhausted cursor stays exhausted" true
    (Btree.cursor_next c = None);
  let c2 = Btree.cursor_open t ~from_key:1000 in
  check "cursor past the last key is empty" true (Btree.cursor_next c2 = None)

let test_cursor_across_leaves () =
  let _, inst = poseidon_inst () in
  let t = Btree.create inst in
  for k = 1 to 500 do
    Btree.insert t ~key:k ~value:(k * 2)
  done;
  let c = Btree.cursor_open t ~from_key:1 in
  let n = ref 0
  and last = ref 0
  and ok = ref true in
  let rec go () =
    match Btree.cursor_next c with
    | Some (k, v) ->
      if k <= !last || v <> k * 2 then ok := false;
      last := k;
      incr n;
      go ()
    | None -> ()
  in
  go ();
  check_int "cursor walks every entry" 500 !n;
  check "ascending with correct values" true !ok

let test_delete_then_reinsert () =
  let _, inst = poseidon_inst () in
  let t = Btree.create inst in
  for k = 1 to 100 do
    Btree.insert t ~key:k ~value:k
  done;
  for k = 1 to 100 do
    check "delete ok" true (Btree.delete t k)
  done;
  check_int "empty" 0 (Btree.count_keys t);
  for k = 1 to 100 do
    Btree.insert t ~key:k ~value:(k + 1)
  done;
  check_int "reinserted" 100 (Btree.count_keys t);
  check "new values" true (Btree.find t 50 = Some 51)

let test_delete_missing () =
  let _, inst = poseidon_inst () in
  let t = Btree.create inst in
  Btree.insert t ~key:5 ~value:5;
  check "missing delete false" false (Btree.delete t 6)

let test_concurrent_inserts () =
  let mach, inst = poseidon_inst () in
  let t = Btree.create inst in
  let threads = 8 and per = 1000 in
  let _ =
    Machine.parallel mach ~threads (fun i ->
        for j = 0 to per - 1 do
          Btree.insert t ~key:(1 + (j * threads) + i) ~value:(i * 100000 + j)
        done)
  in
  Btree.check t;
  check_int "all inserted" (threads * per) (Btree.count_keys t);
  let ok = ref true in
  for i = 0 to threads - 1 do
    for j = 0 to per - 1 do
      if Btree.find t (1 + (j * threads) + i) <> Some ((i * 100000) + j) then
        ok := false
    done
  done;
  check "all values correct" true !ok

let test_concurrent_mixed_readers_writers () =
  let mach, inst = poseidon_inst () in
  let t = Btree.create inst in
  for k = 1 to 2000 do
    Btree.insert t ~key:k ~value:k
  done;
  let anomalies = ref 0 in
  let _ =
    Machine.parallel mach ~threads:8 (fun i ->
        let rng = Prng.create i in
        for _ = 1 to 500 do
          let k = 1 + Prng.int rng 2000 in
          if i mod 2 = 0 then begin
            (* readers: loaded keys must always be visible *)
            match Btree.find t k with
            | Some _ -> ()
            | None -> incr anomalies
          end
          else Btree.insert t ~key:(2000 + Prng.int rng 2000 + 1) ~value:k
        done)
  in
  Btree.check t;
  check_int "no lost reads" 0 !anomalies

(* Regression: a lock-free cursor must not repeat or skip keys when
   the leaf it sits on is split or shifted by concurrent inserts (a
   cached slot index goes stale the moment the leaf changes).  The
   reader walks the odd keys — present for the cursor's whole lifetime
   — while the writer interleaves the even keys, splitting the
   reader's leaves under it.  Strict ascent rules out re-yielded
   relocated entries; the odd count rules out skips. *)
let test_cursor_vs_concurrent_splits () =
  let mach, inst = poseidon_inst () in
  let t = Btree.create inst in
  let n = 1000 in
  for i = 0 to n - 1 do
    Btree.insert t ~key:((2 * i) + 1) ~value:(2 * i + 2)
  done;
  let bad_order = ref 0 and bad_value = ref 0 and seen_odd = ref 0 in
  let _ =
    Machine.parallel mach ~threads:2 (fun i ->
        if i = 0 then
          for j = 1 to n do
            Btree.insert t ~key:(2 * j) ~value:((2 * j) + 1)
          done
        else begin
          let c = Btree.cursor_open t ~from_key:1 in
          let last = ref 0 in
          let rec go () =
            match Btree.cursor_next c with
            | Some (k, v) ->
              if k <= !last then incr bad_order;
              if v <> k + 1 then incr bad_value;
              if k land 1 = 1 then incr seen_odd;
              last := k;
              go ()
            | None -> ()
          in
          go ()
        end)
  in
  Btree.check t;
  check_int "strictly ascending under splits" 0 !bad_order;
  check_int "every yielded value intact" 0 !bad_value;
  check_int "every long-lived key yielded exactly once" n !seen_odd

(* Regression: [find] must never report a present key absent because
   a racing split relocated it to the right sibling between the
   descent and the leaf probe (the FAST-FAIR reader retry). *)
let test_find_vs_concurrent_splits () =
  let mach, inst = poseidon_inst () in
  let t = Btree.create inst in
  let n = 1000 in
  for i = 0 to n - 1 do
    Btree.insert t ~key:((2 * i) + 1) ~value:(2 * i + 2)
  done;
  let misses = ref 0 in
  let _ =
    Machine.parallel mach ~threads:4 (fun i ->
        if i = 0 then
          for j = 1 to n do
            Btree.insert t ~key:(2 * j) ~value:((2 * j) + 1)
          done
        else begin
          let rng = Prng.create (100 + i) in
          for _ = 1 to 1500 do
            let k = (2 * Prng.int rng n) + 1 in
            match Btree.find t k with
            | Some v when v = k + 1 -> ()
            | _ -> incr misses
          done
        end)
  in
  check_int "a present key is never reported absent mid-split" 0 !misses

let test_crash_at_every_split_boundary () =
  (* crash at many persistence points while inserting; after attach,
     every key whose insert call returned must be findable (the
     sibling chain covers splits whose separator never reached the
     parent) *)
  let exception Crash_now in
  for k_fence = 1 to 40 do
    let mach, inst = poseidon_inst () in
    let t = Btree.create inst in
    (* preload enough to make splits imminent *)
    for k = 1 to 93 do
      Btree.insert t ~key:(k * 10) ~value:k
    done;
    let dev = Machine.dev mach in
    Nvmm.Memdev.reset_counters dev;
    let completed = ref [] in
    Nvmm.Memdev.set_fence_hook dev
      (Some (fun n -> if n >= k_fence then raise Crash_now));
    (try
       for k = 1 to 40 do
         let key = (k * 10) + 1 in
         Btree.insert t ~key ~value:k;
         completed := key :: !completed
       done
     with Crash_now -> ());
    Nvmm.Memdev.set_fence_hook dev None;
    Nvmm.Memdev.crash dev `Strict;
    let h2 = Poseidon.Heap.attach mach ~base () in
    let t2 = Btree.attach (Poseidon.instance h2) in
    (* preloaded keys all survive *)
    for k = 1 to 93 do
      check "preloaded key survives" true (Btree.find t2 (k * 10) = Some k)
    done;
    (* completed inserts all survive *)
    List.iter
      (fun key -> check "completed insert survives" true
          (Btree.find t2 key <> None))
      !completed
  done

let test_persistence_across_crash () =
  (* tree nodes live in NVMM; after a crash + attach of the allocator,
     the tree is reachable from the heap root *)
  let mach, inst = poseidon_inst () in
  let t = Btree.create inst in
  for k = 1 to 300 do
    Btree.insert t ~key:k ~value:(k * 7)
  done;
  Nvmm.Memdev.crash (Machine.dev mach) `Strict;
  let h2 = Poseidon.Heap.attach mach ~base () in
  let inst2 = Poseidon.instance h2 in
  let t2 = Btree.attach inst2 in
  Btree.check t2;
  check_int "count preserved" 300 (Btree.count_keys t2);
  check "value preserved" true (Btree.find t2 123 = Some 861)

let prop_btree_model =
  QCheck.Test.make ~name:"btree agrees with a map model" ~count:25
    QCheck.(list (pair (int_range 1 500) (int_range 0 10_000)))
    (fun kvs ->
      let _, inst = poseidon_inst () in
      let t = Btree.create inst in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (k, v) ->
          Btree.insert t ~key:k ~value:v;
          Hashtbl.replace model k v)
        kvs;
      Btree.check t;
      Hashtbl.fold (fun k v ok -> ok && Btree.find t k = Some v) model true
      && Btree.count_keys t = Hashtbl.length model)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_btree_model ]

let () =
  Alcotest.run "btree"
    [ ( "basic",
        [ Alcotest.test_case "empty" `Quick test_empty_tree;
          Alcotest.test_case "single" `Quick test_single_insert;
          Alcotest.test_case "update" `Quick test_update_in_place;
          Alcotest.test_case "key zero" `Quick test_key_zero_rejected ] );
      ( "splits",
        [ Alcotest.test_case "sequential" `Quick test_sequential_inserts_split;
          Alcotest.test_case "reverse" `Quick test_reverse_inserts ] );
      ( "model",
        [ Alcotest.test_case "random ops, all allocators" `Quick
            test_random_vs_model ]
        @ qsuite );
      ( "scan",
        [ Alcotest.test_case "range" `Quick test_scan;
          Alcotest.test_case "across leaves" `Quick test_scan_crosses_leaves;
          Alcotest.test_case "fold_range" `Quick test_fold_range;
          Alcotest.test_case "cursor" `Quick test_cursor;
          Alcotest.test_case "cursor across leaves" `Quick
            test_cursor_across_leaves ] );
      ( "delete",
        [ Alcotest.test_case "delete/reinsert" `Quick test_delete_then_reinsert;
          Alcotest.test_case "missing" `Quick test_delete_missing ] );
      ( "concurrency",
        [ Alcotest.test_case "parallel inserts" `Quick test_concurrent_inserts;
          Alcotest.test_case "readers/writers" `Quick
            test_concurrent_mixed_readers_writers;
          Alcotest.test_case "cursor vs splits" `Quick
            test_cursor_vs_concurrent_splits;
          Alcotest.test_case "find vs splits" `Quick
            test_find_vs_concurrent_splits ] );
      ( "persistence",
        [ Alcotest.test_case "crash + attach" `Quick test_persistence_across_crash;
          Alcotest.test_case "crash at split boundaries" `Quick
            test_crash_at_every_split_boundary ] ) ]
