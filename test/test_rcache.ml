(* DRAM read-cache tier: CLOCK substrate semantics (second chance,
   vts-guarded snapshot probes, disabled-mode no-ops), fill and
   write-through invalidation through the store, eviction when the
   keyspace exceeds capacity, backup coherence across replicated
   group-applies and the promotion wipe, txn-group invalidation
   atomicity against concurrent snapshot readers, the seeded
   late-invalidation bug observed at unit scale, and bounded
   crashcheck sweeps: kv-rcache-put must be green and rcache-broken
   must be flagged. *)

module Kv = Service.Kv
module H = Poseidon.Heap

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let heap_base = 1 lsl 30

let mk_store ?(mvcc_window = 0) ?(rcache_entries = 0) ~shards () =
  let mach = Machine.create () in
  let heap =
    H.create mach ~base:heap_base ~size:(1 lsl 30) ~heap_id:1
      ~sub_data_size:(1 lsl 20) ()
  in
  let inst = Poseidon.instance heap in
  (mach, inst, Kv.create ~mvcc_window ~rcache_entries inst ~shards ~value_size:64)

(* ---------- Rcache substrate ---------- *)

let test_substrate_probe_fill_kill () =
  let c = Rcache.create ~shards:1 ~entries:4 in
  check "enabled" true (Rcache.enabled c);
  check "cold probe misses" true (Rcache.find c ~shard:0 ~key:1 = None);
  Rcache.insert c ~shard:0 ~key:1 ~digest:11 ~vts:5;
  check "probe after fill hits" true (Rcache.find c ~shard:0 ~key:1 = Some 11);
  (* the vts guard: a snapshot older than the cached version must miss *)
  check "snapshot at the version's commit hits" true
    (Rcache.find_at c ~shard:0 ~key:1 ~ts:5 = Some 11);
  check "later snapshot hits" true
    (Rcache.find_at c ~shard:0 ~key:1 ~ts:9 = Some 11);
  check "earlier snapshot misses (present-but-newer)" true
    (Rcache.find_at c ~shard:0 ~key:1 ~ts:4 = None);
  Rcache.insert c ~shard:0 ~key:1 ~digest:12 ~vts:7;
  check "in-place replacement" true (Rcache.find c ~shard:0 ~key:1 = Some 12);
  check_int "replacement is not a second entry" 1 (Rcache.cached c);
  Rcache.invalidate c ~shard:0 ~key:1;
  check "invalidated entry is gone" true (not (Rcache.mem c ~shard:0 ~key:1));
  let _, _, _, inv = Rcache.stats c in
  check_int "the removal was counted" 1 inv;
  Rcache.invalidate c ~shard:0 ~key:1;
  let _, _, _, inv' = Rcache.stats c in
  check_int "invalidating an absent key is uncounted" 1 inv'

let test_substrate_clock_second_chance () =
  let c = Rcache.create ~shards:1 ~entries:2 in
  Rcache.insert c ~shard:0 ~key:1 ~digest:10 ~vts:0;
  Rcache.insert c ~shard:0 ~key:2 ~digest:20 ~vts:0;
  check_int "full" 2 (Rcache.cached c);
  (* both reference bits are set: one full hand sweep clears them and
     the oldest slot is the victim *)
  Rcache.insert c ~shard:0 ~key:3 ~digest:30 ~vts:0;
  check "oldest unreferenced entry evicted" true
    ((not (Rcache.mem c ~shard:0 ~key:1))
    && Rcache.mem c ~shard:0 ~key:2
    && Rcache.mem c ~shard:0 ~key:3);
  (* re-reference key 3; key 2's bit was cleared by the sweep above,
     so the next eviction must take 2 and give 3 its second chance *)
  ignore (Rcache.find c ~shard:0 ~key:3);
  Rcache.insert c ~shard:0 ~key:4 ~digest:40 ~vts:0;
  check "recently referenced entry survives the sweep" true
    (Rcache.mem c ~shard:0 ~key:3 && not (Rcache.mem c ~shard:0 ~key:2));
  let _, _, ev, _ = Rcache.stats c in
  check_int "both evictions counted" 2 ev;
  check_int "capacity bound holds" 2 (Rcache.cached c);
  Rcache.reset c;
  check_int "reset drops everything" 0 (Rcache.cached c);
  let _, _, ev', _ = Rcache.stats c in
  check_int "reset keeps cumulative statistics" 2 ev'

let test_substrate_disabled_no_ops () =
  let c = Rcache.create ~shards:2 ~entries:0 in
  check "disabled" true (not (Rcache.enabled c));
  Rcache.insert c ~shard:0 ~key:1 ~digest:11 ~vts:0;
  check "insert is a no-op" true (Rcache.find c ~shard:0 ~key:1 = None);
  check "find_at is a no-op" true (Rcache.find_at c ~shard:0 ~key:1 ~ts:9 = None);
  Rcache.invalidate c ~shard:0 ~key:1;
  check "no statistic moved" true (Rcache.stats c = (0, 0, 0, 0));
  check_int "nothing cached" 0 (Rcache.cached c)

(* ---------- fill + write-through invalidation through the store ---------- *)

let test_fill_and_writethrough () =
  let _, _, s = mk_store ~rcache_entries:8 ~shards:2 () in
  ignore (Kv.put s ~key:3 ~vseed:100);
  check "a put does not fill" true (not (Kv.rcache_mem s ~key:3));
  check "read through the tree" true
    (Kv.get s ~key:3 = Some (Kv.value_checksum s ~vseed:100));
  check "the locked read filled the cache" true (Kv.rcache_mem s ~key:3);
  let h0, m0, _, _ = Kv.rcache_stats s in
  check "the first read was a miss" true (m0 > 0);
  check "re-read hits" true
    (Kv.get s ~key:3 = Some (Kv.value_checksum s ~vseed:100));
  let h1, _, _, _ = Kv.rcache_stats s in
  check "the re-read was a hit" true (h1 > h0);
  (* overwrite: the entry must be gone before put returns, and the
     next read must see the new digest *)
  ignore (Kv.put s ~key:3 ~vseed:101);
  check "overwrite invalidated the entry" true (not (Kv.rcache_mem s ~key:3));
  check "read after overwrite is the new value" true
    (Kv.get s ~key:3 = Some (Kv.value_checksum s ~vseed:101));
  ignore (Kv.delete s ~key:3);
  check "delete invalidated the entry" true (not (Kv.rcache_mem s ~key:3));
  check "read after delete is absent" true (Kv.get s ~key:3 = None);
  check "an absent key is never cached" true (not (Kv.rcache_mem s ~key:3))

let test_eviction_keyspace_exceeds_capacity () =
  let _, _, s = mk_store ~rcache_entries:4 ~shards:2 () in
  let keys = List.init 40 (fun i -> i + 1) in
  List.iter (fun k -> ignore (Kv.put s ~key:k ~vseed:(k * 13))) keys;
  for _ = 1 to 2 do
    List.iter
      (fun k ->
        check "every read is correct under eviction pressure" true
          (Kv.get s ~key:k = Some (Kv.value_checksum s ~vseed:(k * 13))))
      keys
  done;
  check "capacity bound holds across shards" true (Kv.rcache_cached s <= 2 * 4);
  let _, _, ev, _ = Kv.rcache_stats s in
  check "evictions happened" true (ev > 0)

(* ---------- backup: replicated applies + the promotion wipe ---------- *)

let test_backup_group_apply_coherent_and_promotion_wipe () =
  (* key shard map for shards:2 (asserted): 3 on shard 0; 4, 5 on 1 *)
  assert (Kv.shard_of ~shards:2 3 = 0);
  assert (Kv.shard_of ~shards:2 4 = 1 && Kv.shard_of ~shards:2 5 = 1);
  let _, _, b = mk_store ~rcache_entries:8 ~shards:2 () in
  List.iter
    (fun (k, vs) -> ignore (Kv.put b ~key:k ~vseed:vs))
    [ (3, 61); (4, 62); (5, 63) ];
  List.iter (fun k -> ignore (Kv.get b ~key:k)) [ 3; 4; 5 ];
  check "the backup's cache is warm" true
    (Kv.rcache_mem b ~key:3 && Kv.rcache_mem b ~key:4 && Kv.rcache_mem b ~key:5);
  (* shipped single-key records land through the chunked commit chain;
     the cache must drop their keys in the same step *)
  Kv.group_apply b ~shard:0 [ Kv.Tput { key = 3; vseed = 64 } ];
  Kv.group_apply b ~shard:1
    [ Kv.Tput { key = 4; vseed = 65 }; Kv.Tdel { key = 5 } ];
  check "applied keys left the cache before the apply returned" true
    ((not (Kv.rcache_mem b ~key:3))
    && (not (Kv.rcache_mem b ~key:4))
    && not (Kv.rcache_mem b ~key:5));
  check "reads after the apply see the shipped values" true
    (Kv.get b ~key:3 = Some (Kv.value_checksum b ~vseed:64)
    && Kv.get b ~key:4 = Some (Kv.value_checksum b ~vseed:65)
    && Kv.get b ~key:5 = None);
  (* a deferred 2PC decide publishes under the backup's own record —
     its keys must leave the cache at publication, not at decide *)
  ignore (Kv.get b ~key:3);
  Kv.txn_backup_prepare b ~txn:77 ~shard:0
    ~ops:[ Kv.Tput { key = 3; vseed = 66 } ];
  check "a prepare alone leaves the cache intact" true (Kv.rcache_mem b ~key:3);
  Kv.txn_backup_decide b ~txn:77 ~shard:0 ~commit:true ~nparts:1;
  check "the publishing decide invalidated the key" true
    (not (Kv.rcache_mem b ~key:3));
  check "the committed slice is readable" true
    (Kv.get b ~key:3 = Some (Kv.value_checksum b ~vseed:66));
  (* promotion: the cache is wiped like the version chains *)
  List.iter (fun k -> ignore (Kv.get b ~key:k)) [ 3; 4 ];
  check "warm again before promotion" true (Kv.rcache_cached b > 0);
  ignore (Kv.txn_resolve_indoubt b);
  check_int "promotion wiped the cache" 0 (Kv.rcache_cached b);
  check "reads refill after promotion" true
    (Kv.get b ~key:3 = Some (Kv.value_checksum b ~vseed:66)
    && Kv.rcache_mem b ~key:3)

(* ---------- txn-group invalidation vs concurrent snapshot readers ------- *)

(* Writers update keys 3 (shard 0) and 4 (shard 1) together through
   {!Kv.txn} with the SAME vseed, so at every committed state the two
   digests are equal.  With the cache armed, a half-invalidated group
   (or an entry surviving its overwrite) would surface as a torn pair
   or an unrepeatable read at a held snapshot — exactly what the
   lock-free readers assert never happens.  The window (64) exceeds
   the writer's commit count, so no reader outlives history. *)
let test_txn_group_invalidation_vs_snapshot_readers () =
  let mach, _, s = mk_store ~mvcc_window:64 ~rcache_entries:8 ~shards:2 () in
  ignore (Kv.put s ~key:3 ~vseed:1000);
  ignore (Kv.put s ~key:4 ~vseed:1000);
  let torn = ref 0 and unrepeatable = ref 0 in
  let _ =
    Machine.parallel mach ~threads:3 (fun i ->
        if i = 0 then
          for v = 1 to 30 do
            ignore
              (Kv.txn s
                 [ Kv.Tput { key = 3; vseed = 1000 + v };
                   Kv.Tput { key = 4; vseed = 1000 + v } ])
          done
        else
          for _ = 1 to 40 do
            let ts = Kv.snapshot s in
            let d3 = Kv.snapshot_get s ~ts ~key:3
            and d4 = Kv.snapshot_get s ~ts ~key:4 in
            if d3 <> d4 then incr torn;
            let d3' = Kv.snapshot_get s ~ts ~key:3
            and d4' = Kv.snapshot_get s ~ts ~key:4 in
            if d3' <> d3 || d4' <> d4 then incr unrepeatable
          done)
  in
  check_int "no torn cross-shard observation through the cache" 0 !torn;
  check_int "reads at a held snapshot are repeatable" 0 !unrepeatable;
  let ts = Kv.snapshot s in
  check "final snapshot equals the live store" true
    (Kv.snapshot_get s ~ts ~key:3 = Kv.get s ~key:3
    && Kv.snapshot_get s ~ts ~key:4 = Kv.get s ~key:4);
  check "the writer's groups invalidated as they went" true
    (let _, _, _, inv = Kv.rcache_stats s in
     inv > 0)

(* ---------- the disabled store is statistics-silent ---------- *)

let test_disabled_store_is_silent () =
  let _, _, s = mk_store ~shards:2 () in
  check_int "knob reads back as off" 0 (Kv.rcache_entries s);
  ignore (Kv.put s ~key:3 ~vseed:5);
  check "reads work" true
    (Kv.get s ~key:3 = Some (Kv.value_checksum s ~vseed:5));
  check "snapshot reads work" true
    (Kv.snapshot_get s ~ts:(Kv.snapshot s) ~key:3 = Kv.get s ~key:3);
  check "no statistic ever moves" true (Kv.rcache_stats s = (0, 0, 0, 0));
  check_int "nothing is cached" 0 (Kv.rcache_cached s)

(* ---------- the seeded bug, observed at unit scale ---------- *)

let test_late_invalidation_window () =
  let _, _, s = mk_store ~rcache_entries:8 ~shards:1 () in
  ignore (Kv.put s ~key:1 ~vseed:10);
  ignore (Kv.get s ~key:1);
  Kv.rcache_break_late_invalidate s;
  ignore (Kv.put s ~key:1 ~vseed:11);
  check "the stale window: a read between mutations sees the old value"
    true
    (Kv.get s ~key:1 = Some (Kv.value_checksum s ~vseed:10));
  (* the next mutation drains the deferred kill *)
  ignore (Kv.put s ~key:2 ~vseed:20);
  check "the next mutation closes the window" true
    (Kv.get s ~key:1 = Some (Kv.value_checksum s ~vseed:11))

(* ---------- crashcheck: correctness sweep + mutation gate ---------- *)

let test_kv_rcache_sweep_green () =
  let scn = Crashcheck.scn_kv_rcache_put () in
  let r = Crashcheck.run ~max_points:6 ~subsets_per_point:1 scn in
  check "bounded kv-rcache-put sweep is green" true
    (r.Crashcheck.counterexamples = []);
  check "recoveries were actually verified" true
    (r.Crashcheck.recoveries_verified > 0)

(* the inverted gate in scripts/check.sh relies on this scenario being
   flaggable: invalidate-after-reply MUST yield a counterexample *)
let test_rcache_broken_flagged () =
  let scn = Crashcheck.scn_rcache_broken () in
  let r = Crashcheck.run ~max_points:6 ~subsets_per_point:1 scn in
  check "checker flags invalidate-after-reply" true
    (r.Crashcheck.counterexamples <> [])

let () =
  Alcotest.run "rcache"
    [ ( "substrate",
        [ Alcotest.test_case "probe / fill / kill + vts guard" `Quick
            test_substrate_probe_fill_kill;
          Alcotest.test_case "CLOCK second chance + capacity bound" `Quick
            test_substrate_clock_second_chance;
          Alcotest.test_case "entries 0 is inert" `Quick
            test_substrate_disabled_no_ops ] );
      ( "store",
        [ Alcotest.test_case "fill + write-through invalidation" `Quick
            test_fill_and_writethrough;
          Alcotest.test_case "eviction under keyspace > capacity" `Quick
            test_eviction_keyspace_exceeds_capacity;
          Alcotest.test_case "disabled store is statistics-silent" `Quick
            test_disabled_store_is_silent;
          Alcotest.test_case "late invalidation window (seeded bug)" `Quick
            test_late_invalidation_window ] );
      ( "replication",
        [ Alcotest.test_case "backup coherent + promotion wipe" `Quick
            test_backup_group_apply_coherent_and_promotion_wipe ] );
      ( "concurrency",
        [ Alcotest.test_case "txn groups vs snapshot readers" `Quick
            test_txn_group_invalidation_vs_snapshot_readers ] );
      ( "crashcheck",
        [ Alcotest.test_case "kv-rcache-put sweep green" `Quick
            test_kv_rcache_sweep_green;
          Alcotest.test_case "rcache-broken flagged" `Quick
            test_rcache_broken_flagged ] ) ]
