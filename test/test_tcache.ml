(* Magazine-cache wrapper (lib/tcache): bin hit/miss/refill/flush
   mechanics, size-class routing with large-alloc fallback, lease
   durability across crashes (published blocks survive, bin residue
   and stashed frees are reclaimed by recovery), pass-through modes,
   store-level equivalence with the uncached path, serve-run metrics
   surfacing, and bounded crashcheck sweeps: kv-tcache-put must be
   green and the tcache-broken mutation must be flagged. *)

module H = Poseidon.Heap
module Memdev = Nvmm.Memdev
module Kv = Service.Kv

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let heap_base = 1 lsl 30
let round_up = Poseidon.Layout.round_up

let mk_wrapped ?(mag = 4) () =
  let mach = Machine.create () in
  let heap =
    H.create mach ~base:heap_base ~size:(1 lsl 30) ~heap_id:1
      ~sub_data_size:(1 lsl 20) ()
  in
  let inst, h = Tcache.wrap ~mag (Poseidon.instance heap) in
  (mach, heap, inst, h)

(* ---------- bin mechanics ---------- *)

let test_bin_mechanics () =
  let _, heap, inst, h = mk_wrapped ~mag:4 () in
  let p1 = Alloc_intf.i_alloc inst 64 in
  check "first alloc succeeds" true (p1 <> None);
  let hits, misses, refills, flushes = Tcache.stats h in
  check_int "first alloc is a miss" 1 misses;
  check_int "miss triggers one refill" 1 refills;
  check_int "no hit yet" 0 hits;
  check_int "no flush yet" 0 flushes;
  (* the carve put mag-1 = 3 blocks in the bin: the next three allocs
     pop without touching the allocator *)
  for _ = 1 to 3 do
    check "bin pop succeeds" true (Alloc_intf.i_alloc inst 64 <> None)
  done;
  let hits, misses, refills, _ = Tcache.stats h in
  check_int "three bin hits" 3 hits;
  check_int "still one miss" 1 misses;
  check_int "still one refill" 1 refills;
  (* a fifth alloc finds the bin empty again *)
  ignore (Alloc_intf.i_alloc inst 64);
  let _, misses, refills, _ = Tcache.stats h in
  check_int "empty bin misses again" 2 misses;
  check_int "second refill" 2 refills;
  (* the heap's own statistics mirror the wrapper counters *)
  let s = H.stats heap in
  check_int "heap sees the hits" 3 s.H.tcache_hits;
  check_int "heap sees the misses" 2 s.H.tcache_misses;
  check_int "heap sees the refills" 2 s.H.bin_refills

let test_flush_on_overfull_bin () =
  let _, heap, inst, h = mk_wrapped ~mag:2 () in
  (* allocate enough distinct blocks that freeing them all must push a
     bin past 2 x mag and trigger a bulk flush back down to mag *)
  let ptrs =
    List.init 12 (fun _ -> Option.get (Alloc_intf.i_alloc inst 64))
  in
  List.iter (fun p -> Alloc_intf.i_free inst p) ptrs;
  let _, _, _, flushes = Tcache.stats h in
  check "overfull bin flushed" true (flushes > 0);
  check_int "heap sees the flushes" flushes (H.stats heap).H.bin_flushes;
  (* flushed blocks really went back to the allocator: the heap stays
     self-consistent and nothing leaked *)
  H.check_invariants heap;
  let s = H.stats heap in
  check_int "no block lost to the cache" (H.data_capacity heap)
    (s.H.live_bytes + s.H.free_bytes)

let test_size_class_routing () =
  let _, _, inst, h = mk_wrapped ~mag:4 () in
  (* 33 B rounds to 64: it shares the 64-byte class bin *)
  ignore (Alloc_intf.i_alloc inst 64);
  check "rounded size hits the same class" true
    (Alloc_intf.i_alloc inst 33 <> None);
  let hits, _, _, _ = Tcache.stats h in
  check_int "class sharing produced a hit" 1 hits;
  (* beyond cache_max_size the wrapper falls through to the inner
     allocator: no cache traffic at all *)
  let before = Tcache.stats h in
  check "large alloc falls through" true
    (Alloc_intf.i_alloc inst 8192 <> None);
  check "fallback leaves the counters alone" true (Tcache.stats h = before)

let test_mag_zero_passthrough () =
  let _, heap, inst, h = mk_wrapped ~mag:0 () in
  let p = Option.get (Alloc_intf.i_alloc inst 64) in
  Alloc_intf.i_free inst p;
  check "pass-through does no cache traffic" true
    (Tcache.stats h = (0, 0, 0, 0));
  let s = H.stats heap in
  check_int "heap counters untouched" 0
    (s.H.tcache_hits + s.H.tcache_misses + s.H.bin_refills + s.H.bin_flushes);
  H.check_invariants heap

(* ---------- lease durability across crashes ---------- *)

(* A published singleton allocation survives a strict crash; the
   refill's bin residue (leased, never handed out) is reclaimed by
   recovery — live bytes move by exactly one block. *)
let test_publish_survives_bin_residue_reclaimed () =
  let mach, heap, inst, _ = mk_wrapped ~mag:4 () in
  Memdev.drain (Machine.dev mach);
  let baseline = (H.stats heap).H.live_bytes in
  ignore (Option.get (Alloc_intf.i_alloc inst 64));
  Memdev.crash (Machine.dev mach) `Strict;
  let h2 = H.attach mach ~base:heap_base () in
  H.check_invariants h2;
  check_int "published block survived, 3 leased bin blocks reclaimed"
    (baseline + round_up 64)
    (H.stats h2).H.live_bytes

(* The stash write-ahead: a freed-and-binned block is reclaimed by
   recovery even though the deallocation itself never ran. *)
let test_stash_reclaimed_after_crash () =
  let mach, heap, inst, _ = mk_wrapped ~mag:4 () in
  Memdev.drain (Machine.dev mach);
  let baseline = (H.stats heap).H.live_bytes in
  let p1 = Option.get (Alloc_intf.i_alloc inst 64) in
  let p2 = Option.get (Alloc_intf.i_alloc inst 64) in
  ignore p2;
  Alloc_intf.i_free inst p1;
  Memdev.crash (Machine.dev mach) `Strict;
  let h2 = H.attach mach ~base:heap_base () in
  H.check_invariants h2;
  check_int "stashed free reclaimed, the other block survived"
    (baseline + round_up 64)
    (H.stats h2).H.live_bytes

(* An uncommitted transactional allocation (lease never published)
   vanishes at recovery, exactly like the uncached tx path. *)
let test_unpublished_tx_alloc_rolled_back () =
  let mach, heap, inst, _ = mk_wrapped ~mag:4 () in
  Memdev.drain (Machine.dev mach);
  let baseline = (H.stats heap).H.live_bytes in
  ignore (Alloc_intf.i_tx_alloc inst 64 ~is_end:false);
  (* no tx_commit: the lease publish never happened *)
  Memdev.crash (Machine.dev mach) `Strict;
  let h2 = H.attach mach ~base:heap_base () in
  H.check_invariants h2;
  check_int "uncommitted cached alloc rolled back" baseline
    (H.stats h2).H.live_bytes

let test_reset_returns_all_blocks () =
  let _, heap, inst, h = mk_wrapped ~mag:4 () in
  let baseline = (H.stats heap).H.live_bytes in
  let ptrs =
    List.init 6 (fun _ -> Option.get (Alloc_intf.i_alloc inst 64))
  in
  List.iter (fun p -> Alloc_intf.i_free inst p) ptrs;
  Tcache.reset h;
  H.check_invariants heap;
  check_int "reset drains bins back to the allocator" baseline
    (H.stats heap).H.live_bytes;
  (* the cache still works after a reset *)
  check "post-reset alloc" true (Alloc_intf.i_alloc inst 64 <> None)

(* ---------- store-level equivalence ---------- *)

let kv_workload kv =
  for k = 1 to 60 do
    ignore (Kv.put kv ~key:k ~vseed:(500 + k))
  done;
  for k = 1 to 60 do
    if k mod 3 = 0 then ignore (Kv.delete kv ~key:k)
  done;
  for k = 1 to 60 do
    if k mod 4 = 0 then ignore (Kv.put kv ~key:k ~vseed:(900 + k))
  done

let test_kv_equivalence () =
  let mk wrapped =
    let mach = Machine.create () in
    let heap =
      H.create mach ~base:heap_base ~size:(1 lsl 30) ~heap_id:1
        ~sub_data_size:(1 lsl 20) ()
    in
    let inst = Poseidon.instance heap in
    let inst =
      if wrapped then fst (Tcache.wrap ~mag:4 inst) else inst
    in
    let kv = Kv.create inst ~shards:2 ~value_size:64 in
    kv_workload kv;
    kv
  in
  let plain = mk false and cached = mk true in
  check_int "same key count" (Kv.count_keys plain) (Kv.count_keys cached);
  for k = 1 to 60 do
    check (Printf.sprintf "key %d reads identically" k) true
      (Kv.get plain ~key:k = Kv.get cached ~key:k)
  done

(* ---------- serve metrics (MVCC gauges + tcache gauges) ---------- *)

let test_serve_metrics_surfaced () =
  let module S = Service.Server in
  let factory = Workloads.Factories.poseidon () in
  let scope = "test/tcache/serve" in
  let cfg =
    { S.default_config with
      S.shards = 2;
      clients = 4;
      rate = 30_000.;
      duration = 0.004;
      keyspace = 256;
      preload = 64;
      mvcc_window = 2;
      tcache_mag = 4;
      scope }
  in
  let r =
    S.run
      ~make:(fun () -> factory.Workloads.Factories.make ())
      ~reattach:(fun mach ->
        Poseidon.instance
          (H.attach mach ~base:Workloads.Factories.heap_base ()))
      cfg
  in
  check "run completed requests" true (r.S.completed > 0);
  check_int "no acked write lost" 0 r.S.ledger.S.mismatches;
  let gauge ?(scope = scope) name = Obs.Metrics.get_gauge ~scope name in
  check "mvcc_truncated_reads gauge present" true
    (gauge "mvcc_truncated_reads" <> None);
  for sh = 0 to 1 do
    let sscope = Printf.sprintf "%s/shard%d" scope sh in
    check
      (Printf.sprintf "shard %d chain-count gauge present" sh)
      true
      (gauge ~scope:sscope "mvcc_chains" <> None);
    check
      (Printf.sprintf "shard %d chain-versions gauge present" sh)
      true
      (gauge ~scope:sscope "mvcc_chain_versions" <> None)
  done;
  let g name = Option.get (gauge name) in
  check "tcache gauges present" true
    (gauge "tcache_hits" <> None
    && gauge "tcache_misses" <> None
    && gauge "tcache_bin_refills" <> None
    && gauge "tcache_bin_flushes" <> None);
  check "the cache actually served traffic" true
    (g "tcache_hits" +. g "tcache_misses" > 0.)

(* ---------- crashcheck sweeps ---------- *)

let test_kv_tcache_sweep_green () =
  let scn = Option.get (Crashcheck.scenario_by_name "kv-tcache-put") in
  let r = Crashcheck.run ~max_points:6 ~subsets_per_point:1 scn in
  check "sweeps points" true (r.Crashcheck.points_explored >= 6);
  check_int "no counterexamples" 0 (List.length r.Crashcheck.counterexamples)

let test_tcache_broken_flagged () =
  let scn = Option.get (Crashcheck.scenario_by_name "tcache-broken") in
  let r = Crashcheck.run ~max_points:10 ~subsets_per_point:1 scn in
  check "the leaseless-recycle mutation is flagged" true
    (r.Crashcheck.counterexamples <> [])

let () =
  Alcotest.run "tcache"
    [ ( "bins",
        [ Alcotest.test_case "hit/miss/refill accounting" `Quick
            test_bin_mechanics;
          Alcotest.test_case "overfull bin flushes in bulk" `Quick
            test_flush_on_overfull_bin;
          Alcotest.test_case "size-class routing + large fallback" `Quick
            test_size_class_routing;
          Alcotest.test_case "mag 0 is a pass-through" `Quick
            test_mag_zero_passthrough ] );
      ( "crash",
        [ Alcotest.test_case "publish survives, bin residue reclaimed"
            `Quick test_publish_survives_bin_residue_reclaimed;
          Alcotest.test_case "stashed free reclaimed" `Quick
            test_stash_reclaimed_after_crash;
          Alcotest.test_case "unpublished tx alloc rolled back" `Quick
            test_unpublished_tx_alloc_rolled_back;
          Alcotest.test_case "reset returns every cached block" `Quick
            test_reset_returns_all_blocks ] );
      ( "store",
        [ Alcotest.test_case "cached store = uncached store" `Quick
            test_kv_equivalence;
          Alcotest.test_case "serve surfaces mvcc + tcache gauges" `Quick
            test_serve_metrics_surfaced ] );
      ( "crashcheck",
        [ Alcotest.test_case "kv-tcache-put sweep green" `Quick
            test_kv_tcache_sweep_green;
          Alcotest.test_case "tcache-broken flagged" `Quick
            test_tcache_broken_flagged ] ) ]
