(** Benchmark harness: regenerates every evaluation artefact of the
    paper (Figures 3, 6, 7, 8, 9) plus the design-choice ablations
    called out in DESIGN.md, and a Bechamel wall-clock suite for the
    allocator hot paths.

    By default every figure runs at a scaled-down size so the whole
    suite finishes in a few minutes; [--full] approaches paper-scale
    parameters.  Throughput numbers are simulated-machine throughput
    (see lib/machine); the shapes, orderings and crossovers are the
    reproduction targets, not the absolute values. *)

module Tablefmt = Repro_util.Tablefmt

let thread_counts = ref [ 1; 2; 4; 8; 16; 32; 48; 64 ]
let full = ref false
let figures = ref []
let ablations = ref []
let run_bechamel = ref false
let smoke = ref false
let suite = ref ""
let json_out = ref ""

(* Every measured cell also lands in the metrics registry, so each run
   ends with a machine-readable BENCH_*.json snapshot next to the
   human-readable tables. *)
let record ~title ~name ~threads ~unit v =
  Obs.Metrics.set_gauge ~scope:("bench/" ^ title)
    (Printf.sprintf "%s %s @%dt" name unit threads)
    v;
  v

let scale n = if !full then n * 10 else n

let note fmt = Printf.printf (fmt ^^ "\n%!")

(* ---------- Figure 3 / safety matrix ---------- *)

let figure3 () =
  note "";
  note "### Figure 3 / safety: heap-metadata corruption attacks";
  note "(paper 3.2: a heap overflow corrupts PMDK's in-place metadata;";
  note " Poseidon's segregated, MPK-protected metadata is unaffected.";
  note " 'PMDK+canary' is the paper's 8 mitigation: it converts silent";
  note " corruption into a detected leak.)";
  List.iter
    (fun row ->
      Printf.printf "  %s\n" row.Workloads.Safety.attack;
      List.iter
        (fun (name, outcome) ->
          Printf.printf "    %-12s %s\n" name
            (Workloads.Safety.outcome_to_string outcome))
        row.Workloads.Safety.results)
    (Workloads.Safety.matrix ());
  print_newline ()

(* ---------- generic sweep over allocators and thread counts ---------- *)

let factories () = Workloads.Factories.all ()

let sweep ~title ~unit run =
  let facs = factories () in
  let table =
    Tablefmt.create ~title
      ~columns:
        ("threads"
         :: List.map
              (fun f -> f.Workloads.Factories.name ^ " " ^ unit)
              facs)
  in
  List.iter
    (fun threads ->
      let row =
        List.map
          (fun f ->
            record ~title ~name:f.Workloads.Factories.name ~threads ~unit
              (run ~factory:f ~threads))
          facs
      in
      Tablefmt.add_float_row table (string_of_int threads) row)
    !thread_counts;
  Tablefmt.print table

(* ---------- Figure 6: microbenchmark ---------- *)

let figure6 () =
  note "";
  note "### Figure 6: pairs of 100 mallocs + 100 frees, random order";
  note "(expect: Poseidon scales ~linearly; PMDK saturates past ~16-32";
  note " threads; Makalu collapses for sizes > 400 B)";
  let sizes = [ 256; 1024; 4096; 128 * 1024; 256 * 1024; 512 * 1024 ] in
  List.iter
    (fun size ->
      let per_thread = if size <= 4096 then scale 400 else scale 200 in
      sweep
        ~title:(Printf.sprintf "Fig 6 - %d B allocations" size)
        ~unit:"Mops/s"
        (fun ~factory ~threads ->
          Workloads.Microbench.run ~factory ~size ~threads
            ~total_ops:(per_thread * threads) ()))
    sizes

(* ---------- Figure 7: Larson ---------- *)

let figure7 () =
  note "";
  note "### Figure 7: Larson server benchmark (cross-thread frees)";
  note "(expect: Poseidon > PMDK > Makalu, up to ~4x at high threads)";
  let duration_s = if !full then 0.02 else 0.004 in
  sweep ~title:"Fig 7 - Larson" ~unit:"ops/s" (fun ~factory ~threads ->
      Workloads.Larson.run ~factory ~threads ~duration_s ())

(* ---------- Figure 8: high-performance applications ---------- *)

let figure8 () =
  note "";
  note "### Figure 8: Ackermann / Kruskal / N-Queens";
  note "(expect: Poseidon >> Makalu on Ackermann's large allocations;";
  note " Makalu beats PMDK on N-Queens thanks to NUMA-local lazy mapping)";
  sweep ~title:"Fig 8 - Ackermann (large alloc + memoised compute)"
    ~unit:"Mops/s"
    (fun ~factory ~threads ->
      Workloads.Ackermann.run ~factory ~threads
        ~iterations:(scale 16 * threads) ());
  sweep ~title:"Fig 8 - Kruskal (3 x 512 B + MST of order 5)" ~unit:"Mops/s"
    (fun ~factory ~threads ->
      Workloads.Kruskal.run ~factory ~threads
        ~iterations:(scale 100 * threads) ());
  sweep ~title:"Fig 8 - N-Queens (one 32 B alloc per puzzle)" ~unit:"Mops/s"
    (fun ~factory ~threads ->
      Workloads.Nqueens.run ~factory ~threads
        ~iterations:(scale 100 * threads) ())

(* ---------- Figure 9: YCSB on the persistent B+-tree ---------- *)

let figure9 () =
  note "";
  note "### Figure 9: YCSB Load / Workload A over FAST-FAIR-style B+-tree";
  note "(expect: Poseidon ~ PMDK - the index dominates; both flatten past";
  note " ~32 threads on NVMM bandwidth; Makalu degrades past ~16)";
  let records = scale 10000 and operations = scale 10000 in
  let facs = factories () in
  let columns =
    "threads"
    :: List.map (fun f -> f.Workloads.Factories.name ^ " Mops/s") facs
  in
  let load_tbl = Tablefmt.create ~title:"Fig 9 - YCSB Load" ~columns in
  let a_tbl = Tablefmt.create ~title:"Fig 9 - YCSB Workload A" ~columns in
  List.iter
    (fun threads ->
      let results =
        List.map
          (fun factory ->
            Workloads.Ycsb.run ~factory ~threads ~records ~operations ())
          facs
      in
      List.iter2
        (fun (f : Workloads.Factories.factory) r ->
          ignore
            (record ~title:"Fig 9 - YCSB Load" ~name:f.name ~threads
               ~unit:"Mops/s" r.Workloads.Ycsb.load_mops);
          ignore
            (record ~title:"Fig 9 - YCSB Workload A" ~name:f.name ~threads
               ~unit:"Mops/s" r.Workloads.Ycsb.a_mops))
        facs results;
      Tablefmt.add_float_row load_tbl (string_of_int threads)
        (List.map (fun r -> r.Workloads.Ycsb.load_mops) results);
      Tablefmt.add_float_row a_tbl (string_of_int threads)
        (List.map (fun r -> r.Workloads.Ycsb.a_mops) results))
    !thread_counts;
  Tablefmt.print load_tbl;
  Tablefmt.print a_tbl

(* ---------- extensions beyond the paper ---------- *)

(* YCSB workloads B (95 % read) and C (100 % read) in addition to the
   paper's Load/A pair: the allocator matters less as the read share
   grows, so the three allocators should converge from A to C. *)
let extension_ycsb_abc () =
  note "";
  note "### Extension: YCSB A/B/C read-ratio sweep";
  note "(the allocator's influence shrinks as reads dominate)";
  let records = scale 3000 and operations = scale 3000 in
  let facs = factories () in
  let table =
    Tablefmt.create ~title:"YCSB A/B/C at 16 threads (Mops/s)"
      ~columns:[ "workload"; "Poseidon"; "PMDK"; "Makalu" ]
  in
  let results =
    List.map
      (fun factory ->
        Workloads.Ycsb.run_abc ~factory ~threads:16 ~records ~operations ())
      facs
  in
  let row name f = Tablefmt.add_float_row table name (List.map f results) in
  row "Load" (fun r -> r.Workloads.Ycsb.l);
  row "A (50% read)" (fun r -> r.Workloads.Ycsb.a);
  row "B (95% read)" (fun r -> r.Workloads.Ycsb.b);
  row "C (100% read)" (fun r -> r.Workloads.Ycsb.c);
  Tablefmt.print table

(* identical recorded trace replayed on each allocator: the cleanest
   per-operation cost comparison *)
let extension_trace_replay () =
  note "";
  note "### Extension: identical trace replayed on each allocator";
  let table =
    Tablefmt.create ~title:"Recorded trace replay (single thread)"
      ~columns:[ "trace"; "Poseidon ms"; "PMDK ms"; "Makalu ms" ]
  in
  let run_trace name trace =
    let times =
      List.map
        (fun (factory : Workloads.Factories.factory) ->
          let mach, inst = factory.Workloads.Factories.make () in
          let r = Workloads.Trace.replay_timed ~mach inst trace in
          r.Workloads.Trace.simulated_seconds *. 1e3)
        (factories ())
    in
    Tablefmt.add_float_row table name times
  in
  run_trace "small (16-256 B)"
    (Workloads.Trace.random ~seed:1 ~min_size:16 ~max_size:256
       ~events:(scale 2000) ());
  run_trace "mixed (16-4096 B)"
    (Workloads.Trace.random ~seed:2 ~min_size:16 ~max_size:4096
       ~events:(scale 2000) ());
  run_trace "large (64-512 KiB)"
    (Workloads.Trace.random ~seed:3 ~min_size:(64 * 1024)
       ~max_size:(512 * 1024) ~events:(scale 500) ());
  Tablefmt.print table

(* ---------- ablations ---------- *)

(* A2/A3: Poseidon with a single sub-heap shared by all CPUs, and with
   MPK protection off, against stock Poseidon. *)
let ablation_subheap_mpk () =
  note "";
  note "### Ablation - Poseidon design choices (256 B microbenchmark)";
  note "(per-CPU sub-heaps carry the scalability; the MPK toggle is";
  note " nearly free, as 4.3 claims)";
  let single =
    { Workloads.Factories.name = "1 sub-heap";
      make =
        (fun ?cfg () ->
          let mach = Machine.create ?cfg () in
          let heap =
            Poseidon.Heap.create mach ~base:Workloads.Factories.heap_base
              ~size:(1 lsl 38) ~heap_id:1 ~sub_data_size:(16 * 1024 * 1024)
              ~single_subheap:true ()
          in
          (mach, Poseidon.instance heap)) }
  in
  let variants =
    [ Workloads.Factories.poseidon ();
      single;
      { (Workloads.Factories.poseidon ~protected:false ()) with name = "no MPK" } ]
  in
  let table =
    Tablefmt.create ~title:"Ablation - per-CPU sub-heaps and MPK"
      ~columns:
        ("threads"
         :: List.map
              (fun v -> v.Workloads.Factories.name ^ " Mops/s")
              variants)
  in
  List.iter
    (fun threads ->
      let row =
        List.map
          (fun factory ->
            Workloads.Microbench.run ~factory ~size:256 ~threads
              ~total_ops:(scale 400 * threads) ())
          variants
      in
      Tablefmt.add_float_row table (string_of_int threads) row)
    !thread_counts;
  Tablefmt.print table

(* A1: hash-table metadata index vs heap occupancy - allocation cost
   must stay flat as the number of live blocks grows (4.4). *)
let ablation_index () =
  note "";
  note "### Ablation - constant-time metadata index (4.4)";
  note "(alloc+free latency vs live blocks; the multi-level hash table";
  note " keeps it flat regardless of pool occupancy)";
  let mach = Machine.create () in
  let heap =
    Poseidon.Heap.create mach ~base:Workloads.Factories.heap_base
      ~size:(1 lsl 38) ~heap_id:1 ~sub_data_size:(256 * 1024 * 1024) ()
  in
  let inst = Poseidon.instance heap in
  let table =
    Tablefmt.create ~title:"Ablation - alloc latency vs occupancy"
      ~columns:[ "live blocks"; "ns/op" ]
  in
  let live = ref 0 in
  let steps = if !full then 7 else 5 in
  for step = 1 to steps do
    let target = 2000 * (1 lsl step) in
    let _ =
      Machine.parallel mach ~threads:1 (fun _ ->
          while !live < target do
            match Alloc_intf.i_alloc inst 64 with
            | Some _ -> incr live
            | None -> failwith "ablation_index: out of memory"
          done)
    in
    let batch = 2000 in
    let secs =
      Machine.parallel mach ~threads:1 (fun _ ->
          for _ = 1 to batch do
            match Alloc_intf.i_alloc inst 64 with
            | Some p -> Alloc_intf.i_free inst p
            | None -> failwith "ablation_index: out of memory"
          done)
    in
    Tablefmt.add_row table (string_of_int target)
      [ Printf.sprintf "%.0f" (secs *. 1e9 /. float_of_int (2 * batch)) ]
  done;
  Tablefmt.print table

(* 8 future work: the paper suggests "a more advanced index scheme"
   for huge capacities.  Compare the production multi-level table
   (driven through the allocator: alloc/free latency vs population,
   see ablation_index) with a standalone extendible-hash engine on
   raw insert+lookup latency as the population grows. *)
let extension_exthash () =
  note "";
  note "### Extension: extendible hashing as the 8 'advanced index scheme'";
  note "(raw insert+lookup latency vs population; O(1) with exactly one";
  note " directory load per lookup, vs the multi-level table's level scans)";
  let table =
    Tablefmt.create ~title:"Extendible hash index"
      ~columns:[ "population"; "insert ns"; "lookup ns"; "directory depth" ]
  in
  let mach = Machine.create () in
  let base = Workloads.Factories.heap_base in
  Machine.add_region mach ~base ~size:(1 lsl 30) ~kind:Nvmm.Memdev.Nvmm
    ~numa:0;
  let h = Poseidon.Exthash.create mach ~base ~size:(1 lsl 30) in
  let next_key = ref 1 in
  List.iter
    (fun target ->
      let _ =
        Machine.parallel mach ~threads:1 (fun _ ->
            while !next_key <= target do
              Poseidon.Exthash.with_op h (fun ctx ->
                  Poseidon.Exthash.insert ctx h !next_key !next_key);
              incr next_key
            done)
      in
      let batch = 2000 in
      let ins_secs =
        Machine.parallel mach ~threads:1 (fun _ ->
            for i = 0 to batch - 1 do
              Poseidon.Exthash.with_op h (fun ctx ->
                  Poseidon.Exthash.insert ctx h (target + i + 1) i)
            done)
      in
      let look_secs =
        Machine.parallel mach ~threads:1 (fun _ ->
            for i = 1 to batch do
              ignore (Poseidon.Exthash.lookup h i)
            done)
      in
      next_key := target + batch + 1;
      Tablefmt.add_row table (string_of_int target)
        [ Printf.sprintf "%.0f" (ins_secs *. 1e9 /. float_of_int batch);
          Printf.sprintf "%.0f" (look_secs *. 1e9 /. float_of_int batch);
          string_of_int (Poseidon.Exthash.depth h) ])
    [ 4_000; 16_000; 64_000; 256_000 ];
  Tablefmt.print table

(* Inter-thread frees (the case the paper's microbenchmark excludes):
   every block is freed by a different thread than allocated it, so
   Poseidon's remote-free sub-heap locking (5.7) gets exercised. *)
let extension_remote_free () =
  note "";
  note "### Extension: producer/consumer microbenchmark (inter-thread frees)";
  note "(every free is remote; 5.7 claims this contention stays rare/cheap)";
  sweep ~title:"Remote-free microbenchmark - 256 B" ~unit:"Mops/s"
    (fun ~factory ~threads ->
      Workloads.Microbench.run_remote_free ~factory ~size:256 ~threads
        ~total_ops:(scale 400 * threads) ())

(* Where the simulated time goes: per-category cost breakdown of one
   microbenchmark configuration per allocator — explains the curves
   (e.g. Poseidon's time is dominated by undo-log flush+fence;
   Makalu's by header persists; PMDK's by rebuild reads). *)
let ablation_costs () =
  note "";
  note "### Ablation - cost breakdown (256 B microbenchmark, 16 threads)";
  let table =
    Tablefmt.create ~title:"Simulated-time share by category (%)"
      ~columns:
        [ "allocator"; "read hit"; "read miss"; "store"; "clwb"; "fence";
          "bandwidth"; "compute"; "wrpkru" ]
  in
  List.iter
    (fun (factory : Workloads.Factories.factory) ->
      let mach, inst = factory.Workloads.Factories.make () in
      Workloads.Factories.warmup mach inst ~threads:16;
      Machine.reset_profile mach;
      let _ =
        Machine.parallel mach ~threads:16 (fun i ->
            let rng = Repro_util.Prng.create i in
            let live = Array.make 100 Alloc_intf.null in
            for _ = 1 to 4 do
              for j = 0 to 99 do
                live.(j) <-
                  Option.value ~default:Alloc_intf.null
                    (Alloc_intf.i_alloc inst 256)
              done;
              for j = 0 to 99 do
                if not (Alloc_intf.is_null live.(j)) then
                  Alloc_intf.i_free inst live.(j)
              done;
              ignore (Repro_util.Prng.int rng 2)
            done)
      in
      let p = Machine.profile mach in
      let total =
        float_of_int
          (p.Machine.p_read_hit + p.Machine.p_read_miss + p.Machine.p_write
         + p.Machine.p_flush + p.Machine.p_fence + p.Machine.p_bandwidth_wait
         + p.Machine.p_compute + p.Machine.p_wrpkru)
      in
      let pct v = 100.0 *. float_of_int v /. Float.max 1.0 total in
      Tablefmt.add_float_row table factory.Workloads.Factories.name
        [ pct p.Machine.p_read_hit; pct p.Machine.p_read_miss;
          pct p.Machine.p_write; pct p.Machine.p_flush; pct p.Machine.p_fence;
          pct p.Machine.p_bandwidth_wait; pct p.Machine.p_compute;
          pct p.Machine.p_wrpkru ])
    (factories ());
  Tablefmt.print table

(* Capacity scaling (2.2, 4.7): allocation latency must stay flat as
   the pool grows — the multi-level hash table and buddy lists are
   O(1) in pool size.  The simulated pool is sparsely backed, so huge
   sizes are cheap to instantiate. *)
let ablation_capacity () =
  note "";
  note "### Ablation - capacity scaling (2.2, 4.7)";
  note "(alloc+free latency vs pool size; expect a flat line)";
  let table =
    Tablefmt.create ~title:"Ablation - latency vs sub-heap capacity"
      ~columns:[ "pool size"; "ns/op" ]
  in
  List.iter
    (fun mib ->
      let mach = Machine.create () in
      let heap =
        Poseidon.Heap.create mach ~base:Workloads.Factories.heap_base
          ~size:(1 lsl 44) ~heap_id:1 ~sub_data_size:(mib * 1024 * 1024) ()
      in
      let inst = Poseidon.instance heap in
      Workloads.Factories.warmup mach inst ~threads:1;
      (* spread some live allocations across the pool first *)
      let _ =
        Machine.parallel mach ~threads:1 (fun _ ->
            for _ = 1 to 2000 do
              ignore (Alloc_intf.i_alloc inst 256)
            done)
      in
      let batch = 2000 in
      let secs =
        Machine.parallel mach ~threads:1 (fun _ ->
            for _ = 1 to batch do
              match Alloc_intf.i_alloc inst 256 with
              | Some p -> Alloc_intf.i_free inst p
              | None -> failwith "capacity ablation: oom"
            done)
      in
      Tablefmt.add_row table
        (Printf.sprintf "%d MiB" mib)
        [ Printf.sprintf "%.0f" (secs *. 1e9 /. float_of_int (2 * batch)) ])
    [ 64; 256; 1024; 4096; 16384 ];
  Tablefmt.print table

(* ---------- Bechamel wall-clock hot-path suite ---------- *)

let bechamel_suite () =
  note "";
  note "### Bechamel: real-time cost of simulator hot paths";
  let open Bechamel in
  let mach = Machine.create () in
  let heap =
    Poseidon.Heap.create mach ~base:Workloads.Factories.heap_base
      ~size:(1 lsl 38) ~heap_id:1 ()
  in
  let pmdk_mach = Machine.create () in
  let pmdk =
    Pmdk_sim.Heap.create pmdk_mach ~base:Workloads.Factories.heap_base
      ~size:(1 lsl 34) ~heap_id:2 ()
  in
  let mak_mach = Machine.create () in
  let mak =
    Makalu_sim.Heap.create mak_mach ~base:Workloads.Factories.heap_base
      ~size:(1 lsl 34) ~heap_id:3
  in
  let test_poseidon =
    Test.make ~name:"poseidon-alloc-free-256B"
      (Staged.stage (fun () ->
           match Poseidon.Heap.alloc heap 256 with
           | Some p -> Poseidon.Heap.free heap p
           | None -> failwith "oom"))
  in
  let test_pmdk =
    Test.make ~name:"pmdk-alloc-free-256B"
      (Staged.stage (fun () ->
           match Pmdk_sim.Heap.alloc pmdk 256 with
           | Some p -> Pmdk_sim.Heap.free pmdk p
           | None -> failwith "oom"))
  in
  let test_makalu =
    Test.make ~name:"makalu-alloc-free-256B"
      (Staged.stage (fun () ->
           match Makalu_sim.Heap.alloc mak 256 with
           | Some p -> Makalu_sim.Heap.free mak p
           | None -> failwith "oom"))
  in
  let dev = Machine.dev mach in
  let test_memdev =
    Test.make ~name:"memdev-write+persist-64B"
      (Staged.stage (fun () ->
           Nvmm.Memdev.write_u64 dev Workloads.Factories.heap_base 42;
           Nvmm.Memdev.persist dev Workloads.Factories.heap_base 8))
  in
  let tests =
    Test.make_grouped ~name:"hot-paths"
      [ test_poseidon; test_pmdk; test_makalu; test_memdev ]
  in
  let results =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
    Benchmark.all cfg instances tests
  in
  let ols =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock results
  in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "  %-36s %10.0f ns/op\n" name est
      | _ -> Printf.printf "  %-36s (no estimate)\n" name)
    ols;
  print_newline ()

(* ---------- smoke suite ---------- *)

(* A minute-scale sanity run: the 256 B microbenchmark on every
   allocator at 1 and 4 threads.  Small enough for CI, still exercises
   sub-heap creation, locking and persistence on all three designs. *)
let smoke_suite () =
  note "";
  note "### Smoke: 256 B microbenchmark, all allocators";
  List.iter
    (fun threads ->
      List.iter
        (fun (f : Workloads.Factories.factory) ->
          let mops =
            Workloads.Microbench.run ~factory:f ~size:256 ~threads
              ~total_ops:4_000 ()
          in
          ignore
            (record ~title:"smoke micro 256B" ~name:f.name ~threads
               ~unit:"Mops/s" mops);
          note "  %-12s %2d threads  %8.3f Mops/s" f.name threads mops)
        (factories ()))
    [ 1; 4 ];
  print_newline ()

(* ---------- service suite: poseidon-kv end-to-end ---------- *)

(* Offered-rate sweep over the sharded KV server plus one crash run:
   throughput vs goodput (they diverge once admission control sheds),
   client latency percentiles, and recovery time.  See lib/service. *)
let service_suite () =
  note "";
  note "### Service: poseidon-kv under open-loop simulated traffic";
  note "(throughput vs goodput per offered rate — the top rate is past";
  note " saturation, so admission control sheds; then a crash run with RTO)";
  let module S = Service.Server in
  let factory = Workloads.Factories.poseidon () in
  let make () = factory.Workloads.Factories.make () in
  let reattach mach =
    Poseidon.instance
      (Poseidon.Heap.attach mach ~base:Workloads.Factories.heap_base ())
  in
  let base rate scope =
    { S.default_config with
      S.shards = 4;
      clients = 32;
      rate;
      duration = (if !full then 0.05 else 0.02);
      value_size = 128;
      keyspace = 4096;
      queue_capacity = 32;
      scope }
  in
  let runs = ref [] in
  let run_one label cfg =
    let r = S.run ~make ~reattach cfg in
    runs := (label, cfg, r) :: !runs;
    r
  in
  let table =
    Tablefmt.create ~title:"poseidon-kv: offered-rate sweep (4 shards)"
      ~columns:
        [ "offered req/s"; "throughput"; "goodput"; "shed"; "p50 ns";
          "p99 ns"; "p999 ns" ]
  in
  List.iter
    (fun rate ->
      let r =
        run_one
          (Printf.sprintf "rate-%.0f" rate)
          (base rate (Printf.sprintf "bench/service/rate%.0f" rate))
      in
      Tablefmt.add_row table
        (Printf.sprintf "%.0f" rate)
        [ Printf.sprintf "%.0f" r.S.throughput;
          Printf.sprintf "%.0f" r.S.goodput;
          string_of_int r.S.shed;
          string_of_int r.S.latency.S.p50;
          string_of_int r.S.latency.S.p99;
          string_of_int r.S.latency.S.p999 ])
    [ 20_000.; 50_000.; 100_000.; 2_000_000. ];
  Tablefmt.print table;
  let r =
    run_one "crash"
      { (base 50_000. "bench/service/crash") with S.crash_at = Some 0.5 }
  in
  note
    "  crash run: RTO %d ns; ledger %d checked, %d ambiguous, %d mismatch(es)"
    r.S.rto_ns r.S.ledger.S.checked r.S.ledger.S.ambiguous
    r.S.ledger.S.mismatches;
  if r.S.ledger.S.mismatches > 0 then begin
    Printf.eprintf "bench service: LEDGER MISMATCH — acked writes lost\n";
    exit 1
  end;
  List.rev !runs

(* ---------- replication suite: primary/backup on two machines ---------- *)

(* Same traffic harness on a two-machine cluster (lib/cluster +
   lib/replica): sync vs async clean runs expose the sync-mode latency
   tax; then the RTO experiment — one failover run (primary lost at
   50%, backup promoted) against one plain restart run (same store,
   same traffic, same seed, crash + re-attach + intent replay).
   Promotion only seals the shipped log and replays the wire tail, so
   its RTO must come in under the full replay-on-restart path. *)
let replication_suite () =
  note "";
  note "### Replication: primary/backup log shipping, two-machine cluster";
  note "(sync vs async latency tax under identical zipfian traffic, then";
  note " promote-on-failover RTO vs replay-on-restart RTO, same seed)";
  let module S = Service.Server in
  let factory = Workloads.Factories.poseidon () in
  let base scope =
    { S.default_config with
      S.shards = 4;
      clients = 32;
      rate = 50_000.;
      duration = (if !full then 0.05 else 0.02);
      value_size = 128;
      keyspace = 4096;
      read_pct = 20;
      queue_capacity = 32;
      scope }
  in
  let make mach = Workloads.Factories.poseidon_on mach in
  let runs = ref [] in
  let repl label cfg rcfg =
    let rr = S.run_replicated ~make cfg rcfg in
    runs := (label, cfg, rr.S.base, Some rr) :: !runs;
    rr
  in
  let sync_rcfg = S.default_repl_config in
  let async_rcfg = { S.default_repl_config with S.repl_mode = Replica.Async } in
  let sync_r = repl "sync-clean" (base "bench/replication/sync") sync_rcfg in
  let async_r =
    repl "async-clean" (base "bench/replication/async") async_rcfg
  in
  let table =
    Tablefmt.create ~title:"poseidon-kv replicated: sync vs async (4 shards)"
      ~columns:
        [ "mode"; "throughput"; "goodput"; "p50 ns"; "p99 ns"; "max lag";
          "acked" ]
  in
  List.iter
    (fun (mode, (rr : S.repl_result)) ->
      let r = rr.S.base in
      Tablefmt.add_row table mode
        [ Printf.sprintf "%.0f" r.S.throughput;
          Printf.sprintf "%.0f" r.S.goodput;
          string_of_int r.S.latency.S.p50;
          string_of_int r.S.latency.S.p99;
          string_of_int rr.S.max_lag;
          string_of_int rr.S.acked_records ])
    [ ("sync", sync_r); ("async", async_r) ];
  Tablefmt.print table;
  note "  sync latency tax: p50 +%d ns, p99 +%d ns over async"
    (sync_r.S.base.S.latency.S.p50 - async_r.S.base.S.latency.S.p50)
    (sync_r.S.base.S.latency.S.p99 - async_r.S.base.S.latency.S.p99);
  let failover =
    repl "sync-failover"
      { (base "bench/replication/failover") with S.crash_at = Some 0.5 }
      sync_rcfg
  in
  let restart =
    let cfg =
      { (base "bench/replication/restart") with S.crash_at = Some 0.5 }
    in
    let r =
      S.run
        ~make:(fun () -> factory.Workloads.Factories.make ())
        ~reattach:(fun mach ->
          Poseidon.instance
            (Poseidon.Heap.attach mach ~base:Workloads.Factories.heap_base ()))
        cfg
    in
    runs := ("restart-replay", cfg, r, None) :: !runs;
    r
  in
  note
    "  RTO: promote backup %d ns (%d tail record(s) replayed)  vs  \
     replay-on-restart %d ns"
    failover.S.base.S.rto_ns failover.S.tail_replayed restart.S.rto_ns;
  note "  failover ledger: %d checked, %d ambiguous, %d mismatch(es)"
    failover.S.base.S.ledger.S.checked failover.S.base.S.ledger.S.ambiguous
    failover.S.base.S.ledger.S.mismatches;
  if failover.S.base.S.ledger.S.mismatches > 0 then begin
    Printf.eprintf
      "bench replication: LEDGER MISMATCH — sync-acked writes lost in \
       failover\n";
    exit 1
  end;
  if failover.S.base.S.rto_ns >= restart.S.rto_ns then
    note "  WARNING: promote RTO did not beat replay-on-restart RTO";
  List.rev !runs

(* ---------- batch suite: group commit + pipelined persistence ---------- *)

(* Sync replication pays a wire round trip per mutation: the shard
   handler holds its lock through ship → backup persist → ack, so at
   any real load the RTTs line up behind each other and the queue wait
   dwarfs the store itself.  Group commit amortizes that — one covering
   persist chain, one doorbell frame and ONE ack wait per group of
   consecutive queued mutations — so batched sync should land within
   ~2x of async p50 at the same offered load, where unbatched sync
   drowns.  The sweep runs async and sync at identical rate/seed across
   batch windows; the exit gate demands some window make the 2x bar. *)
let batch_suite () =
  note "";
  note "### Group commit: batched sync vs async at identical offered load";
  note "(one flush + one ack wait per group; window 1 = the unbatched path)";
  let module S = Service.Server in
  let base scope =
    { S.default_config with
      S.shards = 4;
      clients = 32;
      rate = 400_000.;
      duration = (if !full then 0.05 else 0.02);
      value_size = 128;
      keyspace = 4096;
      read_pct = 20;
      queue_capacity = 64;
      scope }
  in
  let make mach = Workloads.Factories.poseidon_on mach in
  let runs = ref [] in
  let repl label window mode =
    let cfg =
      { (base ("bench/batch/" ^ label)) with S.batch_window = window }
    in
    let rcfg =
      { S.default_repl_config with S.repl_mode = mode; wire_ns = 5_000 }
    in
    let rr = S.run_replicated ~make cfg rcfg in
    (match rr.S.backup_ledger with
     | Some l when l.S.mismatches > 0 ->
       Printf.eprintf "bench batch: BACKUP MISMATCH in %s\n" label;
       exit 1
     | _ -> ());
    runs := (label, window, cfg, rr) :: !runs;
    rr
  in
  let async_r = repl "async" 1 Replica.Async in
  let windows = [ 1; 4; 8; 16; 32 ] in
  let sync_rs =
    List.map
      (fun w -> (w, repl (Printf.sprintf "sync-w%d" w) w Replica.Sync))
      windows
  in
  let table =
    Tablefmt.create
      ~title:"poseidon-kv sync group commit vs async (4 shards, same load)"
      ~columns:
        [ "run"; "window"; "goodput"; "p50 ns"; "p99 ns"; "shed"; "flushes" ]
  in
  let row label w (rr : S.repl_result) =
    let r = rr.S.base in
    Tablefmt.add_row table label
      [ string_of_int w;
        Printf.sprintf "%.0f" r.S.goodput;
        string_of_int r.S.latency.S.p50;
        string_of_int r.S.latency.S.p99;
        string_of_int r.S.shed;
        string_of_int rr.S.link_flushes ]
  in
  row "async" 1 async_r;
  List.iter (fun (w, rr) -> row (Printf.sprintf "sync-w%d" w) w rr) sync_rs;
  Tablefmt.print table;
  let async_p50 = async_r.S.base.S.latency.S.p50 in
  let best_w, best_rr =
    List.fold_left
      (fun (bw, (brr : S.repl_result)) (w, (rr : S.repl_result)) ->
        if rr.S.base.S.latency.S.p50 < brr.S.base.S.latency.S.p50 then (w, rr)
        else (bw, brr))
      (List.hd sync_rs) (List.tl sync_rs)
  in
  let best_p50 = best_rr.S.base.S.latency.S.p50 in
  note "  async p50 %d ns; best sync p50 %d ns at window %d (%.2fx async)"
    async_p50 best_p50 best_w
    (float_of_int best_p50 /. float_of_int (max 1 async_p50));
  if best_p50 > 2 * async_p50 then begin
    Printf.eprintf
      "bench batch: GATE FAILED — best sync p50 %d ns > 2x async p50 %d ns \
       at every batch window\n"
      best_p50 async_p50;
    exit 1
  end;
  (List.rev !runs, async_p50, best_w, best_p50)

(* ---------- mvcc suite: lock-free snapshot reads ---------- *)

(* With mvcc off every get/scan queues for its shard lock behind the
   writers; with a version window the read path touches no lock at
   all, so (a) a read-heavy mix should sustain MORE throughput than
   the all-write baseline at the same offered load instead of merely
   tying it, and (b) the snapshot read itself must stay cheap — the
   sweep pairs a 95%-read run at window 0 against window 8 and gates
   snapshot read p50 within 1.25x of the plain read p50.  A scan-heavy
   run exercises the multi-shard merged scan, and a crash run shows
   snapshot serving changes nothing about recovery. *)
let mvcc_suite () =
  note "";
  note "### MVCC: lock-free snapshot reads vs the locked read path";
  note "(same offered load across read mixes; window 0 = plain path)";
  let module S = Service.Server in
  let factory = Workloads.Factories.poseidon () in
  let make () = factory.Workloads.Factories.make () in
  let reattach mach =
    Poseidon.instance
      (Poseidon.Heap.attach mach ~base:Workloads.Factories.heap_base ())
  in
  let base ~rate ~read ~scan ~window scope =
    { S.default_config with
      S.shards = 4;
      clients = 32;
      rate;
      duration = (if !full then 0.05 else 0.02);
      value_size = 128;
      keyspace = 4096;
      read_pct = read;
      scan_pct = scan;
      delete_pct = 0;
      queue_capacity = 64;
      mvcc_window = window;
      scope }
  in
  let runs = ref [] in
  let run_one label cfg =
    let r = S.run ~make ~reattach cfg in
    if r.S.ledger.S.mismatches > 0 then begin
      Printf.eprintf "bench mvcc: LEDGER MISMATCH in %s\n" label;
      exit 1
    end;
    runs := (label, cfg, r) :: !runs;
    r
  in
  (* saturating rate: the throughput comparison needs headroom to show *)
  let hot = 2_000_000. and warm = 50_000. in
  let write_all =
    run_one "write-all"
      (base ~rate:hot ~read:0 ~scan:0 ~window:8 "bench/mvcc/write-all")
  in
  let _ =
    run_one "mix-50"
      (base ~rate:hot ~read:50 ~scan:0 ~window:8 "bench/mvcc/mix-50")
  in
  let read95 =
    run_one "read-95"
      (base ~rate:hot ~read:95 ~scan:0 ~window:8 "bench/mvcc/read-95")
  in
  (* the overhead pair runs below saturation so read p50 measures the
     path, not the queue *)
  let plain_warm =
    run_one "read-95-plain"
      (base ~rate:warm ~read:95 ~scan:0 ~window:0 "bench/mvcc/read-95-plain")
  in
  let snap_warm =
    run_one "read-95-snap"
      (base ~rate:warm ~read:95 ~scan:0 ~window:8 "bench/mvcc/read-95-snap")
  in
  let _ =
    run_one "scan-heavy"
      (base ~rate:warm ~read:30 ~scan:50 ~window:8 "bench/mvcc/scan-heavy")
  in
  let crash =
    run_one "crash"
      { (base ~rate:warm ~read:60 ~scan:10 ~window:8 "bench/mvcc/crash") with
        S.crash_at = Some 0.5 }
  in
  note "  crash run: RTO %d ns; ledger %d checked, %d mismatch(es)"
    crash.S.rto_ns crash.S.ledger.S.checked crash.S.ledger.S.mismatches;
  let table =
    Tablefmt.create
      ~title:"poseidon-kv MVCC read path (4 shards, window 8 vs plain)"
      ~columns:
        [ "run"; "window"; "goodput"; "shed"; "read p50"; "write p50";
          "scan p50" ]
  in
  List.iter
    (fun (label, (cfg : S.config), (r : S.result)) ->
      Tablefmt.add_row table label
        [ string_of_int cfg.S.mvcc_window;
          Printf.sprintf "%.0f" r.S.goodput;
          string_of_int r.S.shed;
          string_of_int r.S.read_latency.S.p50;
          string_of_int r.S.write_latency.S.p50;
          string_of_int r.S.scan_latency.S.p50 ])
    (List.rev !runs);
  Tablefmt.print table;
  let plain_p50 = plain_warm.S.read_latency.S.p50
  and snap_p50 = snap_warm.S.read_latency.S.p50 in
  note "  plain read p50 %d ns; snapshot read p50 %d ns (%.2fx)" plain_p50
    snap_p50
    (float_of_int snap_p50 /. float_of_int (max 1 plain_p50));
  note "  all-write throughput %.0f; 95%%-read throughput %.0f (shed %d vs %d)"
    write_all.S.throughput read95.S.throughput read95.S.shed write_all.S.shed;
  if 4 * snap_p50 > 5 * plain_p50 then begin
    Printf.eprintf
      "bench mvcc: GATE FAILED — snapshot read p50 %d ns > 1.25x plain \
       read p50 %d ns\n"
      snap_p50 plain_p50;
    exit 1
  end;
  if
    read95.S.throughput <= write_all.S.throughput
    || read95.S.shed > write_all.S.shed
  then begin
    Printf.eprintf
      "bench mvcc: GATE FAILED — 95%%-read mix (%.0f req/s, shed %d) does \
       not beat the all-write baseline (%.0f req/s, shed %d)\n"
      read95.S.throughput read95.S.shed write_all.S.throughput
      write_all.S.shed;
    exit 1
  end;
  (List.rev !runs, plain_p50, snap_p50, write_all, read95)

(* ---------- rcache suite: DRAM read-cache tier ---------- *)

(* With a read cache armed, a hot zipfian read mix answers most gets
   from a DRAM probe instead of walking the persistent B+-tree and
   digesting the NVMM value block.  The skew sweep (theta 0.6 / 0.9 /
   1.1, 8192 entries/shard, warm rate) shows the hit-rate gradient;
   the gate pair reruns the same 98%-read mix at theta 0.99 at a HOT
   offered load, where the cheaper cached service time is the
   difference between a shard queue that drains and one that builds —
   cached read p50 must come in at or below 0.6x the uncached one —
   and a crash run shows the volatile cache changes nothing about
   recovery or the ledger. *)
let rcache_suite () =
  note "";
  note "### RCACHE: DRAM read-cache tier over the NVMM shards";
  note "(same 98%%-read mix across zipf skews; entries 0 = uncached path)";
  let module S = Service.Server in
  let factory = Workloads.Factories.poseidon () in
  let make () = factory.Workloads.Factories.make () in
  let reattach mach =
    Poseidon.instance
      (Poseidon.Heap.attach mach ~base:Workloads.Factories.heap_base ())
  in
  let base ?(rate = 600_000.) ?(duration = if !full then 0.08 else 0.06)
      ~theta ~entries scope =
    { S.default_config with
      S.shards = 4;
      clients = 32;
      rate;
      duration;
      value_size = 512;
      (* every key present (absent keys return early and cache
         nothing), and the keyspace is sized so the per-shard working
         set overflows the simulated per-CPU hardware cache (8192
         direct-mapped lines): an uncached read then really pays the
         NVMM tree walk + value digest, which is exactly what the
         digest cache skips.  MVCC stays off — its version chains
         already memoize the digest of every mutated key, so the
         locked read path is where the cache earns its keep (the
         snapshot path's cache interplay is covered by the
         kv-rcache-put crashcheck sweep and the mvcc suite) *)
      keyspace = 32768;
      preload = 32768;
      zipf_theta = theta;
      read_pct = 98;
      scan_pct = 0;
      delete_pct = 0;
      queue_capacity = 64;
      mvcc_window = 0;
      rcache_entries = entries;
      scope }
  in
  let hit_rate scope =
    let g name =
      match Obs.Metrics.get_gauge ~scope name with Some v -> v | None -> 0.
    in
    let hits = g "rcache_hits" and misses = g "rcache_misses" in
    if hits +. misses <= 0. then 0. else hits /. (hits +. misses)
  in
  let runs = ref [] in
  let run_one label cfg =
    let r = S.run ~make ~reattach cfg in
    if r.S.ledger.S.mismatches > 0 then begin
      Printf.eprintf "bench rcache: LEDGER MISMATCH in %s\n" label;
      exit 1
    end;
    runs := (label, cfg, r, hit_rate cfg.S.scope) :: !runs;
    r
  in
  (* the skew sweep runs below saturation so hit rate and read p50
     measure the path, not the queue *)
  List.iter
    (fun theta ->
      let label = Printf.sprintf "zipf-%.1f" theta in
      ignore
        (run_one label
           (base ~theta ~entries:8192
              (Printf.sprintf "bench/rcache/%s" label))))
    [ 0.6; 0.9; 1.1 ];
  (* the gate pair runs HOT: at this offered load the uncached read
     path's service time backs the shard queues up, while cache hits
     keep them drained — the latency a read cache actually buys a
     loaded store *)
  let hot = 2_400_000. and hot_dur = 0.24 in
  let uncached =
    run_one "hot-uncached"
      (base ~rate:hot ~duration:hot_dur ~theta:0.99 ~entries:0
         "bench/rcache/hot-uncached")
  in
  let cached =
    run_one "hot-cached"
      (base ~rate:hot ~duration:hot_dur ~theta:0.99 ~entries:8192
         "bench/rcache/hot-cached")
  in
  let crash =
    run_one "crash"
      { (base ~theta:0.99 ~entries:8192 "bench/rcache/crash") with
        S.crash_at = Some 0.5 }
  in
  note "  crash run: RTO %d ns; ledger %d checked, %d mismatch(es)"
    crash.S.rto_ns crash.S.ledger.S.checked crash.S.ledger.S.mismatches;
  let table =
    Tablefmt.create
      ~title:
        "poseidon-kv DRAM read cache (4 shards, 98% reads, 8192 \
         entries/shard vs none)"
      ~columns:
        [ "run"; "entries"; "zipf"; "goodput"; "hit rate"; "read p50";
          "write p50" ]
  in
  List.iter
    (fun (label, (cfg : S.config), (r : S.result), hr) ->
      Tablefmt.add_row table label
        [ string_of_int cfg.S.rcache_entries;
          Printf.sprintf "%.2f" cfg.S.zipf_theta;
          Printf.sprintf "%.0f" r.S.goodput;
          Printf.sprintf "%.2f" hr;
          string_of_int r.S.read_latency.S.p50;
          string_of_int r.S.write_latency.S.p50 ])
    (List.rev !runs);
  Tablefmt.print table;
  let un_p50 = uncached.S.read_latency.S.p50
  and c_p50 = cached.S.read_latency.S.p50 in
  note "  uncached service p50 %d ns; cached service p50 %d ns"
    uncached.S.service.S.p50 cached.S.service.S.p50;
  note "  uncached read p50 %d ns; cached read p50 %d ns (%.2fx, hit rate %.2f)"
    un_p50 c_p50
    (float_of_int c_p50 /. float_of_int (max 1 un_p50))
    (hit_rate "bench/rcache/hot-cached");
  if 5 * c_p50 > 3 * un_p50 then begin
    Printf.eprintf
      "bench rcache: GATE FAILED — cached read p50 %d ns > 0.6x uncached \
       read p50 %d ns\n"
      c_p50 un_p50;
    exit 1
  end;
  (List.rev !runs, un_p50, c_p50)

(* ---------- alloc suite: DRAM magazine-cache fast path ---------- *)

(* The tcache wrapper turns the common allocation into a volatile bin
   pop (no NVMM write, no fence) with batched refills and bulk frees,
   so (a) the per-op simulated latency of a steady-state alloc/free
   mix must drop sharply against the raw allocator — the gate demands
   a >= 25% alloc p50 reduction — and (b) an end-to-end write-heavy
   serve run with --tcache-mag K must beat the same-seed mag-0 run on
   write (put) p50.  A crash run shows cached serving changes nothing
   about recovery. *)
let alloc_suite () =
  note "";
  note "### Allocation fast path: magazine cache vs raw allocator";
  note "(steady-state 64 B alloc/free mix, one simulated thread)";
  let module S = Service.Server in
  let factory = Workloads.Factories.poseidon () in
  let mag = 8 in
  (* micro: per-op simulated ns, measured inside the simulation *)
  let micro ~cached =
    let mach, raw = factory.Workloads.Factories.make () in
    let inst = if cached then fst (Tcache.wrap ~mag raw) else raw in
    let n = scale 2000 in
    let window = 64 in
    let alloc_ns = Array.make n 0 and free_ns = Array.make n 0 in
    ignore
      (Machine.parallel mach ~threads:1 (fun _ ->
           let live = Array.make window Alloc_intf.null in
           (* warm the bins and the allocator's hash path *)
           for k = 0 to window - 1 do
             live.(k) <- Option.get (Alloc_intf.i_alloc inst 64)
           done;
           for k = 0 to n - 1 do
             let slot = k mod window in
             let t0 = Simcore.Sched.now () in
             Alloc_intf.i_free inst live.(slot);
             let t1 = Simcore.Sched.now () in
             (match Alloc_intf.i_alloc inst 64 with
              | Some p -> live.(slot) <- p
              | None -> failwith "bench alloc: out of memory");
             let t2 = Simcore.Sched.now () in
             free_ns.(k) <- t1 - t0;
             alloc_ns.(k) <- t2 - t1
           done));
    let p50 a =
      let a = Array.copy a in
      Array.sort compare a;
      a.(Array.length a / 2)
    in
    let mean a =
      float_of_int (Array.fold_left ( + ) 0 a) /. float_of_int n
    in
    (p50 alloc_ns, mean alloc_ns, p50 free_ns, mean free_ns)
  in
  let raw_p50, raw_mean, raw_fp50, raw_fmean = micro ~cached:false in
  let tc_p50, tc_mean, tc_fp50, tc_fmean = micro ~cached:true in
  let table =
    Tablefmt.create
      ~title:(Printf.sprintf "64 B alloc/free latency (mag %d)" mag)
      ~columns:
        [ "path"; "alloc p50"; "alloc mean"; "free p50"; "free mean" ]
  in
  Tablefmt.add_row table "raw"
    [ string_of_int raw_p50; Printf.sprintf "%.0f" raw_mean;
      string_of_int raw_fp50; Printf.sprintf "%.0f" raw_fmean ];
  Tablefmt.add_row table "tcache"
    [ string_of_int tc_p50; Printf.sprintf "%.0f" tc_mean;
      string_of_int tc_fp50; Printf.sprintf "%.0f" tc_fmean ];
  Tablefmt.print table;
  note "  alloc p50: %d ns raw -> %d ns cached (%.2fx)" raw_p50 tc_p50
    (float_of_int tc_p50 /. float_of_int (max 1 raw_p50));
  if 4 * tc_p50 > 3 * raw_p50 then begin
    Printf.eprintf
      "bench alloc: GATE FAILED — cached alloc p50 %d ns is not 25%% below \
       the raw p50 %d ns\n"
      tc_p50 raw_p50;
    exit 1
  end;
  (* end-to-end: write-heavy serving, same seed, mag K vs mag 0 *)
  let make () = factory.Workloads.Factories.make () in
  let reattach mach =
    Poseidon.instance
      (Poseidon.Heap.attach mach ~base:Workloads.Factories.heap_base ())
  in
  let base ~tcache_mag scope =
    { S.default_config with
      S.shards = 4;
      clients = 32;
      rate = 2_000_000.;
      duration = (if !full then 0.05 else 0.02);
      value_size = 128;
      keyspace = 4096;
      read_pct = 0;
      scan_pct = 0;
      delete_pct = 10;
      queue_capacity = 64;
      tcache_mag;
      scope }
  in
  let runs = ref [] in
  let run_one label cfg =
    let r = S.run ~make ~reattach cfg in
    if r.S.ledger.S.mismatches > 0 then begin
      Printf.eprintf "bench alloc: LEDGER MISMATCH in %s\n" label;
      exit 1
    end;
    runs := (label, cfg, r) :: !runs;
    r
  in
  let plain = run_one "serve-mag0" (base ~tcache_mag:0 "bench/alloc/mag0") in
  let cached =
    run_one "serve-tcache" (base ~tcache_mag:mag "bench/alloc/tcache")
  in
  let crash =
    run_one "serve-tcache-crash"
      { (base ~tcache_mag:mag "bench/alloc/crash") with
        S.crash_at = Some 0.5 }
  in
  let stable =
    Tablefmt.create
      ~title:"poseidon-kv write-heavy serving (4 shards, saturating)"
      ~columns:[ "run"; "mag"; "goodput"; "write p50"; "write p99" ]
  in
  List.iter
    (fun (label, (cfg : S.config), (r : S.result)) ->
      Tablefmt.add_row stable label
        [ string_of_int cfg.S.tcache_mag;
          Printf.sprintf "%.0f" r.S.goodput;
          string_of_int r.S.write_latency.S.p50;
          string_of_int r.S.write_latency.S.p99 ])
    (List.rev !runs);
  Tablefmt.print stable;
  note "  crash run: RTO %d ns; ledger %d checked, %d mismatch(es)"
    crash.S.rto_ns crash.S.ledger.S.checked crash.S.ledger.S.mismatches;
  let plain_w50 = plain.S.write_latency.S.p50
  and tc_w50 = cached.S.write_latency.S.p50 in
  note "  serve write p50: %d ns mag 0 -> %d ns mag %d (%.2fx)" plain_w50
    tc_w50 mag
    (float_of_int tc_w50 /. float_of_int (max 1 plain_w50));
  if tc_w50 >= plain_w50 then begin
    Printf.eprintf
      "bench alloc: GATE FAILED — cached serve write p50 %d ns does not \
       beat the mag-0 write p50 %d ns\n"
      tc_w50 plain_w50;
    exit 1
  end;
  (List.rev !runs, (raw_p50, raw_mean, tc_p50, tc_mean), (plain_w50, tc_w50))

(* ---------- txn suite: cross-shard 2PC transactions ---------- *)

(* Same traffic harness with a transactional mix (server --txn-pct):
   a single-op baseline against transactional mixes at identical seed
   and offered rate exposes the 2PC tax — commit latency vs single-op
   latency, abort rate — and a crash run checks that recovery keeps
   every transaction atomic (the ledger treats a txn's keys as one
   all-or-nothing group). *)
let txn_suite () =
  note "";
  note "### Transactions: cross-shard 2PC over poseidon-kv";
  note "(single-op baseline vs transactional mixes, same seed and rate:";
  note " abort rate and the commit-latency tax of the coordinator-record";
  note " protocol; then a crash run — atomicity must survive recovery)";
  let module S = Service.Server in
  let factory = Workloads.Factories.poseidon () in
  let make () = factory.Workloads.Factories.make () in
  let reattach mach =
    Poseidon.instance
      (Poseidon.Heap.attach mach ~base:Workloads.Factories.heap_base ())
  in
  let base scope =
    { S.default_config with
      S.shards = 4;
      clients = 32;
      rate = 50_000.;
      duration = (if !full then 0.05 else 0.02);
      value_size = 128;
      keyspace = 4096;
      queue_capacity = 64;
      scope }
  in
  let runs = ref [] in
  let run_one label cfg =
    let r = S.run ~make ~reattach cfg in
    runs := (label, cfg, r) :: !runs;
    r
  in
  let baseline = run_one "baseline" (base "bench/txn/baseline") in
  let mixes =
    [ ("txn25-2op", 25, 2); ("txn25-4op", 25, 4); ("txn100-4op", 100, 4) ]
  in
  let table =
    Tablefmt.create ~title:"poseidon-kv: transactional mixes (4 shards)"
      ~columns:
        [ "mix"; "goodput"; "committed"; "aborted"; "abort %"; "txn p50 ns";
          "txn p99 ns" ]
  in
  Tablefmt.add_row table "baseline"
    [ Printf.sprintf "%.0f" baseline.S.goodput; "-"; "-"; "-";
      string_of_int baseline.S.latency.S.p50;
      string_of_int baseline.S.latency.S.p99 ];
  List.iter
    (fun (label, pct, ops) ->
      let cfg = { (base ("bench/txn/" ^ label)) with S.txn_pct = pct; txn_ops = ops } in
      let cfg =
        if pct = 100 then
          { cfg with S.read_pct = 0; delete_pct = 0; scan_pct = 0 }
        else cfg
      in
      let r = run_one label cfg in
      let attempts = r.S.txns_committed + r.S.txns_aborted in
      Tablefmt.add_row table label
        [ Printf.sprintf "%.0f" r.S.goodput;
          string_of_int r.S.txns_committed;
          string_of_int r.S.txns_aborted;
          Printf.sprintf "%.1f"
            (100.0 *. float_of_int r.S.txns_aborted
            /. Float.max 1.0 (float_of_int attempts));
          string_of_int r.S.txn_latency.S.p50;
          string_of_int r.S.txn_latency.S.p99 ])
    mixes;
  Tablefmt.print table;
  (match List.assoc_opt "txn25-2op" (List.map (fun (l, _, r) -> (l, r)) !runs)
   with
  | Some r when r.S.txn_latency.S.samples > 0 ->
    note "  2PC tax (25%% mix, 2 ops): txn p50 %d ns vs baseline single-op \
          p50 %d ns"
      r.S.txn_latency.S.p50 baseline.S.latency.S.p50
  | _ -> ());
  let crash =
    run_one "crash"
      { (base "bench/txn/crash") with
        S.txn_pct = 25;
        txn_ops = 3;
        crash_at = Some 0.5 }
  in
  note
    "  crash run: %d committed / %d aborted before+after; RTO %d ns; ledger \
     %d checked, %d ambiguous, %d mismatch(es)"
    crash.S.txns_committed crash.S.txns_aborted crash.S.rto_ns
    crash.S.ledger.S.checked crash.S.ledger.S.ambiguous
    crash.S.ledger.S.mismatches;
  if crash.S.ledger.S.mismatches > 0 then begin
    Printf.eprintf
      "bench txn: LEDGER MISMATCH — transaction atomicity violated across \
       crash\n";
    exit 1
  end;
  List.rev !runs

(* ---------- attrib suite: where does the time go? ---------- *)

(* The tracing tentpole's payoff: identical zipfian traffic (same seed,
   same offered load) run unreplicated, async- and sync-replicated,
   single-op and all-transaction, each with the span store on.  The
   per-run latency budget (Obs.Attrib over the span trees) then names
   the stage that dominates each configuration's critical path — so
   the two headline taxes stop being mystery multiples: sync
   replication's latency multiple must be pinned on the group-commit
   ack wait (repl_ack) and the 2PC commit tax on the transaction
   critical section (txn).  A budget that explains < 90% of
   end-to-end time fails the run: it means the stage taxonomy has a
   hole, and the numbers above it can't be trusted. *)
let attrib_suite () =
  note "";
  note "### Attribution: per-stage latency budgets (where does the time go?)";
  note "(same seed and offered load, five configurations; span trees name";
  note " the dominant stage of each one's critical path)";
  let module S = Service.Server in
  let module A = Obs.Attrib in
  let factory = Workloads.Factories.poseidon () in
  let make () = factory.Workloads.Factories.make () in
  let reattach mach =
    Poseidon.instance
      (Poseidon.Heap.attach mach ~base:Workloads.Factories.heap_base ())
  in
  (* below saturation: attribution should explain service time, not
     admission queueing (that regime is the service suite's job) *)
  let base scope =
    { S.default_config with
      S.shards = 4;
      clients = 32;
      rate = 20_000.;
      duration = (if !full then 0.05 else 0.02);
      value_size = 128;
      keyspace = 4096;
      read_pct = 20;
      queue_capacity = 64;
      scope }
  in
  let txn cfg =
    { cfg with
      S.txn_pct = 100;
      txn_ops = 3;
      read_pct = 0;
      delete_pct = 0;
      scan_pct = 0 }
  in
  let runs = ref [] in
  let run_one label ?repl cfg =
    Obs.Span.clear ();
    Obs.Span.start ();
    let r =
      match repl with
      | None -> S.run ~make ~reattach cfg
      | Some rcfg ->
        (S.run_replicated
           ~make:(fun mach -> Workloads.Factories.poseidon_on mach)
           cfg rcfg)
          .S.base
    in
    let att = A.analyze () in
    Obs.Span.clear ();
    let mode =
      match repl with
      | None -> "none"
      | Some rcfg ->
        (match rcfg.S.repl_mode with
         | Replica.Sync -> "sync"
         | Replica.Async -> "async")
    in
    runs := (label, cfg, mode, r, att) :: !runs;
    att
  in
  let sync_rcfg = S.default_repl_config in
  let async_rcfg = { S.default_repl_config with S.repl_mode = Replica.Async } in
  let ua = run_one "single-unrepl" (base "bench/attrib/single-unrepl") in
  let _ =
    run_one "single-async" ~repl:async_rcfg (base "bench/attrib/single-async")
  in
  let sa =
    run_one "single-sync" ~repl:sync_rcfg (base "bench/attrib/single-sync")
  in
  let ta = run_one "txn-unrepl" (txn (base "bench/attrib/txn-unrepl")) in
  let _ =
    run_one "txn-sync" ~repl:sync_rcfg (txn (base "bench/attrib/txn-sync"))
  in
  let dom (att : A.report) =
    match A.dominant_stage att with
    | Some row -> Obs.Span.stage_name row.A.stage
    | None -> "-"
  in
  let table =
    Tablefmt.create
      ~title:"poseidon-kv latency budgets (4 shards, same seed and load)"
      ~columns:
        [ "run"; "e2e p50 ns"; "coverage"; "dominant stage"; "dom p50 ns" ]
  in
  List.iter
    (fun (label, _, _, _, (att : A.report)) ->
      let dp50 =
        match A.dominant_stage att with
        | Some row -> string_of_int row.A.p50_ns
        | None -> "-"
      in
      Tablefmt.add_row table label
        [ string_of_int att.A.e2e_p50_ns;
          Printf.sprintf "%.1f%%" (100. *. att.A.coverage);
          dom att; dp50 ])
    (List.rev !runs);
  Tablefmt.print table;
  let mult a b = float_of_int a /. Float.max 1.0 (float_of_int b) in
  (* a tax is pinned on the budget stage whose summed time grew most
     over the same-seed baseline — the per-run dominant vote answers a
     different question (where a typical request's time goes) and can
     be carried by requests the tax never touches (e.g. reads under
     sync replication) *)
  let tax_stage (n : A.report) (d : A.report) =
    let base st =
      match
        List.find_opt (fun (r : A.stage_row) -> r.A.stage = st) d.A.budget
      with
      | Some r -> r.A.total_ns
      | None -> 0
    in
    List.fold_left
      (fun acc (row : A.stage_row) ->
        let delta = row.A.total_ns - base row.A.stage in
        match acc with
        | Some (_, best) when best >= delta -> acc
        | _ -> Some (row.A.stage, delta))
      None n.A.budget
  in
  let tax_name n d =
    match tax_stage n d with
    | Some (st, _) -> Obs.Span.stage_name st
    | None -> "-"
  in
  note
    "  sync-replication tax: e2e p50 %d ns vs %d ns unreplicated (%.1fx) — \
     dominated by %s"
    sa.A.e2e_p50_ns ua.A.e2e_p50_ns
    (mult sa.A.e2e_p50_ns ua.A.e2e_p50_ns)
    (tax_name sa ua);
  note
    "  2PC commit tax: all-txn e2e p50 %d ns vs single-op %d ns (%.1fx) — \
     dominated by %s"
    ta.A.e2e_p50_ns ua.A.e2e_p50_ns
    (mult ta.A.e2e_p50_ns ua.A.e2e_p50_ns)
    (tax_name ta ua);
  List.iter
    (fun (label, _, _, _, (att : A.report)) ->
      if att.A.requests > 0 && att.A.coverage < 0.9 then begin
        Printf.eprintf
          "bench attrib: %s: budget explains only %.1f%% (< 90%%) of \
           end-to-end time — stage taxonomy has a hole\n"
          label (100. *. att.A.coverage);
        exit 1
      end)
    !runs;
  List.rev !runs

(* ---------- JSON output ---------- *)

let rev_json () =
  match Repro_util.Gitrev.short () with
  | Some r -> Obs.Json.Str r
  | None -> Obs.Json.Null

let write_doc file doc =
  match open_out file with
  | exception Sys_error msg ->
    Printf.eprintf "bench: cannot write metrics snapshot: %s\n" msg;
    exit 1
  | oc ->
    output_string oc (Obs.Json.to_string doc);
    output_char oc '\n';
    close_out oc;
    note "metrics snapshot written to %s" file

let write_results () =
  let module J = Obs.Json in
  let doc =
    J.Obj
      [ ("schema", J.Str "poseidon-bench/v1");
        ("rev", rev_json ());
        ("suite", J.Str (if !smoke then "smoke" else "figures"));
        ("full", J.Bool !full);
        ( "config",
          J.Obj
            [ ("full", J.Bool !full);
              ( "threads",
                J.Arr
                  (List.map (fun t -> J.Num (float_of_int t)) !thread_counts) );
              ( "figures",
                J.Arr (List.map (fun n -> J.Num (float_of_int n)) !figures) );
              ("ablations", J.Arr (List.map (fun s -> J.Str s) !ablations)) ] );
        ("metrics", Obs.Metrics.snapshot ()) ]
  in
  write_doc (if !json_out = "" then "BENCH_results.json" else !json_out) doc

let write_service_results runs =
  let module S = Service.Server in
  let module J = Obs.Json in
  let num i = J.Num (float_of_int i) in
  let pct (p : S.percentiles) =
    J.Obj
      [ ("p50", num p.S.p50); ("p99", num p.S.p99); ("p999", num p.S.p999);
        ("mean", J.Num p.S.mean); ("max", num p.S.max);
        ("samples", num p.S.samples) ]
  in
  let run_json (label, (cfg : S.config), (r : S.result)) =
    J.Obj
      [ ("label", J.Str label);
        ( "config",
          J.Obj
            [ ("shards", num cfg.S.shards); ("clients", num cfg.S.clients);
              ("rate", J.Num cfg.S.rate); ("duration", J.Num cfg.S.duration);
              ("value_size", num cfg.S.value_size);
              ("keyspace", num cfg.S.keyspace);
              ("queue_capacity", num cfg.S.queue_capacity);
              ( "crash_at",
                match cfg.S.crash_at with
                | Some f -> J.Num f
                | None -> J.Null ) ] );
        ("offered", num r.S.offered); ("admitted", num r.S.admitted);
        ("shed", num r.S.shed); ("completed", num r.S.completed);
        ("throughput", J.Num r.S.throughput); ("goodput", J.Num r.S.goodput);
        ("latency", pct r.S.latency); ("service", pct r.S.service);
        ("crashed", J.Bool r.S.crashed); ("rto_ns", num r.S.rto_ns);
        ( "ledger",
          J.Obj
            [ ("checked", num r.S.ledger.S.checked);
              ("ambiguous", num r.S.ledger.S.ambiguous);
              ("mismatches", num r.S.ledger.S.mismatches) ] ) ]
  in
  let doc =
    J.Obj
      [ ("schema", J.Str "poseidon-bench-service/v1");
        ("rev", rev_json ());
        ("config", J.Obj [ ("full", J.Bool !full) ]);
        ("runs", J.Arr (List.map run_json runs));
        ("metrics", Obs.Metrics.snapshot ()) ]
  in
  write_doc (if !json_out = "" then "BENCH_service.json" else !json_out) doc

let write_replication_results runs =
  let module S = Service.Server in
  let module J = Obs.Json in
  let num i = J.Num (float_of_int i) in
  let pct (p : S.percentiles) =
    J.Obj
      [ ("p50", num p.S.p50); ("p99", num p.S.p99); ("p999", num p.S.p999);
        ("mean", J.Num p.S.mean); ("max", num p.S.max);
        ("samples", num p.S.samples) ]
  in
  let ledger (l : S.ledger_report) =
    J.Obj
      [ ("checked", num l.S.checked); ("ambiguous", num l.S.ambiguous);
        ("mismatches", num l.S.mismatches) ]
  in
  let run_json (label, (cfg : S.config), (r : S.result), repl) =
    J.Obj
      [ ("label", J.Str label);
        ( "config",
          J.Obj
            [ ("shards", num cfg.S.shards); ("clients", num cfg.S.clients);
              ("rate", J.Num cfg.S.rate); ("duration", J.Num cfg.S.duration);
              ("read_pct", num cfg.S.read_pct);
              ("seed", num cfg.S.seed);
              ( "crash_at",
                match cfg.S.crash_at with
                | Some f -> J.Num f
                | None -> J.Null ) ] );
        ("offered", num r.S.offered); ("completed", num r.S.completed);
        ("throughput", J.Num r.S.throughput); ("goodput", J.Num r.S.goodput);
        ("latency", pct r.S.latency);
        ("crashed", J.Bool r.S.crashed); ("rto_ns", num r.S.rto_ns);
        ("ledger", ledger r.S.ledger);
        ( "replication",
          match repl with
          | None -> J.Null
          | Some (rr : S.repl_result) ->
            J.Obj
              [ ("mode", J.Str (if rr.S.sync then "sync" else "async"));
                ("shipped", num rr.S.shipped);
                ("acked_records", num rr.S.acked_records);
                ("retransmits", num rr.S.retransmits);
                ("max_lag", num rr.S.max_lag);
                ("backup_applied", num rr.S.backup_applied);
                ("tail_replayed", num rr.S.tail_replayed);
                ( "backup_ledger",
                  match rr.S.backup_ledger with
                  | Some l -> ledger l
                  | None -> J.Null ) ] ) ]
  in
  let find label =
    List.find_opt (fun (l, _, _, _) -> l = label) runs
    |> Option.map (fun (_, _, (r : S.result), _) -> r.S.rto_ns)
  in
  let rto_cmp =
    match (find "sync-failover", find "restart-replay") with
    | Some promote, Some replay ->
      J.Obj
        [ ("promote_rto_ns", num promote); ("replay_rto_ns", num replay);
          ("promote_beats_replay", J.Bool (promote < replay)) ]
    | _ -> J.Null
  in
  let doc =
    J.Obj
      [ ("schema", J.Str "poseidon-bench-replication/v1");
        ("rev", rev_json ());
        ("config", J.Obj [ ("full", J.Bool !full) ]);
        ("runs", J.Arr (List.map run_json runs));
        ("rto", rto_cmp);
        ("metrics", Obs.Metrics.snapshot ()) ]
  in
  write_doc (if !json_out = "" then "BENCH_replication.json" else !json_out) doc

let write_batch_results (runs, async_p50, best_window, best_p50) =
  let module S = Service.Server in
  let module J = Obs.Json in
  let num i = J.Num (float_of_int i) in
  let pct (p : S.percentiles) =
    J.Obj
      [ ("p50", num p.S.p50); ("p99", num p.S.p99); ("p999", num p.S.p999);
        ("mean", J.Num p.S.mean); ("max", num p.S.max);
        ("samples", num p.S.samples) ]
  in
  let run_json (label, window, (cfg : S.config), (rr : S.repl_result)) =
    let r = rr.S.base in
    J.Obj
      [ ("label", J.Str label);
        ("mode", J.Str (if rr.S.sync then "sync" else "async"));
        ("batch_window", num window);
        ( "config",
          J.Obj
            [ ("shards", num cfg.S.shards); ("clients", num cfg.S.clients);
              ("rate", J.Num cfg.S.rate); ("duration", J.Num cfg.S.duration);
              ("read_pct", num cfg.S.read_pct); ("seed", num cfg.S.seed);
              ("batch_bytes", num cfg.S.batch_bytes) ] );
        ("offered", num r.S.offered); ("completed", num r.S.completed);
        ("shed", num r.S.shed);
        ("throughput", J.Num r.S.throughput); ("goodput", J.Num r.S.goodput);
        ("latency", pct r.S.latency); ("service", pct r.S.service);
        ("shipped", num rr.S.shipped);
        ("acked_records", num rr.S.acked_records);
        ("retransmits", num rr.S.retransmits);
        ("link_flushes", num rr.S.link_flushes);
        ( "backup_mismatches",
          match rr.S.backup_ledger with
          | Some l -> num l.S.mismatches
          | None -> J.Null ) ]
  in
  let doc =
    J.Obj
      [ ("schema", J.Str "poseidon-bench-batch/v1");
        ("rev", rev_json ());
        ("config", J.Obj [ ("full", J.Bool !full) ]);
        ("runs", J.Arr (List.map run_json runs));
        ( "gate",
          J.Obj
            [ ("async_p50_ns", num async_p50);
              ("best_sync_p50_ns", num best_p50);
              ("best_window", num best_window);
              ( "ratio",
                J.Num
                  (float_of_int best_p50 /. float_of_int (max 1 async_p50)) );
              ("sync_within_2x_async", J.Bool (best_p50 <= 2 * async_p50)) ]
        );
        ("metrics", Obs.Metrics.snapshot ()) ]
  in
  write_doc (if !json_out = "" then "BENCH_batch.json" else !json_out) doc

let write_mvcc_results (runs, plain_p50, snap_p50, write_all, read95) =
  let module S = Service.Server in
  let module J = Obs.Json in
  let num i = J.Num (float_of_int i) in
  let pct (p : S.percentiles) =
    J.Obj
      [ ("p50", num p.S.p50); ("p99", num p.S.p99); ("p999", num p.S.p999);
        ("mean", J.Num p.S.mean); ("max", num p.S.max);
        ("samples", num p.S.samples) ]
  in
  let run_json (label, (cfg : S.config), (r : S.result)) =
    J.Obj
      [ ("label", J.Str label);
        ( "config",
          J.Obj
            [ ("shards", num cfg.S.shards); ("clients", num cfg.S.clients);
              ("rate", J.Num cfg.S.rate); ("duration", J.Num cfg.S.duration);
              ("read_pct", num cfg.S.read_pct);
              ("scan_pct", num cfg.S.scan_pct);
              ("mvcc_window", num cfg.S.mvcc_window);
              ("seed", num cfg.S.seed) ] );
        ("offered", num r.S.offered); ("completed", num r.S.completed);
        ("shed", num r.S.shed);
        ("throughput", J.Num r.S.throughput); ("goodput", J.Num r.S.goodput);
        ("latency", pct r.S.latency);
        ("read_latency", pct r.S.read_latency);
        ("write_latency", pct r.S.write_latency);
        ("scan_latency", pct r.S.scan_latency);
        ( "op_mix",
          J.Obj
            [ ("read", num r.S.ops_read); ("write", num r.S.ops_write);
              ("scan", num r.S.ops_scan) ] );
        ("crashed", J.Bool r.S.crashed); ("rto_ns", num r.S.rto_ns);
        ("ledger_mismatches", num r.S.ledger.S.mismatches) ]
  in
  let doc =
    J.Obj
      [ ("schema", J.Str "poseidon-bench-mvcc/v1");
        ("rev", rev_json ());
        ("config", J.Obj [ ("full", J.Bool !full) ]);
        ("runs", J.Arr (List.map run_json runs));
        ( "gate",
          J.Obj
            [ ("plain_read_p50_ns", num plain_p50);
              ("snapshot_read_p50_ns", num snap_p50);
              ( "read_overhead_ratio",
                J.Num
                  (float_of_int snap_p50 /. float_of_int (max 1 plain_p50))
              );
              ( "snapshot_within_1_25x_plain",
                J.Bool (4 * snap_p50 <= 5 * plain_p50) );
              ("write_all_throughput", J.Num write_all.S.throughput);
              ("read95_throughput", J.Num read95.S.throughput);
              ("write_all_shed", num write_all.S.shed);
              ("read95_shed", num read95.S.shed);
              ( "read_mix_outscales_writes",
                J.Bool
                  (read95.S.throughput > write_all.S.throughput
                  && read95.S.shed <= write_all.S.shed) ) ] );
        ("metrics", Obs.Metrics.snapshot ()) ]
  in
  write_doc (if !json_out = "" then "BENCH_mvcc.json" else !json_out) doc

let write_rcache_results (runs, un_p50, c_p50) =
  let module S = Service.Server in
  let module J = Obs.Json in
  let num i = J.Num (float_of_int i) in
  let pct (p : S.percentiles) =
    J.Obj
      [ ("p50", num p.S.p50); ("p99", num p.S.p99); ("p999", num p.S.p999);
        ("mean", J.Num p.S.mean); ("max", num p.S.max);
        ("samples", num p.S.samples) ]
  in
  let run_json (label, (cfg : S.config), (r : S.result), hr) =
    J.Obj
      [ ("label", J.Str label);
        ( "config",
          J.Obj
            [ ("shards", num cfg.S.shards); ("clients", num cfg.S.clients);
              ("rate", J.Num cfg.S.rate); ("duration", J.Num cfg.S.duration);
              ("zipf_theta", J.Num cfg.S.zipf_theta);
              ("read_pct", num cfg.S.read_pct);
              ("mvcc_window", num cfg.S.mvcc_window);
              ("rcache_entries", num cfg.S.rcache_entries);
              ("seed", num cfg.S.seed) ] );
        ("offered", num r.S.offered); ("completed", num r.S.completed);
        ("shed", num r.S.shed);
        ("throughput", J.Num r.S.throughput); ("goodput", J.Num r.S.goodput);
        ("hit_rate", J.Num hr);
        ("latency", pct r.S.latency);
        ("read_latency", pct r.S.read_latency);
        ("write_latency", pct r.S.write_latency);
        ("crashed", J.Bool r.S.crashed); ("rto_ns", num r.S.rto_ns);
        ("ledger_mismatches", num r.S.ledger.S.mismatches) ]
  in
  let doc =
    J.Obj
      [ ("schema", J.Str "poseidon-bench-rcache/v1");
        ("rev", rev_json ());
        ("config", J.Obj [ ("full", J.Bool !full) ]);
        ("runs", J.Arr (List.map run_json runs));
        ( "gate",
          J.Obj
            [ ("uncached_read_p50_ns", num un_p50);
              ("cached_read_p50_ns", num c_p50);
              ( "read_speedup_ratio",
                J.Num (float_of_int c_p50 /. float_of_int (max 1 un_p50)) );
              ( "cached_read_p50_le_0_6x_uncached",
                J.Bool (5 * c_p50 <= 3 * un_p50) );
              ( "zero_ledger_mismatches",
                J.Bool
                  (List.for_all
                     (fun (_, _, (r : S.result), _) ->
                       r.S.ledger.S.mismatches = 0)
                     runs) ) ] );
        ("metrics", Obs.Metrics.snapshot ()) ]
  in
  write_doc (if !json_out = "" then "BENCH_rcache.json" else !json_out) doc

let write_alloc_results (runs, (raw_p50, raw_mean, tc_p50, tc_mean), (plain_w50, tc_w50)) =
  let module S = Service.Server in
  let module J = Obs.Json in
  let num i = J.Num (float_of_int i) in
  let pct (p : S.percentiles) =
    J.Obj
      [ ("p50", num p.S.p50); ("p99", num p.S.p99); ("p999", num p.S.p999);
        ("mean", J.Num p.S.mean); ("max", num p.S.max);
        ("samples", num p.S.samples) ]
  in
  let run_json (label, (cfg : S.config), (r : S.result)) =
    J.Obj
      [ ("label", J.Str label);
        ( "config",
          J.Obj
            [ ("shards", num cfg.S.shards); ("clients", num cfg.S.clients);
              ("rate", J.Num cfg.S.rate); ("duration", J.Num cfg.S.duration);
              ("tcache_mag", num cfg.S.tcache_mag);
              ("seed", num cfg.S.seed) ] );
        ("offered", num r.S.offered); ("completed", num r.S.completed);
        ("shed", num r.S.shed);
        ("throughput", J.Num r.S.throughput); ("goodput", J.Num r.S.goodput);
        ("latency", pct r.S.latency);
        ("write_latency", pct r.S.write_latency);
        ("crashed", J.Bool r.S.crashed); ("rto_ns", num r.S.rto_ns);
        ("ledger_mismatches", num r.S.ledger.S.mismatches) ]
  in
  let doc =
    J.Obj
      [ ("schema", J.Str "poseidon-bench-alloc/v1");
        ("rev", rev_json ());
        ("config", J.Obj [ ("full", J.Bool !full) ]);
        ("runs", J.Arr (List.map run_json runs));
        ( "micro",
          J.Obj
            [ ("raw_alloc_p50_ns", num raw_p50);
              ("raw_alloc_mean_ns", J.Num raw_mean);
              ("tcache_alloc_p50_ns", num tc_p50);
              ("tcache_alloc_mean_ns", J.Num tc_mean) ] );
        ( "gate",
          J.Obj
            [ ( "alloc_p50_ratio",
                J.Num (float_of_int tc_p50 /. float_of_int (max 1 raw_p50)) );
              ( "alloc_p50_dropped_25pct",
                J.Bool (4 * tc_p50 <= 3 * raw_p50) );
              ("mag0_write_p50_ns", num plain_w50);
              ("tcache_write_p50_ns", num tc_w50);
              ("serve_write_p50_dropped", J.Bool (tc_w50 < plain_w50)) ] );
        ("metrics", Obs.Metrics.snapshot ()) ]
  in
  write_doc (if !json_out = "" then "BENCH_alloc.json" else !json_out) doc

let write_txn_results runs =
  let module S = Service.Server in
  let module J = Obs.Json in
  let num i = J.Num (float_of_int i) in
  let pct (p : S.percentiles) =
    J.Obj
      [ ("p50", num p.S.p50); ("p99", num p.S.p99); ("p999", num p.S.p999);
        ("mean", J.Num p.S.mean); ("max", num p.S.max);
        ("samples", num p.S.samples) ]
  in
  let run_json (label, (cfg : S.config), (r : S.result)) =
    let attempts = r.S.txns_committed + r.S.txns_aborted in
    J.Obj
      [ ("label", J.Str label);
        ( "config",
          J.Obj
            [ ("shards", num cfg.S.shards); ("clients", num cfg.S.clients);
              ("rate", J.Num cfg.S.rate); ("duration", J.Num cfg.S.duration);
              ("txn_pct", num cfg.S.txn_pct); ("txn_ops", num cfg.S.txn_ops);
              ("seed", num cfg.S.seed);
              ( "crash_at",
                match cfg.S.crash_at with
                | Some f -> J.Num f
                | None -> J.Null ) ] );
        ("offered", num r.S.offered); ("completed", num r.S.completed);
        ("throughput", J.Num r.S.throughput); ("goodput", J.Num r.S.goodput);
        ("latency", pct r.S.latency);
        ("txns_committed", num r.S.txns_committed);
        ("txns_aborted", num r.S.txns_aborted);
        ( "abort_rate",
          J.Num
            (float_of_int r.S.txns_aborted
            /. Float.max 1.0 (float_of_int attempts)) );
        ("txn_latency", pct r.S.txn_latency);
        ("crashed", J.Bool r.S.crashed); ("rto_ns", num r.S.rto_ns);
        ( "ledger",
          J.Obj
            [ ("checked", num r.S.ledger.S.checked);
              ("ambiguous", num r.S.ledger.S.ambiguous);
              ("mismatches", num r.S.ledger.S.mismatches) ] ) ]
  in
  let find label =
    List.find_opt (fun (l, _, _) -> l = label) runs
    |> Option.map (fun (_, _, r) -> r)
  in
  let tax =
    match (find "baseline", find "txn25-2op") with
    | Some b, Some t when t.S.txn_latency.S.samples > 0 ->
      J.Obj
        [ ("baseline_p50_ns", num b.S.latency.S.p50);
          ("txn_p50_ns", num t.S.txn_latency.S.p50);
          ("txn_over_single_p50",
           J.Num
             (float_of_int t.S.txn_latency.S.p50
             /. Float.max 1.0 (float_of_int b.S.latency.S.p50))) ]
    | _ -> J.Null
  in
  let doc =
    J.Obj
      [ ("schema", J.Str "poseidon-bench-txn/v1");
        ("rev", rev_json ());
        ("config", J.Obj [ ("full", J.Bool !full) ]);
        ("runs", J.Arr (List.map run_json runs));
        ("commit_latency_tax", tax);
        ("metrics", Obs.Metrics.snapshot ()) ]
  in
  write_doc (if !json_out = "" then "BENCH_txn.json" else !json_out) doc

let write_attrib_results runs =
  let module S = Service.Server in
  let module A = Obs.Attrib in
  let module J = Obs.Json in
  let num i = J.Num (float_of_int i) in
  let pct (p : S.percentiles) =
    J.Obj
      [ ("p50", num p.S.p50); ("p99", num p.S.p99); ("p999", num p.S.p999);
        ("mean", J.Num p.S.mean); ("max", num p.S.max);
        ("samples", num p.S.samples) ]
  in
  let run_json (label, (cfg : S.config), mode, (r : S.result), att) =
    J.Obj
      [ ("label", J.Str label);
        ( "config",
          J.Obj
            [ ("shards", num cfg.S.shards); ("clients", num cfg.S.clients);
              ("rate", J.Num cfg.S.rate); ("duration", J.Num cfg.S.duration);
              ("txn_pct", num cfg.S.txn_pct); ("txn_ops", num cfg.S.txn_ops);
              ("seed", num cfg.S.seed); ("replication", J.Str mode) ] );
        ("throughput", J.Num r.S.throughput); ("goodput", J.Num r.S.goodput);
        ("latency", pct r.S.latency); ("txn_latency", pct r.S.txn_latency);
        ("attribution", A.report_json att) ]
  in
  let find label =
    List.find_opt (fun (l, _, _, _, _) -> l = label) runs
    |> Option.map (fun (_, _, _, _, a) -> a)
  in
  let dom_name (a : A.report) =
    match A.dominant_stage a with
    | Some row -> J.Str (Obs.Span.stage_name row.A.stage)
    | None -> J.Null
  in
  (* the headline pins: each tax's latency multiple plus the budget
     stage the span trees blame it on — the stage whose summed time
     grew most over the same-seed baseline *)
  let tax_stage (n : A.report) (d : A.report) =
    let base st =
      match
        List.find_opt (fun (r : A.stage_row) -> r.A.stage = st) d.A.budget
      with
      | Some r -> r.A.total_ns
      | None -> 0
    in
    List.fold_left
      (fun acc (row : A.stage_row) ->
        let delta = row.A.total_ns - base row.A.stage in
        match acc with
        | Some (_, best) when best >= delta -> acc
        | _ -> Some (row.A.stage, delta))
      None n.A.budget
  in
  let pin nom den =
    match (find nom, find den) with
    | Some (n : A.report), Some (d : A.report) ->
      J.Obj
        [ ("p50_ns", num n.A.e2e_p50_ns);
          ("baseline_p50_ns", num d.A.e2e_p50_ns);
          ( "multiple",
            J.Num
              (float_of_int n.A.e2e_p50_ns
              /. Float.max 1.0 (float_of_int d.A.e2e_p50_ns)) );
          ( "dominant_stage",
            match tax_stage n d with
            | Some (st, _) -> J.Str (Obs.Span.stage_name st)
            | None -> J.Null );
          ( "dominant_stage_delta_ns",
            match tax_stage n d with
            | Some (_, delta) -> num delta
            | None -> J.Null );
          ("vote_dominant_stage", dom_name n);
          ("coverage", J.Num n.A.coverage) ]
    | _ -> J.Null
  in
  let doc =
    J.Obj
      [ ("schema", J.Str "poseidon-bench-attrib/v1");
        ("rev", rev_json ());
        ("config", J.Obj [ ("full", J.Bool !full) ]);
        ("runs", J.Arr (List.map run_json runs));
        ( "pins",
          J.Obj
            [ ("sync_replication_tax", pin "single-sync" "single-unrepl");
              ("txn_commit_tax", pin "txn-unrepl" "single-unrepl") ] );
        ("metrics", Obs.Metrics.snapshot ()) ]
  in
  write_doc (if !json_out = "" then "BENCH_attrib.json" else !json_out) doc

(* ---------- driver ---------- *)

let () =
  let usage =
    "bench/main.exe [--figure N]... [--ablation NAME]... [--suite NAME] \
     [--full] [--threads LIST] [--bechamel] [--smoke] [--json-out FILE]"
  in
  let spec =
    [ ( "--figure",
        Arg.Int (fun n -> figures := n :: !figures),
        "N  run only figure N (3, 6, 7, 8 or 9); repeatable" );
      ( "--ablation",
        Arg.String (fun s -> ablations := s :: !ablations),
        "NAME  run only ablation NAME (index, subheap); repeatable" );
      ("--full", Arg.Set full, " paper-scale parameters (slow)");
      ( "--threads",
        Arg.String
          (fun s ->
            thread_counts := List.map int_of_string (String.split_on_char ',' s)),
        "LIST  comma-separated thread counts" );
      ("--bechamel", Arg.Set run_bechamel, " also run the wall-clock suite");
      ("--smoke", Arg.Set smoke, " quick sanity suite only (for CI)");
      ( "--suite",
        Arg.Set_string suite,
        "NAME  run a named suite instead of the figures ('service':\n\
        \        poseidon-kv rate sweep + crash run -> BENCH_service.json;\n\
        \        'replication': sync/async tax + promote-vs-replay RTO ->\n\
        \        BENCH_replication.json; 'txn': cross-shard 2PC abort rate\n\
        \        + commit-latency tax -> BENCH_txn.json; 'attrib': per-stage\n\
        \        latency budgets + dominant-stage pins -> BENCH_attrib.json;\n\
        \        'batch': group-commit window sweep, sync-vs-async p50 gate\n\
        \        -> BENCH_batch.json; 'mvcc': read-mix sweep + snapshot-read\n\
        \        overhead gate -> BENCH_mvcc.json; 'alloc': magazine-cache\n\
        \        alloc p50 + serve write p50 gates -> BENCH_alloc.json;\n\
        \        'rcache': read-cache hit-rate/skew sweep + cached-read\n\
        \        p50 gate -> BENCH_rcache.json)" );
      ( "--json-out",
        Arg.Set_string json_out,
        "FILE  metrics snapshot destination (default BENCH_results.json, \
         BENCH_service.json / BENCH_replication.json for the named suites)" ) ]
  in
  Arg.parse spec (fun _ -> ()) usage;
  note "Poseidon reproduction benchmark suite";
  note "(simulated 64-CPU, 2-NUMA-node machine with Optane-like NVMM;";
  note " see DESIGN.md and EXPERIMENTS.md for the methodology)";
  if !suite = "service" then begin
    let runs = service_suite () in
    write_service_results runs;
    exit 0
  end
  else if !suite = "replication" then begin
    let runs = replication_suite () in
    write_replication_results runs;
    exit 0
  end
  else if !suite = "txn" then begin
    let runs = txn_suite () in
    write_txn_results runs;
    exit 0
  end
  else if !suite = "attrib" then begin
    let runs = attrib_suite () in
    write_attrib_results runs;
    exit 0
  end
  else if !suite = "batch" then begin
    let res = batch_suite () in
    write_batch_results res;
    exit 0
  end
  else if !suite = "mvcc" then begin
    let res = mvcc_suite () in
    write_mvcc_results res;
    exit 0
  end
  else if !suite = "alloc" then begin
    let res = alloc_suite () in
    write_alloc_results res;
    exit 0
  end
  else if !suite = "rcache" then begin
    let res = rcache_suite () in
    write_rcache_results res;
    exit 0
  end
  else if !suite <> "" then begin
    Printf.eprintf
      "bench: unknown suite %S (known: service, replication, txn, attrib, \
       batch, mvcc, alloc, rcache)\n"
      !suite;
    exit 2
  end;
  (if !smoke then smoke_suite ()
   else begin
     let default = !figures = [] && !ablations = [] in
     let run_fig n = default || List.mem n !figures in
     let run_abl s = default || List.mem s !ablations in
     if run_fig 3 then figure3 ();
     if run_fig 6 then figure6 ();
     if run_fig 7 then figure7 ();
     if run_fig 8 then figure8 ();
     if run_fig 9 then figure9 ();
     if run_abl "index" then ablation_index ();
     if run_abl "capacity" then ablation_capacity ();
     if run_abl "costs" then ablation_costs ();
     if run_abl "subheap" then ablation_subheap_mpk ();
     if run_abl "ycsb-abc" then extension_ycsb_abc ();
     if run_abl "trace" then extension_trace_replay ();
     if run_abl "remote-free" then extension_remote_free ();
     if run_abl "exthash" then extension_exthash ();
     if !run_bechamel then bechamel_suite ()
   end);
  write_results ()
