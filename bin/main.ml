(* poseidon-repro: command-line front end for the reproduction.

   Subcommands:
     bench      run one workload on one allocator with explicit knobs
     safety     print the Fig. 3 safety matrix
     stress     random alloc/free/crash torture with invariant checking
     crashcheck systematic persistency model checking (every crash point)
     inspect    allocate a workload and dump device/MPK counters
     fsck       run a workload and print a heap consistency report
     trace      replay one recorded trace on every allocator

   (Figure regeneration lives in bench/main.exe; this tool is for
   interactive poking.) *)

open Cmdliner

let allocator_conv =
  let parse = function
    | "poseidon" -> Ok `Poseidon
    | "pmdk" -> Ok `Pmdk
    | "makalu" -> Ok `Makalu
    | s -> Error (`Msg (Printf.sprintf "unknown allocator %S" s))
  in
  let print ppf a =
    Format.pp_print_string ppf
      (match a with `Poseidon -> "poseidon" | `Pmdk -> "pmdk" | `Makalu -> "makalu")
  in
  Arg.conv (parse, print)

let factory_of = function
  | `Poseidon -> Workloads.Factories.poseidon ()
  | `Pmdk -> Workloads.Factories.pmdk ()
  | `Makalu -> Workloads.Factories.makalu ()

let allocator_arg =
  Arg.(
    value
    & opt allocator_conv `Poseidon
    & info [ "a"; "allocator" ] ~docv:"NAME"
        ~doc:"Allocator under test: poseidon, pmdk or makalu.")

let threads_arg =
  Arg.(
    value
    & opt int 8
    & info [ "t"; "threads" ] ~docv:"N" ~doc:"Simulated threads.")

let workload_conv =
  Arg.enum
    [ ("micro", `Micro); ("larson", `Larson); ("ackermann", `Ackermann);
      ("kruskal", `Kruskal); ("nqueens", `Nqueens); ("ycsb", `Ycsb) ]

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Record a simulated-time event trace of the run and write it to \
           $(docv) as Chrome trace-event JSON (load in Perfetto or \
           chrome://tracing).")

(* Tracing brackets the whole subcommand so setup, crash injection and
   recovery all land in the trace, not just the steady state. *)
let with_tracing trace_out f =
  if trace_out <> None then Obs.Trace.start ();
  let r = f () in
  match trace_out with
  | None -> r
  | Some file ->
    Obs.Trace.stop ();
    let r =
      try
        Obs.Trace.write_chrome file;
        let dropped = Obs.Trace.dropped () in
        Printf.printf "trace: %d events -> %s (%d emitted, %d dropped)\n"
          (Obs.Trace.count ()) file
          (Obs.Trace.total_emitted ())
          dropped;
        if dropped > 0 then
          Printf.printf
            "trace: WARNING: ring overflowed — the oldest %d event(s) were \
             overwritten and are missing from %s (raise the ring capacity or \
             trace a shorter run)\n"
            dropped file;
        let span_dropped = Obs.Span.dropped () in
        if span_dropped > 0 then
          Printf.printf
            "trace: WARNING: span store filled — %d span(s) dropped; the \
             exported span trees are incomplete\n"
            span_dropped;
        r
      with Sys_error msg ->
        Printf.eprintf "trace: cannot write trace file: %s\n" msg;
        1
    in
    Obs.Trace.clear ();
    r

(* ---------- bench ---------- *)

let bench_cmd =
  let workload_arg =
    Arg.(
      value
      & opt workload_conv `Micro
      & info [ "w"; "workload" ] ~docv:"NAME"
          ~doc:"Workload: micro, larson, ackermann, kruskal, nqueens, ycsb.")
  in
  let size_arg =
    Arg.(
      value
      & opt int 256
      & info [ "s"; "size" ] ~docv:"BYTES"
          ~doc:"Object size (micro workload only).")
  in
  let ops_arg =
    Arg.(
      value
      & opt int 20_000
      & info [ "n"; "ops" ] ~docv:"N" ~doc:"Total operations / iterations.")
  in
  let run allocator threads workload size ops trace_out =
    with_tracing trace_out @@ fun () ->
    let factory = factory_of allocator in
    let name = factory.Workloads.Factories.name in
    (match workload with
     | `Micro ->
       let mops =
         Workloads.Microbench.run ~factory ~size ~threads ~total_ops:ops ()
       in
       Printf.printf "%s micro %dB x%d: %.3f Mops/s\n" name size threads mops
     | `Larson ->
       let ops_s =
         Workloads.Larson.run ~factory ~threads ~duration_s:0.005 ()
       in
       Printf.printf "%s larson x%d: %.0f ops/s\n" name threads ops_s
     | `Ackermann ->
       let mops =
         Workloads.Ackermann.run ~factory ~threads ~iterations:(max 1 (ops / 100)) ()
       in
       Printf.printf "%s ackermann x%d: %.4f Miter/s\n" name threads mops
     | `Kruskal ->
       let mops = Workloads.Kruskal.run ~factory ~threads ~iterations:ops () in
       Printf.printf "%s kruskal x%d: %.4f Miter/s\n" name threads mops
     | `Nqueens ->
       let mops = Workloads.Nqueens.run ~factory ~threads ~iterations:ops () in
       Printf.printf "%s nqueens x%d: %.4f Miter/s\n" name threads mops
     | `Ycsb ->
       let r =
         Workloads.Ycsb.run ~factory ~threads ~records:(max 100 (ops / 2))
           ~operations:ops ()
       in
       Printf.printf "%s ycsb x%d: load %.3f Mops/s, workload A %.3f Mops/s\n"
         name threads r.Workloads.Ycsb.load_mops r.Workloads.Ycsb.a_mops);
    0
  in
  Cmd.v
    (Cmd.info "bench" ~doc:"Run one workload on one allocator.")
    Term.(
      const run $ allocator_arg $ threads_arg $ workload_arg $ size_arg
      $ ops_arg $ trace_out_arg)

(* ---------- safety ---------- *)

let safety_cmd =
  let run () =
    List.iter
      (fun row ->
        Printf.printf "%s\n" row.Workloads.Safety.attack;
        List.iter
          (fun (name, o) ->
            Printf.printf "  %-12s %s\n" name
              (Workloads.Safety.outcome_to_string o))
          row.Workloads.Safety.results)
      (Workloads.Safety.matrix ());
    0
  in
  Cmd.v
    (Cmd.info "safety"
       ~doc:"Replay the paper's Fig. 3 corruption attacks on every allocator.")
    Term.(const run $ const ())

(* ---------- stress ---------- *)

let stress_cmd =
  let rounds_arg =
    Arg.(
      value & opt int 50
      & info [ "r"; "rounds" ] ~docv:"N" ~doc:"Crash/recovery rounds.")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"PRNG seed.")
  in
  let run rounds seed trace_out =
    with_tracing trace_out @@ fun () ->
    let module Prng = Repro_util.Prng in
    let base = 1 lsl 30 in
    let mach = Machine.create () in
    let heap =
      ref
        (Poseidon.Heap.create mach ~base ~size:(1 lsl 34) ~heap_id:1
           ~sub_data_size:(1 lsl 20) ())
    in
    let rng = Prng.create seed in
    let dev = Machine.dev mach in
    for round = 1 to rounds do
      for _ = 1 to 20 + Prng.int rng 50 do
        if Prng.bool rng then
          ignore (Poseidon.Heap.alloc !heap (32 lsl Prng.int rng 8))
        else ignore (Poseidon.Heap.tx_alloc !heap 64 ~is_end:(Prng.bool rng))
      done;
      let strict = Prng.bool rng in
      (* on failure, report where we were before re-raising: the round,
         seed and crash mode are what a reproduction needs *)
      (try
         Nvmm.Memdev.crash dev (if strict then `Strict else `Adversarial rng);
         heap := Poseidon.Heap.attach mach ~base ();
         Poseidon.Heap.check_invariants !heap
       with e ->
         Printf.eprintf
           "stress: FAILED at round %d/%d (seed %d, crash mode %s): %s\n%!"
           round rounds seed
           (if strict then "strict" else "adversarial")
           (Printexc.to_string e);
         raise e);
      if round mod 10 = 0 then
        Printf.printf "round %d: invariants OK (live=%d bytes)\n%!" round
          (Poseidon.Heap.stats !heap).Poseidon.Heap.live_bytes
    done;
    Printf.printf "stress: %d crash/recovery rounds, all invariants held\n"
      rounds;
    0
  in
  Cmd.v
    (Cmd.info "stress"
       ~doc:"Random allocation/crash/recovery torture with invariant checks.")
    Term.(const run $ rounds_arg $ seed_arg $ trace_out_arg)

(* ---------- crashcheck ---------- *)

let crashcheck_cmd =
  let scenario_arg =
    Arg.(
      value & opt string "all"
      & info [ "scenario" ] ~docv:"NAME"
          ~doc:
            "Scenario to explore: alloc, free, tx-commit, tx-abort, extend, \
             kv-put, kv-delete, kv-txn (cross-shard 2PC transactions), \
             kv-snapshot (MVCC snapshot reads audited against the \
             completed-prefix model), kv-replicated-put (two-machine sync \
             replication with transaction records, cluster-wide crash), \
             kv-batched-put (group commit + doorbell-batched replication, \
             cluster-wide crash), kv-tcache-put (magazine-cached \
             allocation: leases, batch publish, bulk reclaim), \
             kv-rcache-put (DRAM read cache armed; every cached read \
             audited against the completed-prefix model), broken / \
             kv-txn-broken / kv-batched-broken / mvcc-broken / \
             tcache-broken / rcache-broken (deliberately buggy, for \
             mutation sanity checks) or all (every correct one).")
  in
  let max_points_arg =
    Arg.(
      value & opt int 0
      & info [ "max-points" ] ~docv:"N"
          ~doc:
            "Budget: explore at most $(docv) crash points per scenario \
             (evenly strided); 0 = exhaustive.")
  in
  let subsets_arg =
    Arg.(
      value & opt int 2
      & info [ "subsets" ] ~docv:"N"
          ~doc:
            "Budget: adversarial dirty-line subsets tried per crash point, \
             in addition to the dirty-lost-all crash.")
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"S" ~doc:"Base seed for subset derivation.")
  in
  let point_arg =
    Arg.(
      value & opt (some int) None
      & info [ "point" ] ~docv:"K"
          ~doc:
            "Replay a single crash at persistence point $(docv) of the \
             chosen scenario instead of sweeping (counterexample replay).")
  in
  let subset_seed_arg =
    Arg.(
      value & opt (some int) None
      & info [ "subset-seed" ] ~docv:"S"
          ~doc:
            "With --point: crash in dirty-subset mode with this derived \
             seed (as printed in the counterexample); omit for \
             dirty-lost-all.")
  in
  let run scenario max_points subsets seed point subset_seed trace_out =
    with_tracing trace_out @@ fun () ->
    let module C = Crashcheck in
    let scenarios =
      if scenario = "all" then Ok (C.all_scenarios ())
      else
        match C.scenario_by_name scenario with
        | Some s -> Ok [ s ]
        | None -> Error (Printf.sprintf "unknown scenario %S" scenario)
    in
    match scenarios with
    | Error msg ->
      Printf.eprintf "crashcheck: %s\n" msg;
      2
    | Ok scenarios -> (
      match point with
      | Some point -> (
        match scenarios with
        | [ scn ] -> (
          let mode =
            match subset_seed with
            | Some s -> C.Dirty_subset s
            | None -> C.Dirty_lost_all
          in
          match C.check_point scn ~point ~mode with
          | None ->
            Printf.printf
              "crashcheck: %s point %d (%s): recovery verified, all oracles \
               green\n"
              scn.C.sname point (C.mode_to_string mode);
            0
          | Some cx ->
            Format.printf "%a@." C.pp_counterexample cx;
            1)
        | _ ->
          Printf.eprintf
            "crashcheck: --point needs a single --scenario, not 'all'\n";
          2)
      | None ->
        let reports =
          List.map
            (fun scn ->
              let r =
                C.run ~max_points ~subsets_per_point:subsets ~seed scn
              in
              Format.printf "%a@." C.pp_report r;
              r)
            scenarios
        in
        let points =
          List.fold_left (fun a r -> a + r.C.points_explored) 0 reports
        and subsets_tried =
          List.fold_left (fun a r -> a + r.C.subsets_tried) 0 reports
        and verified =
          List.fold_left (fun a r -> a + r.C.recoveries_verified) 0 reports
        and cexs = List.concat_map (fun r -> r.C.counterexamples) reports in
        Printf.printf
          "crashcheck: %d crash points explored, %d subsets tried, %d \
           recoveries verified, %d counterexample(s)\n"
          points subsets_tried verified (List.length cexs);
        List.iter
          (fun cx ->
            Printf.printf
              "replay: poseidon-repro crashcheck --scenario %s --point %d%s \
               --trace-out cex.json\n"
              cx.C.cx_scenario cx.C.cx_point
              (match cx.C.cx_mode with
               | C.Dirty_lost_all -> ""
               | C.Dirty_subset s -> Printf.sprintf " --subset-seed %d" s))
          cexs;
        if cexs = [] then 0 else 1)
  in
  Cmd.v
    (Cmd.info "crashcheck"
       ~doc:
         "Systematic persistency model checking: crash at every persistence \
          point of each covered heap operation (dirty-lost-all plus seeded \
          adversarial dirty-line subsets), recover, and verify \
          durability/atomicity oracles.")
    Term.(
      const run $ scenario_arg $ max_points_arg $ subsets_arg $ seed_arg
      $ point_arg $ subset_seed_arg $ trace_out_arg)

(* ---------- inspect ---------- *)

let inspect_cmd =
  let tcache_mag_arg =
    Arg.(
      value & opt int 0
      & info [ "tcache-mag" ] ~docv:"K"
          ~doc:
            "Magazine size of the DRAM thread cache layered over the \
             allocator (Poseidon only); 0 disables the cache — the \
             uncached legacy path.")
  in
  let run allocator threads tcache_mag trace_out =
    with_tracing trace_out @@ fun () ->
    let factory = factory_of allocator in
    (* Poseidon keeps its heap handle so the aggregate statistics —
       including the thread-cache traffic — can be rendered below *)
    let mach, inst, pheap =
      match allocator with
      | `Poseidon ->
        let mach = Machine.create () in
        let heap =
          Poseidon.Heap.create mach ~base:Workloads.Factories.heap_base
            ~size:Workloads.Factories.default_window ~heap_id:1
            ~sub_data_size:(128 * 1024 * 1024) ()
        in
        (mach, Poseidon.instance heap, Some heap)
      | _ ->
        let mach, inst = factory.Workloads.Factories.make () in
        (mach, inst, None)
    in
    let inst =
      if tcache_mag > 0 then fst (Tcache.wrap ~mag:tcache_mag inst) else inst
    in
    let _ =
      Machine.parallel mach ~threads (fun i ->
          let rng = Repro_util.Prng.create i in
          let live = Array.make 50 Alloc_intf.null in
          for j = 0 to 199 do
            let s = j mod 50 in
            if not (Alloc_intf.is_null live.(s)) then
              Alloc_intf.i_free inst live.(s);
            live.(s) <-
              (match
                 Alloc_intf.i_alloc inst (16 + Repro_util.Prng.int rng 2000)
               with
               | Some p -> p
               | None -> Alloc_intf.null)
          done)
    in
    Printf.printf "workload done on %s with %d threads\n"
      factory.Workloads.Factories.name threads;
    (match pheap with
     | Some heap ->
       let s = Poseidon.Heap.stats heap in
       Printf.printf
         "heap: %d subheaps, %d live B, %d free B, %d merges, %d defrag \
          passes, %d hash extends\n"
         s.Poseidon.Heap.subheaps_active s.Poseidon.Heap.live_bytes
         s.Poseidon.Heap.free_bytes s.Poseidon.Heap.merges
         s.Poseidon.Heap.defrag_passes s.Poseidon.Heap.hash_extends;
       Printf.printf
         "heap: %d invalid frees, %d double frees, %d tx commits, %d tx \
          aborts, %d recovery replays\n"
         s.Poseidon.Heap.invalid_frees s.Poseidon.Heap.double_frees
         s.Poseidon.Heap.tx_commits s.Poseidon.Heap.tx_aborts
         s.Poseidon.Heap.recovery_replays;
       Printf.printf
         "tcache: %d hits, %d misses, %d bin refills, %d bin flushes\n"
         s.Poseidon.Heap.tcache_hits s.Poseidon.Heap.tcache_misses
         s.Poseidon.Heap.bin_refills s.Poseidon.Heap.bin_flushes
     | None -> ());
    let c = Nvmm.Memdev.counters (Machine.dev mach) in
    Printf.printf
      "device: %d loads, %d stores, %d lines flushed, %d fences\n"
      c.Nvmm.Memdev.loads c.Nvmm.Memdev.stores c.Nvmm.Memdev.lines_flushed
      c.Nvmm.Memdev.fences;
    Printf.printf "mpk faults observed: %d\n"
      (Mpk.faults_observed (Machine.mpk mach));
    Printf.printf "locks (%d):\n" (List.length (Machine.lock_stats mach));
    List.iter
      (fun (lname, s) ->
        Printf.printf "  %-20s %6d acquisitions, %5d contended, %10d ns waited\n"
          lname s.Machine.Lock.acquisitions s.Machine.Lock.contended
          s.Machine.Lock.wait_ns)
      (Machine.lock_stats mach);
    0
  in
  Cmd.v
    (Cmd.info "inspect" ~doc:"Run a small mixed workload and dump counters.")
    Term.(const run $ allocator_arg $ threads_arg $ tcache_mag_arg
          $ trace_out_arg)

(* ---------- fsck ---------- *)

let fsck_cmd =
  let crash_arg =
    Arg.(
      value & flag
      & info [ "crash" ] ~doc:"Crash-inject before checking (strict mode).")
  in
  let run threads crash =
    let base = Workloads.Factories.heap_base in
    let mach = Machine.create () in
    let heap =
      Poseidon.Heap.create mach ~base ~size:(1 lsl 38) ~heap_id:1
        ~sub_data_size:(1 lsl 22) ()
    in
    let inst = Poseidon.instance heap in
    let _ =
      Machine.parallel mach ~threads (fun i ->
          let rng = Repro_util.Prng.create i in
          let live = Array.make 64 Alloc_intf.null in
          for j = 0 to 299 do
            let s = j mod 64 in
            if not (Alloc_intf.is_null live.(s)) then
              Alloc_intf.i_free inst live.(s);
            live.(s) <-
              Option.value ~default:Alloc_intf.null
                (Alloc_intf.i_alloc inst (32 lsl Repro_util.Prng.int rng 8))
          done)
    in
    let heap =
      if crash then begin
        Nvmm.Memdev.crash (Machine.dev mach) `Strict;
        Poseidon.Heap.attach mach ~base ()
      end
      else heap
    in
    let report = Poseidon.Fsck.run heap in
    Format.printf "%a" Poseidon.Fsck.pp report;
    if Poseidon.Fsck.is_clean report then 0 else 1
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:
         "Run a mixed workload, optionally crash, and print a full heap \
          consistency report.")
    Term.(const run $ threads_arg $ crash_arg)

(* ---------- serve ---------- *)

let serve_cmd =
  let shards_arg =
    Arg.(
      value & opt int 4
      & info [ "shards" ] ~docv:"N" ~doc:"Server shards (one simulated CPU each).")
  in
  let clients_arg =
    Arg.(
      value & opt int 16
      & info [ "clients" ] ~docv:"N" ~doc:"Open-loop client threads.")
  in
  let rate_arg =
    Arg.(
      value & opt float 50_000.
      & info [ "rate" ] ~docv:"OPS"
          ~doc:"Total offered load, requests per simulated second.")
  in
  let duration_arg =
    Arg.(
      value & opt float 0.02
      & info [ "duration" ] ~docv:"SECS" ~doc:"Simulated seconds of traffic.")
  in
  let value_size_arg =
    Arg.(
      value & opt int 128
      & info [ "value-size" ] ~docv:"BYTES" ~doc:"Value object size.")
  in
  let zipf_arg =
    Arg.(
      value & opt float 0.99
      & info [ "zipf" ] ~docv:"THETA"
          ~doc:"Zipfian skew of key popularity (YCSB default 0.99).")
  in
  let keyspace_arg =
    Arg.(
      value & opt int 4096
      & info [ "keyspace" ] ~docv:"N" ~doc:"Distinct keys.")
  in
  let queue_arg =
    Arg.(
      value & opt int 64
      & info [ "queue-capacity" ] ~docv:"N"
          ~doc:"Per-shard request queue bound (admission control).")
  in
  let read_pct_arg =
    Arg.(
      value & opt int 50
      & info [ "read-pct" ] ~docv:"PCT"
          ~doc:"Percentage of requests that are gets (default 50).")
  in
  let scan_pct_arg =
    Arg.(
      value & opt int 5
      & info [ "scan-pct" ] ~docv:"PCT"
          ~doc:"Percentage of requests that are scans (default 5).")
  in
  let mvcc_window_arg =
    Arg.(
      value & opt int 0
      & info [ "mvcc-window" ] ~docv:"K"
          ~doc:
            "MVCC version-chain window: retain up to K committed versions \
             per mutated key and serve every get/scan as a lock-free \
             snapshot read (scans become multi-shard, consistent at one \
             timestamp).  0 (default) = the pre-MVCC locked read path, \
             byte-identically.")
  in
  let serve_tcache_mag_arg =
    Arg.(
      value & opt int 0
      & info [ "tcache-mag" ] ~docv:"K"
          ~doc:
            "Magazine size of the DRAM thread cache layered over the \
             allocator: allocations pop volatile per-CPU bins (refilled K \
             blocks per carve under one allocator transaction) and frees \
             stash and flush in bulk.  0 (default) = no cache, \
             byte-identically the uncached path.")
  in
  let serve_rcache_arg =
    Arg.(
      value & opt int 0
      & info [ "rcache-entries" ] ~docv:"K"
          ~doc:
            "Per-shard slot count of the DRAM read cache layered in front \
             of the persistent trees: gets (and snapshot gets whose \
             timestamp allows) answer from a volatile digest cache on a \
             hit, write-through invalidated by every mutation path.  0 \
             (default) = no cache, byte-identically the uncached read \
             path.")
  in
  let txn_pct_arg =
    Arg.(
      value & opt int 0
      & info [ "txn-pct" ] ~docv:"PCT"
          ~doc:
            "Percentage of requests that are cross-shard atomic \
             transactions (2PC over the coordinator decision record).")
  in
  let txn_ops_arg =
    Arg.(
      value & opt int 3
      & info [ "txn-ops" ] ~docv:"N"
          ~doc:"Operations per generated transaction (distinct keys).")
  in
  let crash_at_arg =
    Arg.(
      value & opt (some float) None
      & info [ "crash-at" ] ~docv:"FRAC"
          ~doc:
            "Crash the machine at $(docv) x duration (in (0,1)), then \
             re-attach, replay in-flight effects and verify the store \
             against the ledger of acked writes.")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"PRNG seed.")
  in
  let json_out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "json-out" ] ~docv:"FILE"
          ~doc:"Write results + metrics snapshot as JSON to $(docv).")
  in
  let replicate_arg =
    Arg.(
      value & flag
      & info [ "replicate" ]
          ~doc:
            "Serve on a two-machine cluster: ship every mutation to a backup \
             machine; with --crash-at the backup is $(i,promoted) (seal + \
             tail replay) instead of re-attaching the primary.")
  in
  let repl_mode_arg =
    Arg.(
      value & opt (enum [ ("sync", `Sync); ("async", `Async) ]) `Sync
      & info [ "repl-mode" ] ~docv:"MODE"
          ~doc:
            "sync: hold each mutation's reply until the backup acks (acked \
             writes survive primary loss); async: reply after the local \
             persist, backup lag bounded by the window.")
  in
  let wire_ns_arg =
    Arg.(
      value & opt int 20_000
      & info [ "wire-ns" ] ~docv:"NS"
          ~doc:"One-way inter-machine link latency.")
  in
  let repl_window_arg =
    Arg.(
      value & opt int 64
      & info [ "repl-window" ] ~docv:"N"
          ~doc:"Max unacked records per shard (the async lag bound).")
  in
  let drop_pct_arg =
    Arg.(
      value & opt int 0
      & info [ "drop-pct" ] ~docv:"PCT"
          ~doc:"Seeded link loss percentage (go-back-N recovers).")
  in
  let batch_window_arg =
    Arg.(
      value & opt int 1
      & info [ "batch-window" ] ~docv:"N"
          ~doc:
            "Group-commit window: up to N consecutive queued mutations \
             persist under one covering flush and ship as one replication \
             frame.  1 (default) = the per-op path, byte-identically.")
  in
  let batch_bytes_arg =
    Arg.(
      value & opt int 0
      & info [ "batch-bytes" ] ~docv:"BYTES"
          ~doc:
            "Byte cap on a commit group (0 = unlimited): a group closes \
             once its encoded payload would exceed this.")
  in
  let dup_pct_arg =
    Arg.(
      value & opt int 0
      & info [ "dup-pct" ] ~docv:"PCT"
          ~doc:"Seeded duplicate-delivery percentage (applier dedups).")
  in
  let run shards clients rate duration value_size zipf keyspace queue read_pct
      scan_pct txn_pct txn_ops crash_at seed json_out replicate repl_mode
      wire_ns repl_window drop_pct dup_pct batch_window batch_bytes mvcc_window
      tcache_mag rcache_entries trace_out =
    with_tracing trace_out @@ fun () ->
    let module S = Service.Server in
    (* Span store on for every serve run — attribution is part of the
       result, not an opt-in.  Cleared (not stopped) afterwards so a
       --trace-out export written by [with_tracing] still sees it. *)
    Obs.Span.clear ();
    Obs.Span.start ();
    let cfg =
      { S.default_config with
        shards;
        clients;
        rate;
        duration;
        value_size;
        zipf_theta = zipf;
        keyspace;
        queue_capacity = queue;
        read_pct;
        scan_pct;
        txn_pct;
        txn_ops;
        crash_at;
        seed;
        batch_window;
        batch_bytes;
        mvcc_window;
        tcache_mag;
        rcache_entries }
    in
    let factory = Workloads.Factories.poseidon () in
    let repl, r =
      if replicate then begin
        let rcfg =
          { S.default_repl_config with
            S.repl_mode =
              (match repl_mode with
               | `Sync -> Replica.Sync
               | `Async -> Replica.Async);
            wire_ns;
            repl_window;
            link_drop_pct = drop_pct;
            link_dup_pct = dup_pct }
        in
        let rr =
          S.run_replicated
            ~make:(fun mach -> Workloads.Factories.poseidon_on mach)
            cfg rcfg
        in
        (Some rr, rr.S.base)
      end
      else
        ( None,
          S.run
            ~make:(fun () -> factory.Workloads.Factories.make ())
            ~reattach:(fun mach ->
              Poseidon.instance
                (Poseidon.Heap.attach mach
                   ~base:Workloads.Factories.heap_base ()))
            cfg )
    in
    Printf.printf
      "poseidon-kv: %d shards, %d clients, offered %.0f req/s for %.3f s%s\n"
      shards clients rate duration
      (match crash_at with
       | Some f -> Printf.sprintf " (crash at %.0f%%)" (f *. 100.)
       | None -> "");
    Printf.printf
      "  offered %d  admitted %d  shed %d (Overloaded)  completed %d\n"
      r.S.offered r.S.admitted r.S.shed r.S.completed;
    Printf.printf "  throughput %.0f req/s  goodput %.0f req/s\n" r.S.throughput
      r.S.goodput;
    Printf.printf
      "  latency: p50 %d ns  p99 %d ns  p999 %d ns  mean %.0f ns  max %d ns \
       (%d samples)\n"
      r.S.latency.S.p50 r.S.latency.S.p99 r.S.latency.S.p999 r.S.latency.S.mean
      r.S.latency.S.max r.S.latency.S.samples;
    Printf.printf "  op mix (offered): %d read, %d write, %d scan%s\n"
      r.S.ops_read r.S.ops_write r.S.ops_scan
      ((if mvcc_window > 0 then
          Printf.sprintf "  [mvcc window %d: lock-free reads]" mvcc_window
        else "")
      ^ (if tcache_mag > 0 then
           Printf.sprintf "  [tcache mag %d: cached allocs]" tcache_mag
         else "")
      ^
      if rcache_entries > 0 then
        Printf.sprintf "  [rcache %d/shard: cached reads]" rcache_entries
      else "");
    Printf.printf "  read latency:  p50 %d ns  p99 %d ns (%d samples)\n"
      r.S.read_latency.S.p50 r.S.read_latency.S.p99 r.S.read_latency.S.samples;
    Printf.printf "  write latency: p50 %d ns  p99 %d ns (%d samples)\n"
      r.S.write_latency.S.p50 r.S.write_latency.S.p99
      r.S.write_latency.S.samples;
    Printf.printf "  scan latency:  p50 %d ns  p99 %d ns (%d samples)\n"
      r.S.scan_latency.S.p50 r.S.scan_latency.S.p99 r.S.scan_latency.S.samples;
    Printf.printf "  max shard queue depth %d (capacity %d)\n"
      r.S.queue_max_depth queue;
    if txn_pct > 0 then begin
      Printf.printf "  txns: %d committed, %d aborted (%d ops each)\n"
        r.S.txns_committed r.S.txns_aborted txn_ops;
      Printf.printf
        "  txn latency: p50 %d ns  p99 %d ns  mean %.0f ns (%d samples)\n"
        r.S.txn_latency.S.p50 r.S.txn_latency.S.p99 r.S.txn_latency.S.mean
        r.S.txn_latency.S.samples
    end;
    if r.S.crashed then begin
      (match r.S.recovery with
       | Some rc ->
         Printf.printf
           "  crash: recovered %d shards — %d intent(s) replayed, %d rolled \
            back; RTO %d ns\n"
           shards rc.Service.Kv.replayed rc.Service.Kv.rolled_back r.S.rto_ns
       | None -> ());
      (match repl with
       | Some rr ->
         Printf.printf
           "  crash: primary lost — backup promoted, %d tail record(s) \
            replayed, %d in-doubt txn slot(s) aborted; RTO %d ns\n"
           rr.S.tail_replayed rr.S.indoubt_aborted r.S.rto_ns
       | None -> ());
      Printf.printf "  in flight at crash: %d key(s) (not checked)\n"
        r.S.in_flight_at_crash
    end;
    Printf.printf "  ledger: %d key(s) checked, %d ambiguous, %d mismatch(es)\n"
      r.S.ledger.S.checked r.S.ledger.S.ambiguous r.S.ledger.S.mismatches;
    (match repl with
     | None -> ()
     | Some rr ->
       Printf.printf
         "  replication (%s): shipped %d  acked %d  retransmits %d  max lag \
          %d\n"
         (if rr.S.sync then "sync" else "async")
         rr.S.shipped rr.S.acked_records rr.S.retransmits rr.S.max_lag;
       Printf.printf
         "  link: %d dropped, %d duplicated; backup applied %d record(s)\n"
         rr.S.link_dropped rr.S.link_duplicated rr.S.backup_applied;
       (match rr.S.backup_ledger with
        | Some l ->
          Printf.printf
            "  backup ledger: %d key(s) checked, %d ambiguous, %d \
             mismatch(es)\n"
            l.S.checked l.S.ambiguous l.S.mismatches
        | None -> ()));
    let att = Obs.Attrib.analyze () in
    Format.printf "%a@?" Obs.Attrib.pp_report att;
    Obs.Metrics.set_gauge ~scope:"trace" "span_count"
      (float_of_int att.Obs.Attrib.span_count);
    Obs.Metrics.set_gauge ~scope:"trace" "span_dropped"
      (float_of_int att.Obs.Attrib.span_dropped);
    Obs.Metrics.set_gauge ~scope:"trace" "dropped_events"
      (float_of_int (Obs.Trace.dropped ()));
    if att.Obs.Attrib.span_dropped > 0 then
      Printf.printf
        "  WARNING: span store filled — %d span(s) dropped, attribution \
         covers a prefix of the run\n"
        att.Obs.Attrib.span_dropped;
    (match json_out with
     | None -> ()
     | Some file ->
       let module J = Obs.Json in
       let num i = J.Num (float_of_int i) in
       let pct (p : S.percentiles) =
         J.Obj
           [ ("p50", num p.S.p50); ("p99", num p.S.p99);
             ("p999", num p.S.p999); ("mean", J.Num p.S.mean);
             ("max", num p.S.max); ("samples", num p.S.samples) ]
       in
       let json =
         J.Obj
           [ ("schema", J.Str "poseidon-serve/v1");
             ( "rev",
               match Repro_util.Gitrev.short () with
               | Some r -> J.Str r
               | None -> J.Null );
             ( "config",
               J.Obj
                 [ ("shards", num shards); ("clients", num clients);
                   ("rate", J.Num rate); ("duration", J.Num duration);
                   ("value_size", num value_size); ("zipf_theta", J.Num zipf);
                   ("keyspace", num keyspace);
                   ("queue_capacity", num queue);
                   ("read_pct", num read_pct); ("scan_pct", num scan_pct);
                   ("txn_pct", num txn_pct); ("txn_ops", num txn_ops);
                   ("batch_window", num batch_window);
                   ("batch_bytes", num batch_bytes);
                   ("mvcc_window", num mvcc_window);
                   ("tcache_mag", num tcache_mag);
                   ("rcache_entries", num rcache_entries);
                   ( "crash_at",
                     match crash_at with
                     | Some f -> J.Num f
                     | None -> J.Null );
                   ("seed", num seed) ] );
             ( "results",
               J.Obj
                 [ ("offered", num r.S.offered);
                   ("admitted", num r.S.admitted); ("shed", num r.S.shed);
                   ("completed", num r.S.completed);
                   ("acked_mutations", num r.S.acked_mutations);
                   ("sim_ns", num r.S.sim_ns);
                   ("throughput", J.Num r.S.throughput);
                   ("goodput", J.Num r.S.goodput);
                   ("latency", pct r.S.latency);
                   ("service", pct r.S.service);
                   ("crashed", J.Bool r.S.crashed);
                   ("rto_ns", num r.S.rto_ns);
                   ( "recovery",
                     match r.S.recovery with
                     | Some rc ->
                       J.Obj
                         [ ("replayed", num rc.Service.Kv.replayed);
                           ("rolled_back", num rc.Service.Kv.rolled_back) ]
                     | None -> J.Null );
                   ( "ledger",
                     J.Obj
                       [ ("checked", num r.S.ledger.S.checked);
                         ("ambiguous", num r.S.ledger.S.ambiguous);
                         ("mismatches", num r.S.ledger.S.mismatches) ] );
                   ("in_flight_at_crash", num r.S.in_flight_at_crash);
                   ("queue_max_depth", num r.S.queue_max_depth);
                   ("txns_committed", num r.S.txns_committed);
                   ("txns_aborted", num r.S.txns_aborted);
                   ("txn_latency", pct r.S.txn_latency);
                   ("read_latency", pct r.S.read_latency);
                   ("write_latency", pct r.S.write_latency);
                   ("scan_latency", pct r.S.scan_latency);
                   ( "op_mix",
                     J.Obj
                       [ ("read", num r.S.ops_read);
                         ("write", num r.S.ops_write);
                         ("scan", num r.S.ops_scan) ] );
                   ( "replication",
                     match repl with
                     | None -> J.Null
                     | Some rr ->
                       J.Obj
                         [ ( "mode",
                             J.Str (if rr.S.sync then "sync" else "async") );
                           ("shipped", num rr.S.shipped);
                           ("acked_records", num rr.S.acked_records);
                           ("retransmits", num rr.S.retransmits);
                           ("max_lag", num rr.S.max_lag);
                           ("link_dropped", num rr.S.link_dropped);
                           ("link_duplicated", num rr.S.link_duplicated);
                           ("backup_applied", num rr.S.backup_applied);
                           ("tail_replayed", num rr.S.tail_replayed);
                           ("indoubt_aborted", num rr.S.indoubt_aborted);
                           ( "backup_ledger",
                             match rr.S.backup_ledger with
                             | Some l ->
                               J.Obj
                                 [ ("checked", num l.S.checked);
                                   ("ambiguous", num l.S.ambiguous);
                                   ("mismatches", num l.S.mismatches) ]
                             | None -> J.Null ) ] ) ] );
             ("attribution", Obs.Attrib.report_json att);
             ("metrics", Obs.Metrics.snapshot ()) ]
       in
       let oc = open_out file in
       Fun.protect
         ~finally:(fun () -> close_out oc)
         (fun () -> output_string oc (J.to_string json));
       Printf.printf "results -> %s\n" file);
    let backup_mismatch =
      match repl with
      | Some rr when rr.S.sync -> (
        match rr.S.backup_ledger with
        | Some l -> l.S.mismatches > 0
        | None -> false)
      | _ -> false
    in
    if r.S.ledger.S.mismatches > 0 || backup_mismatch then begin
      Printf.eprintf "serve: LEDGER MISMATCH — acked writes lost\n";
      1
    end
    else 0
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the sharded persistent KV server (poseidon-kv) under open-loop \
          simulated traffic — optionally replicated to a backup machine \
          (--replicate) — crash it mid-serving, and verify recovery (or \
          failover promotion) against the client ledger.")
    Term.(
      const run $ shards_arg $ clients_arg $ rate_arg $ duration_arg
      $ value_size_arg $ zipf_arg $ keyspace_arg $ queue_arg $ read_pct_arg
      $ scan_pct_arg $ txn_pct_arg $ txn_ops_arg $ crash_at_arg $ seed_arg
      $ json_out_arg $ replicate_arg $ repl_mode_arg $ wire_ns_arg
      $ repl_window_arg $ drop_pct_arg $ dup_pct_arg $ batch_window_arg
      $ batch_bytes_arg $ mvcc_window_arg $ serve_tcache_mag_arg
      $ serve_rcache_arg $ trace_out_arg)

(* ---------- trace ---------- *)

let trace_cmd =
  let events_arg =
    Arg.(
      value & opt int 5000
      & info [ "n"; "events" ] ~docv:"N" ~doc:"Trace length in events.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"PRNG seed.")
  in
  let run events seed =
    let trace = Workloads.Trace.random ~seed ~events () in
    Printf.printf "replaying a %d-event trace on each allocator:\n" events;
    List.iter
      (fun (f : Workloads.Factories.factory) ->
        let mach, inst = f.Workloads.Factories.make () in
        let r = Workloads.Trace.replay_timed ~mach inst trace in
        Printf.printf
          "  %-10s %8.3f simulated ms  (%d allocs, %d frees, %d failed)\n"
          f.Workloads.Factories.name
          (r.Workloads.Trace.simulated_seconds *. 1e3)
          r.Workloads.Trace.allocs_ok r.Workloads.Trace.frees
          r.Workloads.Trace.allocs_failed)
      [ Workloads.Factories.poseidon (); Workloads.Factories.pmdk ();
        Workloads.Factories.makalu () ];
    0
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Generate a random trace and replay it on every allocator.")
    Term.(const run $ events_arg $ seed_arg)

(* ---------- tracecheck ---------- *)

(* Validates an exported Chrome trace: JSON well-formedness, required
   fields per event phase, and flow-event integrity — every
   cross-machine flow start ("ph":"s") must have a matching finish
   ("ph":"f") and vice versa, else Perfetto silently drops the arrow
   and the causal link between machines is lost.  check.sh gates on
   this after exporting a replicated serve trace. *)
let tracecheck_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Chrome trace-event JSON file to validate.")
  in
  let run file =
    let module J = Obs.Json in
    let read_all f =
      let ic = open_in_bin f in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match
      try Ok (J.parse (read_all file)) with
      | Sys_error m -> Error m
      | J.Parse_error m -> Error (Printf.sprintf "JSON parse error: %s" m)
    with
    | Error m ->
      Printf.eprintf "tracecheck: %s: %s\n" file m;
      1
    | Ok root ->
      let errors = ref 0 in
      let err fmt =
        Printf.ksprintf
          (fun m ->
            incr errors;
            if !errors <= 20 then Printf.eprintf "tracecheck: %s\n" m)
          fmt
      in
      let events =
        match Option.bind (J.member "traceEvents" root) J.to_list with
        | Some evs -> evs
        | None ->
          err "top-level object has no \"traceEvents\" array";
          []
      in
      let slices = ref 0 and insts = ref 0 and metas = ref 0 in
      (* flow links keyed by (cat, id); counts tolerate duplicates *)
      let starts : (string * int, int) Hashtbl.t = Hashtbl.create 64 in
      let finishes : (string * int, int) Hashtbl.t = Hashtbl.create 64 in
      let bump tbl k =
        Hashtbl.replace tbl k
          (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))
      in
      List.iteri
        (fun i ev ->
          let num k = Option.bind (J.member k ev) J.to_float in
          let str k = Option.bind (J.member k ev) J.to_str in
          match str "ph" with
          | None -> err "event %d: missing \"ph\"" i
          | Some ph ->
            let need k =
              if num k = None then
                err "event %d (ph %S): missing numeric %S" i ph k
            in
            (match ph with
             | "X" ->
               incr slices;
               List.iter need [ "ts"; "dur"; "pid"; "tid" ];
               if str "name" = None then err "event %d (X): missing name" i
             | "i" ->
               incr insts;
               List.iter need [ "ts"; "pid"; "tid" ]
             | "M" -> incr metas
             | "s" | "f" ->
               List.iter need [ "ts"; "pid"; "tid" ];
               if ph = "f" && str "bp" <> Some "e" then
                 err "event %d (f): missing \"bp\":\"e\" binding" i;
               (match num "id" with
                | None -> err "event %d (ph %S): flow without id" i ph
                | Some id ->
                  let k =
                    (Option.value ~default:"" (str "cat"), int_of_float id)
                  in
                  if ph = "s" then bump starts k else bump finishes k)
             | other -> err "event %d: unknown \"ph\":%S" i other))
        events;
      Hashtbl.iter
        (fun (cat, id) _ ->
          if Hashtbl.find_opt finishes (cat, id) = None then
            err "flow start (cat %S, id %d) has no matching finish" cat id)
        starts;
      Hashtbl.iter
        (fun (cat, id) _ ->
          if Hashtbl.find_opt starts (cat, id) = None then
            err "flow finish (cat %S, id %d) has no matching start" cat id)
        finishes;
      if !errors = 0 then begin
        Printf.printf
          "tracecheck: %s OK — %d event(s): %d slice(s), %d instant(s), %d \
           metadata, %d flow link(s) all matched\n"
          file (List.length events) !slices !insts !metas
          (Hashtbl.length starts);
        0
      end
      else begin
        Printf.eprintf "tracecheck: %s: %d violation(s)\n" file !errors;
        1
      end
  in
  Cmd.v
    (Cmd.info "tracecheck"
       ~doc:
         "Validate an exported Chrome trace file: JSON shape, per-phase \
          required fields, and that every cross-machine flow start has a \
          matching finish.")
    Term.(const run $ file_arg)

let () =
  let info =
    Cmd.info "poseidon-repro"
      ~doc:
        "Reproduction of 'Poseidon: Safe, Fast and Scalable Persistent \
         Memory Allocator' (Middleware '20) on a simulated NVMM machine."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ bench_cmd; safety_cmd; stress_cmd; crashcheck_cmd; inspect_cmd;
            fsck_cmd; serve_cmd; trace_cmd; tracecheck_cmd ]))
