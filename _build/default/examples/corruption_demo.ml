(* The paper's Figure 3, live: the same two heap-overflow bugs are
   thrown at the PMDK-like baseline and at Poseidon.

   - against PMDK, corrupting the in-place size header makes the
     allocator hand out overlapping memory (silent user-data
     corruption) or permanently leak the heap;
   - against Poseidon, the segregated, MPK-protected metadata is out
     of the blast radius entirely, and stray stores into it fault.

   Run with: dune exec examples/corruption_demo.exe *)

let base = 1 lsl 30

let fill inst size =
  let rec go acc =
    match Alloc_intf.i_alloc inst size with
    | Some p -> go (p :: acc)
    | None -> List.rev acc
  in
  go []

(* ------------------------------------------------- Fig. 3 (left) -- *)

let overlapping_allocation_pmdk () =
  print_endline "== Fig. 3 left vs PMDK: overflowed header -> overlapping allocation ==";
  let mach = Machine.create () in
  let heap = Pmdk_sim.Heap.create mach ~base ~size:(4 * 1024 * 1024) ~heap_id:1 () in
  let inst = Pmdk_sim.instance heap in
  (* make the NVMM heap full of 64-byte objects *)
  let objects = Array.of_list (fill inst 64) in
  Printf.printf "  heap full: %d x 64 B objects\n" (Array.length objects);
  (* corrupt the size in an arbitrary object's allocation header to a
     larger number, then free it (the paper's lines 15-17) *)
  let victim = objects.(Array.length objects / 2) in
  let vraw = Alloc_intf.i_get_rawptr inst victim in
  Machine.write_u64 mach (vraw - 16) 1088;
  Alloc_intf.i_free inst victim;
  (* only one object was freed, so only one allocation should fit... *)
  let fresh = fill inst 64 in
  Printf.printf "  allocations after freeing ONE object: %d\n" (List.length fresh);
  let overlaps =
    List.filter
      (fun p ->
        let raw = Alloc_intf.i_get_rawptr inst p in
        Array.exists
          (fun q ->
            (not (Alloc_intf.equal_nvmptr q victim))
            &&
            let qraw = Alloc_intf.i_get_rawptr inst q in
            raw < qraw + 64 && qraw < raw + 64)
          objects)
      fresh
  in
  Printf.printf "  of those, %d overlap LIVE objects -> silent user data corruption\n"
    (List.length overlaps)

let overlapping_allocation_poseidon () =
  print_endline "== the same attack vs Poseidon ==";
  let mach = Machine.create () in
  let heap =
    Poseidon.Heap.create mach ~base ~size:(1 lsl 34) ~heap_id:1
      ~sub_data_size:(1 lsl 20) ()
  in
  let inst = Poseidon.instance heap in
  let objects = Array.of_list (fill inst 64) in
  Printf.printf "  heap full: %d x 64 B objects\n" (Array.length objects);
  let victim = objects.(Array.length objects / 2) in
  let vraw = Alloc_intf.i_get_rawptr inst victim in
  (* the same stray store: it lands in the previous object's USER
     data, because Poseidon keeps no metadata near user data *)
  Machine.write_u64 mach (vraw - 16) 1088;
  Alloc_intf.i_free inst victim;
  let fresh = fill inst 64 in
  Printf.printf "  allocations after freeing one object: %d (exactly the freed one)\n"
    (List.length fresh);
  Poseidon.Heap.check_invariants heap;
  print_endline "  heap invariants verified intact"

(* ------------------------------------------------ Fig. 3 (right) -- *)

let permanent_leak_pmdk () =
  print_endline "== Fig. 3 right vs PMDK: shrunk headers -> permanent leak ==";
  let mach = Machine.create () in
  let heap = Pmdk_sim.Heap.create mach ~base ~size:(64 * 1024 * 1024) ~heap_id:1 () in
  let inst = Pmdk_sim.instance heap in
  let big = 2 * 1024 * 1024 in
  let objects = fill inst big in
  Printf.printf "  heap full: %d x 2 MiB objects\n" (List.length objects);
  List.iter
    (fun p ->
      let raw = Alloc_intf.i_get_rawptr inst p in
      Machine.write_u64 mach (raw - 16) 64; (* corrupt smaller *)
      Alloc_intf.i_free inst p)
    objects;
  let refill = fill inst big in
  Printf.printf
    "  all %d objects freed; re-allocation fits %d -> the heap is permanently gone\n"
    (List.length objects) (List.length refill)

let permanent_leak_poseidon () =
  print_endline "== the same attack vs Poseidon ==";
  let mach = Machine.create () in
  let heap =
    Poseidon.Heap.create mach ~base ~size:(1 lsl 34) ~heap_id:1
      ~sub_data_size:(16 * 1024 * 1024) ()
  in
  let inst = Poseidon.instance heap in
  let big = 2 * 1024 * 1024 in
  let objects = fill inst big in
  let faults = ref 0 in
  List.iter
    (fun p ->
      let raw = Alloc_intf.i_get_rawptr inst p in
      (* lands in the neighbour's user data — except for the first
         block, where the underwrite crosses into the metadata region
         and MPK faults on the spot *)
      (try Machine.write_u64 mach (raw - 16) 64 with Mpk.Fault _ -> incr faults);
      Alloc_intf.i_free inst p)
    objects;
  Printf.printf "  %d underwrite(s) hit the metadata region and faulted\n"
    !faults;
  let refill = fill inst big in
  Printf.printf "  freed %d, refilled %d -> nothing leaked\n"
    (List.length objects) (List.length refill);
  Poseidon.Heap.check_invariants heap

(* -------------------------------------------- direct metadata hit -- *)

let direct_store () =
  print_endline "== direct store into allocator metadata ==";
  let mach = Machine.create () in
  let heap =
    Poseidon.Heap.create mach ~base ~size:(1 lsl 34) ~heap_id:1
      ~sub_data_size:(1 lsl 20) ()
  in
  ignore (Poseidon.Heap.alloc heap 64);
  let target = ref 0 in
  Poseidon.Heap.iter_subheaps heap (fun sh ->
      target := sh.Poseidon.Subheap.meta_base + Poseidon.Layout.sh_off_buddy_heads);
  (try
     Machine.write_u64 mach !target 0xDEAD;
     print_endline "  BUG: the store went through"
   with Mpk.Fault f ->
     Printf.printf
       "  Poseidon: MPK fault (addr %#x, pkey %d) - the OS would deliver SIGSEGV\n"
       f.Mpk.fault_addr f.Mpk.fault_pkey);
  Poseidon.Heap.check_invariants heap;
  print_endline "  metadata verified intact"

let () =
  overlapping_allocation_pmdk ();
  overlapping_allocation_poseidon ();
  permanent_leak_pmdk ();
  permanent_leak_poseidon ();
  direct_store ();
  print_endline "corruption_demo done"
