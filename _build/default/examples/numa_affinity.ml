(* NUMA affinity demo (paper 4.1, 7.4): Poseidon creates each
   sub-heap on the NUMA node of the CPU that first allocates from it,
   so allocations are always node-local; the PMDK-like baseline maps
   its whole pool from the main thread (node 0), so half the machine
   pays remote-NVMM latency on every miss.

   The demo measures a read-heavy loop over freshly allocated objects
   from CPUs on both sockets.

   Run with: dune exec examples/numa_affinity.exe *)

let base = 1 lsl 30

(* per-thread: allocate small objects (every allocator's thread-local
   path), then stream over them [rounds] times *)
let worker inst mach rounds () =
  let ptrs =
    Array.init 1024 (fun _ ->
        match Alloc_intf.i_alloc inst 256 with
        | Some p -> Alloc_intf.i_get_rawptr inst p
        | None -> failwith "oom")
  in
  for _ = 1 to rounds do
    Array.iter
      (fun raw ->
        for line = 0 to 3 do
          ignore (Machine.read_u64 mach (raw + (line * 64)))
        done)
      ptrs
  done

let measure name make =
  let mach, inst = make () in
  (* one thread on each socket: CPU 0 (node 0) and CPU 63 (node 1) *)
  let e = Machine.engine mach in
  let t0 = Machine.spawn mach ~cpu:0 (worker inst mach 20) in
  let t1 = Machine.spawn mach ~cpu:63 (worker inst mach 20) in
  Machine.run mach;
  let c0 = Simcore.Sched.thread_clock e t0 in
  let c1 = Simcore.Sched.thread_clock e t1 in
  Printf.printf "  %-10s node0 CPU: %6.2f ms   node1 CPU: %6.2f ms   (ratio %.2fx)\n"
    name (float_of_int c0 /. 1e6) (float_of_int c1 /. 1e6)
    (float_of_int c1 /. float_of_int c0)

let () =
  print_endline "reading 1024 x 256 B freshly allocated objects, per-socket threads:";
  measure "Poseidon" (fun () ->
      let mach = Machine.create () in
      let h =
        Poseidon.Heap.create mach ~base ~size:(1 lsl 38) ~heap_id:1
          ~sub_data_size:(1 lsl 22) ()
      in
      (mach, Poseidon.instance h));
  measure "PMDK" (fun () ->
      let mach = Machine.create () in
      let h = Pmdk_sim.Heap.create mach ~base ~size:(1 lsl 30) ~heap_id:1 () in
      (mach, Pmdk_sim.instance h));
  measure "Makalu" (fun () ->
      let mach = Machine.create () in
      let h = Makalu_sim.Heap.create mach ~base ~size:(1 lsl 30) ~heap_id:1 in
      (mach, Makalu_sim.instance h));
  print_endline
    "(Poseidon and Makalu allocate node-locally: both sockets see the same\n\
    \ latency. PMDK's pool lives on node 0: the node-1 thread pays the\n\
    \ remote-NVMM multiplier on every miss - the paper's N-Queens effect.)"
