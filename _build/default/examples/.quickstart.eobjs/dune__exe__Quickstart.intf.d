examples/quickstart.mli:
