examples/numa_affinity.mli:
