examples/crash_recovery.ml: Fun List Machine Nvmm Poseidon Printf Repro_util
