examples/kv_store.ml: Alloc_intf Btree Bytes List Machine Nvmm Option Poseidon Printf String
