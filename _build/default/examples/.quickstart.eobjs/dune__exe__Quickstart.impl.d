examples/quickstart.ml: Alloc_intf Bytes Format Machine Mpk Nvmm Poseidon Printf
