examples/corruption_demo.ml: Alloc_intf Array List Machine Mpk Pmdk_sim Poseidon Printf
