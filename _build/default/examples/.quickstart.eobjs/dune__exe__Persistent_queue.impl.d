examples/persistent_queue.ml: Alloc_intf Bytes List Machine Nvmm Poseidon Printf String
