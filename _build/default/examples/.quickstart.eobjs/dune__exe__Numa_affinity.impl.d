examples/numa_affinity.ml: Alloc_intf Array Machine Makalu_sim Pmdk_sim Poseidon Printf Simcore
