examples/corruption_demo.mli:
