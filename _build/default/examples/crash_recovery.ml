(* Crash-recovery walkthrough: drives Poseidon through power failures
   at adversarially chosen instants — including in the middle of
   allocator operations and in the middle of recovery itself — and
   shows the undo/micro-log machinery putting the heap back together
   every time (paper 4.5, 5.8).

   Run with: dune exec examples/crash_recovery.exe *)

module Memdev = Nvmm.Memdev
module Prng = Repro_util.Prng

let base = 1 lsl 30

exception Crash_now

let fresh () =
  let mach = Machine.create () in
  let heap =
    Poseidon.Heap.create mach ~base ~size:(1 lsl 34) ~heap_id:1
      ~sub_data_size:(1 lsl 20) ()
  in
  (mach, heap)

let () =
  (* 1. the basic contract: committed allocations survive, the
     in-flight one is rolled back or completed — never half-done *)
  let mach, heap = fresh () in
  let committed = ref 0 in
  for i = 1 to 8 do
    match Poseidon.Heap.alloc heap (100 * i) with
    | Some _ -> committed := !committed + Poseidon.Layout.round_up (100 * i)
    | None -> ()
  done;
  Printf.printf "committed %d bytes across 8 allocations\n" !committed;

  (* 2. now crash in the MIDDLE of an allocation: the fence hook stops
     execution at an inner persistence point *)
  let dev = Machine.dev mach in
  Memdev.reset_counters dev;
  Memdev.set_fence_hook dev (Some (fun n -> if n >= 3 then raise Crash_now));
  (try ignore (Poseidon.Heap.alloc heap 256) with Crash_now -> ());
  Memdev.set_fence_hook dev None;
  print_endline "-- power failed mid-allocation (3 fences in) --";
  Memdev.crash dev `Strict;

  let heap = Poseidon.Heap.attach mach ~base () in
  Poseidon.Heap.check_invariants heap;
  let live = (Poseidon.Heap.stats heap).Poseidon.Heap.live_bytes in
  Printf.printf "recovered: %d live bytes (undo log rolled the torn op back)\n"
    live;
  assert (live = !committed);

  (* 3. transactional allocation: a multi-object transaction that
     never commits must vanish entirely (the paper's P-and-Q example
     from 2.2) *)
  ignore (Poseidon.Heap.tx_alloc heap 512 ~is_end:false);
  ignore (Poseidon.Heap.tx_alloc heap 512 ~is_end:false);
  print_endline "-- power failed before the transaction committed --";
  Memdev.crash dev `Strict;
  let heap = Poseidon.Heap.attach mach ~base () in
  Poseidon.Heap.check_invariants heap;
  Printf.printf "recovered: %d live bytes (micro log freed both objects)\n"
    (Poseidon.Heap.stats heap).Poseidon.Heap.live_bytes;

  (* 4. torture: random adversarial crashes (arbitrary cache lines
     evicted), including one in the middle of recovery *)
  let rng = Prng.create 42 in
  let survived = ref 0 in
  let heap = ref heap in
  for round = 1 to 30 do
    ignore round;
    (* do some work *)
    let ps =
      List.filter_map
        (fun i -> Poseidon.Heap.alloc !heap (32 * (1 + (i mod 8))))
        (List.init 6 Fun.id)
    in
    List.iteri (fun i p -> if i mod 2 = 0 then Poseidon.Heap.free !heap p) ps;
    (* crash at a random fence of the next operation *)
    Memdev.reset_counters dev;
    let k = 1 + Prng.int rng 12 in
    Memdev.set_fence_hook dev (Some (fun n -> if n >= k then raise Crash_now));
    (try ignore (Poseidon.Heap.alloc !heap 128) with Crash_now -> ());
    Memdev.set_fence_hook dev None;
    Memdev.crash dev (`Adversarial rng);
    (* sometimes interrupt the recovery too, then recover again *)
    if Prng.bool rng then begin
      let fences = (Memdev.counters dev).Memdev.fences in
      Memdev.set_fence_hook dev
        (Some (fun n -> if n >= fences + 1 + Prng.int rng 4 then raise Crash_now));
      (try ignore (Poseidon.Heap.attach mach ~base ()) with Crash_now -> ());
      Memdev.set_fence_hook dev None;
      Memdev.crash dev (`Adversarial rng)
    end;
    let h = Poseidon.Heap.attach mach ~base () in
    Poseidon.Heap.check_invariants h;
    heap := h;
    incr survived
  done;
  Printf.printf
    "survived %d adversarial crash/recovery rounds with invariants intact\n"
    !survived;
  print_endline "crash_recovery done"
