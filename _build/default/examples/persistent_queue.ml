(* A crash-safe persistent message queue built on transactional
   allocation (paper 4.5, 5.3): enqueuing a message allocates the
   node and its payload in ONE transaction, so a crash can never leak
   a half-linked message — the exact P-and-Q scenario of 2.2.

   Layout of a node (allocated from Poseidon):
     [0]  packed nvmptr of the next node (null = tail)
     [8]  payload length
     [16] payload bytes

   The queue head lives at the heap root.  Dequeue unlinks the head
   (one atomic persisted store to the root) and frees the node.

   Run with: dune exec examples/persistent_queue.exe *)

module Q = struct
  type t = { inst : Alloc_intf.instance; mach : Machine.t }

  let create inst =
    { inst; mach = Alloc_intf.instance_machine inst }

  let node_next t node = Machine.read_u64 t.mach node

  let rec tail_of t node =
    let nxt = node_next t node in
    if nxt = Alloc_intf.packed_null then node
    else tail_of t (Alloc_intf.i_get_rawptr t.inst (Alloc_intf.unpack ~heap_id:1 nxt))

  let enqueue t msg =
    let len = String.length msg in
    (* the whole message is one transaction: if we crash before the
       commit, recovery frees the node — nothing leaks, nothing
       dangles *)
    match Alloc_intf.i_tx_alloc t.inst (16 + len) ~is_end:true with
    | None -> failwith "queue: out of persistent memory"
    | Some p ->
      let node = Alloc_intf.i_get_rawptr t.inst p in
      Machine.write_u64 t.mach node Alloc_intf.packed_null;
      Machine.write_u64 t.mach (node + 8) len;
      Machine.write_bytes t.mach (node + 16) (Bytes.of_string msg);
      Machine.persist t.mach node (16 + len);
      (* publish: link from the tail (or the root), a single atomic
         persisted store *)
      let root = Alloc_intf.i_get_root t.inst in
      if Alloc_intf.is_null root then Alloc_intf.i_set_root t.inst p
      else begin
        let tail = tail_of t (Alloc_intf.i_get_rawptr t.inst root) in
        Machine.write_u64 t.mach tail (Alloc_intf.pack p);
        Machine.persist t.mach tail 8
      end

  let dequeue t =
    let root = Alloc_intf.i_get_root t.inst in
    if Alloc_intf.is_null root then None
    else begin
      let node = Alloc_intf.i_get_rawptr t.inst root in
      let len = Machine.read_u64 t.mach (node + 8) in
      let msg = Bytes.to_string (Machine.read_bytes t.mach (node + 16) len) in
      let next = node_next t node in
      Alloc_intf.i_set_root t.inst (Alloc_intf.unpack ~heap_id:1 next);
      Alloc_intf.i_free t.inst root;
      Some msg
    end

  let length t =
    let rec go node acc =
      if Alloc_intf.is_null node then acc
      else
        go
          (Alloc_intf.unpack ~heap_id:1
             (node_next t (Alloc_intf.i_get_rawptr t.inst node)))
          (acc + 1)
    in
    go (Alloc_intf.i_get_root t.inst) 0
end

let base = 1 lsl 30

let () =
  let mach = Machine.create () in
  let heap = Poseidon.Heap.create mach ~base ~size:(1 lsl 36) ~heap_id:1 () in
  let q = Q.create (Poseidon.instance heap) in

  List.iter (Q.enqueue q)
    [ "first message"; "second message"; "third message" ];
  Printf.printf "enqueued 3, queue length = %d\n" (Q.length q);

  (* a transactional enqueue interrupted by a crash must vanish *)
  let dev = Machine.dev mach in
  Nvmm.Memdev.reset_counters dev;
  let exception Boom in
  Nvmm.Memdev.set_fence_hook dev (Some (fun n -> if n >= 4 then raise Boom));
  (try Q.enqueue q "doomed message" with Boom -> ());
  Nvmm.Memdev.set_fence_hook dev None;
  print_endline "-- power failed mid-enqueue --";
  Nvmm.Memdev.crash dev `Strict;

  let heap = Poseidon.Heap.attach mach ~base () in
  Poseidon.Heap.check_invariants heap;
  let q = Q.create (Poseidon.instance heap) in
  Printf.printf "after recovery: queue length = %d (doomed message rolled back)\n"
    (Q.length q);
  Printf.printf "live bytes = %d (no leak from the torn enqueue)\n"
    (Poseidon.Heap.stats heap).Poseidon.Heap.live_bytes;

  (* drain in order *)
  let rec drain () =
    match Q.dequeue q with
    | Some m ->
      Printf.printf "dequeued: %s\n" m;
      drain ()
    | None -> ()
  in
  drain ();
  Printf.printf "drained; live bytes = %d\n"
    (Poseidon.Heap.stats heap).Poseidon.Heap.live_bytes;
  print_endline "persistent_queue done"
