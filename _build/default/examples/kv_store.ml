(* A persistent key-value store on the public API: the FAST-FAIR-style
   B+-tree indexes keys; values are variable-length objects managed by
   the allocator.  Demonstrates the programming model the paper's YCSB
   evaluation (7.5) uses, including updates that allocate-swap-free.

   Run with: dune exec examples/kv_store.exe *)

module Kv = struct
  type t = { inst : Alloc_intf.instance; tree : Btree.t; mach : Machine.t }

  let create inst =
    { inst; tree = Btree.create inst; mach = Alloc_intf.instance_machine inst }

  let attach inst =
    { inst; tree = Btree.attach inst; mach = Alloc_intf.instance_machine inst }

  (* value object layout: [len:u64][bytes] *)
  let put t key value =
    let len = String.length value in
    match Alloc_intf.i_alloc t.inst (8 + len) with
    | None -> failwith "kv: out of persistent memory"
    | Some p ->
      let raw = Alloc_intf.i_get_rawptr t.inst p in
      Machine.write_u64 t.mach raw len;
      Machine.write_bytes t.mach (raw + 8) (Bytes.of_string value);
      Machine.persist t.mach raw (8 + len);
      let old = Btree.find t.tree key in
      Btree.insert t.tree ~key ~value:(Alloc_intf.pack p);
      (* free the replaced value only after the index points at the
         new one: a crash in between leaks nothing and loses nothing *)
      (match old with
       | Some packed ->
         Alloc_intf.i_free t.inst (Alloc_intf.unpack ~heap_id:1 packed)
       | None -> ())

  let get t key =
    match Btree.find t.tree key with
    | None -> None
    | Some packed ->
      let raw =
        Alloc_intf.i_get_rawptr t.inst (Alloc_intf.unpack ~heap_id:1 packed)
      in
      let len = Machine.read_u64 t.mach raw in
      Some (Bytes.to_string (Machine.read_bytes t.mach (raw + 8) len))

  let scan t ~from_key ~n f =
    Btree.scan t.tree ~from_key ~n (fun key packed ->
        let raw =
          Alloc_intf.i_get_rawptr t.inst (Alloc_intf.unpack ~heap_id:1 packed)
        in
        let len = Machine.read_u64 t.mach raw in
        f key (Bytes.to_string (Machine.read_bytes t.mach (raw + 8) len)))
end

let base = 1 lsl 30

let () =
  let mach = Machine.create () in
  let heap = Poseidon.Heap.create mach ~base ~size:(1 lsl 36) ~heap_id:1 () in
  let kv = Kv.create (Poseidon.instance heap) in

  (* load a phone book *)
  let people =
    [ (101, "ada lovelace"); (205, "alan turing"); (150, "grace hopper");
      (303, "edsger dijkstra"); (222, "barbara liskov") ]
  in
  List.iter (fun (k, v) -> Kv.put kv k v) people;
  Printf.printf "loaded %d records\n" (List.length people);

  (* point lookups *)
  (match Kv.get kv 150 with
   | Some v -> Printf.printf "key 150 -> %s\n" v
   | None -> print_endline "key 150 missing?!");

  (* update = alloc new value, swap index, free old *)
  Kv.put kv 150 "rear admiral grace hopper";
  Printf.printf "key 150 -> %s (after update)\n" (Option.get (Kv.get kv 150));

  (* ordered scan through the B+-tree leaves *)
  print_endline "scan from key 150:";
  Kv.scan kv ~from_key:150 ~n:3 (fun k v -> Printf.printf "  %d: %s\n" k v);

  (* concurrent bulk load on the simulated machine *)
  let threads = 16 and per = 500 in
  let secs =
    Machine.parallel mach ~threads (fun i ->
        for j = 0 to per - 1 do
          Kv.put kv (1000 + (j * threads) + i) (Printf.sprintf "bulk-%d-%d" i j)
        done)
  in
  Printf.printf "bulk load: %d records on %d threads in %.2f simulated ms\n"
    (threads * per) threads (secs *. 1e3);

  (* crash and reopen *)
  Nvmm.Memdev.crash (Machine.dev mach) `Strict;
  let heap = Poseidon.Heap.attach mach ~base () in
  let kv = Kv.attach (Poseidon.instance heap) in
  Printf.printf "after crash: key 150 -> %s, bulk sample -> %s\n"
    (Option.get (Kv.get kv 150))
    (Option.get (Kv.get kv 1000));
  Poseidon.Heap.check_invariants heap;
  print_endline "kv_store done"
