(* Quickstart: create a simulated machine, format a Poseidon heap,
   allocate persistent memory, write to it, crash, recover, and find
   the data again through the root pointer.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* A simulated NVMM machine: 64 CPUs, 2 NUMA nodes, Optane-like
     latencies.  Everything below runs against it. *)
  let mach = Machine.create () in

  (* Format a Poseidon heap in a 64 GiB address window (backing is
     sparse, so this costs almost nothing until used). *)
  let base = 1 lsl 30 in
  let heap = Poseidon.Heap.create mach ~base ~size:(1 lsl 36) ~heap_id:1 () in

  (* Allocate a persistent object and write into it. *)
  let ptr =
    match Poseidon.Heap.alloc heap 256 with
    | Some p -> p
    | None -> failwith "out of persistent memory"
  in
  let raw = Poseidon.Heap.get_rawptr heap ptr in
  Machine.write_bytes mach raw (Bytes.of_string "hello, persistent world!");
  Machine.persist mach raw 256;

  (* Publish it via the root pointer so it can be found after a
     restart (nothing reachable = gone, as with any PM allocator). *)
  Poseidon.Heap.set_root heap ptr;
  Printf.printf "wrote %S at %s\n%!" "hello, persistent world!"
    (Format.asprintf "%a" Alloc_intf.pp_nvmptr ptr);

  (* Power failure!  The volatile image is gone; only flushed data
     survives. *)
  Nvmm.Memdev.crash (Machine.dev mach) `Strict;
  print_endline "-- simulated power failure --";

  (* Re-open the heap: recovery replays the undo/micro logs (5.8). *)
  let heap = Poseidon.Heap.attach mach ~base () in
  let ptr = Poseidon.Heap.get_root heap in
  let raw = Poseidon.Heap.get_rawptr heap ptr in
  let back = Machine.read_bytes mach raw 24 in
  Printf.printf "recovered: %S\n" (Bytes.to_string back);

  (* The metadata region is MPK-protected: a stray store faults
     instead of corrupting the allocator. *)
  (try
     Machine.write_u64 mach (base + 8) 0xBAD;
     print_endline "BUG: metadata was writable"
   with Mpk.Fault f ->
     Printf.printf "stray store into metadata faulted (pkey %d) - heap safe\n"
       f.Mpk.fault_pkey);

  Poseidon.Heap.free heap ptr;
  Poseidon.Heap.check_invariants heap;
  print_endline "quickstart done"
