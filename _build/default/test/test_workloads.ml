(* Tests for the workload generators and the safety experiment matrix:
   every workload must run on every allocator and produce sane
   numbers; the safety matrix must report the outcomes the paper
   documents (these are the Figure 3 regression assertions at the
   suite level). *)

module W = Workloads

let check = Alcotest.(check bool)

let positive name v = check (name ^ " positive") true (v > 0.0)

let tiny_cfg = { Machine.Config.default with num_cpus = 8 }

let factories = [ W.Factories.poseidon (); W.Factories.pmdk (); W.Factories.makalu () ]

let test_microbench_all_allocators () =
  List.iter
    (fun f ->
      let mops =
        W.Microbench.run ~factory:f ~cfg:tiny_cfg ~size:256 ~threads:2
          ~total_ops:800 ()
      in
      positive (f.W.Factories.name ^ " micro") mops)
    factories

let test_microbench_scales () =
  let f = W.Factories.poseidon () in
  let m1 =
    W.Microbench.run ~factory:f ~cfg:tiny_cfg ~size:256 ~threads:1
      ~total_ops:400 ()
  in
  let m4 =
    W.Microbench.run ~factory:f ~cfg:tiny_cfg ~size:256 ~threads:4
      ~total_ops:1600 ()
  in
  check "poseidon scales with threads" true (m4 > 2.0 *. m1)

let test_larson_all_allocators () =
  List.iter
    (fun f ->
      let ops =
        W.Larson.run ~factory:f ~cfg:tiny_cfg ~threads:2 ~duration_s:0.0005 ()
      in
      positive (f.W.Factories.name ^ " larson") ops)
    factories

let test_ackermann_all_allocators () =
  List.iter
    (fun f ->
      let mops =
        W.Ackermann.run ~factory:f ~cfg:tiny_cfg ~threads:2 ~iterations:4 ()
      in
      positive (f.W.Factories.name ^ " ackermann") mops)
    factories

let test_ackermann_correct () =
  (* the memoised simulated-memory Ackermann must equal the real one *)
  let mach = Machine.create () in
  Machine.add_region mach ~base:4096 ~size:65536 ~kind:Nvmm.Memdev.Nvmm ~numa:0;
  let rec real m n =
    if m = 0 then n + 1
    else if n = 0 then real (m - 1) 1
    else real (m - 1) (real m (n - 1))
  in
  List.iter
    (fun (m, n) ->
      let got = W.Ackermann.ack mach ~buf:4096 ~width:64 ~height:16 m n in
      Alcotest.(check int) (Printf.sprintf "ack(%d,%d)" m n) (real m n) got;
      (* clear the memo between cases *)
      Nvmm.Memdev.punch (Machine.dev mach) 4096 65536)
    [ (0, 3); (1, 5); (2, 3); (3, 3) ]

let test_kruskal_all_allocators () =
  List.iter
    (fun f ->
      let mops =
        W.Kruskal.run ~factory:f ~cfg:tiny_cfg ~threads:2 ~iterations:20 ()
      in
      positive (f.W.Factories.name ^ " kruskal") mops)
    factories

let test_nqueens_all_allocators () =
  List.iter
    (fun f ->
      let mops =
        W.Nqueens.run ~factory:f ~cfg:tiny_cfg ~threads:2 ~iterations:20 ()
      in
      positive (f.W.Factories.name ^ " nqueens") mops)
    factories

let test_nqueens_solution_valid () =
  (* the solver asserts internally that a solution is found; run one
     iteration and also validate a solved board by hand *)
  let mach = Machine.create () in
  Machine.add_region mach ~base:4096 ~size:4096 ~kind:Nvmm.Memdev.Nvmm ~numa:0;
  let found = W.Nqueens.place mach 4096 0 in
  Alcotest.(check int) "one solution" 1 found;
  let cols = List.init 8 (fun r -> Nvmm.Memdev.read_u8 (Machine.dev mach) (4096 + r)) in
  List.iteri
    (fun r c ->
      List.iteri
        (fun r' c' ->
          if r < r' then begin
            check "no same column" true (c <> c');
            check "no same diagonal" true (abs (c - c') <> r' - r)
          end)
        cols)
    cols

let test_ycsb_all_allocators () =
  List.iter
    (fun f ->
      let r =
        W.Ycsb.run ~factory:f ~cfg:tiny_cfg ~threads:2 ~records:400
          ~operations:400 ()
      in
      positive (f.W.Factories.name ^ " load") r.W.Ycsb.load_mops;
      positive (f.W.Factories.name ^ " workload A") r.W.Ycsb.a_mops)
    factories

(* ---------- the safety matrix: paper-outcome assertions ---------- *)

let outcome rows attack allocator =
  let row = List.find (fun r -> r.W.Safety.attack = attack) rows in
  List.assoc allocator row.W.Safety.results

let is_vulnerable = function W.Safety.Vulnerable _ -> true | _ -> false

let test_safety_matrix () =
  let rows = W.Safety.matrix () in
  (* Fig. 3 left: PMDK vulnerable, Poseidon not *)
  check "pmdk overflow vulnerable" true
    (is_vulnerable (outcome rows "overflowed header, then free" "PMDK"));
  check "poseidon overflow defended" false
    (is_vulnerable (outcome rows "overflowed header, then free" "Poseidon"));
  (* Fig. 3 right *)
  check "pmdk shrink leak" true
    (is_vulnerable (outcome rows "shrunk header, free all (leak)" "PMDK"));
  check "poseidon shrink defended" false
    (is_vulnerable (outcome rows "shrunk header, free all (leak)" "Poseidon"));
  (* direct metadata store: only Poseidon faults *)
  check "poseidon MPK" false
    (is_vulnerable (outcome rows "direct store into metadata" "Poseidon"));
  check "pmdk direct store" true
    (is_vulnerable (outcome rows "direct store into metadata" "PMDK"));
  check "makalu direct store" true
    (is_vulnerable (outcome rows "direct store into metadata" "Makalu"));
  (* API misuse *)
  check "poseidon double free" false
    (is_vulnerable (outcome rows "double free" "Poseidon"));
  check "makalu double free" true
    (is_vulnerable (outcome rows "double free" "Makalu"));
  check "poseidon invalid free" false
    (is_vulnerable (outcome rows "invalid free (interior pointer)" "Poseidon"));
  (* GC vulnerability *)
  check "makalu gc pointer corruption" true
    (is_vulnerable (outcome rows "pointer corruption vs GC recovery" "Makalu"))

let () =
  Alcotest.run "workloads"
    [ ( "microbench",
        [ Alcotest.test_case "all allocators" `Quick test_microbench_all_allocators;
          Alcotest.test_case "scales" `Quick test_microbench_scales ] );
      ("larson", [ Alcotest.test_case "all allocators" `Quick test_larson_all_allocators ]);
      ( "ackermann",
        [ Alcotest.test_case "all allocators" `Quick test_ackermann_all_allocators;
          Alcotest.test_case "memoised result correct" `Quick test_ackermann_correct ] );
      ("kruskal", [ Alcotest.test_case "all allocators" `Quick test_kruskal_all_allocators ]);
      ( "nqueens",
        [ Alcotest.test_case "all allocators" `Quick test_nqueens_all_allocators;
          Alcotest.test_case "solution valid" `Quick test_nqueens_solution_valid ] );
      ("ycsb", [ Alcotest.test_case "all allocators" `Quick test_ycsb_all_allocators ]);
      ("safety", [ Alcotest.test_case "paper outcomes" `Slow test_safety_matrix ]) ]
