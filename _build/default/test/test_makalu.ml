(* Tests for the Makalu-like baseline: small/large paths, the 400 B
   threshold, reclaim spills, the chunk walk, GC mark/sweep semantics,
   and its documented vulnerabilities as regression assertions. *)

module Prng = Repro_util.Prng
module Memdev = Nvmm.Memdev
module H = Makalu_sim.Heap
module L = Makalu_sim.Layout

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let base = 1 lsl 30

let mkheap ?(size = 1 lsl 24) () =
  let mach = Machine.create () in
  (mach, H.create mach ~base ~size ~heap_id:1)

let alloc_exn h size =
  match H.alloc h size with
  | Some p -> p
  | None -> Alcotest.fail "unexpected out-of-memory"

let inst_of h = Makalu_sim.instance h

(* ---------- layout ---------- *)

let test_bucket_of () =
  check_int "16" 1 (L.bucket_of 16);
  check_int "1" 1 (L.bucket_of 1);
  check_int "400" 25 (L.bucket_of 400);
  check_int "round16" 32 (L.round16 17)

(* ---------- small path ---------- *)

let test_small_roundtrip () =
  let mach, h = mkheap () in
  let p = alloc_exn h 100 in
  Machine.write_u64 mach p 42;
  check_int "usable" 42 (Machine.read_u64 mach p);
  check_int "header size" 112 (Machine.read_u64 mach (p - 16));
  H.free h p;
  (* same bucket reuse *)
  let p2 = alloc_exn h 100 in
  check_int "local list reuse" p p2

let test_small_buckets_independent () =
  let _, h = mkheap () in
  let a = alloc_exn h 32 in
  let b = alloc_exn h 200 in
  H.free h a;
  (* a 200-byte allocation must not take the 32-byte block *)
  let c = alloc_exn h 200 in
  check "different block" true (c <> a);
  ignore b

let test_reclaim_spill_and_refill () =
  let _, h = mkheap () in
  (* free far more than the local overflow: spills to reclaim *)
  let ps = List.init 100 (fun _ -> alloc_exn h 64) in
  List.iter (H.free h) ps;
  let st = H.stats h in
  check "spilled" true (st.H.reclaim_moves > 0);
  (* refill gets them back *)
  let ps2 = List.init 100 (fun _ -> alloc_exn h 64) in
  check_int "reused all" 100 (List.length ps2)

(* ---------- large path ---------- *)

let test_large_roundtrip_and_reuse () =
  let _, h = mkheap () in
  let p = alloc_exn h 5000 in
  H.free h p;
  let p2 = alloc_exn h 5000 in
  check_int "reused from global list" p p2

let test_large_split () =
  let _, h = mkheap () in
  let p = alloc_exn h 100_000 in
  H.free h p;
  let a = alloc_exn h 40_000 in
  let b = alloc_exn h 40_000 in
  check "both carved from the freed block" true
    (a >= p && b >= p && a < p + 100_000 && b < p + 100_016 + 100_000);
  let st = H.stats h in
  check "list scanned" true (st.H.large_scans >= 0)

let test_threshold_routing () =
  let _, h = mkheap () in
  let small = alloc_exn h 400 in
  let large = alloc_exn h 401 in
  let before = (H.stats h).H.large_free_len in
  H.free h small;
  let after_small = (H.stats h).H.large_free_len in
  check_int "400 B free stays local" before after_small;
  H.free h large;
  let after_large = (H.stats h).H.large_free_len in
  (* the 401-byte block must land on the global chunk list *)
  check_int "401 B free goes global" (before + 1) after_large

let test_oom () =
  let _, h = mkheap ~size:(1 lsl 20) () in
  check "oversized fails" true (H.alloc h (1 lsl 21) = None)

(* ---------- GC ---------- *)

let test_gc_sweeps_garbage () =
  let mach, h = mkheap () in
  let inst = inst_of h in
  let keep = Option.get (Alloc_intf.i_alloc inst 64) in
  for _ = 1 to 10 do
    ignore (Alloc_intf.i_alloc inst 128)
  done;
  Alloc_intf.i_set_root inst keep;
  Memdev.crash (Machine.dev mach) `Strict;
  let h2 = H.attach mach ~base in
  let st = H.stats h2 in
  check_int "live" 1 st.H.gc_live;
  check_int "swept" 10 st.H.gc_swept;
  (* swept objects are allocatable again *)
  let inst2 = inst_of h2 in
  let p = Option.get (Alloc_intf.i_alloc inst2 128) in
  ignore p

let test_gc_conservative_marking () =
  (* any word that looks like an object pointer keeps it alive *)
  let mach, h = mkheap () in
  let inst = inst_of h in
  let a = Option.get (Alloc_intf.i_alloc inst 64) in
  let b = Option.get (Alloc_intf.i_alloc inst 64) in
  let araw = Alloc_intf.i_get_rawptr inst a in
  (* bury b's address mid-object *)
  Machine.write_u64 mach (araw + 24) (Alloc_intf.i_get_rawptr inst b);
  Machine.persist mach (araw + 24) 8;
  Alloc_intf.i_set_root inst a;
  Memdev.crash (Machine.dev mach) `Strict;
  let h2 = H.attach mach ~base in
  check_int "both live" 2 (H.stats h2).H.gc_live

let test_gc_cycles_no_hang () =
  let mach, h = mkheap () in
  let inst = inst_of h in
  let a = Option.get (Alloc_intf.i_alloc inst 64) in
  let b = Option.get (Alloc_intf.i_alloc inst 64) in
  let araw = Alloc_intf.i_get_rawptr inst a in
  let braw = Alloc_intf.i_get_rawptr inst b in
  Machine.write_u64 mach araw braw;
  Machine.write_u64 mach braw araw;
  Machine.persist mach araw 8;
  Machine.persist mach braw 8;
  Alloc_intf.i_set_root inst a;
  Memdev.crash (Machine.dev mach) `Strict;
  let h2 = H.attach mach ~base in
  check_int "cycle marked once" 2 (H.stats h2).H.gc_live

let test_gc_leak_fixed () =
  (* the headline Makalu feature: allocations lost by a crash (never
     linked anywhere) are recovered without any log *)
  let mach, h = mkheap ~size:(1 lsl 21) () in
  let inst = inst_of h in
  (* allocate until full without retaining anything *)
  let rec fill n =
    match Alloc_intf.i_alloc inst 1024 with
    | Some _ -> fill (n + 1)
    | None -> n
  in
  let n1 = fill 0 in
  check "filled" true (n1 > 0);
  Memdev.crash (Machine.dev mach) `Strict;
  let h2 = H.attach mach ~base in
  let inst2 = inst_of h2 in
  let rec fill2 n =
    match Alloc_intf.i_alloc inst2 1024 with
    | Some _ -> fill2 (n + 1)
    | None -> n
  in
  check_int "all space recovered by GC" n1 (fill2 0)

(* ---------- vulnerabilities (regressions for the safety matrix) ---------- *)

let test_corrupted_header_breaks_walk () =
  let mach, h = mkheap () in
  let inst = inst_of h in
  let a = Option.get (Alloc_intf.i_alloc inst 64) in
  let b = Option.get (Alloc_intf.i_alloc inst 64) in
  let braw = Alloc_intf.i_get_rawptr inst b in
  (* corrupt a's header magic: the walk stops there and b vanishes *)
  let araw = Alloc_intf.i_get_rawptr inst a in
  Machine.write_u64 mach (araw - 8) 0xBAD;
  Machine.persist mach (araw - 8) 8;
  Alloc_intf.i_set_root inst b;
  Memdev.crash (Machine.dev mach) `Strict;
  let h2 = H.attach mach ~base in
  (* b is in the same carve chunk, after a: unreachable by the walk *)
  check_int "everything after the bad header is lost" 0 (H.stats h2).H.gc_live;
  ignore braw

let test_double_free_corrupts () =
  let _, h = mkheap () in
  let p = alloc_exn h 64 in
  H.free h p;
  H.free h p;
  (* two allocations of the bucket now return the same address *)
  let a = alloc_exn h 64 in
  let b = alloc_exn h 64 in
  check_int "same block handed out twice" a b

(* ---------- tx is a no-op by design ---------- *)

let test_tx_alloc_gc_semantics () =
  let mach, h = mkheap () in
  let inst = inst_of h in
  ignore (Alloc_intf.i_tx_alloc inst 64 ~is_end:false);
  ignore (Alloc_intf.i_tx_alloc inst 64 ~is_end:false);
  (* never linked, never committed: the GC reclaims them *)
  Memdev.crash (Machine.dev mach) `Strict;
  let h2 = H.attach mach ~base in
  check_int "uncommitted collected" 0 (H.stats h2).H.gc_live;
  check_int "swept" 2 (H.stats h2).H.gc_swept

(* ---------- property ---------- *)

let prop_random_no_overlap =
  QCheck.Test.make ~name:"makalu live allocations never overlap" ~count:20
    QCheck.small_nat
    (fun seed ->
      let _, h = mkheap () in
      let rng = Prng.create (seed + 77) in
      let live = ref [] in
      for _ = 1 to 300 do
        if Prng.bool rng || !live = [] then begin
          let size = 16 + Prng.int rng 1500 in
          match H.alloc h size with
          | Some p -> live := (p, L.round16 size) :: !live
          | None -> ()
        end
        else begin
          match !live with
          | (p, _) :: rest ->
            H.free h p;
            live := rest
          | [] -> ()
        end
      done;
      let sorted = List.sort compare !live in
      let rec disjoint = function
        | (a, sa) :: ((b, _) :: _ as rest) -> a + sa <= b && disjoint rest
        | _ -> true
      in
      disjoint sorted)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_random_no_overlap ]

let () =
  Alcotest.run "makalu_sim"
    [ ("layout", [ Alcotest.test_case "buckets" `Quick test_bucket_of ]);
      ( "small",
        [ Alcotest.test_case "roundtrip" `Quick test_small_roundtrip;
          Alcotest.test_case "buckets independent" `Quick
            test_small_buckets_independent;
          Alcotest.test_case "reclaim spill/refill" `Quick
            test_reclaim_spill_and_refill ] );
      ( "large",
        [ Alcotest.test_case "roundtrip/reuse" `Quick test_large_roundtrip_and_reuse;
          Alcotest.test_case "split" `Quick test_large_split;
          Alcotest.test_case "400B threshold" `Quick test_threshold_routing;
          Alcotest.test_case "oom" `Quick test_oom ] );
      ( "gc",
        [ Alcotest.test_case "sweeps garbage" `Quick test_gc_sweeps_garbage;
          Alcotest.test_case "conservative marking" `Quick
            test_gc_conservative_marking;
          Alcotest.test_case "cycles" `Quick test_gc_cycles_no_hang;
          Alcotest.test_case "leak fixed" `Quick test_gc_leak_fixed ] );
      ( "vulnerabilities",
        [ Alcotest.test_case "corrupted header breaks walk" `Quick
            test_corrupted_header_breaks_walk;
          Alcotest.test_case "double free" `Quick test_double_free_corrupts ] );
      ( "tx",
        [ Alcotest.test_case "gc semantics" `Quick test_tx_alloc_gc_semantics ] );
      ("properties", qsuite) ]
