test/test_internals.ml: Alcotest Format List Machine Nvmm Option Poseidon Repro_util
