test/test_pmdk.ml: Alcotest Array Hashtbl List Machine Nvmm Option Pmdk_sim QCheck QCheck_alcotest Repro_util Set
