test/test_trace.ml: Alcotest Array Hashtbl List Machine Workloads
