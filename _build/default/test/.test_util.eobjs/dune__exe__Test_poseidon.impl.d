test/test_poseidon.ml: Alcotest Alloc_intf Array Hashtbl List Machine Mpk Nvmm Option Poseidon QCheck QCheck_alcotest Repro_util
