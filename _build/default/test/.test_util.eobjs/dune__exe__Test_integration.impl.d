test/test_integration.ml: Alcotest Alloc_intf Btree Bytes Hashtbl Machine Makalu_sim Nvmm Option Pmdk_sim Poseidon Printf Repro_util String
