test/test_makalu.mli:
