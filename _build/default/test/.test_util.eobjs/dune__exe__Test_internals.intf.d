test/test_internals.mli:
