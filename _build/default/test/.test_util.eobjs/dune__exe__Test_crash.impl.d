test/test_crash.ml: Alcotest Alloc_intf List Machine Makalu_sim Nvmm Option Pmdk_sim Poseidon Repro_util
