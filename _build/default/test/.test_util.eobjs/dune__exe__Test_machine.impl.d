test/test_machine.ml: Alcotest Machine Mpk Nvmm Simcore
