test/test_exthash.ml: Alcotest Hashtbl List Machine Nvmm Poseidon QCheck QCheck_alcotest Repro_util
