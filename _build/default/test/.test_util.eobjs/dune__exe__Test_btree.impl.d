test/test_btree.ml: Alcotest Btree Hashtbl List Machine Makalu_sim Nvmm Pmdk_sim Poseidon QCheck QCheck_alcotest Repro_util
