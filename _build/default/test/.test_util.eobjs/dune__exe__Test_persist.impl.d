test/test_persist.ml: Alcotest Array Fun List Machine Nvmm Persist QCheck QCheck_alcotest Repro_util
