test/test_makalu.ml: Alcotest Alloc_intf List Machine Makalu_sim Nvmm Option QCheck QCheck_alcotest Repro_util
