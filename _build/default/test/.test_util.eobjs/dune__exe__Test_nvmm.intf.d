test/test_nvmm.mli:
