test/test_util.ml: Alcotest Array Fun Hashtbl List QCheck QCheck_alcotest Repro_util String
