test/test_mpk.ml: Alcotest Mpk
