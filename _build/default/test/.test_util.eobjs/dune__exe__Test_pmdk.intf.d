test/test_pmdk.mli:
