test/test_simcore.ml: Alcotest Buffer List Option QCheck QCheck_alcotest Repro_util Simcore
