test/test_mpk.mli:
