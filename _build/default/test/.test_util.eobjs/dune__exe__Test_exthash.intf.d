test/test_exthash.mli:
