test/test_nvmm.ml: Alcotest Bytes Char Hashtbl List Nvmm QCheck QCheck_alcotest Repro_util
