test/test_workloads.ml: Alcotest List Machine Nvmm Printf Workloads
