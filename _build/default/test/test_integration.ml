(* End-to-end integration tests: a persistent key-value store built on
   the public API (B+-tree index + allocator-managed values), driven
   through crashes, recovery and concurrent use — on every
   allocator. *)

module Prng = Repro_util.Prng
module Memdev = Nvmm.Memdev

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let base = 1 lsl 30

(* A tiny persistent KV store: the tree maps key -> packed pointer of
   a value object [len:u64][bytes]. *)
module Kv = struct
  type t = { inst : Alloc_intf.instance; tree : Btree.t; mach : Machine.t }

  let create inst =
    { inst;
      tree = Btree.create inst;
      mach = Alloc_intf.instance_machine inst }

  let attach inst =
    { inst;
      tree = Btree.attach inst;
      mach = Alloc_intf.instance_machine inst }

  let put t key value =
    let len = String.length value in
    match Alloc_intf.i_alloc t.inst (8 + len) with
    | None -> failwith "Kv.put: out of memory"
    | Some p ->
      let raw = Alloc_intf.i_get_rawptr t.inst p in
      Machine.write_u64 t.mach raw len;
      Machine.write_bytes t.mach (raw + 8) (Bytes.of_string value);
      Machine.persist t.mach raw (8 + len);
      let old = Btree.find t.tree key in
      Btree.insert t.tree ~key ~value:(Alloc_intf.pack p);
      (match old with
       | Some packed ->
         Alloc_intf.i_free t.inst (Alloc_intf.unpack ~heap_id:1 packed)
       | None -> ())

  let get t key =
    match Btree.find t.tree key with
    | None -> None
    | Some packed ->
      let p = Alloc_intf.unpack ~heap_id:1 packed in
      let raw = Alloc_intf.i_get_rawptr t.inst p in
      let len = Machine.read_u64 t.mach raw in
      Some (Bytes.to_string (Machine.read_bytes t.mach (raw + 8) len))

  let delete t key =
    match Btree.find t.tree key with
    | None -> false
    | Some packed ->
      ignore (Btree.delete t.tree key);
      Alloc_intf.i_free t.inst (Alloc_intf.unpack ~heap_id:1 packed);
      true
end

let poseidon_make () =
  let mach = Machine.create () in
  let h =
    Poseidon.Heap.create mach ~base ~size:(1 lsl 36) ~heap_id:1
      ~sub_data_size:(1 lsl 24) ()
  in
  (mach, Poseidon.instance h)

let with_all_allocators f =
  f "poseidon" poseidon_make;
  f "pmdk" (fun () ->
      let mach = Machine.create () in
      (mach, Pmdk_sim.instance (Pmdk_sim.Heap.create mach ~base ~size:(1 lsl 26) ~heap_id:1 ())));
  f "makalu" (fun () ->
      let mach = Machine.create () in
      (mach, Makalu_sim.instance (Makalu_sim.Heap.create mach ~base ~size:(1 lsl 26) ~heap_id:1)))

let test_kv_basic () =
  with_all_allocators (fun name make ->
      let _, inst = make () in
      let kv = Kv.create inst in
      Kv.put kv 1 "hello";
      Kv.put kv 2 "world";
      check (name ^ " get 1") true (Kv.get kv 1 = Some "hello");
      check (name ^ " get 2") true (Kv.get kv 2 = Some "world");
      check (name ^ " miss") true (Kv.get kv 3 = None);
      Kv.put kv 1 "updated";
      check (name ^ " update") true (Kv.get kv 1 = Some "updated");
      check (name ^ " delete") true (Kv.delete kv 2);
      check (name ^ " deleted") true (Kv.get kv 2 = None))

let test_kv_many_records () =
  with_all_allocators (fun name make ->
      let _, inst = make () in
      let kv = Kv.create inst in
      for k = 1 to 500 do
        Kv.put kv k (Printf.sprintf "value-%d" k)
      done;
      let ok = ref true in
      for k = 1 to 500 do
        if Kv.get kv k <> Some (Printf.sprintf "value-%d" k) then ok := false
      done;
      check (name ^ " 500 records") true !ok)

let test_kv_crash_recovery_poseidon () =
  let mach, inst = poseidon_make () in
  let kv = Kv.create inst in
  for k = 1 to 200 do
    Kv.put kv k (Printf.sprintf "v%d" k)
  done;
  Memdev.crash (Machine.dev mach) `Strict;
  let h2 = Poseidon.Heap.attach mach ~base () in
  Poseidon.Heap.check_invariants h2;
  let kv2 = Kv.attach (Poseidon.instance h2) in
  let ok = ref true in
  for k = 1 to 200 do
    if Kv.get kv2 k <> Some (Printf.sprintf "v%d" k) then ok := false
  done;
  check "all records after crash" true !ok;
  (* and the store remains fully usable *)
  Kv.put kv2 777 "post-crash";
  check "writable after recovery" true (Kv.get kv2 777 = Some "post-crash")

let test_kv_repeated_crashes () =
  let mach, inst = poseidon_make () in
  let kv = ref (Kv.create inst) in
  let rng = Prng.create 5 in
  let model = Hashtbl.create 64 in
  for round = 1 to 5 do
    for _ = 1 to 50 do
      let k = 1 + Prng.int rng 100 in
      let v = Printf.sprintf "r%d-%d" round (Prng.int rng 1000) in
      Kv.put !kv k v;
      Hashtbl.replace model k v
    done;
    Memdev.crash (Machine.dev mach) `Strict;
    let h = Poseidon.Heap.attach mach ~base () in
    Poseidon.Heap.check_invariants h;
    kv := Kv.attach (Poseidon.instance h)
  done;
  Hashtbl.iter
    (fun k v -> check "model agrees after 5 crashes" true (Kv.get !kv k = Some v))
    model

let test_kv_concurrent () =
  let mach, inst = poseidon_make () in
  let kv = Kv.create inst in
  let threads = 8 and per = 200 in
  let _ =
    Machine.parallel mach ~threads (fun i ->
        for j = 0 to per - 1 do
          Kv.put kv (1 + (j * threads) + i) (Printf.sprintf "t%d-%d" i j)
        done)
  in
  let ok = ref true in
  for i = 0 to threads - 1 do
    for j = 0 to per - 1 do
      if Kv.get kv (1 + (j * threads) + i) <> Some (Printf.sprintf "t%d-%d" i j)
      then ok := false
    done
  done;
  check "concurrent puts all visible" true !ok

let test_mixed_heaps_one_machine () =
  (* two Poseidon heaps coexisting in one machine, no cross-talk *)
  let mach = Machine.create () in
  let h1 =
    Poseidon.Heap.create mach ~base ~size:(1 lsl 34) ~heap_id:1
      ~sub_data_size:(1 lsl 20) ()
  in
  let h2 =
    Poseidon.Heap.create mach ~base:(1 lsl 37) ~size:(1 lsl 34) ~heap_id:2
      ~sub_data_size:(1 lsl 20) ()
  in
  let p1 = Option.get (Poseidon.Heap.alloc h1 64) in
  let p2 = Option.get (Poseidon.Heap.alloc h2 64) in
  (* freeing a foreign pointer is rejected *)
  Poseidon.Heap.free h1 p2;
  Poseidon.Heap.free h2 p1;
  check_int "h1 intact" 64 (Poseidon.Heap.stats h1).Poseidon.Heap.live_bytes;
  check_int "h2 intact" 64 (Poseidon.Heap.stats h2).Poseidon.Heap.live_bytes;
  Poseidon.Heap.check_invariants h1;
  Poseidon.Heap.check_invariants h2

let test_tx_kv_pattern () =
  (* the transactional-allocation pattern of 2: allocate several
     objects, link them under the root only after commit *)
  let mach, inst = poseidon_make () in
  let _p = Alloc_intf.i_tx_alloc inst 64 ~is_end:false in
  let _q = Alloc_intf.i_tx_alloc inst 64 ~is_end:false in
  (* crash before the tx commits: P and Q must not leak *)
  Memdev.crash (Machine.dev mach) `Strict;
  let h = Poseidon.Heap.attach mach ~base () in
  check_int "no leak from aborted tx" 0
    (Poseidon.Heap.stats h).Poseidon.Heap.live_bytes

let () =
  Alcotest.run "integration"
    [ ( "kv-store",
        [ Alcotest.test_case "basic ops" `Quick test_kv_basic;
          Alcotest.test_case "500 records" `Quick test_kv_many_records;
          Alcotest.test_case "crash recovery" `Quick test_kv_crash_recovery_poseidon;
          Alcotest.test_case "repeated crashes" `Quick test_kv_repeated_crashes;
          Alcotest.test_case "concurrent" `Quick test_kv_concurrent ] );
      ( "multi-heap",
        [ Alcotest.test_case "two heaps isolated" `Quick test_mixed_heaps_one_machine ] );
      ("tx", [ Alcotest.test_case "paper 2 pattern" `Quick test_tx_kv_pattern ]) ]
