(* Unit and property tests for the repro_util library. *)

module Prng = Repro_util.Prng
module Bitset = Repro_util.Bitset
module Stats = Repro_util.Stats
module Zipf = Repro_util.Zipf
module Tablefmt = Repro_util.Tablefmt

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------- prng ---------- *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_u64 a) (Prng.next_u64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 42 and b = Prng.create 43 in
  check "different seeds differ" true (Prng.next_u64 a <> Prng.next_u64 b)

let test_prng_bounds () =
  let rng = Prng.create 7 in
  for _ = 1 to 10_000 do
    let x = Prng.int rng 17 in
    check "in range" true (x >= 0 && x < 17)
  done

let test_prng_int_in () =
  let rng = Prng.create 7 in
  for _ = 1 to 10_000 do
    let x = Prng.int_in rng 5 9 in
    check "in closed range" true (x >= 5 && x <= 9)
  done

let test_prng_uniformish () =
  let rng = Prng.create 11 in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let x = Prng.int rng 10 in
    counts.(x) <- counts.(x) + 1
  done;
  Array.iter
    (fun c ->
      check "roughly uniform" true
        (abs (c - (n / 10)) < n / 10 (* within 10 % absolute *)))
    counts

let test_prng_split_independent () =
  let a = Prng.create 42 in
  let b = Prng.split a in
  check "split streams differ" true (Prng.next_u64 a <> Prng.next_u64 b)

let test_prng_copy () =
  let a = Prng.create 13 in
  ignore (Prng.next_u64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy replays" (Prng.next_u64 a) (Prng.next_u64 b)

let test_shuffle_permutation () =
  let rng = Prng.create 3 in
  let a = Array.init 100 Fun.id in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 100 Fun.id) sorted

let test_float_bounds () =
  let rng = Prng.create 5 in
  for _ = 1 to 10_000 do
    let x = Prng.float rng 1.0 in
    check "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

(* ---------- bitset ---------- *)

let test_bitset_basic () =
  let b = Bitset.create 100 in
  check "fresh empty" true (Bitset.is_empty b);
  Bitset.set b 0;
  Bitset.set b 99;
  Bitset.set b 63;
  check "mem 0" true (Bitset.mem b 0);
  check "mem 99" true (Bitset.mem b 99);
  check "mem 63" true (Bitset.mem b 63);
  check "not mem 1" false (Bitset.mem b 1);
  check_int "count" 3 (Bitset.count b);
  Bitset.clear b 63;
  check "cleared" false (Bitset.mem b 63);
  check_int "count after clear" 2 (Bitset.count b)

let test_bitset_range () =
  let b = Bitset.create 64 in
  Bitset.set_range b 10 20;
  check_int "range count" 20 (Bitset.count b);
  check "below" false (Bitset.mem b 9);
  check "first" true (Bitset.mem b 10);
  check "last" true (Bitset.mem b 29);
  check "above" false (Bitset.mem b 30);
  Bitset.clear_range b 15 5;
  check_int "after clear_range" 15 (Bitset.count b)

let test_bitset_first_clear_run () =
  let b = Bitset.create 32 in
  Bitset.set_range b 0 5;
  Bitset.set_range b 8 2;
  Alcotest.(check (option int)) "run of 3" (Some 5) (Bitset.first_clear_run b 3);
  Alcotest.(check (option int)) "run of 4" (Some 10) (Bitset.first_clear_run b 4);
  Alcotest.(check (option int)) "run of 23" None (Bitset.first_clear_run b 23);
  Alcotest.(check (option int)) "run of 22" (Some 10) (Bitset.first_clear_run b 22)

let test_bitset_iter () =
  let b = Bitset.create 64 in
  List.iter (Bitset.set b) [ 3; 17; 40 ];
  let seen = ref [] in
  Bitset.iter_set b (fun i -> seen := i :: !seen);
  Alcotest.(check (list int)) "iter order" [ 3; 17; 40 ] (List.rev !seen)

let test_bitset_oob () =
  let b = Bitset.create 8 in
  Alcotest.check_raises "negative" (Invalid_argument "Bitset: index out of range")
    (fun () -> Bitset.set b (-1));
  Alcotest.check_raises "beyond" (Invalid_argument "Bitset: index out of range")
    (fun () -> ignore (Bitset.mem b 8))

let prop_bitset_model =
  QCheck.Test.make ~name:"bitset matches a model set" ~count:200
    QCheck.(list (pair (int_bound 127) bool))
    (fun ops ->
      let b = Bitset.create 128 in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (i, set) ->
          if set then begin
            Bitset.set b i;
            Hashtbl.replace model i ()
          end
          else begin
            Bitset.clear b i;
            Hashtbl.remove model i
          end)
        ops;
      Hashtbl.length model = Bitset.count b
      && List.for_all
           (fun i -> Bitset.mem b i = Hashtbl.mem model i)
           (List.init 128 Fun.id))

(* ---------- stats ---------- *)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  check_int "count" 4 (Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.min_value s);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Stats.max_value s);
  Alcotest.(check (float 1e-9)) "total" 10.0 (Stats.total s)

let test_stats_percentile () =
  let s = Stats.create () in
  for i = 1 to 100 do
    Stats.add s (float_of_int i)
  done;
  Alcotest.(check (float 0.6)) "p50" 50.5 (Stats.percentile s 50.);
  Alcotest.(check (float 1.1)) "p99" 99.0 (Stats.percentile s 99.);
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.percentile s 0.);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Stats.percentile s 100.)

let test_stats_stddev () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check (float 1e-9)) "stddev" 2.0 (Stats.stddev s)

let test_stats_clear () =
  let s = Stats.create () in
  Stats.add s 5.0;
  Stats.clear s;
  check_int "count after clear" 0 (Stats.count s)

(* ---------- zipf ---------- *)

let test_zipf_range () =
  let z = Zipf.create 1000 in
  let rng = Prng.create 9 in
  for _ = 1 to 10_000 do
    let x = Zipf.draw z rng in
    check "in range" true (x >= 0 && x < 1000)
  done

let test_zipf_skew () =
  let z = Zipf.create 1000 in
  let rng = Prng.create 9 in
  let head = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Zipf.draw z rng < 10 then incr head
  done;
  (* with theta=0.99, the top-10 of 1000 items get ~30 % of draws *)
  check "zipfian head heavy" true (!head > n / 5)

let test_zipf_scrambled_range () =
  let z = Zipf.create 777 in
  let rng = Prng.create 10 in
  for _ = 1 to 10_000 do
    let x = Zipf.scrambled z rng in
    check "scrambled in range" true (x >= 0 && x < 777)
  done

(* ---------- tablefmt ---------- *)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_table_render () =
  let t = Tablefmt.create ~title:"Title" ~columns:[ "a"; "bb" ] in
  Tablefmt.add_row t "r1" [ "1" ];
  Tablefmt.add_float_row t "r2" [ 2.5 ];
  let s = Tablefmt.render t in
  check "contains title" true (contains ~needle:"Title" s);
  check "contains r1" true (contains ~needle:"r1" s);
  check "contains formatted float" true (contains ~needle:"2.500" s)

let test_table_too_many_cells () =
  let t = Tablefmt.create ~title:"T" ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "too many cells"
    (Invalid_argument "Tablefmt.add_row: more cells than columns") (fun () ->
      Tablefmt.add_row t "r" [ "1"; "2" ])

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_bitset_model ]

let () =
  Alcotest.run "util"
    [ ( "prng",
        [ Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "int_in" `Quick test_prng_int_in;
          Alcotest.test_case "uniform-ish" `Quick test_prng_uniformish;
          Alcotest.test_case "split" `Quick test_prng_split_independent;
          Alcotest.test_case "copy" `Quick test_prng_copy;
          Alcotest.test_case "shuffle" `Quick test_shuffle_permutation;
          Alcotest.test_case "float bounds" `Quick test_float_bounds ] );
      ( "bitset",
        [ Alcotest.test_case "basic" `Quick test_bitset_basic;
          Alcotest.test_case "ranges" `Quick test_bitset_range;
          Alcotest.test_case "first_clear_run" `Quick test_bitset_first_clear_run;
          Alcotest.test_case "iter_set" `Quick test_bitset_iter;
          Alcotest.test_case "out of bounds" `Quick test_bitset_oob ]
        @ qsuite );
      ( "stats",
        [ Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "clear" `Quick test_stats_clear ] );
      ( "zipf",
        [ Alcotest.test_case "range" `Quick test_zipf_range;
          Alcotest.test_case "skew" `Quick test_zipf_skew;
          Alcotest.test_case "scrambled range" `Quick test_zipf_scrambled_range ] );
      ( "tablefmt",
        [ Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "cell arity" `Quick test_table_too_many_cells ] ) ]
