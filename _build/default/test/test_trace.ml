(* Tests for trace generation, serialization and replay. *)

module Trace = Workloads.Trace

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_random_trace_well_formed () =
  let t = Trace.random ~seed:7 ~events:500 () in
  check_int "length" 500 (Array.length t);
  (* every free refers to a previously allocated, not-yet-freed id *)
  let live = Hashtbl.create 64 in
  Array.iter
    (function
      | Trace.Alloc (id, size) | Trace.Tx_alloc (id, size, _) ->
        check "positive size" true (size > 0);
        check "fresh id" false (Hashtbl.mem live id);
        Hashtbl.replace live id ()
      | Trace.Free id ->
        check "free of live id" true (Hashtbl.mem live id);
        Hashtbl.remove live id)
    t

let test_roundtrip_serialization () =
  let t = Trace.random ~seed:3 ~events:300 ~tx_ratio:0.3 () in
  let s = Trace.to_string t in
  let t' = Trace.of_string s in
  check "roundtrip equal" true (t = t')

let test_parse_error () =
  check "garbage rejected" true
    (try ignore (Trace.of_string "a 1 2\nbogus line\n"); false
     with Trace.Parse_error (2, _) -> true)

let test_determinism () =
  let a = Trace.random ~seed:11 ~events:200 () in
  let b = Trace.random ~seed:11 ~events:200 () in
  check "same seed, same trace" true (a = b);
  let c = Trace.random ~seed:12 ~events:200 () in
  check "different seed differs" true (a <> c)

let mk_poseidon () =
  let f = Workloads.Factories.poseidon ~sub_data_size:(1 lsl 20) () in
  f.Workloads.Factories.make ()

let test_replay_counts () =
  let _, inst = mk_poseidon () in
  let t = Trace.random ~seed:5 ~events:400 ~max_size:512 () in
  let r = Trace.replay inst t in
  let allocs =
    Array.fold_left
      (fun a -> function
        | Trace.Alloc _ | Trace.Tx_alloc _ -> a + 1
        | Trace.Free _ -> a)
      0 t
  in
  check_int "all allocations succeed" allocs r.Trace.allocs_ok;
  check_int "no failures" 0 r.Trace.allocs_failed;
  check_int "all frees hit" (Array.length t - allocs) r.Trace.frees;
  check_int "none skipped" 0 r.Trace.skipped_frees

let test_replay_timed_and_comparable () =
  let t = Trace.random ~seed:9 ~events:600 ~max_size:1024 () in
  let times =
    List.map
      (fun (f : Workloads.Factories.factory) ->
        let mach, inst = f.Workloads.Factories.make () in
        let r = Trace.replay_timed ~mach inst t in
        check (f.Workloads.Factories.name ^ " replayed") true
          (r.Trace.allocs_ok > 0);
        (f.Workloads.Factories.name, r.Trace.simulated_seconds))
      [ Workloads.Factories.poseidon (); Workloads.Factories.pmdk ();
        Workloads.Factories.makalu () ]
  in
  List.iter (fun (_, s) -> check "positive time" true (s > 0.0)) times

let test_replay_parallel () =
  let f = Workloads.Factories.poseidon () in
  let mach, inst = f.Workloads.Factories.make () in
  let t = Trace.random ~seed:21 ~events:800 ~max_size:256 () in
  let secs = Trace.replay_parallel ~mach inst ~threads:4 t in
  check "parallel replay runs" true (secs > 0.0)

let test_replay_oversized_graceful () =
  (* a trace with requests bigger than the heap: failed allocations
     and their frees are tolerated *)
  let f = Workloads.Factories.poseidon ~sub_data_size:(1 lsl 16) () in
  let _, inst = f.Workloads.Factories.make () in
  let t =
    [| Trace.Alloc (0, 1 lsl 20); Trace.Alloc (1, 64); Trace.Free 0;
       Trace.Free 1 |]
  in
  let r = Trace.replay inst t in
  check_int "one failed" 1 r.Trace.allocs_failed;
  check_int "one skipped free" 1 r.Trace.skipped_frees;
  check_int "one real free" 1 r.Trace.frees

let test_ycsb_abc_extension () =
  let r =
    Workloads.Ycsb.run_abc
      ~factory:(Workloads.Factories.poseidon ())
      ~cfg:{ Machine.Config.default with num_cpus = 4 }
      ~threads:2 ~records:300 ~operations:300 ()
  in
  check "load" true (r.Workloads.Ycsb.l > 0.0);
  check "A" true (r.Workloads.Ycsb.a > 0.0);
  check "B" true (r.Workloads.Ycsb.b > 0.0);
  check "C" true (r.Workloads.Ycsb.c > 0.0);
  (* read-heavier workloads allocate less, so they should not be
     slower than A by much; sanity: all within a sane band *)
  check "sane band" true (r.Workloads.Ycsb.c < 100.0 *. r.Workloads.Ycsb.a)

let () =
  Alcotest.run "trace"
    [ ( "generation",
        [ Alcotest.test_case "well-formed" `Quick test_random_trace_well_formed;
          Alcotest.test_case "determinism" `Quick test_determinism ] );
      ( "serialization",
        [ Alcotest.test_case "roundtrip" `Quick test_roundtrip_serialization;
          Alcotest.test_case "parse error" `Quick test_parse_error ] );
      ( "replay",
        [ Alcotest.test_case "counts" `Quick test_replay_counts;
          Alcotest.test_case "timed, all allocators" `Quick
            test_replay_timed_and_comparable;
          Alcotest.test_case "parallel" `Quick test_replay_parallel;
          Alcotest.test_case "oversized graceful" `Quick
            test_replay_oversized_graceful ] );
      ( "ycsb-extension",
        [ Alcotest.test_case "workloads B and C" `Quick test_ycsb_abc_extension ] ) ]
