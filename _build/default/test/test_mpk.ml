(* Tests for the simulated MPK unit: key allocation, range tagging,
   per-thread PKRU isolation, permission checks, the ablation switch. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let page = Mpk.page_size

let test_key_allocation () =
  let m = Mpk.create () in
  let k1 = Mpk.alloc_key m in
  let k2 = Mpk.alloc_key m in
  check "distinct keys" true (k1 <> k2);
  check "non-default" true (k1 >= 1 && k1 <= 15);
  Mpk.free_key m k1;
  let k3 = Mpk.alloc_key m in
  check_int "freed key reused" k1 k3

let test_key_exhaustion () =
  let m = Mpk.create () in
  for _ = 1 to 15 do
    ignore (Mpk.alloc_key m)
  done;
  check "16th allocation fails" true
    (try ignore (Mpk.alloc_key m); false with Failure _ -> true)

let test_default_key_untagged () =
  let m = Mpk.create () in
  check_int "untagged is key 0" 0 (Mpk.key_of_addr m 12345);
  (* key 0 is always read-write *)
  Mpk.check m ~thread:1 12345 Mpk.Write

let test_range_tagging () =
  let m = Mpk.create () in
  let k = Mpk.alloc_key m in
  Mpk.assign_range m k ~base:(4 * page) ~size:(2 * page);
  check_int "inside" k (Mpk.key_of_addr m (4 * page));
  check_int "last byte" k (Mpk.key_of_addr m ((6 * page) - 1));
  check_int "before" 0 (Mpk.key_of_addr m ((4 * page) - 1));
  check_int "after" 0 (Mpk.key_of_addr m (6 * page))

let test_unaligned_range_rejected () =
  let m = Mpk.create () in
  let k = Mpk.alloc_key m in
  check "unaligned rejected" true
    (try Mpk.assign_range m k ~base:100 ~size:page; false
     with Invalid_argument _ -> true)

let test_overlapping_range_rejected () =
  let m = Mpk.create () in
  let k = Mpk.alloc_key m in
  Mpk.assign_range m k ~base:0 ~size:(4 * page);
  check "overlap rejected" true
    (try Mpk.assign_range m k ~base:page ~size:page; false
     with Invalid_argument _ -> true)

let test_reassign_same_range () =
  let m = Mpk.create () in
  let k1 = Mpk.alloc_key m in
  Mpk.assign_range m k1 ~base:0 ~size:page;
  let k2 = Mpk.alloc_key m in
  Mpk.assign_range m k2 ~base:0 ~size:page; (* exact match: swaps key *)
  check_int "key swapped" k2 (Mpk.key_of_addr m 0)

let test_read_only_enforcement () =
  let m = Mpk.create () in
  let k = Mpk.alloc_key m in
  Mpk.assign_range m k ~base:0 ~size:page;
  Mpk.set_default_perm m k Mpk.Read_only;
  (* reads fine, writes fault *)
  Mpk.check m ~thread:7 100 Mpk.Read;
  check "write faults" true
    (try Mpk.check m ~thread:7 100 Mpk.Write; false
     with Mpk.Fault f ->
       f.Mpk.fault_addr = 100 && f.Mpk.fault_pkey = k)

let test_no_access () =
  let m = Mpk.create () in
  let k = Mpk.alloc_key m in
  Mpk.assign_range m k ~base:0 ~size:page;
  Mpk.set_default_perm m k Mpk.No_access;
  check "read faults" true
    (try Mpk.check m ~thread:7 0 Mpk.Read; false with Mpk.Fault _ -> true)

let test_per_thread_isolation () =
  (* the write permission granted to one thread must not leak to
     another (the paper's cross-thread protection argument, 4.3) *)
  let m = Mpk.create () in
  let k = Mpk.alloc_key m in
  Mpk.assign_range m k ~base:0 ~size:page;
  Mpk.set_default_perm m k Mpk.Read_only;
  Mpk.set_perm m ~thread:1 k Mpk.Read_write;
  Mpk.check m ~thread:1 0 Mpk.Write; (* granted thread writes *)
  check "other thread still faults" true
    (try Mpk.check m ~thread:2 0 Mpk.Write; false with Mpk.Fault _ -> true);
  (* revoke and re-check *)
  Mpk.set_perm m ~thread:1 k Mpk.Read_only;
  check "revoked thread faults" true
    (try Mpk.check m ~thread:1 0 Mpk.Write; false with Mpk.Fault _ -> true)

let test_reset_thread () =
  let m = Mpk.create () in
  let k = Mpk.alloc_key m in
  Mpk.assign_range m k ~base:0 ~size:page;
  Mpk.set_default_perm m k Mpk.Read_only;
  Mpk.set_perm m ~thread:1 k Mpk.Read_write;
  Mpk.reset_thread m ~thread:1;
  check "back to default" true (Mpk.get_perm m ~thread:1 k = Mpk.Read_only)

let test_free_key_clears () =
  let m = Mpk.create () in
  let k = Mpk.alloc_key m in
  Mpk.assign_range m k ~base:0 ~size:page;
  Mpk.set_default_perm m k Mpk.Read_only;
  Mpk.free_key m k;
  (* range dropped, permission back to RW *)
  check_int "range gone" 0 (Mpk.key_of_addr m 0);
  Mpk.check m ~thread:3 0 Mpk.Write

let test_disable_enable () =
  let m = Mpk.create () in
  let k = Mpk.alloc_key m in
  Mpk.assign_range m k ~base:0 ~size:page;
  Mpk.set_default_perm m k Mpk.No_access;
  Mpk.set_enabled m false;
  Mpk.check m ~thread:1 0 Mpk.Write; (* everything passes *)
  Mpk.set_enabled m true;
  check "re-enabled faults" true
    (try Mpk.check m ~thread:1 0 Mpk.Write; false with Mpk.Fault _ -> true)

let test_fault_counter () =
  let m = Mpk.create () in
  let k = Mpk.alloc_key m in
  Mpk.assign_range m k ~base:0 ~size:page;
  Mpk.set_default_perm m k Mpk.No_access;
  let before = Mpk.faults_observed m in
  (try Mpk.check m ~thread:1 0 Mpk.Read with Mpk.Fault _ -> ());
  (try Mpk.check m ~thread:1 64 Mpk.Write with Mpk.Fault _ -> ());
  check_int "fault count" (before + 2) (Mpk.faults_observed m)

(* ---------- wrpkru lockdown (paper 8) ---------- *)

let test_seal_blocks_loosening () =
  let m = Mpk.create () in
  let k = Mpk.alloc_key m in
  Mpk.set_default_perm m k Mpk.Read_only;
  let cap = Mpk.guard m k in
  Mpk.seal m;
  check "sealed" true (Mpk.sealed m);
  check "loosening without cap denied" true
    (try Mpk.set_perm m ~thread:1 k Mpk.Read_write; false
     with Mpk.Wrpkru_denied k' -> k' = k);
  (* with the capability it works *)
  Mpk.set_perm ~cap m ~thread:1 k Mpk.Read_write;
  check "granted with cap" true (Mpk.get_perm m ~thread:1 k = Mpk.Read_write)

let test_seal_allows_tightening () =
  let m = Mpk.create () in
  let k = Mpk.alloc_key m in
  let cap = Mpk.guard m k in
  Mpk.seal m;
  Mpk.set_perm ~cap m ~thread:1 k Mpk.Read_write;
  (* revoking your own access never needs the capability *)
  Mpk.set_perm m ~thread:1 k Mpk.Read_only;
  Mpk.set_perm m ~thread:1 k Mpk.No_access;
  check "tightened" true (Mpk.get_perm m ~thread:1 k = Mpk.No_access)

let test_seal_spares_unguarded_keys () =
  let m = Mpk.create () in
  let k1 = Mpk.alloc_key m in
  let k2 = Mpk.alloc_key m in
  Mpk.set_default_perm m k2 Mpk.Read_only;
  ignore (Mpk.guard m k1);
  Mpk.seal m;
  (* k2 was never guarded: plain wrpkru still works *)
  Mpk.set_perm m ~thread:1 k2 Mpk.Read_write

let test_wrong_capability_denied () =
  let m = Mpk.create () in
  let k1 = Mpk.alloc_key m in
  let k2 = Mpk.alloc_key m in
  Mpk.set_default_perm m k1 Mpk.Read_only;
  ignore (Mpk.guard m k1);
  let cap2 = Mpk.guard m k2 in
  Mpk.seal m;
  check "foreign capability refused" true
    (try Mpk.set_perm ~cap:cap2 m ~thread:1 k1 Mpk.Read_write; false
     with Mpk.Wrpkru_denied _ -> true)

let () =
  Alcotest.run "mpk"
    [ ( "keys",
        [ Alcotest.test_case "allocation" `Quick test_key_allocation;
          Alcotest.test_case "exhaustion" `Quick test_key_exhaustion;
          Alcotest.test_case "free clears state" `Quick test_free_key_clears ] );
      ( "ranges",
        [ Alcotest.test_case "default key" `Quick test_default_key_untagged;
          Alcotest.test_case "tagging" `Quick test_range_tagging;
          Alcotest.test_case "unaligned rejected" `Quick test_unaligned_range_rejected;
          Alcotest.test_case "overlap rejected" `Quick test_overlapping_range_rejected;
          Alcotest.test_case "reassign same range" `Quick test_reassign_same_range ] );
      ( "permissions",
        [ Alcotest.test_case "read-only" `Quick test_read_only_enforcement;
          Alcotest.test_case "no-access" `Quick test_no_access;
          Alcotest.test_case "per-thread isolation" `Quick test_per_thread_isolation;
          Alcotest.test_case "reset thread" `Quick test_reset_thread;
          Alcotest.test_case "disable/enable" `Quick test_disable_enable;
          Alcotest.test_case "fault counter" `Quick test_fault_counter ] );
      ( "lockdown",
        [ Alcotest.test_case "seal blocks loosening" `Quick
            test_seal_blocks_loosening;
          Alcotest.test_case "tightening free" `Quick test_seal_allows_tightening;
          Alcotest.test_case "unguarded keys unaffected" `Quick
            test_seal_spares_unguarded_keys;
          Alcotest.test_case "wrong capability" `Quick
            test_wrong_capability_denied ] ) ]
