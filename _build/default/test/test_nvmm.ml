(* Tests for the simulated NVMM device: access widths, regions,
   sparse backing, clwb/sfence persistence semantics, crash modes,
   hole punching, counters. *)

module Memdev = Nvmm.Memdev
module Prng = Repro_util.Prng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mkdev ?(size = 1 lsl 20) () =
  let d = Memdev.create () in
  Memdev.add_region d ~base:0 ~size ~kind:Memdev.Nvmm ~numa:0;
  d

(* ---------- scalar access ---------- *)

let test_rw_widths () =
  let d = mkdev () in
  Memdev.write_u8 d 0 0xAB;
  check_int "u8" 0xAB (Memdev.read_u8 d 0);
  Memdev.write_u16 d 2 0xBEEF;
  check_int "u16" 0xBEEF (Memdev.read_u16 d 2);
  Memdev.write_u32 d 4 0xDEADBEEF;
  check_int "u32" 0xDEADBEEF (Memdev.read_u32 d 4);
  Memdev.write_u64 d 8 0x123456789ABCDEF;
  check_int "u64" 0x123456789ABCDEF (Memdev.read_u64 d 8)

let test_unwritten_reads_zero () =
  let d = mkdev () in
  check_int "virgin zero" 0 (Memdev.read_u64 d 4096)

let test_chunk_straddle () =
  let d = mkdev ~size:(1 lsl 20) () in
  (* 64 KiB chunk boundary at 65536; unaligned u64 across it *)
  let a = 65536 - 3 in
  Memdev.write_u64 d a 0x1122334455667788;
  check_int "straddling u64" 0x1122334455667788 (Memdev.read_u64 d a);
  check_int "bytes before" 0x88 (Memdev.read_u8 d a)

let test_bytes_roundtrip () =
  let d = mkdev () in
  let src = Bytes.of_string "the quick brown fox jumps over the lazy dog" in
  Memdev.write_bytes d 100 src;
  Alcotest.(check string) "roundtrip" (Bytes.to_string src)
    (Bytes.to_string (Memdev.read_bytes d 100 (Bytes.length src)))

let test_bytes_across_chunks () =
  let d = mkdev ~size:(1 lsl 20) () in
  let src = Bytes.make 200_000 'x' in
  Bytes.set src 0 'a';
  Bytes.set src 199_999 'z';
  Memdev.write_bytes d 10 src;
  let back = Memdev.read_bytes d 10 200_000 in
  check "multi-chunk blob" true (Bytes.equal src back)

let test_fill () =
  let d = mkdev () in
  Memdev.fill d 64 100 'q';
  check_int "filled" (Char.code 'q') (Memdev.read_u8 d 163);
  check_int "boundary" 0 (Memdev.read_u8 d 164)

(* ---------- regions ---------- *)

let test_region_info () =
  let d = Memdev.create () in
  Memdev.add_region d ~base:0 ~size:4096 ~kind:Memdev.Dram ~numa:0;
  Memdev.add_region d ~base:8192 ~size:4096 ~kind:Memdev.Nvmm ~numa:1;
  check "dram" true (Memdev.region_info d 100 = (Memdev.Dram, 0));
  check "nvmm" true (Memdev.region_info d 8192 = (Memdev.Nvmm, 1));
  check "has_region" true (Memdev.has_region d 0);
  check "no region" false (Memdev.has_region d 5000)

let test_region_overlap_rejected () =
  let d = Memdev.create () in
  Memdev.add_region d ~base:0 ~size:8192 ~kind:Memdev.Nvmm ~numa:0;
  check "overlap rejected" true
    (try
       Memdev.add_region d ~base:4096 ~size:8192 ~kind:Memdev.Nvmm ~numa:0;
       false
     with Invalid_argument _ -> true)

let test_invalid_address () =
  let d = mkdev ~size:4096 () in
  check "oob read raises" true
    (try ignore (Memdev.read_u64 d 4096); false
     with Memdev.Invalid_address _ -> true);
  check "oob write raises" true
    (try Memdev.write_u64 d 4090 1; false
     with Memdev.Invalid_address _ -> true)

(* ---------- persistence ---------- *)

let test_unflushed_lost_on_crash () =
  let d = mkdev () in
  Memdev.write_u64 d 0 42;
  Memdev.crash d `Strict;
  check_int "unflushed store lost" 0 (Memdev.read_u64 d 0)

let test_persist_survives_crash () =
  let d = mkdev () in
  Memdev.write_u64 d 0 42;
  Memdev.persist d 0 8;
  Memdev.write_u64 d 8 43; (* same line, not re-flushed *)
  Memdev.crash d `Strict;
  check_int "flushed survives" 42 (Memdev.read_u64 d 0);
  check_int "later store on same line lost" 0 (Memdev.read_u64 d 8)

let test_clwb_without_sfence_lost () =
  let d = mkdev () in
  Memdev.write_u64 d 0 42;
  Memdev.clwb d 0;
  (* no sfence *)
  Memdev.crash d `Strict;
  check_int "clwb without fence not durable" 0 (Memdev.read_u64 d 0)

let test_clwb_snapshot_semantics () =
  (* stores after clwb but before sfence must not be made durable by
     that earlier clwb *)
  let d = mkdev () in
  Memdev.write_u64 d 0 1;
  Memdev.clwb d 0;
  Memdev.write_u64 d 0 2;
  Memdev.sfence d;
  Memdev.crash d `Strict;
  check_int "snapshot at clwb time" 1 (Memdev.read_u64 d 0)

let test_dirty_tracking () =
  let d = mkdev () in
  check_int "clean" 0 (Memdev.dirty_lines d);
  Memdev.write_u64 d 0 1;
  Memdev.write_u64 d 8 2; (* same line *)
  check_int "one dirty line" 1 (Memdev.dirty_lines d);
  Memdev.write_u64 d 64 3;
  check_int "two dirty lines" 2 (Memdev.dirty_lines d);
  Memdev.persist d 0 72;
  check_int "clean after persist" 0 (Memdev.dirty_lines d)

let test_drain () =
  let d = mkdev () in
  for i = 0 to 99 do
    Memdev.write_u64 d (i * 64) i
  done;
  Memdev.drain d;
  Memdev.crash d `Strict;
  let ok = ref true in
  for i = 0 to 99 do
    if Memdev.read_u64 d (i * 64) <> i then ok := false
  done;
  check "drain flushed everything" true !ok

let test_adversarial_crash_subsets () =
  (* adversarial crash may persist any subset of dirty lines; flushed
     data must survive regardless, and every line must hold either the
     old or the new value *)
  let rng = Prng.create 99 in
  for _ = 1 to 20 do
    let d = mkdev () in
    Memdev.write_u64 d 0 7;
    Memdev.persist d 0 8;
    Memdev.write_u64 d 0 8;   (* dirty again *)
    Memdev.write_u64 d 64 9;  (* dirty, never flushed *)
    Memdev.crash d (`Adversarial rng);
    let v0 = Memdev.read_u64 d 0 and v1 = Memdev.read_u64 d 64 in
    check "line0 old or new" true (v0 = 7 || v0 = 8);
    check "line1 zero or evicted" true (v1 = 0 || v1 = 9)
  done

let test_crash_idempotent () =
  let d = mkdev () in
  Memdev.write_u64 d 0 5;
  Memdev.persist d 0 8;
  Memdev.crash d `Strict;
  Memdev.crash d `Strict;
  check_int "double crash stable" 5 (Memdev.read_u64 d 0)

(* ---------- punch ---------- *)

let test_punch_zeroes () =
  let d = mkdev ~size:(1 lsl 20) () in
  Memdev.write_u64 d 100 42;
  Memdev.persist d 100 8;
  Memdev.punch d 0 4096;
  check_int "volatile zeroed" 0 (Memdev.read_u64 d 100);
  Memdev.crash d `Strict;
  check_int "persistent zeroed" 0 (Memdev.read_u64 d 100)

let test_punch_whole_chunk () =
  let d = mkdev ~size:(1 lsl 20) () in
  Memdev.write_u64 d 65536 1;
  Memdev.write_u64 d 65536 1;
  Memdev.punch d 65536 65536; (* exactly one backing chunk *)
  check_int "chunk released" 0 (Memdev.read_u64 d 65536)

let test_punch_partial () =
  let d = mkdev () in
  Memdev.write_u64 d 0 1;
  Memdev.write_u64 d 4096 2;
  Memdev.persist d 0 8;
  Memdev.persist d 4096 8;
  Memdev.punch d 0 4096;
  check_int "punched part zero" 0 (Memdev.read_u64 d 0);
  check_int "other part intact" 2 (Memdev.read_u64 d 4096)

(* ---------- counters ---------- *)

let test_counters () =
  let d = mkdev () in
  Memdev.reset_counters d;
  Memdev.write_u64 d 0 1;
  ignore (Memdev.read_u64 d 0);
  Memdev.persist d 0 8;
  let c = Memdev.counters d in
  check_int "stores" 1 c.Memdev.stores;
  check_int "loads" 1 c.Memdev.loads;
  check_int "flushed" 1 c.Memdev.lines_flushed;
  check_int "fences" 1 c.Memdev.fences

(* property: random write/persist/crash traces keep the persistent
   image consistent with the flush history *)
let prop_crash_consistency =
  QCheck.Test.make ~name:"every persisted write survives a strict crash"
    ~count:100
    QCheck.(list (pair (int_bound 63) (int_bound 1000)))
    (fun writes ->
      let d = mkdev () in
      let last = Hashtbl.create 16 in
      List.iter
        (fun (slot, v) ->
          let addr = slot * 8 in
          Memdev.write_u64 d addr v;
          Memdev.persist d addr 8;
          Hashtbl.replace last addr v)
        writes;
      Memdev.crash d `Strict;
      Hashtbl.fold (fun addr v ok -> ok && Memdev.read_u64 d addr = v) last true)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_crash_consistency ]

let () =
  Alcotest.run "nvmm"
    [ ( "access",
        [ Alcotest.test_case "widths" `Quick test_rw_widths;
          Alcotest.test_case "virgin zero" `Quick test_unwritten_reads_zero;
          Alcotest.test_case "chunk straddle" `Quick test_chunk_straddle;
          Alcotest.test_case "bytes roundtrip" `Quick test_bytes_roundtrip;
          Alcotest.test_case "bytes across chunks" `Quick test_bytes_across_chunks;
          Alcotest.test_case "fill" `Quick test_fill ] );
      ( "regions",
        [ Alcotest.test_case "info" `Quick test_region_info;
          Alcotest.test_case "overlap rejected" `Quick test_region_overlap_rejected;
          Alcotest.test_case "invalid address" `Quick test_invalid_address ] );
      ( "persistence",
        [ Alcotest.test_case "unflushed lost" `Quick test_unflushed_lost_on_crash;
          Alcotest.test_case "flushed survives" `Quick test_persist_survives_crash;
          Alcotest.test_case "clwb needs fence" `Quick test_clwb_without_sfence_lost;
          Alcotest.test_case "clwb snapshots" `Quick test_clwb_snapshot_semantics;
          Alcotest.test_case "dirty tracking" `Quick test_dirty_tracking;
          Alcotest.test_case "drain" `Quick test_drain;
          Alcotest.test_case "adversarial subsets" `Quick
            test_adversarial_crash_subsets;
          Alcotest.test_case "crash idempotent" `Quick test_crash_idempotent ]
        @ qsuite );
      ( "punch",
        [ Alcotest.test_case "zeroes" `Quick test_punch_zeroes;
          Alcotest.test_case "whole chunk" `Quick test_punch_whole_chunk;
          Alcotest.test_case "partial" `Quick test_punch_partial ] );
      ("counters", [ Alcotest.test_case "basic" `Quick test_counters ]) ]
