(* Tests for the discrete-event engine: priority queue, scheduler
   ordering, clock accounting, locks (including the out-of-order
   free_at semantics), join, determinism, deadlock detection. *)

module Pqueue = Simcore.Pqueue
module Sched = Simcore.Sched
module Prng = Repro_util.Prng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------- pqueue ---------- *)

let test_pqueue_order () =
  let q = Pqueue.create () in
  List.iter (fun t -> Pqueue.push q ~time:t t) [ 5; 1; 4; 1; 3 ];
  let popped = List.init 5 (fun _ -> fst (Option.get (Pqueue.pop q))) in
  Alcotest.(check (list int)) "sorted" [ 1; 1; 3; 4; 5 ] popped;
  check "now empty" true (Pqueue.is_empty q)

let test_pqueue_fifo_ties () =
  let q = Pqueue.create () in
  Pqueue.push q ~time:7 "a";
  Pqueue.push q ~time:7 "b";
  Pqueue.push q ~time:7 "c";
  let vals = List.init 3 (fun _ -> snd (Option.get (Pqueue.pop q))) in
  Alcotest.(check (list string)) "insertion order on ties" [ "a"; "b"; "c" ] vals

let prop_pqueue_sorted =
  QCheck.Test.make ~name:"pqueue pops in nondecreasing time order" ~count:200
    QCheck.(list (int_bound 10_000))
    (fun times ->
      let q = Pqueue.create () in
      List.iter (fun t -> Pqueue.push q ~time:t ()) times;
      let rec drain last =
        match Pqueue.pop q with
        | None -> true
        | Some (t, ()) -> t >= last && drain t
      in
      drain min_int)

(* ---------- scheduler basics ---------- *)

let test_charge_and_clock () =
  let e = Sched.create () in
  let final = ref 0 in
  let tid =
    Sched.spawn e (fun () ->
        Sched.charge 100;
        Sched.charge 50;
        final := Sched.now ())
  in
  Sched.run e;
  check_int "clock accumulates" 150 !final;
  check_int "thread_clock" 150 (Sched.thread_clock e tid);
  check_int "horizon" 150 (Sched.horizon e)

let test_outside_simulation () =
  check "not in simulation" false (Sched.in_simulation ());
  Alcotest.check_raises "charge outside" Sched.Not_in_simulation (fun () ->
      Sched.charge 1)

let test_spawn_inherits_clock () =
  let e = Sched.create () in
  let child_start = ref (-1) in
  ignore
    (Sched.spawn e (fun () ->
         Sched.charge 500;
         let child = Sched.spawn e (fun () -> child_start := Sched.now ()) in
         Sched.join child));
  Sched.run e;
  check_int "child starts at parent clock" 500 !child_start

let test_join_max_clock () =
  let e = Sched.create () in
  let t_slow = Sched.spawn e (fun () -> Sched.charge 1000) in
  let joined_at = ref 0 in
  ignore
    (Sched.spawn e (fun () ->
         Sched.charge 10;
         Sched.join t_slow;
         joined_at := Sched.now ()));
  Sched.run e;
  check_int "join waits" 1000 !joined_at

let test_join_finished () =
  let e = Sched.create () in
  let t1 = Sched.spawn e (fun () -> Sched.charge 7) in
  Sched.run e;
  let joined_at = ref 0 in
  ignore
    (Sched.spawn e (fun () ->
         Sched.join t1;
         joined_at := Sched.now ()));
  Sched.run e;
  check_int "joining finished thread bumps clock" 7 !joined_at

let test_min_clock_ordering () =
  (* threads yield after charging different amounts; the order of
     resumption must be clock order *)
  let e = Sched.create () in
  let order = ref [] in
  let mk d =
    Sched.spawn e (fun () ->
        Sched.charge d;
        Sched.yield ();
        order := d :: !order)
  in
  List.iter (fun d -> ignore (mk d)) [ 30; 10; 20 ];
  Sched.run e;
  Alcotest.(check (list int)) "resumed in clock order" [ 10; 20; 30 ]
    (List.rev !order)

let test_cpu_pinning () =
  let e = Sched.create () in
  let seen = ref (-1) in
  ignore (Sched.spawn e ~cpu:5 (fun () -> seen := Sched.cpu ()));
  Sched.run e;
  check_int "cpu" 5 !seen

let test_sleep () =
  let e = Sched.create () in
  let t = Sched.spawn e (fun () -> Sched.sleep 123) in
  Sched.run e;
  check_int "sleep advances" 123 (Sched.thread_clock e t)

(* ---------- locks ---------- *)

let test_lock_mutual_exclusion_time () =
  (* three threads each hold the lock 100ns starting from different
     arrival times; holds must serialize in arrival order *)
  let e = Sched.create () in
  let m = Sched.Mutex.create () in
  let spans = ref [] in
  let mk arrive =
    Sched.spawn e (fun () ->
        Sched.charge arrive;
        Sched.Mutex.acquire m;
        let t0 = Sched.now () in
        Sched.charge 100;
        Sched.Mutex.release m;
        spans := (t0, t0 + 100) :: !spans)
  in
  List.iter (fun a -> ignore (mk a)) [ 0; 10; 20 ];
  Sched.run e;
  let spans = List.sort compare !spans in
  Alcotest.(check (list (pair int int)))
    "serialized" [ (0, 100); (100, 200); (200, 300) ] spans;
  check_int "acquisitions" 3 (Sched.Mutex.acquisitions m);
  check_int "contended" 2 (Sched.Mutex.contended m)

let test_lock_free_at_semantics () =
  (* the holder runs its whole body in one resume (no suspension after
     acquire), so a later try-acquire at an earlier simulated time must
     still wait for the simulated release time *)
  let e = Sched.create () in
  let m = Sched.Mutex.create () in
  let second_got_at = ref 0 in
  ignore
    (Sched.spawn e (fun () ->
         Sched.Mutex.acquire m;
         Sched.charge 1000;
         Sched.Mutex.release m));
  ignore
    (Sched.spawn e (fun () ->
         Sched.charge 10;
         (* in real execution order this runs after the first thread
            completed, but at simulated time 10 *)
         Sched.Mutex.acquire m;
         second_got_at := Sched.now ();
         Sched.Mutex.release m));
  Sched.run e;
  check_int "waits for simulated release" 1000 !second_got_at

let test_lock_release_by_non_holder () =
  let e = Sched.create () in
  let m = Sched.Mutex.create () in
  let raised = ref false in
  ignore
    (Sched.spawn e (fun () ->
         try Sched.Mutex.release m with Invalid_argument _ -> raised := true));
  Sched.run e;
  check "non-holder release rejected" true !raised

let test_lock_with_lock_releases_on_exception () =
  let e = Sched.create () in
  let m = Sched.Mutex.create () in
  let second_ran = ref false in
  ignore
    (Sched.spawn e (fun () ->
         (try Sched.Mutex.with_lock m (fun () -> failwith "boom")
          with Failure _ -> ())));
  ignore
    (Sched.spawn e (fun () ->
         Sched.Mutex.with_lock m (fun () -> second_ran := true)));
  Sched.run e;
  check "lock released after exception" true !second_ran

let test_lock_last_holder_cpu () =
  let e = Sched.create () in
  let m = Sched.Mutex.create () in
  check_int "never held" (-1) (Sched.Mutex.last_holder_cpu m);
  ignore
    (Sched.spawn e ~cpu:3 (fun () ->
         Sched.Mutex.acquire m;
         Sched.Mutex.release m));
  Sched.run e;
  check_int "cpu recorded" 3 (Sched.Mutex.last_holder_cpu m)

let test_deadlock_detection () =
  let e = Sched.create () in
  let m = Sched.Mutex.create () in
  ignore
    (Sched.spawn e (fun () ->
         Sched.Mutex.acquire m;
         (* never released; second acquire blocks forever *)
         Sched.Mutex.acquire m));
  check "deadlock raises" true
    (try
       Sched.run e;
       false
     with Sched.Deadlock _ -> true)

(* ---------- determinism ---------- *)

let run_once () =
  let e = Sched.create () in
  let m = Sched.Mutex.create () in
  let trace = Buffer.create 64 in
  for i = 0 to 7 do
    ignore
      (Sched.spawn e ~cpu:i (fun () ->
           let rng = Prng.create i in
           for _ = 1 to 20 do
             Sched.charge (Prng.int rng 50);
             Sched.Mutex.with_lock m (fun () ->
                 Buffer.add_string trace (string_of_int i);
                 Sched.charge 10)
           done))
  done;
  Sched.run e;
  (Buffer.contents trace, Sched.horizon e)

let test_determinism () =
  let t1, h1 = run_once () in
  let t2, h2 = run_once () in
  Alcotest.(check string) "same interleaving" t1 t2;
  check_int "same horizon" h1 h2

let test_run_twice () =
  let e = Sched.create () in
  ignore (Sched.spawn e (fun () -> Sched.charge 5));
  Sched.run e;
  ignore (Sched.spawn e (fun () -> Sched.charge 7));
  Sched.run e;
  check_int "live" 0 (Sched.live_threads e)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_pqueue_sorted ]

let () =
  Alcotest.run "simcore"
    [ ( "pqueue",
        [ Alcotest.test_case "ordering" `Quick test_pqueue_order;
          Alcotest.test_case "fifo ties" `Quick test_pqueue_fifo_ties ]
        @ qsuite );
      ( "scheduler",
        [ Alcotest.test_case "charge/clock" `Quick test_charge_and_clock;
          Alcotest.test_case "outside simulation" `Quick test_outside_simulation;
          Alcotest.test_case "spawn inherits clock" `Quick test_spawn_inherits_clock;
          Alcotest.test_case "join waits" `Quick test_join_max_clock;
          Alcotest.test_case "join finished" `Quick test_join_finished;
          Alcotest.test_case "min-clock order" `Quick test_min_clock_ordering;
          Alcotest.test_case "cpu pinning" `Quick test_cpu_pinning;
          Alcotest.test_case "sleep" `Quick test_sleep;
          Alcotest.test_case "run twice" `Quick test_run_twice ] );
      ( "mutex",
        [ Alcotest.test_case "serialization" `Quick test_lock_mutual_exclusion_time;
          Alcotest.test_case "free_at out-of-order" `Quick test_lock_free_at_semantics;
          Alcotest.test_case "non-holder release" `Quick test_lock_release_by_non_holder;
          Alcotest.test_case "release on exception" `Quick
            test_lock_with_lock_releases_on_exception;
          Alcotest.test_case "last holder cpu" `Quick test_lock_last_holder_cpu;
          Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection ] );
      ( "determinism",
        [ Alcotest.test_case "identical replay" `Quick test_determinism ] ) ]
