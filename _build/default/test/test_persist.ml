(* Tests for the persistence-log machinery (Pundo, Plog): the undo
   protocol, commit points, torn entries, idempotent replay, overflow. *)

module Pundo = Persist.Pundo
module Plog = Persist.Plog
module Memdev = Nvmm.Memdev
module Prng = Repro_util.Prng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let log_base = 1 lsl 20
let data_base = (1 lsl 20) + 65536
let count_addr = log_base
let entries_addr = log_base + 8

let mkmach () =
  let m = Machine.create () in
  Machine.add_region m ~base:log_base ~size:(1 lsl 20) ~kind:Nvmm.Memdev.Nvmm
    ~numa:0;
  m

let begin_op m = Pundo.begin_op m ~count_addr ~entries_addr ~cap:64

(* ---------- pundo ---------- *)

let test_write_and_commit () =
  let m = mkmach () in
  Machine.write_u64 m data_base 1;
  Machine.persist m data_base 8;
  let ctx = begin_op m in
  Pundo.write ctx data_base 2;
  check_int "in-place visible" 2 (Machine.read_u64 m data_base);
  Pundo.commit ctx;
  check "log empty after commit" true (Pundo.is_empty m ~count_addr);
  Memdev.crash (Machine.dev m) `Strict;
  check_int "committed value durable" 2 (Machine.read_u64 m data_base)

let test_crash_mid_op_rolls_back () =
  let m = mkmach () in
  Machine.write_u64 m data_base 10;
  Machine.write_u64 m (data_base + 8) 20;
  Machine.persist m data_base 16;
  let ctx = begin_op m in
  Pundo.write ctx data_base 11;
  Pundo.write ctx (data_base + 8) 21;
  (* no commit: crash *)
  Memdev.crash (Machine.dev m) `Strict;
  check "log non-empty" false (Pundo.is_empty m ~count_addr);
  check "recovered" true (Pundo.recover m ~count_addr ~entries_addr);
  check_int "rolled back 1" 10 (Machine.read_u64 m data_base);
  check_int "rolled back 2" 20 (Machine.read_u64 m (data_base + 8));
  check "log empty after recover" true (Pundo.is_empty m ~count_addr)

let test_adversarial_crash_mid_op () =
  (* whatever subset of lines the crash persists, recovery must
     restore the pre-op state *)
  let rng = Prng.create 123 in
  for _ = 1 to 50 do
    let m = mkmach () in
    for i = 0 to 7 do
      Machine.write_u64 m (data_base + (i * 8)) (100 + i)
    done;
    Machine.persist m data_base 64;
    let ctx = begin_op m in
    for i = 0 to 7 do
      Pundo.write ctx (data_base + (i * 8)) (200 + i)
    done;
    Memdev.crash (Machine.dev m) (`Adversarial rng);
    ignore (Pundo.recover m ~count_addr ~entries_addr);
    for i = 0 to 7 do
      check_int "pre-op state" (100 + i) (Machine.read_u64 m (data_base + (i * 8)))
    done
  done

let test_first_write_logged_once () =
  let m = mkmach () in
  Machine.write_u64 m data_base 5;
  Machine.persist m data_base 8;
  let ctx = begin_op m in
  Pundo.write ctx data_base 6;
  Pundo.write ctx data_base 7;
  Pundo.write ctx data_base 8;
  check_int "one entry" 1 (Machine.read_u64 m count_addr);
  Memdev.crash (Machine.dev m) `Strict;
  ignore (Pundo.recover m ~count_addr ~entries_addr);
  check_int "rolls to original, not intermediate" 5
    (Machine.read_u64 m data_base)

let test_recover_idempotent () =
  let m = mkmach () in
  Machine.write_u64 m data_base 1;
  Machine.persist m data_base 8;
  let ctx = begin_op m in
  Pundo.write ctx data_base 2;
  Memdev.crash (Machine.dev m) `Strict;
  ignore (Pundo.recover m ~count_addr ~entries_addr);
  (* crash during recovery: replay again *)
  ignore (Pundo.recover m ~count_addr ~entries_addr);
  check_int "still original" 1 (Machine.read_u64 m data_base)

let test_torn_entry_skipped () =
  (* simulate a crash where the count persisted but the newest entry's
     line did not: recovery must skip the torn entry *)
  let m = mkmach () in
  Machine.write_u64 m data_base 1;
  Machine.persist m data_base 8;
  (* hand-craft: count = 1, entry garbage (checksum invalid) *)
  Machine.write_u64 m count_addr 1;
  Machine.write_u64 m entries_addr data_base;
  Machine.write_u64 m (entries_addr + 8) 999;
  Machine.write_u64 m (entries_addr + 16) 0 (* bad checksum *);
  Machine.persist m count_addr 8;
  Machine.persist m entries_addr 24;
  check "recover runs" true (Pundo.recover m ~count_addr ~entries_addr);
  check_int "torn entry not applied" 1 (Machine.read_u64 m data_base)

let test_overflow () =
  let m = mkmach () in
  let ctx = begin_op m in
  check "overflow raises" true
    (try
       for i = 0 to 64 do
         Pundo.write ctx (data_base + (i * 8)) i
       done;
       false
     with Pundo.Overflow -> true)

let test_before_truncate_hook () =
  let m = mkmach () in
  let order = ref [] in
  let ctx = begin_op m in
  Pundo.write ctx data_base 1;
  Pundo.commit ctx ~before_truncate:(fun () ->
      order := `Hook :: !order;
      order := (`Count (Machine.read_u64 m count_addr)) :: !order);
  (* the hook must run while the log is still non-empty *)
  check "hook saw non-empty log" true
    (List.exists (function `Count 1 -> true | _ -> false) !order)

let test_mark_dirty_persisted_at_commit () =
  let m = mkmach () in
  let ctx = begin_op m in
  Pundo.write ctx data_base 1; (* ensures the op is real *)
  Machine.write_u64 m (data_base + 64) 42;
  Pundo.mark_dirty ctx (data_base + 64);
  Pundo.commit ctx;
  Memdev.crash (Machine.dev m) `Strict;
  check_int "marked line flushed" 42 (Machine.read_u64 m (data_base + 64))

(* property: random op traces with strict crash at any point recover
   to a prefix of committed ops *)
let prop_random_ops_crash_recover =
  QCheck.Test.make ~name:"undo log: crash anywhere, recover to last commit"
    ~count:60
    QCheck.(pair small_nat (list (pair (int_bound 15) (int_bound 999))))
    (fun (crash_after, ops) ->
      let m = mkmach () in
      (* initial committed state: slot i = i *)
      for i = 0 to 15 do
        Machine.write_u64 m (data_base + (i * 8)) i
      done;
      Machine.persist m data_base 128;
      let committed = Array.init 16 Fun.id in
      let step = ref 0 in
      (try
         List.iter
           (fun (slot, v) ->
             let ctx = begin_op m in
             Pundo.write ctx (data_base + (slot * 8)) v;
             incr step;
             if !step = crash_after then raise Exit;
             Pundo.commit ctx;
             committed.(slot) <- v)
           ops
       with Exit -> ());
      Memdev.crash (Machine.dev m) `Strict;
      ignore (Pundo.recover m ~count_addr ~entries_addr);
      Array.for_all Fun.id
        (Array.init 16 (fun i ->
             Machine.read_u64 m (data_base + (i * 8)) = committed.(i))))

(* ---------- plog ---------- *)

let plog_area =
  { Plog.count_addr = log_base + 32768;
    entries_addr = log_base + 32768 + 8;
    cap = 8 }

let test_plog_append_entries () =
  let m = mkmach () in
  Plog.append m plog_area 11;
  Plog.append m plog_area 22;
  Alcotest.(check (list int)) "entries" [ 11; 22 ] (Plog.entries m plog_area);
  check "not empty" false (Plog.is_empty m plog_area);
  Plog.truncate m plog_area;
  check "empty after truncate" true (Plog.is_empty m plog_area)

let test_plog_survives_crash () =
  let m = mkmach () in
  Plog.append m plog_area 7;
  Memdev.crash (Machine.dev m) `Strict;
  Alcotest.(check (list int)) "entry durable" [ 7 ] (Plog.entries m plog_area)

let test_plog_truncate_is_commit () =
  let m = mkmach () in
  Plog.append m plog_area 7;
  Plog.truncate m plog_area;
  Memdev.crash (Machine.dev m) `Strict;
  check "truncation durable" true (Plog.is_empty m plog_area)

let test_plog_full () =
  let m = mkmach () in
  for i = 1 to 8 do
    Plog.append m plog_area i
  done;
  check "full" true (Plog.is_full m plog_area);
  check "overflow raises" true
    (try Plog.append m plog_area 9; false with Plog.Overflow -> true)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_random_ops_crash_recover ]

let () =
  Alcotest.run "persist"
    [ ( "pundo",
        [ Alcotest.test_case "write/commit" `Quick test_write_and_commit;
          Alcotest.test_case "crash mid-op" `Quick test_crash_mid_op_rolls_back;
          Alcotest.test_case "adversarial crash" `Quick test_adversarial_crash_mid_op;
          Alcotest.test_case "log once per word" `Quick test_first_write_logged_once;
          Alcotest.test_case "idempotent recover" `Quick test_recover_idempotent;
          Alcotest.test_case "torn entry" `Quick test_torn_entry_skipped;
          Alcotest.test_case "overflow" `Quick test_overflow;
          Alcotest.test_case "before_truncate hook" `Quick test_before_truncate_hook;
          Alcotest.test_case "mark_dirty" `Quick test_mark_dirty_persisted_at_commit ]
        @ qsuite );
      ( "plog",
        [ Alcotest.test_case "append/entries" `Quick test_plog_append_entries;
          Alcotest.test_case "durable entries" `Quick test_plog_survives_crash;
          Alcotest.test_case "truncate commit" `Quick test_plog_truncate_is_commit;
          Alcotest.test_case "capacity" `Quick test_plog_full ] ) ]
